package irparse

import (
	"strings"
	"testing"

	"uu/internal/core"
	"uu/internal/ir"
)

const loopSrc = `
func @count(i64 %n) -> i64 {
entry:
  br %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %inc, %loop ]
  %sum = phi i64 [ 0, %entry ], [ %nsum, %loop ]
  %inc = add i64 %i, i64 1
  %nsum = add i64 %sum, i64 %i
  %c = icmp slt i64 %inc, i64 %n
  condbr i1 %c, %loop, %exit
exit:
  ret i64 %nsum
}
`

func TestParseLoop(t *testing.T) {
	f, err := ParseFunc(loopSrc)
	if err != nil {
		t.Fatalf("ParseFunc: %v", err)
	}
	if err := ir.Verify(f); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if f.Name != "count" || f.RetTyp != ir.I64 || len(f.Params) != 1 {
		t.Fatalf("header parsed wrong: %s", f.String())
	}
	loop := f.BlockByName("loop")
	if loop == nil || len(loop.Phis()) != 2 {
		t.Fatalf("loop block wrong")
	}
	phi := loop.Phis()[0]
	if phi.PhiIncoming(f.Entry()).(*ir.Const).Int != 0 {
		t.Fatalf("phi entry incoming wrong")
	}
	if phi.PhiIncoming(loop) == nil {
		t.Fatalf("phi backedge incoming missing")
	}
}

func TestRoundTrip(t *testing.T) {
	f, err := ParseFunc(loopSrc)
	if err != nil {
		t.Fatalf("ParseFunc: %v", err)
	}
	printed := f.String()
	f2, err := ParseFunc(printed)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, printed)
	}
	if got := f2.String(); got != printed {
		t.Fatalf("round trip mismatch:\n--- first\n%s\n--- second\n%s", printed, got)
	}
}

func TestParseMemoryOps(t *testing.T) {
	src := `
func @axpy(f64* noalias %x, f64* noalias %y, f64 %a, i64 %n) {
entry:
  %t = tid
  %i = sext i32 %t to i64
  %c = icmp slt i64 %i, i64 %n
  condbr i1 %c, %body, %done
body:
  %px = gep f64* %x, i64 %i
  %py = gep f64* %y, i64 %i
  %vx = load f64* %px
  %vy = load f64* %py
  %ax = fmul f64 %a, f64 %vx
  %s = fadd f64 %ax, f64 %vy
  store f64 %s, f64* %py
  br %done
done:
  ret
}
`
	f, err := ParseFunc(src)
	if err != nil {
		t.Fatalf("ParseFunc: %v", err)
	}
	if err := ir.Verify(f); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !f.Params[0].Restrict || !f.Params[1].Restrict {
		t.Fatalf("noalias not parsed")
	}
	// Round-trip again.
	f2, err := ParseFunc(f.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if f2.String() != f.String() {
		t.Fatalf("round trip mismatch")
	}
}

func TestParseSelectConvMath(t *testing.T) {
	src := `
func @m(f64 %x, i64 %k) -> f64 {
entry:
  %c = icmp sgt i64 %k, i64 0
  %s = select i1 %c, f64 %x, f64 0.0
  %r = sqrt f64 %s
  %p = pow f64 %r, f64 2.0
  %mn = fmin f64 %p, f64 100.0
  ret f64 %mn
}
`
	f, err := ParseFunc(src)
	if err != nil {
		t.Fatalf("ParseFunc: %v", err)
	}
	if err := ir.Verify(f); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"badop", "func @f() {\nentry:\n  %x = bogus i64 %y\n}", "unknown opcode"},
		{"undef", "func @f() {\nentry:\n  %x = add i64 %y, i64 1\n  ret\n}", "undefined value"},
		{"dupname", "func @f() {\nentry:\n  %x = tid\n  %x = tid\n  ret\n}", "duplicate value name"},
		{"badlabel", "func @f() {\nentry:\n  br %nowhere\n}", "unknown block"},
		{"badtype", "func @f(q7 %x) {\nentry:\n  ret\n}", "unknown type"},
		{"typemismatch", "func @f(i32 %x) {\nentry:\n  %y = add i64 %x, i64 1\n  ret\n}", "type"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseFunc(tc.src)
			if err == nil {
				t.Fatalf("no error")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseMultipleFunctions(t *testing.T) {
	src := `
func @a() {
entry:
  ret
}

func @b() -> i32 {
entry:
  %t = tid
  ret i32 %t
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(m.Funcs()) != 2 || m.FuncByName("a") == nil || m.FuncByName("b") == nil {
		t.Fatalf("functions not parsed: %v", m.String())
	}
}

// TestRoundTripTransformedFunction: the printer/parser round-trips a CFG
// after heavy transformation (unroll + unmerge produce the hairiest shapes).
func TestRoundTripTransformedFunction(t *testing.T) {
	src := `
func @f(i64* noalias %out, i64 %n, i64 %k) {
entry:
  br %H
H:
  %i = phi i64 [ 0, %entry ], [ %i2, %L ]
  %c = icmp sgt i64 %k, i64 %i
  condbr i1 %c, %a, %b
a:
  br %L
b:
  br %L
L:
  %v = phi i64 [ 1, %a ], [ 2, %b ]
  %p = gep i64* %out, i64 %i
  store i64 %v, i64* %p
  %i2 = add i64 %i, i64 1
  %cc = icmp slt i64 %i2, i64 %n
  condbr i1 %cc, %H, %exit
exit:
  ret
}
`
	f := MustParseFunc(src)
	if _, err := core.UnrollAndUnmerge(f, 0, 3, core.Options{}); err != nil {
		t.Fatalf("u&u: %v", err)
	}
	printed := f.String()
	f2, err := ParseFunc(printed)
	if err != nil {
		t.Fatalf("reparse of transformed function failed: %v", err)
	}
	if err := ir.Verify(f2); err != nil {
		t.Fatalf("verify reparsed: %v", err)
	}
	if f2.String() != printed {
		t.Fatalf("round trip not stable")
	}
}

func TestMustParseFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("no panic on bad source")
		}
	}()
	MustParseFunc("func @broken( {")
}
