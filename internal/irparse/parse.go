// Package irparse parses the textual IR syntax emitted by ir's printers.
// It exists chiefly so that transformation tests can state their input CFGs
// directly as text; Parse(f.String()) round-trips with the printer.
package irparse

import (
	"fmt"
	"strconv"
	"strings"

	"uu/internal/ir"
)

// Parse parses a module consisting of one or more functions.
func Parse(src string) (*ir.Module, error) {
	p := &parser{lines: strings.Split(src, "\n")}
	m := ir.NewModule("parsed")
	for {
		p.skipBlank()
		if p.eof() {
			return m, nil
		}
		f, err := p.parseFunc()
		if err != nil {
			return nil, err
		}
		m.AddFunction(f)
	}
}

// ParseFunc parses a single function.
func ParseFunc(src string) (*ir.Function, error) {
	m, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(m.Funcs()) != 1 {
		return nil, fmt.Errorf("irparse: expected exactly one function, got %d", len(m.Funcs()))
	}
	return m.Funcs()[0], nil
}

// MustParseFunc is ParseFunc that panics on error; for tests.
func MustParseFunc(src string) *ir.Function {
	f, err := ParseFunc(src)
	if err != nil {
		panic(err)
	}
	if err := ir.Verify(f); err != nil {
		panic(err)
	}
	return f
}

type parser struct {
	lines []string
	pos   int
}

func (p *parser) eof() bool { return p.pos >= len(p.lines) }

func (p *parser) skipBlank() {
	for !p.eof() {
		l := strings.TrimSpace(p.lines[p.pos])
		if l == "" || strings.HasPrefix(l, ";") || strings.HasPrefix(l, "//") {
			p.pos++
			continue
		}
		return
	}
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("irparse: line %d: %s", p.pos+1, fmt.Sprintf(format, args...))
}

// rawOperand is an unresolved operand: a type plus a reference token.
type rawOperand struct {
	typ *ir.Type
	ref string // "%name" or a literal
}

// rawInstr is an instruction before operand resolution.
type rawInstr struct {
	line    int
	result  string // "" if void
	op      ir.Op
	pred    ir.Pred
	typ     *ir.Type // result type
	ops     []rawOperand
	blocks  []string // block label references
	phiType *ir.Type
}

func (p *parser) parseFunc() (*ir.Function, error) {
	header := strings.TrimSpace(p.lines[p.pos])
	if !strings.HasPrefix(header, "func @") {
		return nil, p.errf("expected 'func @name(...)', got %q", header)
	}
	open := strings.Index(header, "(")
	close_ := strings.LastIndex(header, ")")
	if open < 0 || close_ < open {
		return nil, p.errf("malformed function header")
	}
	name := header[len("func @"):open]
	retTyp := ir.Void
	rest := strings.TrimSpace(header[close_+1:])
	rest = strings.TrimSuffix(rest, "{")
	rest = strings.TrimSpace(rest)
	if strings.HasPrefix(rest, "->") {
		retTyp = ir.TypeByName(strings.TrimSpace(rest[2:]))
		if retTyp == nil {
			return nil, p.errf("bad return type %q", rest)
		}
	} else if rest != "" {
		return nil, p.errf("unexpected trailing %q in header", rest)
	}
	f := ir.NewFunction(name, retTyp)
	// Parameters.
	paramsSrc := strings.TrimSpace(header[open+1 : close_])
	if paramsSrc != "" {
		for _, ps := range strings.Split(paramsSrc, ",") {
			fields := strings.Fields(strings.TrimSpace(ps))
			if len(fields) < 2 {
				return nil, p.errf("bad parameter %q", ps)
			}
			t, err := p.parseType(fields[0])
			if err != nil {
				return nil, err
			}
			restrict := false
			nameField := fields[len(fields)-1]
			if len(fields) == 3 {
				if fields[1] != "noalias" {
					return nil, p.errf("bad parameter attribute %q", fields[1])
				}
				restrict = true
			}
			if !strings.HasPrefix(nameField, "%") {
				return nil, p.errf("parameter name must start with %%: %q", nameField)
			}
			f.AddParam(nameField[1:], t, restrict)
		}
	}
	p.pos++

	// First pass: collect blocks and raw instructions.
	type rawBlock struct {
		name   string
		instrs []*rawInstr
	}
	var rblocks []*rawBlock
	var cur *rawBlock
	for {
		p.skipBlank()
		if p.eof() {
			return nil, p.errf("unterminated function %s", name)
		}
		line := strings.TrimSpace(p.lines[p.pos])
		if line == "}" {
			p.pos++
			break
		}
		if strings.HasSuffix(line, ":") && !strings.Contains(line, " ") {
			cur = &rawBlock{name: strings.TrimSuffix(line, ":")}
			rblocks = append(rblocks, cur)
			p.pos++
			continue
		}
		if cur == nil {
			return nil, p.errf("instruction before first block label")
		}
		ri, err := p.parseInstrLine(line)
		if err != nil {
			return nil, err
		}
		cur.instrs = append(cur.instrs, ri)
		p.pos++
	}

	// Create blocks.
	blockByName := map[string]*ir.Block{}
	for _, rb := range rblocks {
		b := f.NewBlock(rb.name)
		if b.Name != rb.name {
			return nil, fmt.Errorf("irparse: duplicate block label %q", rb.name)
		}
		blockByName[rb.name] = b
	}

	// Create instruction shells and the name table.
	valueByName := map[string]ir.Value{}
	for _, prm := range f.Params {
		valueByName[prm.Name] = prm
	}
	instrOf := map[*rawInstr]*ir.Instr{}
	for _, rb := range rblocks {
		b := blockByName[rb.name]
		for _, ri := range rb.instrs {
			in := ir.NewInstr(ri.op, ri.typ)
			in.Pred = ri.pred
			if ri.result != "" {
				if _, dup := valueByName[ri.result]; dup {
					return nil, fmt.Errorf("irparse: line %d: duplicate value name %%%s", ri.line+1, ri.result)
				}
				in.SetName(ri.result)
				valueByName[ri.result] = in
			}
			instrOf[ri] = in
			_ = b
		}
	}

	// Resolve operands and append in order.
	for _, rb := range rblocks {
		b := blockByName[rb.name]
		for _, ri := range rb.instrs {
			in := instrOf[ri]
			for _, ro := range ri.ops {
				v, err := resolveOperand(ro, valueByName)
				if err != nil {
					return nil, fmt.Errorf("irparse: line %d: %v", ri.line+1, err)
				}
				in.AddArg(v)
			}
			for _, bn := range ri.blocks {
				tb := blockByName[bn]
				if tb == nil {
					return nil, fmt.Errorf("irparse: line %d: unknown block %%%s", ri.line+1, bn)
				}
				in.AddBlockArg(tb)
			}
			b.Append(in)
		}
	}
	return f, nil
}

func (p *parser) parseType(s string) (*ir.Type, error) {
	base := s
	stars := 0
	for strings.HasSuffix(base, "*") {
		base = base[:len(base)-1]
		stars++
	}
	t := ir.TypeByName(base)
	if t == nil {
		return nil, p.errf("unknown type %q", s)
	}
	for i := 0; i < stars; i++ {
		t = ir.PointerTo(t)
	}
	return t, nil
}

// parseInstrLine parses one instruction into raw form.
func (p *parser) parseInstrLine(line string) (*rawInstr, error) {
	ri := &rawInstr{line: p.pos, pred: ir.PredInvalid}
	rest := line
	if i := strings.Index(line, " = "); i >= 0 && strings.HasPrefix(line, "%") {
		ri.result = strings.TrimSpace(line[1:i])
		rest = strings.TrimSpace(line[i+3:])
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, p.errf("empty instruction")
	}
	op := ir.OpByName(fields[0])
	if op == ir.OpInvalid {
		return nil, p.errf("unknown opcode %q", fields[0])
	}
	ri.op = op
	args := strings.TrimSpace(rest[len(fields[0]):])

	parseTypedList := func(s string) ([]rawOperand, error) {
		var out []rawOperand
		if strings.TrimSpace(s) == "" {
			return out, nil
		}
		for _, part := range strings.Split(s, ",") {
			fs := strings.Fields(strings.TrimSpace(part))
			if len(fs) != 2 {
				return nil, p.errf("bad operand %q", part)
			}
			t, err := p.parseType(fs[0])
			if err != nil {
				return nil, err
			}
			out = append(out, rawOperand{t, fs[1]})
		}
		return out, nil
	}

	switch op {
	case ir.OpICmp, ir.OpFCmp:
		fs := strings.Fields(args)
		if len(fs) < 1 {
			return nil, p.errf("icmp/fcmp needs predicate")
		}
		ri.pred = ir.PredByName(fs[0])
		if ri.pred == ir.PredInvalid {
			return nil, p.errf("bad predicate %q", fs[0])
		}
		ops, err := parseTypedList(strings.TrimSpace(args[len(fs[0]):]))
		if err != nil {
			return nil, err
		}
		ri.ops = ops
		ri.typ = ir.I1
	case ir.OpPhi:
		fs := strings.Fields(args)
		if len(fs) < 1 {
			return nil, p.errf("phi needs a type")
		}
		t, err := p.parseType(fs[0])
		if err != nil {
			return nil, err
		}
		ri.typ = t
		rest := strings.TrimSpace(args[len(fs[0]):])
		for rest != "" {
			open := strings.Index(rest, "[")
			cls := strings.Index(rest, "]")
			if open < 0 || cls < open {
				return nil, p.errf("bad phi incoming list %q", rest)
			}
			pair := strings.Split(rest[open+1:cls], ",")
			if len(pair) != 2 {
				return nil, p.errf("bad phi incoming %q", rest[open+1:cls])
			}
			ref := strings.TrimSpace(pair[0])
			blk := strings.TrimSpace(pair[1])
			if !strings.HasPrefix(blk, "%") {
				return nil, p.errf("phi incoming block must be %%label")
			}
			ri.ops = append(ri.ops, rawOperand{t, ref})
			ri.blocks = append(ri.blocks, blk[1:])
			rest = strings.TrimSpace(rest[cls+1:])
			rest = strings.TrimPrefix(rest, ",")
			rest = strings.TrimSpace(rest)
		}
	case ir.OpTrunc, ir.OpZExt, ir.OpSExt, ir.OpSIToFP, ir.OpFPToSI, ir.OpFPExt, ir.OpFPTrunc:
		parts := strings.Split(args, " to ")
		if len(parts) != 2 {
			return nil, p.errf("conversion needs 'to <type>'")
		}
		ops, err := parseTypedList(parts[0])
		if err != nil {
			return nil, err
		}
		t, err := p.parseType(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, err
		}
		ri.ops = ops
		ri.typ = t
	case ir.OpAlloca:
		t, err := p.parseType(strings.TrimSpace(args))
		if err != nil {
			return nil, err
		}
		ri.typ = ir.PointerTo(t)
	case ir.OpBr:
		lbl := strings.TrimSpace(args)
		if !strings.HasPrefix(lbl, "%") {
			return nil, p.errf("br needs %%label")
		}
		ri.blocks = []string{lbl[1:]}
		ri.typ = ir.Void
	case ir.OpCondBr:
		parts := strings.Split(args, ",")
		if len(parts) != 3 {
			return nil, p.errf("condbr needs cond and two labels")
		}
		ops, err := parseTypedList(parts[0])
		if err != nil {
			return nil, err
		}
		ri.ops = ops
		for _, lp := range parts[1:] {
			lbl := strings.TrimSpace(lp)
			if !strings.HasPrefix(lbl, "%") {
				return nil, p.errf("condbr target must be %%label")
			}
			ri.blocks = append(ri.blocks, lbl[1:])
		}
		ri.typ = ir.Void
	case ir.OpRet:
		ops, err := parseTypedList(args)
		if err != nil {
			return nil, err
		}
		ri.ops = ops
		ri.typ = ir.Void
	default:
		ops, err := parseTypedList(args)
		if err != nil {
			return nil, err
		}
		ri.ops = ops
		ri.typ = resultType(op, ops)
		if ri.typ == nil {
			return nil, p.errf("cannot infer result type for %s", op)
		}
	}
	return ri, nil
}

// resultType infers the result type of ops whose printer syntax does not
// state it explicitly.
func resultType(op ir.Op, ops []rawOperand) *ir.Type {
	switch op {
	case ir.OpStore, ir.OpBarrier:
		return ir.Void
	case ir.OpTID, ir.OpNTID, ir.OpCTAID, ir.OpNCTAID:
		return ir.I32
	case ir.OpLoad:
		if len(ops) == 1 && ops[0].typ.IsPtr() {
			return ops[0].typ.Elem
		}
	case ir.OpSelect:
		if len(ops) == 3 {
			return ops[1].typ
		}
	case ir.OpGEP:
		if len(ops) == 2 {
			return ops[0].typ
		}
	default:
		if len(ops) >= 1 {
			return ops[0].typ
		}
	}
	return nil
}

func resolveOperand(ro rawOperand, values map[string]ir.Value) (ir.Value, error) {
	if strings.HasPrefix(ro.ref, "%") {
		v, ok := values[ro.ref[1:]]
		if !ok {
			return nil, fmt.Errorf("undefined value %s", ro.ref)
		}
		if v.Type() != ro.typ {
			return nil, fmt.Errorf("operand %s has type %s, annotated %s", ro.ref, v.Type(), ro.typ)
		}
		return v, nil
	}
	if ro.typ.IsFloat() {
		fv, err := strconv.ParseFloat(ro.ref, 64)
		if err != nil {
			return nil, fmt.Errorf("bad float literal %q", ro.ref)
		}
		return ir.ConstFloat(ro.typ, fv), nil
	}
	if ro.typ.IsInt() {
		iv, err := strconv.ParseInt(ro.ref, 10, 64)
		if err != nil {
			// Allow large unsigned spellings.
			uv, uerr := strconv.ParseUint(ro.ref, 10, 64)
			if uerr != nil {
				return nil, fmt.Errorf("bad int literal %q", ro.ref)
			}
			iv = int64(uv)
		}
		return ir.ConstInt(ro.typ, iv), nil
	}
	return nil, fmt.Errorf("cannot parse literal %q of type %s", ro.ref, ro.typ)
}
