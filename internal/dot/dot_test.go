package dot

import (
	"strings"
	"testing"

	"uu/internal/irparse"
)

const loopSrc = `
func @k(i64 %n) {
entry:
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i2, %body ]
  %c = icmp slt i64 %i, i64 %n
  condbr i1 %c, %body, %exit
body:
  %i2 = add i64 %i, i64 1
  br %head
exit:
  ret
}
`

func TestCFGBasic(t *testing.T) {
	f := irparse.MustParseFunc(loopSrc)
	out := CFG(f, Options{})
	for _, want := range []string{
		`digraph "k"`,
		`"entry" -> "head"`,
		`"head" -> "body" [style=solid, label=T]`,
		`"head" -> "exit" [style=dotted, label=F]`,
		`"body" -> "head"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "phi") {
		t.Errorf("instructions rendered without Instrs option")
	}
}

func TestCFGWithInstrsAndLoops(t *testing.T) {
	f := irparse.MustParseFunc(loopSrc)
	out := CFG(f, Options{Instrs: true, Loops: true})
	for _, want := range []string{"phi i64", "fillcolor=lightblue", "loop#0", "fillcolor=lightyellow"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCFGDomTreeOverlay(t *testing.T) {
	f := irparse.MustParseFunc(loopSrc)
	out := CFG(f, Options{DomTree: true})
	if !strings.Contains(out, `"head" -> "exit" [style=dashed`) {
		t.Errorf("missing idom edge in:\n%s", out)
	}
}
