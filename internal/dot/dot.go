// Package dot renders IR functions as Graphviz digraphs, in the style of the
// paper's CFG figures: solid edges for true/unconditional branches, dotted
// edges for false branches, loop headers and latches highlighted, and an
// optional dominator-tree overlay.
package dot

import (
	"fmt"
	"strings"

	"uu/internal/analysis"
	"uu/internal/ir"
)

// Options selects what the rendering includes.
type Options struct {
	// Instrs includes the full instruction listing inside each node
	// (otherwise only the block name is shown).
	Instrs bool
	// Loops colors loop headers and marks latch back edges.
	Loops bool
	// DomTree adds dashed idom edges.
	DomTree bool
	// Labels annotates blocks with extra text (e.g. the Figure 5 condition
	// provenance labels from core.ConditionProvenance).
	Labels map[*ir.Block]string
}

// CFG renders f's control-flow graph.
func CFG(f *ir.Function, opts Options) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  node [shape=box, fontname=monospace];\n", f.Name)

	var dt *analysis.DomTree
	var li *analysis.LoopInfo
	if opts.Loops || opts.DomTree {
		dt = analysis.NewDomTree(f)
		li = analysis.NewLoopInfo(f, dt)
	}
	headerOf := map[*ir.Block]*analysis.Loop{}
	latchSet := map[*ir.Block]bool{}
	if opts.Loops {
		for _, l := range li.Loops {
			headerOf[l.Header] = l
			for _, la := range l.Latches() {
				latchSet[la] = true
			}
		}
	}

	for _, b := range f.Blocks() {
		label := b.Name + "\\l"
		if opts.Instrs {
			var body strings.Builder
			fmt.Fprintf(&body, "%s:\\l", b.Name)
			for _, in := range b.Instrs() {
				line := strings.ReplaceAll(in.String(), "\"", "'")
				fmt.Fprintf(&body, "  %s\\l", line)
			}
			label = body.String()
		}
		if extra, ok := opts.Labels[b]; ok && extra != "" {
			label = "[" + extra + "] " + label
		}
		attrs := fmt.Sprintf("label=\"%s\"", label)
		if l, ok := headerOf[b]; ok {
			attrs += fmt.Sprintf(", style=filled, fillcolor=lightblue, xlabel=\"loop#%d\"", l.ID)
		} else if latchSet[b] {
			attrs += ", style=filled, fillcolor=lightyellow"
		}
		fmt.Fprintf(&sb, "  %q [%s];\n", b.Name, attrs)

		t := b.Term()
		if t == nil {
			continue
		}
		switch t.Op {
		case ir.OpCondBr:
			fmt.Fprintf(&sb, "  %q -> %q [style=solid, label=T];\n", b.Name, t.BlockArg(0).Name)
			fmt.Fprintf(&sb, "  %q -> %q [style=dotted, label=F];\n", b.Name, t.BlockArg(1).Name)
		case ir.OpBr:
			fmt.Fprintf(&sb, "  %q -> %q;\n", b.Name, t.BlockArg(0).Name)
		}
	}
	if opts.DomTree {
		for _, b := range f.Blocks() {
			if id := dt.Idom(b); id != nil {
				fmt.Fprintf(&sb, "  %q -> %q [style=dashed, color=gray, constraint=false];\n",
					id.Name, b.Name)
			}
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
