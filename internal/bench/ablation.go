package bench

import (
	"fmt"
	"io"

	"uu/internal/core"
	"uu/internal/gpusim"
	"uu/internal/pipeline"
	"uu/internal/transform"
)

// AblationRow is one variant measured by RunAblations.
type AblationRow struct {
	Name    string
	Millis  float64
	Speedup float64 // over the baseline row
	Code    int64
	Err     string
}

// AblationVariants returns the pipeline variants that probe the design
// decisions DESIGN.md calls out:
//
//  1. whole-tail-path duplication (the paper's design) vs. DBDS-style
//     direct-successor-only duplication [8];
//  2. GVN's dominated-edge equality propagation — the mechanism that turns
//     provenance into deleted conditions;
//  3. GVN's alias-aware load elimination — the "read elimination" wins;
//  4. backend if-conversion — the selp predication that u&u un-does.
func AblationVariants(loopID, factor int) []struct {
	Name string
	Opts pipeline.Options
} {
	noEq := transform.DefaultGVNOptions()
	noEq.PropagateEqualities = false
	noLoads := transform.DefaultGVNOptions()
	noLoads.EliminateLoads = false
	return []struct {
		Name string
		Opts pipeline.Options
	}{
		{"baseline", pipeline.Options{Config: pipeline.Baseline}},
		{"baseline/no-ifconvert", pipeline.Options{Config: pipeline.Baseline, DisableIfConvert: true}},
		{"uu", pipeline.Options{Config: pipeline.UU, LoopID: loopID, Factor: factor}},
		{"uu/direct-successor", pipeline.Options{Config: pipeline.UU, LoopID: loopID, Factor: factor,
			Unmerge: core.Options{DirectSuccessorOnly: true}}},
		{"uu/no-equality-prop", pipeline.Options{Config: pipeline.UU, LoopID: loopID, Factor: factor, GVN: &noEq}},
		{"uu/no-load-elim", pipeline.Options{Config: pipeline.UU, LoopID: loopID, Factor: factor, GVN: &noLoads}},
		{"uu/no-ifconvert", pipeline.Options{Config: pipeline.UU, LoopID: loopID, Factor: factor, DisableIfConvert: true}},
		{"uu/selective", pipeline.Options{Config: pipeline.UU, LoopID: loopID, Factor: factor,
			Unmerge: core.Options{Selective: true}}},
	}
}

// RunAblations measures every ablation variant of one application's loop,
// verifying each against the reference interpreter.
func RunAblations(app string, loopID, factor int, dev gpusim.DeviceConfig) ([]AblationRow, error) {
	b := ByName(app)
	if b == nil {
		return nil, fmt.Errorf("bench: unknown application %q", app)
	}
	w := b.NewWorkload()
	ref, err := Reference(b, w)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	var baseMillis float64
	for _, v := range AblationVariants(loopID, factor) {
		row := AblationRow{Name: v.Name}
		cr, err := Compile(b, v.Opts)
		if err != nil {
			row.Err = err.Error()
			rows = append(rows, row)
			continue
		}
		m, err := Execute(cr, w, dev, ref)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", app, v.Name, err)
		}
		row.Millis = m.KernelMillis(dev)
		row.Code = cr.Program.CodeBytes()
		if v.Name == "baseline" {
			baseMillis = row.Millis
		}
		if baseMillis > 0 {
			row.Speedup = baseMillis / row.Millis
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteAblations renders ablation rows as a table.
func WriteAblations(w io.Writer, app string, loopID, factor int, rows []AblationRow) {
	fmt.Fprintf(w, "Ablations: %s loop=%d u=%d\n", app, loopID, factor)
	fmt.Fprintf(w, "%-24s %12s %9s %9s\n", "variant", "time (ms)", "speedup", "code (B)")
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(w, "%-24s %12s %9s %9s  (%s)\n", r.Name, "-", "-", "-", r.Err)
			continue
		}
		fmt.Fprintf(w, "%-24s %12.5f %9.3f %9d\n", r.Name, r.Millis, r.Speedup, r.Code)
	}
}
