package bench

import (
	"io"
	"testing"

	"uu/internal/pipeline"
)

// TestPaperShapes runs the harness on the four benchmarks the paper analyses
// in depth and asserts the qualitative results of Sections IV and V: who
// wins, in which direction the counters move, and where u&u hurts. Absolute
// numbers differ from the paper's V100 (we run a simulator), but these
// shapes are the reproduction target.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("harness sweep in -short mode")
	}
	res, err := RunExperiments(HarnessOptions{
		Apps:     []string{"xsbench", "complex", "bezier-surface", "rainflow"},
		Factors:  []int{2, 4, 8},
		Progress: io.Discard,
	})
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	speedup := func(app string, cfg pipeline.Config, factor int) float64 {
		best := res.Best(app, cfg, factor)
		if best == nil {
			t.Fatalf("no record for %s/%s/u%d", app, cfg, factor)
		}
		return best.Speedup(res.Baseline[app])
	}

	// bezier-surface: u&u wins clearly, beating unroll-only and
	// unmerge-only (Fig. 7; §III-B's 30% example).
	if s := speedup("bezier-surface", pipeline.UU, 0); s < 1.25 {
		t.Errorf("bezier u&u best speedup = %.3f, want > 1.25", s)
	}
	if speedup("bezier-surface", pipeline.UU, 0) <= speedup("bezier-surface", pipeline.UnrollOnly, 0) {
		t.Errorf("bezier: u&u (%.3f) should beat unroll-only (%.3f)",
			speedup("bezier-surface", pipeline.UU, 0), speedup("bezier-surface", pipeline.UnrollOnly, 0))
	}
	if speedup("bezier-surface", pipeline.UU, 0) <= speedup("bezier-surface", pipeline.UnmergeOnly, 0) {
		t.Errorf("bezier: u&u should beat unmerge-only")
	}

	// rainflow: u&u wins via load + condition elimination and beats unroll
	// (Fig. 7, §V).
	if s := speedup("rainflow", pipeline.UU, 0); s < 1.15 {
		t.Errorf("rainflow u&u best speedup = %.3f, want > 1.15", s)
	}
	if speedup("rainflow", pipeline.UU, 0) <= speedup("rainflow", pipeline.UnrollOnly, 0) {
		t.Errorf("rainflow: u&u should beat unroll-only")
	}

	// complex: u&u slows down, and the slowdown grows with the unroll
	// factor (§IV RQ1, §V).
	s2 := speedup("complex", pipeline.UU, 2)
	s4 := speedup("complex", pipeline.UU, 4)
	s8 := speedup("complex", pipeline.UU, 8)
	if !(s8 < s4 && s4 < s2) {
		t.Errorf("complex: u&u slowdown should grow with factor: u2=%.3f u4=%.3f u8=%.3f", s2, s4, s8)
	}
	if s8 > 0.5 {
		t.Errorf("complex u&u u=8 = %.3f, want severe slowdown (< 0.5)", s8)
	}

	// unmerge alone is mostly ineffective (Fig. 8b).
	for _, app := range []string{"xsbench", "complex", "rainflow"} {
		if s := speedup(app, pipeline.UnmergeOnly, 0); s < 0.9 || s > 1.25 {
			t.Errorf("%s: unmerge-only speedup %.3f outside the near-neutral band", app, s)
		}
	}

	// Counter movements of §V.
	base := res.Baseline["rainflow"].Metrics
	rf := res.Best("rainflow", pipeline.UU, 4)
	if rf == nil {
		t.Fatalf("no rainflow u&u u=4 record")
	}
	m := rf.Metrics
	if got := float64(m.ClassThread[1]) / float64(base.ClassThread[1]); got > 0.5 {
		t.Errorf("rainflow inst_misc ratio = %.2f, want large reduction (paper: -77%%)", got)
	}
	if got := float64(m.ClassThread[2]) / float64(base.ClassThread[2]); got > 0.8 {
		t.Errorf("rainflow inst_control ratio = %.2f, want reduction (paper: -45%%)", got)
	}
	if m.GldTransactions >= base.GldTransactions {
		t.Errorf("rainflow loads not reduced: %d -> %d", base.GldTransactions, m.GldTransactions)
	}
	if m.WarpExecutionEfficiency(res.Device) >= base.WarpExecutionEfficiency(res.Device) {
		t.Errorf("rainflow warp efficiency should drop under u&u")
	}

	// XSBench §V: misc instructions (selp/mov data movement) drop, warp
	// efficiency drops, yet the kernel does not slow down at u=2.
	xb := res.Baseline["xsbench"].Metrics
	xr := res.Best("xsbench", pipeline.UU, 2)
	if xr == nil {
		t.Fatalf("no xsbench u&u u=2 record")
	}
	if got := float64(xr.Metrics.ClassThread[1]) / float64(xb.ClassThread[1]); got > 0.85 {
		t.Errorf("xsbench inst_misc ratio = %.2f, want reduction (paper: -55%%)", got)
	}
	if xr.Metrics.WarpExecutionEfficiency(res.Device) >= xb.WarpExecutionEfficiency(res.Device) {
		t.Errorf("xsbench warp efficiency should drop under u&u")
	}
	if s := xr.Speedup(res.Baseline["xsbench"]); s < 0.95 {
		t.Errorf("xsbench u&u u=2 speedup = %.3f, want >= 0.95 despite divergence", s)
	}

	// complex §V: warp efficiency collapses and fetch stalls blow up at u=8.
	cb := res.Baseline["complex"].Metrics
	cr := res.Best("complex", pipeline.UU, 8)
	if cr == nil {
		t.Fatalf("no complex u&u u=8 record")
	}
	if cr.Metrics.WarpExecutionEfficiency(res.Device) > 0.3 {
		t.Errorf("complex u&u u=8 warp efficiency = %.2f, want collapse (paper: 19%%)",
			cr.Metrics.WarpExecutionEfficiency(res.Device))
	}
	if cr.Metrics.StallInstFetchPct() <= cb.StallInstFetchPct() {
		t.Errorf("complex u&u u=8 fetch stalls should rise (paper: 3.7%% -> 79.6%%)")
	}

	// Code size grows with the unroll factor (Fig. 6b), roughly following
	// f(p,s,u) before cleanup.
	for _, app := range []string{"complex", "rainflow"} {
		c2 := findRec(res, app, pipeline.UU, 0, 2).CodeBytes
		c8 := findRec(res, app, pipeline.UU, 0, 8).CodeBytes
		if c8 <= c2 {
			t.Errorf("%s: code size should grow with factor: u2=%d u8=%d", app, c2, c8)
		}
	}
}
