package bench

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uu/internal/core"
	"uu/internal/gpusim"
	"uu/internal/pipeline"
	"uu/internal/profile"
)

// goldenProfile produces the golden hotspot content for one (app, config)
// cell: the hotspot tables, the heuristic prediction join when the run made
// decisions, and the folded stacks — or a SKIP line when the pipeline
// refuses the configuration.
func goldenProfile(b *Benchmark, opts pipeline.Options, workers int) string {
	cr, err := Compile(b, opts)
	if err != nil {
		return fmt.Sprintf("SKIP: %v\n", err)
	}
	w := b.NewWorkload()
	prof := gpusim.NewProfile(cr.Program)
	if _, err := ExecuteWorkersProfiled(cr, w, gpusim.V100(), nil, workers, nil, 0, prof); err != nil {
		return fmt.Sprintf("ERROR: %v\n", err)
	}
	rep := profile.Build(cr.Program, prof)
	var sb strings.Builder
	if err := profile.WriteHotspots(&sb, rep); err != nil {
		panic(err)
	}
	if len(cr.Stats.Decisions) > 0 {
		sb.WriteString("\n")
		if err := profile.WritePrediction(&sb, rep, cr.Stats.Decisions, cr.Stats.Skips, core.DefaultHeuristicParams().C); err != nil {
			panic(err)
		}
	}
	sb.WriteString("\n")
	if err := profile.WriteFolded(&sb, rep); err != nil {
		panic(err)
	}
	return sb.String()
}

// TestGoldenProfiles pins the hotspot profiles of the four Section V
// kernels across all five pipeline configurations. The per-PC counters are
// integers (stall cycles in fixed point), so the rendered tables must be
// byte-identical run to run and for every -sim-workers count; a diff means
// the simulator's cost attribution changed (regenerate with -update-golden
// after review) or the profile merge lost determinism (a bug).
func TestGoldenProfiles(t *testing.T) {
	dir := filepath.Join("testdata", "goldenprofiles")
	if *updateGolden {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, app := range remarkCorpusApps {
		b := ByName(app)
		if b == nil {
			t.Fatalf("unknown corpus app %q", app)
		}
		t.Run(app, func(t *testing.T) {
			t.Parallel()
			for _, opts := range goldenCases() {
				name := strings.TrimSuffix(goldenName(b.Name, opts), ".vptx") + ".profile"
				got := goldenProfile(b, opts, *simWorkers)
				path := filepath.Join(dir, name)
				if *updateGolden {
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					continue
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden %s (run with -update-golden to capture): %v", name, err)
				}
				if got != string(want) {
					t.Errorf("%s: profile differs from golden %s (sim-workers=%d, %d vs %d bytes)",
						b.Name, name, *simWorkers, len(got), len(want))
				}
			}
		})
	}
}

// TestProfileWorkerInvariance is the profiling determinism contract at the
// harness level: every rendered artifact — the hotspot report, the folded
// stacks, and the binary pprof protobuf — must be byte-identical whether
// the campaign ran on 1 worker with sequential simulation or on 8 workers
// with parallel warp scheduling. This is what allows profiles to be
// compared across machines and pinned as goldens.
func TestProfileWorkerInvariance(t *testing.T) {
	run := func(workers, simWorkers int) string {
		res, err := RunExperiments(HarnessOptions{
			Apps:       []string{"complex", "bezier-surface"},
			Factors:    []int{2},
			Workers:    workers,
			SimWorkers: simWorkers,
			Profile:    true,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteProfileReport(&buf, res); err != nil {
			t.Fatal(err)
		}
		for _, app := range []string{"bezier-surface", "complex"} {
			rec := res.Heuristic[app]
			if rec == nil || rec.Profile == nil {
				t.Fatalf("no heuristic profile for %s", app)
			}
			rep := profile.Build(rec.Program, rec.Profile)
			if err := profile.WriteFolded(&buf, rep); err != nil {
				t.Fatal(err)
			}
			if err := profile.WritePprof(&buf, rep); err != nil {
				t.Fatal(err)
			}
		}
		return buf.String()
	}
	for _, sw := range []int{2, 4} {
		seq := run(1, 1)
		par := run(8, sw)
		if !strings.Contains(seq, "kernel bezier") {
			t.Fatalf("campaign produced no profile report:\n%.400s", seq)
		}
		if seq != par {
			t.Errorf("profile artifacts depend on worker count (sim-workers=%d: %d vs %d bytes)",
				sw, len(seq), len(par))
		}
	}
}
