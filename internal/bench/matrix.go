package bench

import (
	"context"
	"fmt"
	"io"

	"uu/internal/gpusim"
	"uu/internal/pipeline"
)

// Sweep is one cell of a campaign matrix: a full RunExperiments result
// under one (device, input mode) combination.
type Sweep struct {
	DeviceName string
	Input      InputMode
	Results    *Results
}

// Matrix is a set of sweeps over the device × input-mode grid, in run
// order (devices outer, input modes inner).
type Matrix struct {
	Sweeps []*Sweep
}

// MatrixOptions configures RunMatrix. Harness is the per-sweep template;
// its Device, DeviceName and Input fields are overwritten for each cell.
type MatrixOptions struct {
	Harness HarnessOptions
	// Devices are gpusim device specs (registry names, optionally with
	// overrides — see gpusim.ParseDevice). Nil means the full registry.
	Devices []string
	// Inputs are the input modes to sweep. Nil means coherent only.
	Inputs []InputMode
}

// RunMatrix runs the campaign once per (device, input) cell. Every sweep
// uses the same apps, factors and harness settings, so cross-cell
// comparisons differ only in the dimension under study.
func RunMatrix(opts MatrixOptions) (*Matrix, error) {
	return RunMatrixCtx(context.Background(), opts)
}

// RunMatrixCtx is RunMatrix under a context. On cancellation the in-flight
// sweep stops at its next pass/block boundary and the completed sweeps —
// plus the interrupted sweep's completed runs — are returned as a partial
// Matrix alongside the context's error, so a SIGINT mid-matrix still
// flushes every cell measured so far.
func RunMatrixCtx(ctx context.Context, opts MatrixOptions) (*Matrix, error) {
	devices := opts.Devices
	if devices == nil {
		devices = gpusim.DeviceNames()
	}
	inputs := opts.Inputs
	if inputs == nil {
		inputs = []InputMode{InputCoherent}
	}
	mx := &Matrix{}
	for _, spec := range devices {
		cfg, name, err := gpusim.ParseDevice(spec)
		if err != nil {
			return nil, err
		}
		for _, in := range inputs {
			hopts := opts.Harness
			hopts.Device = &cfg
			hopts.DeviceName = name
			hopts.Input = in
			res, err := RunExperimentsCtx(ctx, hopts)
			if res != nil && (err == nil || ctx.Err() != nil) {
				mx.Sweeps = append(mx.Sweeps, &Sweep{DeviceName: name, Input: in, Results: res})
			}
			if ctx.Err() != nil {
				return mx, fmt.Errorf("bench: matrix interrupted at device=%s input=%s: %w", name, in, ctx.Err())
			}
			if err != nil {
				return nil, fmt.Errorf("bench: sweep device=%s input=%s: %w", name, in, err)
			}
		}
	}
	return mx, nil
}

// Verdict classifies one application's heuristic speedup across every
// sweep of a matrix.
type Verdict struct {
	App string
	// Speedups holds the heuristic speedup per sweep, in matrix order.
	Speedups []float64
	// Class is "robust win" (>= robustWin everywhere), "robust loss"
	// (<= robustLoss everywhere), "neutral" (inside the dead band
	// everywhere), or "model-specific" (the sign of the effect flips with
	// the device or input — the conclusion is an artifact of one model).
	Class string
}

// Robustness thresholds: a ±2% dead band around 1.0 absorbs measurement
// granularity, so only effects outside it count as wins or losses.
const (
	robustWin  = 1.02
	robustLoss = 0.98
)

// Verdicts computes the per-application robustness classification over
// the matrix's sweeps. Applications missing from any sweep are skipped.
func (mx *Matrix) Verdicts() []Verdict {
	if len(mx.Sweeps) == 0 {
		return nil
	}
	var out []Verdict
	for _, app := range appsOf(mx.Sweeps[0].Results) {
		v := Verdict{App: app}
		wins, losses, neutrals := 0, 0, 0
		ok := true
		for _, s := range mx.Sweeps {
			base, heur := s.Results.Baseline[app], s.Results.Heuristic[app]
			if base == nil || heur == nil {
				ok = false
				break
			}
			sp := heur.Speedup(base)
			v.Speedups = append(v.Speedups, sp)
			switch {
			case sp >= robustWin:
				wins++
			case sp <= robustLoss:
				losses++
			default:
				neutrals++
			}
		}
		if !ok {
			continue
		}
		switch {
		case wins == len(mx.Sweeps):
			v.Class = "robust win"
		case losses == len(mx.Sweeps):
			v.Class = "robust loss"
		case wins == 0 && losses == 0:
			v.Class = "neutral"
		default:
			v.Class = "model-specific"
		}
		out = append(out, v)
	}
	return out
}

// sweepLabel names a sweep column. The input mode is elided when the
// matrix only swept one mode, keeping single-dimension tables narrow.
func (mx *Matrix) sweepLabel(s *Sweep) string {
	for _, o := range mx.Sweeps {
		if o.Input != s.Input {
			return fmt.Sprintf("%s/%s", s.DeviceName, s.Input)
		}
	}
	return s.DeviceName
}

// WriteDeviceMatrix renders the cross-sweep report: the per-sweep figure
// tables, the heuristic-speedup robustness matrix with a verdict per
// application, and the fetch-stall cross-check on complex — the paper's
// 0.06× fetch-stall collapse is the conclusion most at risk of being an
// IPDOM-stack artifact, so the table shows baseline → best-u&u
// stall_inst_fetch fractions on every device model.
func WriteDeviceMatrix(w io.Writer, mx *Matrix) {
	for _, s := range mx.Sweeps {
		fmt.Fprintf(w, "=== sweep: device=%s input=%s ===\n", s.DeviceName, s.Input)
		WriteFig6a(w, s.Results)
		fmt.Fprintf(w, "\n")
		WriteFig7(w, s.Results)
		fmt.Fprintf(w, "\n")
		WriteFig8(w, s.Results)
		fmt.Fprintf(w, "\n")
	}

	fmt.Fprintf(w, "=== cross-sweep robustness: heuristic speedup per sweep ===\n")
	fmt.Fprintf(w, "%-16s", "app")
	for _, s := range mx.Sweeps {
		fmt.Fprintf(w, " %16s", mx.sweepLabel(s))
	}
	fmt.Fprintf(w, "  %s\n", "verdict")
	for _, v := range mx.Verdicts() {
		fmt.Fprintf(w, "%-16s", v.App)
		for _, sp := range v.Speedups {
			fmt.Fprintf(w, " %16.3f", sp)
		}
		fmt.Fprintf(w, "  %s\n", v.Class)
	}

	writeFetchStallMatrix(w, mx, "complex")
}

// writeFetchStallMatrix renders the per-sweep stall_inst_fetch fraction of
// one app, baseline vs u&u at the largest factor swept — the regime where
// the paper observes complex's fetch-stall collapse (u=8), not the app's
// *best* u&u run, which by construction avoids the collapse.
func writeFetchStallMatrix(w io.Writer, mx *Matrix, app string) {
	fmt.Fprintf(w, "\n=== %s stall_inst_fetch: baseline -> u&u at max factor per sweep ===\n", app)
	fmt.Fprintf(w, "%-16s %12s %12s %8s\n", "sweep", "baseline", "max-u u&u", "ratio")
	for _, s := range mx.Sweeps {
		base := s.Results.Baseline[app]
		if base == nil {
			continue
		}
		var rec *RunRecord
		for _, r := range s.Results.PerLoop {
			if r.App != app || r.Config != pipeline.UU || r.Skipped != "" {
				continue
			}
			if rec == nil || r.Factor > rec.Factor {
				rec = r
			}
		}
		if rec == nil {
			fmt.Fprintf(w, "%-16s %11.2f%% %12s %8s\n",
				mx.sweepLabel(s), base.Metrics.StallInstFetchPct()*100, "-", "-")
			continue
		}
		bp, up := base.Metrics.StallInstFetchPct(), rec.Metrics.StallInstFetchPct()
		ratio := 0.0
		if bp > 0 {
			ratio = up / bp
		}
		fmt.Fprintf(w, "%-16s %11.2f%% %11.2f%% %7.2fx\n",
			mx.sweepLabel(s), bp*100, up*100, ratio)
	}
}
