package bench

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"uu/internal/core"
	"uu/internal/pipeline"
)

// updateGolden regenerates the golden VPTX files instead of comparing:
//
//	go test ./internal/bench -run TestGoldenVPTX -update-golden
//
// The files under testdata/golden were captured from the pre-refactor
// (seed) pipeline; the pass-manager refactor must reproduce them byte for
// byte. Only regenerate them for an intentional, reviewed change to the
// optimization pipeline's output.
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden from the current pipeline")

// goldenCases enumerates the 16 kernels x 6 configurations the equivalence
// test covers. The per-loop configurations (unroll, unmerge, uu) address
// loop 0 with factor 2 — every benchmark has at least one loop, and loop 0
// exists for all of them. Configurations that fail to apply record the
// error text instead of VPTX, so "this loop is untransformable" is part of
// the golden contract too.
//
// Every case runs with the crash-containment guard and per-pass verifier
// enabled: the corpora were captured without them, so matching byte for
// byte proves the guard's snapshot/verify/rollback machinery is invisible
// on the healthy path.
func goldenCases() []pipeline.Options {
	return []pipeline.Options{
		{Config: pipeline.Baseline, Contain: true, VerifyEachPass: true},
		{Config: pipeline.UnrollOnly, LoopID: 0, Factor: 2, Contain: true, VerifyEachPass: true},
		{Config: pipeline.UnmergeOnly, LoopID: 0, Contain: true, VerifyEachPass: true},
		{Config: pipeline.UU, LoopID: 0, Factor: 2, Contain: true, VerifyEachPass: true},
		{Config: pipeline.UUHeuristic, Contain: true, VerifyEachPass: true},
		// Selective mode: the heuristic with the benefit-predictor unmerge,
		// the paper's §VI "unmerge only profitable merges" promoted from
		// ablation to first-class (core.HeuristicParams.Selective).
		{Config: pipeline.UUHeuristic, Heuristic: core.HeuristicParams{Selective: true},
			Contain: true, VerifyEachPass: true},
	}
}

func goldenName(app string, opts pipeline.Options) string {
	switch opts.Config {
	case pipeline.Baseline, pipeline.UUHeuristic:
		if opts.Heuristic.Selective {
			return fmt.Sprintf("%s_%s-selective.vptx", app, opts.Config)
		}
		return fmt.Sprintf("%s_%s.vptx", app, opts.Config)
	default:
		return fmt.Sprintf("%s_%s_l%d_u%d.vptx", app, opts.Config, opts.LoopID, opts.Factor)
	}
}

// goldenCompile produces the golden file content for one (app, config) cell:
// the VPTX text, or a SKIP line holding the pipeline error.
func goldenCompile(b *Benchmark, opts pipeline.Options) string {
	cr, err := Compile(b, opts)
	if err != nil {
		return fmt.Sprintf("SKIP: %v\n", err)
	}
	return cr.Program.String()
}

func TestGoldenVPTX(t *testing.T) {
	dir := filepath.Join("testdata", "golden")
	if *updateGolden {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range Suite {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			for _, opts := range goldenCases() {
				name := goldenName(b.Name, opts)
				got := goldenCompile(b, opts)
				path := filepath.Join(dir, name)
				if *updateGolden {
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					continue
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden %s (run with -update-golden to capture): %v", name, err)
				}
				if got != string(want) {
					t.Errorf("%s: VPTX differs from golden %s (%d vs %d bytes)",
						b.Name, name, len(got), len(want))
				}
			}
		})
	}
}
