package bench

import (
	"strings"
	"testing"

	"uu/internal/gpusim"
	"uu/internal/pipeline"
)

// TestSuiteCorrectness is the central differential test: for every
// benchmark, the simulated output of every pipeline configuration must match
// the sequential reference interpreter running the unoptimized kernel.
func TestSuiteCorrectness(t *testing.T) {
	dev := gpusim.V100()
	for _, b := range Suite {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			w := b.NewWorkload()
			ref, err := Reference(b, w)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			nloops := LoopCount(b)
			if nloops == 0 {
				t.Fatalf("benchmark has no loops")
			}

			check := func(name string, opts pipeline.Options) {
				t.Helper()
				opts.VerifyEachPass = true
				cr, err := Compile(b, opts)
				if err != nil {
					if opts.Config == pipeline.Baseline || opts.Config == pipeline.UUHeuristic {
						t.Fatalf("%s: compile: %v", name, err)
					}
					if strings.Contains(err.Error(), "not unrollable") ||
						strings.Contains(err.Error(), "convergent") ||
						strings.Contains(err.Error(), "multiple latches") {
						return // legitimately untransformable loop
					}
					t.Fatalf("%s: compile: %v", name, err)
				}
				if _, err := Execute(cr, w, dev, ref); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
			}

			check("baseline", pipeline.Options{Config: pipeline.Baseline})
			check("heuristic", pipeline.Options{Config: pipeline.UUHeuristic})
			for loop := 0; loop < nloops; loop++ {
				check("unmerge", pipeline.Options{Config: pipeline.UnmergeOnly, LoopID: loop})
				check("uu2", pipeline.Options{Config: pipeline.UU, LoopID: loop, Factor: 2})
				check("unroll2", pipeline.Options{Config: pipeline.UnrollOnly, LoopID: loop, Factor: 2})
			}
		})
	}
}

// TestSuiteHigherFactors exercises factors 4 and 8 on the benchmarks the
// paper analyses in depth.
func TestSuiteHigherFactors(t *testing.T) {
	dev := gpusim.V100()
	for _, name := range []string{"xsbench", "bezier-surface", "rainflow", "complex"} {
		b := ByName(name)
		w := b.NewWorkload()
		ref, err := Reference(b, w)
		if err != nil {
			t.Fatalf("%s reference: %v", name, err)
		}
		for _, factor := range []int{4, 8} {
			for loop := 0; loop < LoopCount(b); loop++ {
				opts := pipeline.Options{Config: pipeline.UU, LoopID: loop, Factor: factor, VerifyEachPass: true}
				cr, err := Compile(b, opts)
				if err != nil {
					continue
				}
				if _, err := Execute(cr, w, dev, ref); err != nil {
					t.Fatalf("%s loop %d factor %d: %v", name, loop, factor, err)
				}
			}
		}
	}
}

// TestTable1Shape sanity-checks the documentary metadata.
func TestTable1Shape(t *testing.T) {
	if len(Suite) != 16 {
		t.Fatalf("suite has %d benchmarks, want 16", len(Suite))
	}
	seen := map[string]bool{}
	for _, b := range Suite {
		if b.Name == "" || b.Category == "" || b.Source == "" || b.NewWorkload == nil {
			t.Fatalf("benchmark %q incomplete", b.Name)
		}
		if seen[b.Name] {
			t.Fatalf("duplicate benchmark %q", b.Name)
		}
		seen[b.Name] = true
		if b.KernelPct <= 0 || b.KernelPct > 1 {
			t.Fatalf("%s: bad KernelPct %v", b.Name, b.KernelPct)
		}
	}
	if ByName("xsbench") == nil || ByName("nope") != nil {
		t.Fatalf("ByName wrong")
	}
}

// TestWorkloadInvariants checks structural sanity of every benchmark's
// workload: output regions inside memory, launch geometry consistent, and
// the kernel compilable with at least one addressable loop.
func TestWorkloadInvariants(t *testing.T) {
	elemSize := map[string]int64{"f64": 8, "i64": 8, "f32": 4, "i32": 4}
	for _, b := range Suite {
		w := b.NewWorkload()
		if w.Launch.GridDim <= 0 || w.Launch.BlockDim <= 0 {
			t.Errorf("%s: bad launch %+v", b.Name, w.Launch)
		}
		if len(w.Outputs) == 0 {
			t.Errorf("%s: no output regions to verify", b.Name)
		}
		for _, r := range w.Outputs {
			sz, ok := elemSize[r.Elem]
			if !ok {
				t.Errorf("%s: bad region elem %q", b.Name, r.Elem)
				continue
			}
			if r.Base < 0 || r.Base+r.Count*sz > w.MemSize {
				t.Errorf("%s: region %s [%d, %d) outside memory %d",
					b.Name, r.Name, r.Base, r.Base+r.Count*sz, w.MemSize)
			}
		}
		if n := len(b.Kernel().Params); n != len(w.Args) {
			t.Errorf("%s: %d params but %d args", b.Name, n, len(w.Args))
		}
		if b.AppCodeBytes <= 0 || b.AppCompileMs <= 0 {
			t.Errorf("%s: missing application-scale constants", b.Name)
		}
	}
}

// TestWorkloadDeterminism: NewWorkload must be reproducible (the harness
// relies on identical inputs across configurations).
func TestWorkloadDeterminism(t *testing.T) {
	for _, b := range Suite {
		w1 := b.NewWorkload()
		w2 := b.NewWorkload()
		m1, m2 := w1.NewMemory(), w2.NewMemory()
		if len(m1.Data) != len(m2.Data) {
			t.Errorf("%s: memory sizes differ", b.Name)
			continue
		}
		for i := range m1.Data {
			if m1.Data[i] != m2.Data[i] {
				t.Errorf("%s: workload initialization not deterministic (byte %d)", b.Name, i)
				break
			}
		}
	}
}
