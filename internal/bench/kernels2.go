package bench

import (
	"math"
	"math/rand"

	"uu/internal/gpusim"
	"uu/internal/interp"
)

// Haccmk is an O(N*M) short-range force kernel: dense floating-point work
// with a single clamp branch. Plain unrolling already removes most loop
// overhead; u&u adds code size for little extra benefit (the paper: unroll
// slightly ahead of u&u because of instruction-fetch stalls).
var Haccmk = &Benchmark{
	Name:         "haccmk",
	AppCodeBytes: 3000,
	AppCompileMs: 12,
	Category:     "Simulation",
	CommandLine:  "2000",
	KernelPct:    0.9983,
	Source: `
kernel haccmk(float* restrict xx, float* restrict yy, float* restrict zz, float* restrict mass, float* restrict fx, long n, long m, float rsm) {
  long gid = (long)global_id();
  if (gid >= n) { return; }
  float xi = xx[gid];
  float yi = yy[gid];
  float zi = zz[gid];
  float f = 0.0f;
  for (long j = 0; j < m; j++) {
    float dx = xx[j] - xi;
    float dy = yy[j] - yi;
    float dz = zz[j] - zi;
    float r2 = dx * dx + dy * dy + dz * dz;
    if (r2 < rsm) { r2 = rsm; }
    float r2inv = 1.0f / sqrt(r2 * r2 * r2);
    float poly = r2 * (0.5f + r2 * 0.25f);
    f += mass[j] * dx * (r2inv - poly * 0.001f);
  }
  fx[gid] = f;
}
`,
	NewWorkload: func() *Workload {
		const n, m = 1024, 256
		xxBase := int64(0)
		yyBase := xxBase + 4*m
		zzBase := yyBase + 4*m
		massBase := zzBase + 4*m
		fxBase := massBase + 4*m
		return &Workload{
			Args: []interp.Value{interp.IntVal(xxBase), interp.IntVal(yyBase), interp.IntVal(zzBase),
				interp.IntVal(massBase), interp.IntVal(fxBase), interp.IntVal(n), interp.IntVal(m),
				interp.FloatVal(0.01)},
			MemSize: fxBase + 4*n,
			Init: func(mm *interp.Memory) {
				// Particles are spatially tiled (as HACC's blocking does), so
				// the threads of a warp hold neighbouring particles and the
				// softening clamp fires in lockstep.
				rng := rand.New(rand.NewSource(18))
				for i := int64(0); i < m; i++ {
					cx := float64((i/32)%4) * 0.25
					mm.SetF32(xxBase, i, float32(cx+rng.Float64()*0.01))
					mm.SetF32(yyBase, i, float32(cx*0.5+rng.Float64()*0.01))
					mm.SetF32(zzBase, i, float32(rng.Float64()*0.01))
					mm.SetF32(massBase, i, float32(rng.Float64()+0.5))
				}
			},
			// White noise: positions scattered over the whole box instead of
			// spatially tiled, so the softening clamp fires per lane.
			Noise: func(mm *interp.Memory) {
				rng := rand.New(rand.NewSource(noiseSeed + 18))
				for i := int64(0); i < m; i++ {
					mm.SetF32(xxBase, i, float32(rng.Float64()))
					mm.SetF32(yyBase, i, float32(rng.Float64()))
					mm.SetF32(zzBase, i, float32(rng.Float64()))
					mm.SetF32(massBase, i, float32(rng.Float64()+0.5))
				}
			},
			Launch:  gpusim.Launch{GridDim: n / 128, BlockDim: 128},
			Outputs: []Region{{"fx", fxBase, n, "f32"}},
		}
	},
}

// LavaMD models particle interactions inside a neighbor box with an
// exponential kernel and a cutoff branch.
var LavaMD = &Benchmark{
	Name:         "lavaMD",
	AppCodeBytes: 40000,
	AppCompileMs: 90,
	Category:     "Simulation",
	CommandLine:  "-boxes1d 30",
	KernelPct:    0.6652,
	Source: `
kernel lavamd(double* restrict px, double* restrict py, double* restrict pz, double* restrict q, double* restrict out, long npart, long nneigh, double cutoff) {
  long gid = (long)global_id();
  if (gid >= npart) { return; }
  double xi = px[gid];
  double yi = py[gid];
  double zi = pz[gid];
  double acc = 0.0;
  for (long j = 0; j < nneigh; j++) {
    double dx = px[j] - xi;
    double dy = py[j] - yi;
    double dz = pz[j] - zi;
    double r2 = dx * dx + dy * dy + dz * dz;
    if (r2 < cutoff) {
      double u = exp(-0.5 * r2);
      acc += q[j] * u;
    } else {
      acc += q[j] / (1.0 + r2);
    }
  }
  out[gid] = acc;
}
`,
	NewWorkload: func() *Workload {
		const npart, nneigh = 1024, 128
		pxBase := int64(0)
		pyBase := pxBase + 8*nneigh
		pzBase := pyBase + 8*nneigh
		qBase := pzBase + 8*nneigh
		outBase := qBase + 8*nneigh
		return &Workload{
			Args: []interp.Value{interp.IntVal(pxBase), interp.IntVal(pyBase), interp.IntVal(pzBase),
				interp.IntVal(qBase), interp.IntVal(outBase), interp.IntVal(npart), interp.IntVal(nneigh),
				interp.FloatVal(0.5)},
			MemSize: outBase + 8*npart,
			Init: func(m *interp.Memory) {
				// lavaMD's boxes are spatial clusters: particles of the same
				// warp are neighbours, so the cutoff test agrees lane-to-lane.
				rng := rand.New(rand.NewSource(19))
				for i := int64(0); i < nneigh; i++ {
					cx := float64((i/32)%2) * 1.5
					m.SetF64(pxBase, i, cx+rng.Float64()*0.05)
					m.SetF64(pyBase, i, cx*0.3+rng.Float64()*0.05)
					m.SetF64(pzBase, i, rng.Float64()*0.05)
					m.SetF64(qBase, i, rng.Float64()*2-1)
				}
			},
			// White noise: particles scattered uniformly, so the cutoff test
			// disagrees lane-to-lane on most neighbours.
			Noise: func(m *interp.Memory) {
				rng := rand.New(rand.NewSource(noiseSeed + 19))
				for i := int64(0); i < nneigh; i++ {
					m.SetF64(pxBase, i, rng.Float64()*2)
					m.SetF64(pyBase, i, rng.Float64()*2)
					m.SetF64(pzBase, i, rng.Float64()*2)
					m.SetF64(qBase, i, rng.Float64()*2-1)
				}
			},
			Launch:  gpusim.Launch{GridDim: npart / 128, BlockDim: 128},
			Outputs: []Region{{"out", outBase, npart, "f64"}},
		}
	},
}

// Libor walks forward rates across maturities with two cap conditions per
// step (LIBOR swap pathwise evaluation).
var Libor = &Benchmark{
	Name:         "libor",
	AppCodeBytes: 25000,
	AppCompileMs: 60,
	Category:     "Finance",
	CommandLine:  "100",
	KernelPct:    0.9999,
	Source: `
kernel libor(double* restrict L0, double* restrict out, long npaths, long nmat, double delta) {
  long gid = (long)global_id();
  if (gid >= npaths) { return; }
  double acc = 0.0;
  double lam = 0.2;
  for (long i = 0; i < nmat; i++) {
    double l = L0[i] + (double)gid * 0.000001;
    double con1 = delta * l;
    double v = con1 / (1.0 + con1);
    if (v > 0.4) { v = 0.4; }
    if (l > 0.05) {
      acc += v * lam;
    } else {
      acc -= v * lam;
    }
    lam *= 1.01;
  }
  out[gid] = exp(-acc);
}
`,
	NewWorkload: func() *Workload {
		const npaths, nmat = 2048, 80
		l0Base := int64(0)
		outBase := l0Base + 8*nmat
		return &Workload{
			Args: []interp.Value{interp.IntVal(l0Base), interp.IntVal(outBase),
				interp.IntVal(npaths), interp.IntVal(nmat), interp.FloatVal(0.25)},
			MemSize: outBase + 8*npaths,
			Init: func(m *interp.Memory) {
				rng := rand.New(rand.NewSource(20))
				for i := int64(0); i < nmat; i++ {
					m.SetF64(l0Base, i, 0.02+rng.Float64()*0.08)
				}
			},
			// The rate curve is shared by every path (divergence comes from
			// the per-thread rate offset), so noise is a reseeded curve.
			Noise: func(m *interp.Memory) {
				rng := rand.New(rand.NewSource(noiseSeed + 20))
				for i := int64(0); i < nmat; i++ {
					m.SetF64(l0Base, i, 0.02+rng.Float64()*0.08)
				}
			},
			Launch:  gpusim.Launch{GridDim: npaths / 128, BlockDim: 128},
			Outputs: []Region{{"out", outBase, npaths, "f64"}},
		}
	},
}

// Mandelbrot's escape loop has a compound exit condition; the && lowers to a
// nested branch, giving unmerge alone something to split — the one
// application where the paper measures unmerge ahead of u&u.
var Mandelbrot = &Benchmark{
	Name:         "mandelbrot",
	AppCodeBytes: 20000,
	AppCompileMs: 50,
	Category:     "CV and image processing",
	CommandLine:  "100",
	KernelPct:    0.1447,
	Source: `
kernel mandelbrot(int* restrict iters, long width, long height, long maxIter) {
  long gid = (long)global_id();
  if (gid >= width * height) { return; }
  long px = gid % width;
  long py = gid / width;
  double cr = -2.0 + 2.5 * (double)px / (double)width;
  double ci = -1.25 + 2.5 * (double)py / (double)height;
  double zr = 0.0;
  double zi = 0.0;
  long it = 0;
  while (it < maxIter && zr * zr + zi * zi < 4.0) {
    double t = zr * zr - zi * zi + cr;
    zi = 2.0 * zr * zi + ci;
    zr = t;
    it++;
  }
  iters[gid] = (int)it;
}
`,
	NewWorkload: func() *Workload {
		const width, height, maxIter = 64, 32, 64
		itersBase := int64(0)
		return &Workload{
			Args: []interp.Value{interp.IntVal(itersBase), interp.IntVal(width),
				interp.IntVal(height), interp.IntVal(maxIter)},
			MemSize: 4 * width * height,
			Launch:  gpusim.Launch{GridDim: width * height / 128, BlockDim: 128},
			Outputs: []Region{{"iters", itersBase, width * height, "i32"}},
		}
	},
}

// QTClustering counts neighborhood membership with a two-level condition
// (quality-threshold clustering candidate scan).
var QTClustering = &Benchmark{
	Name:         "qtclustering",
	AppCodeBytes: 25000,
	AppCompileMs: 55,
	Category:     "Machine learning",
	CommandLine:  "no CLI input",
	KernelPct:    0.9914,
	Source: `
kernel qtc(double* restrict pts, long* restrict counts, double* restrict sums, long n, double thr) {
  long gid = (long)global_id();
  if (gid >= n) { return; }
  double p = pts[gid];
  long count = 0;
  double acc = 0.0;
  for (long j = 0; j < n; j++) {
    double d = fabs(pts[j] - p);
    if (d < thr) {
      count++;
      acc += d;
    } else {
      if (d > 2.0 * thr) {
        acc -= 0.125;
      }
    }
  }
  counts[gid] = count;
  sums[gid] = acc;
}
`,
	NewWorkload: func() *Workload {
		const n = 1024
		ptsBase := int64(0)
		countsBase := ptsBase + 8*n
		sumsBase := countsBase + 8*n
		return &Workload{
			Args: []interp.Value{interp.IntVal(ptsBase), interp.IntVal(countsBase),
				interp.IntVal(sumsBase), interp.IntVal(n), interp.FloatVal(0.05)},
			MemSize: sumsBase + 8*n,
			Init: func(m *interp.Memory) {
				// Quantized sorted points: threads of a warp hold
				// near-duplicate candidates (feature-bucketed data), so the
				// threshold tests flip at almost the same scan position
				// across the warp.
				rng := rand.New(rand.NewSource(21))
				for i := int64(0); i < n; i++ {
					cluster := float64(i/32) * 0.0315
					m.SetF64(ptsBase, i, cluster+float64(i%32)*0.0001+rng.Float64()*0.0001)
				}
			},
			// White noise: unsorted, unclustered points, so the threshold
			// tests flip at uncorrelated scan positions across each warp.
			Noise: func(m *interp.Memory) {
				rng := rand.New(rand.NewSource(noiseSeed + 21))
				for i := int64(0); i < n; i++ {
					m.SetF64(ptsBase, i, rng.Float64()*1.1)
				}
			},
			Launch:  gpusim.Launch{GridDim: n / 128, BlockDim: 128},
			Outputs: []Region{{"counts", countsBase, n, "i64"}, {"sums", sumsBase, n, "f64"}},
		}
	},
}

// Quicksort runs a per-thread insertion sort over disjoint segments (the
// data-dependent inner while is the branchy hot loop, as in HeCBench's GPU
// quicksort partitions).
var Quicksort = &Benchmark{
	Name:         "quicksort",
	AppCodeBytes: 150000,
	AppCompileMs: 300,
	Category:     "Sorting",
	CommandLine:  "10 2048 2048",
	KernelPct:    0.8036,
	Source: `
kernel qsortk(double* restrict data, long nseg, long seglen) {
  long gid = (long)global_id();
  if (gid >= nseg) { return; }
  long base = gid * seglen;
  for (long i = base + 1; i < base + seglen; i++) {
    double key = data[i];
    long j = i - 1;
    while (j >= base && data[j] > key) {
      data[j + 1] = data[j];
      j--;
    }
    data[j + 1] = key;
  }
}
`,
	NewWorkload: func() *Workload {
		const nseg, seglen = 512, 48
		dataBase := int64(0)
		return &Workload{
			Args:    []interp.Value{interp.IntVal(dataBase), interp.IntVal(nseg), interp.IntVal(seglen)},
			MemSize: 8 * nseg * seglen,
			Init: func(m *interp.Memory) {
				rng := rand.New(rand.NewSource(22))
				for i := int64(0); i < nseg*seglen; i++ {
					m.SetF64(dataBase, i, rng.Float64()*1000)
				}
			},
			// Already i.i.d.; reseeded for the sweep.
			Noise: func(m *interp.Memory) {
				rng := rand.New(rand.NewSource(noiseSeed + 22))
				for i := int64(0); i < nseg*seglen; i++ {
					m.SetF64(dataBase, i, rng.Float64()*1000)
				}
			},
			Launch:  gpusim.Launch{GridDim: nseg / 128, BlockDim: 128},
			Outputs: []Region{{"data", dataBase, nseg * seglen, "f64"}},
		}
	},
}

// Rainflow is the paper's Listing 6: turning-point extraction whose
// condition outcomes imply which loads are redundant in the next iteration;
// u&u exposes them (inst_misc -77%, gld_throughput -17% in the paper).
var Rainflow = &Benchmark{
	Name:         "rainflow",
	AppCodeBytes: 4000,
	AppCompileMs: 15,
	Category:     "Simulation",
	CommandLine:  "100000 100",
	KernelPct:    0.9955,
	Source: `
kernel rainflow(double* restrict x, double* restrict y, long* restrict cnt, long m) {
  long gid = (long)global_id();
  long base = gid * m;
  long j = base;
  y[j] = x[base];
  for (long i = base + 1; i < base + m - 1; i++) {
    if (x[i] > y[j]) {
      if (x[i] > x[i + 1]) {
        j++;
        y[j] = x[i];
      }
    } else {
      if (x[i] < y[j]) {
        if (x[i] < x[i + 1]) {
          j++;
          y[j] = x[i];
        }
      }
    }
  }
  cnt[gid] = j - base;
}
`,
	NewWorkload: func() *Workload {
		const nthreads, m = 1024, 96
		xBase := int64(0)
		yBase := xBase + 8*nthreads*m
		cntBase := yBase + 8*nthreads*m
		return &Workload{
			Args: []interp.Value{interp.IntVal(xBase), interp.IntVal(yBase),
				interp.IntVal(cntBase), interp.IntVal(m)},
			MemSize: cntBase + 8*nthreads,
			Init: func(mm *interp.Memory) {
				// Load-history-like series: a shared smooth wave with a small
				// per-thread phase shift and mild noise, so threads of a warp
				// mostly agree on each turning point (real rainflow inputs
				// are auto-correlated stress histories, not white noise).
				rng := rand.New(rand.NewSource(23))
				for t := int64(0); t < nthreads; t++ {
					phase := float64(t%32) * 0.01
					for i := int64(0); i < m; i++ {
						v := 5 + 4*math.Sin(0.7*float64(i)+phase) + 0.3*rng.Float64()
						mm.SetF64(xBase, t*m+i, v)
					}
				}
			},
			// White noise: the deviation-#4 case proper — i.i.d. samples in
			// place of the auto-correlated stress history, so every lane's
			// turning-point tests fire independently.
			Noise: func(mm *interp.Memory) {
				rng := rand.New(rand.NewSource(noiseSeed + 23))
				for i := int64(0); i < nthreads*m; i++ {
					mm.SetF64(xBase, i, 1 + rng.Float64()*8)
				}
			},
			Launch:  gpusim.Launch{GridDim: nthreads / 128, BlockDim: 128},
			Outputs: []Region{{"cnt", cntBase, nthreads, "i64"}, {"y", yBase, nthreads * m, "f64"}},
		}
	},
}

// XSBench is the paper's motivating example: the event-based macroscopic
// cross-section lookup whose binary-search loop (Listing 1) u&u speeds up by
// eliminating the subtraction and the select-driven data movement.
var XSBench = &Benchmark{
	Name:         "xsbench",
	AppCodeBytes: 200000,
	AppCompileMs: 400,
	Category:     "Simulation",
	CommandLine:  "-s small -m event",
	KernelPct:    0.8762,
	Source: `
kernel xsbench(double* restrict egrid, double* restrict xs, double* restrict results, long ngrid, long nlookups) {
  long gid = (long)global_id();
  if (gid >= nlookups) { return; }
  long h = (gid / 32) * 2654435761 + (gid % 32) * 37;
  if (h < 0) { h = 0 - h; }
  double quarry = (double)(h % 1000000) / 1000000.0;
  long lowerLimit = 0;
  long upperLimit = ngrid - 1;
  long length = upperLimit - lowerLimit;
  while (length > 1) {
    long mid = lowerLimit + length / 2;
    if (egrid[mid] > quarry) {
      upperLimit = mid;
    } else {
      lowerLimit = mid;
    }
    length = upperLimit - lowerLimit;
  }
  double e0 = egrid[lowerLimit];
  double e1 = egrid[lowerLimit + 1];
  double f = (quarry - e0) / (e1 - e0);
  results[gid] = xs[lowerLimit] * (1.0 - f) + xs[lowerLimit + 1] * f;
}
`,
	NewWorkload: func() *Workload {
		const ngrid, nlookups = 4096, 2048
		egridBase := int64(0)
		xsBase := egridBase + 8*ngrid
		resBase := xsBase + 8*ngrid
		return &Workload{
			Args: []interp.Value{interp.IntVal(egridBase), interp.IntVal(xsBase),
				interp.IntVal(resBase), interp.IntVal(ngrid), interp.IntVal(nlookups)},
			MemSize: resBase + 8*nlookups,
			Init: func(m *interp.Memory) {
				rng := rand.New(rand.NewSource(24))
				for i := int64(0); i < ngrid; i++ {
					m.SetF64(egridBase, i, float64(i)/float64(ngrid))
					m.SetF64(xsBase, i, rng.Float64())
				}
			},
			// Noise: a jittered (still sorted — binary search requires it)
			// energy grid instead of the uniform one, plus reseeded cross
			// sections; lookup coherence itself is thread-id-derived.
			Noise: func(m *interp.Memory) {
				rng := rand.New(rand.NewSource(noiseSeed + 24))
				for i := int64(0); i < ngrid; i++ {
					m.SetF64(egridBase, i, (float64(i)+rng.Float64()*0.9)/float64(ngrid))
					m.SetF64(xsBase, i, rng.Float64())
				}
			},
			Launch:  gpusim.Launch{GridDim: nlookups / 128, BlockDim: 128},
			Outputs: []Region{{"results", resBase, nlookups, "f64"}},
		}
	},
}
