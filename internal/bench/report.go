package bench

import (
	"fmt"
	"io"
	"math"
	"sort"

	"uu/internal/pipeline"
)

// geomean returns the geometric mean of xs. ok is false when the mean is
// undefined — empty input, or any non-positive/non-finite ratio (a skipped
// run can leave a 0 speedup; log would turn it into -Inf and poison the
// whole mean).
func geomean(xs []float64) (v float64, ok bool) {
	if len(xs) == 0 {
		return 0, false
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 || math.IsInf(x, 0) || math.IsNaN(x) {
			return 0, false
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs))), true
}

// fmtGeomean renders a geomean value, or "n/a" when it is undefined.
func fmtGeomean(xs []float64) string {
	v, ok := geomean(xs)
	if !ok {
		return "n/a"
	}
	return fmt.Sprintf("%.3f", v)
}

func appsOf(r *Results) []string {
	var out []string
	for app := range r.Baseline {
		out = append(out, app)
	}
	sort.Strings(out)
	return out
}

// WriteTable1 renders the paper's Table I: application metadata plus the
// baseline and heuristic kernel-time means. Runs are deterministic, so the
// relative standard deviation column is identically 0%.
func WriteTable1(w io.Writer, r *Results) {
	fmt.Fprintf(w, "Table I: Overview of Benchmarks (L = #loops, %%C = %% of time in compute kernels)\n")
	fmt.Fprintf(w, "%-16s %-30s %-36s %4s %7s %18s %18s\n",
		"Name", "Category", "Command Line", "L", "%C", "Baseline (ms±RSD)", "Heuristic (ms±RSD)")
	for _, app := range appsOf(r) {
		b := ByName(app)
		base := r.Baseline[app]
		heur := r.Heuristic[app]
		if heur == nil {
			continue // interrupted campaign: heuristic run never happened
		}
		fmt.Fprintf(w, "%-16s %-30s %-36s %4d %6.2f%% %14.4f±0%% %14.4f±0%%\n",
			b.Name, b.Category, b.CommandLine, r.LoopCount[app], b.KernelPct*100,
			base.Millis, heur.Millis)
	}
}

// WriteFig6a renders Figure 6a: per-loop u&u speedup over baseline for every
// unroll factor, plus the heuristic's per-application speedup, and the
// heuristic geometric mean the paper quotes (1.05x).
func WriteFig6a(w io.Writer, r *Results) {
	fmt.Fprintf(w, "Figure 6a: Speedup of u&u over baseline (per loop and unroll factor) and of the heuristic (per application)\n")
	fmt.Fprintf(w, "%-16s %-5s", "app", "loop")
	for _, u := range r.Factors {
		fmt.Fprintf(w, " %8s", fmt.Sprintf("u=%d", u))
	}
	fmt.Fprintf(w, " %10s\n", "heuristic")
	var heurSpeedups []float64
	for _, app := range appsOf(r) {
		base := r.Baseline[app]
		heur := r.Heuristic[app]
		if heur == nil {
			continue // interrupted campaign: heuristic run never happened
		}
		hs := heur.Speedup(base)
		heurSpeedups = append(heurSpeedups, hs)
		for loop := 0; loop < r.LoopCount[app]; loop++ {
			fmt.Fprintf(w, "%-16s %-5d", app, loop)
			for _, u := range r.Factors {
				rec := findRec(r, app, pipeline.UU, loop, u)
				if rec == nil || rec.Skipped != "" {
					fmt.Fprintf(w, " %8s", "-")
				} else {
					fmt.Fprintf(w, " %8.3f", rec.Speedup(base))
				}
			}
			if loop == 0 {
				fmt.Fprintf(w, " %10.3f", hs)
			}
			fmt.Fprintf(w, "\n")
		}
	}
	fmt.Fprintf(w, "heuristic geomean speedup: %s\n", fmtGeomean(heurSpeedups))
}

// WriteFig6b renders Figure 6b: code size increase over baseline.
func WriteFig6b(w io.Writer, r *Results) {
	writeRatioFigure(w, r, "Figure 6b: Code size increase of u&u over baseline (whole binary)",
		func(rec, base *RunRecord) float64 {
			app := ByName(rec.App).AppCodeBytes
			return float64(app+rec.CodeBytes) / float64(app+base.CodeBytes)
		},
		func(heur, base *RunRecord) float64 {
			app := ByName(heur.App).AppCodeBytes
			return float64(app+heur.CodeBytes) / float64(app+base.CodeBytes)
		})
}

// WriteFig6c renders Figure 6c: compile time increase over baseline.
func WriteFig6c(w io.Writer, r *Results) {
	writeRatioFigure(w, r, "Figure 6c: Compile time increase of u&u over baseline (whole compilation)",
		func(rec, base *RunRecord) float64 {
			app := ByName(rec.App).AppCompileMs
			return (app + rec.CompileMs) / (app + base.CompileMs)
		},
		func(heur, base *RunRecord) float64 {
			app := ByName(heur.App).AppCompileMs
			return (app + heur.CompileMs) / (app + base.CompileMs)
		})
}

func writeRatioFigure(w io.Writer, r *Results, title string,
	perLoop func(rec, base *RunRecord) float64,
	heuristic func(heur, base *RunRecord) float64) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-16s %-5s", "app", "loop")
	for _, u := range r.Factors {
		fmt.Fprintf(w, " %8s", fmt.Sprintf("u=%d", u))
	}
	fmt.Fprintf(w, " %10s\n", "heuristic")
	var heurRatios []float64
	for _, app := range appsOf(r) {
		base := r.Baseline[app]
		if r.Heuristic[app] == nil {
			continue // interrupted campaign: heuristic run never happened
		}
		hr := heuristic(r.Heuristic[app], base)
		heurRatios = append(heurRatios, hr)
		for loop := 0; loop < r.LoopCount[app]; loop++ {
			fmt.Fprintf(w, "%-16s %-5d", app, loop)
			for _, u := range r.Factors {
				rec := findRec(r, app, pipeline.UU, loop, u)
				if rec == nil || rec.Skipped != "" {
					fmt.Fprintf(w, " %8s", "-")
				} else {
					fmt.Fprintf(w, " %8.3f", perLoop(rec, base))
				}
			}
			if loop == 0 {
				fmt.Fprintf(w, " %10.3f", hr)
			}
			fmt.Fprintf(w, "\n")
		}
	}
	fmt.Fprintf(w, "heuristic geomean: %s\n", fmtGeomean(heurRatios))
}

// WriteFig7 renders Figure 7: the best per-loop speedup per application for
// u&u and unroll at each factor, and for unmerge.
func WriteFig7(w io.Writer, r *Results) {
	fmt.Fprintf(w, "Figure 7: Best speedup per application: u&u vs unroll (factors %v) vs unmerge\n", r.Factors)
	fmt.Fprintf(w, "%-16s", "app")
	for _, u := range r.Factors {
		fmt.Fprintf(w, " %9s", fmt.Sprintf("uu.u%d", u))
	}
	for _, u := range r.Factors {
		fmt.Fprintf(w, " %9s", fmt.Sprintf("unrl.u%d", u))
	}
	fmt.Fprintf(w, " %9s\n", "unmerge")
	for _, app := range appsOf(r) {
		base := r.Baseline[app]
		fmt.Fprintf(w, "%-16s", app)
		emit := func(cfg pipeline.Config, factor int) {
			best := r.Best(app, cfg, factor)
			if best == nil {
				fmt.Fprintf(w, " %9s", "-")
				return
			}
			fmt.Fprintf(w, " %9.3f", best.Speedup(base))
		}
		for _, u := range r.Factors {
			emit(pipeline.UU, u)
		}
		for _, u := range r.Factors {
			emit(pipeline.UnrollOnly, u)
		}
		emit(pipeline.UnmergeOnly, 0)
		fmt.Fprintf(w, "\n")
	}
}

// WriteFig8 renders Figures 8a and 8b as scatter data: one point per (loop,
// factor) pairing u&u speedup against unroll speedup (8a) and per loop
// against unmerge speedup (8b). Points below the diagonal favour u&u.
func WriteFig8(w io.Writer, r *Results) {
	fmt.Fprintf(w, "Figure 8a: per-loop speedups, x = u&u, y = unroll (same loop & factor)\n")
	fmt.Fprintf(w, "%-16s %-5s %-3s %9s %9s\n", "app", "loop", "u", "uu", "unroll")
	for _, app := range appsOf(r) {
		base := r.Baseline[app]
		for loop := 0; loop < r.LoopCount[app]; loop++ {
			for _, u := range r.Factors {
				uu := findRec(r, app, pipeline.UU, loop, u)
				un := findRec(r, app, pipeline.UnrollOnly, loop, u)
				if uu == nil || un == nil || uu.Skipped != "" || un.Skipped != "" {
					continue
				}
				fmt.Fprintf(w, "%-16s %-5d %-3d %9.3f %9.3f\n", app, loop, u, uu.Speedup(base), un.Speedup(base))
			}
		}
	}
	fmt.Fprintf(w, "\nFigure 8b: per-loop speedups, x = u&u (best factor), y = unmerge\n")
	fmt.Fprintf(w, "%-16s %-5s %9s %9s\n", "app", "loop", "uu", "unmerge")
	for _, app := range appsOf(r) {
		base := r.Baseline[app]
		for loop := 0; loop < r.LoopCount[app]; loop++ {
			um := findRec(r, app, pipeline.UnmergeOnly, loop, 1)
			if um == nil || um.Skipped != "" {
				continue
			}
			var bestUU *RunRecord
			for _, u := range r.Factors {
				rec := findRec(r, app, pipeline.UU, loop, u)
				if rec == nil || rec.Skipped != "" {
					continue
				}
				if bestUU == nil || rec.Speedup(base) > bestUU.Speedup(base) {
					bestUU = rec
				}
			}
			if bestUU == nil {
				continue
			}
			fmt.Fprintf(w, "%-16s %-5d %9.3f %9.3f\n", app, loop, bestUU.Speedup(base), um.Speedup(base))
		}
	}
}

// WriteCounterReport renders the nvprof-style counter comparison the paper's
// Section V builds its analysis on, for one application and configuration
// pair.
func WriteCounterReport(w io.Writer, r *Results, app string, rec *RunRecord) {
	base := r.Baseline[app]
	bm, m := base.Metrics, rec.Metrics
	ratio := func(a, b int64) float64 {
		if b == 0 {
			return 0
		}
		return float64(a) / float64(b)
	}
	fmt.Fprintf(w, "%s: %s loop=%d u=%d vs baseline\n", app, rec.Config, rec.LoopID, rec.Factor)
	fmt.Fprintf(w, "  kernel time          %10.4f ms -> %10.4f ms (speedup %.3fx)\n", base.Millis, rec.Millis, rec.Speedup(base))
	fmt.Fprintf(w, "  inst_misc            %10d -> %10d (%.2fx)\n", bm.ClassThread[1], m.ClassThread[1], ratio(m.ClassThread[1], bm.ClassThread[1]))
	fmt.Fprintf(w, "  inst_control         %10d -> %10d (%.2fx)\n", bm.ClassThread[2], m.ClassThread[2], ratio(m.ClassThread[2], bm.ClassThread[2]))
	fmt.Fprintf(w, "  inst_compute         %10d -> %10d (%.2fx)\n", bm.ClassThread[0], m.ClassThread[0], ratio(m.ClassThread[0], bm.ClassThread[0]))
	fmt.Fprintf(w, "  gld_transactions     %10d -> %10d (%.2fx)\n", bm.GldTransactions, m.GldTransactions, ratio(m.GldTransactions, bm.GldTransactions))
	fmt.Fprintf(w, "  warp_exec_efficiency %10.2f%% -> %9.2f%%\n", bm.WarpExecutionEfficiency(r.Device)*100, m.WarpExecutionEfficiency(r.Device)*100)
	fmt.Fprintf(w, "  stall_inst_fetch     %10.2f%% -> %9.2f%%\n", bm.StallInstFetchPct()*100, m.StallInstFetchPct()*100)
	fmt.Fprintf(w, "  IPC                  %10.3f -> %10.3f\n", bm.IPC(), m.IPC())
}

func findRec(r *Results, app string, cfg pipeline.Config, loop, factor int) *RunRecord {
	for _, rec := range r.PerLoop {
		if rec.App == app && rec.Config == cfg && rec.LoopID == loop && rec.Factor == factor {
			return rec
		}
	}
	return nil
}
