package bench

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uu/internal/gpusim"
	"uu/internal/pipeline"
)

// updateGoldenMetrics regenerates the golden metrics files instead of
// comparing:
//
//	go test ./internal/bench -run TestGoldenMetrics -update-golden-metrics
//
// The files under testdata/goldenmetrics were captured from the
// pre-rewrite (sequential, map-based) simulator; the pre-decoded,
// allocation-free, parallel simulator must reproduce every counter byte
// for byte, for every worker count. Only regenerate them for an
// intentional, reviewed change to the simulation model.
var updateGoldenMetrics = flag.Bool("update-golden-metrics", false, "rewrite testdata/goldenmetrics from the current simulator")

// simWorkers is the simulator worker count under test. CI runs the suite
// with -sim-workers 4 in addition to the default; golden metrics must not
// depend on the value.
var simWorkers = flag.Int("sim-workers", 1, "gpusim worker count exercised by the tests")

func metricsName(app string, opts pipeline.Options) string {
	return strings.TrimSuffix(goldenName(app, opts), ".vptx") + ".metrics"
}

// formatMetrics renders every Metrics field in a fixed order so the golden
// comparison covers the complete counter set.
func formatMetrics(m *gpusim.Metrics) string {
	var sb strings.Builder
	p := func(k string, v int64) { fmt.Fprintf(&sb, "%-18s %d\n", k, v) }
	p("cycles", m.Cycles)
	p("warp_instrs", m.WarpInstrs)
	p("thread_instrs", m.ThreadInstrs)
	p("class_compute", m.ClassThread[0])
	p("class_misc", m.ClassThread[1])
	p("class_control", m.ClassThread[2])
	p("class_memory", m.ClassThread[3])
	p("class_special", m.ClassThread[4])
	p("active_sum", m.ActiveSum)
	p("gld_transactions", m.GldTransactions)
	p("gst_transactions", m.GstTransactions)
	p("gld_bytes", m.GldBytes)
	p("gst_bytes", m.GstBytes)
	p("stall_inst_fetch", m.StallInstFetch)
	p("dep_stall_cycles", m.DepStallCycles)
	p("warps", m.Warps)
	return sb.String()
}

// goldenSimulate produces the golden content for one (app, config) cell:
// the full metrics dump, or a SKIP line holding the pipeline error.
func goldenSimulate(b *Benchmark, opts pipeline.Options, workers int) string {
	cr, err := Compile(b, opts)
	if err != nil {
		return fmt.Sprintf("SKIP: %v\n", err)
	}
	w := b.NewWorkload()
	m, err := ExecuteWorkers(cr, w, gpusim.V100(), nil, workers)
	if err != nil {
		return fmt.Sprintf("ERROR: %v\n", err)
	}
	return formatMetrics(m)
}

func TestGoldenMetrics(t *testing.T) {
	dir := filepath.Join("testdata", "goldenmetrics")
	if *updateGoldenMetrics {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range Suite {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			for _, opts := range goldenCases() {
				name := metricsName(b.Name, opts)
				got := goldenSimulate(b, opts, *simWorkers)
				path := filepath.Join(dir, name)
				if *updateGoldenMetrics {
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					continue
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden %s (run with -update-golden-metrics to capture): %v", name, err)
				}
				if got != string(want) {
					t.Errorf("%s: metrics differ from golden %s (sim-workers=%d):\ngot:\n%s\nwant:\n%s",
						b.Name, name, *simWorkers, got, want)
				}
			}
		})
	}
}
