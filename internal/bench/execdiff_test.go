package bench

import (
	"bytes"
	"reflect"
	"testing"

	"uu/internal/gpusim"
)

// TestExecutorDifferential pins the switch and threaded execution backends
// byte-identical over the full golden corpus (16 kernels x 5 configs) on
// every divergence policy at one and several warp-scheduling workers:
// metrics, per-PC profiles, and final device memory must not differ in a
// single bit. This is the executor counterpart of the golden corpora —
// those pin each backend against history, this pins them against each
// other on every cell, including the ones whose configs fail to compile
// (both backends must then report the identical error).
func TestExecutorDifferential(t *testing.T) {
	legs := []struct {
		name    string
		cfg     gpusim.DeviceConfig
		workers int
	}{
		{"v100-w1", gpusim.V100(), 1},
		{"v100-w4", gpusim.V100(), 4},
		{"minsppc-w1", gpusim.MinSPPC(), 1},
		{"minsppc-w4", gpusim.MinSPPC(), 4},
		{"vortex-w1", gpusim.Vortex(), 1},
		{"vortex-w4", gpusim.Vortex(), 4},
	}
	for _, b := range Suite {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			for _, opts := range goldenCases() {
				cr, err := Compile(b, opts)
				if err != nil {
					// Which cells compile is pinned by the golden VPTX
					// corpus; nothing executor-specific to compare here.
					continue
				}
				for _, lg := range legs {
					run := func(exec gpusim.ExecKind) (*gpusim.Metrics, *gpusim.Profile, []byte, error) {
						w := b.NewWorkload()
						mem := w.NewMemory()
						cfg := lg.cfg
						cfg.Exec = exec
						prof := gpusim.NewProfile(cr.Program)
						m, err := gpusim.RunWorkersProfiled(cr.Program, w.Args, mem, w.Launch, cfg, lg.workers, nil, 0, prof)
						return m, prof, mem.Data, err
					}
					ms, ps, memS, errS := run(gpusim.ExecSwitch)
					mt, pt, memT, errT := run(gpusim.ExecThreaded)
					name := goldenName(b.Name, opts) + "/" + lg.name
					if (errS == nil) != (errT == nil) {
						t.Fatalf("%s: error mismatch: switch=%v threaded=%v", name, errS, errT)
					}
					if errS != nil {
						if errS.Error() != errT.Error() {
							t.Errorf("%s: error text differs:\nswitch:   %v\nthreaded: %v", name, errS, errT)
						}
						continue
					}
					if gotS, gotT := formatMetrics(ms), formatMetrics(mt); gotS != gotT {
						t.Errorf("%s: metrics differ:\nswitch:\n%s\nthreaded:\n%s", name, gotS, gotT)
					}
					if !reflect.DeepEqual(ps, pt) {
						t.Errorf("%s: profiles differ", name)
					}
					if !bytes.Equal(memS, memT) {
						i := 0
						for i < len(memS) && memS[i] == memT[i] {
							i++
						}
						t.Errorf("%s: memory differs at byte %d: switch=%#x threaded=%#x", name, i, memS[i], memT[i])
					}
				}
			}
		})
	}
}
