package bench

import (
	"reflect"
	"testing"

	"uu/internal/pipeline"
)

// TestRunExperimentsWorkerDeterminism checks the HarnessOptions.Workers
// contract: the same campaign run serially and on a worker pool produces
// identical results in identical order (wall-clock fields excepted).
func TestRunExperimentsWorkerDeterminism(t *testing.T) {
	run := func(workers int) *Results {
		res, err := RunExperiments(HarnessOptions{
			Apps:    []string{"contract", "clink"},
			Factors: []int{2},
			Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	serial := run(1)
	parallel := run(4)

	if !reflect.DeepEqual(serial.LoopCount, parallel.LoopCount) {
		t.Fatalf("LoopCount differs: %v vs %v", serial.LoopCount, parallel.LoopCount)
	}
	sameRec := func(what string, a, b *RunRecord) {
		t.Helper()
		if (a == nil) != (b == nil) {
			t.Fatalf("%s: one record missing", what)
		}
		if a == nil {
			return
		}
		// CompileMs and PassTimes are wall-clock and legitimately vary;
		// everything else must be bit-identical.
		if a.App != b.App || a.Config != b.Config || a.LoopID != b.LoopID ||
			a.Factor != b.Factor || a.Skipped != b.Skipped {
			t.Fatalf("%s: identity differs: %+v vs %+v", what, a, b)
		}
		if a.Millis != b.Millis || a.CodeBytes != b.CodeBytes {
			t.Fatalf("%s: measurement differs: %v/%v ms, %v/%v B",
				what, a.Millis, b.Millis, a.CodeBytes, b.CodeBytes)
		}
		if !reflect.DeepEqual(a.Metrics, b.Metrics) {
			t.Fatalf("%s: metrics differ", what)
		}
		if !reflect.DeepEqual(a.Decisions, b.Decisions) {
			t.Fatalf("%s: decisions differ", what)
		}
	}
	for app := range serial.Baseline {
		sameRec("baseline "+app, serial.Baseline[app], parallel.Baseline[app])
		sameRec("heuristic "+app, serial.Heuristic[app], parallel.Heuristic[app])
	}
	if len(serial.PerLoop) != len(parallel.PerLoop) {
		t.Fatalf("PerLoop length differs: %d vs %d", len(serial.PerLoop), len(parallel.PerLoop))
	}
	for i := range serial.PerLoop {
		sameRec("per-loop", serial.PerLoop[i], parallel.PerLoop[i])
	}
}

// TestAnalysisCacheHitRate pins the point of the analysis manager: within a
// pipeline run, most analysis queries are answered from cache rather than
// recomputed. The compile is fully deterministic, so the counters are exact;
// the thresholds leave headroom for pipeline evolution.
func TestAnalysisCacheHitRate(t *testing.T) {
	for _, tc := range []struct {
		opts    pipeline.Options
		minRate float64
	}{
		{pipeline.Options{Config: pipeline.Baseline}, 0.5},
		{pipeline.Options{Config: pipeline.UU, LoopID: 0, Factor: 2}, 0.3},
	} {
		cr, err := Compile(ByName("xsbench"), tc.opts)
		if err != nil {
			t.Fatal(err)
		}
		s := cr.Stats.Analysis
		if s.TotalHits() == 0 {
			t.Errorf("%s: no cache hits at all — is the manager being threaded through passes?", tc.opts.Config)
		}
		if r := s.HitRate(); r < tc.minRate {
			t.Errorf("%s: cache hit rate %.3f below %.2f (%d hits / %d misses)",
				tc.opts.Config, r, tc.minRate, s.TotalHits(), s.TotalMisses())
		}
	}
}
