package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uu/internal/gpusim"
	"uu/internal/pipeline"
	"uu/internal/remark"
)

// remarkCorpusApps are the in-depth-analysis applications the golden remark
// corpus covers — the same four kernels the paper's Section V dissects.
var remarkCorpusApps = []string{"xsbench", "rainflow", "complex", "bezier-surface"}

// goldenRemarks produces the golden remark stream for one (app, config)
// cell: the YAML document stream, preceded by a SKIP line when the pipeline
// refuses the configuration (remarks emitted before the refusal are still
// part of the contract).
func goldenRemarks(b *Benchmark, opts pipeline.Options) string {
	rc := remark.NewCollector()
	opts.Remarks = rc
	var sb strings.Builder
	if _, err := Compile(b, opts); err != nil {
		sb.WriteString("SKIP: " + err.Error() + "\n")
	}
	if err := remark.WriteYAML(&sb, rc.Remarks(), nil); err != nil {
		panic(err)
	}
	return sb.String()
}

// TestGoldenRemarks pins the optimization-remark stream of the four
// Section V kernels across all five pipeline configurations. Remarks carry
// no timestamps or addresses, so the stream must be byte-identical run to
// run; a diff means a pass changed what it reports (regenerate with
// -update-golden after review) or lost determinism (a bug).
func TestGoldenRemarks(t *testing.T) {
	dir := filepath.Join("testdata", "goldenremarks")
	if *updateGolden {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, app := range remarkCorpusApps {
		b := ByName(app)
		if b == nil {
			t.Fatalf("unknown corpus app %q", app)
		}
		t.Run(app, func(t *testing.T) {
			t.Parallel()
			for _, opts := range goldenCases() {
				name := strings.TrimSuffix(goldenName(b.Name, opts), ".vptx") + ".yaml"
				got := goldenRemarks(b, opts)
				path := filepath.Join(dir, name)
				if *updateGolden {
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					continue
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden %s (run with -update-golden to capture): %v", name, err)
				}
				if got != string(want) {
					t.Errorf("%s: remark stream differs from golden %s (%d vs %d bytes)",
						b.Name, name, len(got), len(want))
				}
			}
		})
	}
}

// TestRemarksWorkerInvariance is the harness-level determinism contract:
// the assembled campaign remark stream — compile-time remarks plus the
// gpusim SimMetrics remark per run — must be byte-identical whether the
// campaign ran on 1 worker with sequential simulation or on 8 workers with
// parallel warp scheduling.
func TestRemarksWorkerInvariance(t *testing.T) {
	run := func(workers, simWorkers int) string {
		res, err := RunExperiments(HarnessOptions{
			Apps:       []string{"complex", "bezier-surface"},
			Factors:    []int{2},
			Workers:    workers,
			SimWorkers: simWorkers,
			Remarks:    true,
		})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := remark.WriteYAML(&sb, res.Remarks, nil); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	seq := run(1, 1)
	par := run(8, 4)
	if seq == "" || !strings.Contains(seq, "SimMetrics") {
		t.Fatalf("campaign produced no simulation remarks:\n%.400s", seq)
	}
	if seq != par {
		t.Errorf("remark stream depends on worker count (%d vs %d bytes)", len(seq), len(par))
	}
}

// TestTraceJSONWellFormed drives a traced compile+simulate and checks the
// Chrome trace contract end to end: events from every layer (pipeline
// spans, per-pass spans, codegen, gpusim) on the caller's lane, in valid
// trace_event JSON (the remark package's own tests cover the encoding; this
// covers the plumbing).
func TestTraceJSONWellFormed(t *testing.T) {
	tr := remark.NewTrace()
	b := ByName("complex")
	opts := pipeline.Options{Config: pipeline.UUHeuristic, Trace: tr, TraceTID: 3}
	cr, err := Compile(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	w := b.NewWorkload()
	if _, err := ExecuteWorkersTraced(cr, w, gpusim.V100(), nil, 2, tr, 3); err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("no trace events recorded")
	}
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`"traceEvents"`, `"displayTimeUnit":"ms"`,
		`"cat":"pipeline"`, `"cat":"pass"`, `"cat":"codegen"`, `"cat":"gpusim"`,
		`"ph":"X"`, `"ph":"C"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace JSON missing %s", want)
		}
	}
}
