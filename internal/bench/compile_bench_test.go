package bench

import (
	"testing"

	"uu/internal/pipeline"
	"uu/internal/remark"
)

// BenchmarkPipelineCompile measures per-kernel compile time through the
// baseline pipeline — the quantity behind the paper's Fig. 6c ratios and the
// number the pass-manager's analysis caching is meant to cut.
func BenchmarkPipelineCompile(b *testing.B) {
	for _, app := range Suite {
		app := app
		b.Run(app.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Compile(app, pipeline.Options{Config: pipeline.Baseline}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPipelineCompileUU is the same measurement through the paper's
// unroll-and-unmerge configuration (loop 0, factor 2), which exercises the
// loop-transform phase and its analysis invalidation on top of the cleanup
// rounds.
func BenchmarkPipelineCompileUU(b *testing.B) {
	for _, app := range Suite {
		app := app
		b.Run(app.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Compile(app, pipeline.Options{Config: pipeline.UU, LoopID: 0, Factor: 2}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPipelineCompileRemarks measures the same u&u compile with the
// sinks in each state, so the disabled-path overhead can be read directly:
//
//	go test ./internal/bench -bench CompileRemarks -count 10
//
// The "off" variant is the bound the remark layer must hold — every
// emission site is a nil check and nothing else, so compile time with a nil
// sink must stay within noise (<2%) of the pre-remark pipeline.
func BenchmarkPipelineCompileRemarks(b *testing.B) {
	app := ByName("xsbench")
	for _, tc := range []struct {
		name string
		opts func() pipeline.Options
	}{
		{"off", func() pipeline.Options {
			return pipeline.Options{Config: pipeline.UU, LoopID: 0, Factor: 2}
		}},
		{"on", func() pipeline.Options {
			return pipeline.Options{Config: pipeline.UU, LoopID: 0, Factor: 2,
				Remarks: remark.NewCollector()}
		}},
		{"on+trace", func() pipeline.Options {
			return pipeline.Options{Config: pipeline.UU, LoopID: 0, Factor: 2,
				Remarks: remark.NewCollector(), Trace: remark.NewTrace()}
		}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Compile(app, tc.opts()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRunExperiments measures the full-suite sweep wall clock (every
// app, every configuration, factors 2/4/8) — the uubench end-to-end cost.
func BenchmarkRunExperiments(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunExperiments(HarnessOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
