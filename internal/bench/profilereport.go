package bench

import (
	"fmt"
	"io"

	"uu/internal/core"
	"uu/internal/profile"
)

// WriteProfileReport renders the hotspot profiles of a sweep run with
// HarnessOptions.Profile: for every application, the baseline and heuristic
// hotspot tables plus the heuristic's predicted-benefit-vs-measured-cycles
// table, which makes mispredictions of the f(p, s, u) < C size model
// visible per loop. Output is deterministic across Workers/SimWorkers.
func WriteProfileReport(w io.Writer, r *Results) error {
	c := core.DefaultHeuristicParams().C
	for _, app := range appsOf(r) {
		for _, rec := range []*RunRecord{r.Baseline[app], r.Heuristic[app]} {
			if rec == nil || rec.Profile == nil {
				continue
			}
			rep := profile.Build(rec.Program, rec.Profile)
			fmt.Fprintf(w, "=== %s (%s) ===\n", app, rec.Config)
			if err := profile.WriteHotspots(w, rep); err != nil {
				return err
			}
			if rec == r.Heuristic[app] {
				fmt.Fprintln(w)
				if err := profile.WritePrediction(w, rep, rec.Decisions, rec.Skips, c); err != nil {
					return err
				}
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}
