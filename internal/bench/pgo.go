package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"uu/internal/core"
	"uu/internal/gpusim"
	"uu/internal/pipeline"
	"uu/internal/profile"
)

// This file is the profile-guided-optimization campaign driver: the closed
// compile→simulate→recompile loop over the heuristic configuration. Each
// round compiles every app with the current per-loop override set, simulates
// baseline and heuristic with hotspot profiling, extracts per-loop feedback
// signals (profile.ExtractFeedback), and asks the policy
// (core.SuggestOverrides) for the next round's overrides. The loop stops
// when no app's override set changes — measured behavior and prediction
// agree — or after MaxRounds.
//
// Determinism: per-app rounds use only Compile + simulate, both of which are
// byte-identical for any worker count; apps are dispatched on an indexed
// worker pool and assembled in suite order, so the full PGOResult (and its
// rendered report) is identical under any Workers/SimWorkers setting.

// PGOOptions configures a PGO campaign.
type PGOOptions struct {
	Apps []string // nil = whole suite
	// MaxRounds bounds the feedback iteration; <= 0 means 4 (the policy's
	// demotion ladder force+capN → cap2 → cap1 → deny is 4 rungs deep, so
	// any single loop converges within it).
	MaxRounds int
	Device    *gpusim.DeviceConfig
	// DeviceName labels Device in reports (empty = "V100").
	DeviceName string
	Input      InputMode
	// Heuristic is the base parameter set of every round (zero value =
	// paper defaults). Overrides present here are treated as explicit pins:
	// they seed round 1 and always win over derived ones (see
	// core.MergeOverrides).
	Heuristic core.HeuristicParams
	// Seed injects initial per-app derived overrides — the recovery case
	// study seeds complex with a force+cap=8 override to reproduce the u=8
	// collapse and watch the loop dig it back out.
	Seed map[string]map[int32]core.LoopOverride
	// Workers caps concurrent per-app measurement goroutines (0 =
	// GOMAXPROCS); SimWorkers is the warp-scheduling parallelism per
	// simulation (<= 0 = 1). Neither changes results, only wall clock.
	Workers    int
	SimWorkers int
	// Progress receives one line per completed app round when non-nil
	// (completion order under Workers > 1).
	Progress io.Writer
}

// PGOAppRound is one app's measurement and verdict in one round.
type PGOAppRound struct {
	App     string
	Skipped string // non-empty when the heuristic compile bailed out
	// BaselineMillis and Millis are the round's measured kernel times;
	// Speedup is their ratio (the paper's definition).
	BaselineMillis float64
	Millis         float64
	Speedup        float64
	// Verdict is the predicted-vs-measured verdict (profile.Verdict*);
	// Reason carries the skip reason behind CORRECT-SKIP/MISPREDICT.
	Verdict string
	Reason  string
	// Decisions and Signals are what this round's build did and measured.
	Decisions []core.Decision
	Signals   []core.LoopSignal
	// Overrides is the per-loop set this round compiled with; Next is the
	// set the policy derived for the following round (equal when the app
	// has converged).
	Overrides map[int32]core.LoopOverride
	Next      map[int32]core.LoopOverride
	// Changed reports Next != Overrides.
	Changed bool
}

// PGORound is one full round over the app list, in suite order.
type PGORound struct {
	Round   int
	Apps    []*PGOAppRound
	Changed bool // any app derived a different override set
}

// PGOResult is a full PGO campaign.
type PGOResult struct {
	DeviceName string
	Rounds     []PGORound
	// Converged reports that the last round changed nothing (as opposed to
	// stopping at MaxRounds with pending changes).
	Converged bool
}

// Final returns the last round's per-app results.
func (r *PGOResult) Final() []*PGOAppRound {
	if len(r.Rounds) == 0 {
		return nil
	}
	return r.Rounds[len(r.Rounds)-1].Apps
}

// Mispredicts counts MISPREDICT verdicts surviving in the final round.
func (r *PGOResult) Mispredicts() int {
	n := 0
	for _, a := range r.Final() {
		if a.Verdict == profile.VerdictMispredict {
			n++
		}
	}
	return n
}

// FinalSpeedup returns the final-round speedup for an app (0 if absent).
func (r *PGOResult) FinalSpeedup(app string) float64 {
	for _, a := range r.Final() {
		if a.App == app {
			return a.Speedup
		}
	}
	return 0
}

// RunPGO runs the profile-guided campaign (see package comment above).
func RunPGO(opts PGOOptions) (*PGOResult, error) {
	return RunPGOCtx(context.Background(), opts)
}

// RunPGOCtx is RunPGO under a context; cancellation aborts mid-round and
// returns the rounds completed so far alongside the error.
func RunPGOCtx(ctx context.Context, opts PGOOptions) (*PGOResult, error) {
	dev := gpusim.V100()
	if opts.Device != nil {
		dev = *opts.Device
	}
	devName := opts.DeviceName
	if devName == "" {
		devName = "V100"
	}
	input := opts.Input
	if input == "" {
		input = InputCoherent
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 4
	}
	simWorkers := opts.SimWorkers
	if simWorkers <= 0 {
		simWorkers = 1
	}
	apps := Suite
	if opts.Apps != nil {
		apps = nil
		for _, name := range opts.Apps {
			b := ByName(name)
			if b == nil {
				return nil, fmt.Errorf("bench: unknown application %q", name)
			}
			apps = append(apps, b)
		}
	}

	// Per-app derived override state, seeded from opts.Seed.
	state := make([]map[int32]core.LoopOverride, len(apps))
	for i, b := range apps {
		state[i] = opts.Seed[b.Name]
	}
	// Baseline time and profile per app, measured once in round 1 (the
	// baseline build does not depend on overrides).
	baseMillis := make([]float64, len(apps))

	var progressMu sync.Mutex
	logf := func(format string, args ...any) {
		if opts.Progress == nil {
			return
		}
		progressMu.Lock()
		defer progressMu.Unlock()
		fmt.Fprintf(opts.Progress, format+"\n", args...)
	}

	res := &PGOResult{DeviceName: devName}
	for round := 1; round <= maxRounds; round++ {
		rr := PGORound{Round: round, Apps: make([]*PGOAppRound, len(apps))}
		errs := make([]error, len(apps))
		workers := opts.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(apps) {
			workers = len(apps)
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if ctx.Err() != nil {
						return
					}
					i := int(next.Add(1)) - 1
					if i >= len(apps) {
						return
					}
					rr.Apps[i], errs[i] = pgoAppRound(ctx, apps[i], input, dev, simWorkers,
						opts.Heuristic, state[i], round == 1, &baseMillis[i])
					if rr.Apps[i] != nil {
						a := rr.Apps[i]
						logf("pgo round %d %-16s speedup=%.3f verdict=%-16s overrides=%s -> %s",
							round, a.App, a.Speedup, a.Verdict,
							core.OverridesString(a.Overrides), core.OverridesString(a.Next))
					}
				}
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return res, err
			}
		}
		if ctx.Err() != nil {
			return res, fmt.Errorf("bench: pgo interrupted: %w", ctx.Err())
		}
		for i, a := range rr.Apps {
			if a.Changed {
				rr.Changed = true
			}
			state[i] = a.Next
		}
		res.Rounds = append(res.Rounds, rr)
		if !rr.Changed {
			res.Converged = true
			break
		}
	}
	return res, nil
}

// pgoAppRound measures one app with the given derived override set and
// derives the next set. measureBase asks for the baseline measurement
// (round 1); later rounds reuse *basePtr.
func pgoAppRound(ctx context.Context, b *Benchmark, input InputMode, dev gpusim.DeviceConfig,
	simWorkers int, base core.HeuristicParams, derived map[int32]core.LoopOverride,
	measureBase bool, basePtr *float64) (*PGOAppRound, error) {

	a := &PGOAppRound{App: b.Name, Overrides: derived, Next: derived}

	if measureBase {
		w := b.NewWorkload()
		w.SetInput(input)
		cr, err := CompileCtx(ctx, b, pipeline.Options{Config: pipeline.Baseline})
		if err != nil {
			return nil, fmt.Errorf("bench pgo %s baseline: %w", b.Name, err)
		}
		m, err := ExecuteWorkersProfiledCtx(ctx, cr, w, dev, nil, simWorkers, nil, 0, nil)
		if err != nil {
			return nil, fmt.Errorf("bench pgo %s baseline: %w", b.Name, err)
		}
		*basePtr = m.KernelMillis(dev)
	}
	a.BaselineMillis = *basePtr

	params := base.FillDefaults()
	// Explicit overrides in the base params are pins and win over derived.
	params.Overrides = core.MergeOverrides(derived, base.Overrides)
	w := b.NewWorkload()
	w.SetInput(input)
	cr, err := CompileCtx(ctx, b, pipeline.Options{Config: pipeline.UUHeuristic, Heuristic: params})
	if err != nil {
		if ctx.Err() != nil {
			return nil, err
		}
		a.Skipped = err.Error()
		return a, nil
	}
	prof := gpusim.NewProfile(cr.Program)
	m, err := ExecuteWorkersProfiledCtx(ctx, cr, w, dev, nil, simWorkers, nil, 0, prof)
	if err != nil {
		return nil, fmt.Errorf("bench pgo %s heuristic: %w", b.Name, err)
	}
	a.Millis = m.KernelMillis(dev)
	if a.Millis > 0 {
		a.Speedup = a.BaselineMillis / a.Millis
	}
	a.Decisions = cr.Stats.Decisions

	rep := profile.Build(cr.Program, prof)
	ev := profile.Evaluate(rep, cr.Stats.Decisions, cr.Stats.Skips)
	a.Verdict, a.Reason = ev.Verdict, ev.Reason
	fb := profile.ExtractFeedback(rep, cr.Stats.Decisions, cr.Stats.Skips, a.Speedup)
	a.Signals = fb.Signals
	a.Next, a.Changed = core.SuggestOverrides(derived, fb)
	return a, nil
}

// WritePGOReport renders a PGO campaign: per round one row per app, then a
// convergence summary. Output is a pure function of the result and therefore
// byte-identical for any Workers/SimWorkers count.
func WritePGOReport(w io.Writer, r *PGOResult) error {
	bw := &errWriter{w: w}
	fmt.Fprintf(bw, "profile-guided u&u campaign (device %s)\n", r.DeviceName)
	for _, rr := range r.Rounds {
		fmt.Fprintf(bw, "\nround %d:\n", rr.Round)
		fmt.Fprintf(bw, "  %-16s %8s %-16s %-24s %-24s %s\n",
			"app", "speedup", "verdict", "decisions", "overrides", "next")
		for _, a := range rr.Apps {
			if a.Skipped != "" {
				fmt.Fprintf(bw, "  %-16s %8s %-16s skipped: %s\n", a.App, "-", "-", a.Skipped)
				continue
			}
			verdict := a.Verdict
			if a.Reason != "" {
				verdict += "(" + a.Reason + ")"
			}
			fmt.Fprintf(bw, "  %-16s %8.3f %-16s %-24s %-24s %s\n",
				a.App, a.Speedup, verdict, decisionsString(a.Decisions),
				core.OverridesString(a.Overrides), core.OverridesString(a.Next))
		}
	}
	if r.Converged {
		fmt.Fprintf(bw, "\nconverged after %d round(s); %d MISPREDICT verdict(s) surviving\n",
			len(r.Rounds), r.Mispredicts())
	} else {
		fmt.Fprintf(bw, "\nNOT converged after %d round(s); %d MISPREDICT verdict(s) surviving\n",
			len(r.Rounds), r.Mispredicts())
	}

	// Final per-app feedback signals, hottest loop first — the measured
	// evidence behind the last round's decisions.
	fmt.Fprintf(bw, "\nfinal per-loop signals:\n")
	for _, a := range r.Final() {
		if a.Skipped != "" || len(a.Signals) == 0 {
			continue
		}
		fmt.Fprintf(bw, "  %s:\n", a.App)
		for _, s := range a.Signals {
			fmt.Fprintf(bw, "    %s\n", s)
		}
	}
	return bw.err
}

// errWriter latches the first write error so the renderer can use Fprintf
// freely and report once.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, err
}

func decisionsString(ds []core.Decision) string {
	if len(ds) == 0 {
		return "-"
	}
	sorted := append([]core.Decision(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].HeaderLine < sorted[j].HeaderLine })
	var sb []byte
	for i, d := range sorted {
		if i > 0 {
			sb = append(sb, ' ')
		}
		sb = append(sb, fmt.Sprintf("L%d:u%d", d.HeaderLine, d.Factor)...)
		if d.Forced {
			sb = append(sb, "(f)"...)
		}
	}
	return string(sb)
}
