package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"uu/internal/core"
	"uu/internal/gpusim"
	"uu/internal/interp"
	"uu/internal/pipeline"
)

// RunRecord is one (application, configuration, loop, factor) measurement.
type RunRecord struct {
	App    string
	Config pipeline.Config
	LoopID int // -1 for whole-app configurations (baseline, heuristic)
	Factor int // 0 when not applicable

	Millis    float64
	CodeBytes int64
	CompileMs float64
	Metrics   *gpusim.Metrics
	Decisions []core.Decision // heuristic only
	PassTimes map[string]time.Duration
	Skipped   string // non-empty when the loop was untransformable
}

// Speedup returns base.Millis / r.Millis (the paper's speedup definition,
// kernel time only).
func (r *RunRecord) Speedup(base *RunRecord) float64 {
	if r.Millis == 0 {
		return 0
	}
	return base.Millis / r.Millis
}

// Results holds a full experiment sweep.
type Results struct {
	Device    gpusim.DeviceConfig
	Factors   []int
	Baseline  map[string]*RunRecord // app -> baseline
	Heuristic map[string]*RunRecord // app -> heuristic u&u
	PerLoop   []*RunRecord          // unroll/unmerge/uu per loop and factor
	LoopCount map[string]int
}

// HarnessOptions configures an experiment sweep.
type HarnessOptions struct {
	Apps    []string // nil = whole suite
	Factors []int    // nil = {2,4,8} as in the paper
	Verify  bool     // check every run against the interpreter oracle
	Device  *gpusim.DeviceConfig
	// Progress receives one line per completed run when non-nil.
	Progress io.Writer
}

// RunExperiments executes the paper's measurement campaign: for every
// application the baseline and heuristic configurations, plus — applying the
// pass to one loop at a time exactly as the methodology section describes —
// unroll-only and u&u for each unroll factor and unmerge-only per loop.
func RunExperiments(opts HarnessOptions) (*Results, error) {
	factors := opts.Factors
	if factors == nil {
		factors = []int{2, 4, 8}
	}
	dev := gpusim.V100()
	if opts.Device != nil {
		dev = *opts.Device
	}
	apps := Suite
	if opts.Apps != nil {
		apps = nil
		for _, name := range opts.Apps {
			b := ByName(name)
			if b == nil {
				return nil, fmt.Errorf("bench: unknown application %q", name)
			}
			apps = append(apps, b)
		}
	}
	res := &Results{
		Device:    dev,
		Factors:   factors,
		Baseline:  map[string]*RunRecord{},
		Heuristic: map[string]*RunRecord{},
		LoopCount: map[string]int{},
	}
	logf := func(format string, args ...any) {
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, format+"\n", args...)
		}
	}

	for _, b := range apps {
		w := b.NewWorkload()
		var ref *interp.Memory
		if opts.Verify {
			m, err := Reference(b, w)
			if err != nil {
				return nil, err
			}
			ref = m
		}
		res.LoopCount[b.Name] = LoopCount(b)

		one := func(cfg pipeline.Options, loopID, factor int) (*RunRecord, error) {
			rec := &RunRecord{App: b.Name, Config: cfg.Config, LoopID: loopID, Factor: factor}
			cr, err := Compile(b, cfg)
			if err != nil {
				rec.Skipped = err.Error()
				return rec, nil
			}
			rec.CompileMs = float64(cr.Stats.CompileTime.Microseconds()) / 1000
			rec.CodeBytes = cr.Program.CodeBytes()
			rec.Decisions = cr.Stats.Decisions
			rec.PassTimes = cr.Stats.PassTimeByName()
			m, err := Execute(cr, w, dev, ref)
			if err != nil {
				return nil, fmt.Errorf("bench %s %s loop %d u%d: %w", b.Name, cfg.Config, loopID, factor, err)
			}
			rec.Metrics = m
			rec.Millis = m.KernelMillis(dev)
			logf("%-16s %-12s loop=%-3d u=%-2d %10.4f ms  code=%6d B  compile=%7.2f ms",
				b.Name, cfg.Config, loopID, factor, rec.Millis, rec.CodeBytes, rec.CompileMs)
			return rec, nil
		}

		base, err := one(pipeline.Options{Config: pipeline.Baseline}, -1, 0)
		if err != nil {
			return nil, err
		}
		res.Baseline[b.Name] = base

		heur, err := one(pipeline.Options{Config: pipeline.UUHeuristic}, -1, 0)
		if err != nil {
			return nil, err
		}
		res.Heuristic[b.Name] = heur

		for loop := 0; loop < res.LoopCount[b.Name]; loop++ {
			rec, err := one(pipeline.Options{Config: pipeline.UnmergeOnly, LoopID: loop}, loop, 1)
			if err != nil {
				return nil, err
			}
			res.PerLoop = append(res.PerLoop, rec)
			for _, u := range factors {
				rec, err := one(pipeline.Options{Config: pipeline.UnrollOnly, LoopID: loop, Factor: u}, loop, u)
				if err != nil {
					return nil, err
				}
				res.PerLoop = append(res.PerLoop, rec)
				rec, err = one(pipeline.Options{Config: pipeline.UU, LoopID: loop, Factor: u}, loop, u)
				if err != nil {
					return nil, err
				}
				res.PerLoop = append(res.PerLoop, rec)
			}
		}
	}
	return res, nil
}

// Best returns the best (highest-speedup) per-loop record for the app with
// the given config and factor (0 = any factor), or nil.
func (r *Results) Best(app string, cfg pipeline.Config, factor int) *RunRecord {
	base := r.Baseline[app]
	var best *RunRecord
	for _, rec := range r.PerLoop {
		if rec.App != app || rec.Config != cfg || rec.Skipped != "" {
			continue
		}
		if factor != 0 && rec.Factor != factor {
			continue
		}
		if best == nil || rec.Speedup(base) > best.Speedup(base) {
			best = rec
		}
	}
	return best
}

// PerLoopFor returns the per-loop records for (app, config, factor) sorted
// by loop ID.
func (r *Results) PerLoopFor(app string, cfg pipeline.Config, factor int) []*RunRecord {
	var out []*RunRecord
	for _, rec := range r.PerLoop {
		if rec.App == app && rec.Config == cfg && (factor == 0 || rec.Factor == factor) {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LoopID < out[j].LoopID })
	return out
}
