package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"uu/internal/analysis"
	"uu/internal/codegen"
	"uu/internal/core"
	"uu/internal/gpusim"
	"uu/internal/harden"
	"uu/internal/interp"
	"uu/internal/pipeline"
	"uu/internal/remark"
	"uu/internal/telemetry"
)

// RunRecord is one (application, configuration, loop, factor) measurement.
type RunRecord struct {
	App    string
	Config pipeline.Config
	LoopID int // -1 for whole-app configurations (baseline, heuristic)
	Factor int // 0 when not applicable

	Millis    float64
	CodeBytes int64
	CompileMs float64
	Metrics   *gpusim.Metrics
	Decisions []core.Decision   // heuristic only
	Skips     []core.SkipRecord // heuristic only: considered-but-rejected loops
	PassTimes map[string]time.Duration
	Skipped   string // non-empty when the loop was untransformable
	// Failures lists pass invocations the guard contained during this
	// run's compilation (HarnessOptions.Contain). A run with contained
	// failures still produced a program — the failing passes were rolled
	// back and skipped — but its numbers describe that degraded pipeline.
	Failures []harden.PassFailure
	// Remarks is this run's optimization-remark stream, in emission order
	// (HarnessOptions.Remarks). The final entry is the gpusim SimMetrics
	// remark for runs that simulated.
	Remarks []remark.Remark
	// Profile is the run's per-PC hotspot profile (HarnessOptions.Profile),
	// byte-identical for any Workers/SimWorkers count; Program is retained
	// alongside it so reports can join the profile with the line table.
	// Both are nil when profiling is off.
	Profile *gpusim.Profile
	Program *codegen.Program
}

// Speedup returns base.Millis / r.Millis (the paper's speedup definition,
// kernel time only).
func (r *RunRecord) Speedup(base *RunRecord) float64 {
	if r.Millis == 0 {
		return 0
	}
	return base.Millis / r.Millis
}

// Results holds a full experiment sweep.
type Results struct {
	Device gpusim.DeviceConfig
	// DeviceName is the registry (or registry:override) name of Device, and
	// Input the input mode the whole sweep ran under — the two campaign
	// dimensions a multi-sweep matrix varies.
	DeviceName string
	Input      InputMode
	Factors    []int
	Baseline  map[string]*RunRecord // app -> baseline
	Heuristic map[string]*RunRecord // app -> heuristic u&u
	PerLoop   []*RunRecord          // unroll/unmerge/uu per loop and factor
	LoopCount map[string]int
	// Failures aggregates every contained pass failure across the sweep
	// (see RunRecord.Failures); empty unless HarnessOptions.Contain.
	Failures []harden.PassFailure
	// Remarks is every run's remark stream concatenated in campaign order
	// (HarnessOptions.Remarks). Each run emits into its own collector, so
	// this assembled stream is byte-identical for any Workers/SimWorkers
	// count.
	Remarks []remark.Remark
	// WallClock holds host-side wall-clock latency histograms for the
	// sweep, keyed "compile", "simulate", and "run" (one whole job).
	// Unlike Metrics these depend on machine load and worker count; they
	// characterize harness throughput, not kernel performance. Rendered
	// by WriteWallClock.
	WallClock map[string]*telemetry.HistSnapshot
}

// HarnessOptions configures an experiment sweep.
type HarnessOptions struct {
	Apps    []string // nil = whole suite
	Factors []int    // nil = {2,4,8} as in the paper
	Verify  bool     // check every run against the interpreter oracle
	Device  *gpusim.DeviceConfig
	// DeviceName labels Device in results and reports (a gpusim registry
	// name, possibly with overrides). Empty means "V100", matching the
	// Device default.
	DeviceName string
	// Input selects the workload input mode for every run of the sweep;
	// empty means InputCoherent (the paper's setup).
	Input InputMode
	// Progress receives one line per completed run when non-nil. Lines are
	// written atomically but, with Workers > 1, in completion order rather
	// than campaign order.
	Progress io.Writer
	// Workers caps the number of concurrent measurement goroutines;
	// 0 means GOMAXPROCS. Results are identical and identically ordered
	// regardless of the worker count — every run is an independent
	// compile+simulate on its own function, so only wall clock changes.
	Workers int
	// SimWorkers is the warp-scheduling worker count passed to
	// gpusim.RunWorkers for every simulation; <= 0 means 1 (fully
	// sequential). Metrics are identical for any count, so this too only
	// changes wall clock. Figure 6c compile-time columns are wall-clock
	// measurements and should be compared with Workers == 1 regardless.
	SimWorkers int
	// Contain runs every compilation under the crash-containment guard: a
	// panicking (or, with VerifyEach, verifier-rejected) pass is rolled
	// back and skipped, the failure is recorded on the run and aggregated
	// into Results.Failures, and the campaign keeps going instead of
	// aborting. The healthy path is byte-identical with or without it.
	Contain bool
	// VerifyEach runs the IR verifier after every pass of every run.
	VerifyEach bool
	// Inject appends extra passes to every compilation — the fault
	// injection hook the end-to-end containment tests use.
	Inject []analysis.Pass
	// Remarks collects every run's optimization remarks (RunRecord.Remarks,
	// Results.Remarks). Off by default: a disabled sink costs nothing.
	Remarks bool
	// Profile collects a per-PC hotspot profile for every run
	// (RunRecord.Profile). Profiles, like metrics, are identical for any
	// Workers/SimWorkers count. Off by default.
	Profile bool
	// Trace, when non-nil, records wall-clock spans for every compilation
	// and simulation. Each harness worker tags its spans with its worker
	// index as the trace lane.
	Trace *remark.Trace
	// Heuristic parameterizes the sweep's uu-heuristic runs (zero value =
	// paper defaults). The PGO driver threads each round's per-loop
	// overrides through here.
	Heuristic core.HeuristicParams
}

// harnessJob is one planned (application, configuration, loop, factor)
// measurement. Jobs are enumerated in campaign order up front; workers pick
// them up in that order and write results by index, so the assembled
// Results are identical regardless of concurrency.
type harnessJob struct {
	b      *Benchmark
	w      *Workload
	ref    *interp.Memory // verification oracle, nil unless opts.Verify
	cfg    pipeline.Options
	loopID int
	factor int
	// destination: exactly one of these is set
	isBaseline  bool
	isHeuristic bool
}

// RunExperiments executes the paper's measurement campaign: for every
// application the baseline and heuristic configurations, plus — applying the
// pass to one loop at a time exactly as the methodology section describes —
// unroll-only and u&u for each unroll factor and unmerge-only per loop.
//
// Runs are independent (each compiles its own fresh kernel function), so
// they execute on a worker pool of opts.Workers goroutines.
func RunExperiments(opts HarnessOptions) (*Results, error) {
	return RunExperimentsCtx(context.Background(), opts)
}

// RunExperimentsCtx is RunExperiments under a context. On cancellation
// (SIGINT on a long campaign, a service deadline) the worker pool stops
// claiming jobs, in-flight compilations and simulations abort at their next
// pass/block boundary, and the completed runs are assembled and returned as
// partial Results alongside the context's error — so callers can flush what
// was measured instead of losing the whole sweep. Partial Results may lack
// baseline or heuristic records for some apps; the report writers skip
// those apps.
func RunExperimentsCtx(ctx context.Context, opts HarnessOptions) (*Results, error) {
	factors := opts.Factors
	if factors == nil {
		factors = []int{2, 4, 8}
	}
	dev := gpusim.V100()
	if opts.Device != nil {
		dev = *opts.Device
	}
	devName := opts.DeviceName
	if devName == "" {
		devName = "V100"
	}
	input := opts.Input
	if input == "" {
		input = InputCoherent
	}
	apps := Suite
	if opts.Apps != nil {
		apps = nil
		for _, name := range opts.Apps {
			b := ByName(name)
			if b == nil {
				return nil, fmt.Errorf("bench: unknown application %q", name)
			}
			apps = append(apps, b)
		}
	}
	res := &Results{
		Device:     dev,
		DeviceName: devName,
		Input:      input,
		Factors:    factors,
		Baseline:  map[string]*RunRecord{},
		Heuristic: map[string]*RunRecord{},
		LoopCount: map[string]int{},
	}

	// Plan the campaign serially: per-app workload, verification oracle and
	// loop count, then the job list in the paper's order.
	var jobs []harnessJob
	for _, b := range apps {
		w := b.NewWorkload()
		w.SetInput(input)
		var ref *interp.Memory
		if opts.Verify {
			m, err := Reference(b, w)
			if err != nil {
				return nil, err
			}
			ref = m
		}
		res.LoopCount[b.Name] = LoopCount(b)

		add := func(cfg pipeline.Options, loopID, factor int) *harnessJob {
			cfg.Contain = opts.Contain
			cfg.VerifyEachPass = opts.VerifyEach
			cfg.Inject = opts.Inject
			jobs = append(jobs, harnessJob{b: b, w: w, ref: ref, cfg: cfg, loopID: loopID, factor: factor})
			return &jobs[len(jobs)-1]
		}
		add(pipeline.Options{Config: pipeline.Baseline}, -1, 0).isBaseline = true
		add(pipeline.Options{Config: pipeline.UUHeuristic, Heuristic: opts.Heuristic}, -1, 0).isHeuristic = true
		for loop := 0; loop < res.LoopCount[b.Name]; loop++ {
			add(pipeline.Options{Config: pipeline.UnmergeOnly, LoopID: loop}, loop, 1)
			for _, u := range factors {
				add(pipeline.Options{Config: pipeline.UnrollOnly, LoopID: loop, Factor: u}, loop, u)
				add(pipeline.Options{Config: pipeline.UU, LoopID: loop, Factor: u}, loop, u)
			}
		}
	}

	// Execute on a worker pool. recs/errs are indexed by job so assembly
	// below is deterministic; the progress writer is the only shared sink
	// and is guarded by a mutex.
	var progressMu sync.Mutex
	logf := func(format string, args ...any) {
		if opts.Progress == nil {
			return
		}
		progressMu.Lock()
		defer progressMu.Unlock()
		fmt.Fprintf(opts.Progress, format+"\n", args...)
	}
	recs := make([]*RunRecord, len(jobs))
	errs := make([]error, len(jobs))
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	simWorkers := opts.SimWorkers
	if simWorkers <= 0 {
		simWorkers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	wc := newWallClocks()
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				idx := int(next.Add(1)) - 1
				if idx >= len(jobs) {
					return
				}
				recs[idx], errs[idx] = runJob(ctx, &jobs[idx], dev, simWorkers, logf, &opts, worker, wc)
			}
		}(i)
	}
	wg.Wait()
	res.WallClock = wc.snapshots()
	canceled := ctx.Err() != nil
	for _, err := range errs {
		if err != nil && !canceled {
			return nil, err
		}
	}

	// Assemble in campaign order. Remarks concatenate here — not as the
	// workers finish — which is what makes the assembled stream independent
	// of the worker count. Under cancellation, unclaimed and aborted jobs
	// left nil records and are skipped: the partial Results hold exactly
	// the runs that completed.
	for i := range jobs {
		j, rec := &jobs[i], recs[i]
		if rec == nil {
			continue
		}
		res.Failures = append(res.Failures, rec.Failures...)
		res.Remarks = append(res.Remarks, rec.Remarks...)
		switch {
		case j.isBaseline:
			res.Baseline[j.b.Name] = rec
		case j.isHeuristic:
			res.Heuristic[j.b.Name] = rec
		default:
			res.PerLoop = append(res.PerLoop, rec)
		}
	}
	if canceled {
		return res, fmt.Errorf("bench: campaign interrupted: %w", ctx.Err())
	}
	return res, nil
}

// runJob performs one measurement: compile (an untransformable loop is
// recorded as skipped, not an error), simulate, optionally verify against
// the oracle. Execution failures are fatal — they mean a miscompilation or
// a simulator bug, not an expected bail-out.
func runJob(ctx context.Context, j *harnessJob, dev gpusim.DeviceConfig, simWorkers int, logf func(string, ...any), hopts *HarnessOptions, worker int, wc *wallClocks) (*RunRecord, error) {
	tJob := time.Now()
	rec := &RunRecord{App: j.b.Name, Config: j.cfg.Config, LoopID: j.loopID, Factor: j.factor}
	// Copy the planned options before attaching per-run sinks: jobs are
	// shared planning state and must stay immutable once the pool starts.
	cfg := j.cfg
	var rc *remark.Collector
	if hopts.Remarks {
		rc = remark.NewCollector()
		cfg.Remarks = rc
	}
	cfg.Trace = hopts.Trace
	cfg.TraceTID = worker
	tCompile := time.Now()
	cr, err := CompileCtx(ctx, j.b, cfg)
	wc.observeCompile(time.Since(tCompile))
	if err != nil {
		if ctx.Err() != nil {
			// An aborted compile is cancellation, not an untransformable
			// loop: leave no record so partial assembly skips this job.
			return nil, err
		}
		rec.Skipped = err.Error()
		rec.Remarks = rc.Remarks()
		wc.observeRun(time.Since(tJob))
		return rec, nil
	}
	rec.CompileMs = float64((cr.Stats.CompileTime - cr.Stats.VerifyTime).Microseconds()) / 1000
	rec.CodeBytes = cr.Program.CodeBytes()
	rec.Decisions = cr.Stats.Decisions
	rec.Skips = cr.Stats.Skips
	rec.PassTimes = cr.Stats.PassTimeByName()
	rec.Failures = cr.Stats.Failures
	var prof *gpusim.Profile
	if hopts.Profile {
		prof = gpusim.NewProfile(cr.Program)
		rec.Profile = prof
		rec.Program = cr.Program
	}
	tSimulate := time.Now()
	m, err := ExecuteWorkersProfiledCtx(ctx, cr, j.w, dev, j.ref, simWorkers, hopts.Trace, worker, prof)
	wc.observeSimulate(time.Since(tSimulate))
	if err != nil {
		return nil, fmt.Errorf("bench %s %s loop %d u%d: %w", j.b.Name, j.cfg.Config, j.loopID, j.factor, err)
	}
	rec.Metrics = m
	rec.Millis = m.KernelMillis(dev)
	if rc.Enabled() {
		// Metrics are identical for any SimWorkers count, so this remark is
		// as deterministic as the compile-time ones.
		rc.Emit(remark.Remark{Kind: remark.Analysis, Pass: "gpusim", Name: "SimMetrics",
			Function: cr.Func.Name, Args: []remark.Arg{
				remark.Int("Cycles", m.Cycles),
				remark.Int("WarpInstrs", m.WarpInstrs),
				remark.Int("ThreadInstrs", m.ThreadInstrs),
				remark.Float("WarpExecutionEfficiency", m.WarpExecutionEfficiency(dev)),
				remark.Int("GldTransactions", m.GldTransactions),
				remark.Int("GstTransactions", m.GstTransactions),
				remark.Int("StallInstFetch", m.StallInstFetch),
				remark.Int("DepStallCycles", m.DepStallCycles),
			}})
	}
	rec.Remarks = rc.Remarks()
	logf("%-16s %-12s loop=%-3d u=%-2d %10.4f ms  code=%6d B  compile=%7.2f ms",
		j.b.Name, j.cfg.Config, j.loopID, j.factor, rec.Millis, rec.CodeBytes, rec.CompileMs)
	wc.observeRun(time.Since(tJob))
	return rec, nil
}

// Best returns the best (highest-speedup) per-loop record for the app with
// the given config and factor (0 = any factor), or nil.
func (r *Results) Best(app string, cfg pipeline.Config, factor int) *RunRecord {
	base := r.Baseline[app]
	var best *RunRecord
	for _, rec := range r.PerLoop {
		if rec.App != app || rec.Config != cfg || rec.Skipped != "" {
			continue
		}
		if factor != 0 && rec.Factor != factor {
			continue
		}
		if best == nil || rec.Speedup(base) > best.Speedup(base) {
			best = rec
		}
	}
	return best
}

// PerLoopFor returns the per-loop records for (app, config, factor) sorted
// by loop ID.
func (r *Results) PerLoopFor(app string, cfg pipeline.Config, factor int) []*RunRecord {
	var out []*RunRecord
	for _, rec := range r.PerLoop {
		if rec.App == app && rec.Config == cfg && (factor == 0 || rec.Factor == factor) {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LoopID < out[j].LoopID })
	return out
}
