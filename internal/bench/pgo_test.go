package bench

import (
	"bytes"
	"testing"

	"uu/internal/core"
	"uu/internal/profile"
)

// TestPGOConvergence runs the full feedback loop over the golden profile
// corpus and pins the headline acceptance criteria: the campaign converges
// within the ladder depth, no MISPREDICT verdict survives, bezier-surface
// keeps its paper-scale speedup, and complex ends at least neutral.
func TestPGOConvergence(t *testing.T) {
	res, err := RunPGO(PGOOptions{Apps: remarkCorpusApps})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("campaign did not converge within %d rounds", len(res.Rounds))
	}
	if len(res.Rounds) > 4 {
		t.Fatalf("converged in %d rounds; the demotion ladder bounds this at 4", len(res.Rounds))
	}
	if n := res.Mispredicts(); n != 0 {
		t.Fatalf("%d MISPREDICT verdict(s) survive the campaign", n)
	}
	if s := res.FinalSpeedup("bezier-surface"); s < 1.5 {
		t.Fatalf("bezier-surface final speedup %.3f < 1.5", s)
	}
	if s := res.FinalSpeedup("complex"); s < 1.0 {
		t.Fatalf("complex final speedup %.3f < 1.0 — feedback did not recover the regression", s)
	}
	for _, a := range res.Final() {
		if a.Skipped != "" {
			t.Fatalf("%s: heuristic compile skipped: %s", a.App, a.Skipped)
		}
	}
}

// TestPGORecoversForcedCollapse is the recovery case study: seeding complex
// with the paper's force+cap=8 override reproduces the u=8 collapse
// (≈0.06×), and the feedback loop must dig it back out to at least neutral
// by demoting the loop down the ladder.
func TestPGORecoversForcedCollapse(t *testing.T) {
	res, err := RunPGO(PGOOptions{
		Apps: []string{"complex"},
		Seed: map[string]map[int32]core.LoopOverride{
			"complex": {10: {Force: true, FactorCap: 8}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Rounds[0].Apps[0]
	if first.Speedup >= 0.5 {
		t.Fatalf("seeded force+cap=8 did not reproduce the collapse: round 1 speedup %.3f", first.Speedup)
	}
	if !res.Converged {
		t.Fatalf("recovery did not converge in %d rounds", len(res.Rounds))
	}
	if s := res.FinalSpeedup("complex"); s < 1.0 {
		t.Fatalf("final speedup %.3f < 1.0 after recovery", s)
	}
	// The ladder must have stepped the forced loop down, not re-forced it.
	final := res.Final()[0]
	if ov := final.Overrides[10]; ov.Force {
		t.Fatalf("collapsed loop still forced in the final round: %v", ov)
	}
}

// TestPGOForcePathPromotion drives the promotion side: with a starved size
// budget the static model rejects bezier-surface's hot loop (SizeOverBudget
// — a genuine MISPREDICT), and the next round must force it back in and
// clear the verdict.
func TestPGOForcePathPromotion(t *testing.T) {
	res, err := RunPGO(PGOOptions{
		Apps:      []string{"bezier-surface"},
		Heuristic: core.HeuristicParams{C: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Rounds[0].Apps[0]
	if first.Verdict != profile.VerdictMispredict || first.Reason != core.SkipSizeOverBudget {
		t.Fatalf("round 1 verdict = %s(%s), want MISPREDICT(SizeOverBudget)", first.Verdict, first.Reason)
	}
	if !res.Converged || res.Mispredicts() != 0 {
		t.Fatalf("promotion did not clear the misprediction: converged=%t mispredicts=%d",
			res.Converged, res.Mispredicts())
	}
	final := res.Final()[0]
	if len(final.Decisions) != 1 || !final.Decisions[0].Forced {
		t.Fatalf("final round did not force-select the loop: %+v", final.Decisions)
	}
	if final.Speedup < 1.0 {
		t.Fatalf("forced re-selection still regresses: %.3f", final.Speedup)
	}
}

// TestPGODeterminism pins that the campaign — and its rendered report — is
// byte-identical under any worker-pool configuration.
func TestPGODeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	render := func(workers, simWorkers int) []byte {
		res, err := RunPGO(PGOOptions{
			Apps:       remarkCorpusApps,
			Workers:    workers,
			SimWorkers: simWorkers,
			Seed: map[string]map[int32]core.LoopOverride{
				"complex": {10: {Force: true, FactorCap: 8}},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WritePGOReport(&buf, res); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := render(1, 1)
	parallel := render(4, 4)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("PGO report differs across worker configurations:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s",
			serial, parallel)
	}
}
