package bench

import (
	"strings"
	"testing"
	"time"

	"uu/internal/telemetry"
)

// TestWallClockHistograms checks that a campaign records one wall-clock
// sample per completed job: every job observes compile and run, and every
// non-skipped job observes simulate.
func TestWallClockHistograms(t *testing.T) {
	res, err := RunExperiments(HarnessOptions{
		Apps:    []string{"contract", "clink"},
		Factors: []int{2},
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WallClock == nil {
		t.Fatal("Results.WallClock not populated")
	}
	for _, name := range wallClockPhases {
		if res.WallClock[name] == nil {
			t.Fatalf("missing %q histogram", name)
		}
	}

	total := int64(len(res.Baseline) + len(res.Heuristic) + len(res.PerLoop))
	simulated := int64(len(res.Baseline) + len(res.Heuristic))
	for _, rec := range res.PerLoop {
		if rec.Skipped == "" {
			simulated++
		}
	}
	if got := res.WallClock["compile"].Count; got != total {
		t.Errorf("compile count = %d, want %d (one per job)", got, total)
	}
	if got := res.WallClock["run"].Count; got != total {
		t.Errorf("run count = %d, want %d (one per job)", got, total)
	}
	if got := res.WallClock["simulate"].Count; got != simulated {
		t.Errorf("simulate count = %d, want %d (one per non-skipped job)", got, simulated)
	}

	// Quantiles must be ordered and bounded by the recorded max, and a run
	// can never be shorter than its compile phase at every rank.
	run := res.WallClock["run"]
	p50, p99 := run.Quantile(0.50), run.Quantile(0.99)
	if !(0 < p50 && p50 <= p99 && p99 <= run.Max) {
		t.Errorf("run quantiles out of order: p50=%d p99=%d max=%d", p50, p99, run.Max)
	}
	if run.Sum < res.WallClock["compile"].Sum {
		t.Errorf("total run time %d ns below total compile time %d ns", run.Sum, res.WallClock["compile"].Sum)
	}
}

func TestWriteWallClockFormat(t *testing.T) {
	// One synthetic snapshot set rather than a second campaign: the
	// writer only needs populated histograms.
	h := telemetry.NewHistogram()
	for _, d := range []time.Duration{time.Microsecond, time.Millisecond, 50 * time.Millisecond, 2 * time.Second} {
		h.ObserveDuration(d)
	}
	snap := h.Snapshot()
	res := &Results{
		DeviceName: "V100",
		Input:      InputCoherent,
		WallClock: map[string]*telemetry.HistSnapshot{
			"compile": snap, "simulate": snap, "run": snap,
		},
	}
	var sb strings.Builder
	WriteWallClock(&sb, res)
	out := sb.String()
	for _, want := range []string{
		"Campaign wall-clock breakdown", "phase", "count", "p99",
		"compile", "simulate", "run",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	// A Results without histograms (e.g. decoded from an older artifact)
	// must render the placeholder, not panic.
	var empty strings.Builder
	WriteWallClock(&empty, &Results{DeviceName: "V100", Input: InputCoherent})
	if !strings.Contains(empty.String(), "no wall-clock histograms") {
		t.Errorf("empty-results report missing placeholder:\n%s", empty.String())
	}
}
