package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"uu/internal/telemetry"
)

// wallClockPhases lists the campaign wall-clock histograms in report
// order: compile (frontend + pipeline + codegen per run), simulate
// (gpusim execution per run), and run (one job end to end, verification
// included).
var wallClockPhases = []string{"compile", "simulate", "run"}

// wallClocks are the histograms a campaign's worker pool records into —
// the same log-linear telemetry.Histogram the compile service serves at
// /metrics, so quantile semantics and error bounds match across the
// daemon and the harness. Recording is atomic; a nil *wallClocks (and
// the nil histograms inside) disables recording at zero cost, following
// the repository's nil-sink discipline.
type wallClocks struct {
	compile  *telemetry.Histogram
	simulate *telemetry.Histogram
	run      *telemetry.Histogram
}

func newWallClocks() *wallClocks {
	return &wallClocks{
		compile:  telemetry.NewHistogram(),
		simulate: telemetry.NewHistogram(),
		run:      telemetry.NewHistogram(),
	}
}

func (wc *wallClocks) observeCompile(d time.Duration) {
	if wc == nil {
		return
	}
	wc.compile.ObserveDuration(d)
}

func (wc *wallClocks) observeSimulate(d time.Duration) {
	if wc == nil {
		return
	}
	wc.simulate.ObserveDuration(d)
}

func (wc *wallClocks) observeRun(d time.Duration) {
	if wc == nil {
		return
	}
	wc.run.ObserveDuration(d)
}

// snapshots freezes the histograms for Results. Bucket contents are
// identical for any worker count — only the wall-clock values inside
// vary with machine load, never the set of runs recorded.
func (wc *wallClocks) snapshots() map[string]*telemetry.HistSnapshot {
	if wc == nil {
		return nil
	}
	return map[string]*telemetry.HistSnapshot{
		"compile":  wc.compile.Snapshot(),
		"simulate": wc.simulate.Snapshot(),
		"run":      wc.run.Snapshot(),
	}
}

// WriteWallClock renders the campaign's wall-clock breakdown: one row
// per phase with count, mean, and tail quantiles. This is throughput
// telemetry about the harness itself (how long compiles and simulations
// took on this machine, at this worker count) — not a paper artifact;
// kernel-time speedups come from the simulator's deterministic metrics.
func WriteWallClock(w io.Writer, r *Results) {
	fmt.Fprintf(w, "Campaign wall-clock breakdown (device %s, input %s)\n", r.DeviceName, r.Input)
	fmt.Fprintf(w, "%-10s %7s %10s %10s %10s %10s %10s\n", "phase", "count", "mean", "p50", "p95", "p99", "max")
	names := wallClockPhases
	if r.WallClock == nil {
		fmt.Fprintln(w, "(no wall-clock histograms recorded)")
		return
	}
	// Render any extra keys after the known ones, sorted, so the report
	// never silently drops data.
	known := map[string]bool{}
	for _, n := range names {
		known[n] = true
	}
	var extra []string
	for n := range r.WallClock {
		if !known[n] {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	for _, name := range append(append([]string{}, names...), extra...) {
		s := r.WallClock[name]
		if s == nil {
			continue
		}
		fmt.Fprintf(w, "%-10s %7d %10s %10s %10s %10s %10s\n", name, s.Count,
			fmtDur(time.Duration(int64(s.Mean()))),
			fmtDur(time.Duration(s.Quantile(0.50))),
			fmtDur(time.Duration(s.Quantile(0.95))),
			fmtDur(time.Duration(s.Quantile(0.99))),
			fmtDur(time.Duration(s.Max)))
	}
}

// fmtDur renders a duration with an adaptive unit for the report table.
func fmtDur(d time.Duration) string {
	switch {
	case d <= 0:
		return "-"
	case d < time.Millisecond:
		return fmt.Sprintf("%dµs", d.Microseconds())
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1e3)
	}
	return fmt.Sprintf("%.2fs", d.Seconds())
}
