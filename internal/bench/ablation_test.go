package bench

import (
	"testing"

	"uu/internal/gpusim"
)

func rowByName(rows []AblationRow, name string) *AblationRow {
	for i := range rows {
		if rows[i].Name == name {
			return &rows[i]
		}
	}
	return nil
}

// TestAblationBezier probes the two GVN capabilities on the bezier loop: the
// condition-elimination win requires equality propagation, and whole-path
// duplication must not lose to direct-successor-only duplication.
func TestAblationBezier(t *testing.T) {
	rows, err := RunAblations("bezier-surface", 1, 2, gpusim.V100())
	if err != nil {
		t.Fatalf("ablations: %v", err)
	}
	full := rowByName(rows, "uu")
	noEq := rowByName(rows, "uu/no-equality-prop")
	direct := rowByName(rows, "uu/direct-successor")
	if full == nil || noEq == nil || direct == nil {
		t.Fatalf("missing rows: %+v", rows)
	}
	if full.Speedup < 1.3 {
		t.Fatalf("full u&u speedup %.3f too low", full.Speedup)
	}
	if noEq.Speedup >= full.Speedup {
		t.Errorf("disabling equality propagation should cost speedup: full=%.3f noEq=%.3f",
			full.Speedup, noEq.Speedup)
	}
	if direct.Err == "" && direct.Speedup > full.Speedup+0.05 {
		t.Errorf("direct-successor-only unexpectedly beats whole-path: %.3f vs %.3f",
			direct.Speedup, full.Speedup)
	}
}

// TestAblationRainflow: the load-elimination capability carries a large part
// of rainflow's win (§V: gld_throughput reduction).
func TestAblationRainflow(t *testing.T) {
	rows, err := RunAblations("rainflow", 0, 4, gpusim.V100())
	if err != nil {
		t.Fatalf("ablations: %v", err)
	}
	full := rowByName(rows, "uu")
	noLoads := rowByName(rows, "uu/no-load-elim")
	if full == nil || noLoads == nil {
		t.Fatalf("missing rows")
	}
	if full.Speedup < 1.2 {
		t.Fatalf("full u&u speedup %.3f too low", full.Speedup)
	}
	if noLoads.Speedup >= full.Speedup {
		t.Errorf("disabling load elimination should cost speedup: full=%.3f noLoads=%.3f",
			full.Speedup, noLoads.Speedup)
	}
}

// TestAblationComplexPredication: the baseline's advantage on complex comes
// from if-conversion; without it the baseline itself diverges.
func TestAblationComplexPredication(t *testing.T) {
	rows, err := RunAblations("complex", 0, 4, gpusim.V100())
	if err != nil {
		t.Fatalf("ablations: %v", err)
	}
	base := rowByName(rows, "baseline")
	noIfc := rowByName(rows, "baseline/no-ifconvert")
	uu := rowByName(rows, "uu")
	if base == nil || noIfc == nil || uu == nil {
		t.Fatalf("missing rows")
	}
	if noIfc.Millis <= base.Millis {
		t.Errorf("baseline without predication should be slower: %.5f vs %.5f",
			noIfc.Millis, base.Millis)
	}
	if uu.Speedup > 1.0 {
		t.Errorf("complex u&u u=4 should not beat baseline (got %.3f)", uu.Speedup)
	}
}

// TestAblationSelectiveComplex: the paper's §VI hypothesis — partial
// unmerging should contain the damage on complex, whose merges carry plain
// data flow that no later pass exploits.
func TestAblationSelectiveComplex(t *testing.T) {
	rows, err := RunAblations("complex", 0, 8, gpusim.V100())
	if err != nil {
		t.Fatalf("ablations: %v", err)
	}
	full := rowByName(rows, "uu")
	sel := rowByName(rows, "uu/selective")
	if full == nil || sel == nil {
		t.Fatalf("missing rows")
	}
	if sel.Err != "" {
		t.Fatalf("selective failed: %s", sel.Err)
	}
	if sel.Speedup <= full.Speedup {
		t.Errorf("selective unmerging should contain the complex slowdown: selective=%.3f full=%.3f",
			sel.Speedup, full.Speedup)
	}
	if sel.Code >= full.Code {
		t.Errorf("selective unmerging should emit less code: %d vs %d", sel.Code, full.Code)
	}
}

// TestAblationSelectiveKeepsBezierWin: on loops where the merges ARE the
// optimization opportunity, selective mode must keep (most of) the win.
func TestAblationSelectiveKeepsBezierWin(t *testing.T) {
	rows, err := RunAblations("bezier-surface", 1, 2, gpusim.V100())
	if err != nil {
		t.Fatalf("ablations: %v", err)
	}
	full := rowByName(rows, "uu")
	sel := rowByName(rows, "uu/selective")
	if full == nil || sel == nil || sel.Err != "" {
		t.Fatalf("missing rows: %+v", rows)
	}
	if sel.Speedup < full.Speedup*0.9 {
		t.Errorf("selective mode lost the bezier win: selective=%.3f full=%.3f",
			sel.Speedup, full.Speedup)
	}
}
