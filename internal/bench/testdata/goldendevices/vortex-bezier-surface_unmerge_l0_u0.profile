kernel bezier: 476511 cycles (issue 229184, dep_stall 247216, fetch_stall 110)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L12              2       420158   88.2%       420158            0            0
  loop@L7               1        50797   10.7%       470955            0            0

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L11            loop@L12             109123  22.9%        14080       225280        95033          0          0
  L12            loop@L12              54208  11.4%        15488       247808        30976          0          0
  L20.d1         loop@L12              50400  10.6%         5760        92160        30240          0          0
  L20            loop@L12              39520   8.3%         8320       133120        10400          0          0
  L15            loop@L12              38720   8.1%        14080       225280        17600          0          0
  L13            loop@L12              31690   6.7%        14080       225280        17600          0          0
  L16            loop@L12              27368   5.7%         5760        92160         7198          0          0
  L10            loop@L12              21119   4.4%        14080       225280         7039          0          0
  L24            loop@L7               15712   3.3%         3328        53248         9760          0          0
  ?              loop@L12              14080   3.0%         7040       112640            0          0          0
  L25.d1         loop@L7               12485   2.6%         2560        40960         7995          0          0
  L8             loop@L12               7040   1.5%         7040       112640            0          0          0
  L14            loop@L12               7040   1.5%         7040       112640            0          0          0
  L7             loop@L7                5220   1.1%         2240        35840         2201          0          0
  L6             loop@L7                4496   0.9%         1408        22528         3078          0          0
  L21            loop@L12               4170   0.9%         4160        66560            0          0          0
  L19            loop@L12               4160   0.9%         4160        66560            0          0          0
  L9             loop@L12               2880   0.6%         2880        46080            0          0          0
  L17            loop@L12               2880   0.6%         2880        46080            0          0          0
  L19.d1         loop@L12               2880   0.6%         2880        46080            0          0          0
  L21.d1         loop@L12               2880   0.6%         2880        46080            0          0          0
  L10            loop@L7                2816   0.6%         1408        22528         1408          0          0
  L25.d1         -                      2752   0.6%           64         1024         2688          0          0
  L26.d3         loop@L7                2240   0.5%          640        10240         1600          0          0
  ?              loop@L7                1408   0.3%          704        11264            0          0          0
  L12            loop@L7                1408   0.3%          704        11264            0          0          0
  L25            loop@L7                1258   0.3%          256         4096          800          0          0
  L3             -                       874   0.2%          384         6144          480          0          0
  L9             loop@L7                 714   0.1%          704        11264            0          0          0
  L8             loop@L7                 704   0.1%          704        11264            0          0          0
  L11            loop@L7                 704   0.1%          704        11264            0          0          0
  L7.d3          loop@L7                 640   0.1%          640        10240            0          0          0
  L26.d1         loop@L7                 640   0.1%          640        10240            0          0          0
  L5             -                       522   0.1%          192         3072          320          0        256
  L4             -                       512   0.1%          128         2048          320          0          0
  L28            -                       512   0.1%          192         3072          320          0        256
  L26.d2         loop@L7                 224   0.0%           64         1024          160          0          0
  L7             -                       192   0.0%          128         2048            0          0          0
  ?              -                       128   0.0%           64         1024            0          0          0
  L6             -                        64   0.0%           64         1024            0          0          0
  L7.d2          loop@L7                  64   0.0%           64         1024            0          0          0
  L26            loop@L7                  64   0.0%           64         1024            0          0          0

bezier;? 128
bezier;L25.d1 2752
bezier;L28 512
bezier;L3 874
bezier;L4 512
bezier;L5 522
bezier;L6 64
bezier;L7 192
bezier;loop@L7;? 1408
bezier;loop@L7;L10 2816
bezier;loop@L7;L11 704
bezier;loop@L7;L12 1408
bezier;loop@L7;L24 15712
bezier;loop@L7;L25 1258
bezier;loop@L7;L25.d1 12485
bezier;loop@L7;L26 64
bezier;loop@L7;L26.d1 640
bezier;loop@L7;L26.d2 224
bezier;loop@L7;L26.d3 2240
bezier;loop@L7;L6 4496
bezier;loop@L7;L7 5220
bezier;loop@L7;L7.d2 64
bezier;loop@L7;L7.d3 640
bezier;loop@L7;L8 704
bezier;loop@L7;L9 714
bezier;loop@L7;loop@L12;? 14080
bezier;loop@L7;loop@L12;L10 21119
bezier;loop@L7;loop@L12;L11 109123
bezier;loop@L7;loop@L12;L12 54208
bezier;loop@L7;loop@L12;L13 31690
bezier;loop@L7;loop@L12;L14 7040
bezier;loop@L7;loop@L12;L15 38720
bezier;loop@L7;loop@L12;L16 27368
bezier;loop@L7;loop@L12;L17 2880
bezier;loop@L7;loop@L12;L19 4160
bezier;loop@L7;loop@L12;L19.d1 2880
bezier;loop@L7;loop@L12;L20 39520
bezier;loop@L7;loop@L12;L20.d1 50400
bezier;loop@L7;loop@L12;L21 4170
bezier;loop@L7;loop@L12;L21.d1 2880
bezier;loop@L7;loop@L12;L8 7040
bezier;loop@L7;loop@L12;L9 2880
