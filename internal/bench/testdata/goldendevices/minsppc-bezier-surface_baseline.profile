kernel bezier: 170877 cycles (issue 132800, dep_stall 37948, fetch_stall 128)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L12              2       154466   90.4%       154466            0            0
  loop@L7               1        14948    8.7%       169414            0            0

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L11            loop@L12              31622  18.5%        10560       337920        21063          0          0
  L16            loop@L12              26774  15.7%         7040       225280         2118          0          0
  L20            loop@L12              26758  15.7%         7040       225280         2118          0          0
  L12            loop@L12              15337   9.0%         7744       247808         3721          0          0
  L13            loop@L12               9174   5.4%         7040       225280         2118          0          0
  L10            loop@L12               9062   5.3%         7040       225280         2021          0          0
  L9             loop@L12               7563   4.4%         7040       225280          523          0          0
  ?              loop@L12               7040   4.1%         3520       112640            0          0          0
  L21            loop@L12               3536   2.1%         3520       112640            0          0          0
  L24            loop@L7                3534   2.1%         1408        45056         1054          0          0
  L8             loop@L12               3520   2.1%         3520       112640            0          0          0
  L14            loop@L12               3520   2.1%         3520       112640            0          0          0
  L15            loop@L12               3520   2.1%         3520       112640            0          0          0
  L17            loop@L12               3520   2.1%         3520       112640            0          0          0
  L19            loop@L12               3520   2.1%         3520       112640            0          0          0
  L25            loop@L7                3520   2.1%         1408        45056         1056          0          0
  L7             loop@L7                3099   1.8%         1824        58368          523          0          0
  L11            loop@L7                1480   0.9%         1056        33792          424          0          0
  L10            loop@L7                 873   0.5%          704        22528          169          0          0
  L12            loop@L7                 704   0.4%          352        11264            0          0          0
  L25            -                       585   0.3%           32         1024          553          0          0
  L26            loop@L7                 564   0.3%          352        11264          212          0          0
  L6             loop@L7                 454   0.3%          352        11264          102          0          0
  L9             loop@L7                 368   0.2%          352        11264            0          0          0
  L8             loop@L7                 352   0.2%          352        11264            0          0          0
  L3             -                       265   0.2%          192         6144           58          0          0
  L5             -                       153   0.1%           96         3072           42          0        256
  L4             -                       134   0.1%           64         2048           39          0          0
  L28            -                       134   0.1%           96         3072           39          0        256
  L7             -                        96   0.1%           64         2048            0          0          0
  ?              -                        64   0.0%           32         1024            0          0          0
  L6             -                        32   0.0%           32         1024            0          0          0

bezier;? 64
bezier;L25 585
bezier;L28 134
bezier;L3 265
bezier;L4 134
bezier;L5 153
bezier;L6 32
bezier;L7 96
bezier;loop@L7;L10 873
bezier;loop@L7;L11 1480
bezier;loop@L7;L12 704
bezier;loop@L7;L24 3534
bezier;loop@L7;L25 3520
bezier;loop@L7;L26 564
bezier;loop@L7;L6 454
bezier;loop@L7;L7 3099
bezier;loop@L7;L8 352
bezier;loop@L7;L9 368
bezier;loop@L7;loop@L12;? 7040
bezier;loop@L7;loop@L12;L10 9062
bezier;loop@L7;loop@L12;L11 31622
bezier;loop@L7;loop@L12;L12 15337
bezier;loop@L7;loop@L12;L13 9174
bezier;loop@L7;loop@L12;L14 3520
bezier;loop@L7;loop@L12;L15 3520
bezier;loop@L7;loop@L12;L16 26774
bezier;loop@L7;loop@L12;L17 3520
bezier;loop@L7;loop@L12;L19 3520
bezier;loop@L7;loop@L12;L20 26758
bezier;loop@L7;loop@L12;L21 3536
bezier;loop@L7;loop@L12;L8 3520
bezier;loop@L7;loop@L12;L9 7563
