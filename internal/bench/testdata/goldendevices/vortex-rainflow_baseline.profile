kernel rainflow: 685727 cycles (issue 215394, dep_stall 470227, fetch_stall 100)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L7               1       681107   99.3%       681107          886       231946

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L8             loop@L7              237647  34.7%        48128       770048       183483        443     192512
  L9             loop@L7              122218  17.8%        19932       301098        98954         28      50183
  L15            loop@L7              118042  17.2%        18822       276438        96072        415      46073
  L7             loop@L7               78634  11.5%        30208       483328        36320          0          0
  L5             loop@L7               36926   5.4%        22514       334841        14391          0          0
  L14            loop@L7               34092   5.0%         6274        92146        24680          0          0
  L17            loop@L7               25737   3.8%        10494       133106         7913          0      10240
  L11            loop@L7               15794   2.3%         6250        95239         5490          0      11264
  ?              loop@L7               10230   1.5%         5115        74752            0          0          0
  L6             -                      2184   0.3%          384         6144         1790          0       2048
  L16            loop@L7                1055   0.2%         1055        10240            0          0          0
  L3             -                       874   0.1%          384         6144          480          0          0
  L10            loop@L7                 732   0.1%          732        11264            0          0          0
  L22            -                       576   0.1%          256         4096          320          0        256
  L7             -                       570   0.1%          320         5120          176          0          0
  L4             -                       224   0.0%           64         1024          160          0          0
  ?              -                       128   0.0%           64         1024            0          0          0
  L5             -                        64   0.0%           64         1024            0          0          0

rainflow;? 128
rainflow;L22 576
rainflow;L3 874
rainflow;L4 224
rainflow;L5 64
rainflow;L6 2184
rainflow;L7 570
rainflow;loop@L7;? 10230
rainflow;loop@L7;L10 732
rainflow;loop@L7;L11 15794
rainflow;loop@L7;L14 34092
rainflow;loop@L7;L15 118042
rainflow;loop@L7;L16 1055
rainflow;loop@L7;L17 25737
rainflow;loop@L7;L5 36926
rainflow;loop@L7;L7 78634
rainflow;loop@L7;L8 237647
rainflow;loop@L7;L9 122218
