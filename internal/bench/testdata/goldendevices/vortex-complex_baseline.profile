kernel cpx: 244312 cycles (issue 141845, dep_stall 102414, fetch_stall 50)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L10              1       224068   91.7%       224068            4            0

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L10            loop@L10              58890  24.1%        19459       311299        26628          4          0
  L9             loop@L10              27663  11.3%        12290       196610        15363          0          0
  L11            loop@L10              27663  11.3%        12290       196610        15363          0          0
  L13            loop@L10              27663  11.3%        12290       196610        15363          0          0
  L15            loop@L10              27653  11.3%        12290       196610        15363          0          0
  L8             loop@L10              12290   5.0%        12290       196610            0          0          0
  L7             loop@L10               9217   3.8%         6145        98305         3072          0          0
  L6             loop@L10               7681   3.1%         6145        98305         1536          0          0
  L3             -                      7434   3.0%         3584        57344         3840          0          0
  L3             loop@L10               6913   2.8%         6145        98305          768          0          0
  L12            loop@L10               6145   2.5%         6145        98305            0          0          0
  L16            loop@L10               6145   2.5%         6145        98305            0          0          0
  L17            loop@L10               6145   2.5%         6145        98305            0          0          0
  L19            -                      4608   1.9%         2048        32768         2560          0       2048
  L4             -                      4096   1.7%         1024        16384         2560          0          0
  ?              -                      2048   0.8%         1024        16384            0          0          0
  L9             -                       522   0.2%          512         8192            0          0          0
  L6             -                       512   0.2%          512         8192            0          0          0
  L7             -                       512   0.2%          512         8192            0          0          0
  L8             -                       512   0.2%          512         8192            0          0          0

cpx;? 2048
cpx;L19 4608
cpx;L3 7434
cpx;L4 4096
cpx;L6 512
cpx;L7 512
cpx;L8 512
cpx;L9 522
cpx;loop@L10;L10 58890
cpx;loop@L10;L11 27663
cpx;loop@L10;L12 6145
cpx;loop@L10;L13 27663
cpx;loop@L10;L15 27653
cpx;loop@L10;L16 6145
cpx;loop@L10;L17 6145
cpx;loop@L10;L3 6913
cpx;loop@L10;L6 7681
cpx;loop@L10;L7 9217
cpx;loop@L10;L8 12290
cpx;loop@L10;L9 27663
