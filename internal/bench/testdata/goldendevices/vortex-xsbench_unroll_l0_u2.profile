kernel xsbench: 197997 cycles (issue 44291, dep_stall 153604, fetch_stall 100)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L11              1       153937   77.7%       153937            1            0

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L13            loop@L11              45520  23.0%         3072        49152        42438          0        860
  L13.u1         loop@L11              45460  23.0%         3072        49124        42388          0        886
  L12.u1         loop@L11              16138   8.2%         1536        24562         9216          0          0
  L12            loop@L11              16128   8.1%         1536        24576         9216          0          0
  L23            -                     16007   8.1%         1664        26624        14333          0        914
  L22            -                      9709   4.9%          384         6144         8675          0          0
  L11.u1         loop@L11               7680   3.9%         2304        36857         3840          1          0
  L5             -                      6282   3.2%          768        12288         3712          0          0
  L11            loop@L11               5338   2.7%         1792        28658         2640          0          0
  L7             -                      4104   2.1%          384         6144         2174          0          0
  L9             loop@L11               3456   1.7%         1536        24569         1920          0          0
  L9.u1          loop@L11               2688   1.4%          768        12281         1920          0          0
  L10            loop@L11               2688   1.4%          768        12281         1920          0          0
  L18            loop@L11               2688   1.4%          768        12288         1920          0          0
  L18.u1         loop@L11               2688   1.4%          768        12281         1920          0          0
  L8             loop@L11               2112   1.1%         1536        24569          576          0          0
  L3             -                      1738   0.9%          768        12288          960          0          0
  L21            -                      1472   0.7%          512         8192          960          0        202
  L8.u1          loop@L11               1353   0.7%          768        12281          575          0          0
  L20            -                      1215   0.6%          384         6144          831          0        200
  L4             -                      1024   0.5%          256         4096          640          0          0
  L6             -                       672   0.3%          256         4096          416          0          0
  ?              -                       524   0.3%          257         4096            0          0          0
  L10            -                       448   0.2%          128         2048          320          0          0
  L9             -                       352   0.2%          256         4096           96          0          0
  L8             -                       257   0.1%          257         4096            0          0          0
  L11            -                       256   0.1%          128         2048            0          0          0

xsbench;? 524
xsbench;L10 448
xsbench;L11 256
xsbench;L20 1215
xsbench;L21 1472
xsbench;L22 9709
xsbench;L23 16007
xsbench;L3 1738
xsbench;L4 1024
xsbench;L5 6282
xsbench;L6 672
xsbench;L7 4104
xsbench;L8 257
xsbench;L9 352
xsbench;loop@L11;L10 2688
xsbench;loop@L11;L11 5338
xsbench;loop@L11;L11.u1 7680
xsbench;loop@L11;L12 16128
xsbench;loop@L11;L12.u1 16138
xsbench;loop@L11;L13 45520
xsbench;loop@L11;L13.u1 45460
xsbench;loop@L11;L18 2688
xsbench;loop@L11;L18.u1 2688
xsbench;loop@L11;L8 2112
xsbench;loop@L11;L8.u1 1353
xsbench;loop@L11;L9 3456
xsbench;loop@L11;L9.u1 2688
