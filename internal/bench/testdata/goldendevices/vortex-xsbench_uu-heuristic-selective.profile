kernel xsbench: 225497 cycles (issue 48433, dep_stall 167650, fetch_stall 9320)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L11              1       181001   80.3%       181001          146            0

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L13            loop@L11              16392   7.3%         1280        20480        14846          7        256
  L23            -                     16012   7.1%         1664        26624        14338          0        914
  L22            -                      9706   4.3%          384         6144         8682          0          0
  L13.u1.d1      loop@L11               8847   3.9%          690        10615         7999          7        138
  L13.u1         loop@L11               8002   3.5%          625         9865         7250          4        125
  L5             -                      6282   2.8%          768        12288         3712          0          0
  L12            loop@L11               5376   2.4%          512         8192         3072          0          0
  L13.u2.d33     loop@L11               4864   2.2%          380         5365         4408          6         76
  L13.u2.d1      loop@L11               4470   2.0%          345         5250         3985          6         69
  L13.u2         loop@L11               4290   1.9%          335         5190         3886          7         67
  L7             -                      4104   1.8%          384         6144         2174          0          0
  L13.u2.d2      loop@L11               4013   1.8%          310         4675         3581          0         62
  L13.u3.d34     loop@L11               2949   1.3%          225         2765         2588          0         45
  L11            loop@L11               2947   1.3%         1058        12274         1350          0          0
  L12.u1.d1      loop@L11               2898   1.3%          276         4246         1656          0          0
  L12.u1         loop@L11               2635   1.2%          250         3946         1500          0          0
  L13.u3.d1      loop@L11               2635   1.2%          200         2805         2295          8         40
  L10            loop@L11               2540   1.1%          802         8178         1497          0          0
  L13.u3.d18     loop@L11               2437   1.1%          185         2585         2124          7         37
  L13.u3         loop@L11               2370   1.1%          185         2605         2146          2         37
  L13.u3.d33     loop@L11               2370   1.1%          185         2600         2146          0         37
  L13.u3.d49     loop@L11               2242   1.0%          175         2445         2030          7         35
  L13.u3.d2      loop@L11               2236   1.0%          170         2435         1952          7         34
  L13.u3.d3      loop@L11               1792   0.8%          140         2240         1624          6         28
  L3             -                      1738   0.8%          768        12288          960          0          0
  L12.u2.d33     loop@L11               1666   0.7%          152         2146          912          0          0
  L13.u4.d1      loop@L11               1664   0.7%          130         1710         1508          8         26
  L13.u4.d33     loop@L11               1604   0.7%          120         1630         1370          7         24
  L13.u4.d11     loop@L11               1536   0.7%          120         1540         1392          7         24
  L13.u4.d19     loop@L11               1536   0.7%          120         1710         1392          6         24
  L12.u2         loop@L11               1477   0.7%          134         2076          804          0          0
  L13.u4.d49     loop@L11               1476   0.7%          110         1565         1254          5         22
  L13.u4.d34     loop@L11               1474   0.7%          115         1430         1334          7         23
  L21            -                      1472   0.7%          512         8192          960          0        202
  L13.u4.d26     loop@L11               1468   0.7%          110         1530         1256          7         22
  L12.u2.d1      loop@L11               1449   0.6%          138         2100          828          0          0
  L9             loop@L11               1445   0.6%          802         8178          399          0          0
  L13.u4.d35     loop@L11               1408   0.6%          110         1335         1276          7         22
  L13.u4.d57     loop@L11               1408   0.6%          110         1095         1276          0         22
  L13.u4.d50     loop@L11               1340   0.6%          100          880         1140          0         20
  L12.u2.d2      loop@L11               1302   0.6%          124         1870          744          0          0
  L13.u4.d18     loop@L11               1280   0.6%          100          875         1160          0         20
  L13.u5.d61     loop@L11               1250   0.6%           80          676         1090          0         20
  L20            -                      1224   0.5%          384         6144          830          0        200
  L8             loop@L11               1218   0.5%          802         8178          149          0          0
  L13.u5.d19     loop@L11               1192   0.5%           76          756         1035          0         19
  L13.u5.d33     loop@L11               1190   0.5%           80          752         1110          0         20
  L13.u4         loop@L11               1157   0.5%           85         1075          964          1         17
  L13.u4.d4      loop@L11               1157   0.5%           85         1175          964          6         17
  L13.u4.d3      loop@L11               1150   0.5%           85         1065          966          7         17
  L13.u5.d11     loop@L11               1131   0.5%           72          624          979          0         18
  L13.u5.d36     loop@L11               1131   0.5%           72          624          979          0         18
  L13.u4.d2      loop@L11               1090   0.5%           85          895          986          0         17
  L13.u5.d34     loop@L11               1073   0.5%           68          628          924          0         17
  L13.u5.d27     loop@L11               1071   0.5%           72          628          999          0         18
  L4             -                      1024   0.5%          256         4096          640          0          0
  L11.u1         loop@L11               1001   0.4%          250         3946          625          0          0
  L12.u3.d34     loop@L11                945   0.4%           90         1106          540          0          0
  L13.u4.d42     loop@L11                894   0.4%           65          970          734          4         13
  L13.u5.d8      loop@L11                894   0.4%           60          628          833          0         15
  L12.u3         loop@L11                867   0.4%           74         1042          444          0          0
  L12.u3.d33     loop@L11                857   0.4%           74         1040          444          0          0
  L13.u5.d1      loop@L11                842   0.4%           52          664          699          0         13
  L13.u5.d39     loop@L11                842   0.4%           52          516          699          0         13
  L12.u3.d1      loop@L11                840   0.4%           80         1122          480          0          0
  L13.u5.d12     loop@L11                835   0.4%           52          608          702          0         13
  L13.u5.d54     loop@L11                833   0.4%           56          624          777          0         14
  L12.u3.d49     loop@L11                825   0.4%           70          978          420          0          0
  ?              -                       804   0.4%          402         4096            0          0          0
  ?              loop@L11                802   0.4%          401         4089            0          0          0
  L11.u1.d1      loop@L11                779   0.3%          276         4246          345          0          0
  L12.u3.d18     loop@L11                777   0.3%           74         1034          444          0          0
  L13.u5.d4      loop@L11                775   0.3%           52          624          722          0         13
  L13.u5.d49     loop@L11                775   0.3%           52          628          722          0         13
  L13.u5.d58     loop@L11                767   0.3%           48          452          649          0         12
  L13.u5.d15     loop@L11                716   0.3%           44          560          591          0         11
  L13.u5.d20     loop@L11                716   0.3%           44          612          591          0         11
  L13.u5.d23     loop@L11                716   0.3%           44          396          591          0         11
  L13.u5.d35     loop@L11                716   0.3%           44          444          591          0         11
  L12.u3.d2      loop@L11                714   0.3%           68          974          408          0          0
  L12.u3.d3      loop@L11                688   0.3%           56          896          336          0          0
  L6             -                       672   0.3%          256         4096          416          0          0
  L13.u5.d26     loop@L11                656   0.3%           44          596          611          0         11
  L13.u5.d43     loop@L11                656   0.3%           44          616          611          0         11
  L13.u5.d46     loop@L11                656   0.3%           44          552          611          0         11
  L13.u5.d51     loop@L11                656   0.3%           44          488          611          0         11
  L13.u5.d57     loop@L11                655   0.3%           40          424          535          0         10
  L12.u4.d1      loop@L11                636   0.3%           52          684          312          0          0
  L11.u2.d33     loop@L11                608   0.3%          152         2146          380          0          0
  L13.u5.d5      loop@L11                595   0.3%           40          316          555          0         10
  L12.u4.d11     loop@L11                594   0.3%           48          616          288          0          0
  L12.u4.d19     loop@L11                594   0.3%           48          684          288          0          0
  L13.u5.d18     loop@L11                589   0.3%           36          304          482          0          9
  L12.u4.d34     loop@L11                573   0.3%           46          572          276          0          0
  L12.u4.d35     loop@L11                552   0.2%           44          534          264          0          0
  L12.u4.d57     loop@L11                552   0.2%           44          438          264          0          0
  L11.u2.d2      loop@L11                541   0.2%          124         1870          295          0          0
  L13.u5         loop@L11                537   0.2%           36          464          500          0          9
  L13.u5.d3      loop@L11                537   0.2%           36          224          500          0          9
  L13.u5.d30     loop@L11                537   0.2%           36          396          500          0          9
  L13.u5.d50     loop@L11                537   0.2%           36          216          500          0          9
  L12.u4.d33     loop@L11                504   0.2%           48          652          288          0          0
  L12.u4.d18     loop@L11                500   0.2%           40          350          240          0          0
  L12.u5.d33     loop@L11                500   0.2%           40          376          240          0          0
  L12.u4.d26     loop@L11                462   0.2%           44          612          264          0          0
  L12.u4.d49     loop@L11                462   0.2%           44          626          264          0          0
  L12.u5.d27     loop@L11                458   0.2%           36          314          216          0          0
  L11.u2.d1      loop@L11                450   0.2%          138         2100          173          0          0
  L10            -                       448   0.2%          128         2048          320          0          0
  L12.u4.d2      loop@L11                437   0.2%           34          358          204          0          0
  L11.u2         loop@L11                429   0.2%          134         2076          168          0          0
  L11.u3.d34     loop@L11                428   0.2%           90         1106          203          0          0
  L12.u4.d50     loop@L11                420   0.2%           40          352          240          0          0
  L12.u5.d61     loop@L11                420   0.2%           40          338          240          0          0
  L8             -                       402   0.2%          402         4096            0          0          0
  L12.u5.d19     loop@L11                399   0.2%           38          378          228          0          0
  L13.u5.d2      loop@L11                395   0.2%           24          156          321          0          6
  L12.u5.d8      loop@L11                385   0.2%           30          314          180          0          0
  L12.u5.d11     loop@L11                378   0.2%           36          312          216          0          0
  L12.u5.d36     loop@L11                378   0.2%           36          312          216          0          0
  L12.u5.d54     loop@L11                374   0.2%           28          312          168          0          0
  L11.u3.d18     loop@L11                364   0.2%           74         1034          163          0          0
  L12.u4         loop@L11                357   0.2%           34          430          204          0          0
  L12.u4.d3      loop@L11                357   0.2%           34          426          204          0          0
  L12.u4.d4      loop@L11                357   0.2%           34          470          204          0          0
  L12.u5.d34     loop@L11                357   0.2%           34          314          204          0          0
  L13.u5.d42     loop@L11                357   0.2%           24          160          333          0          6
  L12.u5.d4      loop@L11                353   0.2%           26          312          156          0          0
  L12.u5.d49     loop@L11                353   0.2%           26          314          156          0          0
  L9             -                       352   0.2%          256         4096           96          0          0
  L11.u3.d1      loop@L11                330   0.1%           80         1122          100          0          0
  L12.u5.d26     loop@L11                311   0.1%           22          298          132          0          0
  L12.u5.d43     loop@L11                311   0.1%           22          308          132          0          0
  L12.u5.d46     loop@L11                311   0.1%           22          276          132          0          0
  L12.u5.d51     loop@L11                311   0.1%           22          244          132          0          0
  L11.u3         loop@L11                284   0.1%           74         1042           93          0          0
  L12.u5.d1      loop@L11                283   0.1%           26          332          156          0          0
  L11.u3.d49     loop@L11                281   0.1%           70          978          175          0          0
  L12.u5.d5      loop@L11                280   0.1%           20          158          120          0          0
  L12.u4.d42     loop@L11                273   0.1%           26          388          156          0          0
  L12.u5.d12     loop@L11                273   0.1%           26          304          156          0          0
  L12.u5.d39     loop@L11                273   0.1%           26          258          156          0          0
  L12.u5.d3      loop@L11                269   0.1%           18          112          108          0          0
  L11.u3.d2      loop@L11                267   0.1%           68          974           85          0          0
  L11.u3.d33     loop@L11                264   0.1%           74         1040           93          0          0
  L12.u5         loop@L11                259   0.1%           18          232          108          0          0
  L12.u5.d50     loop@L11                259   0.1%           18          108          108          0          0
  L11            -                       256   0.1%          128         2048            0          0          0
  L12.u5.d58     loop@L11                252   0.1%           24          226          144          0          0
  L12.u5.d30     loop@L11                249   0.1%           18          198          108          0          0
  L11.u4.d26     loop@L11                236   0.1%           44          612           90          0          0
  L11.u4.d1      loop@L11                233   0.1%           52          684           65          0          0
  L12.u5.d15     loop@L11                231   0.1%           22          280          132          0          0
  L12.u5.d20     loop@L11                231   0.1%           22          306          132          0          0
  L12.u5.d23     loop@L11                231   0.1%           22          198          132          0          0
  L12.u5.d35     loop@L11                231   0.1%           22          222          132          0          0
  L11.u3.d3      loop@L11                224   0.1%           56          896          140          0          0
  L11.u4.d33     loop@L11                222   0.1%           48          652           60          0          0
  L11.u4.d50     loop@L11                220   0.1%           40          352           80          0          0
  L11.u5.d61     loop@L11                220   0.1%           40          338           80          0          0
  L11.u4.d49     loop@L11                211   0.1%           44          626           55          0          0
  L12.u5.d57     loop@L11                210   0.1%           20          212          120          0          0
  L11.u4.d4      loop@L11                204   0.1%           34          470           63          0          0
  L11.u5.d36     loop@L11                204   0.1%           36          312           70          0          0
  L11.u4.d11     loop@L11                192   0.1%           48          616          120          0          0
  L11.u4.d19     loop@L11                192   0.1%           48          684          120          0          0
  L12.u5.d18     loop@L11                189   0.1%           18          152          108          0          0
  L11.u5.d19     loop@L11                185   0.1%           38          378           48          0          0
  L11.u4         loop@L11                184   0.1%           34          430           43          0          0
  L11.u5.d33     loop@L11                180   0.1%           40          376           50          0          0
  L11.u4.d35     loop@L11                176   0.1%           44          534          110          0          0
  L11.u4.d57     loop@L11                176   0.1%           44          438          110          0          0
  L12.u5.d42     loop@L11                176   0.1%           12           80           72          0          0
  L11.u4.d3      loop@L11                174   0.1%           34          426           43          0          0
  L11.u5.d39     loop@L11                172   0.1%           26          258           43          0          0
  L11.u4.d18     loop@L11                170   0.1%           40          350           50          0          0
  L11.u4.d42     loop@L11                165   0.1%           26          388           45          0          0
  L11.u5.d12     loop@L11                165   0.1%           26          304           45          0          0
  L11.u4.d2      loop@L11                164   0.1%           34          358           43          0          0
  L11.u5.d34     loop@L11                164   0.1%           34          314           43          0          0
  L11.u5.d11     loop@L11                159   0.1%           36          312           45          0          0
  L11.u4.d34     loop@L11                157   0.1%           46          572           58          0          0
  L11.u5.d4      loop@L11                152   0.1%           26          312           33          0          0
  L11.u5.d15     loop@L11                149   0.1%           22          280           35          0          0
  L11.u5.d20     loop@L11                149   0.1%           22          306           35          0          0
  L11.u5.d23     loop@L11                149   0.1%           22          198           35          0          0
  L11.u5.d58     loop@L11                149   0.1%           24          226           43          0          0
  L11.u5.d27     loop@L11                144   0.1%           36          314           90          0          0
  L11.u5.d49     loop@L11                142   0.1%           26          314           33          0          0
  L11.u5.d35     loop@L11                141   0.1%           22          222           28          0          0
  L11.u5.d26     loop@L11                131   0.1%           22          298           28          0          0
  L12.u5.d2      loop@L11                126   0.1%           12           78           72          0          0
  L18            loop@L11                125   0.1%          125         1973            0          0          0
  L11.u5.d8      loop@L11                121   0.1%           30          314           75          0          0
  L11.u5.d3      loop@L11                120   0.1%           18          112           23          0          0
  L11.u5.d54     loop@L11                112   0.0%           28          312           70          0          0
  L11.u5         loop@L11                100   0.0%           18          232           23          0          0
  L18.u5.d48     loop@L11                100   0.0%           20          188            0          0          0
  L18.u5.d7      loop@L11                 93   0.0%           13          156            0          0          0
  L18.u5.d56     loop@L11                 93   0.0%           13          157            0          0          0
  L18.u5.d29     loop@L11                 91   0.0%           11          149            0          0          0
  L11.u5.d43     loop@L11                 89   0.0%           22          308           55          0          0
  L11.u5.d46     loop@L11                 89   0.0%           22          276           55          0          0
  L11.u5.d51     loop@L11                 89   0.0%           22          244           55          0          0
  L18.u5.d10     loop@L11                 89   0.0%            9           56            0          0          0
  L11.u5.d1      loop@L11                 87   0.0%           28          346           35          0          0
  L11.u5.d5      loop@L11                 80   0.0%           20          158           50          0          0
  L18.u5.d32     loop@L11                 79   0.0%            9          116            0          0          0
  L18.u5.d53     loop@L11                 79   0.0%            9           54            0          0          0
  L18.u1.d33     loop@L11                 76   0.0%           76         1073            0          0          0
  L11.u5.d57     loop@L11                 75   0.0%           20          212           25          0          0
  L11.u5.d30     loop@L11                 73   0.0%           18          198           45          0          0
  L11.u5.d42     loop@L11                 63   0.0%           12           80           15          0          0
  L18.u1.d2      loop@L11                 62   0.0%           62          935            0          0          0
  L11.u5.d18     loop@L11                 60   0.0%           18          152           23          0          0
  L18.u5.d45     loop@L11                 56   0.0%            6           40            0          0          0
  L11.u5.d50     loop@L11                 50   0.0%           18          108           23          0          0
  L18.u2.d34     loop@L11                 45   0.0%           45          553            0          0          0
  L11.u5.d2      loop@L11                 43   0.0%           12           78           15          0          0
  L18.u2.d18     loop@L11                 37   0.0%           37          517            0          0          0
  L18.u2.d49     loop@L11                 35   0.0%           35          489            0          0          0
  L18.u2.d3      loop@L11                 28   0.0%           28          448            0          0          0
  L18.u3.d11     loop@L11                 24   0.0%           24          308            0          0          0
  L18.u3.d19     loop@L11                 24   0.0%           24          342            0          0          0
  L18.u3.d26     loop@L11                 22   0.0%           22          306            0          0          0
  L18.u3.d35     loop@L11                 22   0.0%           22          267            0          0          0
  L18.u3.d57     loop@L11                 22   0.0%           22          219            0          0          0
  L18.u3.d50     loop@L11                 20   0.0%           20          176            0          0          0
  L18.u4.d61     loop@L11                 20   0.0%           20          169            0          0          0
  L18.u5.d62     loop@L11                 20   0.0%           20          169            0          0          0
  L18.u5.d22     loop@L11                 19   0.0%           19          189            0          0          0
  L18.u4.d27     loop@L11                 18   0.0%           18          157            0          0          0
  L18.u4.d36     loop@L11                 18   0.0%           18          156            0          0          0
  L18.u5.d14     loop@L11                 18   0.0%           18          156            0          0          0
  L18.u5.d28     loop@L11                 18   0.0%           18          157            0          0          0
  L18.u5.d37     loop@L11                 18   0.0%           18          156            0          0          0
  L18.u3.d4      loop@L11                 17   0.0%           17          235            0          0          0
  L18.u5.d41     loop@L11                 17   0.0%           17          157            0          0          0
  L18.u4.d8      loop@L11                 15   0.0%           15          157            0          0          0
  L18.u5.d9      loop@L11                 15   0.0%           15          157            0          0          0
  L18.u4.d54     loop@L11                 14   0.0%           14          156            0          0          0
  L18.u5.d55     loop@L11                 14   0.0%           14          156            0          0          0
  L18.u3.d42     loop@L11                 13   0.0%           13          194            0          0          0
  L18.u4.d12     loop@L11                 13   0.0%           13          152            0          0          0
  L18.u4.d39     loop@L11                 13   0.0%           13          129            0          0          0
  L18.u5.d13     loop@L11                 13   0.0%           13          152            0          0          0
  L18.u5.d40     loop@L11                 13   0.0%           13          129            0          0          0
  L18.u5.d63     loop@L11                 13   0.0%           13          166            0          0          0
  L18.u4.d58     loop@L11                 12   0.0%           12          113            0          0          0
  L18.u5.d59     loop@L11                 12   0.0%           12          113            0          0          0
  L18.u4.d15     loop@L11                 11   0.0%           11          140            0          0          0
  L18.u4.d20     loop@L11                 11   0.0%           11          153            0          0          0
  L18.u4.d23     loop@L11                 11   0.0%           11           99            0          0          0
  L18.u4.d43     loop@L11                 11   0.0%           11          154            0          0          0
  L18.u4.d46     loop@L11                 11   0.0%           11          138            0          0          0
  L18.u4.d51     loop@L11                 11   0.0%           11          122            0          0          0
  L18.u5.d16     loop@L11                 11   0.0%           11          140            0          0          0
  L18.u5.d21     loop@L11                 11   0.0%           11          153            0          0          0
  L18.u5.d24     loop@L11                 11   0.0%           11           99            0          0          0
  L18.u5.d38     loop@L11                 11   0.0%           11          111            0          0          0
  L18.u5.d44     loop@L11                 11   0.0%           11          154            0          0          0
  L18.u5.d47     loop@L11                 11   0.0%           11          138            0          0          0
  L18.u5.d52     loop@L11                 11   0.0%           11          122            0          0          0
  L18.u4.d5      loop@L11                 10   0.0%           10           79            0          0          0
  L18.u5.d6      loop@L11                 10   0.0%           10           79            0          0          0
  L18.u5.d60     loop@L11                 10   0.0%           10          106            0          0          0
  L18.u4.d30     loop@L11                  9   0.0%            9           99            0          0          0
  L18.u5.d25     loop@L11                  9   0.0%            9           76            0          0          0
  L18.u5.d31     loop@L11                  9   0.0%            9           99            0          0          0
  L18.u5.d17     loop@L11                  6   0.0%            6           39            0          0          0

xsbench;? 804
xsbench;L10 448
xsbench;L11 256
xsbench;L20 1224
xsbench;L21 1472
xsbench;L22 9706
xsbench;L23 16012
xsbench;L3 1738
xsbench;L4 1024
xsbench;L5 6282
xsbench;L6 672
xsbench;L7 4104
xsbench;L8 402
xsbench;L9 352
xsbench;loop@L11;? 802
xsbench;loop@L11;L10 2540
xsbench;loop@L11;L11 2947
xsbench;loop@L11;L11.u1 1001
xsbench;loop@L11;L11.u1.d1 779
xsbench;loop@L11;L11.u2 429
xsbench;loop@L11;L11.u2.d1 450
xsbench;loop@L11;L11.u2.d2 541
xsbench;loop@L11;L11.u2.d33 608
xsbench;loop@L11;L11.u3 284
xsbench;loop@L11;L11.u3.d1 330
xsbench;loop@L11;L11.u3.d18 364
xsbench;loop@L11;L11.u3.d2 267
xsbench;loop@L11;L11.u3.d3 224
xsbench;loop@L11;L11.u3.d33 264
xsbench;loop@L11;L11.u3.d34 428
xsbench;loop@L11;L11.u3.d49 281
xsbench;loop@L11;L11.u4 184
xsbench;loop@L11;L11.u4.d1 233
xsbench;loop@L11;L11.u4.d11 192
xsbench;loop@L11;L11.u4.d18 170
xsbench;loop@L11;L11.u4.d19 192
xsbench;loop@L11;L11.u4.d2 164
xsbench;loop@L11;L11.u4.d26 236
xsbench;loop@L11;L11.u4.d3 174
xsbench;loop@L11;L11.u4.d33 222
xsbench;loop@L11;L11.u4.d34 157
xsbench;loop@L11;L11.u4.d35 176
xsbench;loop@L11;L11.u4.d4 204
xsbench;loop@L11;L11.u4.d42 165
xsbench;loop@L11;L11.u4.d49 211
xsbench;loop@L11;L11.u4.d50 220
xsbench;loop@L11;L11.u4.d57 176
xsbench;loop@L11;L11.u5 100
xsbench;loop@L11;L11.u5.d1 87
xsbench;loop@L11;L11.u5.d11 159
xsbench;loop@L11;L11.u5.d12 165
xsbench;loop@L11;L11.u5.d15 149
xsbench;loop@L11;L11.u5.d18 60
xsbench;loop@L11;L11.u5.d19 185
xsbench;loop@L11;L11.u5.d2 43
xsbench;loop@L11;L11.u5.d20 149
xsbench;loop@L11;L11.u5.d23 149
xsbench;loop@L11;L11.u5.d26 131
xsbench;loop@L11;L11.u5.d27 144
xsbench;loop@L11;L11.u5.d3 120
xsbench;loop@L11;L11.u5.d30 73
xsbench;loop@L11;L11.u5.d33 180
xsbench;loop@L11;L11.u5.d34 164
xsbench;loop@L11;L11.u5.d35 141
xsbench;loop@L11;L11.u5.d36 204
xsbench;loop@L11;L11.u5.d39 172
xsbench;loop@L11;L11.u5.d4 152
xsbench;loop@L11;L11.u5.d42 63
xsbench;loop@L11;L11.u5.d43 89
xsbench;loop@L11;L11.u5.d46 89
xsbench;loop@L11;L11.u5.d49 142
xsbench;loop@L11;L11.u5.d5 80
xsbench;loop@L11;L11.u5.d50 50
xsbench;loop@L11;L11.u5.d51 89
xsbench;loop@L11;L11.u5.d54 112
xsbench;loop@L11;L11.u5.d57 75
xsbench;loop@L11;L11.u5.d58 149
xsbench;loop@L11;L11.u5.d61 220
xsbench;loop@L11;L11.u5.d8 121
xsbench;loop@L11;L12 5376
xsbench;loop@L11;L12.u1 2635
xsbench;loop@L11;L12.u1.d1 2898
xsbench;loop@L11;L12.u2 1477
xsbench;loop@L11;L12.u2.d1 1449
xsbench;loop@L11;L12.u2.d2 1302
xsbench;loop@L11;L12.u2.d33 1666
xsbench;loop@L11;L12.u3 867
xsbench;loop@L11;L12.u3.d1 840
xsbench;loop@L11;L12.u3.d18 777
xsbench;loop@L11;L12.u3.d2 714
xsbench;loop@L11;L12.u3.d3 688
xsbench;loop@L11;L12.u3.d33 857
xsbench;loop@L11;L12.u3.d34 945
xsbench;loop@L11;L12.u3.d49 825
xsbench;loop@L11;L12.u4 357
xsbench;loop@L11;L12.u4.d1 636
xsbench;loop@L11;L12.u4.d11 594
xsbench;loop@L11;L12.u4.d18 500
xsbench;loop@L11;L12.u4.d19 594
xsbench;loop@L11;L12.u4.d2 437
xsbench;loop@L11;L12.u4.d26 462
xsbench;loop@L11;L12.u4.d3 357
xsbench;loop@L11;L12.u4.d33 504
xsbench;loop@L11;L12.u4.d34 573
xsbench;loop@L11;L12.u4.d35 552
xsbench;loop@L11;L12.u4.d4 357
xsbench;loop@L11;L12.u4.d42 273
xsbench;loop@L11;L12.u4.d49 462
xsbench;loop@L11;L12.u4.d50 420
xsbench;loop@L11;L12.u4.d57 552
xsbench;loop@L11;L12.u5 259
xsbench;loop@L11;L12.u5.d1 283
xsbench;loop@L11;L12.u5.d11 378
xsbench;loop@L11;L12.u5.d12 273
xsbench;loop@L11;L12.u5.d15 231
xsbench;loop@L11;L12.u5.d18 189
xsbench;loop@L11;L12.u5.d19 399
xsbench;loop@L11;L12.u5.d2 126
xsbench;loop@L11;L12.u5.d20 231
xsbench;loop@L11;L12.u5.d23 231
xsbench;loop@L11;L12.u5.d26 311
xsbench;loop@L11;L12.u5.d27 458
xsbench;loop@L11;L12.u5.d3 269
xsbench;loop@L11;L12.u5.d30 249
xsbench;loop@L11;L12.u5.d33 500
xsbench;loop@L11;L12.u5.d34 357
xsbench;loop@L11;L12.u5.d35 231
xsbench;loop@L11;L12.u5.d36 378
xsbench;loop@L11;L12.u5.d39 273
xsbench;loop@L11;L12.u5.d4 353
xsbench;loop@L11;L12.u5.d42 176
xsbench;loop@L11;L12.u5.d43 311
xsbench;loop@L11;L12.u5.d46 311
xsbench;loop@L11;L12.u5.d49 353
xsbench;loop@L11;L12.u5.d5 280
xsbench;loop@L11;L12.u5.d50 259
xsbench;loop@L11;L12.u5.d51 311
xsbench;loop@L11;L12.u5.d54 374
xsbench;loop@L11;L12.u5.d57 210
xsbench;loop@L11;L12.u5.d58 252
xsbench;loop@L11;L12.u5.d61 420
xsbench;loop@L11;L12.u5.d8 385
xsbench;loop@L11;L13 16392
xsbench;loop@L11;L13.u1 8002
xsbench;loop@L11;L13.u1.d1 8847
xsbench;loop@L11;L13.u2 4290
xsbench;loop@L11;L13.u2.d1 4470
xsbench;loop@L11;L13.u2.d2 4013
xsbench;loop@L11;L13.u2.d33 4864
xsbench;loop@L11;L13.u3 2370
xsbench;loop@L11;L13.u3.d1 2635
xsbench;loop@L11;L13.u3.d18 2437
xsbench;loop@L11;L13.u3.d2 2236
xsbench;loop@L11;L13.u3.d3 1792
xsbench;loop@L11;L13.u3.d33 2370
xsbench;loop@L11;L13.u3.d34 2949
xsbench;loop@L11;L13.u3.d49 2242
xsbench;loop@L11;L13.u4 1157
xsbench;loop@L11;L13.u4.d1 1664
xsbench;loop@L11;L13.u4.d11 1536
xsbench;loop@L11;L13.u4.d18 1280
xsbench;loop@L11;L13.u4.d19 1536
xsbench;loop@L11;L13.u4.d2 1090
xsbench;loop@L11;L13.u4.d26 1468
xsbench;loop@L11;L13.u4.d3 1150
xsbench;loop@L11;L13.u4.d33 1604
xsbench;loop@L11;L13.u4.d34 1474
xsbench;loop@L11;L13.u4.d35 1408
xsbench;loop@L11;L13.u4.d4 1157
xsbench;loop@L11;L13.u4.d42 894
xsbench;loop@L11;L13.u4.d49 1476
xsbench;loop@L11;L13.u4.d50 1340
xsbench;loop@L11;L13.u4.d57 1408
xsbench;loop@L11;L13.u5 537
xsbench;loop@L11;L13.u5.d1 842
xsbench;loop@L11;L13.u5.d11 1131
xsbench;loop@L11;L13.u5.d12 835
xsbench;loop@L11;L13.u5.d15 716
xsbench;loop@L11;L13.u5.d18 589
xsbench;loop@L11;L13.u5.d19 1192
xsbench;loop@L11;L13.u5.d2 395
xsbench;loop@L11;L13.u5.d20 716
xsbench;loop@L11;L13.u5.d23 716
xsbench;loop@L11;L13.u5.d26 656
xsbench;loop@L11;L13.u5.d27 1071
xsbench;loop@L11;L13.u5.d3 537
xsbench;loop@L11;L13.u5.d30 537
xsbench;loop@L11;L13.u5.d33 1190
xsbench;loop@L11;L13.u5.d34 1073
xsbench;loop@L11;L13.u5.d35 716
xsbench;loop@L11;L13.u5.d36 1131
xsbench;loop@L11;L13.u5.d39 842
xsbench;loop@L11;L13.u5.d4 775
xsbench;loop@L11;L13.u5.d42 357
xsbench;loop@L11;L13.u5.d43 656
xsbench;loop@L11;L13.u5.d46 656
xsbench;loop@L11;L13.u5.d49 775
xsbench;loop@L11;L13.u5.d5 595
xsbench;loop@L11;L13.u5.d50 537
xsbench;loop@L11;L13.u5.d51 656
xsbench;loop@L11;L13.u5.d54 833
xsbench;loop@L11;L13.u5.d57 655
xsbench;loop@L11;L13.u5.d58 767
xsbench;loop@L11;L13.u5.d61 1250
xsbench;loop@L11;L13.u5.d8 894
xsbench;loop@L11;L18 125
xsbench;loop@L11;L18.u1.d2 62
xsbench;loop@L11;L18.u1.d33 76
xsbench;loop@L11;L18.u2.d18 37
xsbench;loop@L11;L18.u2.d3 28
xsbench;loop@L11;L18.u2.d34 45
xsbench;loop@L11;L18.u2.d49 35
xsbench;loop@L11;L18.u3.d11 24
xsbench;loop@L11;L18.u3.d19 24
xsbench;loop@L11;L18.u3.d26 22
xsbench;loop@L11;L18.u3.d35 22
xsbench;loop@L11;L18.u3.d4 17
xsbench;loop@L11;L18.u3.d42 13
xsbench;loop@L11;L18.u3.d50 20
xsbench;loop@L11;L18.u3.d57 22
xsbench;loop@L11;L18.u4.d12 13
xsbench;loop@L11;L18.u4.d15 11
xsbench;loop@L11;L18.u4.d20 11
xsbench;loop@L11;L18.u4.d23 11
xsbench;loop@L11;L18.u4.d27 18
xsbench;loop@L11;L18.u4.d30 9
xsbench;loop@L11;L18.u4.d36 18
xsbench;loop@L11;L18.u4.d39 13
xsbench;loop@L11;L18.u4.d43 11
xsbench;loop@L11;L18.u4.d46 11
xsbench;loop@L11;L18.u4.d5 10
xsbench;loop@L11;L18.u4.d51 11
xsbench;loop@L11;L18.u4.d54 14
xsbench;loop@L11;L18.u4.d58 12
xsbench;loop@L11;L18.u4.d61 20
xsbench;loop@L11;L18.u4.d8 15
xsbench;loop@L11;L18.u5.d10 89
xsbench;loop@L11;L18.u5.d13 13
xsbench;loop@L11;L18.u5.d14 18
xsbench;loop@L11;L18.u5.d16 11
xsbench;loop@L11;L18.u5.d17 6
xsbench;loop@L11;L18.u5.d21 11
xsbench;loop@L11;L18.u5.d22 19
xsbench;loop@L11;L18.u5.d24 11
xsbench;loop@L11;L18.u5.d25 9
xsbench;loop@L11;L18.u5.d28 18
xsbench;loop@L11;L18.u5.d29 91
xsbench;loop@L11;L18.u5.d31 9
xsbench;loop@L11;L18.u5.d32 79
xsbench;loop@L11;L18.u5.d37 18
xsbench;loop@L11;L18.u5.d38 11
xsbench;loop@L11;L18.u5.d40 13
xsbench;loop@L11;L18.u5.d41 17
xsbench;loop@L11;L18.u5.d44 11
xsbench;loop@L11;L18.u5.d45 56
xsbench;loop@L11;L18.u5.d47 11
xsbench;loop@L11;L18.u5.d48 100
xsbench;loop@L11;L18.u5.d52 11
xsbench;loop@L11;L18.u5.d53 79
xsbench;loop@L11;L18.u5.d55 14
xsbench;loop@L11;L18.u5.d56 93
xsbench;loop@L11;L18.u5.d59 12
xsbench;loop@L11;L18.u5.d6 10
xsbench;loop@L11;L18.u5.d60 10
xsbench;loop@L11;L18.u5.d62 20
xsbench;loop@L11;L18.u5.d63 13
xsbench;loop@L11;L18.u5.d7 93
xsbench;loop@L11;L18.u5.d9 15
xsbench;loop@L11;L8 1218
xsbench;loop@L11;L9 1445
