kernel cpx: 711424 cycles (issue 388532, dep_stall 322781, fetch_stall 110)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L10              1       682964   96.0%       682964         1542            0

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L11            loop@L10              93718  13.2%        31236       155649        52060       1536          0
  L10            loop@L10              77672  10.9%        22192       109228        44384          3          0
  L10.u1.d1      loop@L10              53256   7.5%        13312        57344        33278          3          0
  L9             loop@L10              42346   6.0%        21168        92844        21168          0          0
  L10.u1         loop@L10              42336   6.0%        10584        46422        26460          0          0
  L8             loop@L10              31752   4.5%        21168        92844        10584          0          0
  L13            loop@L10              29952   4.2%        13312        57344        16640          0          0
  L15.d1         loop@L10              29952   4.2%        13312        57344        16640          0          0
  L11.u1.d1      loop@L10              23824   3.3%        10584        46422        13230          0          0
  L11.u1         loop@L10              23822   3.3%        10584        46422        13228          0          0
  L13.u1         loop@L10              23814   3.3%        10584        46422        13230          0          0
  L13.u1.d1      loop@L10              23814   3.3%        10584        46422        13230          0          0
  L15            loop@L10              23814   3.3%        10584        46422        13230          0          0
  L15.u1         loop@L10              23814   3.3%        10584        46422        13230          0          0
  L15.u1.d3      loop@L10              23814   3.3%        10584        46422        13230          0          0
  ?              loop@L10              21168   3.0%        10584        46422            0          0          0
  L3             loop@L10              10594   1.5%        10584        46422            0          0          0
  L6             loop@L10              10584   1.5%        10584        46422            0          0          0
  L7             loop@L10              10584   1.5%        10584        46422            0          0          0
  L3             -                      7434   1.0%         3584        57344         3840          0          0
  L12            loop@L10               6666   0.9%         6656        28672            0          0          0
  L16.d1         loop@L10               6656   0.9%         6656        28672            0          0          0
  L17.d1         loop@L10               6656   0.9%         6656        28672            0          0          0
  ?              -                      6156   0.9%         3078        24576            0          0          0
  L16            loop@L10               5302   0.7%         5292        23211            0          0          0
  L16.u1.d3      loop@L10               5302   0.7%         5292        23211            0          0          0
  L12.u1         loop@L10               5292   0.7%         5292        23211            0          0          0
  L12.u1.d1      loop@L10               5292   0.7%         5292        23211            0          0          0
  L16.u1         loop@L10               5292   0.7%         5292        23211            0          0          0
  L17            loop@L10               5292   0.7%         5292        23211            0          0          0
  L17.u1         loop@L10               5292   0.7%         5292        23211            0          0          0
  L17.u1.d3      loop@L10               5292   0.7%         5292        23211            0          0          0
  L19            -                      4608   0.6%         2048        32768         2560          0       2048
  L4             -                      4096   0.6%         1024        16384         2560          0          0
  L9             -                      2576   0.4%         2566        16384            0          0          0
  L8             -                      2566   0.4%         2566        16384            0          0          0
  L6             -                       512   0.1%          512         8192            0          0          0
  L7             -                       512   0.1%          512         8192            0          0          0

cpx;? 6156
cpx;L19 4608
cpx;L3 7434
cpx;L4 4096
cpx;L6 512
cpx;L7 512
cpx;L8 2566
cpx;L9 2576
cpx;loop@L10;? 21168
cpx;loop@L10;L10 77672
cpx;loop@L10;L10.u1 42336
cpx;loop@L10;L10.u1.d1 53256
cpx;loop@L10;L11 93718
cpx;loop@L10;L11.u1 23822
cpx;loop@L10;L11.u1.d1 23824
cpx;loop@L10;L12 6666
cpx;loop@L10;L12.u1 5292
cpx;loop@L10;L12.u1.d1 5292
cpx;loop@L10;L13 29952
cpx;loop@L10;L13.u1 23814
cpx;loop@L10;L13.u1.d1 23814
cpx;loop@L10;L15 23814
cpx;loop@L10;L15.d1 29952
cpx;loop@L10;L15.u1 23814
cpx;loop@L10;L15.u1.d3 23814
cpx;loop@L10;L16 5302
cpx;loop@L10;L16.d1 6656
cpx;loop@L10;L16.u1 5292
cpx;loop@L10;L16.u1.d3 5302
cpx;loop@L10;L17 5292
cpx;loop@L10;L17.d1 6656
cpx;loop@L10;L17.u1 5292
cpx;loop@L10;L17.u1.d3 5292
cpx;loop@L10;L3 10594
cpx;loop@L10;L6 10584
cpx;loop@L10;L7 10584
cpx;loop@L10;L8 31752
cpx;loop@L10;L9 42346
