kernel bezier: 563719 cycles (issue 264256, dep_stall 299322, fetch_stall 140)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L12              2       277271   49.2%       277271            0            0
  loop@L12.u1           2       231070   41.0%       231070            0            0
  loop@L7               1        49630    8.8%       557971            0            0

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L11            loop@L12             107513  19.1%        11520       184320        95993          0          0
  L11.u1         loop@L12.u1           89600  15.9%         9600       153600        80000          0          0
  L16            loop@L12              36480   6.5%         7680       122880         9600          0          0
  L20            loop@L12              36480   6.5%         7680       122880         9600          0          0
  L20.u1         loop@L12.u1           30410   5.4%         6400       102400         8000          0          0
  L16.u1         loop@L12.u1           30400   5.4%         6400       102400         8000          0          0
  L12            loop@L12              29567   5.2%         8448       135168        16895          0          0
  L12.u1         loop@L12.u1           24640   4.4%         7040       112640        14080          0          0
  L13            loop@L12              17290   3.1%         7680       122880         9600          0          0
  L13.u1         loop@L12.u1           14410   2.6%         6400       102400         8000          0          0
  L10            loop@L12              11531   2.0%         7680       122880         3841          0          0
  L10.u1         loop@L12.u1            9600   1.7%         6400       102400         3200          0          0
  ?              loop@L12               7680   1.4%         3840        61440            0          0          0
  L9             loop@L12               7680   1.4%         7680       122880            0          0          0
  L25            loop@L7                7498   1.3%         1536        24576         4800          0          0
  L24            loop@L7                7488   1.3%         1536        24576         4800          0          0
  ?              loop@L12.u1            6400   1.1%         3200        51200            0          0          0
  L9.u1          loop@L12.u1            6400   1.1%         6400       102400            0          0          0
  L24.u1         loop@L7                6250   1.1%         1280        20480         4000          0          0
  L25.u1         loop@L7                6240   1.1%         1280        20480         4000          0          0
  L7.u1          loop@L7                4040   0.7%         1408        22528         1918          0          0
  L7             loop@L7                3968   0.7%         1472        23552         2102          0          0
  L17            loop@L12               3850   0.7%         3840        61440            0          0          0
  L8             loop@L12               3840   0.7%         3840        61440            0          0          0
  L14            loop@L12               3840   0.7%         3840        61440            0          0          0
  L15            loop@L12               3840   0.7%         3840        61440            0          0          0
  L19            loop@L12               3840   0.7%         3840        61440            0          0          0
  L21            loop@L12               3840   0.7%         3840        61440            0          0          0
  L14.u1         loop@L12.u1            3210   0.6%         3200        51200            0          0          0
  L8.u1          loop@L12.u1            3200   0.6%         3200        51200            0          0          0
  L15.u1         loop@L12.u1            3200   0.6%         3200        51200            0          0          0
  L17.u1         loop@L12.u1            3200   0.6%         3200        51200            0          0          0
  L19.u1         loop@L12.u1            3200   0.6%         3200        51200            0          0          0
  L21.u1         loop@L12.u1            3200   0.6%         3200        51200            0          0          0
  L11            loop@L7                3072   0.5%         1152        18432         1920          0          0
  L25            -                      2752   0.5%           64         1024         2688          0          0
  L11.u1         loop@L7                2570   0.5%          960        15360         1600          0          0
  L10            loop@L7                1536   0.3%          768        12288          768          0          0
  L26            loop@L7                1344   0.2%          384         6144          960          0          0
  L10.u1         loop@L7                1278   0.2%          640        10240          638          0          0
  L26.u1         loop@L7                1120   0.2%          320         5120          800          0          0
  L3             -                       874   0.2%          384         6144          480          0          0
  L12            loop@L7                 778   0.1%          384         6144            0          0          0
  L12.u1         loop@L7                 640   0.1%          320         5120            0          0          0
  L5             -                       522   0.1%          192         3072          320          0        256
  L4             -                       512   0.1%          128         2048          320          0          0
  L28            -                       512   0.1%          192         3072          320          0        256
  L6             loop@L7                 400   0.1%          320         5120           80          0          0
  L8             loop@L7                 384   0.1%          384         6144            0          0          0
  L9             loop@L7                 384   0.1%          384         6144            0          0          0
  L8.u1          loop@L7                 320   0.1%          320         5120            0          0          0
  L9.u1          loop@L7                 320   0.1%          320         5120            0          0          0
  ?              -                       256   0.0%          128         2048            0          0          0
  L7             -                       192   0.0%          128         2048            0          0          0
  L6             -                       128   0.0%          128         2048            0          0          0

bezier;? 256
bezier;L25 2752
bezier;L28 512
bezier;L3 874
bezier;L4 512
bezier;L5 522
bezier;L6 128
bezier;L7 192
bezier;loop@L7;L10 1536
bezier;loop@L7;L10.u1 1278
bezier;loop@L7;L11 3072
bezier;loop@L7;L11.u1 2570
bezier;loop@L7;L12 778
bezier;loop@L7;L12.u1 640
bezier;loop@L7;L24 7488
bezier;loop@L7;L24.u1 6250
bezier;loop@L7;L25 7498
bezier;loop@L7;L25.u1 6240
bezier;loop@L7;L26 1344
bezier;loop@L7;L26.u1 1120
bezier;loop@L7;L6 400
bezier;loop@L7;L7 3968
bezier;loop@L7;L7.u1 4040
bezier;loop@L7;L8 384
bezier;loop@L7;L8.u1 320
bezier;loop@L7;L9 384
bezier;loop@L7;L9.u1 320
bezier;loop@L7;loop@L12.u1;? 6400
bezier;loop@L7;loop@L12.u1;L10.u1 9600
bezier;loop@L7;loop@L12.u1;L11.u1 89600
bezier;loop@L7;loop@L12.u1;L12.u1 24640
bezier;loop@L7;loop@L12.u1;L13.u1 14410
bezier;loop@L7;loop@L12.u1;L14.u1 3210
bezier;loop@L7;loop@L12.u1;L15.u1 3200
bezier;loop@L7;loop@L12.u1;L16.u1 30400
bezier;loop@L7;loop@L12.u1;L17.u1 3200
bezier;loop@L7;loop@L12.u1;L19.u1 3200
bezier;loop@L7;loop@L12.u1;L20.u1 30410
bezier;loop@L7;loop@L12.u1;L21.u1 3200
bezier;loop@L7;loop@L12.u1;L8.u1 3200
bezier;loop@L7;loop@L12.u1;L9.u1 6400
bezier;loop@L7;loop@L12;? 7680
bezier;loop@L7;loop@L12;L10 11531
bezier;loop@L7;loop@L12;L11 107513
bezier;loop@L7;loop@L12;L12 29567
bezier;loop@L7;loop@L12;L13 17290
bezier;loop@L7;loop@L12;L14 3840
bezier;loop@L7;loop@L12;L15 3840
bezier;loop@L7;loop@L12;L16 36480
bezier;loop@L7;loop@L12;L17 3850
bezier;loop@L7;loop@L12;L19 3840
bezier;loop@L7;loop@L12;L20 36480
bezier;loop@L7;loop@L12;L21 3840
bezier;loop@L7;loop@L12;L8 3840
bezier;loop@L7;loop@L12;L9 7680
