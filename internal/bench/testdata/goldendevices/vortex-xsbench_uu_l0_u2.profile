kernel xsbench: 216164 cycles (issue 50875, dep_stall 165163, fetch_stall 120)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L11              1       171689   79.4%       171689          137            0

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L13            loop@L11              51880  24.0%         4060        61440        46998        137        860
  L13.u1.d1      loop@L11              28256  13.1%         1900        24512        26355          0        479
  L13.u1         loop@L11              28135  13.0%         1892        24612        26242          0        478
  L12            loop@L11              17052   7.9%         1624        24576         9744          0          0
  L23            -                     16010   7.4%         1664        26624        14336          0        914
  L12.u1.d1      loop@L11               9985   4.6%          950        12256         5700          0          0
  L12.u1         loop@L11               9943   4.6%          946        12306         5676          0          0
  L22            -                      9704   4.5%          384         6144         8680          0          0
  L5             -                      6282   2.9%          768        12288         3712          0          0
  L11            loop@L11               5944   2.7%         2152        28658         2706          0          0
  L10            loop@L11               5570   2.6%         1896        24562         3674          0          0
  L7             -                      4104   1.9%          384         6144         2174          0          0
  L11.u1         loop@L11               3785   1.8%          946        12306         2365          0          0
  L9             loop@L11               2903   1.3%         1896        24562         1007          0          0
  L11.u1.d1      loop@L11               2628   1.2%          952        12270         1190          0          0
  L8             loop@L11               2281   1.1%         1896        24562          385          0          0
  ?              loop@L11               1896   0.9%          948        12281            0          0          0
  L3             -                      1738   0.8%          768        12288          960          0          0
  L21            -                      1480   0.7%          512         8192          958          0        202
  L20            -                      1216   0.6%          384         6144          832          0        200
  L4             -                      1024   0.5%          256         4096          640          0          0
  ?              -                       786   0.4%          393         4096            0          0          0
  L6             -                       672   0.3%          256         4096          416          0          0
  L18.u1.d3      loop@L11                485   0.2%          475         6128            0          0          0
  L18            loop@L11                473   0.2%          473         6153            0          0          0
  L18.u1.d2      loop@L11                473   0.2%          473         6153            0          0          0
  L10            -                       448   0.2%          128         2048          320          0          0
  L8             -                       403   0.2%          393         4096            0          0          0
  L9             -                       352   0.2%          256         4096           96          0          0
  L11            -                       256   0.1%          128         2048            0          0          0

xsbench;? 786
xsbench;L10 448
xsbench;L11 256
xsbench;L20 1216
xsbench;L21 1480
xsbench;L22 9704
xsbench;L23 16010
xsbench;L3 1738
xsbench;L4 1024
xsbench;L5 6282
xsbench;L6 672
xsbench;L7 4104
xsbench;L8 403
xsbench;L9 352
xsbench;loop@L11;? 1896
xsbench;loop@L11;L10 5570
xsbench;loop@L11;L11 5944
xsbench;loop@L11;L11.u1 3785
xsbench;loop@L11;L11.u1.d1 2628
xsbench;loop@L11;L12 17052
xsbench;loop@L11;L12.u1 9943
xsbench;loop@L11;L12.u1.d1 9985
xsbench;loop@L11;L13 51880
xsbench;loop@L11;L13.u1 28135
xsbench;loop@L11;L13.u1.d1 28256
xsbench;loop@L11;L18 473
xsbench;loop@L11;L18.u1.d2 473
xsbench;loop@L11;L18.u1.d3 485
xsbench;loop@L11;L8 2281
xsbench;loop@L11;L9 2903
