kernel cpx: 73698 cycles (issue 60593, dep_stall 12979, fetch_stall 128)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L10              1        65885   89.4%        65885            5            0

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L10.u1         loop@L10               9732  13.2%         4695       150188         1951          2          0
  L10            loop@L10               6760   9.2%         3414       109228         1640          3          0
  L11            loop@L10               4218   5.7%         3244       103766          975          0          0
  L13            loop@L10               4218   5.7%         3244       103766          975          0          0
  L15            loop@L10               4218   5.7%         3244       103766          975          0          0
  L9             loop@L10               4063   5.5%         3073        98305          975          0          0
  L11.u1         loop@L10               3931   5.3%         2902        92844         1014          0          0
  L15.u1         loop@L10               3790   5.1%         2902        92844          872          0          0
  L13.u1         loop@L10               3774   5.1%         2902        92844          873          0          0
  L8             loop@L10               3231   4.4%         3073        98305          158          0          0
  L9.u1          loop@L10               2323   3.2%         1451        46422          873          0          0
  L3             -                      2270   3.1%         1792        57344          462          0          0
  L7             loop@L10               1627   2.2%         1451        46422          176          0          0
  L12            loop@L10               1621   2.2%         1622        51883            0          0          0
  L16            loop@L10               1621   2.2%         1622        51883            0          0          0
  L17            loop@L10               1621   2.2%         1622        51883            0          0          0
  L6             loop@L10               1604   2.2%         1451        46422          153          0          0
  L8.u1          loop@L10               1593   2.2%         1451        46422          142          0          0
  L3             loop@L10               1587   2.2%         1451        46422          136          0          0
  ?              -                      1537   2.1%          773        24576            0          0          0
  L12.u1         loop@L10               1451   2.0%         1451        46422            0          0          0
  L16.u1         loop@L10               1451   2.0%         1451        46422            0          0          0
  L17.u1         loop@L10               1451   2.0%         1451        46422            0          0          0
  L19            -                      1344   1.8%         1024        32768          320          0       2048
  L4             -                      1076   1.5%          512        16384          308          0          0
  L8             -                       545   0.7%          517        16384            0          0          0
  L9             -                       529   0.7%          517        16384            0          0          0
  L6             -                       256   0.3%          256         8192            0          0          0
  L7             -                       256   0.3%          256         8192            0          0          0

cpx;? 1537
cpx;L19 1344
cpx;L3 2270
cpx;L4 1076
cpx;L6 256
cpx;L7 256
cpx;L8 545
cpx;L9 529
cpx;loop@L10;L10 6760
cpx;loop@L10;L10.u1 9732
cpx;loop@L10;L11 4218
cpx;loop@L10;L11.u1 3931
cpx;loop@L10;L12 1621
cpx;loop@L10;L12.u1 1451
cpx;loop@L10;L13 4218
cpx;loop@L10;L13.u1 3774
cpx;loop@L10;L15 4218
cpx;loop@L10;L15.u1 3790
cpx;loop@L10;L16 1621
cpx;loop@L10;L16.u1 1451
cpx;loop@L10;L17 1621
cpx;loop@L10;L17.u1 1451
cpx;loop@L10;L3 1587
cpx;loop@L10;L6 1604
cpx;loop@L10;L7 1627
cpx;loop@L10;L8 3231
cpx;loop@L10;L8.u1 1593
cpx;loop@L10;L9 4063
cpx;loop@L10;L9.u1 2323
