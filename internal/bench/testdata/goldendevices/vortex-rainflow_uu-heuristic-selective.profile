kernel rainflow: 4551875 cycles (issue 681471, dep_stall 3870169, fetch_stall 220)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L7               1      4545416   99.9%      4545416          827       133950

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L8             loop@L7             1084074  23.8%       132064       385024       935492        278      96256
  L9             loop@L7              556424  12.2%        54300       149832       493054         18      24972
  L15            loop@L7              472018  10.4%        46416       138936       417846        253      23156
  L9.u1          loop@L7              446702   9.8%        43554       119010       395868          7      19835
  L8.u1          loop@L7              370474   8.1%        21777        59505       341428          0      19835
  L15.u1.d2      loop@L7              361090   7.9%        35520       106680       319640        271      17780
  L8.u1.d2       loop@L7              298930   6.6%        17760        53340       275240          0      17780
  L14            loop@L7              186559   4.1%        15472        46312       163340          0          0
  L14.u1.d2      loop@L7              146500   3.2%        11840        35560       128740          0          0
  L7             loop@L7              133405   2.9%        51577       146432        64707          0          0
  L9.u1.d1       loop@L7              127880   2.8%        12414        32256       113386          0       5376
  L15.u1.d11     loop@L7              110938   2.4%        10854        30822        98264          0       5137
  L7.u1          loop@L7               39925   0.9%        14518        39670        18148          0          0
  L7.u1.d2       loop@L7               32560   0.7%        11840        35560        14800          0          0
  ?              loop@L7               26888   0.6%        13444        37137            0          0          0
  L8.u1.d11      loop@L7               24778   0.5%         3618        10274        19340          0          0
  L11.u1         loop@L7               22268   0.5%         6360        18381        15898          0       6127
  L17            loop@L7               21733   0.5%         6207        16128        15515          0       5376
  L11            loop@L7               19003   0.4%         5427        15411        13565          0       5137
  L17.u1.d2      loop@L7               18597   0.4%         5313        14592        13283          0       4864
  L7.u1.d1       loop@L7               11380   0.3%         4138        10752         5173          0          0
  L7.u1.d11      loop@L7                9950   0.2%         3618        10274         4523          0          0
  L5             loop@L7                7769   0.2%         7769        21504            0          0          0
  L7.u1.d20      loop@L7                4240   0.1%         2120         6127            0          0          0
  L7.u1.d3       loop@L7                3542   0.1%         1771         4864            0          0          0
  L6             -                      2184   0.0%          384         6144         1790          0       2048
  L10.u1         loop@L7                2120   0.0%         2120         6127            0          0          0
  L16            loop@L7                2079   0.0%         2069         5376            0          0          0
  L10            loop@L7                1809   0.0%         1809         5137            0          0          0
  L16.u1.d2      loop@L7                1781   0.0%         1771         4864            0          0          0
  ?              -                      1354   0.0%          677         2048            0          0          0
  L3             -                       874   0.0%          384         6144          480          0          0
  L5             -                       677   0.0%          677         2048            0          0          0
  L22            -                       576   0.0%          256         4096          320          0        256
  L7             -                       570   0.0%          320         5120          176          0          0
  L4             -                       224   0.0%           64         1024          160          0          0

rainflow;? 1354
rainflow;L22 576
rainflow;L3 874
rainflow;L4 224
rainflow;L5 677
rainflow;L6 2184
rainflow;L7 570
rainflow;loop@L7;? 26888
rainflow;loop@L7;L10 1809
rainflow;loop@L7;L10.u1 2120
rainflow;loop@L7;L11 19003
rainflow;loop@L7;L11.u1 22268
rainflow;loop@L7;L14 186559
rainflow;loop@L7;L14.u1.d2 146500
rainflow;loop@L7;L15 472018
rainflow;loop@L7;L15.u1.d11 110938
rainflow;loop@L7;L15.u1.d2 361090
rainflow;loop@L7;L16 2079
rainflow;loop@L7;L16.u1.d2 1781
rainflow;loop@L7;L17 21733
rainflow;loop@L7;L17.u1.d2 18597
rainflow;loop@L7;L5 7769
rainflow;loop@L7;L7 133405
rainflow;loop@L7;L7.u1 39925
rainflow;loop@L7;L7.u1.d1 11380
rainflow;loop@L7;L7.u1.d11 9950
rainflow;loop@L7;L7.u1.d2 32560
rainflow;loop@L7;L7.u1.d20 4240
rainflow;loop@L7;L7.u1.d3 3542
rainflow;loop@L7;L8 1084074
rainflow;loop@L7;L8.u1 370474
rainflow;loop@L7;L8.u1.d11 24778
rainflow;loop@L7;L8.u1.d2 298930
rainflow;loop@L7;L9 556424
rainflow;loop@L7;L9.u1 446702
rainflow;loop@L7;L9.u1.d1 127880
