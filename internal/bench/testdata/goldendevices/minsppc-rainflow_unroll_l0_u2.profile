kernel rainflow: 208676 cycles (issue 97845, dep_stall 110561, fetch_stall 272)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L7               1       207104   99.2%       207104          696       232148

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L8.u1          loop@L7               35564  17.0%        12032       385024        21995        180      96256
  L8             loop@L7               35401  17.0%        12032       385024        21849        168      96256
  L9.u1          loop@L7               16896   8.1%         4992       151266        11302          8      25211
  L9             loop@L7               16787   8.0%         4992       149832        11239         20      24972
  L15            loop@L7               15863   7.6%         5040       138936        10659        160      23156
  L15.u1         loop@L7               15772   7.6%         5112       137502        10601        160      22917
  L7.u1          loop@L7               10850   5.2%         6016       192512         1810          0          0
  L14            loop@L7                9878   4.7%         1680        46312         7639          0          0
  L14.u1         loop@L7                9817   4.7%         1704        45834         7592          0          0
  L7             loop@L7                9804   4.7%         6080       194560         2188          0          0
  L5             loop@L7                6280   3.0%         5868       167540          934          0          0
  ?              loop@L7                4777   2.3%         2684        74752            0          0          0
  L5.u1          loop@L7                4676   2.2%         4388       119173          853          0          0
  L17            loop@L7                4261   2.0%         2960        67816          343          0       5376
  L17.u1         loop@L7                4149   2.0%         2984        65290          319          0       4864
  L11.u1         loop@L7                2916   1.4%         1632        49719          347          0       6127
  L11            loop@L7                2689   1.3%         1552        45520          295          0       5137
  L6             -                       660   0.3%          192         6144          452          0       2048
  L3             -                       265   0.1%          192         6144           58          0          0
  L7             -                       236   0.1%          160         5120           28          0          0
  L10.u1         loop@L7                 193   0.1%          200         6127            0          0          0
  L16            loop@L7                 191   0.1%          320         5376            0          0          0
  L16.u1         loop@L7                 177   0.1%          320         4864            0          0          0
  L22            -                       168   0.1%          128         4096           40          0        256
  L10            loop@L7                 163   0.1%          180         5137            0          0          0
  ?              -                       128   0.1%           64         2048            0          0          0
  L5             -                        64   0.0%           64         2048            0          0          0
  L4             -                        51   0.0%           32         1024           19          0          0

rainflow;? 128
rainflow;L22 168
rainflow;L3 265
rainflow;L4 51
rainflow;L5 64
rainflow;L6 660
rainflow;L7 236
rainflow;loop@L7;? 4777
rainflow;loop@L7;L10 163
rainflow;loop@L7;L10.u1 193
rainflow;loop@L7;L11 2689
rainflow;loop@L7;L11.u1 2916
rainflow;loop@L7;L14 9878
rainflow;loop@L7;L14.u1 9817
rainflow;loop@L7;L15 15863
rainflow;loop@L7;L15.u1 15772
rainflow;loop@L7;L16 191
rainflow;loop@L7;L16.u1 177
rainflow;loop@L7;L17 4261
rainflow;loop@L7;L17.u1 4149
rainflow;loop@L7;L5 6280
rainflow;loop@L7;L5.u1 4676
rainflow;loop@L7;L7 9804
rainflow;loop@L7;L7.u1 10850
rainflow;loop@L7;L8 35401
rainflow;loop@L7;L8.u1 35564
rainflow;loop@L7;L9 16787
rainflow;loop@L7;L9.u1 16896
