kernel xsbench: 50664 cycles (issue 23868, dep_stall 26658, fetch_stall 128)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L11              1        39156   77.3%        39156            1            0

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L13            loop@L11              18964  37.4%         3072        98276        15892          0        983
  L12            loop@L11               9137  18.0%         1536        49138         2210          0          0
  L11            loop@L11               4630   9.1%         2432        77803          583          1          0
  L23            -                      3588   7.1%          832        26624         2737          0        791
  L22            -                      2720   5.4%          192         6144         2208          0          0
  L9             loop@L11               2049   4.0%         1536        49138          497          0          0
  L8             loop@L11               1916   3.8%         1536        49138          381          0          0
  L5             -                      1748   3.5%          384        12288          452          0          0
  L7             -                      1237   2.4%          192         6144          261          0          0
  L10            loop@L11               1230   2.4%          768        24569          462          0          0
  L18            loop@L11               1230   2.4%          768        24569          462          0          0
  L3             -                       517   1.0%          384        12288          116          0          0
  L21            -                       388   0.8%          256         8192          115          0        140
  L4             -                       270   0.5%          128         4096           77          0          0
  L20            -                       270   0.5%          192         6144           77          0        139
  L6             -                       193   0.4%          128         4096           65          0          0
  L9             -                       154   0.3%          128         4096           26          0          0
  ?              -                       128   0.3%           64         2048            0          0          0
  L11            -                       128   0.3%           64         2048            0          0          0
  L10            -                       103   0.2%           64         2048           39          0          0
  L8             -                        64   0.1%           64         2048            0          0          0

xsbench;? 128
xsbench;L10 103
xsbench;L11 128
xsbench;L20 270
xsbench;L21 388
xsbench;L22 2720
xsbench;L23 3588
xsbench;L3 517
xsbench;L4 270
xsbench;L5 1748
xsbench;L6 193
xsbench;L7 1237
xsbench;L8 64
xsbench;L9 154
xsbench;loop@L11;L10 1230
xsbench;loop@L11;L11 4630
xsbench;loop@L11;L12 9137
xsbench;loop@L11;L13 18964
xsbench;loop@L11;L18 1230
xsbench;loop@L11;L8 1916
xsbench;loop@L11;L9 2049
