kernel rainflow: 670939 cycles (issue 203554, dep_stall 467205, fetch_stall 170)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L7               1       666127   99.3%       666127          886       231946

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L8.u1          loop@L7              118834  17.7%        24064       385024        91742        216      96256
  L8             loop@L7              118824  17.7%        24064       385024        91742        227      96256
  L9             loop@L7               61228   9.1%         9954       149832        49594         20      24972
  L9.u1          loop@L7               61018   9.1%         9978       151266        49356          8      25211
  L15            loop@L7               59288   8.8%         9456       138936        48246        196      23156
  L15.u1         loop@L7               58762   8.8%         9366       137502        47824        219      22917
  L7             loop@L7               33503   5.0%        12160       194560        18271          0          0
  L7.u1          loop@L7               33098   4.9%        12032       192512        15040          0          0
  L5             loop@L7               18495   2.8%        11270       167540         7215          0          0
  L14            loop@L7               17107   2.5%         3152        46312        12369          0          0
  L14.u1         loop@L7               16999   2.5%         3122        45834        12306          0          0
  L5.u1          loop@L7               15415   2.3%         8236       119173         7178          0          0
  L17            loop@L7               13093   2.0%         5324        67816         4073          0       5376
  L17.u1         loop@L7               12644   1.9%         5170        65290         3840          0       4864
  ?              loop@L7               10230   1.5%         5115        74752            0          0          0
  L11.u1         loop@L7                8234   1.2%         3231        49719         2938          0       6127
  L11            loop@L7                7568   1.1%         3019        45520         2550          0       5137
  L6             -                      2184   0.3%          384         6144         1790          0       2048
  L3             -                       874   0.1%          384         6144          480          0          0
  L22            -                       576   0.1%          256         4096          320          0        256
  L7             -                       570   0.1%          320         5120          176          0          0
  L16            loop@L7                 543   0.1%          543         5376            0          0          0
  L16.u1         loop@L7                 512   0.1%          512         4864            0          0          0
  L10.u1         loop@L7                 392   0.1%          392         6127            0          0          0
  L10            loop@L7                 340   0.1%          340         5137            0          0          0
  ?              -                       256   0.0%          128         2048            0          0          0
  L4             -                       224   0.0%           64         1024          160          0          0
  L5             -                       128   0.0%          128         2048            0          0          0

rainflow;? 256
rainflow;L22 576
rainflow;L3 874
rainflow;L4 224
rainflow;L5 128
rainflow;L6 2184
rainflow;L7 570
rainflow;loop@L7;? 10230
rainflow;loop@L7;L10 340
rainflow;loop@L7;L10.u1 392
rainflow;loop@L7;L11 7568
rainflow;loop@L7;L11.u1 8234
rainflow;loop@L7;L14 17107
rainflow;loop@L7;L14.u1 16999
rainflow;loop@L7;L15 59288
rainflow;loop@L7;L15.u1 58762
rainflow;loop@L7;L16 543
rainflow;loop@L7;L16.u1 512
rainflow;loop@L7;L17 13093
rainflow;loop@L7;L17.u1 12644
rainflow;loop@L7;L5 18495
rainflow;loop@L7;L5.u1 15415
rainflow;loop@L7;L7 33503
rainflow;loop@L7;L7.u1 33098
rainflow;loop@L7;L8 118824
rainflow;loop@L7;L8.u1 118834
rainflow;loop@L7;L9 61228
rainflow;loop@L7;L9.u1 61018
