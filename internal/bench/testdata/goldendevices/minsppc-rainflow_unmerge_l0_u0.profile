kernel rainflow: 183632 cycles (issue 75836, dep_stall 107649, fetch_stall 144)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L7               1       182158   99.2%       182158          696       232148

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L8             loop@L7               70804  38.6%        24064       770048        43697        348     192512
  L9             loop@L7               33779  18.4%         9984       301098        22668         28      50183
  L15            loop@L7               31621  17.2%        10152       276438        21261        320      46073
  L14            loop@L7               19665  10.7%         3384        92146        15232          0          0
  L7             loop@L7               15123   8.2%         9784       290816         2890          0          0
  ?              loop@L7                4776   2.6%         2684        74752            0          0          0
  L17            loop@L7                1767   1.0%         1920        30720          662          0      10240
  L11            loop@L7                1726   0.9%         1140        33792          642          0      11264
  L7.d1          loop@L7                 736   0.4%          640        10240            0          0          0
  L5             loop@L7                 725   0.4%         1020        21504            1          0          0
  L7.d3          loop@L7                 712   0.4%          380        11264            0          0          0
  L6             -                       660   0.4%          192         6144          452          0       2048
  L16            loop@L7                 368   0.2%          640        10240            0          0          0
  L10            loop@L7                 356   0.2%          380        11264            0          0          0
  L3             -                       265   0.1%          192         6144           58          0          0
  L7             -                       236   0.1%          160         5120           28          0          0
  L22            -                       166   0.1%          128         4096           39          0        256
  ?              -                        64   0.0%           32         1024            0          0          0
  L4             -                        51   0.0%           32         1024           19          0          0
  L5             -                        32   0.0%           32         1024            0          0          0

rainflow;? 64
rainflow;L22 166
rainflow;L3 265
rainflow;L4 51
rainflow;L5 32
rainflow;L6 660
rainflow;L7 236
rainflow;loop@L7;? 4776
rainflow;loop@L7;L10 356
rainflow;loop@L7;L11 1726
rainflow;loop@L7;L14 19665
rainflow;loop@L7;L15 31621
rainflow;loop@L7;L16 368
rainflow;loop@L7;L17 1767
rainflow;loop@L7;L5 725
rainflow;loop@L7;L7 15123
rainflow;loop@L7;L7.d1 736
rainflow;loop@L7;L7.d3 712
rainflow;loop@L7;L8 70804
rainflow;loop@L7;L9 33779
