kernel bezier: 565436 cycles (issue 265600, dep_stall 299756, fetch_stall 80)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L12              2       508313   89.9%       508313            0            0
  loop@L7               1        51567    9.1%       559880            0            0

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L11            loop@L12             197115  34.9%        21120       337920       175995          0          0
  L16            loop@L12              66890  11.8%        14080       225280        17600          0          0
  L20            loop@L12              66880  11.8%        14080       225280        17600          0          0
  L12            loop@L12              54208   9.6%        15488       247808        30976          0          0
  L13            loop@L12              31690   5.6%        14080       225280        17600          0          0
  L10            loop@L12              21120   3.7%        14080       225280         7040          0          0
  ?              loop@L12              14080   2.5%         7040       112640            0          0          0
  L9             loop@L12              14080   2.5%        14080       225280            0          0          0
  L24            loop@L7               13733   2.4%         2816        45056         8795          0          0
  L25            loop@L7               13728   2.4%         2816        45056         8800          0          0
  L7             loop@L7                9488   1.7%         3648        58368         4358          0          0
  L21            loop@L12               7050   1.2%         7040       112640            0          0          0
  L8             loop@L12               7040   1.2%         7040       112640            0          0          0
  L14            loop@L12               7040   1.2%         7040       112640            0          0          0
  L15            loop@L12               7040   1.2%         7040       112640            0          0          0
  L17            loop@L12               7040   1.2%         7040       112640            0          0          0
  L19            loop@L12               7040   1.2%         7040       112640            0          0          0
  L11            loop@L7                5632   1.0%         2112        33792         3520          0          0
  L10            loop@L7                2816   0.5%         1408        22528         1408          0          0
  L25            -                      2752   0.5%           64         1024         2688          0          0
  L26            loop@L7                2464   0.4%          704        11264         1760          0          0
  L12            loop@L7                1408   0.2%          704        11264            0          0          0
  L6             loop@L7                 880   0.2%          704        11264          176          0          0
  L3             -                       874   0.2%          384         6144          480          0          0
  L9             loop@L7                 714   0.1%          704        11264            0          0          0
  L8             loop@L7                 704   0.1%          704        11264            0          0          0
  L5             -                       522   0.1%          192         3072          320          0        256
  L4             -                       512   0.1%          128         2048          320          0          0
  L28            -                       512   0.1%          192         3072          320          0        256
  L7             -                       192   0.0%          128         2048            0          0          0
  ?              -                       128   0.0%           64         1024            0          0          0
  L6             -                        64   0.0%           64         1024            0          0          0

bezier;? 128
bezier;L25 2752
bezier;L28 512
bezier;L3 874
bezier;L4 512
bezier;L5 522
bezier;L6 64
bezier;L7 192
bezier;loop@L7;L10 2816
bezier;loop@L7;L11 5632
bezier;loop@L7;L12 1408
bezier;loop@L7;L24 13733
bezier;loop@L7;L25 13728
bezier;loop@L7;L26 2464
bezier;loop@L7;L6 880
bezier;loop@L7;L7 9488
bezier;loop@L7;L8 704
bezier;loop@L7;L9 714
bezier;loop@L7;loop@L12;? 14080
bezier;loop@L7;loop@L12;L10 21120
bezier;loop@L7;loop@L12;L11 197115
bezier;loop@L7;loop@L12;L12 54208
bezier;loop@L7;loop@L12;L13 31690
bezier;loop@L7;loop@L12;L14 7040
bezier;loop@L7;loop@L12;L15 7040
bezier;loop@L7;loop@L12;L16 66890
bezier;loop@L7;loop@L12;L17 7040
bezier;loop@L7;loop@L12;L19 7040
bezier;loop@L7;loop@L12;L20 66880
bezier;loop@L7;loop@L12;L21 7050
bezier;loop@L7;loop@L12;L8 7040
bezier;loop@L7;loop@L12;L9 14080
