kernel xsbench: 201629 cycles (issue 47744, dep_stall 153803, fetch_stall 80)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L11              1       158151   78.4%       158151            1            0

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L13            loop@L11              90972  45.1%         6144        98276        84828          0       1746
  L12            loop@L11              32266  16.0%         3072        49138        18432          0          0
  L23            -                     16010   7.9%         1664        26624        14336          0        914
  L11            loop@L11              13018   6.5%         4864        77803         4944          1          0
  L22            -                      9704   4.8%          384         6144         8680          0          0
  L9             loop@L11               6920   3.4%         3072        49138         3838          0          0
  L5             -                      6282   3.1%          768        12288         3712          0          0
  L10            loop@L11               5376   2.7%         1536        24569         3840          0          0
  L18            loop@L11               5376   2.7%         1536        24569         3840          0          0
  L8             loop@L11               4223   2.1%         3072        49138         1151          0          0
  L7             -                      4104   2.0%          384         6144         2174          0          0
  L3             -                      1738   0.9%          768        12288          960          0          0
  L21            -                      1480   0.7%          512         8192          958          0        202
  L4             -                      1024   0.5%          256         4096          640          0          0
  L20            -                      1024   0.5%          384         6144          640          0        200
  L6             -                       672   0.3%          256         4096          416          0          0
  L10            -                       448   0.2%          128         2048          320          0          0
  L9             -                       352   0.2%          256         4096           96          0          0
  ?              -                       256   0.1%          128         2048            0          0          0
  L11            -                       256   0.1%          128         2048            0          0          0
  L8             -                       128   0.1%          128         2048            0          0          0

xsbench;? 256
xsbench;L10 448
xsbench;L11 256
xsbench;L20 1024
xsbench;L21 1480
xsbench;L22 9704
xsbench;L23 16010
xsbench;L3 1738
xsbench;L4 1024
xsbench;L5 6282
xsbench;L6 672
xsbench;L7 4104
xsbench;L8 128
xsbench;L9 352
xsbench;loop@L11;L10 5376
xsbench;loop@L11;L11 13018
xsbench;loop@L11;L12 32266
xsbench;loop@L11;L13 90972
xsbench;loop@L11;L18 5376
xsbench;loop@L11;L8 4223
xsbench;loop@L11;L9 6920
