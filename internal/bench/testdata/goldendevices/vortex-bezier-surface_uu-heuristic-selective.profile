kernel bezier: 319588 cycles (issue 159552, dep_stall 159692, fetch_stall 340)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L12              2       260322   81.5%       260322            0            0
  loop@L7               1        53710   16.8%       314032            0            0

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L11            loop@L12              26334   8.2%         3712        59392        22622          0          0
  L12            loop@L12              19711   6.2%         5632        90112        11263          0          0
  L15            loop@L12              15488   4.8%         5632        90112         7040          0          0
  L24            loop@L7               13738   4.3%         2816        45056         8800          0          0
  L25            loop@L7               13728   4.3%         2816        45056         8800          0          0
  L13            loop@L12              12680   4.0%         5632        90112         7038          0          0
  L16            loop@L12              10944   3.4%         2304        36864         2880          0          0
  L7             loop@L7                9496   3.0%         3648        58368         4355          0          0
  L19            loop@L12               9152   2.9%         3328        53248         4160          0          0
  L20.d1         loop@L12               7820   2.4%         1024        16384         4216          0          0
  L13.u1.d2      loop@L12               6560   2.1%         1280        20480         5280          0          0
  L11            loop@L7                6354   2.0%         2816        45056         3518          0          0
  L19.d1         loop@L12               6336   2.0%         2304        36864         2880          0          0
  L20            loop@L12               6098   1.9%         1280        20480         1598          0          0
  L13.u2.d34     loop@L12               5909   1.8%         1152        18432         4747          0          0
  L13.u2.d19     loop@L12               5899   1.8%         1152        18432         4747          0          0
  L12.u1         loop@L12               5632   1.8%         2048        32768         2560          0          0
  L16.u1.d1      loop@L12               5482   1.7%         1152        18432         1440          0          0
  L20.u1.d2      loop@L12               5482   1.7%         1152        18432         1440          0          0
  L16.u2.d34     loop@L12               5472   1.7%         1152        18432         1440          0          0
  L20.u2.d19     loop@L12               5472   1.7%         1152        18432         1440          0          0
  L13.u1.d33     loop@L12               5248   1.6%         1024        16384         4224          0          0
  L20.u1.d49     loop@L12               4884   1.5%          640        10240         2634          0          0
  L13.u1.d1      loop@L12               4797   1.5%         1280        20480         3517          0          0
  L20.u2.d61     loop@L12               4485   1.4%          512         8192         2683          0          0
  ?              loop@L12               4234   1.3%         2112        33792            0          0          0
  L16.u1.d33     loop@L12               3648   1.1%          768        12288          960          0          0
  L12.u1.d1      loop@L12               3528   1.1%         1280        20480         1598          0          0
  L12.u1.d2      loop@L12               3520   1.1%         1280        20480         1600          0          0
  L15.u1.d1      loop@L12               3520   1.1%         1280        20480         1600          0          0
  L19.u1.d2      loop@L12               3520   1.1%         1280        20480         1600          0          0
  L13.u2.d57     loop@L12               3280   1.0%          640        10240         2640          0          0
  L12.u2.d19     loop@L12               3168   1.0%         1152        18432         1440          0          0
  L12.u2.d34     loop@L12               3168   1.0%         1152        18432         1440          0          0
  L10            loop@L12               3083   1.0%         2112        33792          961          0          0
  L10            loop@L7                2816   0.9%         1408        22528         1408          0          0
  L12.u1.d33     loop@L12               2816   0.9%         1024        16384         1280          0          0
  L14            loop@L12               2816   0.9%         2816        45056            0          0          0
  L15.u1.d33     loop@L12               2816   0.9%         1024        16384         1280          0          0
  L25            -                      2752   0.9%           64         1024         2688          0          0
  L12.u2.d3      loop@L12               2560   0.8%          640        10240         1600          0          0
  L8             loop@L12               2506   0.8%         2112        33792          384          0          0
  L26            loop@L7                2464   0.8%          704        11264         1760          0          0
  L16.u2.d57     loop@L12               2432   0.8%          512         8192          640          0          0
  L9             loop@L12               2410   0.8%         1792        28672          608          0          0
  L19.u1.d49     loop@L12               2112   0.7%          768        12288          960          0          0
  L12.u2.d57     loop@L12               1760   0.6%          640        10240          800          0          0
  L15.u2.d57     loop@L12               1760   0.6%          640        10240          800          0          0
  L13.u1         loop@L12               1440   0.5%          640        10240          800          0          0
  L13.u2.d3      loop@L12               1440   0.5%          640        10240          800          0          0
  ?              loop@L7                1408   0.4%          704        11264            0          0          0
  L12            loop@L7                1408   0.4%          704        11264            0          0          0
  L17            loop@L12               1152   0.4%         1152        18432            0          0          0
  L6             loop@L7                 880   0.3%          704        11264          176          0          0
  L3             -                       874   0.3%          384         6144          480          0          0
  L9             loop@L7                 714   0.2%          704        11264            0          0          0
  L8             loop@L7                 704   0.2%          704        11264            0          0          0
  L19.u1.d33     loop@L12                704   0.2%          256         4096          320          0          0
  L13.u2.d50     loop@L12                661   0.2%          128         2048          523          0          0
  L14.u1.d2      loop@L12                650   0.2%          640        10240            0          0          0
  L14.u1.d1      loop@L12                640   0.2%          640        10240            0          0          0
  L21            loop@L12                640   0.2%          640        10240            0          0          0
  L20.u1.d33     loop@L12                618   0.2%          128         2048          160          0          0
  L16.u2.d49     loop@L12                608   0.2%          128         2048          160          0          0
  L20.u2.d50     loop@L12                608   0.2%          128         2048          160          0          0
  L20.u2.d57     loop@L12                608   0.2%          128         2048          160          0          0
  L19.u2.d19     loop@L12                586   0.2%          576         9216            0          0          0
  L21.u1.d2      loop@L12                586   0.2%          576         9216            0          0          0
  L14.u2.d19     loop@L12                576   0.2%          576         9216            0          0          0
  L14.u2.d34     loop@L12                576   0.2%          576         9216            0          0          0
  L15.u2.d34     loop@L12                576   0.2%          576         9216            0          0          0
  L17.u1.d1      loop@L12                576   0.2%          576         9216            0          0          0
  L17.u2.d34     loop@L12                576   0.2%          576         9216            0          0          0
  L21.u2.d19     loop@L12                576   0.2%          576         9216            0          0          0
  L5             -                       522   0.2%          192         3072          320          0        256
  L14.u1.d33     loop@L12                522   0.2%          512         8192            0          0          0
  L4             -                       512   0.2%          128         2048          320          0          0
  L21.d1         loop@L12                512   0.2%          512         8192            0          0          0
  L28            -                       512   0.2%          192         3072          320          0        256
  L13.u2.d49     loop@L12                485   0.2%          128         2048          347          0          0
  L17.u1.d33     loop@L12                394   0.1%          384         6144            0          0          0
  L12.u2.d1      loop@L12                362   0.1%          128         2048          160          0          0
  L12.u2.d2      loop@L12                352   0.1%          128         2048          160          0          0
  L12.u2.d33     loop@L12                352   0.1%          128         2048          160          0          0
  L12.u2.d49     loop@L12                352   0.1%          128         2048          160          0          0
  L12.u2.d50     loop@L12                352   0.1%          128         2048          160          0          0
  L14.u1         loop@L12                320   0.1%          320         5120            0          0          0
  L14.u2.d3      loop@L12                320   0.1%          320         5120            0          0          0
  L14.u2.d57     loop@L12                320   0.1%          320         5120            0          0          0
  L21.u1.d49     loop@L12                320   0.1%          320         5120            0          0          0
  L13.u2.d33     loop@L12                298   0.1%          128         2048          160          0          0
  L13.u2.d1      loop@L12                288   0.1%          128         2048          160          0          0
  L13.u2.d2      loop@L12                288   0.1%          128         2048          160          0          0
  L17.u2.d57     loop@L12                256   0.1%          256         4096            0          0          0
  L19.u2.d61     loop@L12                256   0.1%          256         4096            0          0          0
  L21.u2.d61     loop@L12                256   0.1%          256         4096            0          0          0
  L7             -                       192   0.1%          128         2048            0          0          0
  ?              -                       128   0.0%           64         1024            0          0          0
  L19.u2.d57     loop@L12                 74   0.0%           64         1024            0          0          0
  L6             -                        64   0.0%           64         1024            0          0          0
  L14.u2.d1      loop@L12                 64   0.0%           64         1024            0          0          0
  L14.u2.d2      loop@L12                 64   0.0%           64         1024            0          0          0
  L14.u2.d33     loop@L12                 64   0.0%           64         1024            0          0          0
  L14.u2.d49     loop@L12                 64   0.0%           64         1024            0          0          0
  L14.u2.d50     loop@L12                 64   0.0%           64         1024            0          0          0
  L15.u2.d49     loop@L12                 64   0.0%           64         1024            0          0          0
  L17.u2.d49     loop@L12                 64   0.0%           64         1024            0          0          0
  L19.u2.d50     loop@L12                 64   0.0%           64         1024            0          0          0
  L21.u1.d33     loop@L12                 64   0.0%           64         1024            0          0          0
  L21.u2.d50     loop@L12                 64   0.0%           64         1024            0          0          0
  L21.u2.d57     loop@L12                 64   0.0%           64         1024            0          0          0

bezier;? 128
bezier;L25 2752
bezier;L28 512
bezier;L3 874
bezier;L4 512
bezier;L5 522
bezier;L6 64
bezier;L7 192
bezier;loop@L7;? 1408
bezier;loop@L7;L10 2816
bezier;loop@L7;L11 6354
bezier;loop@L7;L12 1408
bezier;loop@L7;L24 13738
bezier;loop@L7;L25 13728
bezier;loop@L7;L26 2464
bezier;loop@L7;L6 880
bezier;loop@L7;L7 9496
bezier;loop@L7;L8 704
bezier;loop@L7;L9 714
bezier;loop@L7;loop@L12;? 4234
bezier;loop@L7;loop@L12;L10 3083
bezier;loop@L7;loop@L12;L11 26334
bezier;loop@L7;loop@L12;L12 19711
bezier;loop@L7;loop@L12;L12.u1 5632
bezier;loop@L7;loop@L12;L12.u1.d1 3528
bezier;loop@L7;loop@L12;L12.u1.d2 3520
bezier;loop@L7;loop@L12;L12.u1.d33 2816
bezier;loop@L7;loop@L12;L12.u2.d1 362
bezier;loop@L7;loop@L12;L12.u2.d19 3168
bezier;loop@L7;loop@L12;L12.u2.d2 352
bezier;loop@L7;loop@L12;L12.u2.d3 2560
bezier;loop@L7;loop@L12;L12.u2.d33 352
bezier;loop@L7;loop@L12;L12.u2.d34 3168
bezier;loop@L7;loop@L12;L12.u2.d49 352
bezier;loop@L7;loop@L12;L12.u2.d50 352
bezier;loop@L7;loop@L12;L12.u2.d57 1760
bezier;loop@L7;loop@L12;L13 12680
bezier;loop@L7;loop@L12;L13.u1 1440
bezier;loop@L7;loop@L12;L13.u1.d1 4797
bezier;loop@L7;loop@L12;L13.u1.d2 6560
bezier;loop@L7;loop@L12;L13.u1.d33 5248
bezier;loop@L7;loop@L12;L13.u2.d1 288
bezier;loop@L7;loop@L12;L13.u2.d19 5899
bezier;loop@L7;loop@L12;L13.u2.d2 288
bezier;loop@L7;loop@L12;L13.u2.d3 1440
bezier;loop@L7;loop@L12;L13.u2.d33 298
bezier;loop@L7;loop@L12;L13.u2.d34 5909
bezier;loop@L7;loop@L12;L13.u2.d49 485
bezier;loop@L7;loop@L12;L13.u2.d50 661
bezier;loop@L7;loop@L12;L13.u2.d57 3280
bezier;loop@L7;loop@L12;L14 2816
bezier;loop@L7;loop@L12;L14.u1 320
bezier;loop@L7;loop@L12;L14.u1.d1 640
bezier;loop@L7;loop@L12;L14.u1.d2 650
bezier;loop@L7;loop@L12;L14.u1.d33 522
bezier;loop@L7;loop@L12;L14.u2.d1 64
bezier;loop@L7;loop@L12;L14.u2.d19 576
bezier;loop@L7;loop@L12;L14.u2.d2 64
bezier;loop@L7;loop@L12;L14.u2.d3 320
bezier;loop@L7;loop@L12;L14.u2.d33 64
bezier;loop@L7;loop@L12;L14.u2.d34 576
bezier;loop@L7;loop@L12;L14.u2.d49 64
bezier;loop@L7;loop@L12;L14.u2.d50 64
bezier;loop@L7;loop@L12;L14.u2.d57 320
bezier;loop@L7;loop@L12;L15 15488
bezier;loop@L7;loop@L12;L15.u1.d1 3520
bezier;loop@L7;loop@L12;L15.u1.d33 2816
bezier;loop@L7;loop@L12;L15.u2.d34 576
bezier;loop@L7;loop@L12;L15.u2.d49 64
bezier;loop@L7;loop@L12;L15.u2.d57 1760
bezier;loop@L7;loop@L12;L16 10944
bezier;loop@L7;loop@L12;L16.u1.d1 5482
bezier;loop@L7;loop@L12;L16.u1.d33 3648
bezier;loop@L7;loop@L12;L16.u2.d34 5472
bezier;loop@L7;loop@L12;L16.u2.d49 608
bezier;loop@L7;loop@L12;L16.u2.d57 2432
bezier;loop@L7;loop@L12;L17 1152
bezier;loop@L7;loop@L12;L17.u1.d1 576
bezier;loop@L7;loop@L12;L17.u1.d33 394
bezier;loop@L7;loop@L12;L17.u2.d34 576
bezier;loop@L7;loop@L12;L17.u2.d49 64
bezier;loop@L7;loop@L12;L17.u2.d57 256
bezier;loop@L7;loop@L12;L19 9152
bezier;loop@L7;loop@L12;L19.d1 6336
bezier;loop@L7;loop@L12;L19.u1.d2 3520
bezier;loop@L7;loop@L12;L19.u1.d33 704
bezier;loop@L7;loop@L12;L19.u1.d49 2112
bezier;loop@L7;loop@L12;L19.u2.d19 586
bezier;loop@L7;loop@L12;L19.u2.d50 64
bezier;loop@L7;loop@L12;L19.u2.d57 74
bezier;loop@L7;loop@L12;L19.u2.d61 256
bezier;loop@L7;loop@L12;L20 6098
bezier;loop@L7;loop@L12;L20.d1 7820
bezier;loop@L7;loop@L12;L20.u1.d2 5482
bezier;loop@L7;loop@L12;L20.u1.d33 618
bezier;loop@L7;loop@L12;L20.u1.d49 4884
bezier;loop@L7;loop@L12;L20.u2.d19 5472
bezier;loop@L7;loop@L12;L20.u2.d50 608
bezier;loop@L7;loop@L12;L20.u2.d57 608
bezier;loop@L7;loop@L12;L20.u2.d61 4485
bezier;loop@L7;loop@L12;L21 640
bezier;loop@L7;loop@L12;L21.d1 512
bezier;loop@L7;loop@L12;L21.u1.d2 586
bezier;loop@L7;loop@L12;L21.u1.d33 64
bezier;loop@L7;loop@L12;L21.u1.d49 320
bezier;loop@L7;loop@L12;L21.u2.d19 576
bezier;loop@L7;loop@L12;L21.u2.d50 64
bezier;loop@L7;loop@L12;L21.u2.d57 64
bezier;loop@L7;loop@L12;L21.u2.d61 256
bezier;loop@L7;loop@L12;L8 2506
bezier;loop@L7;loop@L12;L9 2410
