kernel bezier: 145943 cycles (issue 114592, dep_stall 31173, fetch_stall 176)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L12              2       129145   88.5%       129145            0            0
  loop@L7               1        15335   10.5%       144480            0            0

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L11            loop@L12              18397  12.6%         7040       225280        11341          0          0
  L20            loop@L12              15811  10.8%         4160       133120         1251          0          0
  L12            loop@L12              15337  10.5%         7744       247808         3721          0          0
  L20.d1         loop@L12              13708   9.4%         2880        92160         3628          0          0
  L15            loop@L12              12678   8.7%         7040       225280         2118          0          0
  L16            loop@L12              10962   7.5%         2880        92160          866          0          0
  L13            loop@L12               9174   6.3%         7040       225280         2118          0          0
  L10            loop@L12               9062   6.2%         7040       225280         2021          0          0
  ?              loop@L12               7040   4.8%         3520       112640            0          0          0
  L24            loop@L7                4149   2.8%         1664        53248         1172          0          0
  L8             loop@L12               3520   2.4%         3520       112640            0          0          0
  L14            loop@L12               3520   2.4%         3520       112640            0          0          0
  L25.d1         loop@L7                3215   2.2%         1280        40960          958          0          0
  L21            loop@L12               2096   1.4%         2080        66560            0          0          0
  L19            loop@L12               2080   1.4%         2080        66560            0          0          0
  L7             loop@L7                1925   1.3%         1120        35840          406          0          0
  L9             loop@L12               1440   1.0%         1440        46080            0          0          0
  L17            loop@L12               1440   1.0%         1440        46080            0          0          0
  L19.d1         loop@L12               1440   1.0%         1440        46080            0          0          0
  L21.d1         loop@L12               1440   1.0%         1440        46080            0          0          0
  L6             loop@L7                1089   0.7%          704        22528          368          0          0
  L10            loop@L7                 873   0.6%          704        22528          169          0          0
  ?              loop@L7                 704   0.5%          352        11264            0          0          0
  L12            loop@L7                 704   0.5%          352        11264            0          0          0
  L25.d1         -                       585   0.4%           32         1024          553          0          0
  L26.d3         loop@L7                 513   0.4%          320        10240          193          0          0
  L9             loop@L7                 368   0.3%          352        11264            0          0          0
  L8             loop@L7                 352   0.2%          352        11264            0          0          0
  L11            loop@L7                 352   0.2%          352        11264            0          0          0
  L25            loop@L7                 336   0.2%          128         4096           96          0          0
  L7.d3          loop@L7                 320   0.2%          320        10240            0          0          0
  L26.d1         loop@L7                 320   0.2%          320        10240            0          0          0
  L3             -                       265   0.2%          192         6144           58          0          0
  L5             -                       153   0.1%           96         3072           42          0        256
  L4             -                       134   0.1%           64         2048           39          0          0
  L28            -                       134   0.1%           96         3072           39          0        256
  L7             -                        96   0.1%           64         2048            0          0          0
  ?              -                        64   0.0%           32         1024            0          0          0
  L26.d2         loop@L7                  51   0.0%           32         1024           19          0          0
  L6             -                        32   0.0%           32         1024            0          0          0
  L7.d2          loop@L7                  32   0.0%           32         1024            0          0          0
  L26            loop@L7                  32   0.0%           32         1024            0          0          0

bezier;? 64
bezier;L25.d1 585
bezier;L28 134
bezier;L3 265
bezier;L4 134
bezier;L5 153
bezier;L6 32
bezier;L7 96
bezier;loop@L7;? 704
bezier;loop@L7;L10 873
bezier;loop@L7;L11 352
bezier;loop@L7;L12 704
bezier;loop@L7;L24 4149
bezier;loop@L7;L25 336
bezier;loop@L7;L25.d1 3215
bezier;loop@L7;L26 32
bezier;loop@L7;L26.d1 320
bezier;loop@L7;L26.d2 51
bezier;loop@L7;L26.d3 513
bezier;loop@L7;L6 1089
bezier;loop@L7;L7 1925
bezier;loop@L7;L7.d2 32
bezier;loop@L7;L7.d3 320
bezier;loop@L7;L8 352
bezier;loop@L7;L9 368
bezier;loop@L7;loop@L12;? 7040
bezier;loop@L7;loop@L12;L10 9062
bezier;loop@L7;loop@L12;L11 18397
bezier;loop@L7;loop@L12;L12 15337
bezier;loop@L7;loop@L12;L13 9174
bezier;loop@L7;loop@L12;L14 3520
bezier;loop@L7;loop@L12;L15 12678
bezier;loop@L7;loop@L12;L16 10962
bezier;loop@L7;loop@L12;L17 1440
bezier;loop@L7;loop@L12;L19 2080
bezier;loop@L7;loop@L12;L19.d1 1440
bezier;loop@L7;loop@L12;L20 15811
bezier;loop@L7;loop@L12;L20.d1 13708
bezier;loop@L7;loop@L12;L21 2096
bezier;loop@L7;loop@L12;L21.d1 1440
bezier;loop@L7;loop@L12;L8 3520
bezier;loop@L7;loop@L12;L9 1440
