kernel bezier: 170228 cycles (issue 132128, dep_stall 37869, fetch_stall 224)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L12              2        84276   49.5%        84276            0            0
  loop@L12.u1           2        70242   41.3%        70242            0            0
  loop@L7               1        14151    8.3%       168669            0            0

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L11            loop@L12              17249  10.1%         5760       184320        11488          0          0
  L16            loop@L12              14595   8.6%         3840       122880         1155          0          0
  L20            loop@L12              14595   8.6%         3840       122880         1155          0          0
  L11.u1         loop@L12.u1           14376   8.4%         4800       153600         9575          0          0
  L20.u1         loop@L12.u1           12179   7.2%         3200       102400          963          0          0
  L16.u1         loop@L12.u1           12163   7.1%         3200       102400          963          0          0
  L12            loop@L12               8366   4.9%         4224       135168         2029          0          0
  L12.u1         loop@L12.u1            6972   4.1%         3520       112640         1691          0          0
  L13            loop@L12               5011   2.9%         3840       122880         1155          0          0
  L10            loop@L12               4959   2.9%         3840       122880         1102          0          0
  L13.u1         loop@L12.u1            4179   2.5%         3200       102400          963          0          0
  L9             loop@L12               4125   2.4%         3840       122880          285          0          0
  L10.u1         loop@L12.u1            4119   2.4%         3200       102400          919          0          0
  ?              loop@L12               3840   2.3%         1920        61440            0          0          0
  L9.u1          loop@L12.u1            3438   2.0%         3200       102400          238          0          0
  ?              loop@L12.u1            3200   1.9%         1600        51200            0          0          0
  L25            loop@L7                1937   1.1%          768        24576          576          0          0
  L17            loop@L12               1936   1.1%         1920        61440            0          0          0
  L24            loop@L7                1921   1.1%          768        24576          576          0          0
  L8             loop@L12               1920   1.1%         1920        61440            0          0          0
  L14            loop@L12               1920   1.1%         1920        61440            0          0          0
  L15            loop@L12               1920   1.1%         1920        61440            0          0          0
  L19            loop@L12               1920   1.1%         1920        61440            0          0          0
  L21            loop@L12               1920   1.1%         1920        61440            0          0          0
  L14.u1         loop@L12.u1            1616   0.9%         1600        51200            0          0          0
  L24.u1         loop@L7                1616   0.9%          640        20480          480          0          0
  L8.u1          loop@L12.u1            1600   0.9%         1600        51200            0          0          0
  L15.u1         loop@L12.u1            1600   0.9%         1600        51200            0          0          0
  L17.u1         loop@L12.u1            1600   0.9%         1600        51200            0          0          0
  L19.u1         loop@L12.u1            1600   0.9%         1600        51200            0          0          0
  L21.u1         loop@L12.u1            1600   0.9%         1600        51200            0          0          0
  L25.u1         loop@L7                1600   0.9%          640        20480          480          0          0
  L7.u1          loop@L7                1303   0.8%          704        22528          230          0          0
  L7             loop@L7                1196   0.7%          736        23552          252          0          0
  L11            loop@L7                 808   0.5%          576        18432          231          0          0
  L11.u1         loop@L7                 688   0.4%          480        15360          193          0          0
  L25            -                       585   0.3%           32         1024          553          0          0
  L10            loop@L7                 476   0.3%          384        12288           92          0          0
  L10.u1         loop@L7                 412   0.2%          320        10240           92          0          0
  L12            loop@L7                 400   0.2%          192         6144            0          0          0
  L12.u1         loop@L7                 320   0.2%          160         5120            0          0          0
  L26            loop@L7                 308   0.2%          192         6144          116          0          0
  L3             -                       265   0.2%          192         6144           58          0          0
  L26.u1         loop@L7                 256   0.2%          160         5120           96          0          0
  L6             loop@L7                 206   0.1%          160         5120           46          0          0
  L8             loop@L7                 192   0.1%          192         6144            0          0          0
  L9             loop@L7                 192   0.1%          192         6144            0          0          0
  L8.u1          loop@L7                 160   0.1%          160         5120            0          0          0
  L9.u1          loop@L7                 160   0.1%          160         5120            0          0          0
  L5             -                       153   0.1%           96         3072           42          0        256
  L4             -                       134   0.1%           64         2048           39          0          0
  L28            -                       134   0.1%           96         3072           39          0        256
  ?              -                       128   0.1%           64         2048            0          0          0
  L7             -                        96   0.1%           64         2048            0          0          0
  L6             -                        64   0.0%           64         2048            0          0          0

bezier;? 128
bezier;L25 585
bezier;L28 134
bezier;L3 265
bezier;L4 134
bezier;L5 153
bezier;L6 64
bezier;L7 96
bezier;loop@L7;L10 476
bezier;loop@L7;L10.u1 412
bezier;loop@L7;L11 808
bezier;loop@L7;L11.u1 688
bezier;loop@L7;L12 400
bezier;loop@L7;L12.u1 320
bezier;loop@L7;L24 1921
bezier;loop@L7;L24.u1 1616
bezier;loop@L7;L25 1937
bezier;loop@L7;L25.u1 1600
bezier;loop@L7;L26 308
bezier;loop@L7;L26.u1 256
bezier;loop@L7;L6 206
bezier;loop@L7;L7 1196
bezier;loop@L7;L7.u1 1303
bezier;loop@L7;L8 192
bezier;loop@L7;L8.u1 160
bezier;loop@L7;L9 192
bezier;loop@L7;L9.u1 160
bezier;loop@L7;loop@L12.u1;? 3200
bezier;loop@L7;loop@L12.u1;L10.u1 4119
bezier;loop@L7;loop@L12.u1;L11.u1 14376
bezier;loop@L7;loop@L12.u1;L12.u1 6972
bezier;loop@L7;loop@L12.u1;L13.u1 4179
bezier;loop@L7;loop@L12.u1;L14.u1 1616
bezier;loop@L7;loop@L12.u1;L15.u1 1600
bezier;loop@L7;loop@L12.u1;L16.u1 12163
bezier;loop@L7;loop@L12.u1;L17.u1 1600
bezier;loop@L7;loop@L12.u1;L19.u1 1600
bezier;loop@L7;loop@L12.u1;L20.u1 12179
bezier;loop@L7;loop@L12.u1;L21.u1 1600
bezier;loop@L7;loop@L12.u1;L8.u1 1600
bezier;loop@L7;loop@L12.u1;L9.u1 3438
bezier;loop@L7;loop@L12;? 3840
bezier;loop@L7;loop@L12;L10 4959
bezier;loop@L7;loop@L12;L11 17249
bezier;loop@L7;loop@L12;L12 8366
bezier;loop@L7;loop@L12;L13 5011
bezier;loop@L7;loop@L12;L14 1920
bezier;loop@L7;loop@L12;L15 1920
bezier;loop@L7;loop@L12;L16 14595
bezier;loop@L7;loop@L12;L17 1936
bezier;loop@L7;loop@L12;L19 1920
bezier;loop@L7;loop@L12;L20 14595
bezier;loop@L7;loop@L12;L21 1920
bezier;loop@L7;loop@L12;L8 1920
bezier;loop@L7;loop@L12;L9 4125
