kernel rainflow: 214775 cycles (issue 103765, dep_stall 110848, fetch_stall 160)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L7               1       213301   99.3%       213301          696       232148

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L8             loop@L7               70803  33.0%        24064       770048        43696        348     192512
  L9             loop@L7               33637  15.7%         9984       301098        22542         28      50183
  L15            loop@L7               31621  14.7%        10152       276438        21261        320      46073
  L7             loop@L7               25517  11.9%        15104       483328         4348          0          0
  L14            loop@L7               19665   9.2%         3384        92146        15232          0          0
  L5             loop@L7               12558   5.8%        11760       334841         1868          0          0
  L17            loop@L7                8413   3.9%         5944       133106          662          0      10240
  L11            loop@L7                5587   2.6%         3184        95239          643          0      11264
  ?              loop@L7                4776   2.2%         2684        74752            0          0          0
  L6             -                       660   0.3%          192         6144          452          0       2048
  L16            loop@L7                 368   0.2%          640        10240            0          0          0
  L10            loop@L7                 356   0.2%          380        11264            0          0          0
  L3             -                       265   0.1%          192         6144           58          0          0
  L7             -                       236   0.1%          160         5120           28          0          0
  L22            -                       166   0.1%          128         4096           39          0        256
  ?              -                        64   0.0%           32         1024            0          0          0
  L4             -                        51   0.0%           32         1024           19          0          0
  L5             -                        32   0.0%           32         1024            0          0          0

rainflow;? 64
rainflow;L22 166
rainflow;L3 265
rainflow;L4 51
rainflow;L5 32
rainflow;L6 660
rainflow;L7 236
rainflow;loop@L7;? 4776
rainflow;loop@L7;L10 356
rainflow;loop@L7;L11 5587
rainflow;loop@L7;L14 19665
rainflow;loop@L7;L15 31621
rainflow;loop@L7;L16 368
rainflow;loop@L7;L17 8413
rainflow;loop@L7;L5 12558
rainflow;loop@L7;L7 25517
rainflow;loop@L7;L8 70803
rainflow;loop@L7;L9 33637
