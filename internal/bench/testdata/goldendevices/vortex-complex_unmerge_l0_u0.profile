kernel cpx: 242005 cycles (issue 141845, dep_stall 100108, fetch_stall 50)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L10              1       221761   91.6%       221761            4            0

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L10            loop@L10              46600  19.3%        13314       212994        26628          4          0
  L11            loop@L10              27663  11.4%        12290       196610        15363          0          0
  L13            loop@L10              27663  11.4%        12290       196610        15363          0          0
  L15.d1         loop@L10              27653  11.4%        12290       196610        15363          0          0
  L9             loop@L10              24588  10.2%        12290       196610        12288          0          0
  L8             loop@L10              18434   7.6%        12290       196610         6144          0          0
  ?              loop@L10              12290   5.1%         6145        98305            0          0          0
  L3             -                      7434   3.1%         3584        57344         3840          0          0
  L3             loop@L10               6145   2.5%         6145        98305            0          0          0
  L6             loop@L10               6145   2.5%         6145        98305            0          0          0
  L7             loop@L10               6145   2.5%         6145        98305            0          0          0
  L12            loop@L10               6145   2.5%         6145        98305            0          0          0
  L16.d1         loop@L10               6145   2.5%         6145        98305            0          0          0
  L17.d1         loop@L10               6145   2.5%         6145        98305            0          0          0
  L19            -                      4608   1.9%         2048        32768         2560          0       2048
  L4             -                      4096   1.7%         1024        16384         2560          0          0
  ?              -                      2048   0.8%         1024        16384            0          0          0
  L9             -                       522   0.2%          512         8192            0          0          0
  L6             -                       512   0.2%          512         8192            0          0          0
  L7             -                       512   0.2%          512         8192            0          0          0
  L8             -                       512   0.2%          512         8192            0          0          0

cpx;? 2048
cpx;L19 4608
cpx;L3 7434
cpx;L4 4096
cpx;L6 512
cpx;L7 512
cpx;L8 512
cpx;L9 522
cpx;loop@L10;? 12290
cpx;loop@L10;L10 46600
cpx;loop@L10;L11 27663
cpx;loop@L10;L12 6145
cpx;loop@L10;L13 27663
cpx;loop@L10;L15.d1 27653
cpx;loop@L10;L16.d1 6145
cpx;loop@L10;L17.d1 6145
cpx;loop@L10;L3 6145
cpx;loop@L10;L6 6145
cpx;loop@L10;L7 6145
cpx;loop@L10;L8 18434
cpx;loop@L10;L9 24588
