kernel cpx: 117878 cycles (issue 90781, dep_stall 26922, fetch_stall 176)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L10              1       108740   92.2%       108740         3270            0

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L11            loop@L10              13690  11.6%        22080       155649         3745       2380          0
  L10            loop@L10              10781   9.1%        15680       109228         2894        207          0
  L9             loop@L10               7055   6.0%        15168        92844         2279          0          0
  L8             loop@L10               6588   5.6%        15168        92844         1829          0          0
  L10.u1.d1      loop@L10               5643   4.8%         7680        57344         1608        683          0
  L10.u1         loop@L10               5373   4.6%         8856        46422         1528          0          0
  ?              loop@L10               4741   4.0%         7584        46422            0          0          0
  L11.u1         loop@L10               3923   3.3%         8856        46422         1334          0          0
  L13.u1         loop@L10               3655   3.1%         8856        46422         1083          0          0
  L13            loop@L10               3610   3.1%         7680        57344          928          0          0
  L15.u1         loop@L10               3546   3.0%         8856        46422          973          0          0
  L15.d1         loop@L10               3514   3.0%         7680        57344          832          0          0
  L15            loop@L10               3452   2.9%         8856        46422          879          0          0
  L11.u1.d1      loop@L10               3240   2.7%         6312        46422         1039          0          0
  L7             loop@L10               3062   2.6%         7584        46422          683          0          0
  L6             loop@L10               3051   2.6%         7584        46422          671          0          0
  L3             loop@L10               3035   2.6%         7584        46422          640          0          0
  L13.u1.d1      loop@L10               2996   2.5%         6312        46422          811          0          0
  L15.u1.d3      loop@L10               2891   2.5%         6312        46422          706          0          0
  L3             -                      2270   1.9%         1792        57344          462          0          0
  ?              -                      2074   1.8%         2566        24576            0          0          0
  L12.u1         loop@L10               1660   1.4%         4428        23211          373          0          0
  L12            loop@L10               1528   1.3%         3840        28672          171          0          0
  L16.u1         loop@L10               1398   1.2%         4428        23211          111          0          0
  L17.u1         loop@L10               1398   1.2%         4428        23211          111          0          0
  L19            -                      1390   1.2%         1024        32768          366          0       2048
  L16            loop@L10               1354   1.1%         4428        23211           51          0          0
  L17            loop@L10               1345   1.1%         4428        23211           59          0          0
  L16.d1         loop@L10               1342   1.1%         3840        28672            1          0          0
  L17.d1         loop@L10               1342   1.1%         3840        28672            1          0          0
  L12.u1.d1      loop@L10               1306   1.1%         3156        23211          213          0          0
  L16.u1.d3      loop@L10               1119   0.9%         3156        23211           10          0          0
  L17.u1.d3      loop@L10               1102   0.9%         3156        23211           10          0          0
  L4             -                      1076   0.9%          512        16384          308          0          0
  L9             -                       911   0.8%         2310        16384          110          0          0
  L8             -                       905   0.8%         2310        16384          104          0          0
  L6             -                       256   0.2%          256         8192            0          0          0
  L7             -                       256   0.2%          256         8192            0          0          0

cpx;? 2074
cpx;L19 1390
cpx;L3 2270
cpx;L4 1076
cpx;L6 256
cpx;L7 256
cpx;L8 905
cpx;L9 911
cpx;loop@L10;? 4741
cpx;loop@L10;L10 10781
cpx;loop@L10;L10.u1 5373
cpx;loop@L10;L10.u1.d1 5643
cpx;loop@L10;L11 13690
cpx;loop@L10;L11.u1 3923
cpx;loop@L10;L11.u1.d1 3240
cpx;loop@L10;L12 1528
cpx;loop@L10;L12.u1 1660
cpx;loop@L10;L12.u1.d1 1306
cpx;loop@L10;L13 3610
cpx;loop@L10;L13.u1 3655
cpx;loop@L10;L13.u1.d1 2996
cpx;loop@L10;L15 3452
cpx;loop@L10;L15.d1 3514
cpx;loop@L10;L15.u1 3546
cpx;loop@L10;L15.u1.d3 2891
cpx;loop@L10;L16 1354
cpx;loop@L10;L16.d1 1342
cpx;loop@L10;L16.u1 1398
cpx;loop@L10;L16.u1.d3 1119
cpx;loop@L10;L17 1345
cpx;loop@L10;L17.d1 1342
cpx;loop@L10;L17.u1 1398
cpx;loop@L10;L17.u1.d3 1102
cpx;loop@L10;L3 3035
cpx;loop@L10;L6 3051
cpx;loop@L10;L7 3062
cpx;loop@L10;L8 6588
cpx;loop@L10;L9 7055
