kernel xsbench: 50105 cycles (issue 23054, dep_stall 26852, fetch_stall 192)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L11              1        38291   76.4%        38291          122            0

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L13            loop@L11              10666  21.3%         2110        61440         8313        113        478
  L13.u1         loop@L11               5033  10.0%         1064        24612         4219          0        289
  L13.u1.d1      loop@L11               4972   9.9%         1020        24512         4168          0        290
  L12            loop@L11               4632   9.2%          844        24576         1124          0          0
  L23            -                      3588   7.2%          832        26624         2737          0        791
  L22            -                      2720   5.4%          192         6144         2208          0          0
  L12.u1         loop@L11               2465   4.9%          532        12306          619          0          0
  L12.u1.d1      loop@L11               2415   4.8%          510        12256          589          0          0
  L11            loop@L11               1754   3.5%         1170        28658          333          8          0
  L5             -                      1748   3.5%          384        12288          452          0          0
  L7             -                      1237   2.5%          192         6144          261          0          0
  L10            loop@L11               1219   2.4%         1042        24562          411          0          0
  L9             loop@L11               1077   2.1%         1042        24562          269          0          0
  L8             loop@L11               1013   2.0%         1042        24562          205          0          0
  L11.u1         loop@L11                855   1.7%          532        12306          244          0          0
  ?              loop@L11                809   1.6%          521        12281            0          0          0
  L11.u1.d1      loop@L11                758   1.5%          510        12270          139          1          0
  L3             -                       517   1.0%          384        12288          116          0          0
  L21            -                       388   0.8%          256         8192          115          0        140
  L20            -                       300   0.6%          192         6144          107          0        139
  ?              -                       289   0.6%          236         4096            0          0          0
  L4             -                       270   0.5%          128         4096           77          0          0
  L18.u1.d3      loop@L11                217   0.4%          255         6128            0          0          0
  L18            loop@L11                203   0.4%          266         6153            0          0          0
  L18.u1.d2      loop@L11                203   0.4%          266         6153            0          0          0
  L6             -                       193   0.4%          128         4096           65          0          0
  L8             -                       179   0.4%          236         4096           19          0          0
  L9             -                       154   0.3%          128         4096           26          0          0
  L11            -                       128   0.3%           64         2048            0          0          0
  L10            -                       103   0.2%           64         2048           39          0          0

xsbench;? 289
xsbench;L10 103
xsbench;L11 128
xsbench;L20 300
xsbench;L21 388
xsbench;L22 2720
xsbench;L23 3588
xsbench;L3 517
xsbench;L4 270
xsbench;L5 1748
xsbench;L6 193
xsbench;L7 1237
xsbench;L8 179
xsbench;L9 154
xsbench;loop@L11;? 809
xsbench;loop@L11;L10 1219
xsbench;loop@L11;L11 1754
xsbench;loop@L11;L11.u1 855
xsbench;loop@L11;L11.u1.d1 758
xsbench;loop@L11;L12 4632
xsbench;loop@L11;L12.u1 2465
xsbench;loop@L11;L12.u1.d1 2415
xsbench;loop@L11;L13 10666
xsbench;loop@L11;L13.u1 5033
xsbench;loop@L11;L13.u1.d1 4972
xsbench;loop@L11;L18 203
xsbench;loop@L11;L18.u1.d2 203
xsbench;loop@L11;L18.u1.d3 217
xsbench;loop@L11;L8 1013
xsbench;loop@L11;L9 1077
