kernel rainflow: 171321 cycles (issue 64203, dep_stall 106768, fetch_stall 352)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L7               1       169731   99.1%       169731          683       186959

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L8             loop@L7               38303  22.4%        15456       385024        24173        167      96256
  L9             loop@L7               16943   9.9%         5172       149832        11362        185      24972
  L15            loop@L7               16215   9.5%         5442       138936        10925        163      23156
  L9.u1          loop@L7               13607   7.9%         4236       119010         9145          7      19835
  L15.u1.d2      loop@L7               12627   7.4%         4404       106680         8537        160      17780
  L8.u1          loop@L7               10552   6.2%         2118        59505         8005          0      19835
  L14            loop@L7               10160   5.9%         1814        46312         7891          0          0
  L8.u1.d2       loop@L7                9831   5.7%         2202        53340         7486          0      17780
  L14.u1.d2      loop@L7                8244   4.8%         1468        35560         6496          0          0
  L7             loop@L7                7923   4.6%         6120       146432         1512          1          0
  L9.u1.d1       loop@L7                4649   2.7%         2016        32256         3281          0       5376
  L15.u1.d11     loop@L7                3503   2.0%         1122        30822         2337          0       5137
  L17            loop@L7                2582   1.5%         1008        16128         1986          0       5376
  ?              loop@L7                2450   1.4%         1591        37137            0          0          0
  L7.u1          loop@L7                2279   1.3%         1412        39670          380          0          0
  L7.u1.d2       loop@L7                2097   1.2%         1468        35560          350          0          0
  L8.u1.d11      loop@L7                1198   0.7%          374        10274          689          0          0
  L11            loop@L7                1080   0.6%          561        15411          570          0       5137
  L11.u1         loop@L7                 997   0.6%          642        18381          397          0       6127
  L17.u1.d2      loop@L7                 966   0.6%          975        14592          432          0       4864
  L5             loop@L7                 730   0.4%         1062        21504            0          0          0
  L7.u1.d1       loop@L7                 695   0.4%          672        10752          116          0          0
  L6             -                       660   0.4%          192         6144          452          0       2048
  L7.u1.d11      loop@L7                 592   0.3%          374        10274           99          0          0
  L7.u1.d20      loop@L7                 390   0.2%          214         6127            0          0          0
  L7.u1.d3       loop@L7                 356   0.2%          325         4864            0          0          0
  L3             -                       265   0.2%          192         6144           58          0          0
  L7             -                       236   0.1%          160         5120           28          0          0
  L16            loop@L7                 209   0.1%          336         5376            0          0          0
  L10.u1         loop@L7                 195   0.1%          214         6127            0          0          0
  L16.u1.d2      loop@L7                 194   0.1%          325         4864            0          0          0
  L22            -                       171   0.1%          128         4096           43          0        256
  L10            loop@L7                 164   0.1%          187         5137            0          0          0
  ?              -                       138   0.1%           96         2048            0          0          0
  L5             -                        69   0.0%           96         2048            0          0          0
  L4             -                        51   0.0%           32         1024           19          0          0

rainflow;? 138
rainflow;L22 171
rainflow;L3 265
rainflow;L4 51
rainflow;L5 69
rainflow;L6 660
rainflow;L7 236
rainflow;loop@L7;? 2450
rainflow;loop@L7;L10 164
rainflow;loop@L7;L10.u1 195
rainflow;loop@L7;L11 1080
rainflow;loop@L7;L11.u1 997
rainflow;loop@L7;L14 10160
rainflow;loop@L7;L14.u1.d2 8244
rainflow;loop@L7;L15 16215
rainflow;loop@L7;L15.u1.d11 3503
rainflow;loop@L7;L15.u1.d2 12627
rainflow;loop@L7;L16 209
rainflow;loop@L7;L16.u1.d2 194
rainflow;loop@L7;L17 2582
rainflow;loop@L7;L17.u1.d2 966
rainflow;loop@L7;L5 730
rainflow;loop@L7;L7 7923
rainflow;loop@L7;L7.u1 2279
rainflow;loop@L7;L7.u1.d1 695
rainflow;loop@L7;L7.u1.d11 592
rainflow;loop@L7;L7.u1.d2 2097
rainflow;loop@L7;L7.u1.d20 390
rainflow;loop@L7;L7.u1.d3 356
rainflow;loop@L7;L8 38303
rainflow;loop@L7;L8.u1 10552
rainflow;loop@L7;L8.u1.d11 1198
rainflow;loop@L7;L8.u1.d2 9831
rainflow;loop@L7;L9 16943
rainflow;loop@L7;L9.u1 13607
rainflow;loop@L7;L9.u1.d1 4649
