kernel bezier: 474094 cycles (issue 227456, dep_stall 246365, fetch_stall 270)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L12              2       229771   48.5%       229771            0            0
  loop@L12.u1.d9        2       157340   33.2%       157340            0            0
  loop@L7               1        48119   10.1%       468336            0            0
  loop@L12.u1.d2        2        33106    7.0%        33106            0            0
  loop@L12.u1           2            0    0.0%            0            0            0
  loop@L12.u1.d1        2            0    0.0%            0            0            0

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L11            loop@L12              59518  12.6%         7680       122880        51838          0          0
  L11.u1.d9      loop@L12.u1.d9        39680   8.4%         5120        81920        34560          0          0
  L20.u1.d9      loop@L12.u1.d9        34568   7.3%         5120        81920        16638          0          0
  L12            loop@L12              29567   6.2%         8448       135168        16895          0          0
  L20.d1         loop@L12              27995   5.9%         3200        51200        16795          0          0
  L20            loop@L12              21280   4.5%         4480        71680         5600          0          0
  L15            loop@L12              21120   4.5%         7680       122880         9600          0          0
  L12.u1.d9      loop@L12.u1.d9        19712   4.2%         5632        90112        11264          0          0
  L13            loop@L12              17290   3.6%         7680       122880         9600          0          0
  L16            loop@L12              15200   3.2%         3200        51200         4000          0          0
  L15.u1.d9      loop@L12.u1.d9        14080   3.0%         5120        81920         6400          0          0
  L16.u1.d9      loop@L12.u1.d9        12170   2.6%         2560        40960         3200          0          0
  L10            loop@L12              11531   2.4%         7680       122880         3841          0          0
  L13.u1.d9      loop@L12.u1.d9        11530   2.4%         5120        81920         6400          0          0
  L11.u1.d2      loop@L12.u1.d2         9920   2.1%         1280        20480         8640          0          0
  L24            loop@L7                8047   1.7%         1728        27648         4955          0          0
  ?              loop@L12               7680   1.6%         3840        61440            0          0          0
  L10.u1.d9      loop@L12.u1.d9         7680   1.6%         5120        81920         2560          0          0
  L25.d1         loop@L7                6506   1.4%         1408        22528         4000          0          0
  L24.u1.d9      loop@L7                6154   1.3%         1280        20480         3840          0          0
  L20.u1.d2      loop@L12.u1.d2         6088   1.3%         1280        20480         1598          0          0
  ?              loop@L12.u1.d9         5120   1.1%         2560        40960            0          0          0
  L25.u1.d13     loop@L7                5000   1.1%         1024        16384         3198          0          0
  L12.u1.d2      loop@L12.u1.d2         4928   1.0%         1408        22528         2816          0          0
  L14            loop@L12               3850   0.8%         3840        61440            0          0          0
  L8             loop@L12               3840   0.8%         3840        61440            0          0          0
  L15.u1.d2      loop@L12.u1.d2         3520   0.7%         1280        20480         1600          0          0
  L13.u1.d2      loop@L12.u1.d2         2890   0.6%         1280        20480         1600          0          0
  L25.d1         -                      2752   0.6%           64         1024         2688          0          0
  L7             loop@L7                2604   0.5%         1088        17408         1122          0          0
  L8.u1.d9       loop@L12.u1.d9         2560   0.5%         2560        40960            0          0          0
  L14.u1.d9      loop@L12.u1.d9         2560   0.5%         2560        40960            0          0          0
  L19.u1.d9      loop@L12.u1.d9         2560   0.5%         2560        40960            0          0          0
  L21.u1.d9      loop@L12.u1.d9         2560   0.5%         2560        40960            0          0          0
  L19            loop@L12               2240   0.5%         2240        35840            0          0          0
  L21            loop@L12               2240   0.5%         2240        35840            0          0          0
  L7.u1.d9       loop@L7                2048   0.4%          512         8192         1280          0          0
  L6             loop@L7                2040   0.4%          640        10240         1400          0          0
  L10.u1.d2      loop@L12.u1.d2         1920   0.4%         1280        20480          640          0          0
  L9             loop@L12               1610   0.3%         1600        25600            0          0          0
  L19.d1         loop@L12               1610   0.3%         1600        25600            0          0          0
  L17            loop@L12               1600   0.3%         1600        25600            0          0          0
  L21.d1         loop@L12               1600   0.3%         1600        25600            0          0          0
  L24.u1.d2      loop@L7                1546   0.3%          320         5120          960          0          0
  L25            loop@L7                1546   0.3%          320         5120          960          0          0
  L10            loop@L7                1536   0.3%          768        12288          768          0          0
  ?              loop@L12.u1.d2         1280   0.3%          640        10240            0          0          0
  L9.u1.d9       loop@L12.u1.d9         1280   0.3%         1280        20480            0          0          0
  L17.u1.d9      loop@L12.u1.d9         1280   0.3%         1280        20480            0          0          0
  L25.u1.d6      loop@L7                1256   0.3%          256         4096          798          0          0
  L10.u1.d9      loop@L7                1042   0.2%          512         8192          510          0          0
  L26.d9         loop@L7                 896   0.2%          256         4096          640          0          0
  L26.u1.d15     loop@L7                 896   0.2%          256         4096          640          0          0
  L3             -                       874   0.2%          384         6144          480          0          0
  L12            loop@L7                 778   0.2%          384         6144            0          0          0
  ?              loop@L7                 640   0.1%          320         5120            0          0          0
  L8.u1.d2       loop@L12.u1.d2          640   0.1%          640        10240            0          0          0
  L14.u1.d2      loop@L12.u1.d2          640   0.1%          640        10240            0          0          0
  L19.u1.d2      loop@L12.u1.d2          640   0.1%          640        10240            0          0          0
  L21.u1.d2      loop@L12.u1.d2          640   0.1%          640        10240            0          0          0
  L5             -                       522   0.1%          192         3072          320          0        256
  L4             -                       512   0.1%          128         2048          320          0          0
  L7.u1.d1       loop@L7                 512   0.1%          128         2048          320          0          0
  L7.u1.d2       loop@L7                 512   0.1%          128         2048          320          0          0
  L12.u1.d9      loop@L7                 512   0.1%          256         4096            0          0          0
  L28            -                       512   0.1%          192         3072          320          0        256
  L8             loop@L7                 384   0.1%          384         6144            0          0          0
  L9             loop@L7                 384   0.1%          384         6144            0          0          0
  L11            loop@L7                 384   0.1%          384         6144            0          0          0
  ?              -                       266   0.1%          128         2048            0          0          0
  L10.u1.d2      loop@L7                 264   0.1%          128         2048          126          0          0
  L7.d9          loop@L7                 256   0.1%          256         4096            0          0          0
  L7.u1.d15      loop@L7                 256   0.1%          256         4096            0          0          0
  L8.u1.d9       loop@L7                 256   0.1%          256         4096            0          0          0
  L9.u1.d9       loop@L7                 256   0.1%          256         4096            0          0          0
  L11.u1.d9      loop@L7                 256   0.1%          256         4096            0          0          0
  L26.u1.d13     loop@L7                 256   0.1%          256         4096            0          0          0
  L26.d2         loop@L7                 232   0.0%           64         1024          158          0          0
  L26.u1.d8      loop@L7                 224   0.0%           64         1024          160          0          0
  L7             -                       192   0.0%          128         2048            0          0          0
  L6             -                       128   0.0%          128         2048            0          0          0
  L12.u1.d2      loop@L7                 128   0.0%           64         1024            0          0          0
  L7.d1          loop@L7                  64   0.0%           64         1024            0          0          0
  L7.d2          loop@L7                  64   0.0%           64         1024            0          0          0
  L7.u1.d8       loop@L7                  64   0.0%           64         1024            0          0          0
  L8.u1.d2       loop@L7                  64   0.0%           64         1024            0          0          0
  L9.u1.d2       loop@L7                  64   0.0%           64         1024            0          0          0
  L11.u1.d2      loop@L7                  64   0.0%           64         1024            0          0          0
  L26.d1         loop@L7                  64   0.0%           64         1024            0          0          0
  L26.u1.d6      loop@L7                  64   0.0%           64         1024            0          0          0

bezier;? 266
bezier;L25.d1 2752
bezier;L28 512
bezier;L3 874
bezier;L4 512
bezier;L5 522
bezier;L6 128
bezier;L7 192
bezier;loop@L7;? 640
bezier;loop@L7;L10 1536
bezier;loop@L7;L10.u1.d2 264
bezier;loop@L7;L10.u1.d9 1042
bezier;loop@L7;L11 384
bezier;loop@L7;L11.u1.d2 64
bezier;loop@L7;L11.u1.d9 256
bezier;loop@L7;L12 778
bezier;loop@L7;L12.u1.d2 128
bezier;loop@L7;L12.u1.d9 512
bezier;loop@L7;L24 8047
bezier;loop@L7;L24.u1.d2 1546
bezier;loop@L7;L24.u1.d9 6154
bezier;loop@L7;L25 1546
bezier;loop@L7;L25.d1 6506
bezier;loop@L7;L25.u1.d13 5000
bezier;loop@L7;L25.u1.d6 1256
bezier;loop@L7;L26.d1 64
bezier;loop@L7;L26.d2 232
bezier;loop@L7;L26.d9 896
bezier;loop@L7;L26.u1.d13 256
bezier;loop@L7;L26.u1.d15 896
bezier;loop@L7;L26.u1.d6 64
bezier;loop@L7;L26.u1.d8 224
bezier;loop@L7;L6 2040
bezier;loop@L7;L7 2604
bezier;loop@L7;L7.d1 64
bezier;loop@L7;L7.d2 64
bezier;loop@L7;L7.d9 256
bezier;loop@L7;L7.u1.d1 512
bezier;loop@L7;L7.u1.d15 256
bezier;loop@L7;L7.u1.d2 512
bezier;loop@L7;L7.u1.d8 64
bezier;loop@L7;L7.u1.d9 2048
bezier;loop@L7;L8 384
bezier;loop@L7;L8.u1.d2 64
bezier;loop@L7;L8.u1.d9 256
bezier;loop@L7;L9 384
bezier;loop@L7;L9.u1.d2 64
bezier;loop@L7;L9.u1.d9 256
bezier;loop@L7;loop@L12.u1.d2;? 1280
bezier;loop@L7;loop@L12.u1.d2;L10.u1.d2 1920
bezier;loop@L7;loop@L12.u1.d2;L11.u1.d2 9920
bezier;loop@L7;loop@L12.u1.d2;L12.u1.d2 4928
bezier;loop@L7;loop@L12.u1.d2;L13.u1.d2 2890
bezier;loop@L7;loop@L12.u1.d2;L14.u1.d2 640
bezier;loop@L7;loop@L12.u1.d2;L15.u1.d2 3520
bezier;loop@L7;loop@L12.u1.d2;L19.u1.d2 640
bezier;loop@L7;loop@L12.u1.d2;L20.u1.d2 6088
bezier;loop@L7;loop@L12.u1.d2;L21.u1.d2 640
bezier;loop@L7;loop@L12.u1.d2;L8.u1.d2 640
bezier;loop@L7;loop@L12.u1.d9;? 5120
bezier;loop@L7;loop@L12.u1.d9;L10.u1.d9 7680
bezier;loop@L7;loop@L12.u1.d9;L11.u1.d9 39680
bezier;loop@L7;loop@L12.u1.d9;L12.u1.d9 19712
bezier;loop@L7;loop@L12.u1.d9;L13.u1.d9 11530
bezier;loop@L7;loop@L12.u1.d9;L14.u1.d9 2560
bezier;loop@L7;loop@L12.u1.d9;L15.u1.d9 14080
bezier;loop@L7;loop@L12.u1.d9;L16.u1.d9 12170
bezier;loop@L7;loop@L12.u1.d9;L17.u1.d9 1280
bezier;loop@L7;loop@L12.u1.d9;L19.u1.d9 2560
bezier;loop@L7;loop@L12.u1.d9;L20.u1.d9 34568
bezier;loop@L7;loop@L12.u1.d9;L21.u1.d9 2560
bezier;loop@L7;loop@L12.u1.d9;L8.u1.d9 2560
bezier;loop@L7;loop@L12.u1.d9;L9.u1.d9 1280
bezier;loop@L7;loop@L12;? 7680
bezier;loop@L7;loop@L12;L10 11531
bezier;loop@L7;loop@L12;L11 59518
bezier;loop@L7;loop@L12;L12 29567
bezier;loop@L7;loop@L12;L13 17290
bezier;loop@L7;loop@L12;L14 3850
bezier;loop@L7;loop@L12;L15 21120
bezier;loop@L7;loop@L12;L16 15200
bezier;loop@L7;loop@L12;L17 1600
bezier;loop@L7;loop@L12;L19 2240
bezier;loop@L7;loop@L12;L19.d1 1610
bezier;loop@L7;loop@L12;L20 21280
bezier;loop@L7;loop@L12;L20.d1 27995
bezier;loop@L7;loop@L12;L21 2240
bezier;loop@L7;loop@L12;L21.d1 1600
bezier;loop@L7;loop@L12;L8 3840
bezier;loop@L7;loop@L12;L9 1610
