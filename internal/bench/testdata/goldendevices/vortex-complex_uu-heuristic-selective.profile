kernel cpx: 210373 cycles (issue 107152, dep_stall 103055, fetch_stall 160)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L10              1       188045   89.4%       188045            4            0

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L10.u1         loop@L10              10208   4.9%         2552        40830         6380          1          0
  L10            loop@L10               9841   4.7%         2812        44992         5623          1          0
  L10.u5         loop@L10               9471   4.5%         2812        44992         4795          0          0
  L10.u2         loop@L10               8128   3.9%         2032        32508         5080          1          0
  L10.u3         loop@L10               8064   3.8%         2016        32248         5040          1          0
  L10.u4         loop@L10               7936   3.8%         1984        31728         4960          0          0
  L3             -                      7434   3.5%         3584        57344         3840          0          0
  L11            loop@L10               5752   2.7%         2552        40830         3190          0          0
  L13            loop@L10               5742   2.7%         2552        40830         3190          0          0
  L15            loop@L10               5742   2.7%         2552        40830         3190          0          0
  L9             loop@L10               5368   2.6%         2170        34719         3188          0          0
  L19            -                      4618   2.2%         2048        32768         2560          0       2048
  L11.u1         loop@L10               4582   2.2%         2032        32508         2540          0          0
  L13.u1         loop@L10               4572   2.2%         2032        32508         2540          0          0
  L15.u1         loop@L10               4572   2.2%         2032        32508         2540          0          0
  L11.u2         loop@L10               4546   2.2%         2016        32248         2520          0          0
  L13.u2         loop@L10               4536   2.2%         2016        32248         2520          0          0
  L15.u2         loop@L10               4536   2.2%         2016        32248         2520          0          0
  L11.u3         loop@L10               4474   2.1%         1984        31728         2480          0          0
  L13.u3         loop@L10               4464   2.1%         1984        31728         2480          0          0
  L15.u3         loop@L10               4464   2.1%         1984        31728         2480          0          0
  L11.u4         loop@L10               4316   2.1%         1918        30688         2398          0          0
  L13.u4         loop@L10               4316   2.1%         1918        30688         2398          0          0
  L15.u4         loop@L10               4316   2.1%         1918        30688         2398          0          0
  L4             -                      4096   1.9%         1024        16384         2560          0          0
  L11.u5         loop@L10               4033   1.9%         1788        28608         2235          0          0
  L15.u5         loop@L10               4031   1.9%         1788        28608         2233          0          0
  L13.u5         loop@L10               4023   1.9%         1788        28608         2235          0          0
  L9.u1          loop@L10               3564   1.7%         1016        16254         2538          0          0
  L9.u2          loop@L10               3536   1.7%         1008        16124         2518          0          0
  L9.u3          loop@L10               3480   1.7%          992        15864         2478          0          0
  L9.u4          loop@L10               3364   1.6%          959        15344         2395          0          0
  L9.u5          loop@L10               3129   1.5%          894        14304         2235          0          0
  ?              -                      3080   1.5%         1540        24576            0          0          0
  L8             loop@L10               2170   1.0%         2170        34719            0          0          0
  L7             loop@L10               1341   0.6%          894        14304          447          0          0
  L12            loop@L10               1276   0.6%         1276        20415            0          0          0
  L16            loop@L10               1276   0.6%         1276        20415            0          0          0
  L17            loop@L10               1276   0.6%         1276        20415            0          0          0
  L6             loop@L10               1118   0.5%          894        14304          224          0          0
  L8             -                      1038   0.5%         1028        16384            0          0          0
  L9             -                      1038   0.5%         1028        16384            0          0          0
  L8.u1          loop@L10               1016   0.5%         1016        16254            0          0          0
  L12.u1         loop@L10               1016   0.5%         1016        16254            0          0          0
  L16.u1         loop@L10               1016   0.5%         1016        16254            0          0          0
  L17.u1         loop@L10               1016   0.5%         1016        16254            0          0          0
  L8.u2          loop@L10               1008   0.5%         1008        16124            0          0          0
  L12.u2         loop@L10               1008   0.5%         1008        16124            0          0          0
  L16.u2         loop@L10               1008   0.5%         1008        16124            0          0          0
  L17.u2         loop@L10               1008   0.5%         1008        16124            0          0          0
  L3             loop@L10               1006   0.5%          894        14304          112          0          0
  L8.u3          loop@L10                992   0.5%          992        15864            0          0          0
  L12.u3         loop@L10                992   0.5%          992        15864            0          0          0
  L16.u3         loop@L10                992   0.5%          992        15864            0          0          0
  L17.u3         loop@L10                992   0.5%          992        15864            0          0          0
  L8.u4          loop@L10                959   0.5%          959        15344            0          0          0
  L12.u4         loop@L10                959   0.5%          959        15344            0          0          0
  L16.u4         loop@L10                959   0.5%          959        15344            0          0          0
  L17.u4         loop@L10                959   0.5%          959        15344            0          0          0
  L8.u5          loop@L10                894   0.4%          894        14304            0          0          0
  L12.u5         loop@L10                894   0.4%          894        14304            0          0          0
  L16.u5         loop@L10                894   0.4%          894        14304            0          0          0
  L17.u5         loop@L10                894   0.4%          894        14304            0          0          0
  L6             -                       512   0.2%          512         8192            0          0          0
  L7             -                       512   0.2%          512         8192            0          0          0

cpx;? 3080
cpx;L19 4618
cpx;L3 7434
cpx;L4 4096
cpx;L6 512
cpx;L7 512
cpx;L8 1038
cpx;L9 1038
cpx;loop@L10;L10 9841
cpx;loop@L10;L10.u1 10208
cpx;loop@L10;L10.u2 8128
cpx;loop@L10;L10.u3 8064
cpx;loop@L10;L10.u4 7936
cpx;loop@L10;L10.u5 9471
cpx;loop@L10;L11 5752
cpx;loop@L10;L11.u1 4582
cpx;loop@L10;L11.u2 4546
cpx;loop@L10;L11.u3 4474
cpx;loop@L10;L11.u4 4316
cpx;loop@L10;L11.u5 4033
cpx;loop@L10;L12 1276
cpx;loop@L10;L12.u1 1016
cpx;loop@L10;L12.u2 1008
cpx;loop@L10;L12.u3 992
cpx;loop@L10;L12.u4 959
cpx;loop@L10;L12.u5 894
cpx;loop@L10;L13 5742
cpx;loop@L10;L13.u1 4572
cpx;loop@L10;L13.u2 4536
cpx;loop@L10;L13.u3 4464
cpx;loop@L10;L13.u4 4316
cpx;loop@L10;L13.u5 4023
cpx;loop@L10;L15 5742
cpx;loop@L10;L15.u1 4572
cpx;loop@L10;L15.u2 4536
cpx;loop@L10;L15.u3 4464
cpx;loop@L10;L15.u4 4316
cpx;loop@L10;L15.u5 4031
cpx;loop@L10;L16 1276
cpx;loop@L10;L16.u1 1016
cpx;loop@L10;L16.u2 1008
cpx;loop@L10;L16.u3 992
cpx;loop@L10;L16.u4 959
cpx;loop@L10;L16.u5 894
cpx;loop@L10;L17 1276
cpx;loop@L10;L17.u1 1016
cpx;loop@L10;L17.u2 1008
cpx;loop@L10;L17.u3 992
cpx;loop@L10;L17.u4 959
cpx;loop@L10;L17.u5 894
cpx;loop@L10;L3 1006
cpx;loop@L10;L6 1118
cpx;loop@L10;L7 1341
cpx;loop@L10;L8 2170
cpx;loop@L10;L8.u1 1016
cpx;loop@L10;L8.u2 1008
cpx;loop@L10;L8.u3 992
cpx;loop@L10;L8.u4 959
cpx;loop@L10;L8.u5 894
cpx;loop@L10;L9 5368
cpx;loop@L10;L9.u1 3564
cpx;loop@L10;L9.u2 3536
cpx;loop@L10;L9.u3 3480
cpx;loop@L10;L9.u4 3364
cpx;loop@L10;L9.u5 3129
