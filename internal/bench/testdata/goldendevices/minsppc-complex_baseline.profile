kernel cpx: 83944 cycles (issue 70916, dep_stall 12954, fetch_stall 80)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L10              1        77202   92.0%        77202            5            0

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L10            loop@L10              19326  23.0%         9731       311299         3198          5          0
  L9             loop@L10               8008   9.5%         6146       196610         1848          0          0
  L11            loop@L10               8008   9.5%         6146       196610         1848          0          0
  L13            loop@L10               8008   9.5%         6146       196610         1848          0          0
  L15            loop@L10               7992   9.5%         6146       196610         1848          0          0
  L8             loop@L10               6444   7.7%         6146       196610          300          0          0
  L7             loop@L10               3444   4.1%         3073        98305          372          0          0
  L6             loop@L10               3396   4.0%         3073        98305          324          0          0
  L3             loop@L10               3360   4.0%         3073        98305          288          0          0
  L12            loop@L10               3072   3.7%         3073        98305            0          0          0
  L16            loop@L10               3072   3.7%         3073        98305            0          0          0
  L17            loop@L10               3072   3.7%         3073        98305            0          0          0
  L3             -                      2270   2.7%         1792        57344          462          0          0
  L19            -                      1332   1.6%         1024        32768          308          0       2048
  L4             -                      1076   1.3%          512        16384          308          0          0
  ?              -                      1024   1.2%          512        16384            0          0          0
  L9             -                       272   0.3%          256         8192            0          0          0
  L6             -                       256   0.3%          256         8192            0          0          0
  L7             -                       256   0.3%          256         8192            0          0          0
  L8             -                       256   0.3%          256         8192            0          0          0

cpx;? 1024
cpx;L19 1332
cpx;L3 2270
cpx;L4 1076
cpx;L6 256
cpx;L7 256
cpx;L8 256
cpx;L9 272
cpx;loop@L10;L10 19326
cpx;loop@L10;L11 8008
cpx;loop@L10;L12 3072
cpx;loop@L10;L13 8008
cpx;loop@L10;L15 7992
cpx;loop@L10;L16 3072
cpx;loop@L10;L17 3072
cpx;loop@L10;L3 3360
cpx;loop@L10;L6 3396
cpx;loop@L10;L7 3444
cpx;loop@L10;L8 6444
cpx;loop@L10;L9 8008
