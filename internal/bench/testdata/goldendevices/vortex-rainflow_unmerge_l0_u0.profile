kernel rainflow: 601550 cycles (issue 158313, dep_stall 443141, fetch_stall 90)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L7               1       596930   99.2%       596930          886       231946

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L8             loop@L7              237647  39.5%        48128       770048       183483        443     192512
  L9             loop@L7              122226  20.3%        19932       301098        98952         28      50183
  L15            loop@L7              118042  19.6%        18822       276438        96072        415      46073
  L7             loop@L7               48772   8.1%        19062       290816        23630          0          0
  L14            loop@L7               34092   5.7%         6274        92146        24680          0          0
  L17            loop@L7               11079   1.8%         3165        30720         7913          0      10240
  ?              loop@L7               10230   1.7%         5115        74752            0          0          0
  L11            loop@L7                7694   1.3%         2196        33792         5488          0      11264
  L6             -                      2184   0.4%          384         6144         1790          0       2048
  L7.d1          loop@L7                2110   0.4%         1055        10240            0          0          0
  L5             loop@L7                1787   0.3%         1787        21504            0          0          0
  L7.d3          loop@L7                1464   0.2%          732        11264            0          0          0
  L16            loop@L7                1055   0.2%         1055        10240            0          0          0
  L3             -                       874   0.1%          384         6144          480          0          0
  L10            loop@L7                 732   0.1%          732        11264            0          0          0
  L22            -                       576   0.1%          256         4096          320          0        256
  L7             -                       570   0.1%          320         5120          176          0          0
  L4             -                       224   0.0%           64         1024          160          0          0
  ?              -                       128   0.0%           64         1024            0          0          0
  L5             -                        64   0.0%           64         1024            0          0          0

rainflow;? 128
rainflow;L22 576
rainflow;L3 874
rainflow;L4 224
rainflow;L5 64
rainflow;L6 2184
rainflow;L7 570
rainflow;loop@L7;? 10230
rainflow;loop@L7;L10 732
rainflow;loop@L7;L11 7694
rainflow;loop@L7;L14 34092
rainflow;loop@L7;L15 118042
rainflow;loop@L7;L16 1055
rainflow;loop@L7;L17 11079
rainflow;loop@L7;L5 1787
rainflow;loop@L7;L7 48772
rainflow;loop@L7;L7.d1 2110
rainflow;loop@L7;L7.d3 1464
rainflow;loop@L7;L8 237647
rainflow;loop@L7;L9 122226
