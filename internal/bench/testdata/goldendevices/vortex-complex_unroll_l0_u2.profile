kernel cpx: 224106 cycles (issue 121208, dep_stall 102814, fetch_stall 80)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L10              1       201788   90.0%       201788            4            0

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L10.u1         loop@L10              31759  14.2%         9388       150188        16215          2          0
  L10            loop@L10              23897  10.7%         6828       109228        13655          2          0
  L11            loop@L10              14604   6.5%         6486       103766         8108          0          0
  L13            loop@L10              14594   6.5%         6486       103766         8108          0          0
  L15            loop@L10              14594   6.5%         6486       103766         8108          0          0
  L9             loop@L10              14260   6.4%         6145        98305         8105          0          0
  L11.u1         loop@L10              13069   5.8%         5804        92844         7255          0          0
  L15.u1         loop@L10              13067   5.8%         5804        92844         7253          0          0
  L13.u1         loop@L10              13059   5.8%         5804        92844         7255          0          0
  L9.u1          loop@L10              10157   4.5%         2902        46422         7255          0          0
  L3             -                      7434   3.3%         3584        57344         3840          0          0
  L8             loop@L10               6145   2.7%         6145        98305            0          0          0
  L19            -                      4608   2.1%         2048        32768         2560          0       2048
  L7             loop@L10               4353   1.9%         2902        46422         1451          0          0
  L4             -                      4096   1.8%         1024        16384         2560          0          0
  L6             loop@L10               3628   1.6%         2902        46422          726          0          0
  L3             loop@L10               3265   1.5%         2902        46422          363          0          0
  L12            loop@L10               3243   1.4%         3243        51883            0          0          0
  L16            loop@L10               3243   1.4%         3243        51883            0          0          0
  L17            loop@L10               3243   1.4%         3243        51883            0          0          0
  ?              -                      3080   1.4%         1540        24576            0          0          0
  L8.u1          loop@L10               2902   1.3%         2902        46422            0          0          0
  L12.u1         loop@L10               2902   1.3%         2902        46422            0          0          0
  L16.u1         loop@L10               2902   1.3%         2902        46422            0          0          0
  L17.u1         loop@L10               2902   1.3%         2902        46422            0          0          0
  L8             -                      1038   0.5%         1028        16384            0          0          0
  L9             -                      1038   0.5%         1028        16384            0          0          0
  L6             -                       512   0.2%          512         8192            0          0          0
  L7             -                       512   0.2%          512         8192            0          0          0

cpx;? 3080
cpx;L19 4608
cpx;L3 7434
cpx;L4 4096
cpx;L6 512
cpx;L7 512
cpx;L8 1038
cpx;L9 1038
cpx;loop@L10;L10 23897
cpx;loop@L10;L10.u1 31759
cpx;loop@L10;L11 14604
cpx;loop@L10;L11.u1 13069
cpx;loop@L10;L12 3243
cpx;loop@L10;L12.u1 2902
cpx;loop@L10;L13 14594
cpx;loop@L10;L13.u1 13059
cpx;loop@L10;L15 14594
cpx;loop@L10;L15.u1 13067
cpx;loop@L10;L16 3243
cpx;loop@L10;L16.u1 2902
cpx;loop@L10;L17 3243
cpx;loop@L10;L17.u1 2902
cpx;loop@L10;L3 3265
cpx;loop@L10;L6 3628
cpx;loop@L10;L7 4353
cpx;loop@L10;L8 6145
cpx;loop@L10;L8.u1 2902
cpx;loop@L10;L9 14260
cpx;loop@L10;L9.u1 10157
