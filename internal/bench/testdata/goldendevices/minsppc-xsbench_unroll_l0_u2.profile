kernel xsbench: 48936 cycles (issue 22140, dep_stall 26624, fetch_stall 160)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L11              1        37198   76.0%        37198            1            0

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L13            loop@L11               9502  19.4%         1536        49152         7951          0        478
  L13.u1         loop@L11               9477  19.4%         1536        49124         7941          0        505
  L12.u1         loop@L11               4613   9.4%          768        24562         1142          0          0
  L12            loop@L11               4562   9.3%          768        24576         1106          0          0
  L23            -                      3587   7.3%          832        26624         2736          0        791
  L22            -                      2734   5.6%          192         6144         2206          0          0
  L11.u1         loop@L11               2382   4.9%         1152        36857          462          1          0
  L5             -                      1748   3.6%          384        12288          452          0          0
  L11            loop@L11               1672   3.4%          896        28658          313          0          0
  L7             -                      1237   2.5%          192         6144          261          0          0
  L9             loop@L11               1017   2.1%          768        24569          249          0          0
  L8             loop@L11                958   2.0%          768        24569          191          0          0
  L9.u1          loop@L11                615   1.3%          384        12281          231          0          0
  L10            loop@L11                615   1.3%          384        12281          231          0          0
  L18            loop@L11                615   1.3%          384        12288          231          0          0
  L18.u1         loop@L11                615   1.3%          384        12281          231          0          0
  L8.u1          loop@L11                555   1.1%          384        12281          156          0          0
  L3             -                       517   1.1%          384        12288          116          0          0
  L21            -                       373   0.8%          256         8192          116          0        140
  L20            -                       293   0.6%          192         6144          100          0        139
  ?              -                       273   0.6%          129         4096            0          0          0
  L4             -                       270   0.6%          128         4096           77          0          0
  L6             -                       193   0.4%          128         4096           65          0          0
  L9             -                       154   0.3%          128         4096           26          0          0
  L8             -                       128   0.3%          129         4096            0          0          0
  L11            -                       128   0.3%           64         2048            0          0          0
  L10            -                       103   0.2%           64         2048           39          0          0

xsbench;? 273
xsbench;L10 103
xsbench;L11 128
xsbench;L20 293
xsbench;L21 373
xsbench;L22 2734
xsbench;L23 3587
xsbench;L3 517
xsbench;L4 270
xsbench;L5 1748
xsbench;L6 193
xsbench;L7 1237
xsbench;L8 128
xsbench;L9 154
xsbench;loop@L11;L10 615
xsbench;loop@L11;L11 1672
xsbench;loop@L11;L11.u1 2382
xsbench;loop@L11;L12 4562
xsbench;loop@L11;L12.u1 4613
xsbench;loop@L11;L13 9502
xsbench;loop@L11;L13.u1 9477
xsbench;loop@L11;L18 615
xsbench;loop@L11;L18.u1 615
xsbench;loop@L11;L8 958
xsbench;loop@L11;L8.u1 555
xsbench;loop@L11;L9 1017
xsbench;loop@L11;L9.u1 615
