kernel xsbench: 50732 cycles (issue 21662, dep_stall 27040, fetch_stall 2000)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L11              1        38974   76.8%        38974          151            0

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L23            -                      3589   7.1%          832        26624         2738          0        791
  L13            loop@L11               3518   6.9%          640        20480         2734          7        128
  L22            -                      2722   5.4%          192         6144         2209          0          0
  L13.u1.d1      loop@L11               1842   3.6%          345        10615         1425          7         69
  L5             -                      1748   3.4%          384        12288          452          0          0
  L13.u1         loop@L11               1706   3.4%          330         9865         1331          4         66
  L12            loop@L11               1521   3.0%          256         8192          369          0          0
  L7             -                      1237   2.4%          192         6144          261          0          0
  L13.u2.d33     loop@L11                937   1.8%          190         5365          731          7         38
  L13.u2.d1      loop@L11                934   1.8%          190         5250          717          6         38
  L13.u2         loop@L11                906   1.8%          185         5190          708          7         37
  L13.u2.d2      loop@L11                831   1.6%          165         4675          636          0         33
  L12.u1.d1      loop@L11                793   1.6%          138         4246          192          0          0
  L12.u1         loop@L11                763   1.5%          132         3946          186          0          0
  L11            loop@L11                760   1.5%          460        12274          151          0          0
  L3             -                       517   1.0%          384        12288          116          0          0
  L13.u3.d1      loop@L11                517   1.0%          115         2805          391          8         23
  L10            loop@L11                513   1.0%          556         8178          187          0          0
  L13.u3.d34     loop@L11                511   1.0%          115         2765          387          0         23
  L9             loop@L11                487   1.0%          556         8178          113          0          0
  L13.u3.d18     loop@L11                481   0.9%          110         2585          363          7         22
  L13.u3         loop@L11                468   0.9%          110         2605          366          2         22
  L13.u3.d33     loop@L11                468   0.9%          110         2600          366          0         22
  L8             loop@L11                461   0.9%          556         8178           94          0          0
  L13.u3.d2      loop@L11                447   0.9%           95         2435          337          7         19
  L13.u3.d49     loop@L11                442   0.9%          105         2445          345          7         21
  L12.u2.d33     loop@L11                427   0.8%           76         2146          103          0          0
  L12.u2         loop@L11                411   0.8%           74         2076           97          0          0
  L12.u2.d1      loop@L11                399   0.8%           76         2100           97          0          0
  L13.u3.d3      loop@L11                381   0.8%           70         2240          299          7         14
  L21            -                       373   0.7%          256         8192          116          0        140
  L12.u2.d2      loop@L11                357   0.7%           66         1870           89          0          0
  L20            -                       313   0.6%          192         6144          105          0        139
  L13.u4.d1      loop@L11                303   0.6%           65         1710          236          8         13
  ?              loop@L11                302   0.6%          278         4089            0          0          0
  L13.u4.d33     loop@L11                302   0.6%           60         1630          223          7         12
  L13.u4.d19     loop@L11                296   0.6%           60         1710          233          7         12
  L13.u4.d49     loop@L11                288   0.6%           55         1565          212          7         11
  L13.u4.d26     loop@L11                283   0.6%           55         1530          208          7         11
  L13.u4.d11     loop@L11                273   0.5%           60         1540          213          7         12
  L4             -                       270   0.5%          128         4096           77          0          0
  ?              -                       268   0.5%          167         4096            0          0          0
  L11.u1         loop@L11                262   0.5%          132         3946           75          0          0
  L11.u1.d1      loop@L11                257   0.5%          138         4246           40          0          0
  L13.u4.d34     loop@L11                257   0.5%           60         1430          201          7         12
  L13.u4.d35     loop@L11                240   0.5%           55         1335          187          7         11
  L13.u4.d57     loop@L11                234   0.5%           90         1095          182          0         18
  L13.u4.d4      loop@L11                233   0.5%           55         1175          168          6         11
  L13.u4         loop@L11                225   0.4%           65         1075          163          1         13
  L12.u3         loop@L11                221   0.4%           44         1042           51          0          0
  L12.u3.d33     loop@L11                219   0.4%           44         1040           49          0          0
  L12.u3.d1      loop@L11                218   0.4%           46         1122           53          0          0
  L12.u3.d34     loop@L11                218   0.4%           46         1106           55          0          0
  L13.u4.d50     loop@L11                214   0.4%           85          880          154          0         17
  L12.u3.d49     loop@L11                211   0.4%           42          978           49          0          0
  L13.u4.d3      loop@L11                211   0.4%           50         1065          153          7         10
  L12.u3.d18     loop@L11                205   0.4%           44         1034           51          0          0
  L13.u4.d18     loop@L11                199   0.4%           85          875          154          0         17
  L13.u4.d42     loop@L11                198   0.4%           50          970          142          4         10
  L6             -                       193   0.4%          128         4096           65          0          0
  L12.u3.d2      loop@L11                189   0.4%           38          974           47          0          0
  L13.u4.d2      loop@L11                188   0.4%           70          895          146          0         14
  L12.u3.d3      loop@L11                183   0.4%           28          896           42          0          0
  L13.u5.d19     loop@L11                176   0.3%           40          756          135          0         10
  L13.u5.d61     loop@L11                165   0.3%           40          676          124          0         10
  L13.u5.d1      loop@L11                161   0.3%           40          664          122          0         10
  L13.u5.d33     loop@L11                160   0.3%           40          752          135          0         10
  L9             -                       154   0.3%          128         4096           26          0          0
  L13.u5.d11     loop@L11                153   0.3%           36          624          114          0          9
  L13.u5.d12     loop@L11                153   0.3%           40          608          114          0         10
  L13.u5.d34     loop@L11                153   0.3%           36          628          114          0          9
  L13.u5.d36     loop@L11                153   0.3%           36          624          114          0          9
  L13.u5.d20     loop@L11                150   0.3%           36          612          112          0          9
  L12.u4.d1      loop@L11                147   0.3%           26          684           32          0          0
  L12.u4.d19     loop@L11                146   0.3%           24          684           33          0          0
  L11.u2.d33     loop@L11                144   0.3%           76         2146           41          0          0
  L8             -                       143   0.3%          167         4096            9          0          0
  L13.u5.d15     loop@L11                141   0.3%           36          560          105          0          9
  L11.u2.d2      loop@L11                140   0.3%           66         1870           35          0          0
  L11.u2         loop@L11                138   0.3%           74         2076           23          0          0
  L11.u2.d1      loop@L11                137   0.3%           76         2100           20          0          0
  L13.u5.d4      loop@L11                137   0.3%           36          624          114          0          9
  L13.u5.d8      loop@L11                137   0.3%           36          628          115          0          9
  L13.u5.d27     loop@L11                137   0.3%           36          628          115          0          9
  L13.u5.d39     loop@L11                137   0.3%           40          516          102          0         10
  L13.u5.d49     loop@L11                137   0.3%           36          628          115          0          9
  L13.u5.d54     loop@L11                137   0.3%           36          624          114          0          9
  L12.u4.d11     loop@L11                136   0.3%           24          616           30          0          0
  L13.u5.d43     loop@L11                136   0.3%           36          616          113          0          9
  L13.u5.d26     loop@L11                130   0.3%           36          596          110          0          9
  L11            -                       128   0.3%           64         2048            0          0          0
  L12.u4.d34     loop@L11                127   0.3%           24          572           27          0          0
  L12.u4.d33     loop@L11                125   0.2%           24          652           30          0          0
  L13.u5.d46     loop@L11                124   0.2%           36          552          104          0          9
  L13.u5.d35     loop@L11                123   0.2%           36          444           89          0          9
  L13.u5.d58     loop@L11                123   0.2%           36          452           90          0          9
  L12.u4.d35     loop@L11                121   0.2%           22          534           27          0          0
  L12.u4.d49     loop@L11                119   0.2%           22          626           29          0          0
  L12.u4.d57     loop@L11                119   0.2%           36          438           27          0          0
  L13.u5.d57     loop@L11                119   0.2%           36          424           86          0          9
  L12.u4.d26     loop@L11                118   0.2%           22          612           29          0          0
  L13.u5.d23     loop@L11                113   0.2%           36          396           83          0          9
  L13.u5.d51     loop@L11                113   0.2%           36          488           95          0          9
  L13.u5         loop@L11                106   0.2%           32          464           89          0          8
  L12.u4.d18     loop@L11                104   0.2%           34          350           23          0          0
  L10            -                       103   0.2%           64         2048           39          0          0
  L12.u4.d2      loop@L11                 99   0.2%           28          358           21          0          0
  L12.u4.d4      loop@L11                 96   0.2%           22          470           24          0          0
  L13.u5.d18     loop@L11                 95   0.2%           32          304           67          0          8
  L12.u4         loop@L11                 93   0.2%           26          430           24          0          0
  L12.u5.d33     loop@L11                 93   0.2%           20          376           19          0          0
  L11.u3.d34     loop@L11                 91   0.2%           46         1106           21          0          0
  L12.u4.d50     loop@L11                 88   0.2%           34          352           23          0          0
  L13.u5.d30     loop@L11                 88   0.2%           24          396           73          0          6
  L11.u3.d18     loop@L11                 87   0.2%           44         1034           20          0          0
  L12.u5.d1      loop@L11                 86   0.2%           20          332           17          0          0
  L12.u4.d3      loop@L11                 85   0.2%           20          426           21          0          0
  L11.u3.d1      loop@L11                 82   0.2%           46         1122           11          0          0
  L12.u5.d4      loop@L11                 82   0.2%           18          312           17          0          0
  L12.u5.d8      loop@L11                 82   0.2%           18          314           17          0          0
  L12.u5.d27     loop@L11                 82   0.2%           18          314           17          0          0
  L12.u5.d43     loop@L11                 82   0.2%           18          308           17          0          0
  L12.u5.d54     loop@L11                 82   0.2%           18          312           17          0          0
  L11.u3         loop@L11                 81   0.2%           44         1042           13          0          0
  L12.u4.d42     loop@L11                 81   0.2%           20          388           21          0          0
  L12.u5.d49     loop@L11                 81   0.2%           18          314           16          0          0
  L13.u5.d5      loop@L11                 81   0.2%           32          316           68          0          8
  L12.u5.d26     loop@L11                 79   0.2%           18          298           15          0          0
  L11.u3.d33     loop@L11                 78   0.2%           44         1040           10          0          0
  L12.u5.d19     loop@L11                 77   0.2%           20          378           19          0          0
  L12.u5.d46     loop@L11                 76   0.1%           18          276           16          0          0
  L11.u3.d2      loop@L11                 74   0.1%           38          974           11          0          0
  L12.u5.d51     loop@L11                 72   0.1%           18          244           14          0          0
  L12.u5.d61     loop@L11                 72   0.1%           20          338           19          0          0
  L12.u5         loop@L11                 69   0.1%           16          232           14          0          0
  L11.u3.d49     loop@L11                 68   0.1%           42          978           19          0          0
  L12.u5.d12     loop@L11                 67   0.1%           20          304           17          0          0
  L12.u5.d20     loop@L11                 66   0.1%           18          306           17          0          0
  L12.u5.d36     loop@L11                 66   0.1%           18          312           17          0          0
  L13.u5.d3      loop@L11                 66   0.1%           32          224           56          0          8
  L12.u5.d11     loop@L11                 65   0.1%           18          312           16          0          0
  L12.u5.d34     loop@L11                 65   0.1%           18          314           16          0          0
  L13.u5.d50     loop@L11                 65   0.1%           32          216           55          0          8
  L12.u5.d15     loop@L11                 62   0.1%           18          280           16          0          0
  L18            loop@L11                 62   0.1%           66         1973            0          0          0
  L13.u5.d2      loop@L11                 61   0.1%           20          156           37          0          5
  L12.u5.d30     loop@L11                 59   0.1%           12          198           11          0          0
  L12.u5.d39     loop@L11                 59   0.1%           20          258           15          0          0
  L11.u3.d3      loop@L11                 58   0.1%           28          896           17          0          0
  L11.u4.d1      loop@L11                 56   0.1%           26          684            7          0          0
  L11.u4.d26     loop@L11                 56   0.1%           22          612           11          0          0
  L12.u5.d5      loop@L11                 56   0.1%           16          158           10          0          0
  L11.u4.d33     loop@L11                 53   0.1%           24          652            6          0          0
  L12.u5.d58     loop@L11                 53   0.1%           18          226           13          0          0
  L11.u4.d49     loop@L11                 52   0.1%           22          626            6          0          0
  L12.u5.d57     loop@L11                 52   0.1%           18          212           15          0          0
  L11.u4.d34     loop@L11                 51   0.1%           24          572            7          0          0
  L12.u5.d35     loop@L11                 51   0.1%           18          222           12          0          0
  L11.u4.d4      loop@L11                 49   0.1%           22          470            9          0          0
  L12.u5.d50     loop@L11                 49   0.1%           16          108           10          0          0
  L12.u5.d3      loop@L11                 48   0.1%           16          112            8          0          0
  L12.u5.d23     loop@L11                 48   0.1%           18          198           12          0          0
  L11.u4         loop@L11                 46   0.1%           26          430            7          0          0
  L11.u4.d50     loop@L11                 46   0.1%           34          352            8          0          0
  L11.u4.d18     loop@L11                 45   0.1%           34          350            8          0          0
  L11.u4.d19     loop@L11                 45   0.1%           24          684           13          0          0
  L13.u5.d42     loop@L11                 45   0.1%           20          160           38          0          5
  L11.u4.d42     loop@L11                 43   0.1%           20          388            8          0          0
  L11.u4.d2      loop@L11                 42   0.1%           28          358            6          0          0
  L11.u4.d3      loop@L11                 42   0.1%           20          426            4          0          0
  L11.u4.d11     loop@L11                 42   0.1%           24          616           12          0          0
  L11.u5.d61     loop@L11                 41   0.1%           20          338            7          0          0
  L12.u5.d18     loop@L11                 41   0.1%           16          152           12          0          0
  L11.u5.d19     loop@L11                 40   0.1%           20          378            4          0          0
  L11.u5.d36     loop@L11                 39   0.1%           18          312            6          0          0
  L11.u5.d1      loop@L11                 38   0.1%           22          346            4          0          0
  L11.u5.d12     loop@L11                 38   0.1%           20          304            6          0          0
  L11.u5.d20     loop@L11                 38   0.1%           18          306            6          0          0
  L12.u5.d42     loop@L11                 38   0.1%           10           80            6          0          0
  L11.u4.d35     loop@L11                 37   0.1%           22          534           11          0          0
  L11.u5.d4      loop@L11                 37   0.1%           18          312            5          0          0
  L11.u5.d15     loop@L11                 37   0.1%           18          280            6          0          0
  L11.u4.d57     loop@L11                 36   0.1%           36          438           10          0          0
  L11.u5.d39     loop@L11                 36   0.1%           20          258            5          0          0
  L11.u5.d26     loop@L11                 35   0.1%           18          298            3          0          0
  L11.u5         loop@L11                 34   0.1%           16          232            5          0          0
  L11.u5.d57     loop@L11                 34   0.1%           18          212            6          0          0
  L18.u1.d33     loop@L11                 34   0.1%           38         1073            0          0          0
  L11.u5.d58     loop@L11                 33   0.1%           18          226            5          0          0
  L11.u5.d23     loop@L11                 32   0.1%           18          198            5          0          0
  L11.u5.d35     loop@L11                 31   0.1%           18          222            3          0          0
  L18.u1.d2      loop@L11                 30   0.1%           33          935            0          0          0
  L11.u5.d3      loop@L11                 26   0.1%           16          112            2          0          0
  L11.u5.d33     loop@L11                 24   0.0%           20          376            4          0          0
  L11.u5.d8      loop@L11                 23   0.0%           18          314            7          0          0
  L11.u5.d27     loop@L11                 23   0.0%           18          314            7          0          0
  L11.u5.d43     loop@L11                 23   0.0%           18          308            7          0          0
  L11.u5.d54     loop@L11                 23   0.0%           18          312            7          0          0
  L12.u5.d2      loop@L11                 23   0.0%           10           78            7          0          0
  L18.u5.d48     loop@L11                 23   0.0%           10          188            0          0          0
  L18.u5.d7      loop@L11                 22   0.0%            9          156            0          0          0
  L18.u5.d56     loop@L11                 22   0.0%            9          157            0          0          0
  L11.u5.d34     loop@L11                 21   0.0%           18          314            4          0          0
  L11.u5.d46     loop@L11                 21   0.0%           18          276            6          0          0
  L18.u5.d29     loop@L11                 21   0.0%            9          149            0          0          0
  L11.u5.d11     loop@L11                 20   0.0%           18          312            3          0          0
  L11.u5.d49     loop@L11                 20   0.0%           18          314            3          0          0
  L18.u5.d32     loop@L11                 20   0.0%            8          116            0          0          0
  L11.u5.d51     loop@L11                 19   0.0%           18          244            6          0          0
  L18.u5.d10     loop@L11                 19   0.0%            8           56            0          0          0
  L18.u5.d53     loop@L11                 19   0.0%            8           54            0          0          0
  L18.u2.d34     loop@L11                 18   0.0%           23          553            0          0          0
  L18.u5.d45     loop@L11                 18   0.0%            5           40            0          0          0
  L18.u2.d18     loop@L11                 17   0.0%           22          517            0          0          0
  L18.u2.d49     loop@L11                 16   0.0%           21          489            0          0          0
  L11.u5.d30     loop@L11                 15   0.0%           12          198            4          0          0
  L11.u5.d5      loop@L11                 14   0.0%           16          158            4          0          0
  L11.u5.d18     loop@L11                 14   0.0%           16          152            5          0          0
  L18.u2.d3      loop@L11                 14   0.0%           14          448            0          0          0
  L11.u5.d50     loop@L11                 12   0.0%           16          108            4          0          0
  L18.u3.d19     loop@L11                 11   0.0%           12          342            0          0          0
  L18.u3.d11     loop@L11                 10   0.0%           12          308            0          0          0
  L18.u3.d26     loop@L11                 10   0.0%           11          306            0          0          0
  L18.u3.d35     loop@L11                  9   0.0%           11          267            0          0          0
  L18.u3.d57     loop@L11                  9   0.0%           18          219            0          0          0
  L11.u5.d2      loop@L11                  8   0.0%           10           78            3          0          0
  L18.u3.d4      loop@L11                  8   0.0%           11          235            0          0          0
  L11.u5.d42     loop@L11                  7   0.0%           10           80            2          0          0
  L18.u3.d42     loop@L11                  7   0.0%           10          194            0          0          0
  L18.u3.d50     loop@L11                  7   0.0%           17          176            0          0          0
  L18.u5.d22     loop@L11                  7   0.0%           10          189            0          0          0
  L18.u4.d8      loop@L11                  6   0.0%            9          157            0          0          0
  L18.u4.d12     loop@L11                  6   0.0%           10          152            0          0          0
  L18.u4.d27     loop@L11                  6   0.0%            9          157            0          0          0
  L18.u4.d36     loop@L11                  6   0.0%            9          156            0          0          0
  L18.u4.d54     loop@L11                  6   0.0%            9          156            0          0          0
  L18.u4.d61     loop@L11                  6   0.0%           10          169            0          0          0
  L18.u5.d9      loop@L11                  6   0.0%            9          157            0          0          0
  L18.u5.d13     loop@L11                  6   0.0%           10          152            0          0          0
  L18.u5.d14     loop@L11                  6   0.0%            9          156            0          0          0
  L18.u5.d28     loop@L11                  6   0.0%            9          157            0          0          0
  L18.u5.d37     loop@L11                  6   0.0%            9          156            0          0          0
  L18.u5.d41     loop@L11                  6   0.0%            9          157            0          0          0
  L18.u5.d55     loop@L11                  6   0.0%            9          156            0          0          0
  L18.u5.d62     loop@L11                  6   0.0%           10          169            0          0          0
  L18.u5.d63     loop@L11                  6   0.0%           10          166            0          0          0
  L18.u4.d15     loop@L11                  5   0.0%            9          140            0          0          0
  L18.u4.d20     loop@L11                  5   0.0%            9          153            0          0          0
  L18.u4.d39     loop@L11                  5   0.0%           10          129            0          0          0
  L18.u4.d43     loop@L11                  5   0.0%            9          154            0          0          0
  L18.u4.d46     loop@L11                  5   0.0%            9          138            0          0          0
  L18.u4.d51     loop@L11                  5   0.0%            9          122            0          0          0
  L18.u5.d16     loop@L11                  5   0.0%            9          140            0          0          0
  L18.u5.d21     loop@L11                  5   0.0%            9          153            0          0          0
  L18.u5.d40     loop@L11                  5   0.0%           10          129            0          0          0
  L18.u5.d44     loop@L11                  5   0.0%            9          154            0          0          0
  L18.u5.d47     loop@L11                  5   0.0%            9          138            0          0          0
  L18.u5.d52     loop@L11                  5   0.0%            9          122            0          0          0
  L18.u4.d5      loop@L11                  4   0.0%            8           79            1          0          0
  L18.u4.d23     loop@L11                  4   0.0%            9           99            0          0          0
  L18.u4.d30     loop@L11                  4   0.0%            6           99            0          0          0
  L18.u4.d58     loop@L11                  4   0.0%            9          113            0          0          0
  L18.u5.d24     loop@L11                  4   0.0%            9           99            0          0          0
  L18.u5.d31     loop@L11                  4   0.0%            6           99            0          0          0
  L18.u5.d38     loop@L11                  4   0.0%            9          111            0          0          0
  L18.u5.d59     loop@L11                  4   0.0%            9          113            0          0          0
  L18.u5.d60     loop@L11                  4   0.0%            9          106            0          0          0
  L18.u5.d6      loop@L11                  3   0.0%            8           79            0          0          0
  L18.u5.d25     loop@L11                  3   0.0%            8           76            0          0          0
  L18.u5.d17     loop@L11                  2   0.0%            5           39            0          0          0

heuristic (C=1024) vs measured — xsbench (total 50732 cycles):
  loop       selected   u  paths   size   f(p,s,u)  self_cycles   self%  note
  L11        yes        6      2     12        756        38974   76.8%  -
  -> hottest loop loop@L11: 38974 self cycles (76.8%) — the heuristic selected the hottest loop

xsbench;? 268
xsbench;L10 103
xsbench;L11 128
xsbench;L20 313
xsbench;L21 373
xsbench;L22 2722
xsbench;L23 3589
xsbench;L3 517
xsbench;L4 270
xsbench;L5 1748
xsbench;L6 193
xsbench;L7 1237
xsbench;L8 143
xsbench;L9 154
xsbench;loop@L11;? 302
xsbench;loop@L11;L10 513
xsbench;loop@L11;L11 760
xsbench;loop@L11;L11.u1 262
xsbench;loop@L11;L11.u1.d1 257
xsbench;loop@L11;L11.u2 138
xsbench;loop@L11;L11.u2.d1 137
xsbench;loop@L11;L11.u2.d2 140
xsbench;loop@L11;L11.u2.d33 144
xsbench;loop@L11;L11.u3 81
xsbench;loop@L11;L11.u3.d1 82
xsbench;loop@L11;L11.u3.d18 87
xsbench;loop@L11;L11.u3.d2 74
xsbench;loop@L11;L11.u3.d3 58
xsbench;loop@L11;L11.u3.d33 78
xsbench;loop@L11;L11.u3.d34 91
xsbench;loop@L11;L11.u3.d49 68
xsbench;loop@L11;L11.u4 46
xsbench;loop@L11;L11.u4.d1 56
xsbench;loop@L11;L11.u4.d11 42
xsbench;loop@L11;L11.u4.d18 45
xsbench;loop@L11;L11.u4.d19 45
xsbench;loop@L11;L11.u4.d2 42
xsbench;loop@L11;L11.u4.d26 56
xsbench;loop@L11;L11.u4.d3 42
xsbench;loop@L11;L11.u4.d33 53
xsbench;loop@L11;L11.u4.d34 51
xsbench;loop@L11;L11.u4.d35 37
xsbench;loop@L11;L11.u4.d4 49
xsbench;loop@L11;L11.u4.d42 43
xsbench;loop@L11;L11.u4.d49 52
xsbench;loop@L11;L11.u4.d50 46
xsbench;loop@L11;L11.u4.d57 36
xsbench;loop@L11;L11.u5 34
xsbench;loop@L11;L11.u5.d1 38
xsbench;loop@L11;L11.u5.d11 20
xsbench;loop@L11;L11.u5.d12 38
xsbench;loop@L11;L11.u5.d15 37
xsbench;loop@L11;L11.u5.d18 14
xsbench;loop@L11;L11.u5.d19 40
xsbench;loop@L11;L11.u5.d2 8
xsbench;loop@L11;L11.u5.d20 38
xsbench;loop@L11;L11.u5.d23 32
xsbench;loop@L11;L11.u5.d26 35
xsbench;loop@L11;L11.u5.d27 23
xsbench;loop@L11;L11.u5.d3 26
xsbench;loop@L11;L11.u5.d30 15
xsbench;loop@L11;L11.u5.d33 24
xsbench;loop@L11;L11.u5.d34 21
xsbench;loop@L11;L11.u5.d35 31
xsbench;loop@L11;L11.u5.d36 39
xsbench;loop@L11;L11.u5.d39 36
xsbench;loop@L11;L11.u5.d4 37
xsbench;loop@L11;L11.u5.d42 7
xsbench;loop@L11;L11.u5.d43 23
xsbench;loop@L11;L11.u5.d46 21
xsbench;loop@L11;L11.u5.d49 20
xsbench;loop@L11;L11.u5.d5 14
xsbench;loop@L11;L11.u5.d50 12
xsbench;loop@L11;L11.u5.d51 19
xsbench;loop@L11;L11.u5.d54 23
xsbench;loop@L11;L11.u5.d57 34
xsbench;loop@L11;L11.u5.d58 33
xsbench;loop@L11;L11.u5.d61 41
xsbench;loop@L11;L11.u5.d8 23
xsbench;loop@L11;L12 1521
xsbench;loop@L11;L12.u1 763
xsbench;loop@L11;L12.u1.d1 793
xsbench;loop@L11;L12.u2 411
xsbench;loop@L11;L12.u2.d1 399
xsbench;loop@L11;L12.u2.d2 357
xsbench;loop@L11;L12.u2.d33 427
xsbench;loop@L11;L12.u3 221
xsbench;loop@L11;L12.u3.d1 218
xsbench;loop@L11;L12.u3.d18 205
xsbench;loop@L11;L12.u3.d2 189
xsbench;loop@L11;L12.u3.d3 183
xsbench;loop@L11;L12.u3.d33 219
xsbench;loop@L11;L12.u3.d34 218
xsbench;loop@L11;L12.u3.d49 211
xsbench;loop@L11;L12.u4 93
xsbench;loop@L11;L12.u4.d1 147
xsbench;loop@L11;L12.u4.d11 136
xsbench;loop@L11;L12.u4.d18 104
xsbench;loop@L11;L12.u4.d19 146
xsbench;loop@L11;L12.u4.d2 99
xsbench;loop@L11;L12.u4.d26 118
xsbench;loop@L11;L12.u4.d3 85
xsbench;loop@L11;L12.u4.d33 125
xsbench;loop@L11;L12.u4.d34 127
xsbench;loop@L11;L12.u4.d35 121
xsbench;loop@L11;L12.u4.d4 96
xsbench;loop@L11;L12.u4.d42 81
xsbench;loop@L11;L12.u4.d49 119
xsbench;loop@L11;L12.u4.d50 88
xsbench;loop@L11;L12.u4.d57 119
xsbench;loop@L11;L12.u5 69
xsbench;loop@L11;L12.u5.d1 86
xsbench;loop@L11;L12.u5.d11 65
xsbench;loop@L11;L12.u5.d12 67
xsbench;loop@L11;L12.u5.d15 62
xsbench;loop@L11;L12.u5.d18 41
xsbench;loop@L11;L12.u5.d19 77
xsbench;loop@L11;L12.u5.d2 23
xsbench;loop@L11;L12.u5.d20 66
xsbench;loop@L11;L12.u5.d23 48
xsbench;loop@L11;L12.u5.d26 79
xsbench;loop@L11;L12.u5.d27 82
xsbench;loop@L11;L12.u5.d3 48
xsbench;loop@L11;L12.u5.d30 59
xsbench;loop@L11;L12.u5.d33 93
xsbench;loop@L11;L12.u5.d34 65
xsbench;loop@L11;L12.u5.d35 51
xsbench;loop@L11;L12.u5.d36 66
xsbench;loop@L11;L12.u5.d39 59
xsbench;loop@L11;L12.u5.d4 82
xsbench;loop@L11;L12.u5.d42 38
xsbench;loop@L11;L12.u5.d43 82
xsbench;loop@L11;L12.u5.d46 76
xsbench;loop@L11;L12.u5.d49 81
xsbench;loop@L11;L12.u5.d5 56
xsbench;loop@L11;L12.u5.d50 49
xsbench;loop@L11;L12.u5.d51 72
xsbench;loop@L11;L12.u5.d54 82
xsbench;loop@L11;L12.u5.d57 52
xsbench;loop@L11;L12.u5.d58 53
xsbench;loop@L11;L12.u5.d61 72
xsbench;loop@L11;L12.u5.d8 82
xsbench;loop@L11;L13 3518
xsbench;loop@L11;L13.u1 1706
xsbench;loop@L11;L13.u1.d1 1842
xsbench;loop@L11;L13.u2 906
xsbench;loop@L11;L13.u2.d1 934
xsbench;loop@L11;L13.u2.d2 831
xsbench;loop@L11;L13.u2.d33 937
xsbench;loop@L11;L13.u3 468
xsbench;loop@L11;L13.u3.d1 517
xsbench;loop@L11;L13.u3.d18 481
xsbench;loop@L11;L13.u3.d2 447
xsbench;loop@L11;L13.u3.d3 381
xsbench;loop@L11;L13.u3.d33 468
xsbench;loop@L11;L13.u3.d34 511
xsbench;loop@L11;L13.u3.d49 442
xsbench;loop@L11;L13.u4 225
xsbench;loop@L11;L13.u4.d1 303
xsbench;loop@L11;L13.u4.d11 273
xsbench;loop@L11;L13.u4.d18 199
xsbench;loop@L11;L13.u4.d19 296
xsbench;loop@L11;L13.u4.d2 188
xsbench;loop@L11;L13.u4.d26 283
xsbench;loop@L11;L13.u4.d3 211
xsbench;loop@L11;L13.u4.d33 302
xsbench;loop@L11;L13.u4.d34 257
xsbench;loop@L11;L13.u4.d35 240
xsbench;loop@L11;L13.u4.d4 233
xsbench;loop@L11;L13.u4.d42 198
xsbench;loop@L11;L13.u4.d49 288
xsbench;loop@L11;L13.u4.d50 214
xsbench;loop@L11;L13.u4.d57 234
xsbench;loop@L11;L13.u5 106
xsbench;loop@L11;L13.u5.d1 161
xsbench;loop@L11;L13.u5.d11 153
xsbench;loop@L11;L13.u5.d12 153
xsbench;loop@L11;L13.u5.d15 141
xsbench;loop@L11;L13.u5.d18 95
xsbench;loop@L11;L13.u5.d19 176
xsbench;loop@L11;L13.u5.d2 61
xsbench;loop@L11;L13.u5.d20 150
xsbench;loop@L11;L13.u5.d23 113
xsbench;loop@L11;L13.u5.d26 130
xsbench;loop@L11;L13.u5.d27 137
xsbench;loop@L11;L13.u5.d3 66
xsbench;loop@L11;L13.u5.d30 88
xsbench;loop@L11;L13.u5.d33 160
xsbench;loop@L11;L13.u5.d34 153
xsbench;loop@L11;L13.u5.d35 123
xsbench;loop@L11;L13.u5.d36 153
xsbench;loop@L11;L13.u5.d39 137
xsbench;loop@L11;L13.u5.d4 137
xsbench;loop@L11;L13.u5.d42 45
xsbench;loop@L11;L13.u5.d43 136
xsbench;loop@L11;L13.u5.d46 124
xsbench;loop@L11;L13.u5.d49 137
xsbench;loop@L11;L13.u5.d5 81
xsbench;loop@L11;L13.u5.d50 65
xsbench;loop@L11;L13.u5.d51 113
xsbench;loop@L11;L13.u5.d54 137
xsbench;loop@L11;L13.u5.d57 119
xsbench;loop@L11;L13.u5.d58 123
xsbench;loop@L11;L13.u5.d61 165
xsbench;loop@L11;L13.u5.d8 137
xsbench;loop@L11;L18 62
xsbench;loop@L11;L18.u1.d2 30
xsbench;loop@L11;L18.u1.d33 34
xsbench;loop@L11;L18.u2.d18 17
xsbench;loop@L11;L18.u2.d3 14
xsbench;loop@L11;L18.u2.d34 18
xsbench;loop@L11;L18.u2.d49 16
xsbench;loop@L11;L18.u3.d11 10
xsbench;loop@L11;L18.u3.d19 11
xsbench;loop@L11;L18.u3.d26 10
xsbench;loop@L11;L18.u3.d35 9
xsbench;loop@L11;L18.u3.d4 8
xsbench;loop@L11;L18.u3.d42 7
xsbench;loop@L11;L18.u3.d50 7
xsbench;loop@L11;L18.u3.d57 9
xsbench;loop@L11;L18.u4.d12 6
xsbench;loop@L11;L18.u4.d15 5
xsbench;loop@L11;L18.u4.d20 5
xsbench;loop@L11;L18.u4.d23 4
xsbench;loop@L11;L18.u4.d27 6
xsbench;loop@L11;L18.u4.d30 4
xsbench;loop@L11;L18.u4.d36 6
xsbench;loop@L11;L18.u4.d39 5
xsbench;loop@L11;L18.u4.d43 5
xsbench;loop@L11;L18.u4.d46 5
xsbench;loop@L11;L18.u4.d5 4
xsbench;loop@L11;L18.u4.d51 5
xsbench;loop@L11;L18.u4.d54 6
xsbench;loop@L11;L18.u4.d58 4
xsbench;loop@L11;L18.u4.d61 6
xsbench;loop@L11;L18.u4.d8 6
xsbench;loop@L11;L18.u5.d10 19
xsbench;loop@L11;L18.u5.d13 6
xsbench;loop@L11;L18.u5.d14 6
xsbench;loop@L11;L18.u5.d16 5
xsbench;loop@L11;L18.u5.d17 2
xsbench;loop@L11;L18.u5.d21 5
xsbench;loop@L11;L18.u5.d22 7
xsbench;loop@L11;L18.u5.d24 4
xsbench;loop@L11;L18.u5.d25 3
xsbench;loop@L11;L18.u5.d28 6
xsbench;loop@L11;L18.u5.d29 21
xsbench;loop@L11;L18.u5.d31 4
xsbench;loop@L11;L18.u5.d32 20
xsbench;loop@L11;L18.u5.d37 6
xsbench;loop@L11;L18.u5.d38 4
xsbench;loop@L11;L18.u5.d40 5
xsbench;loop@L11;L18.u5.d41 6
xsbench;loop@L11;L18.u5.d44 5
xsbench;loop@L11;L18.u5.d45 18
xsbench;loop@L11;L18.u5.d47 5
xsbench;loop@L11;L18.u5.d48 23
xsbench;loop@L11;L18.u5.d52 5
xsbench;loop@L11;L18.u5.d53 19
xsbench;loop@L11;L18.u5.d55 6
xsbench;loop@L11;L18.u5.d56 22
xsbench;loop@L11;L18.u5.d59 4
xsbench;loop@L11;L18.u5.d6 3
xsbench;loop@L11;L18.u5.d60 4
xsbench;loop@L11;L18.u5.d62 6
xsbench;loop@L11;L18.u5.d63 6
xsbench;loop@L11;L18.u5.d7 22
xsbench;loop@L11;L18.u5.d9 6
xsbench;loop@L11;L8 461
xsbench;loop@L11;L9 487
