kernel cpx: 75661 cycles (issue 61455, dep_stall 14029, fetch_stall 176)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L10              1        67875   89.7%        67875          778            0

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L11            loop@L10               8457  11.2%         4878       155649         1952        768          0
  L10            loop@L10               6841   9.0%         3422       109228         1719          7          0
  L9             loop@L10               4224   5.6%         4440        92844         1080          0          0
  L10.u1.d1      loop@L10               4021   5.3%         2568        57344         1144          3          0
  L8             loop@L10               3868   5.1%         4440        92844          738          0          0
  L10.u1         loop@L10               3286   4.3%         2220        46422          939          0          0
  ?              loop@L10               3130   4.1%         2220        46422            0          0          0
  L13            loop@L10               2480   3.3%         2568        57344          572          0          0
  L15.d1         loop@L10               2480   3.3%         2568        57344          572          0          0
  L3             -                      2270   3.0%         1792        57344          462          0          0
  L11.u1         loop@L10               2222   2.9%         2220        46422          641          0          0
  L11.u1.d1      loop@L10               2222   2.9%         2220        46422          641          0          0
  L15            loop@L10               2205   2.9%         2220        46422          640          0          0
  L13.u1         loop@L10               2035   2.7%         2220        46422          469          0          0
  L13.u1.d1      loop@L10               2035   2.7%         2220        46422          470          0          0
  L15.u1.d3      loop@L10               2035   2.7%         2220        46422          469          0          0
  L15.u1         loop@L10               2034   2.7%         2220        46422          469          0          0
  L3             loop@L10               1652   2.2%         2220        46422           72          0          0
  L7             loop@L10               1648   2.2%         2220        46422           84          0          0
  L6             loop@L10               1643   2.2%         2220        46422           78          0          0
  ?              -                      1540   2.0%          781        24576            0          0          0
  L19            -                      1344   1.8%         1024        32768          320          0       2048
  L4             -                      1076   1.4%          512        16384          308          0          0
  L12            loop@L10                970   1.3%         1284        28672            0          0          0
  L16.d1         loop@L10                954   1.3%         1284        28672            0          0          0
  L17.d1         loop@L10                954   1.3%         1284        28672            0          0          0
  L16            loop@L10                879   1.2%         1110        23211           81          0          0
  L17            loop@L10                860   1.1%         1110        23211           78          0          0
  L12.u1.d1      loop@L10                801   1.1%         1110        23211           18          0          0
  L16.u1.d3      loop@L10                798   1.1%         1110        23211            0          0          0
  L12.u1         loop@L10                795   1.1%         1110        23211           12          0          0
  L16.u1         loop@L10                782   1.0%         1110        23211            0          0          0
  L17.u1         loop@L10                782   1.0%         1110        23211            0          0          0
  L17.u1.d3      loop@L10                782   1.0%         1110        23211            0          0          0
  L9             -                       530   0.7%          525        16384            0          0          0
  L8             -                       514   0.7%          525        16384            0          0          0
  L6             -                       256   0.3%          256         8192            0          0          0
  L7             -                       256   0.3%          256         8192            0          0          0

cpx;? 1540
cpx;L19 1344
cpx;L3 2270
cpx;L4 1076
cpx;L6 256
cpx;L7 256
cpx;L8 514
cpx;L9 530
cpx;loop@L10;? 3130
cpx;loop@L10;L10 6841
cpx;loop@L10;L10.u1 3286
cpx;loop@L10;L10.u1.d1 4021
cpx;loop@L10;L11 8457
cpx;loop@L10;L11.u1 2222
cpx;loop@L10;L11.u1.d1 2222
cpx;loop@L10;L12 970
cpx;loop@L10;L12.u1 795
cpx;loop@L10;L12.u1.d1 801
cpx;loop@L10;L13 2480
cpx;loop@L10;L13.u1 2035
cpx;loop@L10;L13.u1.d1 2035
cpx;loop@L10;L15 2205
cpx;loop@L10;L15.d1 2480
cpx;loop@L10;L15.u1 2034
cpx;loop@L10;L15.u1.d3 2035
cpx;loop@L10;L16 879
cpx;loop@L10;L16.d1 954
cpx;loop@L10;L16.u1 782
cpx;loop@L10;L16.u1.d3 798
cpx;loop@L10;L17 860
cpx;loop@L10;L17.d1 954
cpx;loop@L10;L17.u1 782
cpx;loop@L10;L17.u1.d3 782
cpx;loop@L10;L3 1652
cpx;loop@L10;L6 1643
cpx;loop@L10;L7 1648
cpx;loop@L10;L8 3868
cpx;loop@L10;L9 4224
