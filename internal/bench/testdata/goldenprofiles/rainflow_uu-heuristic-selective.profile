kernel rainflow: 162958 cycles (issue 62947, dep_stall 99661, fetch_stall 352)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L7               1       161386   99.0%       161386          516       187891

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L8             loop@L7               35406  21.7%        12032       385024        21853        168      96256
  L9             loop@L7               16787  10.3%         4992       149832        11239         20      24972
  L15            loop@L7               15895   9.8%         5040       138936        10675        160      23156
  L9.u1          loop@L7               13434   8.2%         4032       119010         9008          8      19835
  L15.u1.d2      loop@L7               12363   7.6%         4080       106680         8326        160      17780
  L8.u1          loop@L7               10404   6.4%         2016        59505         7877          0      19835
  L8.u1.d2       loop@L7                9603   5.9%         2040        53340         7290          0      17780
  L14            loop@L7                9207   5.6%         1680        46312         6968          0          0
  L14.u1.d2      loop@L7                8023   4.9%         1360        35560         6300          0          0
  L7             loop@L7                7674   4.7%         5092       146432         1485          0          0
  L9.u1.d1       loop@L7                4571   2.8%         1920        32256         3219          0       5376
  L15.u1.d11     loop@L7                3464   2.1%         1080        30822         2304          0       5137
  ?              loop@L7                2423   1.5%         1500        37137            0          0          0
  L7.u1          loop@L7                2261   1.4%         1344        39670          377          0          0
  L7.u1.d2       loop@L7                2068   1.3%         1360        35560          345          0          0
  L11.u1         loop@L7                 942   0.6%          600        18381          347          0       6127
  L17            loop@L7                 931   0.6%          960        16128          343          0       5376
  L17.u1.d2      loop@L7                 849   0.5%          960        14592          319          0       4864
  L11            loop@L7                 801   0.5%          540        15411          294          0       5137
  L8.u1.d11      loop@L7                 785   0.5%          360        10274          279          0          0
  L5             loop@L7                 725   0.4%         1020        21504            1          0          0
  L7.u1.d1       loop@L7                 687   0.4%          640        10752          114          0          0
  L6             -                       660   0.4%          192         6144          452          0       2048
  L7.u1.d11      loop@L7                 588   0.4%          360        10274           98          0          0
  L7.u1.d20      loop@L7                 385   0.2%          200         6127            0          0          0
  L7.u1.d3       loop@L7                 354   0.2%          320         4864            0          0          0
  L3             -                       265   0.2%          192         6144           58          0          0
  L7             -                       236   0.1%          160         5120           28          0          0
  L16            loop@L7                 207   0.1%          320         5376            0          0          0
  L10.u1         loop@L7                 193   0.1%          200         6127            0          0          0
  L16.u1.d2      loop@L7                 193   0.1%          320         4864            0          0          0
  L22            -                       168   0.1%          128         4096           40          0        256
  L10            loop@L7                 163   0.1%          180         5137            0          0          0
  ?              -                       128   0.1%           64         2048            0          0          0
  L5             -                        64   0.0%           64         2048            0          0          0
  L4             -                        51   0.0%           32         1024           19          0          0

heuristic (C=1024) vs measured — rainflow (total 162958 cycles):
  loop       selected   u  paths   size   f(p,s,u)  self_cycles   self%  note
  L7         yes        2      5     47        282       161386   99.0%  -
  -> hottest loop loop@L7: 161386 self cycles (99.0%) — the heuristic selected the hottest loop

rainflow;? 128
rainflow;L22 168
rainflow;L3 265
rainflow;L4 51
rainflow;L5 64
rainflow;L6 660
rainflow;L7 236
rainflow;loop@L7;? 2423
rainflow;loop@L7;L10 163
rainflow;loop@L7;L10.u1 193
rainflow;loop@L7;L11 801
rainflow;loop@L7;L11.u1 942
rainflow;loop@L7;L14 9207
rainflow;loop@L7;L14.u1.d2 8023
rainflow;loop@L7;L15 15895
rainflow;loop@L7;L15.u1.d11 3464
rainflow;loop@L7;L15.u1.d2 12363
rainflow;loop@L7;L16 207
rainflow;loop@L7;L16.u1.d2 193
rainflow;loop@L7;L17 931
rainflow;loop@L7;L17.u1.d2 849
rainflow;loop@L7;L5 725
rainflow;loop@L7;L7 7674
rainflow;loop@L7;L7.u1 2261
rainflow;loop@L7;L7.u1.d1 687
rainflow;loop@L7;L7.u1.d11 588
rainflow;loop@L7;L7.u1.d2 2068
rainflow;loop@L7;L7.u1.d20 385
rainflow;loop@L7;L7.u1.d3 354
rainflow;loop@L7;L8 35406
rainflow;loop@L7;L8.u1 10404
rainflow;loop@L7;L8.u1.d11 785
rainflow;loop@L7;L8.u1.d2 9603
rainflow;loop@L7;L9 16787
rainflow;loop@L7;L9.u1 13434
rainflow;loop@L7;L9.u1.d1 4571
