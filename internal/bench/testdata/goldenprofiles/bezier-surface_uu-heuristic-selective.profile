kernel bezier: 100694 cycles (issue 79776, dep_stall 20374, fetch_stall 544)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L12              2        83180   82.6%        83180            0            0
  loop@L7               1        16051   15.9%        99231            0            0

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L12            loop@L12               5577   5.5%         2816        90112         1353          0          0
  L15            loop@L12               5071   5.0%         2816        90112          847          0          0
  L11            loop@L12               4555   4.5%         1856        59392         2701          0          0
  L16            loop@L12               4379   4.3%         1152        36864          347          0          0
  L13            loop@L12               3678   3.7%         2816        90112          846          0          0
  L24            loop@L7                3536   3.5%         1408        45056         1056          0          0
  L25            loop@L7                3520   3.5%         1408        45056         1056          0          0
  L7             loop@L7                3114   3.1%         1824        58368          522          0          0
  L19            loop@L12               2997   3.0%         1664        53248          501          0          0
  L20            loop@L12               2464   2.4%          640        20480          192          0          0
  L20.d1         loop@L12               2387   2.4%          512        16384          563          0          0
  L16.u1.d1      loop@L12               2205   2.2%          576        18432          173          0          0
  L20.u1.d2      loop@L12               2205   2.2%          576        18432          173          0          0
  L16.u2.d34     loop@L12               2189   2.2%          576        18432          173          0          0
  L20.u2.d19     loop@L12               2189   2.2%          576        18432          173          0          0
  ?              loop@L12               2128   2.1%         1056        33792            0          0          0
  L19.d1         loop@L12               2075   2.1%         1152        36864          347          0          0
  L11            loop@L7                1863   1.9%         1408        45056          423          0          0
  L12.u1         loop@L12               1844   1.8%         1024        32768          308          0          0
  L20.u1.d49     loop@L12               1488   1.5%          320        10240          352          0          0
  L16.u1.d33     loop@L12               1460   1.4%          384        12288          116          0          0
  L14            loop@L12               1408   1.4%         1408        45056            0          0          0
  L10            loop@L12               1350   1.3%         1056        33792          276          0          0
  L13.u1.d2      loop@L12               1346   1.3%          640        20480          706          0          0
  L20.u2.d61     loop@L12               1233   1.2%          256         8192          321          0          0
  L13.u2.d34     loop@L12               1226   1.2%          576        18432          634          0          0
  L13.u2.d19     loop@L12               1210   1.2%          576        18432          634          0          0
  L13.u1.d1      loop@L12               1208   1.2%          640        20480          568          0          0
  L12.u1.d1      loop@L12               1168   1.2%          640        20480          192          0          0
  L8             loop@L12               1166   1.2%         1056        33792           93          0          0
  L12.u1.d2      loop@L12               1153   1.1%          640        20480          193          0          0
  L15.u1.d1      loop@L12               1153   1.1%          640        20480          193          0          0
  L19.u1.d2      loop@L12               1153   1.1%          640        20480          193          0          0
  L9             loop@L12               1093   1.1%          896        28672          180          0          0
  L13.u1.d33     loop@L12               1077   1.1%          512        16384          565          0          0
  L12.u2.d19     loop@L12               1037   1.0%          576        18432          173          0          0
  L12.u2.d34     loop@L12               1037   1.0%          576        18432          173          0          0
  L16.u2.d57     loop@L12                973   1.0%          256         8192           77          0          0
  L12.u1.d33     loop@L12                922   0.9%          512        16384          154          0          0
  L15.u1.d33     loop@L12                922   0.9%          512        16384          154          0          0
  L10            loop@L7                 873   0.9%          704        22528          169          0          0
  ?              loop@L7                 704   0.7%          352        11264            0          0          0
  L12            loop@L7                 704   0.7%          352        11264            0          0          0
  L19.u1.d49     loop@L12                692   0.7%          384        12288          116          0          0
  L13.u2.d57     loop@L12                673   0.7%          320        10240          353          0          0
  L12.u2.d3      loop@L12                672   0.7%          320        10240          193          0          0
  L25            -                       585   0.6%           32         1024          553          0          0
  L12.u2.d57     loop@L12                576   0.6%          320        10240           96          0          0
  L15.u2.d57     loop@L12                576   0.6%          320        10240           96          0          0
  L17            loop@L12                576   0.6%          576        18432            0          0          0
  L26            loop@L7                 564   0.6%          352        11264          212          0          0
  L6             loop@L7                 453   0.4%          352        11264          101          0          0
  L13.u2.d3      loop@L12                432   0.4%          320        10240          112          0          0
  L13.u1         loop@L12                416   0.4%          320        10240           96          0          0
  L9             loop@L7                 368   0.4%          352        11264            0          0          0
  L8             loop@L7                 352   0.3%          352        11264            0          0          0
  L14.u1.d2      loop@L12                336   0.3%          320        10240            0          0          0
  L14.u1.d1      loop@L12                320   0.3%          320        10240            0          0          0
  L21            loop@L12                320   0.3%          320        10240            0          0          0
  L19.u2.d19     loop@L12                304   0.3%          288         9216            0          0          0
  L21.u1.d2      loop@L12                304   0.3%          288         9216            0          0          0
  L14.u2.d19     loop@L12                288   0.3%          288         9216            0          0          0
  L14.u2.d34     loop@L12                288   0.3%          288         9216            0          0          0
  L15.u2.d34     loop@L12                288   0.3%          288         9216            0          0          0
  L17.u1.d1      loop@L12                288   0.3%          288         9216            0          0          0
  L17.u2.d34     loop@L12                288   0.3%          288         9216            0          0          0
  L21.u2.d19     loop@L12                288   0.3%          288         9216            0          0          0
  L14.u1.d33     loop@L12                272   0.3%          256         8192            0          0          0
  L3             -                       265   0.3%          192         6144           58          0          0
  L20.u1.d33     loop@L12                259   0.3%           64         2048           19          0          0
  L21.d1         loop@L12                256   0.3%          256         8192            0          0          0
  L16.u2.d49     loop@L12                243   0.2%           64         2048           19          0          0
  L20.u2.d50     loop@L12                243   0.2%           64         2048           19          0          0
  L20.u2.d57     loop@L12                243   0.2%           64         2048           19          0          0
  L19.u1.d33     loop@L12                231   0.2%          128         4096           39          0          0
  L17.u1.d33     loop@L12                208   0.2%          192         6144            0          0          0
  L14.u1         loop@L12                160   0.2%          160         5120            0          0          0
  L14.u2.d3      loop@L12                160   0.2%          160         5120            0          0          0
  L14.u2.d57     loop@L12                160   0.2%          160         5120            0          0          0
  L21.u1.d49     loop@L12                160   0.2%          160         5120            0          0          0
  L5             -                       153   0.2%           96         3072           42          0        256
  L13.u2.d50     loop@L12                149   0.1%           64         2048           69          0          0
  L12.u2.d1      loop@L12                136   0.1%           64         2048           24          0          0
  L13.u2.d49     loop@L12                135   0.1%           64         2048           55          0          0
  L4             -                       134   0.1%           64         2048           39          0          0
  L28            -                       134   0.1%           96         3072           39          0        256
  L17.u2.d57     loop@L12                128   0.1%          128         4096            0          0          0
  L19.u2.d61     loop@L12                128   0.1%          128         4096            0          0          0
  L21.u2.d61     loop@L12                128   0.1%          128         4096            0          0          0
  L12.u2.d2      loop@L12                120   0.1%           64         2048           25          0          0
  L12.u2.d33     loop@L12                115   0.1%           64         2048           19          0          0
  L12.u2.d49     loop@L12                115   0.1%           64         2048           19          0          0
  L12.u2.d50     loop@L12                115   0.1%           64         2048           19          0          0
  L13.u2.d33     loop@L12                 99   0.1%           64         2048           19          0          0
  L7             -                        96   0.1%           64         2048            0          0          0
  L13.u2.d1      loop@L12                 83   0.1%           64         2048           19          0          0
  L13.u2.d2      loop@L12                 83   0.1%           64         2048           19          0          0
  ?              -                        64   0.1%           32         1024            0          0          0
  L19.u2.d57     loop@L12                 48   0.0%           32         1024            0          0          0
  L6             -                        32   0.0%           32         1024            0          0          0
  L14.u2.d1      loop@L12                 32   0.0%           32         1024            0          0          0
  L14.u2.d2      loop@L12                 32   0.0%           32         1024            0          0          0
  L14.u2.d33     loop@L12                 32   0.0%           32         1024            0          0          0
  L14.u2.d49     loop@L12                 32   0.0%           32         1024            0          0          0
  L14.u2.d50     loop@L12                 32   0.0%           32         1024            0          0          0
  L15.u2.d49     loop@L12                 32   0.0%           32         1024            0          0          0
  L17.u2.d49     loop@L12                 32   0.0%           32         1024            0          0          0
  L19.u2.d50     loop@L12                 32   0.0%           32         1024            0          0          0
  L21.u1.d33     loop@L12                 32   0.0%           32         1024            0          0          0
  L21.u2.d50     loop@L12                 32   0.0%           32         1024            0          0          0
  L21.u2.d57     loop@L12                 32   0.0%           32         1024            0          0          0

heuristic (C=1024) vs measured — bezier (total 100694 cycles):
  loop       selected   u  paths   size   f(p,s,u)  self_cycles   self%  note
  L12        yes        3      4     20        420        83180   82.6%  -
  L7         no         -      -      -          -        16051   15.9%  skip:InnerLoopChosen
  -> hottest loop loop@L12: 83180 self cycles (82.6%) — the heuristic selected the hottest loop

bezier;? 64
bezier;L25 585
bezier;L28 134
bezier;L3 265
bezier;L4 134
bezier;L5 153
bezier;L6 32
bezier;L7 96
bezier;loop@L7;? 704
bezier;loop@L7;L10 873
bezier;loop@L7;L11 1863
bezier;loop@L7;L12 704
bezier;loop@L7;L24 3536
bezier;loop@L7;L25 3520
bezier;loop@L7;L26 564
bezier;loop@L7;L6 453
bezier;loop@L7;L7 3114
bezier;loop@L7;L8 352
bezier;loop@L7;L9 368
bezier;loop@L7;loop@L12;? 2128
bezier;loop@L7;loop@L12;L10 1350
bezier;loop@L7;loop@L12;L11 4555
bezier;loop@L7;loop@L12;L12 5577
bezier;loop@L7;loop@L12;L12.u1 1844
bezier;loop@L7;loop@L12;L12.u1.d1 1168
bezier;loop@L7;loop@L12;L12.u1.d2 1153
bezier;loop@L7;loop@L12;L12.u1.d33 922
bezier;loop@L7;loop@L12;L12.u2.d1 136
bezier;loop@L7;loop@L12;L12.u2.d19 1037
bezier;loop@L7;loop@L12;L12.u2.d2 120
bezier;loop@L7;loop@L12;L12.u2.d3 672
bezier;loop@L7;loop@L12;L12.u2.d33 115
bezier;loop@L7;loop@L12;L12.u2.d34 1037
bezier;loop@L7;loop@L12;L12.u2.d49 115
bezier;loop@L7;loop@L12;L12.u2.d50 115
bezier;loop@L7;loop@L12;L12.u2.d57 576
bezier;loop@L7;loop@L12;L13 3678
bezier;loop@L7;loop@L12;L13.u1 416
bezier;loop@L7;loop@L12;L13.u1.d1 1208
bezier;loop@L7;loop@L12;L13.u1.d2 1346
bezier;loop@L7;loop@L12;L13.u1.d33 1077
bezier;loop@L7;loop@L12;L13.u2.d1 83
bezier;loop@L7;loop@L12;L13.u2.d19 1210
bezier;loop@L7;loop@L12;L13.u2.d2 83
bezier;loop@L7;loop@L12;L13.u2.d3 432
bezier;loop@L7;loop@L12;L13.u2.d33 99
bezier;loop@L7;loop@L12;L13.u2.d34 1226
bezier;loop@L7;loop@L12;L13.u2.d49 135
bezier;loop@L7;loop@L12;L13.u2.d50 149
bezier;loop@L7;loop@L12;L13.u2.d57 673
bezier;loop@L7;loop@L12;L14 1408
bezier;loop@L7;loop@L12;L14.u1 160
bezier;loop@L7;loop@L12;L14.u1.d1 320
bezier;loop@L7;loop@L12;L14.u1.d2 336
bezier;loop@L7;loop@L12;L14.u1.d33 272
bezier;loop@L7;loop@L12;L14.u2.d1 32
bezier;loop@L7;loop@L12;L14.u2.d19 288
bezier;loop@L7;loop@L12;L14.u2.d2 32
bezier;loop@L7;loop@L12;L14.u2.d3 160
bezier;loop@L7;loop@L12;L14.u2.d33 32
bezier;loop@L7;loop@L12;L14.u2.d34 288
bezier;loop@L7;loop@L12;L14.u2.d49 32
bezier;loop@L7;loop@L12;L14.u2.d50 32
bezier;loop@L7;loop@L12;L14.u2.d57 160
bezier;loop@L7;loop@L12;L15 5071
bezier;loop@L7;loop@L12;L15.u1.d1 1153
bezier;loop@L7;loop@L12;L15.u1.d33 922
bezier;loop@L7;loop@L12;L15.u2.d34 288
bezier;loop@L7;loop@L12;L15.u2.d49 32
bezier;loop@L7;loop@L12;L15.u2.d57 576
bezier;loop@L7;loop@L12;L16 4379
bezier;loop@L7;loop@L12;L16.u1.d1 2205
bezier;loop@L7;loop@L12;L16.u1.d33 1460
bezier;loop@L7;loop@L12;L16.u2.d34 2189
bezier;loop@L7;loop@L12;L16.u2.d49 243
bezier;loop@L7;loop@L12;L16.u2.d57 973
bezier;loop@L7;loop@L12;L17 576
bezier;loop@L7;loop@L12;L17.u1.d1 288
bezier;loop@L7;loop@L12;L17.u1.d33 208
bezier;loop@L7;loop@L12;L17.u2.d34 288
bezier;loop@L7;loop@L12;L17.u2.d49 32
bezier;loop@L7;loop@L12;L17.u2.d57 128
bezier;loop@L7;loop@L12;L19 2997
bezier;loop@L7;loop@L12;L19.d1 2075
bezier;loop@L7;loop@L12;L19.u1.d2 1153
bezier;loop@L7;loop@L12;L19.u1.d33 231
bezier;loop@L7;loop@L12;L19.u1.d49 692
bezier;loop@L7;loop@L12;L19.u2.d19 304
bezier;loop@L7;loop@L12;L19.u2.d50 32
bezier;loop@L7;loop@L12;L19.u2.d57 48
bezier;loop@L7;loop@L12;L19.u2.d61 128
bezier;loop@L7;loop@L12;L20 2464
bezier;loop@L7;loop@L12;L20.d1 2387
bezier;loop@L7;loop@L12;L20.u1.d2 2205
bezier;loop@L7;loop@L12;L20.u1.d33 259
bezier;loop@L7;loop@L12;L20.u1.d49 1488
bezier;loop@L7;loop@L12;L20.u2.d19 2189
bezier;loop@L7;loop@L12;L20.u2.d50 243
bezier;loop@L7;loop@L12;L20.u2.d57 243
bezier;loop@L7;loop@L12;L20.u2.d61 1233
bezier;loop@L7;loop@L12;L21 320
bezier;loop@L7;loop@L12;L21.d1 256
bezier;loop@L7;loop@L12;L21.u1.d2 304
bezier;loop@L7;loop@L12;L21.u1.d33 32
bezier;loop@L7;loop@L12;L21.u1.d49 160
bezier;loop@L7;loop@L12;L21.u2.d19 288
bezier;loop@L7;loop@L12;L21.u2.d50 32
bezier;loop@L7;loop@L12;L21.u2.d57 32
bezier;loop@L7;loop@L12;L21.u2.d61 128
bezier;loop@L7;loop@L12;L8 1166
bezier;loop@L7;loop@L12;L9 1093
