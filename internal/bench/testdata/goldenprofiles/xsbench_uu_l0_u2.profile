kernel xsbench: 49470 cycles (issue 22751, dep_stall 26520, fetch_stall 192)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L11              1        37730   76.3%        37730          110            0

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L13            loop@L11              10501  21.2%         1920        61440         8182        109        478
  L13.u1         loop@L11               4956  10.0%          984        24612         4153          0        289
  L13.u1.d1      loop@L11               4942  10.0%          988        24512         4143          0        290
  L12            loop@L11               4562   9.2%          768        24576         1106          0          0
  L23            -                      3588   7.3%          832        26624         2737          0        791
  L22            -                      2720   5.5%          192         6144         2208          0          0
  L12.u1         loop@L11               2427   4.9%          492        12306          608          0          0
  L12.u1.d1      loop@L11               2390   4.8%          494        12256          575          0          0
  L5             -                      1748   3.5%          384        12288          452          0          0
  L11            loop@L11               1676   3.4%          898        28658          317          0          0
  L7             -                      1237   2.5%          192         6144          261          0          0
  L10            loop@L11               1190   2.4%          986        24562          391          0          0
  L9             loop@L11               1064   2.2%          986        24562          265          0          0
  L8             loop@L11               1002   2.0%          986        24562          202          0          0
  L11.u1         loop@L11                842   1.7%          492        12306          241          0          0
  ?              loop@L11                801   1.6%          493        12281            0          0          0
  L11.u1.d1      loop@L11                736   1.5%          494        12270          120          1          0
  L3             -                       517   1.0%          384        12288          116          0          0
  L21            -                       388   0.8%          256         8192          115          0        140
  L20            -                       293   0.6%          192         6144          100          0        139
  L4             -                       270   0.5%          128         4096           77          0          0
  ?              -                       257   0.5%          130         4096            0          0          0
  L18            loop@L11                225   0.5%          246         6153           24          0          0
  L18.u1.d3      loop@L11                216   0.4%          247         6128            0          0          0
  L18.u1.d2      loop@L11                200   0.4%          246         6153            0          0          0
  L6             -                       193   0.4%          128         4096           65          0          0
  L9             -                       154   0.3%          128         4096           26          0          0
  L8             -                       144   0.3%          130         4096            0          0          0
  L11            -                       128   0.3%           64         2048            0          0          0
  L10            -                       103   0.2%           64         2048           39          0          0

xsbench;? 257
xsbench;L10 103
xsbench;L11 128
xsbench;L20 293
xsbench;L21 388
xsbench;L22 2720
xsbench;L23 3588
xsbench;L3 517
xsbench;L4 270
xsbench;L5 1748
xsbench;L6 193
xsbench;L7 1237
xsbench;L8 144
xsbench;L9 154
xsbench;loop@L11;? 801
xsbench;loop@L11;L10 1190
xsbench;loop@L11;L11 1676
xsbench;loop@L11;L11.u1 842
xsbench;loop@L11;L11.u1.d1 736
xsbench;loop@L11;L12 4562
xsbench;loop@L11;L12.u1 2427
xsbench;loop@L11;L12.u1.d1 2390
xsbench;loop@L11;L13 10501
xsbench;loop@L11;L13.u1 4956
xsbench;loop@L11;L13.u1.d1 4942
xsbench;loop@L11;L18 225
xsbench;loop@L11;L18.u1.d2 200
xsbench;loop@L11;L18.u1.d3 216
xsbench;loop@L11;L8 1002
xsbench;loop@L11;L9 1064
