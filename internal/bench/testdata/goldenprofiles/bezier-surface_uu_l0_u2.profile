kernel bezier: 145176 cycles (issue 113728, dep_stall 31014, fetch_stall 432)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L12              2        70655   48.7%        70655            0            0
  loop@L12.u1.d9        2        48329   33.3%        48329            0            0
  loop@L7               1        14356    9.9%       143601            0            0
  loop@L12.u1.d2        2        10261    7.1%        10261            0            0
  loop@L12.u1           2            0    0.0%            0            0            0
  loop@L12.u1.d1        2            0    0.0%            0            0            0

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L20.u1.d9      loop@L12.u1.d9        10973   7.6%         2560        81920         1997          0          0
  L11            loop@L12              10027   6.9%         3840       122880         6187          0          0
  L20            loop@L12               8514   5.9%         2240        71680          674          0          0
  L12            loop@L12               8366   5.8%         4224       135168         2029          0          0
  L20.d1         loop@L12               7614   5.2%         1600        51200         2014          0          0
  L15            loop@L12               6915   4.8%         3840       122880         1155          0          0
  L11.u1.d9      loop@L12.u1.d9         6686   4.6%         2560        81920         4125          0          0
  L16            loop@L12               6081   4.2%         1600        51200          481          0          0
  L12.u1.d9      loop@L12.u1.d9         5577   3.8%         2816        90112         1353          0          0
  L13            loop@L12               5011   3.5%         3840       122880         1155          0          0
  L10            loop@L12               4959   3.4%         3840       122880         1102          0          0
  L16.u1.d9      loop@L12.u1.d9         4881   3.4%         1280        40960          385          0          0
  L15.u1.d9      loop@L12.u1.d9         4610   3.2%         2560        81920          770          0          0
  ?              loop@L12               3840   2.6%         1920        61440            0          0          0
  L13.u1.d9      loop@L12.u1.d9         3346   2.3%         2560        81920          770          0          0
  L10.u1.d9      loop@L12.u1.d9         3296   2.3%         2560        81920          735          0          0
  ?              loop@L12.u1.d9         2560   1.8%         1280        40960            0          0          0
  L20.u1.d2      loop@L12.u1.d2         2448   1.7%          640        20480          192          0          0
  L24            loop@L7                2162   1.5%          864        27648          594          0          0
  L14            loop@L12               1936   1.3%         1920        61440            0          0          0
  L8             loop@L12               1920   1.3%         1920        61440            0          0          0
  L25.d1         loop@L7                1744   1.2%          704        22528          480          0          0
  L11.u1.d2      loop@L12.u1.d2         1672   1.2%          640        20480         1031          0          0
  L24.u1.d9      loop@L7                1629   1.1%          640        20480          461          0          0
  L12.u1.d2      loop@L12.u1.d2         1395   1.0%          704        22528          338          0          0
  L25.u1.d13     loop@L7                1295   0.9%          512        16384          383          0          0
  L8.u1.d9       loop@L12.u1.d9         1280   0.9%         1280        40960            0          0          0
  L14.u1.d9      loop@L12.u1.d9         1280   0.9%         1280        40960            0          0          0
  L19.u1.d9      loop@L12.u1.d9         1280   0.9%         1280        40960            0          0          0
  L21.u1.d9      loop@L12.u1.d9         1280   0.9%         1280        40960            0          0          0
  L15.u1.d2      loop@L12.u1.d2         1153   0.8%          640        20480          193          0          0
  L19            loop@L12               1120   0.8%         1120        35840            0          0          0
  L21            loop@L12               1120   0.8%         1120        35840            0          0          0
  L7             loop@L7                 951   0.7%          544        17408          199          0          0
  L13.u1.d2      loop@L12.u1.d2          849   0.6%          640        20480          193          0          0
  L10.u1.d2      loop@L12.u1.d2          824   0.6%          640        20480          184          0          0
  L9             loop@L12                816   0.6%          800        25600            0          0          0
  L19.d1         loop@L12                816   0.6%          800        25600            0          0          0
  L17            loop@L12                800   0.6%          800        25600            0          0          0
  L21.d1         loop@L12                800   0.6%          800        25600            0          0          0
  ?              loop@L12.u1.d2          640   0.4%          320        10240            0          0          0
  L9.u1.d9       loop@L12.u1.d9          640   0.4%          640        20480            0          0          0
  L17.u1.d9      loop@L12.u1.d9          640   0.4%          640        20480            0          0          0
  L25.d1         -                       585   0.4%           32         1024          553          0          0
  L7.u1.d9       loop@L7                 538   0.4%          256         8192          154          0          0
  L6             loop@L7                 487   0.3%          320        10240          168          0          0
  L10            loop@L7                 476   0.3%          384        12288           92          0          0
  L24.u1.d2      loop@L7                 419   0.3%          160         5120          115          0          0
  L25            loop@L7                 419   0.3%          160         5120          115          0          0
  L12            loop@L7                 400   0.3%          192         6144            0          0          0
  L10.u1.d9      loop@L7                 361   0.2%          256         8192           73          0          0
  L25.u1.d6      loop@L7                 336   0.2%          128         4096           95          0          0
  ?              loop@L7                 320   0.2%          160         5120            0          0          0
  L8.u1.d2       loop@L12.u1.d2          320   0.2%          320        10240            0          0          0
  L14.u1.d2      loop@L12.u1.d2          320   0.2%          320        10240            0          0          0
  L19.u1.d2      loop@L12.u1.d2          320   0.2%          320        10240            0          0          0
  L21.u1.d2      loop@L12.u1.d2          320   0.2%          320        10240            0          0          0
  L3             -                       265   0.2%          192         6144           58          0          0
  L12.u1.d9      loop@L7                 256   0.2%          128         4096            0          0          0
  L26.d9         loop@L7                 205   0.1%          128         4096           77          0          0
  L26.u1.d15     loop@L7                 205   0.1%          128         4096           77          0          0
  L8             loop@L7                 192   0.1%          192         6144            0          0          0
  L9             loop@L7                 192   0.1%          192         6144            0          0          0
  L11            loop@L7                 192   0.1%          192         6144            0          0          0
  L5             -                       153   0.1%           96         3072           42          0        256
  ?              -                       144   0.1%           64         2048            0          0          0
  L4             -                       134   0.1%           64         2048           39          0          0
  L7.u1.d1       loop@L7                 134   0.1%           64         2048           39          0          0
  L7.u1.d2       loop@L7                 134   0.1%           64         2048           39          0          0
  L28            -                       134   0.1%           96         3072           39          0        256
  L7.d9          loop@L7                 128   0.1%          128         4096            0          0          0
  L7.u1.d15      loop@L7                 128   0.1%          128         4096            0          0          0
  L8.u1.d9       loop@L7                 128   0.1%          128         4096            0          0          0
  L9.u1.d9       loop@L7                 128   0.1%          128         4096            0          0          0
  L11.u1.d9      loop@L7                 128   0.1%          128         4096            0          0          0
  L26.u1.d13     loop@L7                 128   0.1%          128         4096            0          0          0
  L10.u1.d2      loop@L7                  98   0.1%           64         2048           18          0          0
  L7             -                        96   0.1%           64         2048            0          0          0
  L26.d2         loop@L7                  67   0.0%           32         1024           19          0          0
  L6             -                        64   0.0%           64         2048            0          0          0
  L12.u1.d2      loop@L7                  64   0.0%           32         1024            0          0          0
  L26.u1.d8      loop@L7                  51   0.0%           32         1024           19          0          0
  L26.d1         loop@L7                  37   0.0%           32         1024            5          0          0
  L7.d1          loop@L7                  32   0.0%           32         1024            0          0          0
  L7.d2          loop@L7                  32   0.0%           32         1024            0          0          0
  L7.u1.d8       loop@L7                  32   0.0%           32         1024            0          0          0
  L8.u1.d2       loop@L7                  32   0.0%           32         1024            0          0          0
  L9.u1.d2       loop@L7                  32   0.0%           32         1024            0          0          0
  L11.u1.d2      loop@L7                  32   0.0%           32         1024            0          0          0
  L26.u1.d6      loop@L7                  32   0.0%           32         1024            0          0          0

bezier;? 144
bezier;L25.d1 585
bezier;L28 134
bezier;L3 265
bezier;L4 134
bezier;L5 153
bezier;L6 64
bezier;L7 96
bezier;loop@L7;? 320
bezier;loop@L7;L10 476
bezier;loop@L7;L10.u1.d2 98
bezier;loop@L7;L10.u1.d9 361
bezier;loop@L7;L11 192
bezier;loop@L7;L11.u1.d2 32
bezier;loop@L7;L11.u1.d9 128
bezier;loop@L7;L12 400
bezier;loop@L7;L12.u1.d2 64
bezier;loop@L7;L12.u1.d9 256
bezier;loop@L7;L24 2162
bezier;loop@L7;L24.u1.d2 419
bezier;loop@L7;L24.u1.d9 1629
bezier;loop@L7;L25 419
bezier;loop@L7;L25.d1 1744
bezier;loop@L7;L25.u1.d13 1295
bezier;loop@L7;L25.u1.d6 336
bezier;loop@L7;L26.d1 37
bezier;loop@L7;L26.d2 67
bezier;loop@L7;L26.d9 205
bezier;loop@L7;L26.u1.d13 128
bezier;loop@L7;L26.u1.d15 205
bezier;loop@L7;L26.u1.d6 32
bezier;loop@L7;L26.u1.d8 51
bezier;loop@L7;L6 487
bezier;loop@L7;L7 951
bezier;loop@L7;L7.d1 32
bezier;loop@L7;L7.d2 32
bezier;loop@L7;L7.d9 128
bezier;loop@L7;L7.u1.d1 134
bezier;loop@L7;L7.u1.d15 128
bezier;loop@L7;L7.u1.d2 134
bezier;loop@L7;L7.u1.d8 32
bezier;loop@L7;L7.u1.d9 538
bezier;loop@L7;L8 192
bezier;loop@L7;L8.u1.d2 32
bezier;loop@L7;L8.u1.d9 128
bezier;loop@L7;L9 192
bezier;loop@L7;L9.u1.d2 32
bezier;loop@L7;L9.u1.d9 128
bezier;loop@L7;loop@L12.u1.d2;? 640
bezier;loop@L7;loop@L12.u1.d2;L10.u1.d2 824
bezier;loop@L7;loop@L12.u1.d2;L11.u1.d2 1672
bezier;loop@L7;loop@L12.u1.d2;L12.u1.d2 1395
bezier;loop@L7;loop@L12.u1.d2;L13.u1.d2 849
bezier;loop@L7;loop@L12.u1.d2;L14.u1.d2 320
bezier;loop@L7;loop@L12.u1.d2;L15.u1.d2 1153
bezier;loop@L7;loop@L12.u1.d2;L19.u1.d2 320
bezier;loop@L7;loop@L12.u1.d2;L20.u1.d2 2448
bezier;loop@L7;loop@L12.u1.d2;L21.u1.d2 320
bezier;loop@L7;loop@L12.u1.d2;L8.u1.d2 320
bezier;loop@L7;loop@L12.u1.d9;? 2560
bezier;loop@L7;loop@L12.u1.d9;L10.u1.d9 3296
bezier;loop@L7;loop@L12.u1.d9;L11.u1.d9 6686
bezier;loop@L7;loop@L12.u1.d9;L12.u1.d9 5577
bezier;loop@L7;loop@L12.u1.d9;L13.u1.d9 3346
bezier;loop@L7;loop@L12.u1.d9;L14.u1.d9 1280
bezier;loop@L7;loop@L12.u1.d9;L15.u1.d9 4610
bezier;loop@L7;loop@L12.u1.d9;L16.u1.d9 4881
bezier;loop@L7;loop@L12.u1.d9;L17.u1.d9 640
bezier;loop@L7;loop@L12.u1.d9;L19.u1.d9 1280
bezier;loop@L7;loop@L12.u1.d9;L20.u1.d9 10973
bezier;loop@L7;loop@L12.u1.d9;L21.u1.d9 1280
bezier;loop@L7;loop@L12.u1.d9;L8.u1.d9 1280
bezier;loop@L7;loop@L12.u1.d9;L9.u1.d9 640
bezier;loop@L7;loop@L12;? 3840
bezier;loop@L7;loop@L12;L10 4959
bezier;loop@L7;loop@L12;L11 10027
bezier;loop@L7;loop@L12;L12 8366
bezier;loop@L7;loop@L12;L13 5011
bezier;loop@L7;loop@L12;L14 1936
bezier;loop@L7;loop@L12;L15 6915
bezier;loop@L7;loop@L12;L16 6081
bezier;loop@L7;loop@L12;L17 800
bezier;loop@L7;loop@L12;L19 1120
bezier;loop@L7;loop@L12;L19.d1 816
bezier;loop@L7;loop@L12;L20 8514
bezier;loop@L7;loop@L12;L20.d1 7614
bezier;loop@L7;loop@L12;L21 1120
bezier;loop@L7;loop@L12;L21.d1 800
bezier;loop@L7;loop@L12;L8 1920
bezier;loop@L7;loop@L12;L9 816
