kernel cpx: 66819 cycles (issue 53566, dep_stall 12993, fetch_stall 256)

loops (hottest bodies first; cum covers the whole nest):
  loop              depth  self_cycles   self%   cum_cycles   divergence   mem_replay
  loop@L10              1        59024   88.3%        59024            5            0

lines (hottest first):
  line           loop                 cycles   cyc%   warp_execs thread_execs    dep_stall divergence     mem_tx
  L10.u5         loop@L10               2926   4.4%         1407        44992          577          0          0
  L10            loop@L10               2784   4.2%         1406        44992          675          1          0
  L10.u1         loop@L10               2682   4.0%         1276        40830          768          1          0
  L3             -                      2270   3.4%         1792        57344          462          0          0
  L10.u2         loop@L10               2135   3.2%         1016        32508          611          1          0
  L10.u3         loop@L10               2118   3.2%         1008        32248          606          1          0
  L10.u4         loop@L10               2084   3.1%          992        31728          596          1          0
  L11            loop@L10               1676   2.5%         1276        40830          384          0          0
  L13            loop@L10               1660   2.5%         1276        40830          384          0          0
  L15            loop@L10               1660   2.5%         1276        40830          384          0          0
  ?              -                      1537   2.3%          773        24576            0          0          0
  L9             loop@L10               1484   2.2%         1085        34719          383          0          0
  L11.u1         loop@L10               1387   2.1%         1016        32508          355          0          0
  L11.u2         loop@L10               1376   2.1%         1008        32248          352          0          0
  L11.u3         loop@L10               1354   2.0%          992        31728          347          0          0
  L19            -                      1344   2.0%         1024        32768          320          0       2048
  L13.u1         loop@L10               1322   2.0%         1016        32508          306          0          0
  L15.u1         loop@L10               1322   2.0%         1016        32508          306          0          0
  L13.u2         loop@L10               1311   2.0%         1008        32248          303          0          0
  L15.u2         loop@L10               1311   2.0%         1008        32248          303          0          0
  L11.u4         loop@L10               1310   2.0%          960        30688          335          0          0
  L13.u3         loop@L10               1290   1.9%          992        31728          298          0          0
  L15.u3         loop@L10               1290   1.9%          992        31728          298          0          0
  L13.u4         loop@L10               1248   1.9%          960        30688          288          0          0
  L15.u4         loop@L10               1248   1.9%          960        30688          288          0          0
  L11.u5         loop@L10               1223   1.8%          894        28608          312          0          0
  L15.u5         loop@L10               1178   1.8%          894        28608          268          0          0
  L13.u5         loop@L10               1163   1.7%          894        28608          269          0          0
  L8             loop@L10               1147   1.7%         1085        34719           62          0          0
  L4             -                      1076   1.6%          512        16384          308          0          0
  L9.u1          loop@L10                829   1.2%          508        16254          305          0          0
  L9.u2          loop@L10                822   1.2%          504        16124          303          0          0
  L9.u3          loop@L10                810   1.2%          496        15864          298          0          0
  L9.u4          loop@L10                784   1.2%          480        15344          288          0          0
  L9.u5          loop@L10                716   1.1%          447        14304          269          0          0
  L12            loop@L10                638   1.0%          638        20415            0          0          0
  L16            loop@L10                638   1.0%          638        20415            0          0          0
  L17            loop@L10                638   1.0%          638        20415            0          0          0
  L8.u1          loop@L10                557   0.8%          508        16254           50          0          0
  L8.u2          loop@L10                553   0.8%          504        16124           49          0          0
  L8.u3          loop@L10                544   0.8%          496        15864           48          0          0
  L8             -                       528   0.8%          517        16384            0          0          0
  L9             -                       528   0.8%          517        16384            0          0          0
  L8.u4          loop@L10                526   0.8%          480        15344           47          0          0
  L12.u1         loop@L10                508   0.8%          508        16254            0          0          0
  L16.u1         loop@L10                508   0.8%          508        16254            0          0          0
  L17.u1         loop@L10                508   0.8%          508        16254            0          0          0
  L12.u2         loop@L10                504   0.8%          504        16124            0          0          0
  L16.u2         loop@L10                504   0.8%          504        16124            0          0          0
  L17.u2         loop@L10                504   0.8%          504        16124            0          0          0
  L7             loop@L10                501   0.7%          447        14304           54          0          0
  L12.u3         loop@L10                496   0.7%          496        15864            0          0          0
  L16.u3         loop@L10                496   0.7%          496        15864            0          0          0
  L17.u3         loop@L10                496   0.7%          496        15864            0          0          0
  L6             loop@L10                494   0.7%          447        14304           47          0          0
  L8.u5          loop@L10                491   0.7%          447        14304           44          0          0
  L3             loop@L10                489   0.7%          447        14304           42          0          0
  L12.u4         loop@L10                480   0.7%          480        15344            0          0          0
  L16.u4         loop@L10                480   0.7%          480        15344            0          0          0
  L17.u4         loop@L10                480   0.7%          480        15344            0          0          0
  L12.u5         loop@L10                447   0.7%          447        14304            0          0          0
  L16.u5         loop@L10                447   0.7%          447        14304            0          0          0
  L17.u5         loop@L10                447   0.7%          447        14304            0          0          0
  L6             -                       256   0.4%          256         8192            0          0          0
  L7             -                       256   0.4%          256         8192            0          0          0

heuristic (C=1024) vs measured — cpx (total 66819 cycles):
  loop       selected   u  paths   size   f(p,s,u)  self_cycles   self%  note
  L10        yes        6      2     14        882        59024   88.3%  -
  -> hottest loop loop@L10: 59024 self cycles (88.3%) — the heuristic selected the hottest loop

cpx;? 1537
cpx;L19 1344
cpx;L3 2270
cpx;L4 1076
cpx;L6 256
cpx;L7 256
cpx;L8 528
cpx;L9 528
cpx;loop@L10;L10 2784
cpx;loop@L10;L10.u1 2682
cpx;loop@L10;L10.u2 2135
cpx;loop@L10;L10.u3 2118
cpx;loop@L10;L10.u4 2084
cpx;loop@L10;L10.u5 2926
cpx;loop@L10;L11 1676
cpx;loop@L10;L11.u1 1387
cpx;loop@L10;L11.u2 1376
cpx;loop@L10;L11.u3 1354
cpx;loop@L10;L11.u4 1310
cpx;loop@L10;L11.u5 1223
cpx;loop@L10;L12 638
cpx;loop@L10;L12.u1 508
cpx;loop@L10;L12.u2 504
cpx;loop@L10;L12.u3 496
cpx;loop@L10;L12.u4 480
cpx;loop@L10;L12.u5 447
cpx;loop@L10;L13 1660
cpx;loop@L10;L13.u1 1322
cpx;loop@L10;L13.u2 1311
cpx;loop@L10;L13.u3 1290
cpx;loop@L10;L13.u4 1248
cpx;loop@L10;L13.u5 1163
cpx;loop@L10;L15 1660
cpx;loop@L10;L15.u1 1322
cpx;loop@L10;L15.u2 1311
cpx;loop@L10;L15.u3 1290
cpx;loop@L10;L15.u4 1248
cpx;loop@L10;L15.u5 1178
cpx;loop@L10;L16 638
cpx;loop@L10;L16.u1 508
cpx;loop@L10;L16.u2 504
cpx;loop@L10;L16.u3 496
cpx;loop@L10;L16.u4 480
cpx;loop@L10;L16.u5 447
cpx;loop@L10;L17 638
cpx;loop@L10;L17.u1 508
cpx;loop@L10;L17.u2 504
cpx;loop@L10;L17.u3 496
cpx;loop@L10;L17.u4 480
cpx;loop@L10;L17.u5 447
cpx;loop@L10;L3 489
cpx;loop@L10;L6 494
cpx;loop@L10;L7 501
cpx;loop@L10;L8 1147
cpx;loop@L10;L8.u1 557
cpx;loop@L10;L8.u2 553
cpx;loop@L10;L8.u3 544
cpx;loop@L10;L8.u4 526
cpx;loop@L10;L8.u5 491
cpx;loop@L10;L9 1484
cpx;loop@L10;L9.u1 829
cpx;loop@L10;L9.u2 822
cpx;loop@L10;L9.u3 810
cpx;loop@L10;L9.u4 784
cpx;loop@L10;L9.u5 716
