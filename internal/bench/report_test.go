package bench

import (
	"io"
	"math"
	"strings"
	"testing"

	"uu/internal/gpusim"
	"uu/internal/interp"
	"uu/internal/pipeline"
)

// miniSweep runs a reduced harness once for the report tests.
var miniSweep *Results

func sweepFor(t *testing.T) *Results {
	t.Helper()
	if miniSweep == nil {
		res, err := RunExperiments(HarnessOptions{
			Apps:     []string{"xsbench", "complex"},
			Factors:  []int{2},
			Progress: io.Discard,
		})
		if err != nil {
			t.Fatalf("harness: %v", err)
		}
		miniSweep = res
	}
	return miniSweep
}

func TestWriteTable1Format(t *testing.T) {
	res := sweepFor(t)
	var sb strings.Builder
	WriteTable1(&sb, res)
	out := sb.String()
	for _, want := range []string{"Table I", "xsbench", "complex", "±0%", "-s small -m event"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 missing %q:\n%s", want, out)
		}
	}
}

func TestWriteFiguresFormat(t *testing.T) {
	res := sweepFor(t)
	cases := []struct {
		name  string
		write func(io.Writer, *Results)
		wants []string
	}{
		{"fig6a", WriteFig6a, []string{"Figure 6a", "heuristic geomean speedup", "u=2"}},
		{"fig6b", WriteFig6b, []string{"Figure 6b", "heuristic geomean"}},
		{"fig6c", WriteFig6c, []string{"Figure 6c", "heuristic geomean"}},
		{"fig7", WriteFig7, []string{"Figure 7", "unmerge", "uu.u2"}},
		{"fig8", WriteFig8, []string{"Figure 8a", "Figure 8b", "unroll"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			tc.write(&sb, res)
			for _, want := range tc.wants {
				if !strings.Contains(sb.String(), want) {
					t.Errorf("%s missing %q:\n%s", tc.name, want, sb.String())
				}
			}
		})
	}
}

func TestWriteCounterReportFormat(t *testing.T) {
	res := sweepFor(t)
	rec := res.Best("xsbench", pipeline.UU, 2)
	if rec == nil {
		t.Fatalf("no uu record")
	}
	var sb strings.Builder
	WriteCounterReport(&sb, res, "xsbench", rec)
	for _, want := range []string{"inst_misc", "warp_exec_efficiency", "IPC", "speedup"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("counter report missing %q:\n%s", want, sb.String())
		}
	}
}

func TestHarnessUnknownApp(t *testing.T) {
	_, err := RunExperiments(HarnessOptions{Apps: []string{"nonexistent"}})
	if err == nil || !strings.Contains(err.Error(), "unknown application") {
		t.Fatalf("want unknown-application error, got %v", err)
	}
}

func TestResultsAccessors(t *testing.T) {
	res := sweepFor(t)
	if best := res.Best("xsbench", pipeline.UU, 2); best == nil || best.Factor != 2 {
		t.Fatalf("Best wrong: %+v", best)
	}
	if best := res.Best("xsbench", pipeline.UU, 99); best != nil {
		t.Fatalf("Best with bogus factor should be nil")
	}
	recs := res.PerLoopFor("xsbench", pipeline.UU, 2)
	if len(recs) != 1 || recs[0].LoopID != 0 {
		t.Fatalf("PerLoopFor wrong: %+v", recs)
	}
	if res.LoopCount["xsbench"] < 1 {
		t.Fatalf("loop count missing")
	}
}

func TestGeomean(t *testing.T) {
	if g, ok := geomean([]float64{2, 8}); !ok || g != 4 {
		t.Fatalf("geomean(2,8) = %v, %v, want 4, true", g, ok)
	}
	// Undefined cases: empty input, a zero ratio (a skipped run's 0
	// speedup used to drive the mean to -Inf), and non-finite poison.
	for _, xs := range [][]float64{nil, {}, {1, 0, 2}, {-1}, {math.Inf(1)}, {math.NaN()}} {
		if g, ok := geomean(xs); ok {
			t.Fatalf("geomean(%v) = %v, want undefined", xs, g)
		}
	}
	if s := fmtGeomean(nil); s != "n/a" {
		t.Fatalf("fmtGeomean(nil) = %q, want n/a", s)
	}
	if s := fmtGeomean([]float64{2, 8}); s != "4.000" {
		t.Fatalf("fmtGeomean(2,8) = %q", s)
	}
}

func TestWorkloadMemoryFresh(t *testing.T) {
	// NewMemory must return a freshly initialized image every call
	// (configurations must not see each other's writes).
	b := ByName("rainflow")
	w := b.NewWorkload()
	m1 := w.NewMemory()
	m2 := w.NewMemory()
	if &m1.Data[0] == &m2.Data[0] {
		t.Fatalf("memories share backing store")
	}
	m1.SetF64(0, 0, 12345)
	if m2.F64(0, 0) == 12345 {
		t.Fatalf("memory leak between workload instances")
	}
}

func TestCompareOutputsTolerance(t *testing.T) {
	w := &Workload{Outputs: []Region{{"o", 0, 1, "f64"}}}
	a := newMemF64(1.0)
	b := newMemF64(1.0 + 1e-13)
	if err := CompareOutputs(w, a, b); err != nil {
		t.Fatalf("tiny relative error should pass: %v", err)
	}
	c := newMemF64(1.1)
	if err := CompareOutputs(w, a, c); err == nil {
		t.Fatalf("large error should fail")
	}
	w2 := &Workload{Outputs: []Region{{"o", 0, 1, "i64"}}}
	if err := CompareOutputs(w2, a, a); err != nil {
		t.Fatalf("identical ints should pass: %v", err)
	}
}

func newMemF64(v float64) *interp.Memory {
	m := interp.NewMemory(8)
	m.SetF64(0, 0, v)
	return m
}

// Ablation variant list sanity.
func TestAblationVariantsShape(t *testing.T) {
	vs := AblationVariants(0, 2)
	names := map[string]bool{}
	for _, v := range vs {
		names[v.Name] = true
	}
	for _, want := range []string{"baseline", "uu", "uu/direct-successor", "uu/no-equality-prop", "uu/no-load-elim", "uu/no-ifconvert"} {
		if !names[want] {
			t.Errorf("missing variant %q", want)
		}
	}
	_ = gpusim.V100()
}
