// Package bench defines the 16 GPU benchmarks mirroring the paper's
// HeCBench selection (Table I), their workload generators and verification
// oracles, and the experiment harness that regenerates Table I and Figures
// 6a/6b/6c, 7, 8a and 8b.
package bench

import (
	"context"
	"fmt"
	"math"

	"uu/internal/codegen"
	"uu/internal/gpusim"
	"uu/internal/interp"
	"uu/internal/ir"
	"uu/internal/lang"
	"uu/internal/pipeline"
	"uu/internal/remark"
)

// Region describes an output range used for verification.
type Region struct {
	Name  string
	Base  int64  // byte offset
	Count int64  // number of elements
	Elem  string // "f64", "f32", "i64", "i32"
}

// InputMode selects how a benchmark's input buffers are initialized: the
// default warp-coherent generators (spatially tiled particles, sorted
// features, smooth histories — the structure real inputs have, which keeps
// branch outcomes correlated across a warp), or white noise over the same
// domain-safe value ranges, which shatters that correlation. The sweep
// across both is a first-class campaign dimension: it bounds how much of
// each measured u&u win depends on input coherence (known deviation #4 in
// EXPERIMENTS.md).
type InputMode string

const (
	InputCoherent InputMode = "coherent"
	InputNoise    InputMode = "noise"
)

// InputModes returns both modes in canonical (report) order.
func InputModes() []InputMode { return []InputMode{InputCoherent, InputNoise} }

// ParseInputMode validates a CLI input-mode name.
func ParseInputMode(s string) (InputMode, error) {
	switch InputMode(s) {
	case InputCoherent, InputNoise:
		return InputMode(s), nil
	}
	return "", fmt.Errorf("bench: unknown input mode %q (want coherent or noise)", s)
}

// Workload is one concrete input configuration for a benchmark.
type Workload struct {
	Args    []interp.Value
	MemSize int64
	Init    func(m *interp.Memory)
	Launch  gpusim.Launch
	Outputs []Region
	// Noise, when non-nil, is the white-noise counterpart of Init: it fills
	// the same input regions with i.i.d. values over the same domain-safe
	// ranges, destroying warp coherence. Nil means the kernel's inputs are
	// derived from the thread id (complex, mandelbrot), so there is nothing
	// to decohere and both input modes run identically.
	Noise func(m *interp.Memory)
}

// SetInput selects the workload's input mode. Selecting InputNoise on a
// workload without a Noise generator is a no-op (see Noise).
func (w *Workload) SetInput(mode InputMode) {
	if mode == InputNoise && w.Noise != nil {
		w.Init = w.Noise
	}
}

// HasNoise reports whether the workload has a distinct white-noise input
// configuration.
func (w *Workload) HasNoise() bool { return w.Noise != nil }

// NewMemory builds a fresh initialized memory for the workload.
func (w *Workload) NewMemory() *interp.Memory {
	m := interp.NewMemory(w.MemSize)
	if w.Init != nil {
		w.Init(m)
	}
	return m
}

// Benchmark is one application of the suite.
type Benchmark struct {
	Name        string
	Category    string
	CommandLine string  // the paper's Table I command line (documentary)
	KernelPct   float64 // paper's %C: fraction of app time in compute kernels
	Source      string  // MiniCU kernel source
	NewWorkload func() *Workload

	// AppCodeBytes and AppCompileMs model the rest of the application: the
	// paper compares whole-binary sizes and whole-clang-invocation times, so
	// the relative increase depends on how much of the application the
	// transformed loop is. "If an application is large such as XSBench and
	// quicksort, the relative code size increase will not be large... the
	// optimized loops of ccs, complex, haccmk, and rainflow dominate the
	// code size" (RQ2). Figures 6b/6c add these constants to both sides of
	// each ratio.
	AppCodeBytes int64
	AppCompileMs float64
}

// Kernel compiles the benchmark's kernel to fresh IR (frontend only). It
// panics on malformed source — fine for the suite's constant sources;
// error-checking paths use CompileKernel.
func (b *Benchmark) Kernel() *ir.Function {
	return lang.MustCompileKernel(b.Source)
}

// CompileKernel is Kernel with the frontend error returned instead of
// panicking, so harness and CLI paths can surface bad input as a normal
// failed run.
func (b *Benchmark) CompileKernel() (*ir.Function, error) {
	f, err := lang.CompileKernel(b.Source)
	if err != nil {
		return nil, fmt.Errorf("bench %s: %w", b.Name, err)
	}
	return f, nil
}

// Reference executes the unoptimized kernel with the sequential interpreter
// over every thread of the launch grid, producing the oracle memory image.
func Reference(b *Benchmark, w *Workload) (*interp.Memory, error) {
	f, err := b.CompileKernel()
	if err != nil {
		return nil, err
	}
	mem := w.NewMemory()
	total := w.Launch.Threads()
	for tid := 0; tid < total; tid++ {
		env := interp.Env{
			TID:    int32(tid % w.Launch.BlockDim),
			NTID:   int32(w.Launch.BlockDim),
			CTAID:  int32(tid / w.Launch.BlockDim),
			NCTAID: int32(w.Launch.GridDim),
		}
		if _, err := interp.Run(f, w.Args, mem, env); err != nil {
			return nil, fmt.Errorf("bench %s: reference thread %d: %w", b.Name, tid, err)
		}
	}
	return mem, nil
}

// CompareOutputs checks the workload's output regions of got against want.
// Floating-point elements compare with a small relative tolerance (the
// pipeline's identities like x+0 => x may flip signed zeros).
func CompareOutputs(w *Workload, want, got *interp.Memory) error {
	const relTol = 1e-9
	feq := func(a, b float64) bool {
		if a == b || (math.IsNaN(a) && math.IsNaN(b)) {
			return true
		}
		d := math.Abs(a - b)
		return d <= relTol*math.Max(math.Abs(a), math.Abs(b))
	}
	for _, r := range w.Outputs {
		for i := int64(0); i < r.Count; i++ {
			switch r.Elem {
			case "f64":
				a, b := want.F64(r.Base, i), got.F64(r.Base, i)
				if !feq(a, b) {
					return fmt.Errorf("output %s[%d]: want %v, got %v", r.Name, i, a, b)
				}
			case "f32":
				a, b := float64(want.F32(r.Base, i)), float64(got.F32(r.Base, i))
				if !feq(a, b) {
					return fmt.Errorf("output %s[%d]: want %v, got %v", r.Name, i, a, b)
				}
			case "i64":
				if a, b := want.I64(r.Base, i), got.I64(r.Base, i); a != b {
					return fmt.Errorf("output %s[%d]: want %d, got %d", r.Name, i, a, b)
				}
			case "i32":
				if a, b := want.I32(r.Base, i), got.I32(r.Base, i); a != b {
					return fmt.Errorf("output %s[%d]: want %d, got %d", r.Name, i, a, b)
				}
			default:
				return fmt.Errorf("bad region elem %q", r.Elem)
			}
		}
	}
	return nil
}

// CompileResult bundles everything the harness measures at compile time.
type CompileResult struct {
	Program *codegen.Program
	Stats   *pipeline.Stats
	Func    *ir.Function
}

// Compile lowers the benchmark's kernel through the given pipeline
// configuration down to VPTX.
func Compile(b *Benchmark, opts pipeline.Options) (*CompileResult, error) {
	return CompileCtx(context.Background(), b, opts)
}

// CompileCtx is Compile under a context: cancellation stops the pipeline at
// the next pass boundary (pipeline.OptimizeCtx).
func CompileCtx(ctx context.Context, b *Benchmark, opts pipeline.Options) (*CompileResult, error) {
	f, err := b.CompileKernel()
	if err != nil {
		return nil, err
	}
	stats, err := pipeline.OptimizeCtx(ctx, f, opts)
	if err != nil {
		return nil, fmt.Errorf("bench %s (%s): %w", b.Name, opts.Config, err)
	}
	done := opts.Trace.Span(opts.TraceTID, "codegen:"+f.Name, "codegen")
	prog, err := codegen.Lower(f)
	done()
	if err != nil {
		return nil, fmt.Errorf("bench %s (%s): %w", b.Name, opts.Config, err)
	}
	return &CompileResult{Program: prog, Stats: stats, Func: f}, nil
}

// Execute runs a compiled kernel on the simulator. When verifyAgainst is
// non-nil the resulting memory is checked against it.
func Execute(cr *CompileResult, w *Workload, cfg gpusim.DeviceConfig, verifyAgainst *interp.Memory) (*gpusim.Metrics, error) {
	return ExecuteWorkers(cr, w, cfg, verifyAgainst, 1)
}

// ExecuteWorkers is Execute with an explicit simulator warp-scheduling
// worker count (gpusim.RunWorkers); metrics are identical for any count.
func ExecuteWorkers(cr *CompileResult, w *Workload, cfg gpusim.DeviceConfig, verifyAgainst *interp.Memory, workers int) (*gpusim.Metrics, error) {
	return ExecuteWorkersTraced(cr, w, cfg, verifyAgainst, workers, nil, 0)
}

// ExecuteWorkersTraced is ExecuteWorkers with launch spans and a metrics
// counter sample recorded into tr on lane tid (nil tr disables tracing).
func ExecuteWorkersTraced(cr *CompileResult, w *Workload, cfg gpusim.DeviceConfig, verifyAgainst *interp.Memory, workers int, tr *remark.Trace, tid int) (*gpusim.Metrics, error) {
	return ExecuteWorkersProfiled(cr, w, cfg, verifyAgainst, workers, tr, tid, nil)
}

// ExecuteWorkersProfiled is ExecuteWorkersTraced additionally accumulating
// per-PC hotspot counters into prof, which must be nil (profiling off) or
// sized for cr.Program (gpusim.NewProfile). Like metrics, the profile is
// byte-identical for every worker count.
func ExecuteWorkersProfiled(cr *CompileResult, w *Workload, cfg gpusim.DeviceConfig, verifyAgainst *interp.Memory, workers int, tr *remark.Trace, tid int, prof *gpusim.Profile) (*gpusim.Metrics, error) {
	return ExecuteWorkersProfiledCtx(context.Background(), cr, w, cfg, verifyAgainst, workers, tr, tid, prof)
}

// ExecuteWorkersProfiledCtx is ExecuteWorkersProfiled under a context:
// cancellation stops the simulation at the next warp-block boundary
// (gpusim.RunWorkersProfiledCtx).
func ExecuteWorkersProfiledCtx(ctx context.Context, cr *CompileResult, w *Workload, cfg gpusim.DeviceConfig, verifyAgainst *interp.Memory, workers int, tr *remark.Trace, tid int, prof *gpusim.Profile) (*gpusim.Metrics, error) {
	mem := w.NewMemory()
	launch := w.Launch
	if verifyAgainst != nil {
		launch.SampleWarps = 0 // full run required for verification
	}
	m, err := gpusim.RunWorkersProfiledCtx(ctx, cr.Program, w.Args, mem, launch, cfg, workers, tr, tid, prof)
	if err != nil {
		return nil, err
	}
	if verifyAgainst != nil {
		if err := CompareOutputs(w, verifyAgainst, mem); err != nil {
			return nil, fmt.Errorf("verification failed: %w", err)
		}
	}
	return m, nil
}

// LoopCount reports the benchmark's loop count on the canonicalized kernel —
// the `L` column of Table I.
func LoopCount(b *Benchmark) int {
	return pipeline.CanonicalLoopCount(b.Kernel())
}
