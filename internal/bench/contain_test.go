package bench

import (
	"reflect"
	"testing"

	"uu/internal/analysis"
	"uu/internal/harden"
	"uu/internal/transform"
)

// TestRunExperimentsContainsInjectedPanic is the end-to-end containment
// proof: a pass that panics on every invocation must not abort the
// campaign. Every run completes, records its contained failure, and the
// sweep aggregates them.
func TestRunExperimentsContainsInjectedPanic(t *testing.T) {
	res, err := RunExperiments(HarnessOptions{
		Apps:    []string{"contract"},
		Factors: []int{2},
		Workers: 1,
		Contain: true,
		Verify:  true,
		Inject:  []analysis.Pass{transform.ChaosPass(transform.ChaosPanic)},
	})
	if err != nil {
		t.Fatalf("campaign aborted despite containment: %v", err)
	}
	if len(res.Failures) == 0 {
		t.Fatalf("no contained failures were aggregated")
	}
	for _, pf := range res.Failures {
		if pf.Kind != harden.FailurePanic || pf.Pass != "chaos-panic" {
			t.Fatalf("unexpected failure record: %+v", pf)
		}
	}
	base := res.Baseline["contract"]
	if base == nil || base.Metrics == nil {
		t.Fatalf("baseline run did not complete: %+v", base)
	}
	if len(base.Failures) != 1 {
		t.Fatalf("baseline run should carry exactly its own failure, got %d", len(base.Failures))
	}
}

// TestRunExperimentsContainmentInvisibleWhenHealthy: with no injected
// fault, the guarded sweep must reproduce the unguarded sweep exactly.
func TestRunExperimentsContainmentInvisibleWhenHealthy(t *testing.T) {
	run := func(contain bool) *Results {
		res, err := RunExperiments(HarnessOptions{
			Apps:       []string{"contract"},
			Factors:    []int{2},
			Workers:    1,
			Contain:    contain,
			VerifyEach: contain,
		})
		if err != nil {
			t.Fatalf("contain=%v: %v", contain, err)
		}
		return res
	}
	plain, guarded := run(false), run(true)
	if len(guarded.Failures) != 0 {
		t.Fatalf("healthy sweep recorded failures: %v", guarded.Failures)
	}
	a, b := plain.Baseline["contract"], guarded.Baseline["contract"]
	if a.Millis != b.Millis || a.CodeBytes != b.CodeBytes || !reflect.DeepEqual(a.Metrics, b.Metrics) {
		t.Fatalf("containment changed healthy measurements: %v/%v ms, %d/%d B",
			a.Millis, b.Millis, a.CodeBytes, b.CodeBytes)
	}
	for i := range plain.PerLoop {
		pa, pb := plain.PerLoop[i], guarded.PerLoop[i]
		if pa.Millis != pb.Millis || pa.CodeBytes != pb.CodeBytes || pa.Skipped != pb.Skipped {
			t.Fatalf("per-loop record %d differs under containment", i)
		}
	}
}
