package bench

import (
	"bytes"
	"strings"
	"testing"

	"uu/internal/gpusim"
	"uu/internal/pipeline"
)

// TestNoiseGenerators checks the white-noise input dimension across the
// suite: every benchmark except the thread-id-derived ones (complex,
// mandelbrot) has a Noise generator, selecting it actually changes the
// initial memory, and selecting it on an input-invariant workload is a
// no-op.
func TestNoiseGenerators(t *testing.T) {
	inputInvariant := map[string]bool{"complex": true, "mandelbrot": true}
	for _, b := range Suite {
		w := b.NewWorkload()
		if inputInvariant[b.Name] {
			if w.HasNoise() {
				t.Errorf("%s: thread-id-derived inputs should have no Noise generator", b.Name)
			}
			w.SetInput(InputNoise)
			continue
		}
		if !w.HasNoise() {
			t.Errorf("%s: missing Noise generator", b.Name)
			continue
		}
		coherent := w.NewMemory()
		w.SetInput(InputNoise)
		noise := w.NewMemory()
		if bytes.Equal(coherent.Data, noise.Data) {
			t.Errorf("%s: noise input mode produced the same memory as coherent", b.Name)
		}
	}
	if _, err := ParseInputMode("noise"); err != nil {
		t.Errorf("ParseInputMode(noise): %v", err)
	}
	if _, err := ParseInputMode("gaussian"); err == nil {
		t.Errorf("ParseInputMode accepted an unknown mode")
	}
}

// TestNoiseModeVerifies checks the correctness contract of the input
// dimension: the interpreter oracle is built from the same (swapped) Init,
// so simulated noise runs still verify.
func TestNoiseModeVerifies(t *testing.T) {
	b := ByName("rainflow")
	w := b.NewWorkload()
	w.SetInput(InputNoise)
	ref, err := Reference(b, w)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := Compile(b, pipeline.Options{Config: pipeline.UUHeuristic})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(cr, w, mustDevice(t, "V100"), ref); err != nil {
		t.Fatalf("noise-mode run failed verification: %v", err)
	}
}

// TestRunMatrix runs a small device × input matrix end to end and checks
// the report: per-sweep figure tables, the robustness verdict table, and
// the complex fetch-stall cross-check.
func TestRunMatrix(t *testing.T) {
	mx, err := RunMatrix(MatrixOptions{
		Harness: HarnessOptions{
			Apps:    []string{"complex", "rainflow"},
			Factors: []int{2},
		},
		Devices: []string{"V100", "Vortex:itsoverlap=0.5"},
		Inputs:  InputModes(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mx.Sweeps) != 4 {
		t.Fatalf("got %d sweeps, want 4 (2 devices x 2 inputs)", len(mx.Sweeps))
	}
	if mx.Sweeps[1].DeviceName != "V100" || mx.Sweeps[1].Input != InputNoise {
		t.Errorf("sweep order wrong: %+v", mx.Sweeps[1])
	}
	if mx.Sweeps[2].DeviceName != "Vortex:itsoverlap=0.5" {
		t.Errorf("override spec lost from sweep name: %q", mx.Sweeps[2].DeviceName)
	}

	verdicts := mx.Verdicts()
	if len(verdicts) != 2 {
		t.Fatalf("got %d verdicts, want 2", len(verdicts))
	}
	for _, v := range verdicts {
		if len(v.Speedups) != 4 {
			t.Errorf("%s: %d speedups, want 4", v.App, len(v.Speedups))
		}
		switch v.Class {
		case "robust win", "robust loss", "neutral", "model-specific":
		default:
			t.Errorf("%s: unknown verdict class %q", v.App, v.Class)
		}
	}

	var buf bytes.Buffer
	WriteDeviceMatrix(&buf, mx)
	out := buf.String()
	for _, want := range []string{
		"sweep: device=V100 input=coherent",
		"sweep: device=Vortex:itsoverlap=0.5 input=noise",
		"cross-sweep robustness",
		"V100/noise", // input column label present when inputs vary
		"complex stall_inst_fetch",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("device-matrix report missing %q:\n%.600s", want, out)
		}
	}
}

func mustDevice(t *testing.T, spec string) gpusim.DeviceConfig {
	t.Helper()
	cfg, _, err := gpusim.ParseDevice(spec)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}
