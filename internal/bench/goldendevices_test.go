package bench

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uu/internal/gpusim"
	"uu/internal/pipeline"
	"uu/internal/profile"
)

// updateGoldenDevices regenerates the per-device golden corpus:
//
//	go test ./internal/bench -run TestGoldenDevice -update-golden-devices
//
// testdata/goldendevices pins metrics and hotspot profiles of the four
// Section V kernels across all five pipeline configurations for the
// non-default devices (MinSPPC, Vortex). Together with the V100 corpora
// (testdata/goldenmetrics, testdata/goldenprofiles) this freezes every
// divergence backend's cost attribution; like those, the files must be
// byte-identical for any -sim-workers count.
var updateGoldenDevices = flag.Bool("update-golden-devices", false, "rewrite testdata/goldendevices from the current simulator")

// goldenDevices are the registry devices pinned by the corpus. V100 is
// excluded: its behavior is already pinned — at full 16-app scope — by the
// original corpora, and keeping it there proves the policy refactor
// byte-identical.
var goldenDevices = []string{"MinSPPC", "Vortex"}

func goldenDeviceCell(b *Benchmark, opts pipeline.Options, dev gpusim.DeviceConfig, workers int) (metrics, prof string) {
	cr, err := Compile(b, opts)
	if err != nil {
		s := fmt.Sprintf("SKIP: %v\n", err)
		return s, s
	}
	w := b.NewWorkload()
	p := gpusim.NewProfile(cr.Program)
	m, err := ExecuteWorkersProfiled(cr, w, dev, nil, workers, nil, 0, p)
	if err != nil {
		s := fmt.Sprintf("ERROR: %v\n", err)
		return s, s
	}
	rep := profile.Build(cr.Program, p)
	var sb strings.Builder
	if err := profile.WriteHotspots(&sb, rep); err != nil {
		panic(err)
	}
	sb.WriteString("\n")
	if err := profile.WriteFolded(&sb, rep); err != nil {
		panic(err)
	}
	return formatMetrics(m), sb.String()
}

func TestGoldenDeviceCorpora(t *testing.T) {
	dir := filepath.Join("testdata", "goldendevices")
	if *updateGoldenDevices {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, devName := range goldenDevices {
		dev, ok := gpusim.DeviceByName(devName)
		if !ok {
			t.Fatalf("unknown golden device %q", devName)
		}
		for _, app := range remarkCorpusApps {
			b := ByName(app)
			if b == nil {
				t.Fatalf("unknown corpus app %q", app)
			}
			devName, dev, b := devName, dev, b
			t.Run(devName+"/"+app, func(t *testing.T) {
				t.Parallel()
				for _, opts := range goldenCases() {
					stem := strings.ToLower(devName) + "-" + strings.TrimSuffix(goldenName(b.Name, opts), ".vptx")
					metrics, prof := goldenDeviceCell(b, opts, dev.Config, *simWorkers)
					for _, art := range []struct {
						name, got string
					}{
						{stem + ".metrics", metrics},
						{stem + ".profile", prof},
					} {
						path := filepath.Join(dir, art.name)
						if *updateGoldenDevices {
							if err := os.WriteFile(path, []byte(art.got), 0o644); err != nil {
								t.Fatal(err)
							}
							continue
						}
						want, err := os.ReadFile(path)
						if err != nil {
							t.Fatalf("missing golden %s (run with -update-golden-devices to capture): %v", art.name, err)
						}
						if art.got != string(want) {
							t.Errorf("%s: differs from golden %s (sim-workers=%d, %d vs %d bytes)",
								b.Name, art.name, *simWorkers, len(art.got), len(want))
						}
					}
				}
			})
		}
	}
}
