package bench

import (
	"math/rand"

	"uu/internal/gpusim"
	"uu/internal/interp"
)

// noiseSeed offsets the white-noise generators' seeds from the coherent
// ones, so the two input modes of one app never share a sequence.
const noiseSeed = 9000

// Suite lists the 16 benchmarks in the order of the paper's Table I.
var Suite = []*Benchmark{
	BezierSurface, BN, BsplineVGH, CCS, Clink, Complex, Contract, Coordinates,
	Haccmk, LavaMD, Libor, Mandelbrot, QTClustering, Quicksort, Rainflow, XSBench,
}

// ByName returns the benchmark with the given name, or nil.
func ByName(name string) *Benchmark {
	for _, b := range Suite {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// BezierSurface evaluates Bernstein blends with the paper's Listing 2 loop:
// two independent countdown conditions whose re-evaluation u&u eliminates
// (Figure 5). The hot loop is the inner while.
var BezierSurface = &Benchmark{
	Name:         "bezier-surface",
	AppCodeBytes: 24000,
	AppCompileMs: 60,
	Category:     "CV and image processing",
	CommandLine:  "-n 4096",
	KernelPct:    0.6718,
	Source: `
kernel bezier(double* restrict ts, double* restrict out, long resolution, long n) {
  long gid = (long)global_id();
  if (gid >= resolution) { return; }
  double t = ts[gid];
  double s = 0.0;
  for (long k = 0; k <= n; k++) {
    long nn = n;
    long kn = k;
    long nkn = n - k;
    double blend = 1.0;
    while (nn >= 1) {
      blend *= (double)nn;
      nn--;
      if (kn > 1) {
        blend /= (double)kn;
        kn--;
      }
      if (nkn > 1) {
        blend /= (double)nkn;
        nkn--;
      }
    }
    if (k > 0) { blend *= pow(t, (double)k); }
    if (n - k > 0) { blend *= pow(1.0 - t, (double)(n - k)); }
    s += blend;
  }
  out[gid] = s;
}
`,
	NewWorkload: func() *Workload {
		const res, n = 1024, 10
		tsBase := int64(0)
		outBase := tsBase + 8*res
		return &Workload{
			Args:    []interp.Value{interp.IntVal(tsBase), interp.IntVal(outBase), interp.IntVal(res), interp.IntVal(n)},
			MemSize: outBase + 8*res,
			Init: func(m *interp.Memory) {
				rng := rand.New(rand.NewSource(11))
				for i := int64(0); i < res; i++ {
					m.SetF64(tsBase, i, rng.Float64())
				}
			},
			// The parameter values do not steer the countdown branches
			// (those depend only on n), so noise is the same distribution
			// reseeded — included so the sweep covers every app uniformly.
			Noise: func(m *interp.Memory) {
				rng := rand.New(rand.NewSource(noiseSeed + 11))
				for i := int64(0); i < res; i++ {
					m.SetF64(tsBase, i, rng.Float64())
				}
			},
			Launch:  gpusim.Launch{GridDim: res / 128, BlockDim: 128},
			Outputs: []Region{{"out", outBase, res, "f64"}},
		}
	},
}

// BN scores per-column categorical counts with three data-dependent
// conditions per row (a Bayesian-network-scoring stand-in).
var BN = &Benchmark{
	Name:         "bn",
	AppCodeBytes: 40000,
	AppCompileMs: 90,
	Category:     "Machine learning",
	CommandLine:  "result",
	KernelPct:    0.9728,
	Source: `
kernel bn(int* restrict data, double* restrict scores, long rows, long cols) {
  long gid = (long)global_id();
  if (gid >= cols) { return; }
  long c0 = 0;
  long c1 = 0;
  long c2 = 0;
  double score = 0.0;
  for (long r = 0; r < rows; r++) {
    int v = data[r * cols + gid];
    if (v == 0) { c0++; }
    if (v == 1) { c1++; }
    if (v == 2) { c2++; }
    score += (double)(c0 - c1) * 0.001;
  }
  scores[gid] = score + (double)c2;
}
`,
	NewWorkload: func() *Workload {
		const rows, cols = 512, 512
		dataBase := int64(0)
		scoresBase := dataBase + 4*rows*cols
		return &Workload{
			Args:    []interp.Value{interp.IntVal(dataBase), interp.IntVal(scoresBase), interp.IntVal(rows), interp.IntVal(cols)},
			MemSize: scoresBase + 8*cols,
			Init: func(m *interp.Memory) {
				// Column-major categorical data: columns handled by the same
				// warp share a class pattern per row, with rare per-column
				// exceptions — the usual layout after feature bucketing.
				rng := rand.New(rand.NewSource(12))
				for r := int64(0); r < rows; r++ {
					for c := int64(0); c < cols; c++ {
						group := c / 32
						v := int32((r*2654435761 + group*97) >> 3 % 4)
						if v < 0 {
							v = -v
						}
						if rng.Intn(1024) == 0 {
							v = int32(rng.Intn(4))
						}
						m.SetI32(dataBase, r*cols+c, v%4)
					}
				}
			},
			// White noise: i.i.d. categories, so each row's three class
			// tests split every warp instead of flipping in lockstep.
			Noise: func(m *interp.Memory) {
				rng := rand.New(rand.NewSource(noiseSeed + 12))
				for r := int64(0); r < rows; r++ {
					for c := int64(0); c < cols; c++ {
						m.SetI32(dataBase, r*cols+c, int32(rng.Intn(4)))
					}
				}
			},
			Launch:  gpusim.Launch{GridDim: cols / 128, BlockDim: 128},
			Outputs: []Region{{"scores", scoresBase, cols, "f64"}},
		}
	},
}

// BsplineVGH evaluates a cubic B-spline with the constant trip count of 4
// the paper calls out in RQ2 (code size identical for u=4 and u=8).
var BsplineVGH = &Benchmark{
	Name:         "bspline-vgh",
	AppCodeBytes: 30000,
	AppCompileMs: 70,
	Category:     "Simulation",
	CommandLine:  "no CLI input",
	KernelPct:    0.1169,
	Source: `
kernel bspline(float* restrict coefs, float* restrict vals, float* restrict grads, long n, long stride) {
  long gid = (long)global_id();
  if (gid >= n) { return; }
  float v = 0.0f;
  float g = 0.0f;
  for (long j = 0; j < 4; j++) {
    float c = coefs[gid + j * stride];
    if (c > 0.0f) {
      v += c * c;
      g += c * 0.5f;
    } else {
      v -= c;
      if (c < -0.5f) {
        g -= c * c;
      }
    }
  }
  vals[gid] = v;
  grads[gid] = g;
}
`,
	NewWorkload: func() *Workload {
		const n = 4096
		coefsBase := int64(0)
		valsBase := coefsBase + 4*n*4
		gradsBase := valsBase + 4*n
		return &Workload{
			Args: []interp.Value{interp.IntVal(coefsBase), interp.IntVal(valsBase),
				interp.IntVal(gradsBase), interp.IntVal(n), interp.IntVal(n)},
			MemSize: gradsBase + 4*n,
			Init: func(m *interp.Memory) {
				// Spline coefficients of neighbouring grid points (the same
				// warp) share signs and magnitude classes; jitter stays well
				// away from the 0 and -0.5 thresholds.
				rng := rand.New(rand.NewSource(13))
				for j := int64(0); j < 4; j++ {
					for g := int64(0); g < n; g++ {
						group := g / 32
						var base float64
						switch (group + j) % 3 {
						case 0:
							base = 0.8
						case 1:
							base = -0.3
						default:
							base = -0.8
						}
						m.SetF32(coefsBase, j*n+g, float32(base+rng.Float64()*0.1-0.05))
					}
				}
			},
			// White noise: coefficients i.i.d. over [-1, 1), so the sign
			// and -0.5 threshold tests decorrelate across each warp.
			Noise: func(m *interp.Memory) {
				rng := rand.New(rand.NewSource(noiseSeed + 13))
				for i := int64(0); i < n*4; i++ {
					m.SetF32(coefsBase, i, float32(rng.Float64()*2-1))
				}
			},
			Launch:  gpusim.Launch{GridDim: n / 128, BlockDim: 128},
			Outputs: []Region{{"vals", valsBase, n, "f32"}, {"grads", gradsBase, n, "f32"}},
		}
	},
}

// CCS chains several small constant-trip-count loops. The baseline fully
// unrolls and predicates them; u&u applied to such a loop suppresses the
// beneficial automatic unrolling — the paper's explanation for the ccs
// slowdown.
var CCS = &Benchmark{
	Name:         "ccs",
	AppCodeBytes: 3000,
	AppCompileMs: 12,
	Category:     "Bioinformatics",
	CommandLine:  "-t 0.9 -i Data_Constant_100_1_bicluster.txt -m 50 -p 1 -g 100.0 -r 100",
	KernelPct:    0.9998,
	Source: `
kernel ccs(double* restrict a, double* restrict out, long n) {
  long gid = (long)global_id();
  if (gid >= n) { return; }
  double acc = a[gid];
  for (long i = 0; i < 6; i++) {
    if (acc > 1.0) { acc *= 0.5; } else { acc += 0.3; }
  }
  for (long i = 0; i < 6; i++) {
    if (acc > 0.8) { acc -= 0.2; } else { acc *= 1.1; }
  }
  for (long i = 0; i < 6; i++) {
    if (acc < 0.5) { acc += 0.05; } else { acc -= 0.01; }
  }
  for (long i = 0; i < 5; i++) {
    if (acc > 0.6) { acc *= 0.9; } else { acc += 0.02; }
  }
  out[gid] = acc;
}
`,
	NewWorkload: func() *Workload {
		const n = 8192
		aBase := int64(0)
		outBase := aBase + 8*n
		return &Workload{
			Args:    []interp.Value{interp.IntVal(aBase), interp.IntVal(outBase), interp.IntVal(n)},
			MemSize: outBase + 8*n,
			Init: func(m *interp.Memory) {
				rng := rand.New(rand.NewSource(14))
				for i := int64(0); i < n; i++ {
					m.SetF64(aBase, i, rng.Float64()*2)
				}
			},
			// Already i.i.d.; reseeded for the sweep.
			Noise: func(m *interp.Memory) {
				rng := rand.New(rand.NewSource(noiseSeed + 14))
				for i := int64(0); i < n; i++ {
					m.SetF64(aBase, i, rng.Float64()*2)
				}
			},
			Launch:  gpusim.Launch{GridDim: n / 128, BlockDim: 128},
			Outputs: []Region{{"out", outBase, n, "f64"}},
		}
	},
}

// Clink tracks a running minimum with an index update — a two-path loop
// whose merge u&u splits (complete-linkage clustering distance scan).
var Clink = &Benchmark{
	Name:         "clink",
	AppCodeBytes: 6000,
	AppCompileMs: 20,
	Category:     "Machine learning",
	CommandLine:  "no CLI input",
	KernelPct:    0.2723,
	Source: `
kernel clink(double* restrict d, long* restrict idx, double* restrict best, long n, long m) {
  long gid = (long)global_id();
  if (gid >= n) { return; }
  double bv = 1.0e30;
  long bi = 0 - 1;
  for (long j = 0; j < m; j++) {
    double v = d[gid * m + j];
    if (v < bv) {
      bv = v;
      bi = j;
    }
  }
  idx[gid] = bi;
  best[gid] = bv;
}
`,
	NewWorkload: func() *Workload {
		const n, m = 1024, 256
		dBase := int64(0)
		idxBase := dBase + 8*n*m
		bestBase := idxBase + 8*n
		return &Workload{
			Args: []interp.Value{interp.IntVal(dBase), interp.IntVal(idxBase),
				interp.IntVal(bestBase), interp.IntVal(n), interp.IntVal(m)},
			MemSize: bestBase + 8*n,
			Init: func(m_ *interp.Memory) {
				// Distance rows of a warp share structure: a common
				// descending prefix (the running minimum updates in lockstep)
				// followed by noise above it, as clustered inputs give.
				rng := rand.New(rand.NewSource(15))
				for row := int64(0); row < n; row++ {
					group := row / 32
					for j := int64(0); j < m; j++ {
						var v float64
						if j < 40 {
							v = 100 - float64(j)*2 + float64(group%7)*0.1 + rng.Float64()*0.5
						} else {
							v = 50 + rng.Float64()*100
						}
						m_.SetF64(dBase, row*m+j, v)
					}
				}
			},
			// White noise: i.i.d. distances, so the running-minimum update
			// fires at uncorrelated scan positions per lane.
			Noise: func(m_ *interp.Memory) {
				rng := rand.New(rand.NewSource(noiseSeed + 15))
				for i := int64(0); i < n*m; i++ {
					m_.SetF64(dBase, i, rng.Float64()*150)
				}
			},
			Launch:  gpusim.Launch{GridDim: n / 128, BlockDim: 128},
			Outputs: []Region{{"idx", idxBase, n, "i64"}, {"best", bestBase, n, "f64"}},
		}
	},
}

// Complex is the paper's Listing 7: binary exponentiation whose `n & 1`
// condition depends on the thread id, so every warp diverges. The baseline
// predicates the branch; u&u reintroduces long divergent paths and slows
// down — the paper's outlier.
var Complex = &Benchmark{
	Name:         "complex",
	AppCodeBytes: 2500,
	AppCompileMs: 10,
	Category:     "Math",
	CommandLine:  "10000000 1000",
	KernelPct:    0.9991,
	Source: `
kernel cpx(long* restrict out, long a0, long c0, long total) {
  long n = (long)global_id();
  if (n >= total) { return; }
  long idx = n;
  long a = a0;
  long c = c0;
  long a_new = 1;
  long c_new = 0;
  while (n > 0) {
    if ((n & 1) != 0) {
      a_new *= a;
      c_new = c_new * a + c;
    }
    c *= (a + 1);
    a *= a;
    n >>= 1;
  }
  out[idx] = a_new + c_new;
}
`,
	NewWorkload: func() *Workload {
		const total = 8192
		outBase := int64(0)
		return &Workload{
			Args: []interp.Value{interp.IntVal(outBase), interp.IntVal(3),
				interp.IntVal(5), interp.IntVal(total)},
			MemSize: 8 * total,
			Launch:  gpusim.Launch{GridDim: total / 128, BlockDim: 128},
			Outputs: []Region{{"out", outBase, total, "i64"}},
		}
	},
}

// Contract accumulates signed tensor contractions; the sign branch is
// perfectly predicable, so splitting it (u&u) only costs divergence.
var Contract = &Benchmark{
	Name:         "contract",
	AppCodeBytes: 8000,
	AppCompileMs: 25,
	Category:     "Data compression/reduction",
	CommandLine:  "64 5",
	KernelPct:    0.9961,
	Source: `
kernel contract(double* restrict A, double* restrict B, double* restrict C, long n, long k) {
  long gid = (long)global_id();
  if (gid >= n) { return; }
  double acc = 0.0;
  for (long i = 0; i < k; i++) {
    double a = A[gid * k + i];
    double b = B[i];
    if (a > 0.0) {
      acc += a * b;
    } else {
      acc -= a * b;
    }
  }
  C[gid] = acc;
}
`,
	NewWorkload: func() *Workload {
		const n, k = 2048, 128
		aBase := int64(0)
		bBase := aBase + 8*n*k
		cBase := bBase + 8*k
		return &Workload{
			Args: []interp.Value{interp.IntVal(aBase), interp.IntVal(bBase),
				interp.IntVal(cBase), interp.IntVal(n), interp.IntVal(k)},
			MemSize: cBase + 8*n,
			Init: func(m *interp.Memory) {
				// Tensor slices of a warp share sparsity signs per column;
				// per-element noise never crosses zero.
				rng := rand.New(rand.NewSource(16))
				for row := int64(0); row < n; row++ {
					group := row / 32
					for i := int64(0); i < k; i++ {
						sign := 1.0
						if (group+i)%3 == 0 {
							sign = -1
						}
						m.SetF64(aBase, row*k+i, sign*(0.2+rng.Float64()))
					}
				}
				for i := int64(0); i < k; i++ {
					m.SetF64(bBase, i, rng.Float64())
				}
			},
			// White noise: signs i.i.d. per element, so the sign branch
			// splits every warp on most iterations.
			Noise: func(m *interp.Memory) {
				rng := rand.New(rand.NewSource(noiseSeed + 16))
				for i := int64(0); i < n*k; i++ {
					v := 0.2 + rng.Float64()
					if rng.Intn(2) == 0 {
						v = -v
					}
					m.SetF64(aBase, i, v)
				}
				for i := int64(0); i < k; i++ {
					m.SetF64(bBase, i, rng.Float64())
				}
			},
			Launch:  gpusim.Launch{GridDim: n / 128, BlockDim: 128},
			Outputs: []Region{{"C", cBase, n, "f64"}},
		}
	},
}

// Coordinates runs an iterative projection whose loop the baseline fully
// unrolls into a straight-line body that thrashes the instruction cache;
// u&u (any factor) suppresses that unrolling, which alone is the speedup —
// the paper's RQ1 explanation for coordinates.
var Coordinates = &Benchmark{
	Name:         "coordinates",
	AppCodeBytes: 30000,
	AppCompileMs: 70,
	Category:     "Geographic information system",
	CommandLine:  "10000000 1000",
	KernelPct:    0.9263,
	Source: `
kernel coords(double* restrict lat, double* restrict lon, double* restrict out, long n) {
  long gid = (long)global_id();
  if (gid >= n) { return; }
  double x = lat[gid];
  double y = lon[gid];
  double phi = y;
  for (long it = 0; it < 32; it++) {
    double s2 = sin(2.0 * phi);
    double c2 = cos(2.0 * phi);
    double s4 = sin(4.0 * phi) * 0.25;
    double c4 = cos(4.0 * phi) * 0.25;
    phi = phi - (phi + 0.0067 * s2 + 0.0001 * s4 - y) / (1.0 + 0.0134 * c2 + 0.0004 * c4);
    if (phi > 1.5707) { phi = 1.5707; }
    if (phi < -1.5707) { phi = -1.5707; }
  }
  out[gid] = phi + 0.001 * x;
}
`,
	NewWorkload: func() *Workload {
		const n = 2048
		latBase := int64(0)
		lonBase := latBase + 8*n
		outBase := lonBase + 8*n
		return &Workload{
			Args: []interp.Value{interp.IntVal(latBase), interp.IntVal(lonBase),
				interp.IntVal(outBase), interp.IntVal(n)},
			MemSize: outBase + 8*n,
			Init: func(m *interp.Memory) {
				rng := rand.New(rand.NewSource(17))
				for i := int64(0); i < n; i++ {
					m.SetF64(latBase, i, rng.Float64()*3-1.5)
					m.SetF64(lonBase, i, rng.Float64()*1.4-0.7)
				}
			},
			// Already i.i.d.; reseeded for the sweep.
			Noise: func(m *interp.Memory) {
				rng := rand.New(rand.NewSource(noiseSeed + 17))
				for i := int64(0); i < n; i++ {
					m.SetF64(latBase, i, rng.Float64()*3-1.5)
					m.SetF64(lonBase, i, rng.Float64()*1.4-0.7)
				}
			},
			Launch:  gpusim.Launch{GridDim: n / 128, BlockDim: 128},
			Outputs: []Region{{"out", outBase, n, "f64"}},
		}
	},
}
