package codegen

import (
	"strings"
	"testing"

	"uu/internal/ir"
	"uu/internal/irparse"
)

func lower(t *testing.T, src string) *Program {
	t.Helper()
	f, err := irparse.ParseFunc(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := ir.Verify(f); err != nil {
		t.Fatalf("verify: %v", err)
	}
	p, err := Lower(f)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

func TestLowerStraightLine(t *testing.T) {
	p := lower(t, `
func @k(f64* noalias %x, i64 %i) {
entry:
  %p = gep f64* %x, i64 %i
  %v = load f64* %p
  %w = fmul f64 %v, f64 2.0
  store f64 %w, f64* %p
  ret
}
`)
	// GEP lowers to shl+add (the paper's Listing 4 address pattern).
	txt := p.String()
	if !strings.Contains(txt, "shl.i64") || !strings.Contains(txt, "add.i64") {
		t.Fatalf("GEP not lowered to shl+add:\n%s", txt)
	}
	if p.CountKind(KLd) != 1 || p.CountKind(KSt) != 1 || p.CountKind(KRet) != 1 {
		t.Fatalf("memory ops wrong:\n%s", txt)
	}
	if p.CodeBytes() != int64(p.NumInstrs())*BytesPerInstr {
		t.Fatalf("CodeBytes mismatch")
	}
}

func TestLowerPhiBecomesMov(t *testing.T) {
	p := lower(t, `
func @k(i64 %n) -> i64 {
entry:
  br %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i2, %loop ]
  %i2 = add i64 %i, i64 1
  %c = icmp slt i64 %i2, i64 %n
  condbr i1 %c, %loop, %exit
exit:
  %r = phi i64 [ %i2, %loop ]
  ret i64 %r
}
`)
	// The loop-carried phi needs a mov on the back edge; critical-edge
	// splitting may add a block for the exit phi.
	if p.CountKind(KMov) < 1 {
		t.Fatalf("no movs emitted for phis:\n%s", p.String())
	}
	if p.CountKind(KSetp) != 1 || p.CountKind(KCondBra) != 1 {
		t.Fatalf("control lowering wrong:\n%s", p.String())
	}
}

func TestLowerPhiSwapCycle(t *testing.T) {
	// Swapping phis form a parallel-copy cycle that needs a temporary.
	p := lower(t, `
func @k(i64 %n) -> i64 {
entry:
  br %loop
loop:
  %a = phi i64 [ 0, %entry ], [ %b, %loop ]
  %b = phi i64 [ 1, %entry ], [ %a, %loop ]
  %i = phi i64 [ 0, %entry ], [ %i2, %loop ]
  %i2 = add i64 %i, i64 1
  %c = icmp slt i64 %i2, i64 %n
  condbr i1 %c, %loop, %exit
exit:
  %r = phi i64 [ %a, %loop ]
  ret i64 %r
}
`)
	// a<->b swap: 3 movs on the backedge (tmp, a, b) plus i2->i and exits.
	if p.CountKind(KMov) < 3 {
		t.Fatalf("cycle not broken with a temp:\n%s", p.String())
	}
}

func TestLowerRejectsAllocas(t *testing.T) {
	f, err := irparse.ParseFunc(`
func @k() {
entry:
  %a = alloca i64
  ret
}
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := Lower(f); err == nil {
		t.Fatalf("Lower accepted an alloca")
	}
}

func TestSelectLowersToSelp(t *testing.T) {
	p := lower(t, `
func @k(i64 %a, i64 %b) -> i64 {
entry:
  %c = icmp sgt i64 %a, i64 %b
  %s = select i1 %c, i64 %a, i64 %b
  ret i64 %s
}
`)
	if p.CountKind(KSelp) != 1 {
		t.Fatalf("select not lowered to selp:\n%s", p.String())
	}
	if got := p.Blocks[0].Instrs[1].Class(); got != ClassMisc {
		t.Fatalf("selp classified as %v, want misc", got)
	}
}

func TestClassesAndIssueCosts(t *testing.T) {
	cases := []struct {
		in   Instr
		cls  Class
		cost int64
	}{
		{Instr{Kind: KMov, Type: ir.I64}, ClassMisc, 1},
		{Instr{Kind: KCvt, IROp: ir.OpSExt, Type: ir.I64}, ClassMisc, 1},
		{Instr{Kind: KBra}, ClassControl, 2},
		{Instr{Kind: KRet}, ClassControl, 2},
		{Instr{Kind: KLd, Type: ir.F64}, ClassMemory, 1},
		{Instr{Kind: KSpecial, IROp: ir.OpTID}, ClassSpecial, 1},
		{Instr{Kind: KCompute, IROp: ir.OpAdd, Type: ir.I64}, ClassCompute, 1},
		{Instr{Kind: KCompute, IROp: ir.OpSDiv, Type: ir.I64}, ClassCompute, 8},
		{Instr{Kind: KCompute, IROp: ir.OpSqrt, Type: ir.F64}, ClassCompute, 4},
	}
	for _, tc := range cases {
		if got := tc.in.Class(); got != tc.cls {
			t.Errorf("class(%v) = %v, want %v", tc.in.Kind, got, tc.cls)
		}
		if got := tc.in.IssueCycles(); got != tc.cost {
			t.Errorf("issue(%v/%v) = %d, want %d", tc.in.Kind, tc.in.IROp, got, tc.cost)
		}
	}
}

func TestIPDomComputed(t *testing.T) {
	p := lower(t, `
func @k(i64 %a) -> i64 {
entry:
  %c = icmp sgt i64 %a, i64 0
  condbr i1 %c, %t, %f
t:
  br %m
f:
  br %m
m:
  %r = phi i64 [ 1, %t ], [ 2, %f ]
  ret i64 %r
}
`)
	if len(p.IPDom) != len(p.Blocks) {
		t.Fatalf("ipdom size mismatch")
	}
	// entry's immediate post-dominator is m.
	var entryIdx, mIdx int
	for i, b := range p.Blocks {
		if b.Name == "entry" {
			entryIdx = i
		}
		if b.Name == "m" {
			mIdx = i
		}
	}
	if p.IPDom[entryIdx] != mIdx {
		t.Fatalf("ipdom(entry) = %d, want %d (m)", p.IPDom[entryIdx], mIdx)
	}
	if p.IPDom[mIdx] != -1 {
		t.Fatalf("ipdom(m) = %d, want -1 (exit)", p.IPDom[mIdx])
	}
}

func TestLowerRecordsCvtSrcType(t *testing.T) {
	// Every conversion must carry its operand type: the simulator's zext
	// relies on SrcType for the zero-extension mask instead of guessing
	// the width from the runtime value.
	p := lower(t, `
func @k(i8* noalias %p, i64* noalias %q, i1 %b) {
entry:
  %v = load i8* %p
  %z = zext i8 %v to i64
  %w = zext i1 %b to i64
  %s = add i64 %z, i64 %w
  store i64 %s, i64* %q
  ret
}
`)
	var zexts []*Instr
	for _, b := range p.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Kind == KCvt {
				if in.SrcType == nil {
					t.Fatalf("KCvt %s without SrcType:\n%s", in.IROp, p.String())
				}
				if in.IROp == ir.OpZExt {
					zexts = append(zexts, in)
				}
			}
		}
	}
	if len(zexts) != 2 {
		t.Fatalf("want 2 zexts, got %d:\n%s", len(zexts), p.String())
	}
	if zexts[0].SrcType != ir.I8 || zexts[0].Type != ir.I64 {
		t.Fatalf("zext i8->i64 recorded as %s->%s", zexts[0].SrcType, zexts[0].Type)
	}
	if zexts[1].SrcType != ir.I1 {
		t.Fatalf("zext i1->i64 recorded source %s", zexts[1].SrcType)
	}
}
