package codegen

import (
	"fmt"
	"math/bits"

	"uu/internal/analysis"
	"uu/internal/ir"
	"uu/internal/transform"
)

// Lower compiles an IR function to VPTX. It mutates f slightly (critical
// edges into phi-bearing blocks are split so phi copies have a home), then
// performs a standard phi-elimination lowering with parallel-copy
// sequencing. Allocas must have been promoted (run a pipeline first).
func Lower(f *ir.Function) (*Program, error) {
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			if in.Op == ir.OpAlloca {
				return nil, fmt.Errorf("codegen: %s contains an alloca; run mem2reg first", f.Name)
			}
		}
	}
	splitCriticalEdges(f)

	lw := &lowerer{
		f:    f,
		prog: &Program{Name: f.Name},
		regs: map[ir.Value]Reg{},
	}
	// Parameters get the first registers.
	for _, p := range f.Params {
		r := lw.newReg()
		lw.regs[p] = r
		lw.prog.ParamRegs = append(lw.prog.ParamRegs, r)
		lw.prog.ParamTyps = append(lw.prog.ParamTyps, p.Typ)
	}
	// Reverse postorder block layout.
	order := rpo(f)
	index := map[*ir.Block]int{}
	for i, b := range order {
		index[b] = i
		lw.prog.Blocks = append(lw.prog.Blocks, &Block{Index: i, Name: b.Name})
	}
	lw.index = index

	// Pre-assign result registers (phis included) so forward references work.
	for _, b := range order {
		for _, in := range b.Instrs() {
			if in.Type() != ir.Void {
				lw.regs[in] = lw.newReg()
			}
		}
	}
	for i, b := range order {
		if err := lw.lowerBlock(lw.prog.Blocks[i], b); err != nil {
			return nil, err
		}
	}
	lw.prog.NumRegs = int(lw.next)

	// Immediate post-dominators for the simulator's reconvergence stack.
	pdt := analysis.NewPostDomTree(f)
	lw.prog.IPDom = make([]int, len(order))
	for i, b := range order {
		ip := pdt.Idom(b)
		if ip == nil {
			lw.prog.IPDom[i] = -1
		} else {
			lw.prog.IPDom[i] = index[ip]
		}
	}

	// Line table and loop metadata for the profiler: one record per
	// instruction in flat PC order (the simulator's pre-decoded index), each
	// naming its source loc and innermost enclosing loop of the final IR.
	li := analysis.NewLoopInfo(f, analysis.NewDomTree(f))
	for _, l := range li.Loops {
		parent := int32(-1)
		if l.Parent != nil {
			parent = int32(l.Parent.ID)
		}
		loc := ir.BlockLoc(l.Header)
		lw.prog.Loops = append(lw.prog.Loops, LoopMeta{
			ID: int32(l.ID), Parent: parent,
			Line: loc.Line, Iter: loc.Iter, Dup: loc.Dup,
			Depth:  int32(l.Depth()),
			Header: l.Header.Name,
		})
	}
	lw.prog.Lines = make([]LineInfo, 0, lw.prog.NumInstrs())
	for i, vb := range lw.prog.Blocks {
		loopID := int32(-1)
		if l := li.LoopFor(order[i]); l != nil {
			loopID = int32(l.ID)
		}
		for j := range vb.Instrs {
			lw.prog.Lines = append(lw.prog.Lines, LineInfo{
				Loc: vb.Instrs[j].Loc, Block: int32(i), Loop: loopID,
			})
		}
	}
	return lw.prog, nil
}

// splitCriticalEdges splits edges from multi-successor blocks into
// phi-bearing multi-predecessor blocks, so phi copies can be placed on the
// edge.
func splitCriticalEdges(f *ir.Function) {
	for _, b := range append([]*ir.Block(nil), f.Blocks()...) {
		if len(b.Preds()) < 2 || len(b.Phis()) == 0 {
			continue
		}
		for _, p := range append([]*ir.Block(nil), b.Preds()...) {
			if len(p.Succs()) > 1 {
				transform.SplitCriticalEdge(f, p, b)
			}
		}
	}
}

func rpo(f *ir.Function) []*ir.Block {
	seen := map[*ir.Block]bool{}
	var post []*ir.Block
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		seen[b] = true
		for _, s := range b.Succs() {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(f.Entry())
	out := make([]*ir.Block, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		out = append(out, post[i])
	}
	return out
}

type lowerer struct {
	f     *ir.Function
	prog  *Program
	regs  map[ir.Value]Reg
	next  Reg
	index map[*ir.Block]int
	// curLoc is stamped onto every emitted instruction: the loc of the IR
	// instruction currently being lowered, so synthetic expansions (GEP
	// address math, phi-copy movs) inherit their originator's provenance.
	curLoc ir.Loc
}

func (lw *lowerer) newReg() Reg {
	r := lw.next
	lw.next++
	return r
}

func (lw *lowerer) operand(v ir.Value) Operand {
	if c, ok := v.(*ir.Const); ok {
		return immOp(c)
	}
	r, ok := lw.regs[v]
	if !ok {
		panic("codegen: value without register: " + v.Ref())
	}
	return regOp(r)
}

func (lw *lowerer) emit(b *Block, in Instr) {
	in.Loc = lw.curLoc
	b.Instrs = append(b.Instrs, in)
}

func (lw *lowerer) lowerBlock(vb *Block, b *ir.Block) error {
	for _, in := range b.Instrs() {
		if in.IsPhi() {
			continue // becomes copies in predecessors
		}
		if in.IsTerminator() {
			// Phi copies for successors run before the terminator.
			lw.emitPhiCopies(vb, b)
			return lw.lowerTerminator(vb, b, in)
		}
		if err := lw.lowerInstr(vb, in); err != nil {
			return err
		}
	}
	return fmt.Errorf("codegen: block %s has no terminator", b.Name)
}

func (lw *lowerer) lowerInstr(vb *Block, in *ir.Instr) error {
	lw.curLoc = in.Loc()
	dst := NoReg
	if in.Type() != ir.Void {
		dst = lw.regs[in]
	}
	switch in.Op {
	case ir.OpICmp, ir.OpFCmp:
		lw.emit(vb, Instr{Kind: KSetp, IROp: in.Op, Pred: in.Pred, Type: in.Arg(0).Type(),
			Dst: dst, Srcs: []Operand{lw.operand(in.Arg(0)), lw.operand(in.Arg(1))}})
	case ir.OpSelect:
		lw.emit(vb, Instr{Kind: KSelp, Type: in.Type(), Dst: dst,
			Srcs: []Operand{lw.operand(in.Arg(0)), lw.operand(in.Arg(1)), lw.operand(in.Arg(2))}})
	case ir.OpTrunc, ir.OpZExt, ir.OpSExt, ir.OpSIToFP, ir.OpFPToSI, ir.OpFPExt, ir.OpFPTrunc:
		lw.emit(vb, Instr{Kind: KCvt, IROp: in.Op, Type: in.Type(), SrcType: in.Arg(0).Type(),
			Dst: dst, Srcs: []Operand{lw.operand(in.Arg(0))}})
	case ir.OpLoad:
		lw.emit(vb, Instr{Kind: KLd, Type: in.Type(), Dst: dst,
			Srcs: []Operand{lw.operand(in.Arg(0))}})
	case ir.OpStore:
		lw.emit(vb, Instr{Kind: KSt, Type: in.Arg(0).Type(),
			Srcs: []Operand{lw.operand(in.Arg(0)), lw.operand(in.Arg(1))}})
	case ir.OpGEP:
		lw.lowerGEP(vb, in, dst)
	case ir.OpTID, ir.OpNTID, ir.OpCTAID, ir.OpNCTAID:
		lw.emit(vb, Instr{Kind: KSpecial, IROp: in.Op, Type: ir.I32, Dst: dst})
	case ir.OpBarrier:
		lw.emit(vb, Instr{Kind: KBar, Type: ir.Void})
	default:
		// Arithmetic and math intrinsics.
		srcs := make([]Operand, 0, in.NumArgs())
		for i := 0; i < in.NumArgs(); i++ {
			srcs = append(srcs, lw.operand(in.Arg(i)))
		}
		lw.emit(vb, Instr{Kind: KCompute, IROp: in.Op, Type: in.Type(), Dst: dst, Srcs: srcs})
	}
	return nil
}

// lowerGEP expands ptr + idx*size into shl/mul + add, with a sign extension
// when the index is narrower than the 64-bit address — the same sequence as
// the paper's Listing 4 PTX (shl.b64 + add.s64).
func (lw *lowerer) lowerGEP(vb *Block, in *ir.Instr, dst Reg) {
	base := lw.operand(in.Arg(0))
	idx := lw.operand(in.Arg(1))
	idxT := in.Arg(1).Type()
	if idxT != ir.I64 {
		ext := lw.newReg()
		lw.emit(vb, Instr{Kind: KCvt, IROp: ir.OpSExt, Type: ir.I64, SrcType: idxT, Dst: ext, Srcs: []Operand{idx}})
		idx = regOp(ext)
	}
	size := in.Type().Elem.Size()
	scaled := idx
	switch {
	case size == 1:
		// no scaling
	case size&(size-1) == 0:
		sh := lw.newReg()
		lw.emit(vb, Instr{Kind: KCompute, IROp: ir.OpShl, Type: ir.I64, Dst: sh,
			Srcs: []Operand{idx, immOp(ir.ConstInt(ir.I64, int64(bits.TrailingZeros64(uint64(size)))))}})
		scaled = regOp(sh)
	default:
		mu := lw.newReg()
		lw.emit(vb, Instr{Kind: KCompute, IROp: ir.OpMul, Type: ir.I64, Dst: mu,
			Srcs: []Operand{idx, immOp(ir.ConstInt(ir.I64, size))}})
		scaled = regOp(mu)
	}
	lw.emit(vb, Instr{Kind: KCompute, IROp: ir.OpAdd, Type: ir.I64, Dst: dst,
		Srcs: []Operand{base, scaled}})
}

func (lw *lowerer) lowerTerminator(vb *Block, b *ir.Block, in *ir.Instr) error {
	lw.curLoc = in.Loc()
	switch in.Op {
	case ir.OpBr:
		lw.emit(vb, Instr{Kind: KBra, Type: ir.Void,
			Targets: [2]int{lw.index[in.BlockArg(0)], -1}})
	case ir.OpCondBr:
		lw.emit(vb, Instr{Kind: KCondBra, Type: ir.Void,
			Srcs:    []Operand{lw.operand(in.Arg(0))},
			Targets: [2]int{lw.index[in.BlockArg(0)], lw.index[in.BlockArg(1)]}})
	case ir.OpRet:
		lw.emit(vb, Instr{Kind: KRet, Type: ir.Void})
	default:
		return fmt.Errorf("codegen: unknown terminator %s", in.Op)
	}
	return nil
}

// emitPhiCopies places the parallel copies feeding successor phis at the end
// of b (before the terminator). Critical edges were split, so any successor
// with phis has b as its only source of this edge.
func (lw *lowerer) emitPhiCopies(vb *Block, b *ir.Block) {
	type pair struct {
		dst Reg
		src Operand
		typ *ir.Type
		loc ir.Loc
	}
	var pairs []pair
	for _, s := range b.Succs() {
		for _, phi := range s.Phis() {
			v := phi.PhiIncoming(b)
			src := lw.operand(v)
			dst := lw.regs[phi]
			if !src.IsImm() && src.Reg == dst {
				continue
			}
			pairs = append(pairs, pair{dst, src, phi.Type(), phi.Loc()})
		}
	}
	// Parallel copy sequencing: emit copies whose destination is not a
	// pending source; break cycles by saving a source into a temp.
	for len(pairs) > 0 {
		emitted := false
		for i, p := range pairs {
			conflict := false
			for j, q := range pairs {
				if i != j && !q.src.IsImm() && q.src.Reg == p.dst {
					conflict = true
					break
				}
			}
			if conflict {
				continue
			}
			lw.curLoc = p.loc
			lw.emit(vb, Instr{Kind: KMov, Type: p.typ, Dst: p.dst, Srcs: []Operand{p.src}})
			pairs = append(pairs[:i], pairs[i+1:]...)
			emitted = true
			break
		}
		if emitted {
			continue
		}
		// Cycle: all remaining destinations are also pending sources. Move
		// one source aside.
		victim := pairs[0]
		tmp := lw.newReg()
		lw.curLoc = victim.loc
		lw.emit(vb, Instr{Kind: KMov, Type: victim.typ, Dst: tmp, Srcs: []Operand{victim.src}})
		for i := range pairs {
			if !pairs[i].src.IsImm() && pairs[i].src.Reg == victim.src.Reg {
				pairs[i].src = regOp(tmp)
			}
		}
	}
}
