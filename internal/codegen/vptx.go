// Package codegen lowers the SSA IR to VPTX, a PTX-like virtual ISA with
// infinite typed registers. The lowering makes the costs the paper reasons
// about explicit: phi nodes become `mov` chains (the data-movement
// instructions u&u eliminates), selects become `selp`, comparisons `setp`,
// and GEPs expand to `shl`+`add` address arithmetic exactly like the PTX in
// the paper's Listings 4 and 5.
package codegen

import (
	"fmt"
	"strings"
	"sync"

	"uu/internal/ir"
)

// Class buckets instructions the way nvprof's inst_* counters do.
type Class int

// Instruction classes; the simulator accumulates per-class dynamic counts.
const (
	ClassCompute Class = iota // arithmetic, setp, math
	ClassMisc                 // mov, selp, cvt (nvprof inst_misc)
	ClassControl              // bra, ret, bar (nvprof inst_control)
	ClassMemory               // ld, st
	ClassSpecial              // reads of tid/ntid/ctaid/nctaid
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassCompute:
		return "compute"
	case ClassMisc:
		return "misc"
	case ClassControl:
		return "control"
	case ClassMemory:
		return "memory"
	case ClassSpecial:
		return "special"
	}
	return "?"
}

// Kind is the VPTX instruction kind.
type Kind int

// VPTX instruction kinds.
const (
	KInvalid Kind = iota
	KCompute      // IROp arithmetic/math/minmax on Srcs
	KSetp         // predicate compare, IROp = OpICmp/OpFCmp with Pred
	KSelp         // Dst = Srcs[0] ? Srcs[1] : Srcs[2]
	KMov          // Dst = Srcs[0]
	KCvt          // conversion, IROp gives the conversion opcode
	KLd           // Dst = mem[Srcs[0]]
	KSt           // mem[Srcs[1]] = Srcs[0]
	KBra          // unconditional branch to Targets[0]
	KCondBra      // branch on Srcs[0] to Targets[0] else Targets[1]
	KRet          // thread exit
	KBar          // barrier
	KSpecial      // Dst = special register (IROp = OpTID etc.)
)

// Reg is a virtual register index.
type Reg int32

// NoReg marks "no destination".
const NoReg Reg = -1

// Operand is a register or an immediate.
type Operand struct {
	Reg Reg
	Imm ir.Value // *ir.Const when immediate; nil when register
}

// IsImm reports whether the operand is an immediate.
func (o Operand) IsImm() bool { return o.Imm != nil }

func regOp(r Reg) Operand       { return Operand{Reg: r} }
func immOp(c *ir.Const) Operand { return Operand{Reg: NoReg, Imm: c} }

// Instr is one VPTX instruction.
type Instr struct {
	Kind Kind
	IROp ir.Op   // semantic opcode for KCompute/KSetp/KCvt/KSpecial
	Pred ir.Pred // for KSetp
	Type *ir.Type
	// SrcType is the operand type of a KCvt instruction (the width a zext
	// widens *from*); nil for every other kind.
	SrcType *ir.Type
	Dst     Reg
	Srcs    []Operand
	Targets [2]int // block indexes for KBra/KCondBra
	// Loc is the source provenance inherited from the IR instruction this
	// one lowers (synthetic expansions — GEP address math, phi-copy movs —
	// inherit the originating instruction's loc). Not printed by String.
	Loc ir.Loc
}

// Class returns the nvprof-style class of the instruction.
func (in *Instr) Class() Class {
	switch in.Kind {
	case KMov, KSelp, KCvt:
		return ClassMisc
	case KBra, KCondBra, KRet, KBar:
		return ClassControl
	case KLd, KSt:
		return ClassMemory
	case KSpecial:
		return ClassSpecial
	default:
		return ClassCompute
	}
}

// IssueCycles returns the warp issue cost of the instruction, loosely
// following Volta latencies (div and transcendental ops are multi-cycle).
func (in *Instr) IssueCycles() int64 {
	switch in.Kind {
	case KCompute:
		switch in.IROp {
		case ir.OpSDiv, ir.OpUDiv, ir.OpSRem, ir.OpURem:
			return 8
		case ir.OpFDiv:
			return 6
		case ir.OpSqrt, ir.OpExp, ir.OpLog, ir.OpSin, ir.OpCos, ir.OpPow:
			return 4
		}
		return 1
	case KCondBra, KBra, KRet:
		return 2
	default:
		return 1
	}
}

// Block is a VPTX basic block.
type Block struct {
	Index  int
	Name   string
	Instrs []Instr
}

// Program is a lowered kernel.
type Program struct {
	Name    string
	Blocks  []*Block
	NumRegs int
	// ParamRegs[i] is the register preloaded with parameter i at launch.
	ParamRegs []Reg
	ParamTyps []*ir.Type
	// ipdom[b] is the immediate post-dominator block index of b (-1 = exit);
	// the simulator's reconvergence stack uses it.
	IPDom []int

	// Lines is the line table: one record per instruction in flat PC order
	// (blocks in layout order, instructions in block order — the same global
	// index the simulator's pre-decoded form and per-PC profile counters
	// use). Lines[pc] gives the source provenance and enclosing loop of the
	// instruction at pc.
	Lines []LineInfo
	// Loops describes the natural loops of the final (post-optimization) IR,
	// indexed by position; LineInfo.Loop holds the LoopMeta ID. Parent links
	// let a profiler reconstruct the loop nest chain for stack rendering.
	Loops []LoopMeta

	// DecodedOnce guards Decoded, an opaque slot where a consumer caches a
	// derived form of the program. The simulator stores its pre-decoded
	// instruction stream here so decoding happens once per compiled program
	// and is shared across warps, launches, and worker counts. Programs are
	// immutable after Lower, so the cache never invalidates.
	DecodedOnce sync.Once
	Decoded     any
}

// LineInfo is one line-table record: the provenance of the VPTX instruction
// at a flat PC.
type LineInfo struct {
	Loc   ir.Loc // source provenance; zero when unknown
	Block int32  // block index (layout order)
	Loop  int32  // LoopMeta ID of the innermost enclosing loop, -1 when none
}

// LoopMeta describes one natural loop of the lowered function.
type LoopMeta struct {
	ID     int32  // deterministic loop id (header RPO order)
	Parent int32  // ID of the enclosing loop, -1 at top level
	Line   int32  // anchoring source line of the header (ir.BlockLine), 0 if unknown
	Iter   int32  // unroll-iteration clone tag of the header (ir.Loc.Iter)
	Dup    int32  // unmerge path-duplication clone tag of the header (ir.Loc.Dup)
	Depth  int32  // nesting depth, 1 = outermost
	Header string // header block name
}

// Origin returns the header's full source provenance (line + clone tags).
// Loops sharing a Line but differing in Iter/Dup are unroll/unmerge clones
// of the same source loop; the profiler's predicted-vs-measured join uses
// the full origin so clones can't double-count or mask each other.
func (m *LoopMeta) Origin() ir.Loc {
	return ir.Loc{Line: m.Line, Iter: m.Iter, Dup: m.Dup}
}

// LoopByID returns the LoopMeta with the given id, or nil.
func (p *Program) LoopByID(id int32) *LoopMeta {
	for i := range p.Loops {
		if p.Loops[i].ID == id {
			return &p.Loops[i]
		}
	}
	return nil
}

// NumInstrs returns the total instruction count.
func (p *Program) NumInstrs() int {
	n := 0
	for _, b := range p.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// BytesPerInstr is the modelled encoded size of one instruction (SASS on
// Volta uses 16 bytes per instruction pair slot; we use 8 per instruction).
const BytesPerInstr = 8

// CodeBytes returns the modelled binary size of the program — the quantity
// Figure 6b reports ratios of.
func (p *Program) CodeBytes() int64 { return int64(p.NumInstrs()) * BytesPerInstr }

// String renders the program in a PTX-like syntax.
func (p *Program) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, ".kernel %s (regs=%d)\n", p.Name, p.NumRegs)
	for _, b := range p.Blocks {
		fmt.Fprintf(&sb, "$%s:\n", b.Name)
		for i := range b.Instrs {
			sb.WriteString("  ")
			sb.WriteString(p.instrString(&b.Instrs[i]))
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

func (p *Program) instrString(in *Instr) string {
	opnd := func(o Operand) string {
		if o.IsImm() {
			return o.Imm.Ref()
		}
		return fmt.Sprintf("%%r%d", o.Reg)
	}
	var srcs []string
	for _, s := range in.Srcs {
		srcs = append(srcs, opnd(s))
	}
	dst := ""
	if in.Dst != NoReg {
		dst = fmt.Sprintf("%%r%d, ", in.Dst)
	}
	switch in.Kind {
	case KCompute:
		return fmt.Sprintf("%s.%s %s%s", in.IROp, in.Type, dst, strings.Join(srcs, ", "))
	case KSetp:
		return fmt.Sprintf("setp.%s.%s %s%s", in.Pred, in.Type, dst, strings.Join(srcs, ", "))
	case KSelp:
		return fmt.Sprintf("selp.%s %s%s", in.Type, dst, strings.Join(srcs, ", "))
	case KMov:
		return fmt.Sprintf("mov.%s %s%s", in.Type, dst, srcs[0])
	case KCvt:
		return fmt.Sprintf("cvt.%s.%s %s%s", in.IROp, in.Type, dst, srcs[0])
	case KLd:
		return fmt.Sprintf("ld.%s %s[%s]", in.Type, dst, srcs[0])
	case KSt:
		return fmt.Sprintf("st.%s [%s], %s", in.Type, srcs[1], srcs[0])
	case KBra:
		return fmt.Sprintf("bra $%s", p.Blocks[in.Targets[0]].Name)
	case KCondBra:
		return fmt.Sprintf("@%s bra $%s, $%s", srcs[0], p.Blocks[in.Targets[0]].Name, p.Blocks[in.Targets[1]].Name)
	case KRet:
		return "ret"
	case KBar:
		return "bar.sync"
	case KSpecial:
		return fmt.Sprintf("mov.special %s%%%s", dst, in.IROp)
	}
	return "??"
}

// CountKind returns the static number of instructions of the given kind —
// used by tests mirroring the paper's Listing 4/5 comparison (selp vs mov).
func (p *Program) CountKind(k Kind) int {
	n := 0
	for _, b := range p.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Kind == k {
				n++
			}
		}
	}
	return n
}
