// Package telemetry is the production-metrics layer of the compile
// service and the benchmark harness: atomic counters, gauges, and
// log-linear (HDR-style) latency histograms with exact-max quantile
// extraction, deterministic merge, and Prometheus text exposition.
//
// The package is deliberately a leaf: it imports only the standard
// library, so every layer (serve, bench, CLIs) can depend on it, and it
// follows the repository's nil-receiver discipline — a nil *Counter,
// *Gauge, or *Histogram is the disabled sink whose every method is a
// no-op, so instrumentation sites cost one nil check and zero
// allocations when telemetry is off.
//
// Two properties are load-bearing, mirroring internal/remark:
//
//   - Bounded, allocation-free recording. Histogram.Observe is a fixed
//     number of atomic operations into a fixed-size bucket array; there
//     is no sampling, no locking, and no allocation on the hot path, so
//     the serving layer can record every request.
//
//   - Deterministic merge. A histogram snapshot is a sparse, index-sorted
//     bucket list; merging N shard snapshots is commutative and
//     associative, so shards merged in any order render byte-identically
//     — the same contract the remark and profile layers obey for any
//     worker count.
package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count. A nil *Counter is
// the disabled sink.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters are monotone).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level — queue depth, in-flight requests —
// that can move both ways. A nil *Gauge is the disabled sink.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the level.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the level by n (n may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram bucket scheme: log-linear, the layout HDR histograms use.
// Values below 2*subCount are recorded exactly (width-1 buckets); above
// that, every octave [2^k, 2^(k+1)) is split into subCount buckets, so
// the relative bucket width — and therefore the worst-case quantile
// error — is bounded by 1/subCount = 2^-subBits ≈ 3.1%.
const (
	subBits  = 5
	subCount = 1 << subBits // 32 sub-buckets per octave
	// maxOctave covers every non-negative int64: the top value 2^63-1 has
	// msb 62, octave 62-subBits.
	maxOctave  = 62 - subBits
	numBuckets = subCount*maxOctave + 2*subCount
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < 2*subCount {
		return int(u) // exact region
	}
	octave := bits.Len64(u) - 1 - subBits
	top := u >> uint(octave) // in [subCount, 2*subCount)
	return octave*subCount + int(top)
}

// bucketBounds returns the inclusive value range [lo, hi] of a bucket.
func bucketBounds(idx int) (lo, hi int64) {
	if idx < 2*subCount {
		return int64(idx), int64(idx)
	}
	octave := idx/subCount - 1
	top := uint64(idx - octave*subCount)
	lo = int64(top << uint(octave))
	hi = int64((top+1)<<uint(octave)) - 1
	return lo, hi
}

// Histogram is a fixed-size log-linear latency histogram safe for
// concurrent recording: every field is atomic and Observe performs no
// allocation. Values are non-negative int64s in a caller-chosen unit
// (the serving layer records nanoseconds); negatives clamp to zero.
// A nil *Histogram is the disabled sink.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64 // exact observed maximum; meaningful when count > 0
	buckets [numBuckets]atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// ObserveSince records the nanoseconds elapsed since t.
func (h *Histogram) ObserveSince(t time.Time) { h.ObserveDuration(time.Since(t)) }

// Count returns the number of recorded values.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Bucket is one non-empty histogram bucket in a snapshot.
type Bucket struct {
	Index int   // bucket scheme index; bounds via BucketBounds
	Count int64 // observations in this bucket
}

// BucketBounds exposes the bucket scheme: the inclusive [lo, hi] value
// range of bucket idx.
func BucketBounds(idx int) (lo, hi int64) { return bucketBounds(idx) }

// HistSnapshot is a point-in-time copy of a histogram: a sparse,
// index-sorted bucket list plus the exact count, sum, and maximum.
// Snapshots merge deterministically and serve quantile queries.
//
// A snapshot taken during concurrent recording is mildly torn (Sum and
// Max may trail the buckets by in-flight observations); Count is always
// the bucket total, so quantile ranks stay internally consistent.
type HistSnapshot struct {
	Count   int64
	Sum     int64
	Max     int64
	Buckets []Bucket
}

// Snapshot copies the histogram's current state. A nil histogram yields
// an empty snapshot.
func (h *Histogram) Snapshot() *HistSnapshot {
	s := &HistSnapshot{}
	if h == nil {
		return s
	}
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, Bucket{Index: i, Count: n})
			s.Count += n
		}
	}
	return s
}

// Quantile returns the value at quantile q in [0, 1]: the upper bound of
// the bucket containing the rank-⌈q·Count⌉ observation, clamped to the
// exact maximum (so Quantile(1) is the true max, and every result is
// within one bucket width — ≤ 2^-5 relative — of the true quantile).
// An empty snapshot returns 0.
func (s *HistSnapshot) Quantile(q float64) int64 {
	if s == nil || s.Count == 0 {
		return 0
	}
	rank := int64(q*float64(s.Count) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			lo, hi := bucketBounds(b.Index)
			if s.Max >= lo && s.Max < hi {
				return s.Max
			}
			return hi
		}
	}
	return s.Max
}

// Mean returns the arithmetic mean of the recorded values, or 0 when
// empty.
func (s *HistSnapshot) Mean() float64 {
	if s == nil || s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// CountAtOrBelow returns how many observations were ≤ v, rounded up to
// the enclosing bucket boundary — the CDF read an SLO check needs. The
// result may overcount by at most the population of v's own bucket.
func (s *HistSnapshot) CountAtOrBelow(v int64) int64 {
	if s == nil {
		return 0
	}
	idx := bucketIndex(v)
	var cum int64
	for _, b := range s.Buckets {
		if b.Index > idx {
			break
		}
		cum += b.Count
	}
	return cum
}

// Merge folds other into s. Merging is commutative and associative:
// N shard snapshots merged in any order produce identical snapshots.
func (s *HistSnapshot) Merge(other *HistSnapshot) {
	if other == nil || other.Count == 0 {
		return
	}
	s.Count += other.Count
	s.Sum += other.Sum
	if other.Max > s.Max {
		s.Max = other.Max
	}
	merged := make([]Bucket, 0, len(s.Buckets)+len(other.Buckets))
	i, j := 0, 0
	for i < len(s.Buckets) || j < len(other.Buckets) {
		switch {
		case j >= len(other.Buckets) || (i < len(s.Buckets) && s.Buckets[i].Index < other.Buckets[j].Index):
			merged = append(merged, s.Buckets[i])
			i++
		case i >= len(s.Buckets) || other.Buckets[j].Index < s.Buckets[i].Index:
			merged = append(merged, other.Buckets[j])
			j++
		default:
			merged = append(merged, Bucket{Index: s.Buckets[i].Index, Count: s.Buckets[i].Count + other.Buckets[j].Count})
			i++
			j++
		}
	}
	s.Buckets = merged
}
