package telemetry

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBucketScheme pins the log-linear bucket layout: every value lands
// in a bucket that contains it, indices are monotone in the value, and
// the relative bucket width never exceeds 2^-subBits.
func TestBucketScheme(t *testing.T) {
	var vals []int64
	for v := int64(0); v < 4096; v++ {
		vals = append(vals, v)
	}
	for shift := 12; shift < 63; shift++ {
		base := int64(1) << shift
		vals = append(vals, base-1, base, base+1, base+base/3, 2*base-1)
	}
	vals = append(vals, int64(1<<63-1))
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		vals = append(vals, rng.Int63())
	}

	prevIdx, prevVal := -1, int64(-1)
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, v := range sorted {
		idx := bucketIndex(v)
		lo, hi := bucketBounds(idx)
		if v < lo || v > hi {
			t.Fatalf("value %d landed in bucket %d = [%d, %d]", v, idx, lo, hi)
		}
		if idx < prevIdx {
			t.Fatalf("index not monotone: value %d → bucket %d after value %d → bucket %d", v, idx, prevVal, prevIdx)
		}
		if idx >= numBuckets {
			t.Fatalf("value %d exceeds the bucket array: index %d >= %d", v, idx, numBuckets)
		}
		if width := hi - lo; width > 0 && float64(width) > float64(lo)/float64(subCount) {
			t.Fatalf("bucket %d = [%d, %d] wider than the %g relative bound", idx, lo, hi, 1.0/subCount)
		}
		prevIdx, prevVal = idx, v
	}
}

// TestQuantileExactRegion pins exact quantiles for values in the linear
// region (width-1 buckets): the histogram must reproduce the true order
// statistics, and Quantile(1) the true maximum.
func TestQuantileExactRegion(t *testing.T) {
	h := NewHistogram()
	for v := int64(1); v <= 60; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0, 1}, {0.5, 30}, {0.95, 57}, {0.99, 60}, {1, 60}} {
		if got := s.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if s.Max != 60 || s.Count != 60 || s.Sum != 61*60/2 {
		t.Errorf("snapshot count/sum/max = %d/%d/%d", s.Count, s.Sum, s.Max)
	}
	var empty *Histogram
	if empty.Snapshot().Quantile(0.99) != 0 {
		t.Error("nil histogram quantile should be 0")
	}
}

// TestQuantileRelativeError checks the bucket-scheme error bound on a
// wide log-spread population: every reported quantile must be within
// 2^-subBits relative error of the true order statistic, and never
// exceed the observed maximum.
func TestQuantileRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := NewHistogram()
	var exact []int64
	for i := 0; i < 20000; i++ {
		v := int64(1) << uint(rng.Intn(40))
		v += rng.Int63n(v)
		h.Observe(v)
		exact = append(exact, v)
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999, 1} {
		rank := int(q*float64(len(exact)) + 0.9999999)
		if rank < 1 {
			rank = 1
		}
		truth := exact[rank-1]
		got := s.Quantile(q)
		if got < truth {
			t.Errorf("Quantile(%v) = %d below the true order statistic %d", q, got, truth)
		}
		if float64(got-truth) > float64(truth)/subCount+1 {
			t.Errorf("Quantile(%v) = %d exceeds the relative error bound around %d", q, got, truth)
		}
		if got > s.Max {
			t.Errorf("Quantile(%v) = %d exceeds the exact max %d", q, got, s.Max)
		}
	}
	if s.Quantile(1) != exact[len(exact)-1] {
		t.Errorf("Quantile(1) = %d, want exact max %d", s.Quantile(1), exact[len(exact)-1])
	}
}

// TestConcurrentObserve hammers one histogram from many goroutines; run
// under -race in CI. The totals must come out exact: recording is atomic
// per field and counts never tear.
func TestConcurrentObserve(t *testing.T) {
	const goroutines, per = 16, 5000
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < per; i++ {
				h.Observe(rng.Int63n(1 << 30))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*per)
	}
	var bucketTotal int64
	for _, b := range s.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, s.Count)
	}
}

// renderSnap serializes a snapshot into a canonical byte form for the
// merge-determinism check.
func renderSnap(s *HistSnapshot) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "count=%d sum=%d max=%d\n", s.Count, s.Sum, s.Max)
	for _, b := range s.Buckets {
		lo, hi := BucketBounds(b.Index)
		fmt.Fprintf(&sb, "[%d,%d]=%d\n", lo, hi, b.Count)
	}
	return sb.String()
}

// TestMergeDeterminism pins the shard-merge contract: N shard snapshots
// merged in any order render byte-identically, and identically to the
// histogram that observed everything itself.
func TestMergeDeterminism(t *testing.T) {
	const shards = 7
	rng := rand.New(rand.NewSource(3))
	whole := NewHistogram()
	parts := make([]*HistSnapshot, shards)
	for i := range parts {
		h := NewHistogram()
		for j := 0; j < 500+rng.Intn(500); j++ {
			v := rng.Int63n(1 << 40)
			h.Observe(v)
			whole.Observe(v)
		}
		parts[i] = h.Snapshot()
	}

	var renders []string
	for perm := 0; perm < 20; perm++ {
		order := rng.Perm(shards)
		merged := &HistSnapshot{}
		for _, i := range order {
			merged.Merge(parts[i])
		}
		renders = append(renders, renderSnap(merged))
	}
	for i := 1; i < len(renders); i++ {
		if renders[i] != renders[0] {
			t.Fatalf("merge order %d produced a different snapshot:\n%s\nvs\n%s", i, renders[i], renders[0])
		}
	}
	if want := renderSnap(whole.Snapshot()); renders[0] != want {
		t.Fatalf("merged shards differ from the single histogram:\n%s\nvs\n%s", renders[0], want)
	}
}

// TestCountAtOrBelow pins the CDF read an SLO check uses.
func TestCountAtOrBelow(t *testing.T) {
	h := NewHistogram()
	for v := int64(0); v < 50; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if got := s.CountAtOrBelow(24); got != 25 {
		t.Errorf("CountAtOrBelow(24) = %d, want 25", got)
	}
	if got := s.CountAtOrBelow(1 << 20); got != 50 {
		t.Errorf("CountAtOrBelow(big) = %d, want 50", got)
	}
}

// TestPrometheusGolden pins the exposition format byte-for-byte on a
// small deterministic registry — the scrape contract uutop and the CI
// monotonicity check parse.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("demo_requests_total", "Requests received.")
	c.Add(41)
	c.Inc()
	g := reg.Gauge("demo_queue_depth", "Jobs waiting.")
	g.Set(3)
	reg.GaugeFunc("demo_cache_entries", "Cached results.", func() int64 { return 7 })
	h := reg.DurationHistogram("demo_phase_seconds", "Phase latency.", "phase", "compile")
	h.ObserveDuration(1 * time.Microsecond)
	h.ObserveDuration(1 * time.Microsecond)
	h.ObserveDuration(2 * time.Millisecond)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP demo_cache_entries Cached results.
# TYPE demo_cache_entries gauge
demo_cache_entries 7
# HELP demo_phase_seconds Phase latency.
# TYPE demo_phase_seconds histogram
demo_phase_seconds_bucket{phase="compile",le="1.007e-06"} 2
demo_phase_seconds_bucket{phase="compile",le="0.002031615"} 3
demo_phase_seconds_bucket{phase="compile",le="+Inf"} 3
demo_phase_seconds_sum{phase="compile"} 0.0020020000000000003
demo_phase_seconds_count{phase="compile"} 3
# HELP demo_queue_depth Jobs waiting.
# TYPE demo_queue_depth gauge
demo_queue_depth 3
# HELP demo_requests_total Requests received.
# TYPE demo_requests_total counter
demo_requests_total 42
`
	if sb.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

// TestNilSinksAndZeroAlloc pins the disabled-telemetry contract: nil
// receivers are no-ops, and neither the disabled nor the enabled
// recording path allocates.
func TestNilSinksAndZeroAlloc(t *testing.T) {
	var (
		nilC *Counter
		nilG *Gauge
		nilH *Histogram
	)
	nilC.Inc()
	nilG.Set(5)
	nilH.Observe(100)
	if nilC.Value() != 0 || nilG.Value() != 0 || nilH.Count() != 0 {
		t.Fatal("nil sinks recorded something")
	}

	if n := testing.AllocsPerRun(1000, func() {
		nilC.Inc()
		nilG.Add(2)
		nilH.Observe(12345)
	}); n != 0 {
		t.Errorf("disabled path allocates %v per op, want 0", n)
	}
	c, g, h := &Counter{}, &Gauge{}, NewHistogram()
	v := int64(1)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Add(-1)
		h.Observe(v)
		v += 997
	}); n != 0 {
		t.Errorf("enabled path allocates %v per op, want 0", n)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) * 131)
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) * 131)
	}
}
