package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Registry is a named collection of metrics renderable in the Prometheus
// text exposition format (version 0.0.4). Metrics register once at
// construction time; recording afterwards is lock-free on the metric
// itself. A family (one name, one HELP/TYPE pair) may carry several
// series distinguished by one constant label — the serving layer's
// per-phase histograms share the family serve_phase_seconds with a
// phase label per series.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type family struct {
	name, help, typ string
	series          []*series
}

// series is one sample stream: exactly one of the value sources is set.
type series struct {
	labels    string // rendered constant label pair, e.g. `phase="compile"`, or ""
	counter   *Counter
	counterFn func() int64
	gauge     *Gauge
	gaugeFn   func() int64
	hist      *Histogram
	scale     float64 // exposition multiplier (1e-9 renders nanoseconds as seconds)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

func (r *Registry) register(name, help, typ string, s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %s registered as both %s and %s", name, f.typ, typ))
	}
	f.series = append(f.series, s)
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", &series{counter: c})
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for pre-existing atomic counters owned elsewhere.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.register(name, help, "counter", &series{counterFn: fn})
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", &series{gauge: g})
	return g
}

// GaugeFunc registers a gauge sampled from fn at scrape time (queue
// depth, cache size — levels another structure already tracks).
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.register(name, help, "gauge", &series{gaugeFn: fn})
}

// DurationHistogram registers and returns a histogram that records
// nanoseconds and renders its exposition bucket bounds and sum in
// seconds, the Prometheus convention for latency. labelKV is an
// optional single constant label pair (key, value) distinguishing this
// series within the family.
func (r *Registry) DurationHistogram(name, help string, labelKV ...string) *Histogram {
	h := NewHistogram()
	s := &series{hist: h, scale: 1e-9}
	switch len(labelKV) {
	case 0:
	case 2:
		s.labels = labelKV[0] + `="` + labelKV[1] + `"`
	default:
		panic("telemetry: DurationHistogram takes zero or one (key, value) label pair")
	}
	r.register(name, help, "histogram", s)
	return h
}

// formatFloat renders a sample value the way Prometheus clients do:
// shortest representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelBlock renders a full label block from the constant labels plus an
// optional extra pair (the histogram "le" bound).
func labelBlock(constLabels, extra string) string {
	switch {
	case constLabels == "" && extra == "":
		return ""
	case constLabels == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + constLabels + "}"
	}
	return "{" + constLabels + "," + extra + "}"
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format, families sorted by name, series in registration
// order. Histograms emit cumulative _bucket lines at each non-empty
// bucket's upper bound plus +Inf, then _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := writeSeries(w, f.name, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, name string, s *series) error {
	switch {
	case s.counter != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, labelBlock(s.labels, ""), s.counter.Value())
		return err
	case s.counterFn != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, labelBlock(s.labels, ""), s.counterFn())
		return err
	case s.gauge != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, labelBlock(s.labels, ""), s.gauge.Value())
		return err
	case s.gaugeFn != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, labelBlock(s.labels, ""), s.gaugeFn())
		return err
	case s.hist != nil:
		snap := s.hist.Snapshot()
		var cum int64
		for _, b := range snap.Buckets {
			_, hi := bucketBounds(b.Index)
			cum += b.Count
			le := formatFloat(float64(hi) * s.scale)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelBlock(s.labels, `le="`+le+`"`), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelBlock(s.labels, `le="+Inf"`), snap.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labelBlock(s.labels, ""), formatFloat(float64(snap.Sum)*s.scale)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labelBlock(s.labels, ""), snap.Count)
		return err
	}
	return nil
}
