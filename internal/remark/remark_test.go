package remark

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilCollectorIsDisabledAndSafe(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Fatal("nil collector reports enabled")
	}
	c.Emit(Remark{Kind: Passed, Pass: "x", Name: "y"}) // must not panic
	if c.Remarks() != nil || c.Len() != 0 {
		t.Fatal("nil collector returned remarks")
	}
}

// TestDisabledSinkZeroAlloc pins the disabled-path contract: a guarded
// emission site (Enabled check, no remark built) performs zero
// allocations. This is the structural half of the "disabled sink costs
// nothing measurable" bound; BenchmarkPipelineCompile in internal/bench
// is the wall-clock half.
func TestDisabledSinkZeroAlloc(t *testing.T) {
	var c *Collector
	allocs := testing.AllocsPerRun(1000, func() {
		if c.Enabled() {
			c.Emit(Remark{Kind: Passed, Pass: "p", Name: "n", Args: []Arg{Int("k", 1)}})
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled emission allocated %.1f times per run", allocs)
	}
	var tr *Trace
	allocs = testing.AllocsPerRun(1000, func() {
		if tr.Enabled() {
			tr.Counter(0, "c", map[string]float64{"v": 1})
		}
		tr.Complete(0, "x", "y", time.Time{}, 0, nil)
	})
	if allocs != 0 {
		t.Fatalf("disabled trace allocated %.1f times per run", allocs)
	}
}

func TestCollectorOrderAndYAML(t *testing.T) {
	c := &Collector{}
	c.Emit(Remark{Kind: Passed, Pass: "loop-unroll", Name: "Unrolled", Function: "k", Block: "loop.header",
		Args: []Arg{Int("Factor", 4), Int("TripCount", 16)}})
	c.Emit(Remark{Kind: Missed, Pass: "uu", Name: "ConvergentBailout", Function: "k",
		Args: []Arg{Int("Loop", 2)}})
	c.Emit(Remark{Kind: Analysis, Pass: "uu-heuristic", Name: "LoopCost", Function: "k",
		Args: []Arg{Int("Paths", 3), Int("Size", 40), Int("Estimated", 812), Bool("Selected", true)}})
	if c.Len() != 3 {
		t.Fatalf("got %d remarks", c.Len())
	}

	var b bytes.Buffer
	if err := WriteYAML(&b, c.Remarks(), nil); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := `--- !Passed
Pass:     loop-unroll
Name:     Unrolled
Function: k
Block:    loop.header
Args:
  - Factor: 4
  - TripCount: 16
...
--- !Missed
Pass:     uu
Name:     ConvergentBailout
Function: k
Args:
  - Loop: 2
...
--- !Analysis
Pass:     uu-heuristic
Name:     LoopCost
Function: k
Args:
  - Paths: 3
  - Size: 40
  - Estimated: 812
  - Selected: true
...
`
	if out != want {
		t.Errorf("YAML mismatch:\ngot:\n%s\nwant:\n%s", out, want)
	}

	// Filtered dump keeps only the requested kinds.
	b.Reset()
	kinds, err := ParseKinds("missed")
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteYAML(&b, c.Remarks(), kinds); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); !strings.Contains(got, "!Missed") || strings.Contains(got, "!Passed") {
		t.Errorf("filtered dump wrong:\n%s", got)
	}
}

func TestParseKinds(t *testing.T) {
	all, err := ParseKinds("all")
	if err != nil || !all[Passed] || !all[Missed] || !all[Analysis] {
		t.Fatalf("all: %v %v", all, err)
	}
	pm, err := ParseKinds("passed,missed")
	if err != nil || !pm[Passed] || !pm[Missed] || pm[Analysis] {
		t.Fatalf("passed,missed: %v %v", pm, err)
	}
	if _, err := ParseKinds("bogus"); err == nil {
		t.Fatal("bad kind accepted")
	}
}

func TestYAMLQuoting(t *testing.T) {
	var b bytes.Buffer
	err := WriteYAML(&b, []Remark{{Kind: Missed, Pass: "p", Name: "n", Function: "f",
		Args: []Arg{Str("Reason", "loop #1: it's \"odd\"")}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `'loop #1: it''s "odd"'`) {
		t.Errorf("quoting wrong:\n%s", b.String())
	}
}

func TestTraceJSON(t *testing.T) {
	tr := NewTrace()
	if !tr.Enabled() {
		t.Fatal("trace not enabled")
	}
	start := time.Now()
	tr.Complete(3, "gvn", "pass", start, 1500*time.Microsecond, map[string]any{"changed": true})
	done := tr.Span(1, "codegen", "compile")
	done()
	tr.Counter(0, "sim", map[string]float64{"gld_transactions": 42})
	tr.Instant(0, "campaign-start", "harness", nil)

	var b bytes.Buffer
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   *float64       `json:"ts"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, b.String())
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d events", len(doc.TraceEvents))
	}
	// The chrome://tracing loader requires name/ph/ts/pid/tid on every
	// event; spot-check the complete span carries its duration and lane.
	ev := doc.TraceEvents[0]
	if ev.Name != "gvn" || ev.Ph != "X" || ev.TS == nil || ev.TID != 3 || ev.PID != 1 {
		t.Errorf("bad span event: %+v", ev)
	}
	if doc.TraceEvents[2].Ph != "C" || doc.TraceEvents[2].Args["gld_transactions"] != 42.0 {
		t.Errorf("bad counter event: %+v", doc.TraceEvents[2])
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	// An empty (or nil) trace still writes a loadable document.
	b.Reset()
	var nilTr *Trace
	if err := nilTr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(b.Bytes()) || !strings.Contains(b.String(), "traceEvents") {
		t.Errorf("nil trace output invalid: %s", b.String())
	}
}
