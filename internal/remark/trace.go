package remark

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Trace records wall-clock spans and counter samples across one end-to-end
// run — pipeline phases, pass invocations, codegen, simulator warp batches
// — and exports them in the Chrome trace_event JSON format, loadable in
// Perfetto or chrome://tracing.
//
// Unlike remarks, trace events carry real timestamps: a trace answers
// "where did the wall clock go", not "what did the compiler decide", so it
// is inherently run-specific and exempt from the byte-identical
// determinism contract remarks obey.
//
// A nil *Trace is the disabled sink: every method is a no-op, so
// instrumentation sites cost one nil check when tracing is off. A Trace
// may be shared by concurrent workers; event append is mutex-protected
// and each worker tags its events with its own tid so lanes render
// separately.
type Trace struct {
	mu     sync.Mutex
	t0     time.Time
	events []traceEvent
}

// traceEvent is one Chrome trace_event record. Ph "X" is a complete span
// (ts + dur), "C" a counter sample, "i" an instant.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// NewTrace returns an empty trace whose clock starts now.
func NewTrace() *Trace {
	return &Trace{t0: time.Now()}
}

// Enabled reports whether recording to t does anything.
func (t *Trace) Enabled() bool { return t != nil }

// micros converts an absolute time to the trace's microsecond clock.
func (t *Trace) micros(at time.Time) float64 {
	return float64(at.Sub(t.t0)) / float64(time.Microsecond)
}

// Complete records a finished span: it started at start, lasted dur, and
// belongs to lane tid. args may be nil.
func (t *Trace) Complete(tid int, name, cat string, start time.Time, dur time.Duration, args map[string]any) {
	if t == nil {
		return
	}
	ev := traceEvent{
		Name: name, Cat: cat, Ph: "X",
		TS:  t.micros(start),
		Dur: float64(dur) / float64(time.Microsecond),
		PID: 1, TID: tid, Args: args,
	}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Span starts a span now and returns a closure that completes it. The
// typical call site is:
//
//	defer tr.Span(tid, "codegen", "compile")()
func (t *Trace) Span(tid int, name, cat string) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		t.Complete(tid, name, cat, start, time.Since(start), nil)
	}
}

// Counter records a named set of counter samples on lane tid at the
// current time. Perfetto renders each name as a stacked counter track.
func (t *Trace) Counter(tid int, name string, values map[string]float64) {
	if t == nil {
		return
	}
	args := make(map[string]any, len(values))
	for k, v := range values {
		args[k] = v
	}
	ev := traceEvent{
		Name: name, Ph: "C",
		TS:  t.micros(time.Now()),
		PID: 1, TID: tid, Args: args,
	}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Instant records a zero-duration marker event on lane tid.
func (t *Trace) Instant(tid int, name, cat string, args map[string]any) {
	if t == nil {
		return
	}
	ev := traceEvent{
		Name: name, Cat: cat, Ph: "i",
		TS:  t.micros(time.Now()),
		PID: 1, TID: tid, Args: args,
	}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Len reports how many events were recorded so far.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// WriteJSON writes the trace in the Chrome trace_event JSON object format
// ({"traceEvents": [...], "displayTimeUnit": "ms"}), which Perfetto and
// chrome://tracing load directly.
func (t *Trace) WriteJSON(w io.Writer) error {
	var evs []traceEvent
	if t != nil {
		t.mu.Lock()
		evs = append(evs, t.events...)
		t.mu.Unlock()
	}
	if evs == nil {
		evs = []traceEvent{}
	}
	doc := struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{evs, "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
