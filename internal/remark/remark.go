// Package remark is the structured observability layer of the compiler and
// simulator: optimization remarks in the style of LLVM's
// -fsave-optimization-record, and wall-clock trace spans exportable as
// Chrome trace_event JSON (trace.go).
//
// Remarks are typed events a pass emits while it works — "unrolled this
// loop by 4 because f(p,s,u) = 812 < 1024", "bailed out of loop #2: it
// contains a convergent operation", "GVN deleted 17 instructions" — each
// anchored to a function, and where it makes sense a block. They are the
// paper's missing explanation channel: the metrics tables say *that* u&u
// paid off, the remark stream says *why* (which branches were removed,
// which loads became redundant, where predication backfired).
//
// Two properties are load-bearing:
//
//   - Determinism. A remark never carries a timestamp, a pointer, or a
//     duration; its identity is (kind, pass, name, anchors, args) and its
//     position is its emission order within one compilation. Campaigns
//     that compile in parallel attach one Collector per compilation and
//     concatenate in campaign order, so the assembled stream is
//     byte-identical for any -workers / -sim-workers count.
//
//   - Zero disabled cost. Every emission site guards on
//     Collector.Enabled() (nil receiver = disabled), so a pipeline run
//     without a collector performs no remark work at all — no argument
//     formatting, no allocation, one nil check per site.
//
// remark is deliberately a leaf package: anchors are plain strings, so it
// imports nothing from the repository and every layer (analysis,
// transform, core, pipeline, codegen, gpusim, bench) can depend on it.
package remark

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Kind classifies a remark, mirroring LLVM's three remark flavours.
type Kind uint8

const (
	// Passed reports an optimization that applied.
	Passed Kind = iota
	// Missed reports an optimization that was considered and did not
	// apply, with the reason.
	Missed
	// Analysis reports a fact a pass computed that explains later
	// decisions (heuristic inputs, counters, sim metrics).
	Analysis
)

// String returns the YAML tag name of the kind.
func (k Kind) String() string {
	switch k {
	case Passed:
		return "Passed"
	case Missed:
		return "Missed"
	case Analysis:
		return "Analysis"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ParseKinds parses a -remarks filter spec: "all" or a comma-separated
// subset of passed/missed/analysis.
func ParseKinds(spec string) (map[Kind]bool, error) {
	out := map[Kind]bool{}
	for _, part := range strings.Split(spec, ",") {
		switch strings.TrimSpace(strings.ToLower(part)) {
		case "all":
			out[Passed], out[Missed], out[Analysis] = true, true, true
		case "passed":
			out[Passed] = true
		case "missed":
			out[Missed] = true
		case "analysis":
			out[Analysis] = true
		case "":
		default:
			return nil, fmt.Errorf("remark: bad kind %q (want all, passed, missed, analysis)", part)
		}
	}
	return out, nil
}

// Arg is one typed key/value of a remark's payload. Values are
// pre-rendered strings so a stored remark is immutable and deterministic.
type Arg struct {
	Key string
	Val string
}

// Int renders an integer arg.
func Int(key string, v int64) Arg { return Arg{key, strconv.FormatInt(v, 10)} }

// Str renders a string arg.
func Str(key, v string) Arg { return Arg{key, v} }

// Bool renders a boolean arg.
func Bool(key string, v bool) Arg { return Arg{key, strconv.FormatBool(v)} }

// Float renders a float arg with a fixed format so output is
// byte-identical across platforms.
func Float(key string, v float64) Arg { return Arg{key, strconv.FormatFloat(v, 'g', 6, 64)} }

// Remark is one optimization remark. All anchors are names, not object
// references, so remarks outlive the IR they describe.
type Remark struct {
	Kind Kind
	// Pass is the emitting pass ("loop-unroll", "gvn", "uu-heuristic").
	Pass string
	// Name identifies the event within the pass ("Unrolled",
	// "ConvergentBailout", "DeadInstructions").
	Name string
	// Function is the kernel being compiled (or executed).
	Function string
	// Block optionally anchors the remark to a basic block (a loop's
	// header, an if-converted branch block).
	Block string
	// Args is the typed payload, in emission order.
	Args []Arg
}

// Collector accumulates the remarks of one compilation (or one
// compile+execute run) in emission order. A nil *Collector is the
// disabled sink: Enabled reports false and every method is a no-op, so
// emission sites can be guarded with a single nil check.
//
// A Collector is not safe for concurrent use; campaigns that compile in
// parallel give each compilation its own Collector and merge in campaign
// order (the only ordering that is deterministic across worker counts).
type Collector struct {
	remarks []Remark
}

// NewCollector returns an enabled, empty Collector.
func NewCollector() *Collector { return &Collector{} }

// Enabled reports whether emitting to c does anything. Emission sites
// must check it before building a Remark so the disabled path costs one
// branch and zero allocations.
func (c *Collector) Enabled() bool { return c != nil }

// Emit appends r to the stream. No-op on a nil Collector.
func (c *Collector) Emit(r Remark) {
	if c == nil {
		return
	}
	c.remarks = append(c.remarks, r)
}

// Remarks returns the collected stream in emission order. The slice is
// shared; callers must not mutate it.
func (c *Collector) Remarks() []Remark {
	if c == nil {
		return nil
	}
	return c.remarks
}

// Len reports how many remarks were collected.
func (c *Collector) Len() int {
	if c == nil {
		return 0
	}
	return len(c.remarks)
}

// WriteYAML renders remarks as a stream of YAML documents in the style of
// LLVM's -fsave-optimization-record output: one document per remark,
// tagged with its kind. kinds filters the stream; nil means everything.
func WriteYAML(w io.Writer, remarks []Remark, kinds map[Kind]bool) error {
	var b strings.Builder
	for i := range remarks {
		r := &remarks[i]
		if kinds != nil && !kinds[r.Kind] {
			continue
		}
		b.Reset()
		fmt.Fprintf(&b, "--- !%s\n", r.Kind)
		fmt.Fprintf(&b, "Pass:     %s\n", yamlScalar(r.Pass))
		fmt.Fprintf(&b, "Name:     %s\n", yamlScalar(r.Name))
		fmt.Fprintf(&b, "Function: %s\n", yamlScalar(r.Function))
		if r.Block != "" {
			fmt.Fprintf(&b, "Block:    %s\n", yamlScalar(r.Block))
		}
		if len(r.Args) > 0 {
			b.WriteString("Args:\n")
			for _, a := range r.Args {
				fmt.Fprintf(&b, "  - %s: %s\n", yamlScalar(a.Key), yamlScalar(a.Val))
			}
		}
		b.WriteString("...\n")
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// yamlScalar quotes a scalar when it contains characters that would
// confuse a YAML parser; plain identifiers pass through unquoted.
func yamlScalar(s string) string {
	if s == "" {
		return `''`
	}
	plain := true
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '-' || r == '_' || r == '.' || r == '/' || r == '#' || r == '(' || r == ')' || r == '=' || r == '<' || r == '>' || r == ' ':
		default:
			plain = false
		}
		if !plain {
			break
		}
	}
	if plain && s[0] != ' ' && s[len(s)-1] != ' ' && s[0] != '-' {
		return s
	}
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}
