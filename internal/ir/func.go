package ir

import "fmt"

// Function is an IR function. The first block is the entry block. Kernels are
// functions whose parameters are scalars and device pointers; the simulator
// launches one instance per thread.
type Function struct {
	Name   string
	Params []*Param
	RetTyp *Type

	blocks []*Block
	mod    *Module
	nextID int

	nameCount map[string]int
}

// NewFunction creates a function with the given return type (use ir.Void for
// kernels) detached from any module.
func NewFunction(name string, ret *Type) *Function {
	return &Function{Name: name, RetTyp: ret, nameCount: map[string]int{}}
}

// AddParam appends a parameter and returns it.
func (f *Function) AddParam(name string, t *Type, restrict bool) *Param {
	p := &Param{Name: name, Typ: t, Index: len(f.Params), Restrict: restrict, fn: f}
	f.Params = append(f.Params, p)
	return p
}

// ParamByName returns the parameter with the given name, or nil.
func (f *Function) ParamByName(name string) *Param {
	for _, p := range f.Params {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Blocks returns the function's blocks; Blocks()[0] is the entry block. The
// slice must not be mutated directly.
func (f *Function) Blocks() []*Block { return f.blocks }

// Entry returns the entry block.
func (f *Function) Entry() *Block { return f.blocks[0] }

// NumBlocks returns the number of basic blocks.
func (f *Function) NumBlocks() int { return len(f.blocks) }

// NewBlock creates and appends a block with a unique name derived from name.
func (f *Function) NewBlock(name string) *Block {
	if name == "" {
		name = "bb"
	}
	uniq := name
	if n, ok := f.nameCount[name]; ok {
		f.nameCount[name] = n + 1
		uniq = fmt.Sprintf("%s.%d", name, n)
	} else {
		f.nameCount[name] = 1
	}
	b := &Block{Name: uniq, fn: f}
	f.blocks = append(f.blocks, b)
	return b
}

// BlockByName returns the block with the exact given name, or nil.
func (f *Function) BlockByName(name string) *Block {
	for _, b := range f.blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// RemoveBlock detaches b from the function. The block must have no
// predecessors, and no live block may use values defined in b. Phis in b's
// successors lose their incoming for b.
func (f *Function) RemoveBlock(b *Block) { f.RemoveBlocks([]*Block{b}) }

// RemoveBlocks detaches a group of mutually-referencing blocks (e.g. an
// unreachable region) from the function. No block outside the group may be a
// predecessor of, or use values defined in, the group. Phis in successors
// outside the group lose their incomings from group blocks.
func (f *Function) RemoveBlocks(group []*Block) {
	inGroup := map[*Block]bool{}
	for _, b := range group {
		inGroup[b] = true
	}
	for _, b := range group {
		for _, p := range b.preds {
			if !inGroup[p] {
				panic("ir: RemoveBlocks: block " + b.Name + " still has outside predecessor " + p.Name)
			}
		}
	}
	// Phase 1: detach terminators, fixing phis in outside successors.
	for _, b := range group {
		t := b.Term()
		if t == nil {
			continue
		}
		succs := append([]*Block(nil), t.blocks...)
		b.removeSuccEdges(t)
		t.blocks = nil
		for _, s := range succs {
			if inGroup[s] {
				continue
			}
			for _, phi := range s.Phis() {
				for phi.PhiIncoming(b) != nil {
					phi.PhiRemoveIncoming(b)
				}
			}
		}
	}
	// Phase 2: disconnect all operand links, then clear use lists, so that
	// cross-block references within the group never dangle mid-removal.
	for _, b := range group {
		for _, in := range b.instrs {
			in.dropArgs()
		}
	}
	for _, b := range group {
		for _, in := range b.instrs {
			in.uses = nil
			in.block = nil
		}
		b.instrs = nil
	}
	// Phase 3: unlink from the block list.
	kept := f.blocks[:0]
	for _, x := range f.blocks {
		if !inGroup[x] {
			kept = append(kept, x)
		}
	}
	f.blocks = kept
}

// MoveBlockAfter reorders b to come immediately after pos in the block list
// (layout only; no semantic effect).
func (f *Function) MoveBlockAfter(b, pos *Block) {
	bi, pi := -1, -1
	for i, x := range f.blocks {
		if x == b {
			bi = i
		}
		if x == pos {
			pi = i
		}
	}
	if bi < 0 || pi < 0 {
		panic("ir: MoveBlockAfter: block not in function")
	}
	f.blocks = append(f.blocks[:bi], f.blocks[bi+1:]...)
	if bi < pi {
		pi--
	}
	rest := append([]*Block{b}, f.blocks[pi+1:]...)
	f.blocks = append(f.blocks[:pi+1], rest...)
}

// NumInstrs returns the total instruction count over all blocks.
func (f *Function) NumInstrs() int {
	n := 0
	for _, b := range f.blocks {
		n += len(b.instrs)
	}
	return n
}

// Module is a collection of functions (kernels).
type Module struct {
	Name  string
	funcs []*Function
}

// NewModule creates an empty module.
func NewModule(name string) *Module { return &Module{Name: name} }

// AddFunction appends f to the module.
func (m *Module) AddFunction(f *Function) {
	f.mod = m
	m.funcs = append(m.funcs, f)
}

// Funcs returns the module's functions.
func (m *Module) Funcs() []*Function { return m.funcs }

// FuncByName returns the function with the given name, or nil.
func (m *Module) FuncByName(name string) *Function {
	for _, f := range m.funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// EraseInstrs removes a group of instructions that may reference each other
// (e.g. a dead phi cycle or a dead GEP/load chain). No instruction outside
// the group may use a member of the group.
func EraseInstrs(group []*Instr) {
	inGroup := map[*Instr]bool{}
	for _, in := range group {
		inGroup[in] = true
	}
	for _, in := range group {
		for _, u := range in.Users() {
			if !inGroup[u] {
				panic("ir: EraseInstrs: " + in.Ref() + " still used by " + u.Ref())
			}
		}
	}
	for _, in := range group {
		in.dropArgs()
	}
	for _, in := range group {
		in.uses = nil
		if in.block != nil {
			in.block.Remove(in)
		}
	}
}
