package ir

import (
	"fmt"
	"strings"
)

// String renders the module in the textual IR syntax accepted by irparse.
func (m *Module) String() string {
	var sb strings.Builder
	for i, f := range m.funcs {
		if i > 0 {
			sb.WriteString("\n")
		}
		sb.WriteString(f.String())
	}
	return sb.String()
}

// String renders the function in the textual IR syntax accepted by irparse.
func (f *Function) String() string {
	var sb strings.Builder
	sb.WriteString("func @")
	sb.WriteString(f.Name)
	sb.WriteString("(")
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p.Typ.String())
		if p.Restrict {
			sb.WriteString(" noalias")
		}
		sb.WriteString(" %")
		sb.WriteString(p.Name)
	}
	sb.WriteString(")")
	if f.RetTyp != Void {
		sb.WriteString(" -> ")
		sb.WriteString(f.RetTyp.String())
	}
	sb.WriteString(" {\n")
	for _, b := range f.blocks {
		sb.WriteString(b.Name)
		sb.WriteString(":\n")
		for _, in := range b.instrs {
			sb.WriteString("  ")
			sb.WriteString(in.String())
			sb.WriteString("\n")
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func typedRef(v Value) string { return v.Type().String() + " " + v.Ref() }

// String renders one instruction in the textual IR syntax.
func (in *Instr) String() string {
	var sb strings.Builder
	if in.Typ != Void {
		sb.WriteString(in.Ref())
		sb.WriteString(" = ")
	}
	sb.WriteString(in.Op.String())
	switch in.Op {
	case OpICmp, OpFCmp:
		sb.WriteString(" " + in.Pred.String())
		sb.WriteString(" " + typedRef(in.args[0]) + ", " + typedRef(in.args[1]))
	case OpPhi:
		sb.WriteString(" " + in.Typ.String())
		for i := range in.args {
			if i > 0 {
				sb.WriteString(",")
			}
			sb.WriteString(fmt.Sprintf(" [ %s, %%%s ]", in.args[i].Ref(), in.blocks[i].Name))
		}
	case OpTrunc, OpZExt, OpSExt, OpSIToFP, OpFPToSI, OpFPExt, OpFPTrunc:
		sb.WriteString(" " + typedRef(in.args[0]) + " to " + in.Typ.String())
	case OpAlloca:
		sb.WriteString(" " + in.Typ.Elem.String())
	case OpBr:
		sb.WriteString(" %" + in.blocks[0].Name)
	case OpCondBr:
		sb.WriteString(" " + typedRef(in.args[0]))
		sb.WriteString(", %" + in.blocks[0].Name + ", %" + in.blocks[1].Name)
	case OpRet:
		if len(in.args) > 0 {
			sb.WriteString(" " + typedRef(in.args[0]))
		}
	default:
		for i, a := range in.args {
			if i > 0 {
				sb.WriteString(",")
			}
			sb.WriteString(" " + typedRef(a))
		}
	}
	return sb.String()
}
