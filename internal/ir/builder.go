package ir

import "fmt"

// Builder constructs instructions appended to a current insertion block, with
// result types inferred from operands. It is the primary construction API for
// tests, examples, and the language frontend.
type Builder struct {
	blk *Block
	loc Loc // stamped onto every instruction the builder creates
}

// NewBuilder returns a builder positioned at b (may be nil; call SetBlock).
func NewBuilder(b *Block) *Builder { return &Builder{blk: b} }

// SetBlock moves the insertion point to the end of b.
func (bld *Builder) SetBlock(b *Block) { bld.blk = b }

// Block returns the current insertion block.
func (bld *Builder) Block() *Block { return bld.blk }

// SetLoc sets the source provenance stamped onto subsequently built
// instructions. The frontend calls this once per statement.
func (bld *Builder) SetLoc(l Loc) { bld.loc = l }

// CurLoc returns the provenance currently being stamped.
func (bld *Builder) CurLoc() Loc { return bld.loc }

func (bld *Builder) insert(in *Instr) *Instr {
	in.loc = bld.loc
	bld.blk.Append(in)
	return in
}

func sameType(op Op, a, b Value) *Type {
	if a.Type() != b.Type() {
		panic(fmt.Sprintf("ir.Builder: %s operand type mismatch: %s vs %s",
			op, a.Type(), b.Type()))
	}
	return a.Type()
}

// Bin builds a binary arithmetic instruction of the given opcode.
func (bld *Builder) Bin(op Op, a, b Value) *Instr {
	return bld.insert(NewInstr(op, sameType(op, a, b), a, b))
}

// Add builds an integer add.
func (bld *Builder) Add(a, b Value) *Instr { return bld.Bin(OpAdd, a, b) }

// Sub builds an integer subtract.
func (bld *Builder) Sub(a, b Value) *Instr { return bld.Bin(OpSub, a, b) }

// Mul builds an integer multiply.
func (bld *Builder) Mul(a, b Value) *Instr { return bld.Bin(OpMul, a, b) }

// SDiv builds a signed integer divide.
func (bld *Builder) SDiv(a, b Value) *Instr { return bld.Bin(OpSDiv, a, b) }

// UDiv builds an unsigned integer divide.
func (bld *Builder) UDiv(a, b Value) *Instr { return bld.Bin(OpUDiv, a, b) }

// SRem builds a signed remainder.
func (bld *Builder) SRem(a, b Value) *Instr { return bld.Bin(OpSRem, a, b) }

// URem builds an unsigned remainder.
func (bld *Builder) URem(a, b Value) *Instr { return bld.Bin(OpURem, a, b) }

// Shl builds a left shift.
func (bld *Builder) Shl(a, b Value) *Instr { return bld.Bin(OpShl, a, b) }

// LShr builds a logical right shift.
func (bld *Builder) LShr(a, b Value) *Instr { return bld.Bin(OpLShr, a, b) }

// AShr builds an arithmetic right shift.
func (bld *Builder) AShr(a, b Value) *Instr { return bld.Bin(OpAShr, a, b) }

// And builds a bitwise and.
func (bld *Builder) And(a, b Value) *Instr { return bld.Bin(OpAnd, a, b) }

// Or builds a bitwise or.
func (bld *Builder) Or(a, b Value) *Instr { return bld.Bin(OpOr, a, b) }

// Xor builds a bitwise xor.
func (bld *Builder) Xor(a, b Value) *Instr { return bld.Bin(OpXor, a, b) }

// FAdd builds a floating-point add.
func (bld *Builder) FAdd(a, b Value) *Instr { return bld.Bin(OpFAdd, a, b) }

// FSub builds a floating-point subtract.
func (bld *Builder) FSub(a, b Value) *Instr { return bld.Bin(OpFSub, a, b) }

// FMul builds a floating-point multiply.
func (bld *Builder) FMul(a, b Value) *Instr { return bld.Bin(OpFMul, a, b) }

// FDiv builds a floating-point divide.
func (bld *Builder) FDiv(a, b Value) *Instr { return bld.Bin(OpFDiv, a, b) }

// ICmp builds an integer comparison with predicate p.
func (bld *Builder) ICmp(p Pred, a, b Value) *Instr {
	sameType(OpICmp, a, b)
	in := NewInstr(OpICmp, I1, a, b)
	in.Pred = p
	return bld.insert(in)
}

// FCmp builds a floating-point comparison with predicate p.
func (bld *Builder) FCmp(p Pred, a, b Value) *Instr {
	sameType(OpFCmp, a, b)
	in := NewInstr(OpFCmp, I1, a, b)
	in.Pred = p
	return bld.insert(in)
}

// Select builds a select (cond ? t : f).
func (bld *Builder) Select(cond, t, f Value) *Instr {
	return bld.insert(NewInstr(OpSelect, sameType(OpSelect, t, f), cond, t, f))
}

// Conv builds a conversion instruction to type to.
func (bld *Builder) Conv(op Op, v Value, to *Type) *Instr {
	return bld.insert(NewInstr(op, to, v))
}

// Alloca builds a thread-private scalar slot of element type elem.
func (bld *Builder) Alloca(elem *Type, name string) *Instr {
	in := NewInstr(OpAlloca, PointerTo(elem))
	in.SetName(name)
	return bld.insert(in)
}

// GEP builds pointer arithmetic: ptr + idx*sizeof(elem).
func (bld *Builder) GEP(ptr, idx Value) *Instr {
	if !ptr.Type().IsPtr() {
		panic("ir.Builder: GEP base is not a pointer")
	}
	return bld.insert(NewInstr(OpGEP, ptr.Type(), ptr, idx))
}

// Load builds a load from ptr.
func (bld *Builder) Load(ptr Value) *Instr {
	if !ptr.Type().IsPtr() {
		panic("ir.Builder: Load from non-pointer")
	}
	return bld.insert(NewInstr(OpLoad, ptr.Type().Elem, ptr))
}

// Store builds a store of v to ptr.
func (bld *Builder) Store(v, ptr Value) *Instr {
	if !ptr.Type().IsPtr() || ptr.Type().Elem != v.Type() {
		panic("ir.Builder: Store type mismatch")
	}
	return bld.insert(NewInstr(OpStore, Void, v, ptr))
}

// Phi builds an empty phi of type t at the front of the current block.
// Incoming pairs are added with PhiAddIncoming.
func (bld *Builder) Phi(t *Type, name string) *Instr {
	in := NewInstr(OpPhi, t)
	in.SetName(name)
	in.loc = bld.loc
	bld.blk.InsertAtFront(in)
	return in
}

// Br builds an unconditional branch to target.
func (bld *Builder) Br(target *Block) *Instr {
	in := NewInstr(OpBr, Void)
	in.AddBlockArg(target)
	return bld.insert(in)
}

// CondBr builds a conditional branch on cond.
func (bld *Builder) CondBr(cond Value, ifTrue, ifFalse *Block) *Instr {
	in := NewInstr(OpCondBr, Void, cond)
	in.AddBlockArg(ifTrue)
	in.AddBlockArg(ifFalse)
	return bld.insert(in)
}

// Ret builds a return; v may be nil for void functions.
func (bld *Builder) Ret(v Value) *Instr {
	var in *Instr
	if v == nil {
		in = NewInstr(OpRet, Void)
	} else {
		in = NewInstr(OpRet, Void, v)
	}
	return bld.insert(in)
}

// TID builds threadIdx.x (i32).
func (bld *Builder) TID() *Instr { return bld.insert(NewInstr(OpTID, I32)) }

// NTID builds blockDim.x (i32).
func (bld *Builder) NTID() *Instr { return bld.insert(NewInstr(OpNTID, I32)) }

// CTAID builds blockIdx.x (i32).
func (bld *Builder) CTAID() *Instr { return bld.insert(NewInstr(OpCTAID, I32)) }

// NCTAID builds gridDim.x (i32).
func (bld *Builder) NCTAID() *Instr { return bld.insert(NewInstr(OpNCTAID, I32)) }

// MathUnary builds a unary math intrinsic (sqrt, fabs, exp, log, sin, cos,
// floor) on a float operand.
func (bld *Builder) MathUnary(op Op, v Value) *Instr {
	return bld.insert(NewInstr(op, v.Type(), v))
}

// MathBinary builds a binary math intrinsic (pow, fmin, fmax, smin, smax).
func (bld *Builder) MathBinary(op Op, a, b Value) *Instr {
	return bld.insert(NewInstr(op, sameType(op, a, b), a, b))
}

// Barrier builds a __syncthreads() barrier.
func (bld *Builder) Barrier() *Instr { return bld.insert(NewInstr(OpBarrier, Void)) }
