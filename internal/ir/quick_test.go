package ir

import (
	"testing"
	"testing/quick"
)

// Property: FoldCompare with an inverted predicate is the logical negation.
func TestQuickPredInverseNegates(t *testing.T) {
	preds := []Pred{EQ, NE, SLT, SLE, SGT, SGE, ULT, ULE, UGT, UGE}
	prop := func(a, b int64, predIdx uint8) bool {
		p := preds[int(predIdx)%len(preds)]
		ca, cb := ConstInt(I64, a), ConstInt(I64, b)
		r1 := FoldCompare(OpICmp, p, ca, cb)
		r2 := FoldCompare(OpICmp, p.Inverse(), ca, cb)
		return r1 != nil && r2 != nil && r1.Int != r2.Int
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: FoldCompare with swapped predicate and swapped operands agrees.
func TestQuickPredSwapAgrees(t *testing.T) {
	preds := []Pred{EQ, NE, SLT, SLE, SGT, SGE, ULT, ULE, UGT, UGE}
	prop := func(a, b int64, predIdx uint8) bool {
		p := preds[int(predIdx)%len(preds)]
		ca, cb := ConstInt(I64, a), ConstInt(I64, b)
		r1 := FoldCompare(OpICmp, p, ca, cb)
		r2 := FoldCompare(OpICmp, p.Swapped(), cb, ca)
		return r1 != nil && r2 != nil && r1.Int == r2.Int
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: integer constants are stored in canonical (sign-extended
// truncated) form, and folding matches native Go arithmetic on that form.
func TestQuickFoldMatchesNativeI32(t *testing.T) {
	prop := func(a, b int32) bool {
		ca, cb := ConstInt(I32, int64(a)), ConstInt(I32, int64(b))
		checks := []struct {
			op   Op
			want int64
		}{
			{OpAdd, int64(a + b)},
			{OpSub, int64(a - b)},
			{OpMul, int64(a * b)},
			{OpAnd, int64(a & b)},
			{OpOr, int64(a | b)},
			{OpXor, int64(a ^ b)},
		}
		for _, c := range checks {
			r := FoldBinary(c.op, ca, cb)
			if r == nil || r.Int != c.want {
				return false
			}
		}
		if b != 0 {
			r := FoldBinary(OpSDiv, ca, cb)
			if r == nil || r.Int != int64(a/b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: shift folds mask the shift amount by the type width, as the
// simulator does.
func TestQuickShiftMasking(t *testing.T) {
	prop := func(a int64, sh uint16) bool {
		c := FoldBinary(OpShl, ConstInt(I64, a), ConstInt(I64, int64(sh)))
		want := a << (uint64(sh) & 63)
		return c != nil && c.Int == want
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: zext of a truncated i32 recovers the low 32 bits.
func TestQuickTruncZextRoundTrip(t *testing.T) {
	prop := func(v int64) bool {
		tr := FoldUnary(OpTrunc, ConstInt(I64, v), I32)
		zx := FoldUnary(OpZExt, tr, I64)
		return zx != nil && uint64(zx.Int) == uint64(uint32(v))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ReplaceAllUsesWith removes every use and transfers them to the
// replacement, for arbitrary numbers of uses.
func TestQuickRAUWCounts(t *testing.T) {
	prop := func(nUses uint8) bool {
		n := int(nUses%20) + 1
		f := NewFunction("q", Void)
		entry := f.NewBlock("entry")
		b := NewBuilder(entry)
		x := b.Add(ConstInt(I64, 1), ConstInt(I64, 2))
		y := b.Add(ConstInt(I64, 3), ConstInt(I64, 4))
		var users []*Instr
		for i := 0; i < n; i++ {
			users = append(users, b.Add(x, x))
		}
		b.Ret(nil)
		if x.NumUses() != 2*n {
			return false
		}
		x.ReplaceAllUsesWith(y)
		if x.HasUses() || y.NumUses() != 2*n {
			return false
		}
		for _, u := range users {
			if u.Arg(0) != Value(y) || u.Arg(1) != Value(y) {
				return false
			}
		}
		return Verify(f) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
