// Package ir implements an SSA intermediate representation closely modelled
// on LLVM IR: typed values, basic blocks ending in explicit terminators, phi
// nodes at control-flow merges, and a module/function/block/instruction
// hierarchy. It is the substrate on which all analyses and transformations in
// this repository — including the paper's unroll-and-unmerge pass — operate.
package ir

import (
	"fmt"
	"sync"
)

// Kind enumerates the primitive type kinds of the IR.
type Kind int

// Type kinds. The IR is deliberately small: the GPU kernels in the evaluation
// only need scalar integers, floats, booleans, and pointers to scalars.
const (
	KindVoid Kind = iota
	KindI1
	KindI8
	KindI32
	KindI64
	KindF32
	KindF64
	KindPtr
)

// Type describes the type of an IR value. Types are interned: equal types are
// pointer-identical, so == compares types.
type Type struct {
	Kind Kind
	Elem *Type // element type for KindPtr, nil otherwise
}

// Interned singleton types.
var (
	Void = &Type{Kind: KindVoid}
	I1   = &Type{Kind: KindI1}
	I8   = &Type{Kind: KindI8}
	I32  = &Type{Kind: KindI32}
	I64  = &Type{Kind: KindI64}
	F32  = &Type{Kind: KindF32}
	F64  = &Type{Kind: KindF64}
)

var (
	ptrCacheMu sync.Mutex
	ptrCache   = map[*Type]*Type{}
)

// PointerTo returns the interned pointer type with element type elem. It is
// safe for concurrent use (the experiment harness compiles kernels from
// several goroutines).
func PointerTo(elem *Type) *Type {
	ptrCacheMu.Lock()
	defer ptrCacheMu.Unlock()
	if p, ok := ptrCache[elem]; ok {
		return p
	}
	p := &Type{Kind: KindPtr, Elem: elem}
	ptrCache[elem] = p
	return p
}

// IsInt reports whether t is an integer type (including i1).
func (t *Type) IsInt() bool {
	switch t.Kind {
	case KindI1, KindI8, KindI32, KindI64:
		return true
	}
	return false
}

// IsFloat reports whether t is a floating-point type.
func (t *Type) IsFloat() bool { return t.Kind == KindF32 || t.Kind == KindF64 }

// IsPtr reports whether t is a pointer type.
func (t *Type) IsPtr() bool { return t.Kind == KindPtr }

// Bits returns the bit width of an integer or float type, and 64 for
// pointers (the simulated machine is 64-bit). Void has width 0.
func (t *Type) Bits() int {
	switch t.Kind {
	case KindI1:
		return 1
	case KindI8:
		return 8
	case KindI32, KindF32:
		return 32
	case KindI64, KindF64, KindPtr:
		return 64
	}
	return 0
}

// Size returns the size in bytes of a value of this type as laid out in
// simulated device memory.
func (t *Type) Size() int64 {
	switch t.Kind {
	case KindI1, KindI8:
		return 1
	case KindI32, KindF32:
		return 4
	case KindI64, KindF64, KindPtr:
		return 8
	}
	return 0
}

// String returns the LLVM-like spelling of the type.
func (t *Type) String() string {
	switch t.Kind {
	case KindVoid:
		return "void"
	case KindI1:
		return "i1"
	case KindI8:
		return "i8"
	case KindI32:
		return "i32"
	case KindI64:
		return "i64"
	case KindF32:
		return "f32"
	case KindF64:
		return "f64"
	case KindPtr:
		return t.Elem.String() + "*"
	}
	return fmt.Sprintf("type(%d)", int(t.Kind))
}

// TypeByName maps a type spelling back to the interned type; used by the
// textual IR parser. It returns nil for unknown names.
func TypeByName(s string) *Type {
	switch s {
	case "void":
		return Void
	case "i1":
		return I1
	case "i8":
		return I8
	case "i32":
		return I32
	case "i64":
		return I64
	case "f32":
		return F32
	case "f64":
		return F64
	}
	return nil
}
