package ir

import "fmt"

// Block is a basic block: a straight-line instruction sequence whose last
// instruction is a terminator. Phi nodes, when present, form a prefix of the
// instruction list.
type Block struct {
	Name string

	instrs []*Instr
	preds  []*Block
	fn     *Function
}

// Func returns the containing function.
func (b *Block) Func() *Function { return b.fn }

// Instrs returns the block's instructions in order. The returned slice must
// not be mutated; use the insertion/removal methods.
func (b *Block) Instrs() []*Instr { return b.instrs }

// NumInstrs returns the number of instructions in the block.
func (b *Block) NumInstrs() int { return len(b.instrs) }

// Term returns the block's terminator, or nil if the block is unterminated
// (only legal mid-construction).
func (b *Block) Term() *Instr {
	if n := len(b.instrs); n > 0 && b.instrs[n-1].IsTerminator() {
		return b.instrs[n-1]
	}
	return nil
}

// Phis returns the phi nodes at the head of the block.
func (b *Block) Phis() []*Instr {
	for i, in := range b.instrs {
		if !in.IsPhi() {
			return b.instrs[:i]
		}
	}
	return b.instrs
}

// FirstNonPhi returns the index of the first non-phi instruction.
func (b *Block) FirstNonPhi() int {
	for i, in := range b.instrs {
		if !in.IsPhi() {
			return i
		}
	}
	return len(b.instrs)
}

// Append adds a detached instruction at the end of the block (before nothing;
// callers build blocks front-to-back, terminator last).
func (b *Block) Append(in *Instr) *Instr {
	b.attach(in)
	b.instrs = append(b.instrs, in)
	if in.IsTerminator() {
		b.addSuccEdges(in)
	}
	return in
}

// InsertBefore inserts a detached instruction immediately before pos, which
// must be in this block.
func (b *Block) InsertBefore(in *Instr, pos *Instr) {
	b.attach(in)
	for i, x := range b.instrs {
		if x == pos {
			b.instrs = append(b.instrs, nil)
			copy(b.instrs[i+1:], b.instrs[i:])
			b.instrs[i] = in
			return
		}
	}
	panic("ir: InsertBefore: position not in block")
}

// InsertAtFront inserts a detached instruction at the start of the block
// (before any phis — only valid for phis themselves, which is its main use).
func (b *Block) InsertAtFront(in *Instr) {
	b.attach(in)
	b.instrs = append([]*Instr{in}, b.instrs...)
}

func (b *Block) attach(in *Instr) {
	if in.block != nil {
		panic("ir: instruction already attached to a block")
	}
	in.block = b
	if in.id == 0 && b.fn != nil {
		b.fn.nextID++
		in.id = b.fn.nextID
	}
}

// Remove detaches in from the block without touching its uses. The caller is
// responsible for the instruction having no remaining uses (or for
// reattaching it elsewhere).
func (b *Block) Remove(in *Instr) {
	for i, x := range b.instrs {
		if x == in {
			if in.IsTerminator() {
				b.removeSuccEdges(in)
			}
			b.instrs = append(b.instrs[:i], b.instrs[i+1:]...)
			in.block = nil
			return
		}
	}
	panic("ir: Remove: instruction not in block")
}

// Erase removes in from the block and disconnects its operands. The
// instruction must have no uses.
func (b *Block) Erase(in *Instr) {
	if in.HasUses() {
		panic(fmt.Sprintf("ir: Erase: %s still has %d uses", in.Ref(), in.NumUses()))
	}
	b.Remove(in)
	in.dropArgs()
}

// SetTerm replaces the block's terminator (erasing the old one, if any) with
// the detached terminator t, and updates successor predecessor lists.
func (b *Block) SetTerm(t *Instr) {
	if !t.IsTerminator() {
		panic("ir: SetTerm: not a terminator")
	}
	if old := b.Term(); old != nil {
		b.Erase(old)
	}
	b.Append(t)
}

// Preds returns the predecessor blocks. The slice must not be mutated.
func (b *Block) Preds() []*Block { return b.preds }

// NumPreds returns the number of predecessor edges (counting duplicates from
// multi-edge terminators once per edge).
func (b *Block) NumPreds() int { return len(b.preds) }

// HasPred reports whether p is a predecessor of b.
func (b *Block) HasPred(p *Block) bool {
	for _, x := range b.preds {
		if x == p {
			return true
		}
	}
	return false
}

// Succs returns the successor blocks in terminator order (empty for ret).
func (b *Block) Succs() []*Block {
	t := b.Term()
	if t == nil {
		return nil
	}
	return t.blocks
}

func (b *Block) addSuccEdges(t *Instr) {
	for _, s := range t.blocks {
		s.preds = append(s.preds, b)
	}
}

func (b *Block) removeSuccEdges(t *Instr) {
	for _, s := range t.blocks {
		s.removePred(b)
	}
}

func (b *Block) removePred(p *Block) {
	for i, x := range b.preds {
		if x == p {
			b.preds = append(b.preds[:i], b.preds[i+1:]...)
			return
		}
	}
	panic("ir: removePred: not a predecessor")
}

// ReplaceSucc rewires every terminator edge b→from to b→to, updating
// predecessor lists. Phi nodes in from/to are NOT adjusted; callers handle
// them (as LLVM passes do).
func (b *Block) ReplaceSucc(from, to *Block) {
	t := b.Term()
	n := 0
	for i, s := range t.blocks {
		if s == from {
			t.blocks[i] = to
			from.removePred(b)
			to.preds = append(to.preds, b)
			n++
		}
	}
	if n == 0 {
		panic("ir: ReplaceSucc: " + from.Name + " is not a successor of " + b.Name)
	}
}

// String returns the block label reference ("%name").
func (b *Block) String() string { return "%" + b.Name }
