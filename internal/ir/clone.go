package ir

// ValueMap maps original values to their clones during block duplication.
type ValueMap map[Value]Value

// Lookup returns the mapping for v, or v itself when unmapped (values defined
// outside the cloned region are shared, not cloned).
func (vm ValueMap) Lookup(v Value) Value {
	if nv, ok := vm[v]; ok {
		return nv
	}
	return v
}

// Clone returns a deep copy of f: fresh parameters, blocks, and instructions
// with identical names, IDs, and structure, sharing only immutable values
// (constants, types). Clone(f).String() == f.String(), and mutating the clone
// never affects f — the guard in internal/harden relies on this to snapshot
// the IR before every pass and roll back on a crash or verifier failure.
func Clone(f *Function) *Function {
	nf := &Function{
		Name:      f.Name,
		RetTyp:    f.RetTyp,
		nextID:    f.nextID,
		nameCount: make(map[string]int, len(f.nameCount)),
	}
	for k, v := range f.nameCount {
		nf.nameCount[k] = v
	}
	vmap := ValueMap{}
	for _, p := range f.Params {
		np := &Param{Name: p.Name, Typ: p.Typ, Index: p.Index, Restrict: p.Restrict, fn: nf}
		nf.Params = append(nf.Params, np)
		vmap[p] = np
	}
	bmap := make(map[*Block]*Block, len(f.blocks))
	for _, b := range f.blocks {
		nb := &Block{Name: b.Name, fn: nf}
		nf.blocks = append(nf.blocks, nb)
		bmap[b] = nb
	}
	// First pass: create detached clones so forward references (phis, and
	// any use of a later definition) resolve in the second pass.
	clones := make(map[*Instr]*Instr, f.NumInstrs())
	for _, b := range f.blocks {
		for _, in := range b.instrs {
			ci := &Instr{Op: in.Op, Typ: in.Typ, Pred: in.Pred, id: in.id, name: in.name, loc: in.loc}
			clones[in] = ci
			vmap[in] = ci
		}
	}
	// Second pass: attach operands and block references, then append in
	// order. Append wires successor/predecessor edges for terminators.
	for _, b := range f.blocks {
		nb := bmap[b]
		for _, in := range b.instrs {
			ci := clones[in]
			for _, a := range in.args {
				ci.AddArg(vmap.Lookup(a))
			}
			for _, tb := range in.blocks {
				ci.AddBlockArg(bmap[tb])
			}
			nb.Append(ci)
		}
	}
	// Third pass: replicate the original's historical orderings. The loop
	// above rebuilt predecessor lists and def-use chains in block order,
	// but the original's lists are in mutation-history order — and passes
	// iterate both, so a rollback that reordered them could send the rest
	// of the compilation down a different (equally valid) path than a run
	// that never failed. Containment must be invisible, so match exactly.
	for _, b := range f.blocks {
		nb := bmap[b]
		nb.preds = nb.preds[:0]
		for _, p := range b.preds {
			nb.preds = append(nb.preds, bmap[p])
		}
	}
	for _, b := range f.blocks {
		for _, in := range b.instrs {
			ci := clones[in]
			ci.uses = ci.uses[:0]
			for _, u := range in.uses {
				ci.uses = append(ci.uses, use{clones[u.user], u.idx})
			}
		}
	}
	return nf
}

// Restore replaces dst's entire body (parameters, blocks, instructions, name
// and ID counters) with snapshot's, rebinding ownership so callers holding
// the *Function pointer observe the snapshot state. The snapshot must not be
// used afterwards — its body now belongs to dst. Pair with Clone for
// speculative pass execution: snap := Clone(f); run pass; on failure
// Restore(f, snap).
func Restore(dst, snapshot *Function) {
	dst.Name = snapshot.Name
	dst.RetTyp = snapshot.RetTyp
	dst.Params = snapshot.Params
	dst.blocks = snapshot.blocks
	dst.nextID = snapshot.nextID
	dst.nameCount = snapshot.nameCount
	for _, p := range dst.Params {
		p.fn = dst
	}
	for _, b := range dst.blocks {
		b.fn = dst
	}
	snapshot.Params = nil
	snapshot.blocks = nil
	snapshot.nameCount = nil
}

// CloneBlocks duplicates the given blocks within f, appending suffix to block
// names. Instruction operands and phi/branch block references that point
// inside the cloned region are remapped to the clones; references to values
// and blocks outside the region are left pointing at the originals.
//
// The returned maps translate original blocks/values to their clones. Callers
// (the unroller and unmerger) rewire entry/exit edges and fix up boundary
// phis afterwards.
func CloneBlocks(f *Function, blocks []*Block, suffix string) (map[*Block]*Block, ValueMap) {
	bmap := make(map[*Block]*Block, len(blocks))
	vmap := ValueMap{}
	for _, b := range blocks {
		nb := f.NewBlock(b.Name + suffix)
		bmap[b] = nb
	}
	// First pass: create clone instructions with original operands so that
	// forward references (phis) resolve in the second pass.
	clones := map[*Instr]*Instr{}
	for _, b := range blocks {
		nb := bmap[b]
		for _, in := range b.instrs {
			ci := &Instr{Op: in.Op, Typ: in.Typ, Pred: in.Pred, name: "", loc: in.loc}
			clones[in] = ci
			vmap[in] = ci
			// Append without operands yet; terminators get block args in the
			// second pass so that Append wires predecessor edges correctly.
			if in.IsTerminator() {
				continue
			}
			for _, a := range in.args {
				ci.AddArg(a)
			}
			nb.Append(ci)
		}
	}
	// Second pass: remap operands and block references.
	for _, b := range blocks {
		for _, in := range b.instrs {
			ci := clones[in]
			if in.IsTerminator() {
				for _, a := range in.args {
					ci.AddArg(vmap.Lookup(a))
				}
				for _, tb := range in.blocks {
					if nt, ok := bmap[tb]; ok {
						ci.AddBlockArg(nt)
					} else {
						ci.AddBlockArg(tb)
					}
				}
				bmap[b].Append(ci) // wires pred edges of (possibly external) targets
				continue
			}
			for i, a := range ci.args {
				if na := vmap.Lookup(a); na != a {
					ci.SetArg(i, na)
				}
			}
			if in.IsPhi() {
				for _, ib := range in.blocks {
					if nb, ok := bmap[ib]; ok {
						ci.AddBlockArg(nb)
					} else {
						ci.AddBlockArg(ib)
					}
				}
			}
		}
	}
	return bmap, vmap
}
