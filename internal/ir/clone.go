package ir

// ValueMap maps original values to their clones during block duplication.
type ValueMap map[Value]Value

// Lookup returns the mapping for v, or v itself when unmapped (values defined
// outside the cloned region are shared, not cloned).
func (vm ValueMap) Lookup(v Value) Value {
	if nv, ok := vm[v]; ok {
		return nv
	}
	return v
}

// CloneBlocks duplicates the given blocks within f, appending suffix to block
// names. Instruction operands and phi/branch block references that point
// inside the cloned region are remapped to the clones; references to values
// and blocks outside the region are left pointing at the originals.
//
// The returned maps translate original blocks/values to their clones. Callers
// (the unroller and unmerger) rewire entry/exit edges and fix up boundary
// phis afterwards.
func CloneBlocks(f *Function, blocks []*Block, suffix string) (map[*Block]*Block, ValueMap) {
	bmap := make(map[*Block]*Block, len(blocks))
	vmap := ValueMap{}
	for _, b := range blocks {
		nb := f.NewBlock(b.Name + suffix)
		bmap[b] = nb
	}
	// First pass: create clone instructions with original operands so that
	// forward references (phis) resolve in the second pass.
	clones := map[*Instr]*Instr{}
	for _, b := range blocks {
		nb := bmap[b]
		for _, in := range b.instrs {
			ci := &Instr{Op: in.Op, Typ: in.Typ, Pred: in.Pred, name: ""}
			clones[in] = ci
			vmap[in] = ci
			// Append without operands yet; terminators get block args in the
			// second pass so that Append wires predecessor edges correctly.
			if in.IsTerminator() {
				continue
			}
			for _, a := range in.args {
				ci.AddArg(a)
			}
			nb.Append(ci)
		}
	}
	// Second pass: remap operands and block references.
	for _, b := range blocks {
		for _, in := range b.instrs {
			ci := clones[in]
			if in.IsTerminator() {
				for _, a := range in.args {
					ci.AddArg(vmap.Lookup(a))
				}
				for _, tb := range in.blocks {
					if nt, ok := bmap[tb]; ok {
						ci.AddBlockArg(nt)
					} else {
						ci.AddBlockArg(tb)
					}
				}
				bmap[b].Append(ci) // wires pred edges of (possibly external) targets
				continue
			}
			for i, a := range ci.args {
				if na := vmap.Lookup(a); na != a {
					ci.SetArg(i, na)
				}
			}
			if in.IsPhi() {
				for _, ib := range in.blocks {
					if nb, ok := bmap[ib]; ok {
						ci.AddBlockArg(nb)
					} else {
						ci.AddBlockArg(ib)
					}
				}
			}
		}
	}
	return bmap, vmap
}
