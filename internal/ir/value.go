package ir

import (
	"fmt"
	"math"
)

// Value is anything that can appear as an instruction operand: constants,
// function parameters, and instructions (whose result is the value).
type Value interface {
	// Type returns the type of the value.
	Type() *Type
	// Ref returns the operand spelling of the value in the textual IR
	// (e.g. "%x", "42", "3.5").
	Ref() string
}

// Const is a constant scalar value. Constants are immutable; they may be
// freely shared between functions and modules.
type Const struct {
	Typ   *Type
	Int   int64   // value for integer types (0/1 for i1)
	Float float64 // value for float types
}

// ConstInt returns an integer constant of the given type. The value is
// truncated to the type's width.
func ConstInt(t *Type, v int64) *Const {
	if !t.IsInt() {
		panic("ir.ConstInt: not an integer type: " + t.String())
	}
	return &Const{Typ: t, Int: truncInt(t, v)}
}

// ConstFloat returns a floating-point constant of the given type.
func ConstFloat(t *Type, v float64) *Const {
	if !t.IsFloat() {
		panic("ir.ConstFloat: not a float type: " + t.String())
	}
	if t == F32 {
		v = float64(float32(v))
	}
	return &Const{Typ: t, Float: v}
}

// ConstBool returns the i1 constant for b.
func ConstBool(b bool) *Const {
	if b {
		return True
	}
	return False
}

// Canonical i1 constants.
var (
	True  = &Const{Typ: I1, Int: 1}
	False = &Const{Typ: I1, Int: 0}
)

// truncInt truncates v to the width of integer type t, sign-extending back to
// int64 so that constants are kept in canonical signed form.
func truncInt(t *Type, v int64) int64 {
	switch t.Kind {
	case KindI1:
		return v & 1
	case KindI8:
		return int64(int8(v))
	case KindI32:
		return int64(int32(v))
	default:
		return v
	}
}

// Type implements Value.
func (c *Const) Type() *Type { return c.Typ }

// Ref implements Value.
func (c *Const) Ref() string {
	if c.Typ.IsFloat() {
		if c.Float == math.Trunc(c.Float) && math.Abs(c.Float) < 1e15 {
			return fmt.Sprintf("%.1f", c.Float)
		}
		return fmt.Sprintf("%g", c.Float)
	}
	return fmt.Sprintf("%d", c.Int)
}

// IsZero reports whether the constant is numerically zero.
func (c *Const) IsZero() bool {
	if c.Typ.IsFloat() {
		return c.Float == 0
	}
	return c.Int == 0
}

// IsOne reports whether the constant is numerically one.
func (c *Const) IsOne() bool {
	if c.Typ.IsFloat() {
		return c.Float == 1
	}
	return c.Int == 1
}

// Param is a formal parameter of a function. Kernel parameters are either
// scalars or pointers into simulated device memory.
type Param struct {
	Name     string
	Typ      *Type
	Index    int  // position in the parameter list
	Restrict bool // declared __restrict__ (LLVM noalias): does not alias other params
	fn       *Function
}

// Type implements Value.
func (p *Param) Type() *Type { return p.Typ }

// Ref implements Value.
func (p *Param) Ref() string { return "%" + p.Name }

// Func returns the function this parameter belongs to.
func (p *Param) Func() *Function { return p.fn }

// use records a single operand slot that references an instruction.
type use struct {
	user *Instr
	idx  int
}
