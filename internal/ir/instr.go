package ir

import "fmt"

// Op identifies an instruction opcode.
type Op int

// Instruction opcodes. The set mirrors the subset of LLVM IR (plus NVPTX-style
// GPU intrinsics as first-class ops) needed by the paper's benchmarks.
const (
	OpInvalid Op = iota

	// Integer arithmetic (both operands and result share one integer type).
	OpAdd
	OpSub
	OpMul
	OpSDiv
	OpUDiv
	OpSRem
	OpURem
	OpShl
	OpLShr
	OpAShr
	OpAnd
	OpOr
	OpXor

	// Floating-point arithmetic.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv

	// Comparisons: result type i1; Pred selects the relation.
	OpICmp
	OpFCmp

	// OpSelect: args = [cond i1, trueVal, falseVal].
	OpSelect

	// Conversions (single operand).
	OpTrunc
	OpZExt
	OpSExt
	OpSIToFP
	OpFPToSI
	OpFPExt
	OpFPTrunc

	// Memory. OpAlloca allocates one thread-private scalar slot (only used by
	// the frontend before mem2reg). OpGEP: args = [ptr, index]; result is
	// ptr + index*sizeof(elem). OpLoad: args = [ptr]. OpStore: args =
	// [value, ptr], no result.
	OpAlloca
	OpGEP
	OpLoad
	OpStore

	// OpPhi: args = incoming values, blocks() = parallel incoming blocks.
	OpPhi

	// GPU intrinsics (1-D launch geometry).
	OpTID    // threadIdx.x
	OpNTID   // blockDim.x
	OpCTAID  // blockIdx.x
	OpNCTAID // gridDim.x

	// Math intrinsics. Unary: Sqrt, FAbs, Exp, Log, Sin, Cos, Floor.
	// Binary: Pow, FMin, FMax, SMin, SMax.
	OpSqrt
	OpFAbs
	OpExp
	OpLog
	OpSin
	OpCos
	OpFloor
	OpPow
	OpFMin
	OpFMax
	OpSMin
	OpSMax

	// OpBarrier is __syncthreads(): a convergent operation that must not be
	// made control-flow dependent (the unmerge pass refuses loops with one).
	OpBarrier

	// Terminators. OpBr: blocks()=[target]. OpCondBr: args=[cond],
	// blocks()=[ifTrue, ifFalse]. OpRet: args=[value] or empty for void.
	OpBr
	OpCondBr
	OpRet
)

var opNames = map[Op]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpSDiv: "sdiv", OpUDiv: "udiv",
	OpSRem: "srem", OpURem: "urem", OpShl: "shl", OpLShr: "lshr", OpAShr: "ashr",
	OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpICmp: "icmp", OpFCmp: "fcmp", OpSelect: "select",
	OpTrunc: "trunc", OpZExt: "zext", OpSExt: "sext", OpSIToFP: "sitofp",
	OpFPToSI: "fptosi", OpFPExt: "fpext", OpFPTrunc: "fptrunc",
	OpAlloca: "alloca", OpGEP: "gep", OpLoad: "load", OpStore: "store",
	OpPhi: "phi",
	OpTID: "tid", OpNTID: "ntid", OpCTAID: "ctaid", OpNCTAID: "nctaid",
	OpSqrt: "sqrt", OpFAbs: "fabs", OpExp: "exp", OpLog: "log",
	OpSin: "sin", OpCos: "cos", OpFloor: "floor", OpPow: "pow",
	OpFMin: "fmin", OpFMax: "fmax", OpSMin: "smin", OpSMax: "smax",
	OpBarrier: "barrier",
	OpBr:      "br", OpCondBr: "condbr", OpRet: "ret",
}

// String returns the mnemonic of the opcode.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// OpByName returns the opcode with the given mnemonic, or OpInvalid.
func OpByName(s string) Op {
	for op, name := range opNames {
		if name == s {
			return op
		}
	}
	return OpInvalid
}

// Pred is a comparison predicate for OpICmp / OpFCmp.
type Pred int

// Comparison predicates. Integer predicates are signed (S*) or unsigned (U*);
// float predicates are the ordered LLVM predicates.
const (
	PredInvalid Pred = iota
	EQ
	NE
	SLT
	SLE
	SGT
	SGE
	ULT
	ULE
	UGT
	UGE
	OEQ
	ONE
	OLT
	OLE
	OGT
	OGE
)

var predNames = map[Pred]string{
	EQ: "eq", NE: "ne", SLT: "slt", SLE: "sle", SGT: "sgt", SGE: "sge",
	ULT: "ult", ULE: "ule", UGT: "ugt", UGE: "uge",
	OEQ: "oeq", ONE: "one", OLT: "olt", OLE: "ole", OGT: "ogt", OGE: "oge",
}

// String returns the textual spelling of the predicate.
func (p Pred) String() string {
	if s, ok := predNames[p]; ok {
		return s
	}
	return fmt.Sprintf("pred(%d)", int(p))
}

// PredByName returns the predicate with the given spelling, or PredInvalid.
func PredByName(s string) Pred {
	for p, name := range predNames {
		if name == s {
			return p
		}
	}
	return PredInvalid
}

// Inverse returns the negated predicate: Inverse(SLT) == SGE, etc.
func (p Pred) Inverse() Pred {
	switch p {
	case EQ:
		return NE
	case NE:
		return EQ
	case SLT:
		return SGE
	case SLE:
		return SGT
	case SGT:
		return SLE
	case SGE:
		return SLT
	case ULT:
		return UGE
	case ULE:
		return UGT
	case UGT:
		return ULE
	case UGE:
		return ULT
	case OEQ:
		return ONE
	case ONE:
		return OEQ
	case OLT:
		return OGE
	case OLE:
		return OGT
	case OGT:
		return OLE
	case OGE:
		return OLT
	}
	return PredInvalid
}

// Swapped returns the predicate with operands exchanged: Swapped(SLT) == SGT.
func (p Pred) Swapped() Pred {
	switch p {
	case SLT:
		return SGT
	case SLE:
		return SGE
	case SGT:
		return SLT
	case SGE:
		return SLE
	case ULT:
		return UGT
	case ULE:
		return UGE
	case UGT:
		return ULT
	case UGE:
		return ULE
	case OLT:
		return OGT
	case OLE:
		return OGE
	case OGT:
		return OLT
	case OGE:
		return OLE
	default: // EQ, NE, OEQ, ONE are symmetric
		return p
	}
}

// Loc is the source provenance of an instruction: the MiniCU source line it
// originated from, plus clone tags distinguishing the copies the optimizer
// made of that line. The unroller stamps Iter with the iteration number of
// each body copy (mirroring the ".u<j>" block-name suffix) and the unmerger
// stamps Dup with the duplication count (the ".d<n>" suffix), so a profiler
// can attribute simulator cycles to "line 14, unroll copy 2, path dup 3"
// rather than just "line 14". The tags compose: unmerging an unrolled body
// keeps the iteration tag and adds the duplication tag, exactly like the
// ".u1.d3" block names. The zero Loc means "no provenance" (synthetic
// instructions with no single source line).
type Loc struct {
	Line int32 // 1-based source line; 0 = unknown
	Iter int32 // unroll iteration copy; 0 = original iteration
	Dup  int32 // unmerge path-duplication id; 0 = original path
}

// IsZero reports whether the location carries no provenance.
func (l Loc) IsZero() bool { return l == Loc{} }

// BlockLine returns the source line anchoring a block: the line of its
// terminator (for loop headers that is the loop condition, which the
// frontend stamps with the loop statement's line), falling back to the
// smallest nonzero line among the block's instructions, or 0 when the block
// carries no provenance at all.
func BlockLine(b *Block) int32 {
	return BlockLoc(b).Line
}

// BlockLoc is BlockLine with the full provenance: the anchoring location
// including unroll-iteration and path-duplication tags, so profilers can
// distinguish the `.u<j>`/`.d<n>` clones of a loop that all alias one source
// line. Falls back to the instruction with the smallest nonzero line (ties:
// the terminator's own tags never lose to a body instruction's).
func BlockLoc(b *Block) Loc {
	if t := b.Term(); t != nil && t.loc.Line != 0 {
		return t.loc
	}
	var min Loc
	for _, in := range b.Instrs() {
		if ln := in.loc.Line; ln != 0 && (min.Line == 0 || ln < min.Line) {
			min = in.loc
		}
	}
	return min
}

// String renders the location compactly: "L14", "L14.u2", "L14.u2.d3", or
// "?" when unknown. This spelling is what the line table, hotspot tables,
// and flamegraph frames use.
func (l Loc) String() string {
	if l.Line == 0 {
		return "?"
	}
	s := fmt.Sprintf("L%d", l.Line)
	if l.Iter != 0 {
		s += fmt.Sprintf(".u%d", l.Iter)
	}
	if l.Dup != 0 {
		s += fmt.Sprintf(".d%d", l.Dup)
	}
	return s
}

// Instr is a single IR instruction. Its result (if the type is non-void) is
// itself a Value usable as an operand of other instructions.
type Instr struct {
	Op   Op
	Typ  *Type
	Pred Pred // predicate for OpICmp / OpFCmp

	args   []Value
	blocks []*Block // phi incoming blocks, or branch targets

	uses  []use // operand slots of other instructions that reference this one
	block *Block
	id    int    // unique within the function; assigned on insertion
	name  string // optional stable name (loop-carried variables etc.)
	loc   Loc    // source provenance; zero when unknown
}

// NewInstr creates a detached instruction. Most callers should use the
// Builder or the block insertion helpers, which also assign IDs.
func NewInstr(op Op, t *Type, args ...Value) *Instr {
	in := &Instr{Op: op, Typ: t}
	for _, a := range args {
		in.AddArg(a)
	}
	return in
}

// Type implements Value.
func (in *Instr) Type() *Type { return in.Typ }

// Ref implements Value.
func (in *Instr) Ref() string {
	if in.name != "" {
		return "%" + in.name
	}
	return fmt.Sprintf("%%t%d", in.id)
}

// Name returns the optional stable name of the instruction ("" if unnamed).
func (in *Instr) Name() string { return in.name }

// SetName assigns a stable name used by Ref and the printer.
func (in *Instr) SetName(s string) { in.name = s }

// ID returns the function-unique instruction ID.
func (in *Instr) ID() int { return in.id }

// Loc returns the source provenance of the instruction.
func (in *Instr) Loc() Loc { return in.loc }

// SetLoc assigns the source provenance. Passes that synthesize a replacement
// for an existing instruction should copy that instruction's Loc so profiler
// attribution survives the rewrite.
func (in *Instr) SetLoc(l Loc) { in.loc = l }

// Block returns the block containing the instruction, or nil if detached.
func (in *Instr) Block() *Block { return in.block }

// NumArgs returns the number of value operands.
func (in *Instr) NumArgs() int { return len(in.args) }

// Arg returns the i-th value operand.
func (in *Instr) Arg(i int) Value { return in.args[i] }

// Args returns the operand slice. Callers must not mutate it directly; use
// SetArg so def-use chains stay consistent.
func (in *Instr) Args() []Value { return in.args }

// SetArg replaces the i-th operand, updating def-use chains.
func (in *Instr) SetArg(i int, v Value) {
	if old, ok := in.args[i].(*Instr); ok {
		old.removeUse(in, i)
	}
	in.args[i] = v
	if nv, ok := v.(*Instr); ok {
		nv.uses = append(nv.uses, use{in, i})
	}
}

// AddArg appends an operand, updating def-use chains.
func (in *Instr) AddArg(v Value) {
	in.args = append(in.args, v)
	if nv, ok := v.(*Instr); ok {
		nv.uses = append(nv.uses, use{in, len(in.args) - 1})
	}
}

// dropArgs disconnects all operands (used when erasing the instruction).
func (in *Instr) dropArgs() {
	for i, a := range in.args {
		if ai, ok := a.(*Instr); ok {
			ai.removeUse(in, i)
		}
	}
	in.args = nil
	in.blocks = nil
}

func (in *Instr) removeUse(user *Instr, idx int) {
	for i, u := range in.uses {
		if u.user == user && u.idx == idx {
			in.uses[i] = in.uses[len(in.uses)-1]
			in.uses = in.uses[:len(in.uses)-1]
			return
		}
	}
	panic("ir: removeUse: use not found")
}

// NumUses returns the number of operand slots referencing this instruction.
func (in *Instr) NumUses() int { return len(in.uses) }

// HasUses reports whether any instruction uses this one's result.
func (in *Instr) HasUses() bool { return len(in.uses) > 0 }

// Users returns the distinct instructions that use this instruction.
func (in *Instr) Users() []*Instr {
	seen := map[*Instr]bool{}
	var out []*Instr
	for _, u := range in.uses {
		if !seen[u.user] {
			seen[u.user] = true
			out = append(out, u.user)
		}
	}
	return out
}

// ReplaceAllUsesWith rewrites every use of in to refer to v instead.
func (in *Instr) ReplaceAllUsesWith(v Value) {
	if v == Value(in) {
		panic("ir: ReplaceAllUsesWith self")
	}
	for len(in.uses) > 0 {
		u := in.uses[len(in.uses)-1]
		u.user.SetArg(u.idx, v)
	}
}

// NumBlocks returns the number of block operands (phi incomings / branch
// targets).
func (in *Instr) NumBlocks() int { return len(in.blocks) }

// BlockArg returns the i-th block operand.
func (in *Instr) BlockArg(i int) *Block { return in.blocks[i] }

// SetBlockArg replaces the i-th block operand. For terminators, callers must
// keep predecessor lists consistent (see Block.ReplaceSucc).
func (in *Instr) SetBlockArg(i int, b *Block) { in.blocks[i] = b }

// AddBlockArg appends a block operand.
func (in *Instr) AddBlockArg(b *Block) { in.blocks = append(in.blocks, b) }

// IsTerminator reports whether the instruction ends a basic block.
func (in *Instr) IsTerminator() bool {
	return in.Op == OpBr || in.Op == OpCondBr || in.Op == OpRet
}

// IsPhi reports whether the instruction is a phi node.
func (in *Instr) IsPhi() bool { return in.Op == OpPhi }

// HasSideEffects reports whether the instruction writes memory or otherwise
// cannot be removed even when its result is unused.
func (in *Instr) HasSideEffects() bool {
	switch in.Op {
	case OpStore, OpBarrier, OpBr, OpCondBr, OpRet:
		return true
	}
	return false
}

// IsConvergent reports whether the instruction is convergent in the SIMT
// sense: it communicates across threads of a warp/block and must not be
// duplicated onto new control-flow paths.
func (in *Instr) IsConvergent() bool { return in.Op == OpBarrier }

// ReadsMemory reports whether the instruction may read device memory.
func (in *Instr) ReadsMemory() bool { return in.Op == OpLoad }

// WritesMemory reports whether the instruction may write device memory.
func (in *Instr) WritesMemory() bool { return in.Op == OpStore }

// IsSpeculatable reports whether the instruction may safely execute even when
// its source-level path is not taken (used by if-conversion). Loads, stores,
// barriers and terminators are not speculatable; everything else (including
// division, which does not trap on GPUs) is.
func (in *Instr) IsSpeculatable() bool {
	switch in.Op {
	case OpLoad, OpStore, OpAlloca, OpBarrier, OpPhi, OpBr, OpCondBr, OpRet:
		return false
	}
	return true
}

// IsCommutative reports whether the two operands may be exchanged.
func (in *Instr) IsCommutative() bool {
	switch in.Op {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor, OpFAdd, OpFMul, OpFMin, OpFMax,
		OpSMin, OpSMax:
		return true
	}
	return false
}

// PhiIncoming returns the value flowing into the phi from predecessor pred,
// or nil if pred is not an incoming block.
func (in *Instr) PhiIncoming(pred *Block) Value {
	for i, b := range in.blocks {
		if b == pred {
			return in.args[i]
		}
	}
	return nil
}

// PhiSetIncoming sets the value flowing in from pred, which must already be
// an incoming block of the phi.
func (in *Instr) PhiSetIncoming(pred *Block, v Value) {
	for i, b := range in.blocks {
		if b == pred {
			in.SetArg(i, v)
			return
		}
	}
	panic("ir: PhiSetIncoming: block is not a predecessor of the phi")
}

// PhiAddIncoming appends an incoming (value, block) pair to the phi.
func (in *Instr) PhiAddIncoming(v Value, pred *Block) {
	in.AddArg(v)
	in.AddBlockArg(pred)
}

// PhiRemoveIncoming removes the incoming pair for pred. It panics if pred is
// not incoming.
func (in *Instr) PhiRemoveIncoming(pred *Block) {
	for i, b := range in.blocks {
		if b == pred {
			// Shift remaining operands down, preserving use indices.
			last := len(in.args) - 1
			for j := i; j < last; j++ {
				in.SetArg(j, in.args[j+1])
				in.blocks[j] = in.blocks[j+1]
			}
			if li, ok := in.args[last].(*Instr); ok {
				li.removeUse(in, last)
			}
			in.args = in.args[:last]
			in.blocks = in.blocks[:last]
			return
		}
	}
	panic("ir: PhiRemoveIncoming: block is not a predecessor of the phi")
}
