package ir

import "fmt"

// Verify checks structural and type invariants of the function and returns an
// error describing the first violation found. Passes call it in tests after
// every transformation.
//
// Checked invariants:
//   - every block ends in exactly one terminator, which is its last instruction
//   - phis form a prefix of their block and have one incoming per predecessor
//   - predecessor lists match terminator edges exactly (as multisets)
//   - operand types match opcode signatures
//   - uses are dominated by definitions (SSA), using a simple dominance check
//   - def-use chains are consistent in both directions
func Verify(f *Function) error {
	if len(f.blocks) == 0 {
		return fmt.Errorf("verify %s: function has no blocks", f.Name)
	}
	if len(f.Entry().preds) != 0 {
		return fmt.Errorf("verify %s: entry block has predecessors", f.Name)
	}
	if err := verifyUnique(f); err != nil {
		return err
	}
	inFunc := map[*Block]bool{}
	for _, b := range f.blocks {
		inFunc[b] = true
	}
	for _, b := range f.blocks {
		if err := verifyBlock(f, b, inFunc); err != nil {
			return err
		}
	}
	if err := verifyEdges(f); err != nil {
		return err
	}
	if err := verifyUses(f); err != nil {
		return err
	}
	return verifyDominance(f)
}

func verifyBlock(f *Function, b *Block, inFunc map[*Block]bool) error {
	errf := func(format string, args ...any) error {
		return fmt.Errorf("verify %s/%s: %s", f.Name, b.Name, fmt.Sprintf(format, args...))
	}
	if len(b.instrs) == 0 {
		return errf("empty block")
	}
	seenNonPhi := false
	for i, in := range b.instrs {
		if in.block != b {
			return errf("instruction %s has wrong block link", in.Ref())
		}
		if in.IsTerminator() != (i == len(b.instrs)-1) {
			return errf("terminator %s not in last position (or last instr not a terminator)", in.Op)
		}
		if in.IsPhi() {
			if seenNonPhi {
				return errf("phi %s after non-phi instruction", in.Ref())
			}
		} else {
			seenNonPhi = true
		}
		if err := checkSig(in); err != nil {
			return errf("%v", err)
		}
		for _, tb := range in.blocks {
			if !inFunc[tb] {
				return errf("%s references block %s outside function", in.Op, tb.Name)
			}
		}
	}
	// Phi incoming blocks must be exactly the predecessors.
	for _, phi := range b.Phis() {
		if len(phi.blocks) != len(b.preds) {
			return errf("phi %s has %d incomings, block has %d preds",
				phi.Ref(), len(phi.blocks), len(b.preds))
		}
		for _, p := range b.preds {
			if phi.PhiIncoming(p) == nil {
				return errf("phi %s missing incoming for pred %s", phi.Ref(), p.Name)
			}
		}
	}
	return nil
}

func checkSig(in *Instr) error {
	argTypesEqual := func() error {
		for i := 1; i < len(in.args); i++ {
			if in.args[i].Type() != in.args[0].Type() {
				return fmt.Errorf("%s: operand type mismatch %s vs %s",
					in.Op, in.args[0].Type(), in.args[i].Type())
			}
		}
		return nil
	}
	nargs := func(n int) error {
		if len(in.args) != n {
			return fmt.Errorf("%s: want %d operands, have %d", in.Op, n, len(in.args))
		}
		return nil
	}
	switch in.Op {
	case OpAdd, OpSub, OpMul, OpSDiv, OpUDiv, OpSRem, OpURem,
		OpShl, OpLShr, OpAShr, OpAnd, OpOr, OpXor:
		if err := nargs(2); err != nil {
			return err
		}
		if !in.Typ.IsInt() {
			return fmt.Errorf("%s: non-integer result type %s", in.Op, in.Typ)
		}
		if in.args[0].Type() != in.Typ || in.args[1].Type() != in.Typ {
			return fmt.Errorf("%s: operand/result type mismatch", in.Op)
		}
	case OpFAdd, OpFSub, OpFMul, OpFDiv:
		if err := nargs(2); err != nil {
			return err
		}
		if !in.Typ.IsFloat() || in.args[0].Type() != in.Typ || in.args[1].Type() != in.Typ {
			return fmt.Errorf("%s: bad float op types", in.Op)
		}
	case OpICmp:
		if err := nargs(2); err != nil {
			return err
		}
		if in.Typ != I1 || !in.args[0].Type().IsInt() && !in.args[0].Type().IsPtr() {
			return fmt.Errorf("icmp: bad types")
		}
		return argTypesEqual()
	case OpFCmp:
		if err := nargs(2); err != nil {
			return err
		}
		if in.Typ != I1 || !in.args[0].Type().IsFloat() {
			return fmt.Errorf("fcmp: bad types")
		}
		return argTypesEqual()
	case OpSelect:
		if err := nargs(3); err != nil {
			return err
		}
		if in.args[0].Type() != I1 || in.args[1].Type() != in.Typ || in.args[2].Type() != in.Typ {
			return fmt.Errorf("select: bad types")
		}
	case OpGEP:
		if err := nargs(2); err != nil {
			return err
		}
		if !in.Typ.IsPtr() || in.args[0].Type() != in.Typ || !in.args[1].Type().IsInt() {
			return fmt.Errorf("gep: bad types")
		}
	case OpLoad:
		if err := nargs(1); err != nil {
			return err
		}
		if !in.args[0].Type().IsPtr() || in.args[0].Type().Elem != in.Typ {
			return fmt.Errorf("load: bad types")
		}
	case OpStore:
		if err := nargs(2); err != nil {
			return err
		}
		if !in.args[1].Type().IsPtr() || in.args[1].Type().Elem != in.args[0].Type() {
			return fmt.Errorf("store: bad types")
		}
	case OpPhi:
		if len(in.args) != len(in.blocks) {
			return fmt.Errorf("phi: %d values vs %d blocks", len(in.args), len(in.blocks))
		}
		for _, a := range in.args {
			if a.Type() != in.Typ {
				return fmt.Errorf("phi: incoming type %s != %s", a.Type(), in.Typ)
			}
		}
	case OpCondBr:
		if err := nargs(1); err != nil {
			return err
		}
		if in.args[0].Type() != I1 || len(in.blocks) != 2 {
			return fmt.Errorf("condbr: bad shape")
		}
		if in.blocks[0] == in.blocks[1] {
			return fmt.Errorf("condbr: identical targets (fold to br instead)")
		}
	case OpBr:
		if len(in.args) != 0 || len(in.blocks) != 1 {
			return fmt.Errorf("br: bad shape")
		}
	case OpRet:
		if len(in.args) > 1 {
			return fmt.Errorf("ret: too many operands")
		}
	case OpTrunc, OpZExt, OpSExt, OpSIToFP, OpFPToSI, OpFPExt, OpFPTrunc:
		if err := nargs(1); err != nil {
			return err
		}
		return checkConvSig(in)
	case OpSqrt, OpFAbs, OpExp, OpLog, OpSin, OpCos, OpFloor:
		if err := nargs(1); err != nil {
			return err
		}
		if !in.Typ.IsFloat() {
			return fmt.Errorf("%s: non-float type", in.Op)
		}
	case OpPow, OpFMin, OpFMax:
		if err := nargs(2); err != nil {
			return err
		}
		return argTypesEqual()
	case OpSMin, OpSMax:
		if err := nargs(2); err != nil {
			return err
		}
		return argTypesEqual()
	case OpTID, OpNTID, OpCTAID, OpNCTAID, OpBarrier, OpAlloca:
		return nargs(0)
	default:
		return fmt.Errorf("unknown opcode %d", int(in.Op))
	}
	return nil
}

// checkConvSig checks the operand/result type relationship of a conversion.
func checkConvSig(in *Instr) error {
	from, to := in.args[0].Type(), in.Typ
	bad := func() error {
		return fmt.Errorf("%s: bad conversion %s -> %s", in.Op, from, to)
	}
	switch in.Op {
	case OpTrunc:
		if !from.IsInt() || !to.IsInt() || to.Bits() >= from.Bits() {
			return bad()
		}
	case OpZExt, OpSExt:
		if !from.IsInt() || !to.IsInt() || to.Bits() <= from.Bits() {
			return bad()
		}
	case OpSIToFP:
		if !from.IsInt() || !to.IsFloat() {
			return bad()
		}
	case OpFPToSI:
		if !from.IsFloat() || !to.IsInt() {
			return bad()
		}
	case OpFPExt:
		if from != F32 || to != F64 {
			return bad()
		}
	case OpFPTrunc:
		if from != F64 || to != F32 {
			return bad()
		}
	}
	return nil
}

// verifyUnique checks that no block appears twice in the block list and that
// attached instructions carry function-unique IDs — the invariants a broken
// clone/restore or a double Append would violate first.
func verifyUnique(f *Function) error {
	seenBlock := make(map[*Block]bool, len(f.blocks))
	seenName := make(map[string]bool, len(f.blocks))
	seenID := map[int]string{}
	for _, b := range f.blocks {
		if seenBlock[b] {
			return fmt.Errorf("verify %s: block %s appears twice in the block list", f.Name, b.Name)
		}
		seenBlock[b] = true
		if seenName[b.Name] {
			return fmt.Errorf("verify %s: duplicate block name %s", f.Name, b.Name)
		}
		seenName[b.Name] = true
		for _, in := range b.instrs {
			if in.id == 0 {
				continue // detached-then-reattached instrs may legally lack IDs mid-build
			}
			if prev, ok := seenID[in.id]; ok {
				return fmt.Errorf("verify %s: instruction ID %d used by both %s and %s",
					f.Name, in.id, prev, in.Ref())
			}
			seenID[in.id] = in.Ref()
		}
	}
	return nil
}

func verifyEdges(f *Function) error {
	// preds(b) must equal, as a multiset, {p : b ∈ succs(p)}.
	want := map[*Block]map[*Block]int{}
	for _, b := range f.blocks {
		want[b] = map[*Block]int{}
	}
	for _, p := range f.blocks {
		for _, s := range p.Succs() {
			want[s][p]++
		}
	}
	for _, b := range f.blocks {
		have := map[*Block]int{}
		for _, p := range b.preds {
			have[p]++
		}
		for p, n := range want[b] {
			if have[p] != n {
				return fmt.Errorf("verify %s: block %s pred list out of sync with %s (have %d, want %d)",
					f.Name, b.Name, p.Name, have[p], n)
			}
		}
		for p, n := range have {
			if want[b][p] != n {
				return fmt.Errorf("verify %s: block %s has stale pred %s", f.Name, b.Name, p.Name)
			}
		}
	}
	return nil
}

func verifyUses(f *Function) error {
	for _, b := range f.blocks {
		for _, in := range b.instrs {
			for i, a := range in.args {
				ai, ok := a.(*Instr)
				if !ok {
					continue
				}
				found := false
				for _, u := range ai.uses {
					if u.user == in && u.idx == i {
						found = true
						break
					}
				}
				if !found {
					return fmt.Errorf("verify %s: missing use record: %s operand %d of %s",
						f.Name, ai.Ref(), i, in.Ref())
				}
				if ai.block == nil {
					return fmt.Errorf("verify %s: %s uses detached instruction %s",
						f.Name, in.Ref(), ai.Ref())
				}
				if ai.block.fn != f {
					return fmt.Errorf("verify %s: %s uses instruction from another function", f.Name, in.Ref())
				}
			}
			for _, u := range in.uses {
				if u.idx >= len(u.user.args) || u.user.args[u.idx] != Value(in) {
					return fmt.Errorf("verify %s: stale use record on %s", f.Name, in.Ref())
				}
			}
		}
	}
	return nil
}

// verifyDominance checks that each use is dominated by its definition.
func verifyDominance(f *Function) error {
	idom := computeIdom(f)
	dominates := func(a, b *Block) bool {
		// a dominates b?
		for x := b; x != nil; x = idom[x] {
			if x == a {
				return true
			}
		}
		return false
	}
	pos := map[*Instr]int{}
	for _, b := range f.blocks {
		for i, in := range b.instrs {
			pos[in] = i
		}
	}
	for _, b := range f.blocks {
		// Skip unreachable blocks: idom[b]==nil for all but entry.
		if b != f.Entry() && idom[b] == nil {
			continue
		}
		for _, in := range b.instrs {
			for i, a := range in.args {
				def, ok := a.(*Instr)
				if !ok {
					continue
				}
				if in.IsPhi() {
					// Use is at the end of the incoming block.
					inc := in.blocks[i]
					if inc != f.Entry() && idom[inc] == nil {
						continue // incoming from unreachable block
					}
					if !dominates(def.block, inc) {
						return fmt.Errorf("verify %s: phi %s in %s: incoming %s from %s not dominated by def in %s",
							f.Name, in.Ref(), b.Name, def.Ref(), inc.Name, def.block.Name)
					}
					continue
				}
				if def.block == b {
					if pos[def] >= pos[in] {
						return fmt.Errorf("verify %s: %s used before definition in %s",
							f.Name, def.Ref(), b.Name)
					}
				} else if !dominates(def.block, b) {
					return fmt.Errorf("verify %s: use of %s in %s not dominated by def in %s",
						f.Name, def.Ref(), b.Name, def.block.Name)
				}
			}
		}
	}
	return nil
}

// computeIdom is a local immediate-dominator computation (iterative
// Cooper-Harvey-Kennedy). The analysis package exposes a richer DomTree; the
// verifier keeps its own copy so that package ir has no dependencies.
func computeIdom(f *Function) map[*Block]*Block {
	// Reverse postorder.
	var order []*Block
	index := map[*Block]int{}
	seen := map[*Block]bool{}
	var dfs func(b *Block)
	var post []*Block
	dfs = func(b *Block) {
		seen[b] = true
		for _, s := range b.Succs() {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(f.Entry())
	for i := len(post) - 1; i >= 0; i-- {
		index[post[i]] = len(order)
		order = append(order, post[i])
	}
	idom := map[*Block]*Block{}
	entry := f.Entry()
	idom[entry] = entry
	intersect := func(a, b *Block) *Block {
		for a != b {
			for index[a] > index[b] {
				a = idom[a]
			}
			for index[b] > index[a] {
				b = idom[b]
			}
		}
		return a
	}
	changed := true
	for changed {
		changed = false
		for _, b := range order {
			if b == entry {
				continue
			}
			var newIdom *Block
			for _, p := range b.preds {
				if idom[p] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	idom[entry] = nil
	return idom
}
