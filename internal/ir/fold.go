package ir

import "math"

// FoldBinary evaluates a binary arithmetic or math-intrinsic opcode on
// constant operands. It returns nil when the operation cannot be folded
// (division by zero, mismatched kinds).
func FoldBinary(op Op, a, b *Const) *Const {
	t := a.Typ
	switch op {
	case OpAdd:
		return ConstInt(t, a.Int+b.Int)
	case OpSub:
		return ConstInt(t, a.Int-b.Int)
	case OpMul:
		return ConstInt(t, a.Int*b.Int)
	case OpSDiv:
		if b.Int == 0 {
			return nil
		}
		return ConstInt(t, a.Int/b.Int)
	case OpUDiv:
		if b.Int == 0 {
			return nil
		}
		return ConstInt(t, int64(toUnsigned(t, a.Int)/toUnsigned(t, b.Int)))
	case OpSRem:
		if b.Int == 0 {
			return nil
		}
		return ConstInt(t, a.Int%b.Int)
	case OpURem:
		if b.Int == 0 {
			return nil
		}
		return ConstInt(t, int64(toUnsigned(t, a.Int)%toUnsigned(t, b.Int)))
	case OpShl:
		return ConstInt(t, a.Int<<shiftAmt(t, b.Int))
	case OpLShr:
		return ConstInt(t, int64(toUnsigned(t, a.Int)>>shiftAmt(t, b.Int)))
	case OpAShr:
		return ConstInt(t, a.Int>>shiftAmt(t, b.Int))
	case OpAnd:
		return ConstInt(t, a.Int&b.Int)
	case OpOr:
		return ConstInt(t, a.Int|b.Int)
	case OpXor:
		return ConstInt(t, a.Int^b.Int)
	case OpFAdd:
		return ConstFloat(t, a.Float+b.Float)
	case OpFSub:
		return ConstFloat(t, a.Float-b.Float)
	case OpFMul:
		return ConstFloat(t, a.Float*b.Float)
	case OpFDiv:
		return ConstFloat(t, a.Float/b.Float)
	case OpPow:
		return ConstFloat(t, math.Pow(a.Float, b.Float))
	case OpFMin:
		return ConstFloat(t, math.Min(a.Float, b.Float))
	case OpFMax:
		return ConstFloat(t, math.Max(a.Float, b.Float))
	case OpSMin:
		return ConstInt(t, min(a.Int, b.Int))
	case OpSMax:
		return ConstInt(t, max(a.Int, b.Int))
	}
	return nil
}

// FoldCompare evaluates an icmp/fcmp predicate on constants.
func FoldCompare(op Op, pred Pred, a, b *Const) *Const {
	var r bool
	if op == OpICmp {
		t := a.Typ
		ua, ub := toUnsigned(t, a.Int), toUnsigned(t, b.Int)
		switch pred {
		case EQ:
			r = a.Int == b.Int
		case NE:
			r = a.Int != b.Int
		case SLT:
			r = a.Int < b.Int
		case SLE:
			r = a.Int <= b.Int
		case SGT:
			r = a.Int > b.Int
		case SGE:
			r = a.Int >= b.Int
		case ULT:
			r = ua < ub
		case ULE:
			r = ua <= ub
		case UGT:
			r = ua > ub
		case UGE:
			r = ua >= ub
		default:
			return nil
		}
	} else {
		switch pred {
		case OEQ:
			r = a.Float == b.Float
		case ONE:
			r = a.Float != b.Float
		case OLT:
			r = a.Float < b.Float
		case OLE:
			r = a.Float <= b.Float
		case OGT:
			r = a.Float > b.Float
		case OGE:
			r = a.Float >= b.Float
		default:
			return nil
		}
	}
	return ConstBool(r)
}

// FoldUnary evaluates a unary opcode (conversion or math intrinsic) on a
// constant. to is the result type for conversions (ignored for math ops,
// which preserve the operand type).
func FoldUnary(op Op, v *Const, to *Type) *Const {
	switch op {
	case OpTrunc:
		return ConstInt(to, v.Int)
	case OpZExt:
		return ConstInt(to, int64(toUnsigned(v.Typ, v.Int)))
	case OpSExt:
		return ConstInt(to, v.Int)
	case OpSIToFP:
		return ConstFloat(to, float64(v.Int))
	case OpFPToSI:
		if math.IsNaN(v.Float) || math.IsInf(v.Float, 0) {
			return nil
		}
		return ConstInt(to, int64(v.Float))
	case OpFPExt, OpFPTrunc:
		return ConstFloat(to, v.Float)
	case OpSqrt:
		return ConstFloat(v.Typ, math.Sqrt(v.Float))
	case OpFAbs:
		return ConstFloat(v.Typ, math.Abs(v.Float))
	case OpExp:
		return ConstFloat(v.Typ, math.Exp(v.Float))
	case OpLog:
		return ConstFloat(v.Typ, math.Log(v.Float))
	case OpSin:
		return ConstFloat(v.Typ, math.Sin(v.Float))
	case OpCos:
		return ConstFloat(v.Typ, math.Cos(v.Float))
	case OpFloor:
		return ConstFloat(v.Typ, math.Floor(v.Float))
	}
	return nil
}

func toUnsigned(t *Type, v int64) uint64 {
	switch t.Kind {
	case KindI1:
		return uint64(v) & 1
	case KindI8:
		return uint64(uint8(v))
	case KindI32:
		return uint64(uint32(v))
	default:
		return uint64(v)
	}
}

func shiftAmt(t *Type, v int64) uint64 {
	return uint64(v) & uint64(t.Bits()-1)
}

// SameConst reports whether two constants are identical in type and value.
func SameConst(a, b *Const) bool {
	if a.Typ != b.Typ {
		return false
	}
	if a.Typ.IsFloat() {
		return a.Float == b.Float || (math.IsNaN(a.Float) && math.IsNaN(b.Float))
	}
	return a.Int == b.Int
}
