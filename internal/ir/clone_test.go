package ir

import (
	"strings"
	"testing"
)

func TestCloneFunctionRoundTrips(t *testing.T) {
	f, _ := buildCountLoop(t)
	want := f.String()
	c := Clone(f)
	if err := Verify(c); err != nil {
		t.Fatalf("Verify(clone): %v", err)
	}
	if got := c.String(); got != want {
		t.Fatalf("clone print differs:\n--- original\n%s\n--- clone\n%s", want, got)
	}
	// No structural sharing: every block and instruction of the clone is a
	// fresh object.
	origBlocks := map[*Block]bool{}
	origInstrs := map[*Instr]bool{}
	for _, b := range f.Blocks() {
		origBlocks[b] = true
		for _, in := range b.Instrs() {
			origInstrs[in] = true
		}
	}
	for _, b := range c.Blocks() {
		if origBlocks[b] {
			t.Fatalf("clone shares block %s with original", b.Name)
		}
		if b.Func() != c {
			t.Fatalf("clone block %s has wrong function link", b.Name)
		}
		for _, in := range b.Instrs() {
			if origInstrs[in] {
				t.Fatalf("clone shares instruction %s with original", in.Ref())
			}
			for _, a := range in.Args() {
				if ai, ok := a.(*Instr); ok && origInstrs[ai] {
					t.Fatalf("clone instruction %s uses original operand %s", in.Ref(), ai.Ref())
				}
			}
		}
	}
	for i, p := range c.Params {
		if p == f.Params[i] {
			t.Fatalf("clone shares parameter %s", p.Name)
		}
	}
}

func TestCloneMutationDoesNotAliasOriginal(t *testing.T) {
	f, _ := buildCountLoop(t)
	want := f.String()
	c := Clone(f)
	// Aggressively rewrite the clone: replace a value, retarget an edge,
	// append a block.
	loop := c.BlockByName("loop")
	inc := loop.Phis()[0].PhiIncoming(loop).(*Instr)
	inc.ReplaceAllUsesWith(ConstInt(I64, 99))
	extra := c.NewBlock("extra")
	NewBuilder(extra).Ret(nil)
	if got := f.String(); got != want {
		t.Fatalf("mutating clone changed original:\n--- before\n%s\n--- after\n%s", want, got)
	}
	if err := Verify(f); err != nil {
		t.Fatalf("Verify(original) after clone mutation: %v", err)
	}
}

// Clone must replicate predecessor-list and use-list ORDER, not just
// content: passes iterate both, so a rollback that reordered them could
// steer later passes differently than a run that never rolled back.
func TestClonePreservesHistoricalOrder(t *testing.T) {
	f, _ := buildCountLoop(t)
	// Force a pred order that differs from what edge wiring in block order
	// would produce: route the backedge through a new latch, then detach
	// and re-append entry's branch so loop's preds end up [latch, entry].
	loop := f.BlockByName("loop")
	latch := f.NewBlock("latch")
	loop.ReplaceSucc(loop, latch)
	NewBuilder(latch).Br(loop)
	for _, phi := range loop.Phis() {
		for i := 0; i < phi.NumBlocks(); i++ {
			if phi.BlockArg(i) == loop {
				phi.SetBlockArg(i, latch)
			}
		}
	}
	entry := f.BlockByName("entry")
	br := entry.Term()
	entry.Remove(br)
	entry.Append(br)
	if err := Verify(f); err != nil {
		t.Fatalf("setup: %v", err)
	}
	if loop.Preds()[0] != latch {
		t.Fatalf("setup failed to reorder preds: %v", loop.Preds())
	}
	c := Clone(f)
	for _, b := range f.Blocks() {
		cb := c.BlockByName(b.Name)
		if len(cb.Preds()) != len(b.Preds()) {
			t.Fatalf("block %s: pred count differs", b.Name)
		}
		for i, p := range b.Preds() {
			if cb.Preds()[i].Name != p.Name {
				t.Fatalf("block %s pred[%d]: got %s, want %s", b.Name, i, cb.Preds()[i].Name, p.Name)
			}
		}
		for j, in := range b.Instrs() {
			ci := cb.Instrs()[j]
			us, cus := in.Users(), ci.Users()
			if len(us) != len(cus) {
				t.Fatalf("%s: use count differs", in.Ref())
			}
			for k := range us {
				if us[k].Ref() != cus[k].Ref() {
					t.Fatalf("%s use[%d]: got %s, want %s", in.Ref(), k, cus[k].Ref(), us[k].Ref())
				}
			}
		}
	}
}

func TestRestoreRollsBack(t *testing.T) {
	f, nsum := buildCountLoop(t)
	want := f.String()
	snap := Clone(f)
	// Wreck the original: RAUW the sum and delete the exit's ret operand path.
	nsum.ReplaceAllUsesWith(ConstInt(I64, 0))
	Restore(f, snap)
	if err := Verify(f); err != nil {
		t.Fatalf("Verify after Restore: %v", err)
	}
	if got := f.String(); got != want {
		t.Fatalf("Restore did not reproduce the snapshot:\n--- want\n%s\n--- got\n%s", want, got)
	}
	// Ownership has moved: blocks and params report f as their function.
	for _, b := range f.Blocks() {
		if b.Func() != f {
			t.Fatalf("restored block %s not owned by f", b.Name)
		}
	}
	// The function remains usable for further construction.
	nb := f.NewBlock("post")
	NewBuilder(nb).Ret(ConstInt(I64, 1))
	if err := Verify(f); err != nil {
		t.Fatalf("Verify after post-restore construction: %v", err)
	}
}

func TestVerifyDominanceAcceptsCountLoop(t *testing.T) {
	f, _ := buildCountLoop(t)
	if err := Verify(f); err != nil {
		t.Fatalf("Verify rejected dominance-clean function: %v", err)
	}
}

// A use in a sibling branch is not dominated by a definition in the other arm.
func TestVerifyDominanceRejectsCrossArmUse(t *testing.T) {
	f := NewFunction("bad", Void)
	p := f.AddParam("c", I1, false)
	entry := f.NewBlock("entry")
	left := f.NewBlock("left")
	right := f.NewBlock("right")
	exit := f.NewBlock("exit")
	b := NewBuilder(entry)
	b.CondBr(p, left, right)
	b.SetBlock(left)
	x := b.Add(ConstInt(I64, 1), ConstInt(I64, 2))
	b.Br(exit)
	b.SetBlock(right)
	y := NewInstr(OpAdd, I64, x, ConstInt(I64, 3)) // uses left's def — not dominated
	right.Append(y)
	b.SetBlock(right)
	b.Br(exit)
	b.SetBlock(exit)
	b.Ret(nil)
	err := Verify(f)
	if err == nil {
		t.Fatalf("Verify accepted a use not dominated by its definition")
	}
	if !strings.Contains(err.Error(), "not dominated") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// A phi incoming must be dominated at the end of the corresponding
// predecessor, not merely defined somewhere.
func TestVerifyDominanceRejectsBadPhiIncoming(t *testing.T) {
	f := NewFunction("badphi", Void)
	p := f.AddParam("c", I1, false)
	entry := f.NewBlock("entry")
	left := f.NewBlock("left")
	right := f.NewBlock("right")
	exit := f.NewBlock("exit")
	b := NewBuilder(entry)
	b.CondBr(p, left, right)
	b.SetBlock(left)
	x := b.Add(ConstInt(I64, 1), ConstInt(I64, 2))
	b.Br(exit)
	b.SetBlock(right)
	b.Br(exit)
	b.SetBlock(exit)
	phi := b.Phi(I64, "m")
	phi.PhiAddIncoming(x, left)
	phi.PhiAddIncoming(x, right) // x does not dominate right's terminator
	b.Ret(nil)
	err := Verify(f)
	if err == nil {
		t.Fatalf("Verify accepted phi incoming not dominated in its predecessor")
	}
	if !strings.Contains(err.Error(), "not dominated") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestVerifyRejectsBadConversions(t *testing.T) {
	cases := []struct {
		name string
		op   Op
		from *Type
		val  Value
		to   *Type
	}{
		{"zext-narrowing", OpZExt, I64, ConstInt(I64, 1), I32},
		{"trunc-widening", OpTrunc, I32, ConstInt(I32, 1), I64},
		{"sext-same-width", OpSExt, I32, ConstInt(I32, 1), I32},
		{"sitofp-from-float", OpSIToFP, F64, ConstFloat(F64, 1), F64},
		{"fptosi-from-int", OpFPToSI, I64, ConstInt(I64, 1), I64},
		{"fpext-from-f64", OpFPExt, F64, ConstFloat(F64, 1), F64},
		{"fptrunc-from-f32", OpFPTrunc, F32, ConstFloat(F32, 1), F32},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := NewFunction("conv", Void)
			entry := f.NewBlock("entry")
			entry.Append(NewInstr(tc.op, tc.to, tc.val))
			NewBuilder(entry).Ret(nil)
			if err := Verify(f); err == nil {
				t.Fatalf("Verify accepted %s %s -> %s", tc.op, tc.from, tc.to)
			}
		})
	}
}

func TestVerifyRejectsDuplicateInstrIDs(t *testing.T) {
	f, _ := buildCountLoop(t)
	// Forge a duplicate ID by cloning and splicing an instruction that keeps
	// the original's ID (what a buggy snapshot/restore would produce).
	loop := f.BlockByName("loop")
	orig := loop.Instrs()[loop.FirstNonPhi()]
	dup := &Instr{Op: OpAdd, Typ: I64, id: orig.id}
	dup.AddArg(ConstInt(I64, 1))
	dup.AddArg(ConstInt(I64, 2))
	loop.InsertBefore(dup, loop.Term())
	if err := Verify(f); err == nil {
		t.Fatalf("Verify accepted duplicate instruction IDs")
	}
}
