package ir

import (
	"strings"
	"testing"
)

// buildCountLoop constructs: for (i=0; i<n; i++) sum+=i; ret sum
func buildCountLoop(t *testing.T) (*Function, *Instr) {
	t.Helper()
	f := NewFunction("count", I64)
	n := f.AddParam("n", I64, false)
	entry := f.NewBlock("entry")
	loop := f.NewBlock("loop")
	exit := f.NewBlock("exit")
	b := NewBuilder(entry)
	b.Br(loop)
	b.SetBlock(loop)
	i := b.Phi(I64, "i")
	sum := b.Phi(I64, "sum")
	inc := b.Add(i, ConstInt(I64, 1))
	nsum := b.Add(sum, i)
	c := b.ICmp(SLT, inc, n)
	b.CondBr(c, loop, exit)
	i.PhiAddIncoming(ConstInt(I64, 0), entry)
	i.PhiAddIncoming(inc, loop)
	sum.PhiAddIncoming(ConstInt(I64, 0), entry)
	sum.PhiAddIncoming(nsum, loop)
	b.SetBlock(exit)
	b.Ret(nsum)
	if err := Verify(f); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return f, nsum
}

func TestBuilderAndVerify(t *testing.T) {
	f, _ := buildCountLoop(t)
	if f.NumBlocks() != 3 {
		t.Fatalf("blocks = %d, want 3", f.NumBlocks())
	}
	loop := f.BlockByName("loop")
	if got := len(loop.Phis()); got != 2 {
		t.Fatalf("phis = %d, want 2", got)
	}
	if loop.Term().Op != OpCondBr {
		t.Fatalf("terminator = %v, want condbr", loop.Term().Op)
	}
	if len(loop.Preds()) != 2 {
		t.Fatalf("loop preds = %d, want 2", len(loop.Preds()))
	}
}

func TestUseChains(t *testing.T) {
	f, nsum := buildCountLoop(t)
	// nsum is used by: ret, and the sum phi.
	if nsum.NumUses() != 2 {
		t.Fatalf("nsum uses = %d, want 2", nsum.NumUses())
	}
	c := ConstInt(I64, 7)
	nsum.ReplaceAllUsesWith(c)
	if nsum.HasUses() {
		t.Fatalf("nsum still has uses after RAUW")
	}
	ret := f.BlockByName("exit").Term()
	if ret.Arg(0) != Value(c) {
		t.Fatalf("ret operand not replaced")
	}
	if err := Verify(f); err != nil {
		t.Fatalf("Verify after RAUW: %v", err)
	}
}

func TestPhiRemoveIncoming(t *testing.T) {
	f, _ := buildCountLoop(t)
	loop := f.BlockByName("loop")
	entry := f.Entry()
	phis := append([]*Instr(nil), loop.Phis()...)
	for _, phi := range phis {
		phi.PhiRemoveIncoming(entry)
		if phi.NumArgs() != 1 || phi.NumBlocks() != 1 {
			t.Fatalf("phi %s not reduced to 1 incoming", phi.Ref())
		}
		if phi.BlockArg(0) != loop {
			t.Fatalf("remaining incoming block wrong")
		}
	}
}

func TestReplaceSucc(t *testing.T) {
	f, _ := buildCountLoop(t)
	loop := f.BlockByName("loop")
	exit := f.BlockByName("exit")
	mid := f.NewBlock("mid")
	NewBuilder(mid).Br(exit)
	loop.ReplaceSucc(exit, mid)
	// Fix the phi-less exit (no phis here) and verify edges.
	if exit.HasPred(loop) {
		t.Fatalf("exit still has loop as pred")
	}
	if !mid.HasPred(loop) {
		t.Fatalf("mid does not have loop as pred")
	}
	if err := Verify(f); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyCatchesBadPhi(t *testing.T) {
	f, _ := buildCountLoop(t)
	loop := f.BlockByName("loop")
	phi := loop.Phis()[0]
	phi.PhiRemoveIncoming(f.Entry())
	if err := Verify(f); err == nil {
		t.Fatalf("Verify accepted phi with missing incoming")
	}
}

func TestVerifyCatchesUseBeforeDef(t *testing.T) {
	f := NewFunction("bad", Void)
	entry := f.NewBlock("entry")
	b := NewBuilder(entry)
	x := NewInstr(OpAdd, I64, ConstInt(I64, 1), ConstInt(I64, 2))
	y := NewInstr(OpAdd, I64, x, ConstInt(I64, 3))
	entry.Append(y)
	entry.Append(x)
	b.Ret(nil)
	if err := Verify(f); err == nil {
		t.Fatalf("Verify accepted use-before-def")
	}
}

func TestCloneBlocks(t *testing.T) {
	f, _ := buildCountLoop(t)
	loop := f.BlockByName("loop")
	bmap, vmap := CloneBlocks(f, []*Block{loop}, ".c")
	nl := bmap[loop]
	if nl == nil || nl.Name != "loop.c" {
		t.Fatalf("clone block missing or misnamed")
	}
	if nl.NumInstrs() != loop.NumInstrs() {
		t.Fatalf("clone has %d instrs, want %d", nl.NumInstrs(), loop.NumInstrs())
	}
	// The cloned phi's self-incoming should be remapped to the clone block
	// and cloned increment.
	origPhi := loop.Phis()[0]
	clonePhi := vmap[origPhi].(*Instr)
	if clonePhi.PhiIncoming(nl) == nil {
		t.Fatalf("clone phi incoming not remapped to clone block")
	}
	inc := origPhi.PhiIncoming(loop).(*Instr)
	if clonePhi.PhiIncoming(nl) != vmap[inc] {
		t.Fatalf("clone phi incoming value not remapped")
	}
	// Clone's terminator still targets the shared exit, and exit gained an
	// extra pred.
	exit := f.BlockByName("exit")
	if !exit.HasPred(nl) {
		t.Fatalf("exit did not gain clone as pred")
	}
}

func TestConstFold(t *testing.T) {
	cases := []struct {
		op   Op
		a, b int64
		want int64
	}{
		{OpAdd, 3, 4, 7},
		{OpSub, 3, 4, -1},
		{OpMul, 3, 4, 12},
		{OpSDiv, -7, 2, -3},
		{OpSRem, -7, 2, -1},
		{OpShl, 1, 10, 1024},
		{OpAShr, -8, 1, -4},
		{OpLShr, -1, 60, 15},
		{OpAnd, 12, 10, 8},
		{OpOr, 12, 10, 14},
		{OpXor, 12, 10, 6},
		{OpSMin, -3, 5, -3},
		{OpSMax, -3, 5, 5},
	}
	for _, tc := range cases {
		got := FoldBinary(tc.op, ConstInt(I64, tc.a), ConstInt(I64, tc.b))
		if got == nil || got.Int != tc.want {
			t.Errorf("%v(%d,%d) = %v, want %d", tc.op, tc.a, tc.b, got, tc.want)
		}
	}
	if FoldBinary(OpSDiv, ConstInt(I64, 1), ConstInt(I64, 0)) != nil {
		t.Errorf("sdiv by zero folded")
	}
	if c := FoldCompare(OpICmp, ULT, ConstInt(I32, -1), ConstInt(I32, 0)); c == nil || c.Int != 0 {
		t.Errorf("ult with -1 should be false (unsigned)")
	}
	if c := FoldCompare(OpICmp, SLT, ConstInt(I32, -1), ConstInt(I32, 0)); c == nil || c.Int != 1 {
		t.Errorf("slt with -1 should be true")
	}
}

func TestTruncationSemantics(t *testing.T) {
	c := ConstInt(I32, 1<<40|5)
	if c.Int != 5 {
		t.Fatalf("i32 constant not truncated: %d", c.Int)
	}
	tr := FoldUnary(OpTrunc, ConstInt(I64, 0x1_0000_0003), I32)
	if tr.Int != 3 {
		t.Fatalf("trunc = %d, want 3", tr.Int)
	}
	zx := FoldUnary(OpZExt, ConstInt(I32, -1), I64)
	if zx.Int != 0xFFFFFFFF {
		t.Fatalf("zext = %d, want 4294967295", zx.Int)
	}
	sx := FoldUnary(OpSExt, ConstInt(I32, -1), I64)
	if sx.Int != -1 {
		t.Fatalf("sext = %d, want -1", sx.Int)
	}
}

func TestPredHelpers(t *testing.T) {
	for _, p := range []Pred{EQ, NE, SLT, SLE, SGT, SGE, ULT, ULE, UGT, UGE, OEQ, ONE, OLT, OLE, OGT, OGE} {
		if p.Inverse().Inverse() != p {
			t.Errorf("double inverse of %v = %v", p, p.Inverse().Inverse())
		}
		if p.Swapped().Swapped() != p {
			t.Errorf("double swap of %v = %v", p, p.Swapped().Swapped())
		}
	}
	if SLT.Inverse() != SGE || SLT.Swapped() != SGT {
		t.Errorf("SLT helpers wrong")
	}
}

func TestPrinterContainsStructure(t *testing.T) {
	f, _ := buildCountLoop(t)
	s := f.String()
	for _, want := range []string{"func @count(i64 %n) -> i64", "entry:", "loop:", "phi i64", "condbr i1", "ret i64"} {
		if !strings.Contains(s, want) {
			t.Errorf("printed IR missing %q:\n%s", want, s)
		}
	}
}

func TestTypes(t *testing.T) {
	if PointerTo(F64) != PointerTo(F64) {
		t.Fatalf("pointer types not interned")
	}
	if PointerTo(F64).String() != "f64*" {
		t.Fatalf("pointer spelling = %s", PointerTo(F64).String())
	}
	if I32.Size() != 4 || F64.Size() != 8 || I1.Size() != 1 {
		t.Fatalf("type sizes wrong")
	}
	if TypeByName("i64") != I64 || TypeByName("nope") != nil {
		t.Fatalf("TypeByName wrong")
	}
}

func TestRemoveBlock(t *testing.T) {
	f, _ := buildCountLoop(t)
	loop := f.BlockByName("loop")
	exit := f.BlockByName("exit")
	// Make the loop unreachable: entry branches directly to exit. The ret in
	// exit uses a value from loop, so rewrite it first.
	exit.Term().SetArg(0, ConstInt(I64, 0))
	entry := f.Entry()
	entry.Erase(entry.Term())
	NewBuilder(entry).Br(exit)
	// Break the self-loop edge so loop has no preds, then remove.
	loopTerm := loop.Term()
	loop.Erase(loopTerm) // drops succ edges incl. self-pred
	// Now loop's phis still reference entry... they were removed? Phis have
	// incoming [entry, loop]; edges entry->loop and loop->loop are gone.
	for len(loop.Preds()) > 0 {
		t.Fatalf("loop still has preds")
	}
	// Clear remaining intra-block uses then remove.
	f.RemoveBlock(loop)
	if f.NumBlocks() != 2 {
		t.Fatalf("blocks = %d, want 2", f.NumBlocks())
	}
	if err := Verify(f); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestMoveBlockAfter(t *testing.T) {
	f := NewFunction("m", Void)
	a := f.NewBlock("a")
	bb := f.NewBlock("b")
	c := f.NewBlock("c")
	bld := NewBuilder(a)
	bld.Br(bb)
	bld.SetBlock(bb)
	bld.Br(c)
	bld.SetBlock(c)
	bld.Ret(nil)
	f.MoveBlockAfter(c, a)
	names := []string{}
	for _, b := range f.Blocks() {
		names = append(names, b.Name)
	}
	if names[0] != "a" || names[1] != "c" || names[2] != "b" {
		t.Fatalf("order = %v", names)
	}
	if err := Verify(f); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestInsertBeforeAndAtFront(t *testing.T) {
	f := NewFunction("i", Void)
	entry := f.NewBlock("entry")
	b := NewBuilder(entry)
	x := b.Add(ConstInt(I64, 1), ConstInt(I64, 2))
	b.Ret(nil)
	y := NewInstr(OpAdd, I64, ConstInt(I64, 3), ConstInt(I64, 4))
	entry.InsertBefore(y, x)
	if entry.Instrs()[0] != y {
		t.Fatalf("InsertBefore misplaced")
	}
	phi := NewInstr(OpPhi, I64)
	entry.InsertAtFront(phi)
	if entry.Instrs()[0] != phi {
		t.Fatalf("InsertAtFront misplaced")
	}
}

func TestEraseInstrsGroup(t *testing.T) {
	f := NewFunction("e", Void)
	entry := f.NewBlock("entry")
	b := NewBuilder(entry)
	x := b.Add(ConstInt(I64, 1), ConstInt(I64, 2))
	y := b.Add(x, ConstInt(I64, 3))
	z := b.Add(y, x)
	b.Ret(nil)
	EraseInstrs([]*Instr{x, y, z})
	if entry.NumInstrs() != 1 {
		t.Fatalf("instrs = %d, want just the ret", entry.NumInstrs())
	}
	if err := Verify(f); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestEraseInstrsPanicsOnOutsideUse(t *testing.T) {
	f := NewFunction("e", I64)
	entry := f.NewBlock("entry")
	b := NewBuilder(entry)
	x := b.Add(ConstInt(I64, 1), ConstInt(I64, 2))
	b.Ret(x)
	defer func() {
		if recover() == nil {
			t.Fatalf("no panic for outside use")
		}
	}()
	EraseInstrs([]*Instr{x})
}

func TestModulePrinting(t *testing.T) {
	m := NewModule("mod")
	f1 := NewFunction("a", Void)
	e1 := f1.NewBlock("entry")
	NewBuilder(e1).Ret(nil)
	m.AddFunction(f1)
	f2 := NewFunction("b", Void)
	e2 := f2.NewBlock("entry")
	NewBuilder(e2).Ret(nil)
	m.AddFunction(f2)
	s := m.String()
	if !strings.Contains(s, "func @a()") || !strings.Contains(s, "func @b()") {
		t.Fatalf("module printing wrong:\n%s", s)
	}
	if m.FuncByName("a") != f1 || m.FuncByName("zzz") != nil {
		t.Fatalf("FuncByName wrong")
	}
}

func TestVerifyRejectsIdenticalCondBrTargets(t *testing.T) {
	f := NewFunction("v", Void)
	entry := f.NewBlock("entry")
	next := f.NewBlock("next")
	in := NewInstr(OpCondBr, Void, True)
	in.AddBlockArg(next)
	in.AddBlockArg(next)
	entry.Append(in)
	NewBuilder(next).Ret(nil)
	if err := Verify(f); err == nil {
		t.Fatalf("identical condbr targets accepted")
	}
}

func TestBlockHelpers(t *testing.T) {
	f, _ := buildCountLoop(t)
	loop := f.BlockByName("loop")
	if loop.FirstNonPhi() != 2 {
		t.Fatalf("FirstNonPhi = %d", loop.FirstNonPhi())
	}
	if loop.String() != "%loop" {
		t.Fatalf("String = %q", loop.String())
	}
	if len(loop.Succs()) != 2 {
		t.Fatalf("succs = %d", len(loop.Succs()))
	}
	if loop.Func() != f {
		t.Fatalf("Func link broken")
	}
}
