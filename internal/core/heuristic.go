package core

import (
	"uu/internal/analysis"
	"uu/internal/ir"
	"uu/internal/remark"
)

// HeuristicParams are the knobs of the paper's selection heuristic
// (Section III-C): a loop is transformed when some unroll factor
// 2 <= u <= UMax keeps the estimated post-u&u size f(p, s, u) below C; the
// largest such factor is chosen. The paper evaluates with C = 1024 and
// UMax = 8.
type HeuristicParams struct {
	C    int
	UMax int
	// SkipDivergent additionally skips loops containing a branch on a
	// thread-id-dependent condition — the taint-analysis extension the paper
	// proposes in Section V to avoid `complex`-style slowdowns. Off by
	// default to match the published heuristic.
	SkipDivergent bool
}

// DefaultHeuristicParams returns the paper's evaluation setting.
func DefaultHeuristicParams() HeuristicParams { return HeuristicParams{C: 1024, UMax: 8} }

// Decision records one loop the heuristic chose and why.
type Decision struct {
	LoopID     int
	Header     *ir.Block
	HeaderLine int32 // source line anchoring the loop (see LoopLine)
	Factor     int
	Paths      int
	Size       int
	Estimated  int64 // f(p, s, factor)
}

// LoopLine returns the source line anchoring a loop for reporting (see
// ir.BlockLine). Stable across pipeline configurations, so the profiler can
// join heuristic predictions with measured per-loop cycles on it.
func LoopLine(header *ir.Block) int32 { return ir.BlockLine(header) }

// HeuristicDecide selects the loops to transform and their unroll factors,
// innermost loops first; an outer loop is considered only when none of its
// (transitive) inner loops was selected, as in the paper. Loops with
// convergent operations, without a unique latch, or without any control flow
// to unmerge (single path) are skipped.
func HeuristicDecide(f *ir.Function, params HeuristicParams) []Decision {
	return heuristicDecide(f, analysis.NewAnalysisManager(f), params)
}

// heuristicDecide is HeuristicDecide against a caller-provided analysis
// manager. It only reads the function.
func heuristicDecide(f *ir.Function, am *analysis.AnalysisManager, params HeuristicParams) []Decision {
	li := am.LoopInfo()
	var div *analysis.Divergence
	if params.SkipDivergent {
		div = am.Divergence()
	}

	rc := am.Remarks()
	missed := func(l *analysis.Loop, name string, args ...remark.Arg) {
		if !rc.Enabled() {
			return
		}
		rc.Emit(remark.Remark{
			Kind: remark.Missed, Pass: "uu-heuristic", Name: name,
			Function: f.Name, Block: l.Header.Name,
			Args: append([]remark.Arg{remark.Int("Loop", int64(l.ID))}, args...),
		})
	}

	chosen := map[*analysis.Loop]bool{}
	var decisions []Decision
	// Innermost-first: loops are ordered outer-first, so iterate backwards.
	for i := len(li.Loops) - 1; i >= 0; i-- {
		l := li.Loops[i]
		if hasChosenDescendant(l, chosen) {
			missed(l, "InnerLoopChosen")
			continue
		}
		if l.HasConvergentOp() {
			missed(l, "ConvergentOp")
			continue
		}
		if l.Latch() == nil {
			missed(l, "MultipleLatches")
			continue
		}
		if div != nil && div.LoopHasDivergentBranch(l) {
			missed(l, "DivergentBranch")
			continue
		}
		p := analysis.CountPaths(l)
		if p < 2 {
			missed(l, "SinglePath")
			continue // nothing to unmerge
		}
		s := analysis.LoopSize(l)
		factor := 0
		var est int64
		for u := params.UMax; u >= 2; u-- {
			if e := analysis.UnmergedSize(p, s, u); e < int64(params.C) {
				factor, est = u, e
				break
			}
		}
		if factor == 0 {
			missed(l, "SizeOverBudget",
				remark.Int("Paths", int64(p)),
				remark.Int("Size", int64(s)),
				remark.Int("EstimatedAtUMin", analysis.UnmergedSize(p, s, 2)),
				remark.Int("C", int64(params.C)))
			continue
		}
		chosen[l] = true
		decisions = append(decisions, Decision{
			LoopID: l.ID, Header: l.Header, HeaderLine: ir.BlockLine(l.Header),
			Factor: factor, Paths: p, Size: s, Estimated: est,
		})
		if rc.Enabled() {
			rc.Emit(remark.Remark{
				Kind: remark.Passed, Pass: "uu-heuristic", Name: "LoopSelected",
				Function: f.Name, Block: l.Header.Name,
				Args: []remark.Arg{
					remark.Int("Loop", int64(l.ID)),
					remark.Int("Paths", int64(p)),
					remark.Int("Size", int64(s)),
					remark.Int("Factor", int64(factor)),
					remark.Int("Estimated", est),
					remark.Int("C", int64(params.C)),
				},
			})
		}
	}
	return decisions
}

func hasChosenDescendant(l *analysis.Loop, chosen map[*analysis.Loop]bool) bool {
	for _, c := range l.Children {
		if chosen[c] || hasChosenDescendant(c, chosen) {
			return true
		}
	}
	return false
}

// ApplyHeuristic runs HeuristicDecide and applies u&u to each selected loop
// (deepest selections were decided first and are applied first). It returns
// the decisions taken.
func ApplyHeuristic(f *ir.Function, params HeuristicParams, opts Options) []Decision {
	return applyHeuristic(f, analysis.NewAnalysisManager(f), params, opts)
}

// ApplyHeuristicWith is ApplyHeuristic sharing the caller's analysis
// manager (and operating on the function it is bound to). Callers must
// treat the manager as fully invalid afterwards.
func ApplyHeuristicWith(am *analysis.AnalysisManager, params HeuristicParams, opts Options) []Decision {
	return applyHeuristic(am.Function(), am, params, opts)
}

// applyHeuristic is ApplyHeuristic against a caller-provided analysis
// manager. The manager must be considered fully invalid on return (uuLoop
// normalizes loops even on error paths).
func applyHeuristic(f *ir.Function, am *analysis.AnalysisManager, params HeuristicParams, opts Options) []Decision {
	decisions := heuristicDecide(f, am, params)
	for _, d := range decisions {
		// Re-resolve through the manager: earlier applications invalidated it.
		l := loopWithHeader(am.LoopInfo(), d.Header)
		if l == nil {
			continue
		}
		// Errors here mean the loop became untransformable after an earlier
		// application (possible for overlapping nests); skip it.
		_, _ = uuLoop(f, am, l, d.Factor, opts)
	}
	return decisions
}
