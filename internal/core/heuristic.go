package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"uu/internal/analysis"
	"uu/internal/ir"
	"uu/internal/remark"
)

// HeuristicParams are the knobs of the paper's selection heuristic
// (Section III-C): a loop is transformed when some unroll factor
// 2 <= u <= UMax keeps the estimated post-u&u size f(p, s, u) below C; the
// largest such factor is chosen. The paper evaluates with C = 1024 and
// UMax = 8.
type HeuristicParams struct {
	C    int
	UMax int
	// SkipDivergent additionally skips loops containing a branch on a
	// thread-id-dependent condition — the taint-analysis extension the paper
	// proposes in Section V to avoid `complex`-style slowdowns. Off by
	// default to match the published heuristic.
	SkipDivergent bool
	// Selective switches the unmerge step of every selected loop to the
	// benefit-predictor mode (Options.Selective / ProfitableMerges): only
	// merge blocks predicted to feed later optimizations are duplicated.
	// Promoted from the `uu/selective` ablation to a first-class heuristic
	// mode — the paper's Section VI "unmerge only profitable merges".
	Selective bool
	// Overrides are per-loop directives derived from measured profiles (the
	// PGO loop) or supplied explicitly, keyed by the loop's anchoring source
	// line (LoopLine). They take precedence over the static f(p, s, u) < C
	// model for the loops they name; all other loops are decided statically.
	Overrides map[int32]LoopOverride
}

// LoopOverride is one per-loop selection directive. The zero value means "no
// override" (pure static decision).
type LoopOverride struct {
	// Deny unconditionally deselects the loop (measured regression: the
	// transformation made this loop slower).
	Deny bool
	// Force selects the loop even when the static model rejects it
	// (SizeOverBudget) or the divergence taint would skip it. A forced loop
	// is transformed at FactorCap (or UMax when no cap is set) — the profile
	// directive is trusted over the size budget. Structurally
	// untransformable loops (convergent ops, multiple latches, single path)
	// are still skipped.
	Force bool
	// FactorCap bounds the unroll factor from above; 1 means unmerge-only
	// (the paper's `unmerge` comparator applied to just this loop). 0 means
	// no cap.
	FactorCap int
}

// IsZero reports whether the override carries no directive.
func (o LoopOverride) IsZero() bool { return o == LoopOverride{} }

// String renders the override canonically ("deny", "force,cap=2", "cap=4").
func (o LoopOverride) String() string {
	var parts []string
	if o.Deny {
		parts = append(parts, "deny")
	}
	if o.Force {
		parts = append(parts, "force")
	}
	if o.FactorCap > 0 {
		parts = append(parts, fmt.Sprintf("cap=%d", o.FactorCap))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// DefaultHeuristicParams returns the paper's evaluation setting.
func DefaultHeuristicParams() HeuristicParams { return HeuristicParams{C: 1024, UMax: 8} }

// FillDefaults returns the params with unset C/UMax replaced by the paper's
// defaults, leaving the mode switches and overrides untouched.
func (p HeuristicParams) FillDefaults() HeuristicParams {
	d := DefaultHeuristicParams()
	if p.C == 0 {
		p.C = d.C
	}
	if p.UMax == 0 {
		p.UMax = d.UMax
	}
	return p
}

// OverridesString renders an override set canonically (sorted by line), the
// form cache fingerprints and reports use. Empty sets render as "-".
func OverridesString(ov map[int32]LoopOverride) string {
	if len(ov) == 0 {
		return "-"
	}
	lines := make([]int32, 0, len(ov))
	for line, o := range ov {
		if o.IsZero() {
			continue
		}
		lines = append(lines, line)
	}
	if len(lines) == 0 {
		return "-"
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	var sb strings.Builder
	for i, line := range lines {
		if i > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "L%d:%s", line, ov[line])
	}
	return sb.String()
}

// ParseOverrides parses the textual override-set syntax used by CLI flags
// and the serve API: comma-separated "L<line>:<directive>[+<directive>...]"
// items where a directive is "deny", "force", or "cap=<n>", e.g.
// "L10:deny,L12:force+cap=2".
func ParseOverrides(s string) (map[int32]LoopOverride, error) {
	out := map[int32]LoopOverride{}
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		line, directives, ok := strings.Cut(item, ":")
		if !ok || !strings.HasPrefix(line, "L") {
			return nil, fmt.Errorf("core: bad override %q (want L<line>:<directive>)", item)
		}
		n, err := strconv.ParseInt(line[1:], 10, 32)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("core: bad override line %q", line)
		}
		var ov LoopOverride
		for _, d := range strings.Split(directives, "+") {
			switch {
			case d == "deny":
				ov.Deny = true
			case d == "force":
				ov.Force = true
			case strings.HasPrefix(d, "cap="):
				c, err := strconv.Atoi(d[4:])
				if err != nil || c < 1 {
					return nil, fmt.Errorf("core: bad override cap %q", d)
				}
				ov.FactorCap = c
			default:
				return nil, fmt.Errorf("core: unknown override directive %q", d)
			}
		}
		if ov.Deny && ov.Force {
			return nil, fmt.Errorf("core: override %s is both deny and force", line)
		}
		out[int32(n)] = ov
	}
	return out, nil
}

// MergeOverrides layers explicit overrides over derived ones: for every line
// named by both, the explicit directive wins. Neither input is mutated.
func MergeOverrides(derived, explicit map[int32]LoopOverride) map[int32]LoopOverride {
	if len(derived) == 0 {
		return explicit
	}
	out := make(map[int32]LoopOverride, len(derived)+len(explicit))
	for line, o := range derived {
		out[line] = o
	}
	for line, o := range explicit {
		out[line] = o
	}
	return out
}

// Decision records one loop the heuristic chose and why.
type Decision struct {
	LoopID     int
	Header     *ir.Block
	HeaderLine int32 // source line anchoring the loop (see LoopLine)
	Factor     int
	Paths      int
	Size       int
	Estimated  int64 // f(p, s, factor)
	Forced     bool  // selected by a profile Force override, not the static model
}

// Skip reasons, mirroring the missed-remark names emitted by the heuristic.
const (
	SkipInnerLoopChosen = "InnerLoopChosen"
	SkipConvergentOp    = "ConvergentOp"
	SkipMultipleLatches = "MultipleLatches"
	SkipDivergentBranch = "DivergentBranch"
	SkipSinglePath      = "SinglePath"
	SkipSizeOverBudget  = "SizeOverBudget"
	SkipProfileDeny     = "ProfileDeny"
)

// SkipRecord documents one loop the heuristic considered and deliberately did
// not select, and why. The profiler's predicted-vs-measured report uses these
// to distinguish a CORRECT-SKIP (the heuristic knowingly passed on the
// hottest loop) from a genuine MISPREDICT.
type SkipRecord struct {
	LoopID     int
	HeaderLine int32
	Reason     string
}

// DeliberateSkip reports whether a skip reason represents an intentional
// decision not to transform (structural impossibility, divergence taint, or a
// profile deny) as opposed to the size model rejecting the loop. A hottest
// loop skipped for a deliberate reason is a CORRECT-SKIP, not a MISPREDICT;
// SizeOverBudget is the static model being wrong about a profitable loop.
func DeliberateSkip(reason string) bool {
	switch reason {
	case SkipInnerLoopChosen, SkipConvergentOp, SkipMultipleLatches,
		SkipDivergentBranch, SkipSinglePath, SkipProfileDeny:
		return true
	}
	return false
}

// LoopLine returns the source line anchoring a loop for reporting (see
// ir.BlockLine). Stable across pipeline configurations, so the profiler can
// join heuristic predictions with measured per-loop cycles on it.
func LoopLine(header *ir.Block) int32 { return ir.BlockLine(header) }

// HeuristicDecide selects the loops to transform and their unroll factors,
// innermost loops first; an outer loop is considered only when none of its
// (transitive) inner loops was selected, as in the paper. Loops with
// convergent operations, without a unique latch, or without any control flow
// to unmerge (single path) are skipped. Alongside the selections it returns a
// skip record for every loop it considered and rejected, so reports can tell
// deliberate skips from size-model mispredictions.
func HeuristicDecide(f *ir.Function, params HeuristicParams) ([]Decision, []SkipRecord) {
	return heuristicDecide(f, analysis.NewAnalysisManager(f), params)
}

// heuristicDecide is HeuristicDecide against a caller-provided analysis
// manager. It only reads the function.
func heuristicDecide(f *ir.Function, am *analysis.AnalysisManager, params HeuristicParams) ([]Decision, []SkipRecord) {
	li := am.LoopInfo()
	var div *analysis.Divergence
	if params.SkipDivergent {
		div = am.Divergence()
	}

	rc := am.Remarks()
	var skips []SkipRecord
	missed := func(l *analysis.Loop, name string, args ...remark.Arg) {
		skips = append(skips, SkipRecord{
			LoopID: l.ID, HeaderLine: ir.BlockLine(l.Header), Reason: name,
		})
		if !rc.Enabled() {
			return
		}
		rc.Emit(remark.Remark{
			Kind: remark.Missed, Pass: "uu-heuristic", Name: name,
			Function: f.Name, Block: l.Header.Name,
			Args: append([]remark.Arg{remark.Int("Loop", int64(l.ID))}, args...),
		})
	}

	chosen := map[*analysis.Loop]bool{}
	var decisions []Decision
	// Innermost-first: loops are ordered outer-first, so iterate backwards.
	for i := len(li.Loops) - 1; i >= 0; i-- {
		l := li.Loops[i]
		ov := params.Overrides[ir.BlockLine(l.Header)]
		if hasChosenDescendant(l, chosen) {
			missed(l, SkipInnerLoopChosen)
			continue
		}
		if ov.Deny {
			missed(l, SkipProfileDeny)
			continue
		}
		if l.HasConvergentOp() {
			missed(l, SkipConvergentOp)
			continue
		}
		if l.Latch() == nil {
			missed(l, SkipMultipleLatches)
			continue
		}
		// A Force override is a measured-profitability directive: it outranks
		// the static divergence taint and the size budget, but not structural
		// impossibility (checked above / single-path below).
		if !ov.Force && div != nil && div.LoopHasDivergentBranch(l) {
			missed(l, SkipDivergentBranch)
			continue
		}
		p := analysis.CountPaths(l)
		if p < 2 {
			missed(l, SkipSinglePath)
			continue // nothing to unmerge
		}
		s := analysis.LoopSize(l)
		umax := params.UMax
		if ov.FactorCap > 0 && ov.FactorCap < umax {
			umax = ov.FactorCap
		}
		factor := 0
		var est int64
		switch {
		case ov.Force:
			// Trust the profile: transform at the cap (or UMax) regardless of
			// the f(p, s, u) < C budget.
			factor = umax
			est = analysis.UnmergedSize(p, s, factor)
		case umax < 2:
			// FactorCap == 1: unmerge-only for this loop, no unrolling.
			factor = 1
			est = analysis.UnmergedSize(p, s, 1)
		default:
			for u := umax; u >= 2; u-- {
				if e := analysis.UnmergedSize(p, s, u); e < int64(params.C) {
					factor, est = u, e
					break
				}
			}
		}
		if factor == 0 {
			missed(l, SkipSizeOverBudget,
				remark.Int("Paths", int64(p)),
				remark.Int("Size", int64(s)),
				remark.Int("EstimatedAtUMin", analysis.UnmergedSize(p, s, 2)),
				remark.Int("C", int64(params.C)))
			continue
		}
		chosen[l] = true
		decisions = append(decisions, Decision{
			LoopID: l.ID, Header: l.Header, HeaderLine: ir.BlockLine(l.Header),
			Factor: factor, Paths: p, Size: s, Estimated: est, Forced: ov.Force,
		})
		if rc.Enabled() {
			rc.Emit(remark.Remark{
				Kind: remark.Passed, Pass: "uu-heuristic", Name: "LoopSelected",
				Function: f.Name, Block: l.Header.Name,
				Args: []remark.Arg{
					remark.Int("Loop", int64(l.ID)),
					remark.Int("Paths", int64(p)),
					remark.Int("Size", int64(s)),
					remark.Int("Factor", int64(factor)),
					remark.Int("Estimated", est),
					remark.Int("C", int64(params.C)),
				},
			})
		}
	}
	return decisions, skips
}

func hasChosenDescendant(l *analysis.Loop, chosen map[*analysis.Loop]bool) bool {
	for _, c := range l.Children {
		if chosen[c] || hasChosenDescendant(c, chosen) {
			return true
		}
	}
	return false
}

// ApplyHeuristic runs HeuristicDecide and applies u&u to each selected loop
// (deepest selections were decided first and are applied first). It returns
// the decisions taken and the skips recorded.
func ApplyHeuristic(f *ir.Function, params HeuristicParams, opts Options) ([]Decision, []SkipRecord) {
	return applyHeuristic(f, analysis.NewAnalysisManager(f), params, opts)
}

// ApplyHeuristicWith is ApplyHeuristic sharing the caller's analysis
// manager (and operating on the function it is bound to). Callers must
// treat the manager as fully invalid afterwards.
func ApplyHeuristicWith(am *analysis.AnalysisManager, params HeuristicParams, opts Options) ([]Decision, []SkipRecord) {
	return applyHeuristic(am.Function(), am, params, opts)
}

// applyHeuristic is ApplyHeuristic against a caller-provided analysis
// manager. The manager must be considered fully invalid on return (uuLoop
// normalizes loops even on error paths).
func applyHeuristic(f *ir.Function, am *analysis.AnalysisManager, params HeuristicParams, opts Options) ([]Decision, []SkipRecord) {
	if params.Selective {
		opts.Selective = true
	}
	decisions, skips := heuristicDecide(f, am, params)
	for _, d := range decisions {
		// Re-resolve through the manager: earlier applications invalidated it.
		l := loopWithHeader(am.LoopInfo(), d.Header)
		if l == nil {
			continue
		}
		// Errors here mean the loop became untransformable after an earlier
		// application (possible for overlapping nests); skip it.
		_, _ = uuLoop(f, am, l, d.Factor, opts)
	}
	return decisions, skips
}
