package core

import (
	"uu/internal/analysis"
	"uu/internal/ir"
)

// HeuristicParams are the knobs of the paper's selection heuristic
// (Section III-C): a loop is transformed when some unroll factor
// 2 <= u <= UMax keeps the estimated post-u&u size f(p, s, u) below C; the
// largest such factor is chosen. The paper evaluates with C = 1024 and
// UMax = 8.
type HeuristicParams struct {
	C    int
	UMax int
	// SkipDivergent additionally skips loops containing a branch on a
	// thread-id-dependent condition — the taint-analysis extension the paper
	// proposes in Section V to avoid `complex`-style slowdowns. Off by
	// default to match the published heuristic.
	SkipDivergent bool
}

// DefaultHeuristicParams returns the paper's evaluation setting.
func DefaultHeuristicParams() HeuristicParams { return HeuristicParams{C: 1024, UMax: 8} }

// Decision records one loop the heuristic chose and why.
type Decision struct {
	LoopID    int
	Header    *ir.Block
	Factor    int
	Paths     int
	Size      int
	Estimated int64 // f(p, s, factor)
}

// HeuristicDecide selects the loops to transform and their unroll factors,
// innermost loops first; an outer loop is considered only when none of its
// (transitive) inner loops was selected, as in the paper. Loops with
// convergent operations, without a unique latch, or without any control flow
// to unmerge (single path) are skipped.
func HeuristicDecide(f *ir.Function, params HeuristicParams) []Decision {
	return heuristicDecide(f, analysis.NewAnalysisManager(f), params)
}

// heuristicDecide is HeuristicDecide against a caller-provided analysis
// manager. It only reads the function.
func heuristicDecide(f *ir.Function, am *analysis.AnalysisManager, params HeuristicParams) []Decision {
	li := am.LoopInfo()
	var div *analysis.Divergence
	if params.SkipDivergent {
		div = am.Divergence()
	}

	chosen := map[*analysis.Loop]bool{}
	var decisions []Decision
	// Innermost-first: loops are ordered outer-first, so iterate backwards.
	for i := len(li.Loops) - 1; i >= 0; i-- {
		l := li.Loops[i]
		if hasChosenDescendant(l, chosen) {
			continue
		}
		if l.HasConvergentOp() || l.Latch() == nil {
			continue
		}
		if div != nil && div.LoopHasDivergentBranch(l) {
			continue
		}
		p := analysis.CountPaths(l)
		if p < 2 {
			continue // nothing to unmerge
		}
		s := analysis.LoopSize(l)
		factor := 0
		var est int64
		for u := params.UMax; u >= 2; u-- {
			if e := analysis.UnmergedSize(p, s, u); e < int64(params.C) {
				factor, est = u, e
				break
			}
		}
		if factor == 0 {
			continue
		}
		chosen[l] = true
		decisions = append(decisions, Decision{
			LoopID: l.ID, Header: l.Header, Factor: factor,
			Paths: p, Size: s, Estimated: est,
		})
	}
	return decisions
}

func hasChosenDescendant(l *analysis.Loop, chosen map[*analysis.Loop]bool) bool {
	for _, c := range l.Children {
		if chosen[c] || hasChosenDescendant(c, chosen) {
			return true
		}
	}
	return false
}

// ApplyHeuristic runs HeuristicDecide and applies u&u to each selected loop
// (deepest selections were decided first and are applied first). It returns
// the decisions taken.
func ApplyHeuristic(f *ir.Function, params HeuristicParams, opts Options) []Decision {
	return applyHeuristic(f, analysis.NewAnalysisManager(f), params, opts)
}

// ApplyHeuristicWith is ApplyHeuristic sharing the caller's analysis
// manager (and operating on the function it is bound to). Callers must
// treat the manager as fully invalid afterwards.
func ApplyHeuristicWith(am *analysis.AnalysisManager, params HeuristicParams, opts Options) []Decision {
	return applyHeuristic(am.Function(), am, params, opts)
}

// applyHeuristic is ApplyHeuristic against a caller-provided analysis
// manager. The manager must be considered fully invalid on return (uuLoop
// normalizes loops even on error paths).
func applyHeuristic(f *ir.Function, am *analysis.AnalysisManager, params HeuristicParams, opts Options) []Decision {
	decisions := heuristicDecide(f, am, params)
	for _, d := range decisions {
		// Re-resolve through the manager: earlier applications invalidated it.
		l := loopWithHeader(am.LoopInfo(), d.Header)
		if l == nil {
			continue
		}
		// Errors here mean the loop became untransformable after an earlier
		// application (possible for overlapping nests); skip it.
		_, _ = uuLoop(f, am, l, d.Factor, opts)
	}
	return decisions
}
