package core

import (
	"uu/internal/analysis"
	"uu/internal/ir"
)

// ConditionProvenance reconstructs the paper's Figure 5 labels: for every
// block of f it reports, per tracked condition, whether the block's position
// in the CFG implies the condition evaluated true ('T'), false ('F'), or is
// unknown ('X'). A condition counts as decided at a block when a dominating
// single-predecessor edge leaves a conditional branch whose condition is the
// tracked instruction or (via origins, as recorded by u&u) one of its
// clones.
//
// conds lists the original comparison instructions of interest (e.g. the two
// `icmp sgt` of the bezier loop); origins maps clones back to originals and
// may be nil when no duplication happened.
func ConditionProvenance(f *ir.Function, conds []*ir.Instr, origins map[*ir.Instr]*ir.Instr) map[*ir.Block]string {
	condIdx := map[*ir.Instr]int{}
	for i, c := range conds {
		condIdx[c] = i
	}
	rootOf := func(v ir.Value) (*ir.Instr, bool) {
		in, ok := v.(*ir.Instr)
		if !ok {
			return nil, false
		}
		if origins != nil {
			if r, ok := origins[in]; ok {
				in = r
			}
		}
		return in, true
	}

	dt := analysis.NewAnalysisManager(f).DomTree()
	labels := map[*ir.Block]string{}
	state := make([]byte, len(conds))
	for i := range state {
		state[i] = 'X'
	}
	var walk func(b *ir.Block)
	walk = func(b *ir.Block) {
		labels[b] = string(state)
		for _, child := range dt.Children(b) {
			// The edge decides a condition only when it is the unique way
			// into the child.
			decided := -1
			var truth byte
			if len(child.Preds()) == 1 && child.Preds()[0] == b {
				if t := b.Term(); t != nil && t.Op == ir.OpCondBr {
					if root, ok := rootOf(t.Arg(0)); ok {
						if idx, tracked := condIdx[root]; tracked {
							decided = idx
							if child == t.BlockArg(0) {
								truth = 'T'
							} else {
								truth = 'F'
							}
						}
					}
				}
			}
			if decided >= 0 {
				prev := state[decided]
				state[decided] = truth
				walk(child)
				state[decided] = prev
			} else {
				walk(child)
			}
		}
	}
	walk(f.Entry())
	return labels
}
