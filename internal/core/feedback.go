package core

import (
	"fmt"
	"strings"
)

// This file is the policy half of the profile-guided (PGO) loop: given
// measured per-loop signals and the app-level outcome of one
// compile→simulate round, derive the per-loop overrides for the next round.
// Signal extraction from gpusim profiles lives in internal/profile
// (ExtractFeedback); the campaign driver lives in internal/bench (RunPGO).
// Keeping the policy here means pipeline and serve can consume overrides
// without importing the profiler.

// LoopSignal is the measured per-loop evidence one simulation round produced,
// keyed by the loop's anchoring source line (LoopLine). Cycle-like fields are
// aggregated over the loop body including all unroll/unmerge clones.
type LoopSignal struct {
	Line             int32
	SelfCycles       int64 // issue cycles attributed to the loop body
	DivergeEvents    int64
	ReconvEvents     int64
	FetchStallCycles int64
	DepStallCycles   int64
	MemTransactions  int64 // actual memory transactions
	MemIdeal         int64 // fully-coalesced lower bound
}

// String renders a signal row for reports.
func (s LoopSignal) String() string {
	return fmt.Sprintf("L%d self=%d div=%d reconv=%d fetch-stall=%d dep-stall=%d mem=%d/%d",
		s.Line, s.SelfCycles, s.DivergeEvents, s.ReconvEvents,
		s.FetchStallCycles, s.DepStallCycles, s.MemTransactions, s.MemIdeal)
}

// Feedback is everything the override policy needs to know about one measured
// round for one app.
type Feedback struct {
	// Speedup is baseline-millis / heuristic-millis for this round; 0 means
	// unknown (no baseline measurement available).
	Speedup float64
	// Decisions are the heuristic selections of the measured build.
	Decisions []Decision
	// Mispredict reports that the hottest measured loop was not selected and
	// was not deliberately skipped (see DeliberateSkip) — the static model
	// got it wrong.
	Mispredict bool
	// MispredictLine is the hottest loop's anchoring line when Mispredict.
	MispredictLine int32
	// Signals are the measured per-loop rows, hottest first.
	Signals []LoopSignal
}

// DeadBand is the speedup below which a round counts as a regression worth
// reacting to. Runs in (DeadBand, 1.0) are treated as noise: demoting on them
// would trade measured-neutral transforms for churn that may never converge.
const DeadBand = 0.98

// SuggestOverrides derives the next round's override set from this round's
// measurement, layered over the current set. It returns the new set and
// whether anything changed; unchanged means the PGO loop has converged for
// this app. prev is not mutated.
//
// The policy is a demotion ladder plus a one-shot promotion:
//
//   - Regressing app (speedup < DeadBand): every selected loop steps down one
//     rung — factor > 2 becomes cap=2, factor 2 becomes cap=1 (unmerge-only),
//     factor 1 becomes deny. A Force override is dropped on demotion: if the
//     static model then deselects the loop again the promotion guard below
//     keeps us from re-forcing it, so the ladder is monotone.
//
//   - Mispredicted hottest loop: promoted to force+cap=2 (the conservative
//     entry factor), but only if the line has no override history — a line
//     that was already demoted or denied is never re-promoted, which is what
//     guarantees convergence.
func SuggestOverrides(prev map[int32]LoopOverride, fb Feedback) (map[int32]LoopOverride, bool) {
	out := make(map[int32]LoopOverride, len(prev)+1)
	for line, o := range prev {
		out[line] = o
	}
	changed := false
	set := func(line int32, o LoopOverride) {
		if out[line] != o {
			out[line] = o
			changed = true
		}
	}

	if fb.Speedup > 0 && fb.Speedup < DeadBand {
		for _, d := range fb.Decisions {
			switch {
			case d.Factor > 2:
				set(d.HeaderLine, LoopOverride{FactorCap: 2})
			case d.Factor == 2:
				set(d.HeaderLine, LoopOverride{FactorCap: 1})
			default:
				set(d.HeaderLine, LoopOverride{Deny: true})
			}
		}
	}

	if fb.Mispredict {
		if _, seen := out[fb.MispredictLine]; !seen {
			set(fb.MispredictLine, LoopOverride{Force: true, FactorCap: 2})
		}
	}
	return out, changed
}

// FeedbackString renders a feedback summary line for PGO reports.
func FeedbackString(fb Feedback) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "speedup=%.3f", fb.Speedup)
	if fb.Mispredict {
		fmt.Fprintf(&sb, " mispredict=L%d", fb.MispredictLine)
	}
	for _, d := range fb.Decisions {
		fmt.Fprintf(&sb, " [L%d u%d", d.HeaderLine, d.Factor)
		if d.Forced {
			sb.WriteString(" forced")
		}
		sb.WriteString("]")
	}
	return sb.String()
}
