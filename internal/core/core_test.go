package core

import (
	"math/rand"
	"testing"

	"uu/internal/analysis"
	"uu/internal/interp"
	"uu/internal/ir"
	"uu/internal/irparse"
	"uu/internal/transform"
)

// fig1Loop is the paper's Figure 1: a loop whose body branches (B -> C or D)
// and re-merges (E), with observable per-iteration effects stored to out.
const fig1Loop = `
func @fig1(i64* noalias %a, i64* noalias %out, i64 %n) {
entry:
  br %A
A:
  %i = phi i64 [ 0, %entry ], [ %inc, %E ]
  br %B
B:
  %p = gep i64* %a, i64 %i
  %v = load i64* %p
  %c = icmp sgt i64 %v, i64 0
  condbr i1 %c, %C, %D
C:
  %x = mul i64 %v, i64 3
  br %E
D:
  %y = sub i64 0, i64 %v
  br %E
E:
  %m = phi i64 [ %x, %C ], [ %y, %D ]
  %q = gep i64* %out, i64 %i
  store i64 %m, i64* %q
  %inc = add i64 %i, i64 1
  %cc = icmp slt i64 %inc, i64 %n
  condbr i1 %cc, %A, %exit
exit:
  ret
}
`

func parse(t *testing.T, src string) *ir.Function {
	t.Helper()
	f, err := irparse.ParseFunc(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := ir.Verify(f); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return f
}

func loopOf(t *testing.T, f *ir.Function, id int) *analysis.Loop {
	t.Helper()
	li := analysis.NewLoopInfo(f, analysis.NewDomTree(f))
	l := li.LoopByID(id)
	if l == nil {
		t.Fatalf("no loop #%d", id)
	}
	return l
}

func mustVerify(t *testing.T, f *ir.Function, stage string) {
	t.Helper()
	if err := ir.Verify(f); err != nil {
		t.Fatalf("verify after %s: %v\n%s", stage, err, f.String())
	}
}

// runFig1 executes fig1 on a fixed input and returns the out array.
func runFig1(t *testing.T, f *ir.Function, n int64, seed int64) []int64 {
	t.Helper()
	mem := interp.NewMemory(16 * n)
	rng := rand.New(rand.NewSource(seed))
	for i := int64(0); i < n; i++ {
		mem.SetI64(0, i, rng.Int63n(21)-10)
	}
	outBase := 8 * n
	args := []interp.Value{interp.IntVal(0), interp.IntVal(outBase), interp.IntVal(n)}
	if _, err := interp.Run(f, args, mem, interp.Env{}); err != nil {
		t.Fatalf("interp: %v\n%s", err, f.String())
	}
	out := make([]int64, n)
	for i := int64(0); i < n; i++ {
		out[i] = mem.I64(outBase, i)
	}
	return out
}

func sameSlice(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestUnmergeFigure2Structure(t *testing.T) {
	f := parse(t, fig1Loop)
	l := loopOf(t, f, 0)
	if !Unmerge(f, l, Options{}) {
		t.Fatalf("Unmerge did nothing")
	}
	mustVerify(t, f, "unmerge")
	// Figure 2: the merge block E is duplicated; no in-loop block other than
	// the header has two in-loop predecessors.
	li := analysis.NewLoopInfo(f, analysis.NewDomTree(f))
	l = li.Loops[0]
	for _, b := range l.Blocks() {
		if b == l.Header {
			continue
		}
		inPreds := 0
		for _, p := range b.Preds() {
			if l.Contains(p) {
				inPreds++
			}
		}
		if inPreds > 1 {
			t.Fatalf("merge block %s survived unmerging:\n%s", b.Name, f.String())
		}
	}
	// The loop now has two latches (one per path).
	if got := len(l.Latches()); got != 2 {
		t.Fatalf("latches = %d, want 2:\n%s", got, f.String())
	}
}

func TestUnmergePreservesSemantics(t *testing.T) {
	want := runFig1(t, parse(t, fig1Loop), 50, 1)
	for _, direct := range []bool{false, true} {
		f := parse(t, fig1Loop)
		l := loopOf(t, f, 0)
		if !Unmerge(f, l, Options{DirectSuccessorOnly: direct}) {
			t.Fatalf("Unmerge(direct=%v) did nothing", direct)
		}
		mustVerify(t, f, "unmerge")
		if got := runFig1(t, f, 50, 1); !sameSlice(got, want) {
			t.Fatalf("unmerge(direct=%v) changed semantics:\ngot  %v\nwant %v", direct, got, want)
		}
	}
}

func TestUnrollAndUnmergeFigure4(t *testing.T) {
	f := parse(t, fig1Loop)
	changed, err := UnrollAndUnmerge(f, 0, 2, Options{})
	if err != nil || !changed {
		t.Fatalf("u&u: changed=%v err=%v", changed, err)
	}
	mustVerify(t, f, "u&u")
	// Figure 4: the unrolled loop body is a path tree. With 2 paths and
	// factor 2 there are 4 leaf latches back to the header.
	li := analysis.NewLoopInfo(f, analysis.NewDomTree(f))
	l := li.Loops[0]
	if got := len(l.Latches()); got != 4 {
		t.Fatalf("latches = %d, want 4 (2 paths x 2 iterations):\n%s", got, f.String())
	}
	// No in-loop merges besides the header.
	for _, b := range l.Blocks() {
		if b == l.Header {
			continue
		}
		inPreds := 0
		for _, p := range b.Preds() {
			if l.Contains(p) {
				inPreds++
			}
		}
		if inPreds > 1 {
			t.Fatalf("merge block %s survived u&u:\n%s", b.Name, f.String())
		}
	}
}

func TestUUPreservesSemanticsAllFactors(t *testing.T) {
	for _, n := range []int64{1, 5, 32, 33} {
		want := runFig1(t, parse(t, fig1Loop), n, int64(n)+7)
		for _, factor := range []int{1, 2, 4, 8} {
			f := parse(t, fig1Loop)
			if _, err := UnrollAndUnmerge(f, 0, factor, Options{}); err != nil {
				t.Fatalf("u&u factor %d: %v", factor, err)
			}
			mustVerify(t, f, "u&u")
			if got := runFig1(t, f, n, int64(n)+7); !sameSlice(got, want) {
				t.Fatalf("u&u factor=%d n=%d changed semantics", factor, n)
			}
		}
	}
}

func TestUnmergeRefusesConvergent(t *testing.T) {
	src := `
func @conv(i64* %a, i64 %n) {
entry:
  br %A
A:
  %i = phi i64 [ 0, %entry ], [ %inc, %E ]
  %c = icmp slt i64 %i, i64 10
  condbr i1 %c, %C, %D
C:
  br %E
D:
  br %E
E:
  barrier
  %inc = add i64 %i, i64 1
  %cc = icmp slt i64 %inc, i64 %n
  condbr i1 %cc, %A, %exit
exit:
  ret
}
`
	f := parse(t, src)
	l := loopOf(t, f, 0)
	if Unmerge(f, l, Options{}) {
		t.Fatalf("Unmerge transformed a loop with a barrier")
	}
	if _, err := UnrollAndUnmerge(f, 0, 2, Options{}); err == nil {
		t.Fatalf("u&u accepted a convergent loop")
	}
}

func TestUnmergeMaxBlocksCap(t *testing.T) {
	f := parse(t, fig1Loop)
	l := loopOf(t, f, 0)
	before := f.NumBlocks()
	Unmerge(f, l, Options{MaxBlocks: before}) // cap at current size: at most one dup round
	mustVerify(t, f, "capped unmerge")
	if f.NumBlocks() > before+6 {
		t.Fatalf("block cap not respected: %d -> %d", before, f.NumBlocks())
	}
}

// bezierLoop mirrors Listing 2: two independent countdown conditions.
const bezierLoop = `
func @bezier(f64* noalias %out, i64 %nn0, i64 %kn0, i64 %nkn0) {
entry:
  br %H
H:
  %nn = phi i64 [ %nn0, %entry ], [ %nn2, %L ]
  %kn = phi i64 [ %kn0, %entry ], [ %kn2, %L ]
  %nkn = phi i64 [ %nkn0, %entry ], [ %nkn2, %L ]
  %blend = phi f64 [ 1.0, %entry ], [ %blend3, %L ]
  %nnf = sitofp i64 %nn to f64
  %blend1 = fmul f64 %blend, f64 %nnf
  %nn2 = sub i64 %nn, i64 1
  %c1 = icmp sgt i64 %kn, i64 1
  condbr i1 %c1, %T1, %M1
T1:
  %knf = sitofp i64 %kn to f64
  %blendk = fdiv f64 %blend1, f64 %knf
  %kn1 = sub i64 %kn, i64 1
  br %M1
M1:
  %blend2 = phi f64 [ %blendk, %T1 ], [ %blend1, %H ]
  %kn2 = phi i64 [ %kn1, %T1 ], [ %kn, %H ]
  %c2 = icmp sgt i64 %nkn, i64 1
  condbr i1 %c2, %T2, %L
T2:
  %nknf = sitofp i64 %nkn to f64
  %blendn = fdiv f64 %blend2, f64 %nknf
  %nkn1 = sub i64 %nkn, i64 1
  br %L
L:
  %blend3 = phi f64 [ %blendn, %T2 ], [ %blend2, %M1 ]
  %nkn2 = phi i64 [ %nkn1, %T2 ], [ %nkn, %M1 ]
  %cc = icmp sge i64 %nn2, i64 1
  condbr i1 %cc, %H, %exit
exit:
  %res = phi f64 [ %blend3, %L ]
  store f64 %res, f64* %out
  ret
}
`

func runBezier(t *testing.T, f *ir.Function, nn, kn, nkn int64) float64 {
	t.Helper()
	mem := interp.NewMemory(8)
	args := []interp.Value{interp.IntVal(0), interp.IntVal(nn), interp.IntVal(kn), interp.IntVal(nkn)}
	if _, err := interp.Run(f, args, mem, interp.Env{}); err != nil {
		t.Fatalf("interp: %v\n%s", err, f.String())
	}
	return mem.F64(0, 0)
}

func TestUUBezierSemanticsAndConditionElimination(t *testing.T) {
	base := parse(t, bezierLoop)
	want := runBezier(t, base, 20, 4, 7)

	f := parse(t, bezierLoop)
	if _, err := UnrollAndUnmerge(f, 0, 2, Options{}); err != nil {
		t.Fatalf("u&u: %v", err)
	}
	mustVerify(t, f, "u&u")
	if got := runBezier(t, f, 20, 4, 7); got != want {
		t.Fatalf("u&u changed bezier result: got %v want %v", got, want)
	}

	// Paper Figure 5 / Section III-B: after u&u + subsequent optimization,
	// the re-evaluation of kn>1 / nkn>1 on the paths where they were false
	// is eliminated. Count the icmp sgt instructions inside the loop: with
	// factor 2 the naive unrolled body would test both conditions twice on
	// every path (4 tests per path tree level). GVN must fold the re-tests
	// on the FT/TF/FF paths.
	countCmps := func(f *ir.Function) int {
		n := 0
		for _, b := range f.Blocks() {
			for _, in := range b.Instrs() {
				if in.Op == ir.OpICmp && in.Pred == ir.SGT {
					n++
				}
			}
		}
		return n
	}
	// Clean up with the standard passes.
	for i := 0; i < 3; i++ {
		transform.SCCP(f)
		transform.SimplifyCFG(f)
		transform.InstSimplify(f)
		transform.GVN(f, transform.DefaultGVNOptions())
		transform.DCE(f)
		transform.SimplifyCFG(f)
	}
	mustVerify(t, f, "cleanup")
	if got := runBezier(t, f, 20, 4, 7); got != want {
		t.Fatalf("optimized u&u changed bezier result: got %v want %v", got, want)
	}

	// Static structure: 8 sgt compares remain — 3 first-iteration tests (c1
	// plus c2 duplicated onto both c1-paths) and 5 second-iteration re-tests
	// of values that actually changed. Crucially, the FF continuation
	// (H.u1) carries no compare at all, and the F-side continuations never
	// re-test the unchanged condition — exactly the Figure 5 elimination.
	if got := countCmps(f); got > 8 {
		t.Fatalf("condition re-tests not eliminated: %d sgt compares remain (want <= 8):\n%s", got, f.String())
	}

	// Dynamic effect: once kn and nkn have counted down, every remaining
	// iteration pair runs the compare-free FF path, so the u&u version
	// executes far fewer comparisons than the baseline loop.
	countDyn := func(f *ir.Function) int64 {
		ctr := &interp.Counters{Ops: map[ir.Op]int64{}}
		mem := interp.NewMemory(8)
		args := []interp.Value{interp.IntVal(0), interp.IntVal(40), interp.IntVal(4), interp.IntVal(7)}
		if _, err := interp.RunCounted(f, args, mem, interp.Env{}, ctr); err != nil {
			t.Fatalf("interp: %v", err)
		}
		return ctr.Ops[ir.OpICmp]
	}
	baseDyn := countDyn(base)
	uuDyn := countDyn(f)
	if uuDyn >= baseDyn*3/4 {
		t.Fatalf("dynamic compares not reduced: baseline=%d u&u=%d", baseDyn, uuDyn)
	}
}

func TestHeuristicDecide(t *testing.T) {
	f := parse(t, bezierLoop)
	decisions, _ := HeuristicDecide(f, DefaultHeuristicParams())
	if len(decisions) != 1 {
		t.Fatalf("want 1 decision, got %d", len(decisions))
	}
	d := decisions[0]
	if d.Paths != 4 {
		t.Fatalf("paths = %d, want 4", d.Paths)
	}
	// f(p,s,u) = sum p^i*s must stay below 1024 for the chosen factor and
	// the factor must be the largest feasible one <= 8.
	if d.Estimated >= 1024 {
		t.Fatalf("estimate %d exceeds c", d.Estimated)
	}
	if d.Factor < 2 || d.Factor > 8 {
		t.Fatalf("factor = %d out of range", d.Factor)
	}
	if next := analysis.UnmergedSize(d.Paths, d.Size, d.Factor+1); d.Factor < 8 && next < 1024 {
		t.Fatalf("factor %d is not maximal: f(p,s,%d)=%d also fits", d.Factor, d.Factor+1, next)
	}
}

func TestHeuristicSkipsSinglePathLoops(t *testing.T) {
	src := `
func @straight(i64 %n) -> i64 {
entry:
  br %H
H:
  %i = phi i64 [ 0, %entry ], [ %i2, %H ]
  %i2 = add i64 %i, i64 1
  %c = icmp slt i64 %i2, i64 %n
  condbr i1 %c, %H, %exit
exit:
  %r = phi i64 [ %i2, %H ]
  ret i64 %r
}
`
	f := parse(t, src)
	if ds, _ := HeuristicDecide(f, DefaultHeuristicParams()); len(ds) != 0 {
		t.Fatalf("heuristic selected a single-path loop: %+v", ds)
	}
}

func TestHeuristicRespectsSizeBound(t *testing.T) {
	f := parse(t, bezierLoop)
	// With a tiny budget nothing fits.
	if ds, _ := HeuristicDecide(f, HeuristicParams{C: 10, UMax: 8}); len(ds) != 0 {
		t.Fatalf("heuristic ignored the size bound: %+v", ds)
	}
	// With a huge budget the max factor is chosen.
	ds, _ := HeuristicDecide(f, HeuristicParams{C: 1 << 30, UMax: 8})
	if len(ds) != 1 || ds[0].Factor != 8 {
		t.Fatalf("want factor 8 under a huge budget, got %+v", ds)
	}
}

func TestHeuristicInnermostFirst(t *testing.T) {
	src := `
func @nest(i64* noalias %a, i64 %n, i64 %k) {
entry:
  br %OH
OH:
  %i = phi i64 [ 0, %entry ], [ %i2, %OL ]
  br %IH
IH:
  %j = phi i64 [ 0, %OH ], [ %j2, %IL ]
  %c = icmp sgt i64 %k, i64 0
  condbr i1 %c, %IT, %IF
IT:
  br %IL
IF:
  br %IL
IL:
  %m = phi i64 [ 1, %IT ], [ 2, %IF ]
  %p = gep i64* %a, i64 %j
  store i64 %m, i64* %p
  %j2 = add i64 %j, i64 1
  %cj = icmp slt i64 %j2, i64 %k
  condbr i1 %cj, %IH, %OL
OL:
  %i2 = add i64 %i, i64 1
  %ci = icmp slt i64 %i2, i64 %n
  condbr i1 %ci, %OH, %exit
exit:
  ret
}
`
	f := parse(t, src)
	ds, _ := HeuristicDecide(f, DefaultHeuristicParams())
	if len(ds) != 1 {
		t.Fatalf("want 1 decision (inner only), got %+v", ds)
	}
	if ds[0].Header.Name != "IH" {
		t.Fatalf("want the inner loop selected, got header %s", ds[0].Header.Name)
	}
}

func TestApplyHeuristicPreservesSemantics(t *testing.T) {
	want := runBezier(t, parse(t, bezierLoop), 15, 3, 9)
	f := parse(t, bezierLoop)
	ds, _ := ApplyHeuristic(f, DefaultHeuristicParams(), Options{})
	if len(ds) == 0 {
		t.Fatalf("heuristic applied nothing")
	}
	mustVerify(t, f, "heuristic")
	if got := runBezier(t, f, 15, 3, 9); got != want {
		t.Fatalf("heuristic u&u changed semantics: got %v want %v", got, want)
	}
}

func TestUnmergeNestedLoopWholesaleClone(t *testing.T) {
	// A diamond followed by an inner loop: unmerging the outer loop must
	// clone the inner loop wholesale without breaking it.
	src := `
func @nest2(i64* noalias %a, i64 %n, i64 %k) {
entry:
  br %OH
OH:
  %i = phi i64 [ 0, %entry ], [ %i2, %OL ]
  %c = icmp sgt i64 %i, i64 2
  condbr i1 %c, %X, %Y
X:
  br %M
Y:
  br %M
M:
  %w = phi i64 [ 10, %X ], [ 20, %Y ]
  br %IH
IH:
  %j = phi i64 [ 0, %M ], [ %j2, %IH ]
  %idx = add i64 %j, i64 %i
  %p = gep i64* %a, i64 %idx
  store i64 %w, i64* %p
  %j2 = add i64 %j, i64 1
  %cj = icmp slt i64 %j2, i64 %k
  condbr i1 %cj, %IH, %OL
OL:
  %i2 = add i64 %i, i64 1
  %ci = icmp slt i64 %i2, i64 %n
  condbr i1 %ci, %OH, %exit
exit:
  ret
}
`
	runIt := func(f *ir.Function) []int64 {
		mem := interp.NewMemory(8 * 64)
		args := []interp.Value{interp.IntVal(0), interp.IntVal(6), interp.IntVal(4)}
		if _, err := interp.Run(f, args, mem, interp.Env{}); err != nil {
			t.Fatalf("interp: %v\n%s", err, f.String())
		}
		out := make([]int64, 16)
		for i := range out {
			out[i] = mem.I64(0, int64(i))
		}
		return out
	}
	want := runIt(parse(t, src))
	f := parse(t, src)
	li := analysis.NewLoopInfo(f, analysis.NewDomTree(f))
	outer := li.Top[0]
	if !Unmerge(f, outer, Options{}) {
		t.Fatalf("Unmerge did nothing")
	}
	mustVerify(t, f, "unmerge nested")
	// Two copies of the inner loop now exist.
	li2 := analysis.NewLoopInfo(f, analysis.NewDomTree(f))
	inner := 0
	for _, l := range li2.Loops {
		if l.Depth() == 2 {
			inner++
		}
	}
	if inner != 2 {
		t.Fatalf("inner loops = %d, want 2:\n%s", inner, f.String())
	}
	if got := runIt(f); !sameSlice(got, want) {
		t.Fatalf("nested unmerge changed semantics:\ngot  %v\nwant %v", got, want)
	}
}

// TestDirectSuccessorRegionSmaller: the paper's whole-path duplication
// iterates until NO merge block remains — including merges its own cloning
// creates — while the DBDS-style mode only splits the merges present at
// entry. A tail containing a second diamond exposes the difference: the
// cloned copy of the second merge stays merged under DBDS.
func TestDirectSuccessorRegionSmaller(t *testing.T) {
	src := `
func @f(i64* noalias %out, i64 %n, i64 %c1v, i64 %c2v) {
entry:
  br %H
H:
  %i = phi i64 [ 0, %entry ], [ %i2, %r ]
  %c1 = icmp sgt i64 %c1v, i64 %i
  condbr i1 %c1, %x, %y
x:
  br %m1
y:
  br %m1
m1:
  %v1 = phi i64 [ 1, %x ], [ 2, %y ]
  %c2 = icmp sgt i64 %c2v, i64 %i
  condbr i1 %c2, %p1, %q1
p1:
  br %r
q1:
  br %r
r:
  %v2 = phi i64 [ %v1, %p1 ], [ 7, %q1 ]
  %ptr = gep i64* %out, i64 %i
  store i64 %v2, i64* %ptr
  %i2 = add i64 %i, i64 1
  %cc = icmp slt i64 %i2, i64 %n
  condbr i1 %cc, %H, %exit
exit:
  ret
}
`
	countMerges := func(f *ir.Function) int {
		li := analysis.NewLoopInfo(f, analysis.NewDomTree(f))
		l := li.Loops[0]
		n := 0
		for _, b := range l.Blocks() {
			if b == l.Header {
				continue
			}
			inPreds := 0
			for _, p := range b.Preds() {
				if l.Contains(p) {
					inPreds++
				}
			}
			if inPreds > 1 {
				n++
			}
		}
		return n
	}
	run := func(direct bool) (int, int, []int64) {
		f := parse(t, src)
		l := loopOf(t, f, 0)
		if !Unmerge(f, l, Options{DirectSuccessorOnly: direct}) {
			t.Fatalf("Unmerge(direct=%v) did nothing", direct)
		}
		mustVerify(t, f, "unmerge")
		mem := interp.NewMemory(8 * 16)
		args := []interp.Value{interp.IntVal(0), interp.IntVal(10), interp.IntVal(6), interp.IntVal(3)}
		if _, err := interp.Run(f, args, mem, interp.Env{}); err != nil {
			t.Fatalf("interp: %v", err)
		}
		out := make([]int64, 10)
		for i := range out {
			out[i] = mem.I64(0, int64(i))
		}
		return f.NumBlocks(), countMerges(f), out
	}
	fullBlocks, fullMerges, fullOut := run(false)
	directBlocks, directMerges, directOut := run(true)
	if !sameSlice(fullOut, directOut) {
		t.Fatalf("variants disagree: %v vs %v", fullOut, directOut)
	}
	if fullMerges != 0 {
		t.Fatalf("whole-path unmerging left %d merges", fullMerges)
	}
	if directMerges == 0 {
		t.Fatalf("DBDS-style mode should leave the clone-created merge in place")
	}
	if directBlocks >= fullBlocks {
		t.Fatalf("direct-successor mode should duplicate less: direct=%d full=%d blocks",
			directBlocks, fullBlocks)
	}
}

// TestHeuristicSkipDivergent: the §V taint extension deselects loops whose
// branches depend on the thread id.
func TestHeuristicSkipDivergent(t *testing.T) {
	src := `
func @f(i64* noalias %out) {
entry:
  %t = tid
  %n0 = sext i32 %t to i64
  br %H
H:
  %n = phi i64 [ %n0, %entry ], [ %n2, %L ]
  %acc = phi i64 [ 0, %entry ], [ %acc2, %L ]
  %bit = and i64 %n, i64 1
  %c = icmp ne i64 %bit, i64 0
  condbr i1 %c, %T, %L
T:
  br %L
L:
  %acc2 = phi i64 [ %acc, %H ], [ 5, %T ]
  %n2 = ashr i64 %n, i64 1
  %cc = icmp sgt i64 %n2, i64 0
  condbr i1 %cc, %H, %exit
exit:
  %r = phi i64 [ %acc2, %L ]
  store i64 %r, i64* %out
  ret
}
`
	f := parse(t, src)
	params := DefaultHeuristicParams()
	if ds, _ := HeuristicDecide(f, params); len(ds) != 1 {
		t.Fatalf("published heuristic should select the loop: %+v", ds)
	}
	params.SkipDivergent = true
	if ds, _ := HeuristicDecide(f, params); len(ds) != 0 {
		t.Fatalf("taint-aware heuristic should skip the divergent loop: %+v", ds)
	}
}

// TestConditionProvenanceFigure5: after u&u on the bezier loop, the
// second-iteration header copies carry the Figure 5 labels TT, TF, FT, FF
// for the two conditions of the first iteration.
func TestConditionProvenanceFigure5(t *testing.T) {
	f := parse(t, bezierLoop)
	var conds []*ir.Instr
	for _, name := range []string{"c1", "c2"} {
		for _, b := range f.Blocks() {
			for _, in := range b.Instrs() {
				if in.Name() == name {
					conds = append(conds, in)
				}
			}
		}
	}
	if len(conds) != 2 {
		t.Fatalf("conditions not found")
	}
	origins := map[*ir.Instr]*ir.Instr{}
	if _, err := UnrollAndUnmerge(f, 0, 2, Options{Origins: origins}); err != nil {
		t.Fatalf("u&u: %v", err)
	}
	mustVerify(t, f, "u&u")
	labels := ConditionProvenance(f, conds, origins)
	seen := map[string]bool{}
	for _, lbl := range labels {
		seen[lbl] = true
	}
	for _, want := range []string{"XX", "TX", "FX", "TT", "TF", "FT", "FF"} {
		if !seen[want] {
			t.Errorf("label %q not observed; got %v", want, seen)
		}
	}
}

// TestConditionProvenanceNoDuplication: without u&u only the direct branch
// shadows are labeled.
func TestConditionProvenanceNoDuplication(t *testing.T) {
	f := parse(t, bezierLoop)
	var c1 *ir.Instr
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			if in.Name() == "c1" {
				c1 = in
			}
		}
	}
	labels := ConditionProvenance(f, []*ir.Instr{c1}, nil)
	if labels[f.BlockByName("T1")] != "T" {
		t.Errorf("T1 label = %q, want T", labels[f.BlockByName("T1")])
	}
	// M1 merges both sides: unknown.
	if labels[f.BlockByName("M1")] != "X" {
		t.Errorf("M1 label = %q, want X", labels[f.BlockByName("M1")])
	}
	if labels[f.BlockByName("H")] != "X" {
		t.Errorf("H label = %q, want X", labels[f.BlockByName("H")])
	}
}

// TestSelectiveUnmerge: the paper's §VI partial-unmerging proposal. On a
// loop with one "useful" merge (phi feeding a comparison) and one "useless"
// merge (phi feeding only a store), selective mode splits the former and
// leaves the latter, producing less code than full unmerging while staying
// correct.
func TestSelectiveUnmerge(t *testing.T) {
	src := `
func @f(i64* noalias %out, i64 %n, i64 %k) {
entry:
  br %H
H:
  %i = phi i64 [ 0, %entry ], [ %i2, %L ]
  %c1 = icmp sgt i64 %k, i64 %i
  condbr i1 %c1, %a, %b
a:
  br %m1
b:
  br %m1
m1:
  %kv = phi i64 [ %k, %a ], [ %i, %b ]
  %c2 = icmp sgt i64 %kv, i64 5
  condbr i1 %c2, %x, %y
x:
  br %m2
y:
  br %m2
m2:
  %sv = phi i64 [ 100, %x ], [ 200, %y ]
  br %L
L:
  %p = gep i64* %out, i64 %i
  store i64 %sv, i64* %p
  %i2 = add i64 %i, i64 1
  %cc = icmp slt i64 %i2, i64 %n
  condbr i1 %cc, %H, %exit
exit:
  ret
}
`
	runIt := func(f *ir.Function) []int64 {
		mem := interp.NewMemory(8 * 16)
		args := []interp.Value{interp.IntVal(0), interp.IntVal(12), interp.IntVal(7)}
		if _, err := interp.Run(f, args, mem, interp.Env{}); err != nil {
			t.Fatalf("interp: %v\n%s", err, f.String())
		}
		out := make([]int64, 12)
		for i := range out {
			out[i] = mem.I64(0, int64(i))
		}
		return out
	}
	want := runIt(parse(t, src))

	// The predictor classifies m1 (feeds c2) as profitable, m2 (feeds only
	// the store) as not.
	{
		f := parse(t, src)
		l := loopOf(t, f, 0)
		prof := ProfitableMerges(l)
		if !prof[f.BlockByName("m1")] {
			t.Fatalf("m1 should be predicted profitable")
		}
		if prof[f.BlockByName("m2")] {
			t.Fatalf("m2 should be predicted unprofitable")
		}
	}

	full := parse(t, src)
	if !Unmerge(full, loopOf(t, full, 0), Options{}) {
		t.Fatalf("full unmerge did nothing")
	}
	mustVerify(t, full, "full")
	sel := parse(t, src)
	if !Unmerge(sel, loopOf(t, sel, 0), Options{Selective: true}) {
		t.Fatalf("selective unmerge did nothing")
	}
	mustVerify(t, sel, "selective")
	if got := runIt(sel); !sameSlice(got, want) {
		t.Fatalf("selective unmerge changed semantics")
	}
	if got := runIt(full); !sameSlice(got, want) {
		t.Fatalf("full unmerge changed semantics")
	}
	if sel.NumInstrs() >= full.NumInstrs() {
		t.Fatalf("selective mode should duplicate less: selective=%d full=%d instrs",
			sel.NumInstrs(), full.NumInstrs())
	}
	// The useless merge m2 survives in selective mode.
	if sel.BlockByName("m2") == nil {
		t.Fatalf("m2 vanished under selective mode")
	}
}

// TestUUOnLoopNest: u&u on the outer loop of a nest must unmerge the inner
// loop (not unroll it), unroll the outer loop, and preserve semantics.
func TestUUOnLoopNest(t *testing.T) {
	src := `
func @nest3(i64* noalias %out, i64 %n, i64 %m, i64 %k) {
entry:
  br %OH
OH:
  %i = phi i64 [ 0, %entry ], [ %i2, %OL ]
  %acc0 = phi i64 [ 0, %entry ], [ %acc2, %OL ]
  br %IH
IH:
  %j = phi i64 [ 0, %OH ], [ %j2, %IL ]
  %acc = phi i64 [ %acc0, %OH ], [ %accN, %IL ]
  %c = icmp sgt i64 %k, i64 %j
  condbr i1 %c, %IT, %IF
IT:
  br %IL
IF:
  br %IL
IL:
  %d = phi i64 [ 3, %IT ], [ 5, %IF ]
  %accN = add i64 %acc, i64 %d
  %j2 = add i64 %j, i64 1
  %cj = icmp slt i64 %j2, i64 %m
  condbr i1 %cj, %IH, %OL
OL:
  %acc2 = phi i64 [ %accN, %IL ]
  %p = gep i64* %out, i64 %i
  store i64 %acc2, i64* %p
  %i2 = add i64 %i, i64 1
  %ci = icmp slt i64 %i2, i64 %n
  condbr i1 %ci, %OH, %exit
exit:
  ret
}
`
	runIt := func(f *ir.Function) []int64 {
		mem := interp.NewMemory(8 * 8)
		args := []interp.Value{interp.IntVal(0), interp.IntVal(7), interp.IntVal(5), interp.IntVal(3)}
		if _, err := interp.Run(f, args, mem, interp.Env{}); err != nil {
			t.Fatalf("interp: %v\n%s", err, f.String())
		}
		out := make([]int64, 7)
		for i := range out {
			out[i] = mem.I64(0, int64(i))
		}
		return out
	}
	want := runIt(parse(t, src))

	f := parse(t, src)
	// Loop 0 is the outer loop (outer-first deterministic ordering).
	changed, err := UnrollAndUnmerge(f, 0, 2, Options{})
	if err != nil || !changed {
		t.Fatalf("u&u on outer: changed=%v err=%v", changed, err)
	}
	mustVerify(t, f, "u&u nest")
	if got := runIt(f); !sameSlice(got, want) {
		t.Fatalf("nest u&u changed semantics:\ngot  %v\nwant %v", got, want)
	}
	// The outer header was duplicated (unrolled); inner headers multiplied
	// through tail duplication but each inner loop body must keep its
	// back-edge structure (no inner unrolling: every inner loop still has a
	// single header with a self-contained latch).
	li := analysis.NewLoopInfo(f, analysis.NewDomTree(f))
	outerCount, innerCount := 0, 0
	for _, l := range li.Loops {
		if l.Depth() == 1 {
			outerCount++
		} else {
			innerCount++
		}
	}
	if outerCount != 1 {
		t.Fatalf("outer loops = %d, want 1", outerCount)
	}
	if innerCount < 2 {
		t.Fatalf("inner loops = %d, want >= 2 (one per unrolled iteration)", innerCount)
	}
}

// TestLoopCountHelper exercises the Table I `L` column helper.
func TestLoopCountHelper(t *testing.T) {
	f := parse(t, bezierLoop)
	if got := LoopCount(f); got != 1 {
		t.Fatalf("LoopCount = %d, want 1", got)
	}
}
