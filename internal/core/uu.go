package core

import (
	"fmt"

	"uu/internal/analysis"
	"uu/internal/ir"
	"uu/internal/remark"
	"uu/internal/transform"
)

// UnrollAndUnmerge applies the paper's u&u transformation to the loop with
// the given deterministic ID (see analysis.LoopInfo): inner loops are
// unmerged (not unrolled), the target loop is unrolled by factor, and the
// resulting body is unmerged. factor == 1 performs unmerging only — the
// paper's `unmerge` comparator configuration.
//
// It returns whether the function changed, and an error when the loop ID
// does not exist or the loop is not transformable (convergent operations,
// no unique latch).
func UnrollAndUnmerge(f *ir.Function, loopID, factor int, opts Options) (bool, error) {
	return unrollAndUnmerge(f, analysis.NewAnalysisManager(f), loopID, factor, opts)
}

// UnrollAndUnmergeWith is UnrollAndUnmerge sharing the caller's analysis
// manager (and operating on the function it is bound to), so already-cached
// analyses are reused for loop resolution. Callers must treat the manager
// as fully invalid afterwards: the transformation normalizes loops
// (preheader, LCSSA) even on paths that end in an error.
func UnrollAndUnmergeWith(am *analysis.AnalysisManager, loopID, factor int, opts Options) (bool, error) {
	return unrollAndUnmerge(am.Function(), am, loopID, factor, opts)
}

// unrollAndUnmerge is UnrollAndUnmerge against a caller-provided analysis
// manager. The manager must be considered fully invalid on return: the
// transformation establishes preheader/LCSSA form even on paths that end in
// an error.
func unrollAndUnmerge(f *ir.Function, am *analysis.AnalysisManager, loopID, factor int, opts Options) (bool, error) {
	li := am.LoopInfo()
	l := li.LoopByID(loopID)
	if l == nil {
		return false, fmt.Errorf("core: function %s has no loop #%d (%d loops)", f.Name, loopID, len(li.Loops))
	}
	return uuLoop(f, am, l, factor, opts)
}

// uuLoop is UnrollAndUnmerge on a resolved loop.
func uuLoop(f *ir.Function, am *analysis.AnalysisManager, l *analysis.Loop, factor int, opts Options) (bool, error) {
	rc := am.Remarks()
	emit := func(kind remark.Kind, name, block string, args ...remark.Arg) {
		if !rc.Enabled() {
			return
		}
		rc.Emit(remark.Remark{
			Kind: kind, Pass: "uu", Name: name,
			Function: f.Name, Block: block,
			Args: append([]remark.Arg{remark.Int("Loop", int64(l.ID))}, args...),
		})
	}
	if l.HasConvergentOp() {
		emit(remark.Missed, "ConvergentOp", l.Header.Name)
		return false, fmt.Errorf("core: loop #%d contains a convergent operation", l.ID)
	}
	if l.Latch() == nil {
		emit(remark.Missed, "MultipleLatches", l.Header.Name)
		return false, fmt.Errorf("core: loop #%d has multiple latches", l.ID)
	}
	changed := false

	// Unmerge inner loops first (the paper: "inner loops are only unmerged,
	// not unrolled"). Headers identify loops across recomputation.
	innerHeaders := innerLoopHeaders(l)
	for _, h := range innerHeaders {
		// Structures may have changed; re-resolve through the manager
		// (unmerge invalidates it whenever it mutates).
		inner := loopWithHeader(am.LoopInfo(), h)
		if inner == nil {
			continue
		}
		if unmerge(f, am, inner, opts) {
			changed = true
			emit(remark.Passed, "InnerLoopUnmerged", h.Name)
		}
		am.InvalidateAll() // unmerge may normalize the loop even when !changed
	}

	header := l.Header
	if factor >= 2 {
		tl := loopWithHeader(am.LoopInfo(), header)
		if tl == nil {
			return changed, fmt.Errorf("core: loop header %s vanished", header.Name)
		}
		ok := transform.UnrollLoopWithOrigins(f, tl, factor, opts.Origins)
		am.InvalidateAll() // UnrollLoop normalizes the loop even on failure
		if !ok {
			emit(remark.Missed, "UnrollFailed", header.Name, remark.Int("Factor", int64(factor)))
			return changed, fmt.Errorf("core: loop #%d could not be unrolled", l.ID)
		}
		changed = true
		emit(remark.Passed, "Unrolled", header.Name, remark.Int("Factor", int64(factor)))
	}

	tl := loopWithHeader(am.LoopInfo(), header)
	if tl == nil {
		return changed, fmt.Errorf("core: loop header %s vanished after unrolling", header.Name)
	}
	if unmerge(f, am, tl, opts) {
		changed = true
		emit(remark.Passed, "Unmerged", header.Name)
	}
	am.InvalidateAll()
	return changed, nil
}

// UnmergeLoopByID applies unmerging only (the paper's `unmerge` comparator).
func UnmergeLoopByID(f *ir.Function, loopID int, opts Options) (bool, error) {
	return UnrollAndUnmerge(f, loopID, 1, opts)
}

// innerLoopHeaders collects the headers of all loops nested in l, deepest
// first, so callers process innermost loops before their parents.
func innerLoopHeaders(l *analysis.Loop) []*ir.Block {
	var out []*ir.Block
	var collect func(x *analysis.Loop)
	collect = func(x *analysis.Loop) {
		for _, c := range x.Children {
			collect(c)
			out = append(out, c.Header)
		}
	}
	collect(l)
	return out
}

func loopWithHeader(li *analysis.LoopInfo, h *ir.Block) *analysis.Loop {
	for _, l := range li.Loops {
		if l.Header == h {
			return l
		}
	}
	return nil
}

// LoopCount returns the number of natural loops in f — the `L` column of the
// paper's Table I.
func LoopCount(f *ir.Function) int {
	return len(analysis.NewAnalysisManager(f).LoopInfo().Loops)
}
