package core

import (
	"fmt"

	"uu/internal/analysis"
	"uu/internal/ir"
	"uu/internal/transform"
)

// UnrollAndUnmerge applies the paper's u&u transformation to the loop with
// the given deterministic ID (see analysis.LoopInfo): inner loops are
// unmerged (not unrolled), the target loop is unrolled by factor, and the
// resulting body is unmerged. factor == 1 performs unmerging only — the
// paper's `unmerge` comparator configuration.
//
// It returns whether the function changed, and an error when the loop ID
// does not exist or the loop is not transformable (convergent operations,
// no unique latch).
func UnrollAndUnmerge(f *ir.Function, loopID, factor int, opts Options) (bool, error) {
	dt := analysis.NewDomTree(f)
	li := analysis.NewLoopInfo(f, dt)
	l := li.LoopByID(loopID)
	if l == nil {
		return false, fmt.Errorf("core: function %s has no loop #%d (%d loops)", f.Name, loopID, len(li.Loops))
	}
	return uuLoop(f, l, factor, opts)
}

// uuLoop is UnrollAndUnmerge on a resolved loop.
func uuLoop(f *ir.Function, l *analysis.Loop, factor int, opts Options) (bool, error) {
	if l.HasConvergentOp() {
		return false, fmt.Errorf("core: loop #%d contains a convergent operation", l.ID)
	}
	if l.Latch() == nil {
		return false, fmt.Errorf("core: loop #%d has multiple latches", l.ID)
	}
	changed := false

	// Unmerge inner loops first (the paper: "inner loops are only unmerged,
	// not unrolled"). Headers identify loops across recomputation.
	innerHeaders := innerLoopHeaders(l)
	for _, h := range innerHeaders {
		ndt := analysis.NewDomTree(f)
		nli := analysis.NewLoopInfo(f, ndt)
		inner := loopWithHeader(nli, h)
		if inner == nil {
			continue
		}
		if Unmerge(f, inner, opts) {
			changed = true
		}
	}

	header := l.Header
	if factor >= 2 {
		// Structures may have changed; re-resolve the target loop.
		ndt := analysis.NewDomTree(f)
		nli := analysis.NewLoopInfo(f, ndt)
		tl := loopWithHeader(nli, header)
		if tl == nil {
			return changed, fmt.Errorf("core: loop header %s vanished", header.Name)
		}
		if !transform.UnrollLoopWithOrigins(f, tl, factor, opts.Origins) {
			return changed, fmt.Errorf("core: loop #%d could not be unrolled", l.ID)
		}
		changed = true
	}

	ndt := analysis.NewDomTree(f)
	nli := analysis.NewLoopInfo(f, ndt)
	tl := loopWithHeader(nli, header)
	if tl == nil {
		return changed, fmt.Errorf("core: loop header %s vanished after unrolling", header.Name)
	}
	if Unmerge(f, tl, opts) {
		changed = true
	}
	return changed, nil
}

// UnmergeLoopByID applies unmerging only (the paper's `unmerge` comparator).
func UnmergeLoopByID(f *ir.Function, loopID int, opts Options) (bool, error) {
	return UnrollAndUnmerge(f, loopID, 1, opts)
}

// innerLoopHeaders collects the headers of all loops nested in l, deepest
// first, so callers process innermost loops before their parents.
func innerLoopHeaders(l *analysis.Loop) []*ir.Block {
	var out []*ir.Block
	var collect func(x *analysis.Loop)
	collect = func(x *analysis.Loop) {
		for _, c := range x.Children {
			collect(c)
			out = append(out, c.Header)
		}
	}
	collect(l)
	return out
}

func loopWithHeader(li *analysis.LoopInfo, h *ir.Block) *analysis.Loop {
	for _, l := range li.Loops {
		if l.Header == h {
			return l
		}
	}
	return nil
}

// LoopCount returns the number of natural loops in f — the `L` column of the
// paper's Table I.
func LoopCount(f *ir.Function) int {
	dt := analysis.NewDomTree(f)
	return len(analysis.NewLoopInfo(f, dt).Loops)
}
