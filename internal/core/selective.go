package core

import (
	"uu/internal/analysis"
	"uu/internal/ir"
)

// ProfitableMerges implements the benefit predictor behind the paper's
// proposed *partial unmerging* (Section VI: "unmerging only those
// control-flow merges that lead to subsequent optimization opportunities").
//
// A merge block is predicted profitable to split when the information its
// phis destroy could feed a later optimization:
//
//   - a phi (transitively, inside the loop) reaches a comparison — splitting
//     lets GVN's equality propagation fold the re-test (bezier, rainflow);
//   - a phi reaches a memory address (GEP index or pointer) — splitting lets
//     load elimination prove reuse (rainflow, XSBench);
//   - a phi is a select-shaped value that feeds arithmetic simplifiable by
//     identities such as (a+b)-a (XSBench's subtraction).
//
// Merges whose phis only feed plain data flow that no later pass can exploit
// (the `complex` accumulator updates) are predicted unprofitable.
func ProfitableMerges(l *analysis.Loop) map[*ir.Block]bool {
	inLoop := func(b *ir.Block) bool { return l.Contains(b) }
	// reaches[instr] = true when the value transitively feeds a comparison,
	// an address, or a subtraction inside the loop. Computed by backwards
	// propagation from the interesting sinks.
	interesting := map[*ir.Instr]bool{}
	var mark func(v ir.Value, depth int)
	mark = func(v ir.Value, depth int) {
		in, ok := v.(*ir.Instr)
		if !ok || depth == 0 || interesting[in] {
			return
		}
		if !inLoop(in.Block()) {
			return
		}
		interesting[in] = true
		for i := 0; i < in.NumArgs(); i++ {
			mark(in.Arg(i), depth-1)
		}
	}
	for _, b := range l.Blocks() {
		for _, in := range b.Instrs() {
			switch in.Op {
			case ir.OpICmp, ir.OpFCmp:
				mark(in.Arg(0), 6)
				mark(in.Arg(1), 6)
			case ir.OpGEP:
				mark(in.Arg(1), 6)
			case ir.OpLoad:
				mark(in.Arg(0), 6)
			case ir.OpSub:
				mark(in.Arg(0), 4)
				mark(in.Arg(1), 4)
			}
		}
	}
	out := map[*ir.Block]bool{}
	for _, b := range l.Blocks() {
		if b == l.Header {
			continue
		}
		inPreds := 0
		for _, p := range b.Preds() {
			if l.Contains(p) {
				inPreds++
			}
		}
		if inPreds < 2 {
			continue
		}
		for _, phi := range b.Phis() {
			if interesting[phi] {
				out[b] = true
				break
			}
		}
	}
	return out
}
