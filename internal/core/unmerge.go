// Package core implements the paper's contribution: control-flow unmerging,
// the combined unroll-and-unmerge (u&u) transformation, and the heuristic
// that selects loops and unroll factors under the size model
// f(p, s, u) = Σ_{i=0}^{u-1} p^i·s  (Section III of the paper).
package core

import (
	"fmt"

	"uu/internal/analysis"
	"uu/internal/ir"
	"uu/internal/transform"
)

// Options configures the unmerge transformation.
type Options struct {
	// DirectSuccessorOnly duplicates only the merge block itself instead of
	// the whole tail path to the latch — the DBDS-style baseline of
	// Leopoldseder et al. the paper compares against in Section II-d.
	// The paper's design duplicates the entire path ("Our approach
	// aggressively duplicates the entire path leading to the initial loop
	// header"); that is the default (false).
	DirectSuccessorOnly bool
	// MaxBlocks aborts the (worst-case exponential) duplication once the
	// function grows beyond this many blocks. Every intermediate state is
	// semantics-preserving, so aborting just yields a partially unmerged
	// loop. 0 means DefaultMaxBlocks.
	MaxBlocks int
	// Origins, when non-nil, records for every cloned instruction the
	// original instruction it (transitively) stems from. ConditionProvenance
	// uses this to reconstruct the paper's Figure 5 path labels.
	Origins map[*ir.Instr]*ir.Instr
	// Selective enables the paper's proposed partial unmerging (Section VI):
	// only merge blocks that ProfitableMerges predicts to enable later
	// optimizations are duplicated, containing code growth on loops like
	// `complex` whose merges carry plain data flow.
	Selective bool
}

// DefaultMaxBlocks caps function growth during unmerging.
const DefaultMaxBlocks = 4096

// Unmerge removes control-flow merge points inside loop l: every in-loop
// block other than the header (and other than inner-loop headers) with more
// than one in-loop predecessor is duplicated, once per extra predecessor,
// together with its whole tail region up to the latch. Afterwards each path
// through the (possibly unrolled) loop body is a separate chain of
// single-predecessor blocks, so dominated-edge facts (GVN) see the full
// control-flow provenance of every iteration.
//
// Loops containing convergent operations (barriers) are refused, mirroring
// the paper's use of LLVM's convergence analysis. Returns whether the CFG
// changed.
func Unmerge(f *ir.Function, l *analysis.Loop, opts Options) bool {
	return unmerge(f, analysis.NewAnalysisManager(f), l, opts)
}

// unmerge is Unmerge against a caller-provided analysis manager. The
// duplication loop mutates the CFG repeatedly; the manager is invalidated
// after every structural edit so each dominance query (direct-successor
// region selection) sees the current graph. The manager is always
// invalidated on return: establishing preheader/LCSSA form can mutate even
// when no merge block is duplicated.
func unmerge(f *ir.Function, am *analysis.AnalysisManager, l *analysis.Loop, opts Options) bool {
	if l.HasConvergentOp() {
		return false
	}
	if l.Latch() == nil {
		return false
	}
	maxBlocks := opts.MaxBlocks
	if maxBlocks == 0 {
		maxBlocks = DefaultMaxBlocks
	}
	transform.EnsurePreheader(f, l)
	transform.EnsureLCSSA(f, l)
	am.InvalidateAll()

	// Working copy of the loop's block set; clones are added as we go.
	loopSet := map[*ir.Block]bool{}
	for _, b := range l.Blocks() {
		loopSet[b] = true
	}
	header := l.Header

	// Blocks of inner loops keep their merges: duplicating an inner back
	// edge would be loop peeling, and collapsing an inner merge would drop
	// back-edge values. Inner loops are unmerged by their own Unmerge calls
	// (see UnrollAndUnmerge); here they are cloned wholesale when they sit
	// inside a duplicated tail. Clones inherit the exemption.
	innerBlock := map[*ir.Block]bool{}
	{
		li := am.LoopInfo()
		for _, il := range li.Loops {
			if il.Header != header && l.Contains(il.Header) {
				for _, ib := range il.Blocks() {
					innerBlock[ib] = true
				}
			}
		}
	}

	// Selective (partial) unmerging: exempt the merge blocks the benefit
	// predictor rejects; the exemption set doubles as the inner-loop mask and
	// propagates to clones below.
	if opts.Selective {
		profitable := ProfitableMerges(l)
		for _, b := range l.Blocks() {
			if b == header || innerBlock[b] {
				continue
			}
			inPreds := 0
			for _, p := range b.Preds() {
				if l.Contains(p) {
					inPreds++
				}
			}
			if inPreds >= 2 && !profitable[b] {
				innerBlock[b] = true
			}
		}
	}

	// In direct-successor (DBDS-style) mode only the merge blocks present at
	// entry are duplicated — one round, not to fixpoint — matching [8]'s
	// "unmerges only the direct successor basic block". The paper's design
	// iterates until no merge block remains.
	var initialMerges map[*ir.Block]bool
	if opts.DirectSuccessorOnly {
		initialMerges = map[*ir.Block]bool{}
		for _, b := range l.Blocks() {
			initialMerges[b] = true
		}
	}
	changed := false
	dupCount := 0
	for {
		if f.NumBlocks() > maxBlocks {
			break
		}
		b := findMergeBlock(f, header, loopSet, innerBlock)
		for b != nil && initialMerges != nil && !initialMerges[b] {
			// One-round mode: skip merges introduced by earlier duplications.
			innerBlock[b] = true // reuse the exemption set to mask it off
			b = findMergeBlock(f, header, loopSet, innerBlock)
		}
		if b == nil {
			break
		}
		// In-loop predecessors; keep the first, split the rest off.
		var inPreds []*ir.Block
		for _, p := range b.Preds() {
			if loopSet[p] {
				inPreds = append(inPreds, p)
			}
		}
		for _, pi := range inPreds[1:] {
			dupCount++
			region := tailRegion(am, b, header, loopSet, opts.DirectSuccessorOnly)
			bmap, vmap := ir.CloneBlocks(f, region, fmt.Sprintf(".d%d", dupCount))
			// Stamp path duplicates with the duplication id (composing with
			// any unroll iteration tag, like the ".u1.d3" block names).
			for _, clone := range vmap {
				if ci, ok := clone.(*ir.Instr); ok {
					loc := ci.Loc()
					loc.Dup = int32(dupCount)
					ci.SetLoc(loc)
				}
			}
			recordOrigins(opts.Origins, vmap)
			inRegion := map[*ir.Block]bool{}
			for _, rb := range region {
				inRegion[rb] = true
			}
			// Register clones in the loop set and propagate the inner-loop
			// exemption.
			for _, rb := range region {
				loopSet[bmap[rb]] = true
				if innerBlock[rb] {
					innerBlock[bmap[rb]] = true
				}
			}
			// Blocks outside the region targeted from inside it (the loop
			// header via back edges, loop exits, in-loop successors in
			// direct-successor mode): their phis gain one incoming per
			// cloned edge.
			for _, rb := range region {
				for _, s := range rb.Succs() {
					if inRegion[s] {
						continue
					}
					for _, phi := range s.Phis() {
						v := phi.PhiIncoming(rb)
						if v == nil {
							continue
						}
						if phi.PhiIncoming(bmap[rb]) == nil {
							phi.PhiAddIncoming(vmap.Lookup(v), bmap[rb])
						}
					}
				}
			}
			// Cloned phis: incomings from blocks outside the region are
			// edges that do not exist on the clone. For the duplicated merge
			// block b itself the only remaining pred will be pi, so its phis
			// collapse to pi's value; elsewhere the stale incomings are
			// dropped.
			for _, rb := range region {
				cb := bmap[rb]
				for _, phi := range append([]*ir.Instr(nil), cb.Phis()...) {
					if rb == b {
						orig := origPhiOf(rb, phi, vmap)
						val := vmap.Lookup(orig.PhiIncoming(pi))
						phi.ReplaceAllUsesWith(val)
						cb.Erase(phi)
						vmap[orig] = val
						continue
					}
					for i := phi.NumBlocks() - 1; i >= 0; i-- {
						if !inRegion[phiOrigBlock(phi.BlockArg(i), bmap)] {
							phi.PhiRemoveIncoming(phi.BlockArg(i))
						}
					}
				}
			}
			// Redirect pi into the cloned merge block.
			pi.ReplaceSucc(b, bmap[b])
			for _, phi := range b.Phis() {
				phi.PhiRemoveIncoming(pi)
			}
			am.InvalidateAll()
			changed = true
		}
	}
	return changed
}

// origPhiOf finds the original phi that cloned phi stems from: CloneBlocks
// maps original->clone, so invert by scanning the original block.
func origPhiOf(origBlock *ir.Block, clonePhi *ir.Instr, vmap ir.ValueMap) *ir.Instr {
	for _, in := range origBlock.Phis() {
		if vmap[in] == ir.Value(clonePhi) {
			return in
		}
	}
	panic("core: clone phi has no original")
}

// phiOrigBlock maps a phi incoming block of a CLONED phi back through bmap:
// incoming blocks inside the region were remapped to clones, so membership
// must be tested on clones as well as originals.
func phiOrigBlock(b *ir.Block, bmap map[*ir.Block]*ir.Block) *ir.Block {
	for orig, clone := range bmap {
		if clone == b {
			return orig
		}
	}
	return b
}

// findMergeBlock returns the first block (in reverse postorder from the
// header through in-loop forward edges) that merges several in-loop
// predecessors, or nil.
func findMergeBlock(f *ir.Function, header *ir.Block, loopSet, innerBlock map[*ir.Block]bool) *ir.Block {
	// RPO over the loop body DAG (edges into the header ignored).
	var order []*ir.Block
	state := map[*ir.Block]int{}
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		state[b] = 1
		for _, s := range b.Succs() {
			if !loopSet[s] || s == header || state[s] != 0 {
				continue
			}
			dfs(s)
		}
		state[b] = 2
		order = append(order, b)
	}
	dfs(header)
	for i := len(order) - 1; i >= 0; i-- {
		b := order[i]
		if b == header || innerBlock[b] {
			continue
		}
		n := 0
		for _, p := range b.Preds() {
			if loopSet[p] {
				n++
			}
		}
		if n >= 2 {
			return b
		}
	}
	return nil
}

// tailRegion returns the blocks reachable from b inside the loop without
// passing through the header — the whole path to the latch that the paper's
// design duplicates. In direct-successor mode the region is instead the
// smallest SSA-closed region around the merge block: b plus the blocks it
// dominates (values defined there are only used inside it or through phis),
// which approximates the DBDS-style "duplicate only the merge block" of [8].
func tailRegion(am *analysis.AnalysisManager, b, header *ir.Block, loopSet map[*ir.Block]bool, directOnly bool) []*ir.Block {
	if directOnly {
		dt := am.DomTree()
		region := []*ir.Block{}
		var walkDom func(x *ir.Block)
		walkDom = func(x *ir.Block) {
			region = append(region, x)
			for _, c := range dt.Children(x) {
				if loopSet[c] && c != header {
					walkDom(c)
				}
			}
		}
		walkDom(b)
		return region
	}
	var region []*ir.Block
	seen := map[*ir.Block]bool{b: true}
	work := []*ir.Block{b}
	for len(work) > 0 {
		x := work[len(work)-1]
		work = work[:len(work)-1]
		region = append(region, x)
		for _, s := range x.Succs() {
			if s == header || !loopSet[s] || seen[s] {
				continue
			}
			seen[s] = true
			work = append(work, s)
		}
	}
	return region
}

// recordOrigins notes, for every clone in vmap, the root original it stems
// from (following earlier recorded ancestry).
func recordOrigins(origins map[*ir.Instr]*ir.Instr, vmap ir.ValueMap) {
	if origins == nil {
		return
	}
	for orig, clone := range vmap {
		co, ok := clone.(*ir.Instr)
		if !ok {
			continue
		}
		root, ok := orig.(*ir.Instr)
		if !ok {
			continue
		}
		if r, ok := origins[root]; ok {
			root = r
		}
		origins[co] = root
	}
}
