package core

import (
	"testing"

	"uu/internal/ir"
)

// stampLine gives f's loop header (named name) a source line so override
// tests can key on it; parsed test IR carries no provenance.
func stampLine(t *testing.T, f *ir.Function, name string, line int32) {
	t.Helper()
	for _, b := range f.Blocks() {
		if b.Name == name {
			b.Term().SetLoc(ir.Loc{Line: line})
			return
		}
	}
	t.Fatalf("no block %q", name)
}

func TestParseOverridesRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want string // canonical OverridesString rendering
	}{
		{"", "-"},
		{"L10:deny", "L10:deny"},
		{"L12:force+cap=2", "L12:force,cap=2"},
		{"L7:cap=1", "L7:cap=1"},
		{"L12:force+cap=2, L10:deny", "L10:deny L12:force,cap=2"},
	}
	for _, c := range cases {
		ov, err := ParseOverrides(c.in)
		if err != nil {
			t.Fatalf("ParseOverrides(%q): %v", c.in, err)
		}
		if got := OverridesString(ov); got != c.want {
			t.Errorf("ParseOverrides(%q) renders %q, want %q", c.in, got, c.want)
		}
	}

	for _, bad := range []string{"10:deny", "L0:deny", "Lx:deny", "L5:wat", "L5:cap=0", "L5:deny+force"} {
		if _, err := ParseOverrides(bad); err == nil {
			t.Errorf("ParseOverrides(%q) accepted invalid input", bad)
		}
	}
}

func TestMergeOverridesExplicitWins(t *testing.T) {
	derived := map[int32]LoopOverride{10: {Deny: true}, 12: {FactorCap: 2}}
	explicit := map[int32]LoopOverride{10: {Force: true, FactorCap: 4}}
	out := MergeOverrides(derived, explicit)
	if got := out[10]; got != (LoopOverride{Force: true, FactorCap: 4}) {
		t.Errorf("explicit override lost the merge: %v", got)
	}
	if got := out[12]; got != (LoopOverride{FactorCap: 2}) {
		t.Errorf("derived-only override dropped: %v", got)
	}
	if derived[10] != (LoopOverride{Deny: true}) {
		t.Errorf("MergeOverrides mutated its input")
	}
}

// TestSuggestOverridesLadder walks the demotion ladder end to end: a
// regressing app demotes each selected loop one rung per round
// (factor>2 → cap=2 → cap=1 → deny) and never climbs back up, so the
// override set reaches a fixed point in at most four rounds.
func TestSuggestOverridesLadder(t *testing.T) {
	decide := func(factor int, forced bool) []Decision {
		return []Decision{{HeaderLine: 10, Factor: factor, Forced: forced}}
	}
	regress := func(prev map[int32]LoopOverride, ds []Decision) (map[int32]LoopOverride, bool) {
		return SuggestOverrides(prev, Feedback{Speedup: 0.5, Decisions: ds})
	}

	ov, changed := regress(nil, decide(8, true))
	if !changed || ov[10] != (LoopOverride{FactorCap: 2}) {
		t.Fatalf("rung 1: got %v changed=%t, want cap=2", ov[10], changed)
	}
	// Force is dropped on demotion — the next round runs the cap honestly.
	if ov[10].Force {
		t.Fatalf("demotion preserved Force")
	}
	ov, changed = regress(ov, decide(2, false))
	if !changed || ov[10] != (LoopOverride{FactorCap: 1}) {
		t.Fatalf("rung 2: got %v, want cap=1", ov[10])
	}
	ov, changed = regress(ov, decide(1, false))
	if !changed || ov[10] != (LoopOverride{Deny: true}) {
		t.Fatalf("rung 3: got %v, want deny", ov[10])
	}
	// Denied: the loop no longer appears in decisions, the set is stable.
	if _, changed = regress(ov, nil); changed {
		t.Fatalf("override set changed after deny — ladder is not a fixed point")
	}
}

func TestSuggestOverridesPromotionOnce(t *testing.T) {
	// A mispredicted hottest loop with no history is promoted conservatively.
	ov, changed := SuggestOverrides(nil, Feedback{Speedup: 1.0, Mispredict: true, MispredictLine: 14})
	if !changed || ov[14] != (LoopOverride{Force: true, FactorCap: 2}) {
		t.Fatalf("promotion: got %v, want force,cap=2", ov[14])
	}
	// A line with override history is never re-promoted (convergence guard).
	prev := map[int32]LoopOverride{14: {Deny: true}}
	ov, changed = SuggestOverrides(prev, Feedback{Speedup: 1.0, Mispredict: true, MispredictLine: 14})
	if changed || ov[14] != (LoopOverride{Deny: true}) {
		t.Fatalf("denied line was re-promoted: %v changed=%t", ov[14], changed)
	}
	// Neutral rounds inside the dead band change nothing.
	if _, changed = SuggestOverrides(nil, Feedback{Speedup: 0.99,
		Decisions: []Decision{{HeaderLine: 10, Factor: 4}}}); changed {
		t.Fatalf("dead-band round demoted a loop")
	}
}

func TestOverrideDeny(t *testing.T) {
	f := parse(t, bezierLoop)
	stampLine(t, f, "H", 12)
	params := DefaultHeuristicParams()
	params.Overrides = map[int32]LoopOverride{12: {Deny: true}}
	ds, skips := HeuristicDecide(f, params)
	if len(ds) != 0 {
		t.Fatalf("denied loop was selected: %+v", ds)
	}
	if len(skips) != 1 || skips[0].Reason != SkipProfileDeny || skips[0].HeaderLine != 12 {
		t.Fatalf("want one ProfileDeny skip at L12, got %+v", skips)
	}
}

func TestOverrideFactorCap(t *testing.T) {
	f := parse(t, bezierLoop)
	stampLine(t, f, "H", 12)
	// Uncapped, a huge budget picks UMax.
	ds, _ := HeuristicDecide(f, HeuristicParams{C: 1 << 30, UMax: 8})
	if len(ds) != 1 || ds[0].Factor != 8 {
		t.Fatalf("baseline: want factor 8, got %+v", ds)
	}
	params := HeuristicParams{C: 1 << 30, UMax: 8,
		Overrides: map[int32]LoopOverride{12: {FactorCap: 2}}}
	ds, _ = HeuristicDecide(f, params)
	if len(ds) != 1 || ds[0].Factor != 2 {
		t.Fatalf("cap=2: want factor 2, got %+v", ds)
	}
	// cap=1 is unmerge-only: still selected, at factor 1.
	params.Overrides[12] = LoopOverride{FactorCap: 1}
	ds, _ = HeuristicDecide(f, params)
	if len(ds) != 1 || ds[0].Factor != 1 {
		t.Fatalf("cap=1: want factor 1 (unmerge-only), got %+v", ds)
	}
}

func TestOverrideForceBypassesBudget(t *testing.T) {
	f := parse(t, bezierLoop)
	stampLine(t, f, "H", 12)
	// A tiny budget rejects the loop statically...
	ds, skips := HeuristicDecide(f, HeuristicParams{C: 10, UMax: 8})
	if len(ds) != 0 {
		t.Fatalf("tiny budget selected a loop: %+v", ds)
	}
	if len(skips) != 1 || skips[0].Reason != SkipSizeOverBudget {
		t.Fatalf("want SizeOverBudget skip, got %+v", skips)
	}
	// ...but Force trusts the profile over the size model.
	params := HeuristicParams{C: 10, UMax: 8,
		Overrides: map[int32]LoopOverride{12: {Force: true, FactorCap: 2}}}
	ds, _ = HeuristicDecide(f, params)
	if len(ds) != 1 || ds[0].Factor != 2 || !ds[0].Forced {
		t.Fatalf("force+cap=2 under tiny budget: got %+v", ds)
	}
}

func TestOverrideForceRespectsStructure(t *testing.T) {
	// Force cannot conjure control flow: a single-path loop stays skipped.
	src := `
func @straight(i64 %n) -> i64 {
entry:
  br %H
H:
  %i = phi i64 [ 0, %entry ], [ %i2, %H ]
  %i2 = add i64 %i, i64 1
  %c = icmp slt i64 %i2, i64 %n
  condbr i1 %c, %H, %exit
exit:
  %r = phi i64 [ %i2, %H ]
  ret i64 %r
}
`
	f := parse(t, src)
	stampLine(t, f, "H", 5)
	params := DefaultHeuristicParams()
	params.Overrides = map[int32]LoopOverride{5: {Force: true}}
	ds, skips := HeuristicDecide(f, params)
	if len(ds) != 0 {
		t.Fatalf("force selected a single-path loop: %+v", ds)
	}
	if len(skips) != 1 || skips[0].Reason != SkipSinglePath {
		t.Fatalf("want SinglePath skip, got %+v", skips)
	}
}

func TestDeliberateSkipTaxonomy(t *testing.T) {
	for _, r := range []string{SkipInnerLoopChosen, SkipConvergentOp, SkipMultipleLatches,
		SkipDivergentBranch, SkipSinglePath, SkipProfileDeny} {
		if !DeliberateSkip(r) {
			t.Errorf("%s should be a deliberate skip", r)
		}
	}
	if DeliberateSkip(SkipSizeOverBudget) {
		t.Errorf("SizeOverBudget is the model being wrong, not a deliberate skip")
	}
}
