package analysis

import (
	"testing"

	"uu/internal/ir"
	"uu/internal/irparse"
)

// managerTestFunc is a minimal single-loop function.
const managerSrc = `
func @mtest(i64 %n) {
entry:
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %inc, %head ]
  %inc = add i64 %i, i64 1
  %c = icmp slt i64 %inc, i64 %n
  condbr i1 %c, %head, %exit
exit:
  ret
}
`

func TestManagerCachesAndCounts(t *testing.T) {
	f := parse(t, managerSrc)
	am := NewAnalysisManager(f)
	if am.Function() != f {
		t.Fatalf("Function() mismatch")
	}

	dt1 := am.DomTree()
	dt2 := am.DomTree()
	if dt1 != dt2 {
		t.Fatalf("DomTree not cached: distinct pointers")
	}
	li1 := am.LoopInfo()
	li2 := am.LoopInfo()
	if li1 != li2 {
		t.Fatalf("LoopInfo not cached")
	}
	if len(li1.Loops) != 1 {
		t.Fatalf("want 1 loop, got %d", len(li1.Loops))
	}
	st := am.Stats()
	// DomTree: 1 miss + 1 hit from the direct queries + 1 hit from
	// LoopInfo's dependency; LoopInfo: 1 miss + 1 hit.
	if st.Misses[DomTreeID] != 1 || st.Hits[DomTreeID] != 2 {
		t.Errorf("domtree counters: %+v", st)
	}
	if st.Misses[LoopInfoID] != 1 || st.Hits[LoopInfoID] != 1 {
		t.Errorf("loopinfo counters: %+v", st)
	}
	if st.HitRate() <= 0 {
		t.Errorf("hit rate not positive: %v", st.HitRate())
	}
}

func TestManagerInvalidation(t *testing.T) {
	f := parse(t, managerSrc)
	am := NewAnalysisManager(f)
	dt1 := am.DomTree()
	am.LoopInfo()
	am.Divergence()

	// A CFG-preserving change keeps the trees but drops divergence.
	am.Invalidate(PreserveCFG())
	if am.DomTree() != dt1 {
		t.Fatalf("PreserveCFG dropped the dominator tree")
	}
	st := am.Stats()
	if st.Invalidated[DivergenceID] != 1 || st.Invalidated[DomTreeID] != 0 {
		t.Errorf("PreserveCFG invalidation counters: %+v", st)
	}
	missesBefore := am.Stats().Misses[DivergenceID]
	am.Divergence()
	if am.Stats().Misses[DivergenceID] != missesBefore+1 {
		t.Errorf("divergence not recomputed after invalidation")
	}

	// Unchanged invalidates nothing.
	am.Invalidate(Unchanged())
	if am.DomTree() != dt1 {
		t.Fatalf("Unchanged dropped the dominator tree")
	}

	// PreserveNone drops everything.
	am.InvalidateAll()
	if am.DomTree() == dt1 {
		t.Fatalf("InvalidateAll kept the old dominator tree")
	}
}

func TestPreservedAnalyses(t *testing.T) {
	if Unchanged().Changed() {
		t.Error("Unchanged reports changed")
	}
	if !Unchanged().Preserves(DomTreeID) {
		t.Error("Unchanged must preserve everything")
	}
	pa := PreserveCFG()
	if !pa.Changed() || !pa.Preserves(LoopInfoID) || pa.Preserves(DivergenceID) || pa.Preserves(AliasID) {
		t.Errorf("PreserveCFG wrong shape: %+v", pa)
	}
	if PreserveNone().Preserves(DomTreeID) {
		t.Error("PreserveNone preserves domtree")
	}
	if !If(false, PreserveNone()).Preserves(DomTreeID) {
		t.Error("If(false) must be Unchanged")
	}
	if If(true, PreserveNone()).Preserves(DomTreeID) {
		t.Error("If(true) must pass through")
	}
}

func TestAliasInfoMemo(t *testing.T) {
	src := `
func @amemo(f64* noalias %x, f64* noalias %y, i64 %i) {
entry:
  %px = gep f64* %x, i64 %i
  %py = gep f64* %y, i64 %i
  %l = load f64* %px
  store f64 %l, f64* %py
  ret
}
`
	f, err := irparse.ParseFunc(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var px, py ir.Value
	for _, in := range f.Entry().Instrs() {
		switch in.Name() {
		case "px":
			px = in
		case "py":
			py = in
		}
	}
	ai := NewAliasInfo()
	if got := ai.Alias(px, py); got != NoAlias {
		t.Fatalf("restrict arrays: want NoAlias, got %v", got)
	}
	// Symmetric query answered from the memo.
	if got := ai.Alias(py, px); got != NoAlias {
		t.Fatalf("symmetric query: want NoAlias, got %v", got)
	}
	if len(ai.memo) != 2 {
		t.Fatalf("memo should hold both directions, has %d entries", len(ai.memo))
	}
}
