package analysis

import "uu/internal/ir"

// Divergence classifies which values may differ between threads of a warp.
// It is a forward taint analysis seeded at thread-id intrinsics, extended
// with sync dependences: a phi is divergent when a divergent branch controls
// which incoming path reaches it before the branch's reconvergence point
// (its immediate post-dominator).
//
// The paper names such an analysis as the missing ingredient that would have
// let the heuristic skip the `complex` loop, whose `n & 1` condition on the
// thread id diverges every warp.
type Divergence struct {
	divValues   map[*ir.Instr]bool
	divBranches map[*ir.Block]bool
}

// NewDivergence runs the analysis on f.
func NewDivergence(f *ir.Function) *Divergence {
	d := &Divergence{
		divValues:   map[*ir.Instr]bool{},
		divBranches: map[*ir.Block]bool{},
	}
	pdt := NewPostDomTree(f)

	// For a conditional branch at b with reconvergence point M = ipdom(b),
	// the phis influenced by the branch are those in M itself plus those in
	// blocks reachable from both successors without passing through M.
	influenced := map[*ir.Block]map[*ir.Block]bool{}
	influencedBy := func(b *ir.Block) map[*ir.Block]bool {
		if s, ok := influenced[b]; ok {
			return s
		}
		t := b.Term()
		m := pdt.Idom(b) // may be nil (virtual exit)
		reachAvoiding := func(start *ir.Block) map[*ir.Block]bool {
			seen := map[*ir.Block]bool{}
			if start == m {
				return seen
			}
			work := []*ir.Block{start}
			seen[start] = true
			for len(work) > 0 {
				x := work[len(work)-1]
				work = work[:len(work)-1]
				for _, s := range x.Succs() {
					if s == m || seen[s] {
						continue
					}
					seen[s] = true
					work = append(work, s)
				}
			}
			return seen
		}
		r0 := reachAvoiding(t.BlockArg(0))
		r1 := reachAvoiding(t.BlockArg(1))
		set := map[*ir.Block]bool{}
		for x := range r0 {
			if r1[x] {
				set[x] = true
			}
		}
		if m != nil {
			set[m] = true
		}
		influenced[b] = set
		return set
	}

	changed := true
	for changed {
		changed = false
		for _, b := range f.Blocks() {
			for _, in := range b.Instrs() {
				if d.divValues[in] {
					continue
				}
				if d.instrDivergent(in, influencedBy) {
					d.divValues[in] = true
					changed = true
				}
			}
			t := b.Term()
			if t != nil && t.Op == ir.OpCondBr && !d.divBranches[b] {
				if c, ok := t.Arg(0).(*ir.Instr); ok && d.divValues[c] {
					d.divBranches[b] = true
					changed = true
				}
			}
		}
	}
	return d
}

func (d *Divergence) instrDivergent(in *ir.Instr, influencedBy func(*ir.Block) map[*ir.Block]bool) bool {
	switch in.Op {
	case ir.OpTID:
		return true
	case ir.OpNTID, ir.OpCTAID, ir.OpNCTAID, ir.OpBarrier:
		// Uniform across the warp (ctaid is uniform within a thread block,
		// and a warp never spans thread blocks).
		return false
	}
	for i := 0; i < in.NumArgs(); i++ {
		if a, ok := in.Arg(i).(*ir.Instr); ok && d.divValues[a] {
			return true
		}
	}
	if in.IsPhi() {
		for b, div := range d.divBranches {
			if div && influencedBy(b)[in.Block()] {
				return true
			}
		}
	}
	return false
}

// IsDivergent reports whether v may hold different values across the threads
// of a warp. Constants and kernel parameters are uniform.
func (d *Divergence) IsDivergent(v ir.Value) bool {
	in, ok := v.(*ir.Instr)
	return ok && d.divValues[in]
}

// HasDivergentBranch reports whether the terminator of b branches on a
// divergent condition.
func (d *Divergence) HasDivergentBranch(b *ir.Block) bool { return d.divBranches[b] }

// LoopHasDivergentBranch reports whether any block of l ends in a divergent
// conditional branch — the signal a taint-aware u&u heuristic would use to
// skip loops like the one in `complex`.
func (d *Divergence) LoopHasDivergentBranch(l *Loop) bool {
	for _, b := range l.Blocks() {
		if d.divBranches[b] {
			return true
		}
	}
	return false
}
