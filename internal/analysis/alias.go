package analysis

import "uu/internal/ir"

// AliasResult is the answer of the alias analysis for a pair of pointers.
type AliasResult int

// Alias query results.
const (
	MayAlias AliasResult = iota
	NoAlias
	MustAlias
)

// String returns a readable spelling of the result.
func (r AliasResult) String() string {
	switch r {
	case NoAlias:
		return "NoAlias"
	case MustAlias:
		return "MustAlias"
	}
	return "MayAlias"
}

// pointerExpr is a pointer decomposed into a base object plus a symbolic
// index expression: the multiset of non-constant index values and the sum of
// constant indexes (in elements, not bytes — GEPs on the same base share an
// element type).
type pointerExpr struct {
	base     ir.Value
	constOff int64
	syms     []ir.Value // sorted by pointer identity for comparison
}

func decompose(p ir.Value) pointerExpr {
	e := pointerExpr{}
	for {
		in, ok := p.(*ir.Instr)
		if !ok || in.Op != ir.OpGEP {
			break
		}
		switch idx := in.Arg(1).(type) {
		case *ir.Const:
			e.constOff += idx.Int
		default:
			e.syms = append(e.syms, idx)
		}
		p = in.Arg(0)
	}
	e.base = p
	return e
}

func sameSyms(a, b []ir.Value) bool {
	if len(a) != len(b) {
		return false
	}
	used := make([]bool, len(b))
outer:
	for _, x := range a {
		for i, y := range b {
			if !used[i] && x == y {
				used[i] = true
				continue outer
			}
		}
		return false
	}
	return true
}

// Alias classifies the relationship between two pointers. It understands
// three facts, which cover the needs of GVN's load/store elimination on the
// paper's kernels:
//
//  1. distinct parameters where at least one is __restrict__ (noalias) do not
//     alias, and neither do distinct allocas or an alloca and a parameter;
//  2. pointers off the same base with identical symbolic indexes and equal
//     constant offsets must alias;
//  3. pointers off the same base with identical symbolic indexes but
//     different constant offsets (x[i] vs x[i+2]) do not alias.
func Alias(p, q ir.Value) AliasResult {
	if p == q {
		return MustAlias
	}
	ep, eq := decompose(p), decompose(q)
	if ep.base != eq.base {
		return distinctBases(ep.base, eq.base)
	}
	if sameSyms(ep.syms, eq.syms) {
		if ep.constOff == eq.constOff {
			return MustAlias
		}
		return NoAlias
	}
	return MayAlias
}

func distinctBases(a, b ir.Value) AliasResult {
	pa, aIsParam := a.(*ir.Param)
	pb, bIsParam := b.(*ir.Param)
	aIsAlloca := isAlloca(a)
	bIsAlloca := isAlloca(b)
	switch {
	case aIsAlloca && bIsAlloca:
		return NoAlias // distinct allocas
	case aIsAlloca && bIsParam, bIsAlloca && aIsParam:
		return NoAlias // locals never alias device arrays
	case aIsParam && bIsParam:
		if pa.Restrict || pb.Restrict {
			return NoAlias
		}
	}
	return MayAlias
}

func isAlloca(v ir.Value) bool {
	in, ok := v.(*ir.Instr)
	return ok && in.Op == ir.OpAlloca
}
