package analysis

import "uu/internal/ir"

// TripCountLimit bounds the number of simulated iterations when evaluating a
// candidate constant trip count; loops longer than this are treated as
// unknown.
const TripCountLimit = 1 << 20

// ConstantTripCount returns the exact number of iterations of l when it is a
// canonically counted loop with constant bounds: a single induction phi in
// the header with constant initial value and constant additive step, and a
// single conditional exit in the header or unique latch comparing the
// induction variable (or its incremented value) against a constant.
//
// It mirrors (a small slice of) LLVM's scalar evolution, and powers the
// baseline unroller's full-unroll decision — e.g. the trip count of 4 in
// bspline-vgh that the paper calls out in RQ2.
func ConstantTripCount(l *Loop) (int64, bool) {
	exiting := l.ExitingBlocks()
	if len(exiting) != 1 {
		return 0, false
	}
	eb := exiting[0]
	if eb != l.Header && eb != l.Latch() {
		return 0, false
	}
	term := eb.Term()
	if term.Op != ir.OpCondBr {
		return 0, false
	}
	cmp, ok := term.Arg(0).(*ir.Instr)
	if !ok || cmp.Op != ir.OpICmp {
		return 0, false
	}
	// One operand must be derived from the induction phi, the other constant.
	bound, bok := cmp.Arg(1).(*ir.Const)
	ivSide, pred := cmp.Arg(0), cmp.Pred
	if !bok {
		bound, bok = cmp.Arg(0).(*ir.Const)
		if !bok {
			return 0, false
		}
		ivSide, pred = cmp.Arg(1), cmp.Pred.Swapped()
	}

	phi, init, step, incr := inductionOf(l, ivSide)
	if phi == nil {
		return 0, false
	}
	// Whether the comparison sees the pre- or post-increment value.
	post := ivSide == ir.Value(incr)
	if !post && ivSide != ir.Value(phi) {
		return 0, false
	}
	// The loop continues while the branch takes the in-loop edge.
	inLoopOnTrue := l.Contains(term.BlockArg(0))
	if inLoopOnTrue == l.Contains(term.BlockArg(1)) {
		return 0, false
	}
	// The test guards the body only when it is in the header and the header
	// is not also the latch; a single-block loop has do-while semantics.
	headerTest := eb == l.Header && eb != l.Latch()

	iv := init
	var count int64
	for count <= TripCountLimit {
		// Value the comparison observes this iteration.
		obs := iv
		if post {
			obs = iv + step
		}
		c := ir.FoldCompare(ir.OpICmp, pred, ir.ConstInt(phi.Type(), obs), bound)
		if c == nil {
			return 0, false
		}
		stay := (c.Int == 1) == inLoopOnTrue
		if headerTest {
			if !stay {
				return count, true
			}
			count++
			iv += step
		} else { // latch test: body has already run once when tested
			count++
			iv += step
			if !stay {
				return count, true
			}
		}
	}
	return 0, false
}

// inductionOf finds the induction phi that v is based on: v must be the phi
// itself or its increment instruction. Returns the phi, its constant initial
// value, its constant step, and the increment instruction.
func inductionOf(l *Loop, v ir.Value) (phi *ir.Instr, init, step int64, incr *ir.Instr) {
	in, ok := v.(*ir.Instr)
	if !ok {
		return nil, 0, 0, nil
	}
	asPhi := in
	if in.Op == ir.OpAdd || in.Op == ir.OpSub {
		// v may be the increment; its phi operand is the induction variable.
		if p, ok := in.Arg(0).(*ir.Instr); ok && p.IsPhi() {
			asPhi = p
		} else if p, ok := in.Arg(1).(*ir.Instr); ok && p.IsPhi() && in.Op == ir.OpAdd {
			asPhi = p
		}
	}
	if !asPhi.IsPhi() || asPhi.Block() != l.Header || asPhi.NumArgs() != 2 {
		return nil, 0, 0, nil
	}
	var initC *ir.Const
	var inc *ir.Instr
	for i := 0; i < 2; i++ {
		from := asPhi.BlockArg(i)
		val := asPhi.Arg(i)
		if l.Contains(from) {
			inc, _ = val.(*ir.Instr)
		} else {
			initC, _ = val.(*ir.Const)
		}
	}
	if initC == nil || inc == nil {
		return nil, 0, 0, nil
	}
	if inc.Op != ir.OpAdd && inc.Op != ir.OpSub {
		return nil, 0, 0, nil
	}
	var stepC *ir.Const
	if inc.Arg(0) == ir.Value(asPhi) {
		stepC, _ = inc.Arg(1).(*ir.Const)
	} else if inc.Arg(1) == ir.Value(asPhi) && inc.Op == ir.OpAdd {
		stepC, _ = inc.Arg(0).(*ir.Const)
	}
	if stepC == nil {
		return nil, 0, 0, nil
	}
	s := stepC.Int
	if inc.Op == ir.OpSub {
		s = -s
	}
	if s == 0 {
		return nil, 0, 0, nil
	}
	// v must be the phi or the increment.
	if in != asPhi && in != inc {
		return nil, 0, 0, nil
	}
	return asPhi, initC.Int, s, inc
}
