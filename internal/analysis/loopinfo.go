package analysis

import (
	"fmt"
	"sort"

	"uu/internal/ir"
)

// Loop is a natural loop: a strongly-connected region with a single header
// that dominates all blocks in the loop.
type Loop struct {
	Header   *ir.Block
	Parent   *Loop
	Children []*Loop

	blocks   []*ir.Block // in discovery order, Header first
	blockSet map[*ir.Block]bool
	latches  []*ir.Block // blocks with a back edge to Header
	ID       int         // deterministic ID assigned by LoopInfo (preorder over headers)
}

// Blocks returns the loop's blocks (header first). Must not be mutated.
func (l *Loop) Blocks() []*ir.Block { return l.blocks }

// Contains reports whether b is inside the loop (including nested loops).
func (l *Loop) Contains(b *ir.Block) bool { return l.blockSet[b] }

// Latches returns the blocks with back edges to the header.
func (l *Loop) Latches() []*ir.Block { return l.latches }

// Latch returns the unique latch, or nil if there are several.
func (l *Loop) Latch() *ir.Block {
	if len(l.latches) == 1 {
		return l.latches[0]
	}
	return nil
}

// Depth returns the nesting depth (1 for outermost loops).
func (l *Loop) Depth() int {
	d := 1
	for p := l.Parent; p != nil; p = p.Parent {
		d++
	}
	return d
}

// Preheader returns the unique predecessor of the header outside the loop,
// provided it has the header as its only successor; otherwise nil.
// Passes that need a preheader call transform.EnsurePreheader first.
func (l *Loop) Preheader() *ir.Block {
	var ph *ir.Block
	for _, p := range l.Header.Preds() {
		if l.Contains(p) {
			continue
		}
		if ph != nil && ph != p {
			return nil
		}
		ph = p
	}
	if ph == nil || len(ph.Succs()) != 1 {
		return nil
	}
	return ph
}

// ExitingBlocks returns loop blocks with a successor outside the loop.
func (l *Loop) ExitingBlocks() []*ir.Block {
	var out []*ir.Block
	for _, b := range l.blocks {
		for _, s := range b.Succs() {
			if !l.Contains(s) {
				out = append(out, b)
				break
			}
		}
	}
	return out
}

// ExitBlocks returns the distinct blocks outside the loop with a predecessor
// inside it.
func (l *Loop) ExitBlocks() []*ir.Block {
	seen := map[*ir.Block]bool{}
	var out []*ir.Block
	for _, b := range l.blocks {
		for _, s := range b.Succs() {
			if !l.Contains(s) && !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	return out
}

// String describes the loop for diagnostics.
func (l *Loop) String() string {
	return fmt.Sprintf("loop#%d(header=%s, depth=%d, %d blocks)", l.ID, l.Header.Name, l.Depth(), len(l.blocks))
}

// LoopInfo holds all natural loops of a function.
type LoopInfo struct {
	Loops   []*Loop // all loops, preorder: outer before inner, by header RPO
	Top     []*Loop // outermost loops
	loopOf  map[*ir.Block]*Loop
	domTree *DomTree
}

// NewLoopInfo discovers the natural loops of f. Loops sharing a header are
// merged (as in LLVM). Loop IDs are assigned deterministically in reverse
// postorder of headers, outer loops first — these are the "consistent,
// deterministic unique ids" the paper's pass exposes for per-loop selection.
func NewLoopInfo(f *ir.Function, dt *DomTree) *LoopInfo {
	li := &LoopInfo{loopOf: map[*ir.Block]*Loop{}, domTree: dt}

	// Find back edges.
	byHeader := map[*ir.Block]*Loop{}
	var headers []*ir.Block
	for _, b := range f.Blocks() {
		for _, s := range b.Succs() {
			if dt.Dominates(s, b) { // back edge b->s
				l := byHeader[s]
				if l == nil {
					l = &Loop{Header: s, blockSet: map[*ir.Block]bool{s: true}, blocks: []*ir.Block{s}}
					byHeader[s] = l
					headers = append(headers, s)
				}
				l.latches = append(l.latches, b)
			}
		}
	}

	// Populate loop bodies: walk backwards from each latch until the header.
	for _, h := range headers {
		l := byHeader[h]
		work := append([]*ir.Block(nil), l.latches...)
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			if l.blockSet[b] {
				continue
			}
			l.blockSet[b] = true
			l.blocks = append(l.blocks, b)
			for _, p := range b.Preds() {
				if !l.blockSet[p] && dt.Reachable(p) {
					work = append(work, p)
				}
			}
		}
	}

	// Establish nesting: parent = smallest strictly-containing loop.
	loops := make([]*Loop, 0, len(headers))
	for _, h := range headers {
		loops = append(loops, byHeader[h])
	}
	for _, inner := range loops {
		var best *Loop
		for _, outer := range loops {
			if outer == inner || !outer.Contains(inner.Header) {
				continue
			}
			if best == nil || len(outer.blocks) < len(best.blocks) {
				best = outer
			}
		}
		inner.Parent = best
		if best != nil {
			best.Children = append(best.Children, inner)
		}
	}

	// Deterministic ordering: sort headers by reverse postorder position.
	rpo := rpoIndex(f)
	sort.SliceStable(loops, func(i, j int) bool {
		di, dj := loops[i].Depth(), loops[j].Depth()
		ri, rj := rpo[loops[i].Header], rpo[loops[j].Header]
		if ri != rj {
			return ri < rj
		}
		return di < dj
	})
	for i, l := range loops {
		l.ID = i
	}
	li.Loops = loops
	for _, l := range loops {
		if l.Parent == nil {
			li.Top = append(li.Top, l)
		}
	}

	// loopOf: innermost loop containing each block.
	for _, l := range loops {
		for _, b := range l.blocks {
			cur := li.loopOf[b]
			if cur == nil || len(l.blocks) < len(cur.blocks) {
				li.loopOf[b] = l
			}
		}
	}
	return li
}

// LoopFor returns the innermost loop containing b, or nil.
func (li *LoopInfo) LoopFor(b *ir.Block) *Loop { return li.loopOf[b] }

// LoopByID returns the loop with the given deterministic ID, or nil.
func (li *LoopInfo) LoopByID(id int) *Loop {
	if id < 0 || id >= len(li.Loops) {
		return nil
	}
	return li.Loops[id]
}

// rpoIndex returns each reachable block's reverse-postorder index.
func rpoIndex(f *ir.Function) map[*ir.Block]int {
	seen := map[*ir.Block]bool{}
	var post []*ir.Block
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		seen[b] = true
		for _, s := range b.Succs() {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(f.Entry())
	idx := map[*ir.Block]int{}
	for i := len(post) - 1; i >= 0; i-- {
		idx[post[i]] = len(post) - 1 - i
	}
	return idx
}

// HasConvergentOp reports whether any instruction in the loop is convergent
// (e.g. a barrier). The unmerge pass refuses such loops, mirroring the
// paper's use of LLVM's convergence analysis.
func (l *Loop) HasConvergentOp() bool {
	for _, b := range l.blocks {
		for _, in := range b.Instrs() {
			if in.IsConvergent() {
				return true
			}
		}
	}
	return false
}
