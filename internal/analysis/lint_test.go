package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoDirectAnalysisConstruction enforces the pass-manager invariant: passes
// and the pipeline must obtain dominator trees and loop info through the
// AnalysisManager (which caches and invalidates them), never by constructing
// them directly — a direct construction silently bypasses the cache and brings
// back the per-query recomputation this refactor removed. Constructing other
// analyses (divergence, path counts) directly is fine; only the two hot,
// cached ones are locked down.
func TestNoDirectAnalysisConstruction(t *testing.T) {
	banned := []string{"analysis.NewDomTree(", "analysis.NewLoopInfo("}
	for _, dir := range []string{"../transform", "../core", "../pipeline"} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range banned {
				if strings.Contains(string(src), b) {
					t.Errorf("%s uses %s — query the AnalysisManager instead (am.DomTree()/am.LoopInfo())", path, strings.TrimSuffix(b, "("))
				}
			}
		}
	}
}
