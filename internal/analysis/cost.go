package analysis

import "uu/internal/ir"

// InstrSize returns the code-size cost of an instruction in the same spirit
// as LLVM's TargetTransformInfo size costs: phis and IR bookkeeping are free
// after lowering folds them into register assignments, everything else costs
// one unit. Division is slightly more expensive because the backend expands
// it into a short sequence.
func InstrSize(in *ir.Instr) int {
	switch in.Op {
	case ir.OpPhi, ir.OpAlloca:
		return 0
	case ir.OpSDiv, ir.OpUDiv, ir.OpSRem, ir.OpURem, ir.OpFDiv:
		return 2
	case ir.OpPow, ir.OpExp, ir.OpLog, ir.OpSin, ir.OpCos, ir.OpSqrt:
		return 2
	default:
		return 1
	}
}

// LoopSize returns the summed code-size cost of the loop body — the `s`
// input of the paper's size model f(p, s, u).
func LoopSize(l *Loop) int {
	n := 0
	for _, b := range l.Blocks() {
		for _, in := range b.Instrs() {
			n += InstrSize(in)
		}
	}
	return n
}

// PathCountCap bounds path counting; loops with more paths than this are
// reported as having PathCountCap paths (the heuristic will reject them
// anyway).
const PathCountCap = 1 << 20

// CountPaths returns the number of distinct acyclic control-flow paths from
// the loop header to any latch, ignoring back edges and loop exits — the `p`
// input of the paper's size model f(p, s, u). Nested-loop back edges are
// ignored as well: a fully nested loop contributes its own paths only once.
func CountPaths(l *Loop) int {
	// Topological order of loop blocks over forward edges inside the loop.
	// Back edges (to any block that dominates... we approximate: edges to the
	// loop header and inner-loop headers already visited) are skipped by
	// Kahn's algorithm on the acyclic subgraph obtained by removing edges
	// into each loop header from inside its loop.
	inLoop := func(b *ir.Block) bool { return l.Contains(b) }

	// Build forward-edge adjacency: drop any edge u->v where v==l.Header, or
	// where v is a header of a loop containing u (approximated by dropping
	// edges that go "backwards" in a DFS order — we compute a DFS preorder
	// from the header and drop edges to already-active nodes).
	order := []*ir.Block{}
	state := map[*ir.Block]int{} // 0 unvisited, 1 active, 2 done
	fwd := map[*ir.Block][]*ir.Block{}
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		state[b] = 1
		for _, s := range b.Succs() {
			if !inLoop(s) {
				continue
			}
			if state[s] == 1 {
				continue // back edge
			}
			fwd[b] = append(fwd[b], s)
			if state[s] == 0 {
				dfs(s)
			}
		}
		state[b] = 2
		order = append(order, b) // postorder
	}
	dfs(l.Header)

	paths := map[*ir.Block]int{}
	// Process in reverse postorder (topological for forward edges).
	paths[l.Header] = 1
	for i := len(order) - 1; i >= 0; i-- {
		b := order[i]
		pb := paths[b]
		if pb == 0 {
			continue
		}
		for _, s := range fwd[b] {
			paths[s] += pb
			if paths[s] > PathCountCap {
				paths[s] = PathCountCap
			}
		}
	}
	total := 0
	for _, latch := range l.Latches() {
		total += paths[latch]
	}
	if total > PathCountCap {
		total = PathCountCap
	}
	if total == 0 {
		total = 1
	}
	return total
}

// UnmergedSize evaluates the paper's worst-case size model
//
//	f(p, s, u) = Σ_{i=0}^{u-1} p^i · s
//
// for p paths, body size s, and unroll factor u, saturating at a large bound
// so that callers can compare against thresholds without overflow.
func UnmergedSize(p, s, u int) int64 {
	const bound = int64(1) << 40
	var total int64
	pw := int64(1)
	for i := 0; i < u; i++ {
		total += pw * int64(s)
		if total > bound {
			return bound
		}
		pw *= int64(p)
		if pw > bound {
			pw = bound
		}
	}
	return total
}
