package analysis

import (
	"testing"

	"uu/internal/ir"
	"uu/internal/irparse"
)

// diamond: entry -> (then|else) -> merge -> ret
const diamondSrc = `
func @d(i64 %x) -> i64 {
entry:
  %c = icmp sgt i64 %x, i64 0
  condbr i1 %c, %then, %else
then:
  %a = add i64 %x, i64 1
  br %merge
else:
  %b = sub i64 %x, i64 1
  br %merge
merge:
  %m = phi i64 [ %a, %then ], [ %b, %else ]
  ret i64 %m
}
`

// loop with a diamond inside (Figure 1 of the paper):
// A(header) -> B -> (C|D) -> E(latch) -> A or exit
const fig1Src = `
func @fig1(i64 %n, i64* %p) {
entry:
  br %A
A:
  %i = phi i64 [ 0, %entry ], [ %inc, %E ]
  br %B
B:
  %c = icmp slt i64 %i, i64 10
  condbr i1 %c, %C, %D
C:
  store i64 1, i64* %p
  br %E
D:
  store i64 2, i64* %p
  br %E
E:
  %inc = add i64 %i, i64 1
  %cc = icmp slt i64 %inc, i64 %n
  condbr i1 %cc, %A, %exit
exit:
  ret
}
`

func parse(t *testing.T, src string) *ir.Function {
	t.Helper()
	f, err := irparse.ParseFunc(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := ir.Verify(f); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return f
}

func TestDomTreeDiamond(t *testing.T) {
	f := parse(t, diamondSrc)
	dt := NewDomTree(f)
	entry := f.BlockByName("entry")
	then := f.BlockByName("then")
	els := f.BlockByName("else")
	merge := f.BlockByName("merge")
	if dt.Idom(then) != entry || dt.Idom(els) != entry || dt.Idom(merge) != entry {
		t.Fatalf("idoms wrong: then=%v else=%v merge=%v", dt.Idom(then), dt.Idom(els), dt.Idom(merge))
	}
	if !dt.Dominates(entry, merge) || dt.Dominates(then, merge) {
		t.Fatalf("dominance queries wrong")
	}
	if !dt.Dominates(then, then) {
		t.Fatalf("reflexive dominance broken")
	}
}

func TestPostDomTreeDiamond(t *testing.T) {
	f := parse(t, diamondSrc)
	pdt := NewPostDomTree(f)
	entry := f.BlockByName("entry")
	then := f.BlockByName("then")
	els := f.BlockByName("else")
	merge := f.BlockByName("merge")
	if pdt.Idom(then) != merge || pdt.Idom(els) != merge || pdt.Idom(entry) != merge {
		t.Fatalf("post idoms wrong: then=%v entry=%v", pdt.Idom(then), pdt.Idom(entry))
	}
	if !pdt.Dominates(merge, entry) {
		t.Fatalf("merge should post-dominate entry")
	}
	if pdt.Dominates(then, entry) {
		t.Fatalf("then should not post-dominate entry")
	}
}

func TestDominanceFrontier(t *testing.T) {
	f := parse(t, diamondSrc)
	dt := NewDomTree(f)
	df := dt.Frontier(f)
	merge := f.BlockByName("merge")
	then := f.BlockByName("then")
	if len(df[then]) != 1 || df[then][0] != merge {
		t.Fatalf("DF(then) = %v, want [merge]", df[then])
	}
	if len(df[f.BlockByName("entry")]) != 0 {
		t.Fatalf("DF(entry) should be empty")
	}
}

func TestLoopInfoFig1(t *testing.T) {
	f := parse(t, fig1Src)
	dt := NewDomTree(f)
	li := NewLoopInfo(f, dt)
	if len(li.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(li.Loops))
	}
	l := li.Loops[0]
	if l.Header != f.BlockByName("A") {
		t.Fatalf("header = %s", l.Header.Name)
	}
	if l.Latch() != f.BlockByName("E") {
		t.Fatalf("latch = %v", l.Latch())
	}
	if len(l.Blocks()) != 5 {
		t.Fatalf("loop blocks = %d, want 5 (A,B,C,D,E)", len(l.Blocks()))
	}
	if l.Preheader() != f.BlockByName("entry") {
		t.Fatalf("preheader = %v", l.Preheader())
	}
	exits := l.ExitBlocks()
	if len(exits) != 1 || exits[0] != f.BlockByName("exit") {
		t.Fatalf("exits = %v", exits)
	}
	if got := CountPaths(l); got != 2 {
		t.Fatalf("CountPaths = %d, want 2", got)
	}
	if li.LoopFor(f.BlockByName("C")) != l || li.LoopFor(f.BlockByName("exit")) != nil {
		t.Fatalf("LoopFor wrong")
	}
}

const nestedSrc = `
func @nest(i64 %n) {
entry:
  br %outer
outer:
  %i = phi i64 [ 0, %entry ], [ %i2, %olatch ]
  br %inner
inner:
  %j = phi i64 [ 0, %outer ], [ %j2, %inner ]
  %j2 = add i64 %j, i64 1
  %cj = icmp slt i64 %j2, i64 4
  condbr i1 %cj, %inner, %olatch
olatch:
  %i2 = add i64 %i, i64 1
  %ci = icmp slt i64 %i2, i64 %n
  condbr i1 %ci, %outer, %exit
exit:
  ret
}
`

func TestLoopNesting(t *testing.T) {
	f := parse(t, nestedSrc)
	li := NewLoopInfo(f, NewDomTree(f))
	if len(li.Loops) != 2 || len(li.Top) != 1 {
		t.Fatalf("loops=%d top=%d", len(li.Loops), len(li.Top))
	}
	outer := li.Top[0]
	if outer.Header.Name != "outer" || len(outer.Children) != 1 {
		t.Fatalf("outer loop wrong: %v", outer)
	}
	inner := outer.Children[0]
	if inner.Header.Name != "inner" || inner.Parent != outer || inner.Depth() != 2 {
		t.Fatalf("inner loop wrong: %v", inner)
	}
	// Deterministic IDs: outer (shallower, earlier in RPO) gets 0.
	if outer.ID != 0 || inner.ID != 1 {
		t.Fatalf("IDs: outer=%d inner=%d", outer.ID, inner.ID)
	}
	// Inner loop has a constant trip count of 4; outer does not.
	if tc, ok := ConstantTripCount(inner); !ok || tc != 4 {
		t.Fatalf("inner trip count = %d,%v want 4,true", tc, ok)
	}
	if _, ok := ConstantTripCount(outer); ok {
		t.Fatalf("outer trip count should be unknown")
	}
}

func TestTripCountHeaderExit(t *testing.T) {
	// while (i < 10) { i += 3 } — header-exiting, pre-increment test.
	src := `
func @w() {
entry:
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i2, %body ]
  %c = icmp slt i64 %i, i64 10
  condbr i1 %c, %body, %exit
body:
  %i2 = add i64 %i, i64 3
  br %head
exit:
  ret
}
`
	f := parse(t, src)
	li := NewLoopInfo(f, NewDomTree(f))
	if tc, ok := ConstantTripCount(li.Loops[0]); !ok || tc != 4 {
		t.Fatalf("trip count = %d,%v want 4 (i=0,3,6,9)", tc, ok)
	}
}

func TestTripCountDownCounting(t *testing.T) {
	// for (i = 8; i > 0; i -= 2) — latch test, sub step.
	src := `
func @down() {
entry:
  br %body
body:
  %i = phi i64 [ 8, %entry ], [ %i2, %body ]
  %i2 = sub i64 %i, i64 2
  %c = icmp sgt i64 %i2, i64 0
  condbr i1 %c, %body, %exit
exit:
  ret
}
`
	f := parse(t, src)
	li := NewLoopInfo(f, NewDomTree(f))
	if tc, ok := ConstantTripCount(li.Loops[0]); !ok || tc != 4 {
		t.Fatalf("trip count = %d,%v want 4 (i=8,6,4,2)", tc, ok)
	}
}

func TestAlias(t *testing.T) {
	src := `
func @a(f64* noalias %x, f64* noalias %y, f64* %z, i64 %i) {
entry:
  %px = gep f64* %x, i64 %i
  %py = gep f64* %y, i64 %i
  %px1 = gep f64* %px, i64 1
  %px1b = gep f64* %x, i64 %i
  %pz = gep f64* %z, i64 %i
  %l = load f64* %px
  store f64 %l, f64* %py
  store f64 %l, f64* %px1
  store f64 %l, f64* %px1b
  store f64 %l, f64* %pz
  ret
}
`
	f := parse(t, src)
	get := func(name string) ir.Value {
		for _, b := range f.Blocks() {
			for _, in := range b.Instrs() {
				if in.Name() == name {
					return in
				}
			}
		}
		t.Fatalf("no instr %s", name)
		return nil
	}
	px, py, px1, px1b, pz := get("px"), get("py"), get("px1"), get("px1b"), get("pz")
	if Alias(px, py) != NoAlias {
		t.Errorf("x[i] vs y[i] (both restrict) = %v, want NoAlias", Alias(px, py))
	}
	if Alias(px, px1) != NoAlias {
		t.Errorf("x[i] vs x[i+1] = %v, want NoAlias", Alias(px, px1))
	}
	if Alias(px, px1b) != MustAlias {
		t.Errorf("x[i] vs x[i] = %v, want MustAlias", Alias(px, px1b))
	}
	if Alias(px, pz) != NoAlias {
		t.Errorf("restrict x[i] vs plain z[i] = %v, want NoAlias", Alias(px, pz))
	}
	if Alias(py, py) != MustAlias {
		t.Errorf("p vs itself = %v, want MustAlias", Alias(py, py))
	}
}

func TestAliasMayAlias(t *testing.T) {
	src := `
func @a(f64* %x, f64* %y, i64 %i, i64 %j) {
entry:
  %pi = gep f64* %x, i64 %i
  %pj = gep f64* %x, i64 %j
  %qx = gep f64* %y, i64 %i
  %l = load f64* %pi
  store f64 %l, f64* %pj
  store f64 %l, f64* %qx
  ret
}
`
	f := parse(t, src)
	var pi, pj, qx ir.Value
	for _, in := range f.Entry().Instrs() {
		switch in.Name() {
		case "pi":
			pi = in
		case "pj":
			pj = in
		case "qx":
			qx = in
		}
	}
	if Alias(pi, pj) != MayAlias {
		t.Errorf("x[i] vs x[j] = %v, want MayAlias", Alias(pi, pj))
	}
	if Alias(pi, qx) != MayAlias {
		t.Errorf("x[i] vs y[i] without restrict = %v, want MayAlias", Alias(pi, qx))
	}
}

func TestDivergence(t *testing.T) {
	src := `
func @d(i64* %p, i64 %n) {
entry:
  %t = tid
  %i = sext i32 %t to i64
  %u = add i64 %n, i64 1
  %c = icmp slt i64 %i, i64 %n
  condbr i1 %c, %a, %b
a:
  br %m
b:
  br %m
m:
  %phi = phi i64 [ %u, %a ], [ %n, %b ]
  %uc = icmp sgt i64 %u, i64 0
  condbr i1 %uc, %x, %y
x:
  br %z
y:
  br %z
z:
  %phi2 = phi i64 [ 1, %x ], [ 2, %y ]
  store i64 %phi2, i64* %p
  ret
}
`
	f := parse(t, src)
	d := NewDivergence(f)
	find := func(name string) *ir.Instr {
		for _, b := range f.Blocks() {
			for _, in := range b.Instrs() {
				if in.Name() == name {
					return in
				}
			}
		}
		t.Fatalf("no %s", name)
		return nil
	}
	if !d.IsDivergent(find("t")) || !d.IsDivergent(find("i")) {
		t.Errorf("tid taint missing")
	}
	if d.IsDivergent(find("u")) {
		t.Errorf("uniform value marked divergent")
	}
	if !d.HasDivergentBranch(f.BlockByName("entry")) {
		t.Errorf("divergent branch not detected")
	}
	if !d.IsDivergent(find("phi")) {
		t.Errorf("sync-dependent phi not marked divergent")
	}
	if d.HasDivergentBranch(f.BlockByName("m")) {
		t.Errorf("uniform branch marked divergent")
	}
	if d.IsDivergent(find("phi2")) {
		t.Errorf("phi controlled by uniform branch marked divergent")
	}
}

func TestUnmergedSizeModel(t *testing.T) {
	// f(p,s,u) = sum_{i=0}^{u-1} p^i * s
	if got := UnmergedSize(2, 10, 1); got != 10 {
		t.Errorf("f(2,10,1) = %d, want 10", got)
	}
	if got := UnmergedSize(2, 10, 3); got != 70 { // 10 + 20 + 40
		t.Errorf("f(2,10,3) = %d, want 70", got)
	}
	if got := UnmergedSize(4, 5, 2); got != 25 { // 5 + 20
		t.Errorf("f(4,5,2) = %d, want 25", got)
	}
	if got := UnmergedSize(10, 1000, 16); got != int64(1)<<40 {
		t.Errorf("saturation failed: %d", got)
	}
}

func TestCountPathsMultiDiamond(t *testing.T) {
	// Loop body with two sequential diamonds: 4 paths (bezier-surface shape).
	src := `
func @two(i64 %n, i64 %k) {
entry:
  br %h
h:
  %i = phi i64 [ 0, %entry ], [ %i2, %latch ]
  %c1 = icmp sgt i64 %k, i64 1
  condbr i1 %c1, %a, %b
a:
  br %m1
b:
  br %m1
m1:
  %c2 = icmp sgt i64 %k, i64 2
  condbr i1 %c2, %cB, %dB
cB:
  br %latch
dB:
  br %latch
latch:
  %i2 = add i64 %i, i64 1
  %cc = icmp slt i64 %i2, i64 %n
  condbr i1 %cc, %h, %exit
exit:
  ret
}
`
	f := parse(t, src)
	li := NewLoopInfo(f, NewDomTree(f))
	if got := CountPaths(li.Loops[0]); got != 4 {
		t.Fatalf("CountPaths = %d, want 4", got)
	}
}

func TestLoopSize(t *testing.T) {
	f := parse(t, fig1Src)
	li := NewLoopInfo(f, NewDomTree(f))
	s := LoopSize(li.Loops[0])
	// A: phi(0) br(1); B: icmp(1) condbr(1); C: store(1) br(1);
	// D: store(1) br(1); E: add(1) icmp(1) condbr(1) => 10
	if s != 10 {
		t.Fatalf("LoopSize = %d, want 10", s)
	}
}

func TestPostDomMultiExit(t *testing.T) {
	src := `
func @me(i64 %x) -> i64 {
entry:
  %c = icmp sgt i64 %x, i64 0
  condbr i1 %c, %r1, %r2
r1:
  ret i64 1
r2:
  ret i64 2
}
`
	f := parse(t, src)
	pdt := NewPostDomTree(f)
	entry := f.BlockByName("entry")
	if pdt.Idom(entry) != nil {
		t.Fatalf("entry's ipostdom should be the virtual exit, got %v", pdt.Idom(entry))
	}
	if pdt.Dominates(f.BlockByName("r1"), entry) {
		t.Fatalf("r1 must not post-dominate entry")
	}
	if !pdt.Reachable(entry) {
		t.Fatalf("entry should be in the post-dom tree")
	}
}

func TestTripCountRejectsNonCanonical(t *testing.T) {
	cases := []struct{ name, src string }{
		{"symbolic-bound", `
func @f(i64 %n) {
entry:
  br %h
h:
  %i = phi i64 [ 0, %entry ], [ %i2, %h ]
  %i2 = add i64 %i, i64 1
  %c = icmp slt i64 %i2, i64 %n
  condbr i1 %c, %h, %e
e:
  ret
}
`},
		{"shifting-indvar", `
func @f() {
entry:
  br %h
h:
  %i = phi i64 [ 64, %entry ], [ %i2, %h ]
  %i2 = ashr i64 %i, i64 1
  %c = icmp sgt i64 %i2, i64 0
  condbr i1 %c, %h, %e
e:
  ret
}
`},
		{"zero-step", `
func @f() {
entry:
  br %h
h:
  %i = phi i64 [ 0, %entry ], [ %i2, %h ]
  %i2 = add i64 %i, i64 0
  %c = icmp slt i64 %i2, i64 5
  condbr i1 %c, %h, %e
e:
  ret
}
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := parse(t, tc.src)
			li := NewLoopInfo(f, NewDomTree(f))
			if len(li.Loops) != 1 {
				t.Fatalf("loops = %d", len(li.Loops))
			}
			if tcnt, ok := ConstantTripCount(li.Loops[0]); ok {
				t.Fatalf("unexpected trip count %d", tcnt)
			}
		})
	}
}

func TestLoopMultipleLatchesDetected(t *testing.T) {
	src := `
func @f(i64 %n, i1 %c0) {
entry:
  br %h
h:
  %i = phi i64 [ 0, %entry ], [ %ia, %a ], [ %ib, %b ]
  condbr i1 %c0, %a, %b
a:
  %ia = add i64 %i, i64 1
  %ca = icmp slt i64 %ia, i64 %n
  condbr i1 %ca, %h, %e
b:
  %ib = add i64 %i, i64 2
  %cb = icmp slt i64 %ib, i64 %n
  condbr i1 %cb, %h, %e
e:
  ret
}
`
	f := parse(t, src)
	li := NewLoopInfo(f, NewDomTree(f))
	l := li.Loops[0]
	if len(l.Latches()) != 2 || l.Latch() != nil {
		t.Fatalf("latches = %v", l.Latches())
	}
	if l.Preheader() != f.BlockByName("entry") {
		t.Fatalf("preheader = %v", l.Preheader())
	}
}

func TestDomTreeUnreachableBlocks(t *testing.T) {
	// Construct a function with an unreachable block via the builder.
	f := ir.NewFunction("u", ir.Void)
	entry := f.NewBlock("entry")
	dead := f.NewBlock("dead")
	exit := f.NewBlock("exit")
	b := ir.NewBuilder(entry)
	b.Br(exit)
	b.SetBlock(dead)
	b.Br(exit)
	b.SetBlock(exit)
	b.Ret(nil)
	dt := NewDomTree(f)
	if dt.Reachable(dead) {
		t.Fatalf("dead block should be outside the dom tree")
	}
	if dt.Dominates(dead, exit) || dt.Dominates(exit, dead) {
		t.Fatalf("dominance with unreachable block should be false")
	}
	if !dt.Dominates(dead, dead) {
		t.Fatalf("reflexive dominance must hold even off-tree")
	}
}

func TestCountPathsNestedLoopOnce(t *testing.T) {
	// An inner loop inside the body must contribute its paths once, not
	// infinitely (back edges ignored).
	f := parse(t, nestedSrc)
	li := NewLoopInfo(f, NewDomTree(f))
	outer := li.Top[0]
	if got := CountPaths(outer); got != 1 {
		t.Fatalf("CountPaths(outer) = %d, want 1", got)
	}
}

func TestAliasGEPChains(t *testing.T) {
	src := `
func @a(f64* noalias %x, i64 %i, i64 %j) {
entry:
  %p1 = gep f64* %x, i64 %i
  %p2 = gep f64* %p1, i64 %j
  %q1 = gep f64* %x, i64 %j
  %q2 = gep f64* %q1, i64 %i
  %l = load f64* %p2
  store f64 %l, f64* %q2
  ret
}
`
	f := parse(t, src)
	var p2, q2 ir.Value
	for _, in := range f.Entry().Instrs() {
		switch in.Name() {
		case "p2":
			p2 = in
		case "q2":
			q2 = in
		}
	}
	// x[i][j] vs x[j][i]: same base, same symbolic multiset => MustAlias.
	if got := Alias(p2, q2); got != MustAlias {
		t.Fatalf("chained GEPs with commuted indexes = %v, want MustAlias", got)
	}
}

func TestInstrSizeCosts(t *testing.T) {
	f := ir.NewFunction("c", ir.Void)
	entry := f.NewBlock("entry")
	b := ir.NewBuilder(entry)
	x := f.AddParam("x", ir.F64, false)
	div := b.FDiv(x, x)
	add := b.FAdd(div, x)
	b.Ret(nil)
	if InstrSize(div) <= InstrSize(add) {
		t.Fatalf("division should cost more than addition")
	}
	phi := ir.NewInstr(ir.OpPhi, ir.F64)
	if InstrSize(phi) != 0 {
		t.Fatalf("phi should be free")
	}
}
