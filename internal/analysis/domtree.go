// Package analysis provides the CFG and dataflow analyses that the
// transformation passes consume: dominator and post-dominator trees, natural
// loop detection, trip-count analysis, SIMT divergence analysis, convergence
// detection, a simple alias analysis, and the instruction cost model used by
// the unroll-and-unmerge heuristic.
package analysis

import "uu/internal/ir"

// DomTree is a dominator tree (or post-dominator tree; see NewPostDomTree)
// over the reachable blocks of a function. A virtual root unifies multiple
// exit blocks in the post-dominator case; Idom returns nil where the
// immediate (post-)dominator is the virtual root.
type DomTree struct {
	idom     map[*ir.Block]*ir.Block
	children map[*ir.Block][]*ir.Block
	in, out  map[*ir.Block]int // DFS numbering for O(1) dominance queries
	post     bool
}

// NewDomTree computes the dominator tree of f using the iterative
// Cooper-Harvey-Kennedy algorithm.
func NewDomTree(f *ir.Function) *DomTree {
	t := &DomTree{}
	t.build(blockSuccs, blockPreds, []*ir.Block{f.Entry()})
	return t
}

// NewPostDomTree computes the post-dominator tree of f. Blocks with no
// successors (returns) are roots under a shared virtual exit. Blocks that
// cannot reach any exit (infinite loops) are absent; Reachable reports false
// for them.
func NewPostDomTree(f *ir.Function) *DomTree {
	t := &DomTree{post: true}
	var exits []*ir.Block
	for _, b := range f.Blocks() {
		if len(b.Succs()) == 0 {
			exits = append(exits, b)
		}
	}
	t.build(blockPreds, blockSuccs, exits)
	return t
}

func blockSuccs(b *ir.Block) []*ir.Block { return b.Succs() }
func blockPreds(b *ir.Block) []*ir.Block { return b.Preds() }

// build runs CHK over the graph induced by succ/pred starting at roots, with
// an explicit virtual root (index 0) whose children are the roots.
func (t *DomTree) build(succ, pred func(*ir.Block) []*ir.Block, roots []*ir.Block) {
	t.idom = map[*ir.Block]*ir.Block{}
	t.children = map[*ir.Block][]*ir.Block{}
	t.in = map[*ir.Block]int{}
	t.out = map[*ir.Block]int{}

	// Postorder DFS from all roots.
	seen := map[*ir.Block]bool{}
	var postOrder []*ir.Block
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		seen[b] = true
		for _, s := range succ(b) {
			if !seen[s] {
				dfs(s)
			}
		}
		postOrder = append(postOrder, b)
	}
	for _, r := range roots {
		if !seen[r] {
			dfs(r)
		}
	}

	// Index 0 = virtual root; blocks get 1..n in reverse postorder.
	n := len(postOrder)
	nodes := make([]*ir.Block, n+1)
	num := map[*ir.Block]int{}
	for i := 0; i < n; i++ {
		b := postOrder[n-1-i]
		nodes[i+1] = b
		num[b] = i + 1
	}
	isRoot := map[*ir.Block]bool{}
	for _, r := range roots {
		isRoot[r] = true
	}

	const undef = -1
	idom := make([]int, n+1)
	for i := range idom {
		idom[i] = undef
	}
	idom[0] = 0
	intersect := func(a, b int) int {
		for a != b {
			for a > b {
				a = idom[a]
			}
			for b > a {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for i := 1; i <= n; i++ {
			b := nodes[i]
			newIdom := undef
			if isRoot[b] {
				newIdom = 0
			}
			for _, p := range pred(b) {
				pi, ok := num[p]
				if !ok || idom[pi] == undef {
					continue
				}
				if newIdom == undef {
					newIdom = pi
				} else {
					newIdom = intersect(newIdom, pi)
				}
			}
			if newIdom != undef && idom[i] != newIdom {
				idom[i] = newIdom
				changed = true
			}
		}
	}

	virtChildren := []*ir.Block{}
	for i := 1; i <= n; i++ {
		if idom[i] == undef {
			continue
		}
		b := nodes[i]
		if idom[i] == 0 {
			t.idom[b] = nil
			virtChildren = append(virtChildren, b)
		} else {
			p := nodes[idom[i]]
			t.idom[b] = p
			t.children[p] = append(t.children[p], b)
		}
	}

	// DFS in/out numbering. The virtual root spans everything, so all tree
	// roots are numbered within one global counter; dominance between blocks
	// in different subtrees is correctly false because intervals are disjoint.
	cnt := 0
	var walk func(b *ir.Block)
	walk = func(b *ir.Block) {
		cnt++
		t.in[b] = cnt
		for _, c := range t.children[b] {
			walk(c)
		}
		cnt++
		t.out[b] = cnt
	}
	for _, r := range virtChildren {
		walk(r)
	}
}

// Idom returns the immediate dominator (or post-dominator) of b. It returns
// nil for the entry block, for post-dominator roots (whose idom is the
// virtual exit), and for blocks outside the tree.
func (t *DomTree) Idom(b *ir.Block) *ir.Block { return t.idom[b] }

// Reachable reports whether b participates in the tree (is reachable from the
// entry, or reaches an exit for post-dominator trees).
func (t *DomTree) Reachable(b *ir.Block) bool {
	_, ok := t.in[b]
	return ok
}

// Dominates reports whether a dominates b (reflexively). For post-dominator
// trees it reports post-dominance. Blocks outside the tree dominate nothing
// and are dominated by nothing, except themselves.
func (t *DomTree) Dominates(a, b *ir.Block) bool {
	if a == b {
		return true
	}
	ia, oka := t.in[a]
	ib, okb := t.in[b]
	if !oka || !okb {
		return false
	}
	return ia <= ib && t.out[b] <= t.out[a]
}

// StrictlyDominates reports whether a dominates b and a != b.
func (t *DomTree) StrictlyDominates(a, b *ir.Block) bool {
	return a != b && t.Dominates(a, b)
}

// Children returns the dominator-tree children of b.
func (t *DomTree) Children(b *ir.Block) []*ir.Block { return t.children[b] }

// Frontier computes the dominance frontier of every block (Cooper et al.),
// used for phi placement in mem2reg. Only valid for forward dominator trees.
func (t *DomTree) Frontier(f *ir.Function) map[*ir.Block][]*ir.Block {
	df := map[*ir.Block][]*ir.Block{}
	for _, b := range f.Blocks() {
		if len(b.Preds()) < 2 {
			continue
		}
		for _, p := range b.Preds() {
			runner := p
			for runner != nil && runner != t.idom[b] && t.Reachable(runner) {
				df[runner] = appendUnique(df[runner], b)
				runner = t.idom[runner]
			}
		}
	}
	return df
}

func appendUnique(s []*ir.Block, b *ir.Block) []*ir.Block {
	for _, x := range s {
		if x == b {
			return s
		}
	}
	return append(s, b)
}

// DominatesInstr reports whether the definition of value def is available at
// instruction at (i.e. def is a constant/parameter, or an instruction that
// strictly precedes at in the same block, or whose block dominates at's).
func (t *DomTree) DominatesInstr(def ir.Value, at *ir.Instr) bool {
	di, ok := def.(*ir.Instr)
	if !ok {
		return true
	}
	db, ub := di.Block(), at.Block()
	if db == ub {
		for _, in := range db.Instrs() {
			if in == di {
				return true
			}
			if in == at {
				return false
			}
		}
		return false
	}
	return t.Dominates(db, ub)
}
