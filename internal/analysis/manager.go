package analysis

import (
	"fmt"
	"strings"

	"uu/internal/ir"
	"uu/internal/remark"
)

// AnalysisID identifies one per-function analysis managed by the
// AnalysisManager.
type AnalysisID int

// The managed analyses.
const (
	DomTreeID AnalysisID = iota
	PostDomTreeID
	LoopInfoID
	DivergenceID
	AliasID
	numAnalyses
)

var analysisNames = [numAnalyses]string{"domtree", "postdomtree", "loopinfo", "divergence", "alias"}

// String returns the analysis's short name as used in cache statistics.
func (id AnalysisID) String() string {
	if id < 0 || id >= numAnalyses {
		return fmt.Sprintf("analysis(%d)", int(id))
	}
	return analysisNames[id]
}

// PreservedAnalyses is a pass's declaration of which cached analyses remain
// valid after it ran, in the style of LLVM's new pass manager. It also
// carries whether the pass changed the function at all — the signal the
// pipeline's change-driven fixpoint driver keys on.
type PreservedAnalyses struct {
	changed bool
	keep    [numAnalyses]bool
}

// Unchanged reports that the pass did not modify the function; every cached
// analysis remains valid.
func Unchanged() PreservedAnalyses {
	pa := PreserveAll()
	pa.changed = false
	return pa
}

// PreserveAll reports a change that nonetheless keeps every analysis valid
// (rare; e.g. a pure renaming).
func PreserveAll() PreservedAnalyses {
	pa := PreservedAnalyses{changed: true}
	for i := range pa.keep {
		pa.keep[i] = true
	}
	return pa
}

// PreserveNone reports a change that invalidates every cached analysis —
// the declaration of CFG-restructuring passes (SimplifyCFG, unroll, unmerge).
func PreserveNone() PreservedAnalyses {
	return PreservedAnalyses{changed: true}
}

// PreserveCFG reports a change that only touched instructions, not the
// control-flow graph: dominator/post-dominator trees and loop info stay
// valid, while value-sensitive analyses (divergence, alias memos) drop.
func PreserveCFG() PreservedAnalyses {
	pa := PreserveNone()
	pa.keep[DomTreeID] = true
	pa.keep[PostDomTreeID] = true
	pa.keep[LoopInfoID] = true
	return pa
}

// If returns whenChanged when changed is true and Unchanged otherwise — the
// common tail of a converted pass.
func If(changed bool, whenChanged PreservedAnalyses) PreservedAnalyses {
	if !changed {
		return Unchanged()
	}
	return whenChanged
}

// Changed reports whether the pass modified the function.
func (pa PreservedAnalyses) Changed() bool { return pa.changed }

// Preserves reports whether the analysis survives the pass.
func (pa PreservedAnalyses) Preserves(id AnalysisID) bool {
	return !pa.changed || pa.keep[id]
}

// Pass is the common interface of all transformation passes: run on a
// function, consuming cached analyses from the manager, and declare which
// analyses were preserved. Callers must hand the returned value to
// AnalysisManager.Invalidate (the pipeline driver does this).
type Pass interface {
	Name() string
	Run(f *ir.Function, am *AnalysisManager) PreservedAnalyses
}

// CacheStats counts analysis cache traffic: Hits (a query answered from
// cache), Misses (a query that had to compute), and Invalidated (a cached
// result dropped by Invalidate). Indexed by AnalysisID.
type CacheStats struct {
	Hits        [numAnalyses]int
	Misses      [numAnalyses]int
	Invalidated [numAnalyses]int
}

// TotalHits sums hits across analyses.
func (s *CacheStats) TotalHits() int { return sum(s.Hits) }

// TotalMisses sums misses across analyses.
func (s *CacheStats) TotalMisses() int { return sum(s.Misses) }

// TotalInvalidated sums invalidations across analyses.
func (s *CacheStats) TotalInvalidated() int { return sum(s.Invalidated) }

// HitRate is hits / (hits+misses), or 0 with no queries.
func (s *CacheStats) HitRate() float64 {
	h, m := s.TotalHits(), s.TotalMisses()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Sub returns the counter deltas s - o. With o a snapshot taken before a
// pass and s one taken after, the result is the traffic attributable to
// that pass (counters are monotonically increasing).
func (s CacheStats) Sub(o CacheStats) CacheStats {
	var d CacheStats
	for i := 0; i < int(numAnalyses); i++ {
		d.Hits[i] = s.Hits[i] - o.Hits[i]
		d.Misses[i] = s.Misses[i] - o.Misses[i]
		d.Invalidated[i] = s.Invalidated[i] - o.Invalidated[i]
	}
	return d
}

// Add accumulates o into s.
func (s *CacheStats) Add(o CacheStats) {
	for i := 0; i < int(numAnalyses); i++ {
		s.Hits[i] += o.Hits[i]
		s.Misses[i] += o.Misses[i]
		s.Invalidated[i] += o.Invalidated[i]
	}
}

// String formats the per-analysis counters, skipping unqueried analyses.
func (s *CacheStats) String() string {
	var b strings.Builder
	for id := AnalysisID(0); id < numAnalyses; id++ {
		if s.Hits[id]+s.Misses[id]+s.Invalidated[id] == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s:%dh/%dm/%di", id, s.Hits[id], s.Misses[id], s.Invalidated[id])
	}
	return b.String()
}

func sum(a [numAnalyses]int) int {
	t := 0
	for _, v := range a {
		t += v
	}
	return t
}

// AnalysisManager lazily computes and caches the per-function analyses for
// one function. Passes query analyses through it instead of constructing
// them directly; the pipeline driver invalidates after each pass according
// to the pass's PreservedAnalyses declaration. Passes that mutate the
// function mid-run (e.g. loop transforms re-resolving loops after each
// structural edit) call InvalidateAll themselves before re-querying.
//
// A manager is bound to a single function and is not safe for concurrent
// use; the experiment harness gives each compilation its own manager.
type AnalysisManager struct {
	f     *ir.Function
	valid [numAnalyses]bool

	domTree     *DomTree
	postDomTree *DomTree
	loopInfo    *LoopInfo
	divergence  *Divergence
	alias       *AliasInfo

	stats CacheStats

	// remarks is the compilation's optimization-remark sink. The manager
	// carries it so every pass reaches the sink through the *AnalysisManager
	// it already receives, without widening the Pass interface. Nil (the
	// default) disables emission.
	remarks *remark.Collector
}

// NewAnalysisManager returns an empty manager for f.
func NewAnalysisManager(f *ir.Function) *AnalysisManager {
	return &AnalysisManager{f: f}
}

// Function returns the function the manager is bound to.
func (am *AnalysisManager) Function() *ir.Function { return am.f }

// SetRemarks attaches the compilation's remark sink. Passing nil disables
// emission (the default).
func (am *AnalysisManager) SetRemarks(c *remark.Collector) { am.remarks = c }

// Remarks returns the attached remark sink; nil means disabled. Emission
// sites guard on Remarks().Enabled() — safe on the nil collector — before
// building a remark.
func (am *AnalysisManager) Remarks() *remark.Collector { return am.remarks }

func (am *AnalysisManager) hit(id AnalysisID) bool {
	if am.valid[id] {
		am.stats.Hits[id]++
		return true
	}
	am.stats.Misses[id]++
	am.valid[id] = true
	return false
}

// DomTree returns the cached dominator tree, computing it on a miss.
func (am *AnalysisManager) DomTree() *DomTree {
	if !am.hit(DomTreeID) {
		am.domTree = NewDomTree(am.f)
	}
	return am.domTree
}

// PostDomTree returns the cached post-dominator tree.
func (am *AnalysisManager) PostDomTree() *DomTree {
	if !am.hit(PostDomTreeID) {
		am.postDomTree = NewPostDomTree(am.f)
	}
	return am.postDomTree
}

// LoopInfo returns the cached loop forest (computed over the cached
// dominator tree).
func (am *AnalysisManager) LoopInfo() *LoopInfo {
	if !am.hit(LoopInfoID) {
		am.loopInfo = NewLoopInfo(am.f, am.DomTree())
	}
	return am.loopInfo
}

// Divergence returns the cached SIMT divergence analysis.
func (am *AnalysisManager) Divergence() *Divergence {
	if !am.hit(DivergenceID) {
		am.divergence = NewDivergence(am.f)
	}
	return am.divergence
}

// Alias returns the cached (memoizing) alias analysis.
func (am *AnalysisManager) Alias() *AliasInfo {
	if !am.hit(AliasID) {
		am.alias = NewAliasInfo()
	}
	return am.alias
}

// Invalidate drops every cached analysis the pass did not preserve.
func (am *AnalysisManager) Invalidate(pa PreservedAnalyses) {
	if !pa.changed {
		return
	}
	for id := AnalysisID(0); id < numAnalyses; id++ {
		if pa.keep[id] || !am.valid[id] {
			continue
		}
		am.valid[id] = false
		am.stats.Invalidated[id]++
	}
	// Release dropped results for the GC.
	if !am.valid[DomTreeID] {
		am.domTree = nil
	}
	if !am.valid[PostDomTreeID] {
		am.postDomTree = nil
	}
	if !am.valid[LoopInfoID] {
		am.loopInfo = nil
	}
	if !am.valid[DivergenceID] {
		am.divergence = nil
	}
	if !am.valid[AliasID] {
		am.alias = nil
	}
}

// InvalidateAll drops every cached analysis — for callers that mutated the
// CFG outside a Pass boundary.
func (am *AnalysisManager) InvalidateAll() { am.Invalidate(PreserveNone()) }

// Stats returns a copy of the accumulated cache counters.
func (am *AnalysisManager) Stats() CacheStats { return am.stats }

// AliasInfo memoizes Alias queries for the lifetime of one cached analysis
// generation. Alias itself is a pure function of the two pointer values, so
// the memo stays valid until instructions change (the manager drops it on
// any non-preserving pass).
type AliasInfo struct {
	memo map[[2]ir.Value]AliasResult
}

// NewAliasInfo returns an empty memo table.
func NewAliasInfo() *AliasInfo {
	return &AliasInfo{memo: map[[2]ir.Value]AliasResult{}}
}

// Reset drops all memoized results. Passes that rewrite instruction
// operands mid-run (GVN's equality canonicalization can rewrite GEP
// arguments, which Alias decomposes) must call it after each mutation so a
// later query never sees a pre-rewrite classification.
func (ai *AliasInfo) Reset() {
	ai.memo = map[[2]ir.Value]AliasResult{}
}

// Alias returns the memoized alias classification of p and q.
func (ai *AliasInfo) Alias(p, q ir.Value) AliasResult {
	key := [2]ir.Value{p, q}
	if r, ok := ai.memo[key]; ok {
		return r
	}
	r := Alias(p, q)
	ai.memo[key] = r
	ai.memo[[2]ir.Value{q, p}] = r
	return r
}
