package transform

import (
	"uu/internal/ir"
	"uu/internal/remark"
)

// IfConvertThreshold is the maximum per-side instruction count (size cost)
// that if-conversion will speculate, mirroring the small predication
// thresholds GPU compilers use.
const IfConvertThreshold = 8

// IfConvert flattens small diamonds and triangles into straight-line code
// with select instructions, modelling the predication (`selp`) that the
// NVPTX backend applies to short branches. It is the reason the baseline
// pipeline compiles XSBench's binary-search body and complex's odd-test into
// branch-free code — and the transformation that unroll-and-unmerge undoes
// by design, trading warp efficiency for eliminated instructions.
//
// Patterns handled (B = branch block, M = merge):
//
//	diamond:  B -> (T|F), T -> M, F -> M, with T and F single-pred blocks of
//	          speculatable instructions
//	triangle: B -> (T|M), T -> M, same conditions on T
func IfConvert(f *ir.Function) bool {
	return ifConvert(f, nil)
}

// ifConvert is IfConvert with an optional remark sink recording each
// conversion's shape and branch block.
func ifConvert(f *ir.Function, rc *remark.Collector) bool {
	changed := false
	for again := true; again; {
		again = false
		for _, b := range append([]*ir.Block(nil), f.Blocks()...) {
			if b.Func() == nil {
				continue // removed
			}
			if shape := convertAt(f, b); shape != "" {
				changed = true
				again = true
				if rc.Enabled() {
					rc.Emit(remark.Remark{
						Kind: remark.Passed, Pass: "ifconvert", Name: "IfConverted",
						Function: f.Name, Block: b.Name,
						Args: []remark.Arg{remark.Str("Shape", shape)},
					})
				}
			}
		}
	}
	return changed
}

// convertAt attempts one conversion rooted at b's conditional branch and
// returns the converted shape ("diamond", "triangle") or "" when nothing
// matched.
func convertAt(f *ir.Function, b *ir.Block) string {
	t := b.Term()
	if t == nil || t.Op != ir.OpCondBr {
		return ""
	}
	cond := t.Arg(0)
	s0, s1 := t.BlockArg(0), t.BlockArg(1)

	if m := diamondMerge(b, s0, s1); m != nil {
		if convertDiamond(f, b, cond, s0, s1, m) {
			return "diamond"
		}
		return ""
	}
	// Triangle with the true side speculated: B -> (T | M), T -> M.
	if ok, m := triangle(b, s0, s1); ok {
		if convertTriangle(f, b, cond, s0, m, true) {
			return "triangle"
		}
		return ""
	}
	if ok, m := triangle(b, s1, s0); ok {
		if convertTriangle(f, b, cond, s1, m, false) {
			return "triangle"
		}
		return ""
	}
	return ""
}

// speculatableBlock reports whether blk consists solely of speculatable
// instructions (plus its terminator) within the size threshold, and is a
// single-pred block of b.
func speculatableBlock(blk, pred *ir.Block) bool {
	if len(blk.Preds()) != 1 || blk.Preds()[0] != pred {
		return false
	}
	tm := blk.Term()
	if tm == nil || tm.Op != ir.OpBr {
		return false
	}
	cost := 0
	for _, in := range blk.Instrs() {
		if in.IsTerminator() {
			continue
		}
		if !in.IsSpeculatable() {
			return false
		}
		cost++
		if cost > IfConvertThreshold {
			return false
		}
	}
	return true
}

func diamondMerge(b, s0, s1 *ir.Block) *ir.Block {
	if !speculatableBlock(s0, b) || !speculatableBlock(s1, b) {
		return nil
	}
	m0, m1 := s0.Term().BlockArg(0), s1.Term().BlockArg(0)
	if m0 != m1 || m0 == b {
		return nil
	}
	return m0
}

func triangle(b, side, m *ir.Block) (bool, *ir.Block) {
	if !speculatableBlock(side, b) {
		return false, nil
	}
	if side.Term().BlockArg(0) != m {
		return false, nil
	}
	// m must not have phis that cannot distinguish... m has preds {b, side}.
	return true, m
}

func convertDiamond(f *ir.Function, b *ir.Block, cond ir.Value, s0, s1, m *ir.Block) bool {
	// Hoist both sides into b, then replace m's phis with selects.
	term := b.Term()
	hoist := func(side *ir.Block) {
		for _, in := range append([]*ir.Instr(nil), side.Instrs()...) {
			if in.IsTerminator() {
				continue
			}
			side.Remove(in)
			b.InsertBefore(in, term)
		}
	}
	hoist(s0)
	hoist(s1)
	for _, phi := range append([]*ir.Instr(nil), m.Phis()...) {
		v0 := phi.PhiIncoming(s0)
		v1 := phi.PhiIncoming(s1)
		if v0 == nil || v1 == nil {
			// Phi also merges other preds; keep it but the incomings from
			// s0/s1 will be replaced by one incoming from b below.
			continue
		}
		sel := ir.NewInstr(ir.OpSelect, phi.Type(), cond, v0, v1)
		sel.SetLoc(phi.Loc())
		b.InsertBefore(sel, term)
		phi.PhiRemoveIncoming(s0)
		phi.PhiRemoveIncoming(s1)
		phi.PhiAddIncoming(sel, b)
		// Temporarily inconsistent (b not yet a pred of m); fixed below.
	}
	// Rewire: b branches straight to m; s0/s1 die.
	b.Erase(term)
	ir.NewBuilder(b).Br(m)
	f.RemoveBlocks([]*ir.Block{s0, s1})
	// Collapse phis that now have a single incoming.
	for _, phi := range append([]*ir.Instr(nil), m.Phis()...) {
		if phi.NumArgs() == 1 {
			phi.ReplaceAllUsesWith(phi.Arg(0))
			m.Erase(phi)
		}
	}
	return true
}

func convertTriangle(f *ir.Function, b *ir.Block, cond ir.Value, side, m *ir.Block, sideOnTrue bool) bool {
	// m must not be reached from b by the same edge twice; preds of m include
	// b (direct) and side.
	if !m.HasPred(b) || !m.HasPred(side) {
		return false
	}
	term := b.Term()
	for _, in := range append([]*ir.Instr(nil), side.Instrs()...) {
		if in.IsTerminator() {
			continue
		}
		side.Remove(in)
		b.InsertBefore(in, term)
	}
	for _, phi := range append([]*ir.Instr(nil), m.Phis()...) {
		vSide := phi.PhiIncoming(side)
		vDirect := phi.PhiIncoming(b)
		if vSide == nil || vDirect == nil {
			continue
		}
		var sel *ir.Instr
		if sideOnTrue {
			sel = ir.NewInstr(ir.OpSelect, phi.Type(), cond, vSide, vDirect)
		} else {
			sel = ir.NewInstr(ir.OpSelect, phi.Type(), cond, vDirect, vSide)
		}
		sel.SetLoc(phi.Loc())
		b.InsertBefore(sel, term)
		phi.PhiRemoveIncoming(side)
		phi.PhiSetIncoming(b, sel)
	}
	b.Erase(term)
	ir.NewBuilder(b).Br(m)
	f.RemoveBlock(side)
	for _, phi := range append([]*ir.Instr(nil), m.Phis()...) {
		if phi.NumArgs() == 1 {
			phi.ReplaceAllUsesWith(phi.Arg(0))
			m.Erase(phi)
		}
	}
	return true
}
