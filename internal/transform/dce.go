package transform

import "uu/internal/ir"

// DCE performs aggressive dead-code elimination via mark-and-sweep: an
// instruction is live only if it has side effects (stores, barriers,
// terminators) or is transitively used by a live instruction. Cycles of
// otherwise-unused phis die together, which simple use-count DCE misses.
func DCE(f *ir.Function) bool {
	return dceCount(f) > 0
}

// dceCount is DCE returning how many instructions it deleted (the payload of
// the pass's DeadInstructions remark).
func dceCount(f *ir.Function) int {
	live := map[*ir.Instr]bool{}
	var work []*ir.Instr
	mark := func(in *ir.Instr) {
		if !live[in] {
			live[in] = true
			work = append(work, in)
		}
	}
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			if in.HasSideEffects() {
				mark(in)
			}
		}
	}
	for len(work) > 0 {
		in := work[len(work)-1]
		work = work[:len(work)-1]
		for i := 0; i < in.NumArgs(); i++ {
			if a, ok := in.Arg(i).(*ir.Instr); ok {
				mark(a)
			}
		}
	}
	var dead []*ir.Instr
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			if !live[in] {
				dead = append(dead, in)
			}
		}
	}
	if len(dead) == 0 {
		return 0
	}
	ir.EraseInstrs(dead)
	return len(dead)
}
