package transform

import "uu/internal/ir"

// SimplifyCFG performs the classic CFG cleanups until a fixpoint:
//
//   - fold conditional branches on constants
//   - delete unreachable blocks
//   - collapse single-incoming phis
//   - remove empty forwarding blocks (a lone unconditional branch)
//   - merge a block into its unique predecessor when that predecessor has a
//     single successor
//
// It returns true when anything changed.
func SimplifyCFG(f *ir.Function) bool {
	changed := false
	for {
		c := false
		c = foldConstantBranches(f) || c
		c = RemoveUnreachable(f) || c
		c = CollapseSinglePredPhis(f) || c
		c = removeForwardingBlocks(f) || c
		c = mergeIntoPreds(f) || c
		if !c {
			return changed
		}
		changed = true
	}
}

func foldConstantBranches(f *ir.Function) bool {
	changed := false
	for _, b := range f.Blocks() {
		t := b.Term()
		if t == nil || t.Op != ir.OpCondBr {
			continue
		}
		c, ok := t.Arg(0).(*ir.Const)
		if !ok {
			continue
		}
		keep := t.BlockArg(0)
		if c.Int == 0 {
			keep = t.BlockArg(1)
		}
		FoldToUncond(b, keep)
		changed = true
	}
	return changed
}

// removeForwardingBlocks eliminates blocks containing only "br %succ" by
// routing their predecessors directly to the successor.
func removeForwardingBlocks(f *ir.Function) bool {
	changed := false
	for _, b := range append([]*ir.Block(nil), f.Blocks()...) {
		if b == f.Entry() || b.NumInstrs() != 1 {
			continue
		}
		t := b.Term()
		if t == nil || t.Op != ir.OpBr {
			continue
		}
		succ := t.BlockArg(0)
		if succ == b {
			continue // self loop
		}
		if !canThreadPreds(b, succ) {
			continue
		}
		// Values flowing through b into succ's phis.
		preds := append([]*ir.Block(nil), b.Preds()...)
		for _, phi := range succ.Phis() {
			v := phi.PhiIncoming(b)
			phi.PhiRemoveIncoming(b)
			for _, p := range preds {
				phi.PhiAddIncoming(v, p)
			}
		}
		for _, p := range preds {
			p.ReplaceSucc(b, succ)
		}
		f.RemoveBlock(b)
		changed = true
	}
	return changed
}

// canThreadPreds checks that routing b's preds into succ neither creates a
// condbr with identical targets nor a duplicate (pred, succ) edge that would
// confuse phis.
func canThreadPreds(b, succ *ir.Block) bool {
	if len(b.Preds()) == 0 {
		return false
	}
	for _, p := range b.Preds() {
		pt := p.Term()
		if pt.Op == ir.OpCondBr {
			other := pt.BlockArg(0)
			if other == b {
				other = pt.BlockArg(1)
			}
			if other == succ {
				return false // would make both targets identical
			}
		}
		if succ.HasPred(p) {
			return false // duplicate edge; phis could not distinguish
		}
	}
	return true
}

// mergeIntoPreds merges blocks that have a unique predecessor whose only
// successor is the block.
func mergeIntoPreds(f *ir.Function) bool {
	changed := false
	for _, b := range append([]*ir.Block(nil), f.Blocks()...) {
		if b == f.Entry() || len(b.Preds()) != 1 {
			continue
		}
		p := b.Preds()[0]
		if p == b || len(p.Succs()) != 1 {
			continue
		}
		// Single-pred phis collapse.
		phis := append([]*ir.Instr(nil), b.Phis()...)
		for _, phi := range phis {
			v := phi.Arg(0)
			phi.ReplaceAllUsesWith(v)
			b.Erase(phi)
		}
		// Move instructions from b into p.
		p.Erase(p.Term())
		for _, in := range append([]*ir.Instr(nil), b.Instrs()...) {
			isTerm := in.IsTerminator()
			var succs []*ir.Block
			if isTerm {
				succs = append(succs, b.Succs()...)
			}
			b.Remove(in)
			p.Append(in)
			if isTerm {
				for _, s := range succs {
					for _, phi := range s.Phis() {
						for i := 0; i < phi.NumBlocks(); i++ {
							if phi.BlockArg(i) == b {
								phi.SetBlockArg(i, p)
							}
						}
					}
				}
			}
		}
		f.RemoveBlock(b)
		changed = true
	}
	return changed
}
