// Package transform implements the optimization passes that surround the
// paper's contribution: the standard -O3-style pipeline (mem2reg, SCCP,
// instruction simplification, GVN with equality propagation, dead-code
// elimination, SimplifyCFG, LICM, if-conversion) plus loop utilities (LCSSA,
// preheader insertion) and the loop unroller that both the baseline `unroll`
// configuration and the paper's unroll-and-unmerge build on.
package transform

import (
	"uu/internal/analysis"
	"uu/internal/ir"
)

// EnsurePreheader guarantees that l has a dedicated preheader: a block whose
// only successor is the header and which is the header's only out-of-loop
// predecessor. Returns the preheader. It mutates the CFG when needed, so
// loop info computed earlier must be refreshed by the caller if it matters.
func EnsurePreheader(f *ir.Function, l *analysis.Loop) *ir.Block {
	if ph := l.Preheader(); ph != nil {
		return ph
	}
	h := l.Header
	var outside []*ir.Block
	for _, p := range h.Preds() {
		if !l.Contains(p) {
			outside = append(outside, p)
		}
	}
	ph := f.NewBlock(h.Name + ".ph")
	// Phis in the header: split incomings between the new preheader phi and
	// the remaining in-loop incomings.
	for _, phi := range h.Phis() {
		nphi := ir.NewInstr(ir.OpPhi, phi.Type())
		nphi.SetName(phi.Name() + ".ph")
		nphi.SetLoc(phi.Loc())
		ph.InsertAtFront(nphi)
		for _, p := range outside {
			nphi.PhiAddIncoming(phi.PhiIncoming(p), p)
		}
		for _, p := range outside {
			phi.PhiRemoveIncoming(p)
		}
		phi.PhiAddIncoming(nphi, ph)
	}
	ir.NewBuilder(ph).Br(h)
	// The Br above added ph as a pred of h; redirect outside preds to ph.
	for _, p := range outside {
		p.ReplaceSucc(h, ph)
	}
	// If h was the function entry, the preheader must become the entry.
	if f.Entry() == h {
		f.MoveBlockAfter(ph, h)
		// MoveBlockAfter keeps h first; we need ph first instead.
	}
	reorderEntry(f, ph, h)
	return ph
}

// reorderEntry makes ph the entry block if h currently is.
func reorderEntry(f *ir.Function, ph, h *ir.Block) {
	if f.Entry() != h {
		return
	}
	blocks := f.Blocks()
	for i, b := range blocks {
		if b == ph {
			copy(blocks[1:i+1], blocks[0:i])
			blocks[0] = ph
			return
		}
	}
}

// SplitCriticalEdge splits the CFG edge from→to by inserting a forwarding
// block; phis in to are rewired. Returns the new block.
func SplitCriticalEdge(f *ir.Function, from, to *ir.Block) *ir.Block {
	mid := f.NewBlock(from.Name + "." + to.Name)
	ir.NewBuilder(mid).Br(to)
	from.ReplaceSucc(to, mid)
	for _, phi := range to.Phis() {
		for i := 0; i < phi.NumBlocks(); i++ {
			if phi.BlockArg(i) == from {
				phi.SetBlockArg(i, mid)
			}
		}
	}
	return mid
}

// EnsureDedicatedExits gives l dedicated exit blocks: every exit block's
// predecessors all lie inside the loop (LLVM's loop-simplify invariant).
// An exit that is also reachable from outside the loop — e.g. a following
// loop's header whose backedge re-enters it — is split, rerouting the
// in-loop edges through a fresh forwarding block that becomes the exit.
// Without this an LCSSA phi placed in the shared block would need an
// incoming value for the outside edges, and no correct one exists: on a
// re-entry edge the phi must keep its previous value, which a plain
// def-per-pred phi cannot express. Returns true if the CFG changed.
func EnsureDedicatedExits(f *ir.Function, l *analysis.Loop) bool {
	changed := false
	for _, e := range l.ExitBlocks() {
		var inPreds, outPreds []*ir.Block
		for _, p := range e.Preds() {
			if l.Contains(p) {
				inPreds = append(inPreds, p)
			} else {
				outPreds = append(outPreds, p)
			}
		}
		if len(outPreds) == 0 {
			continue
		}
		ded := f.NewBlock(e.Name + ".dexit")
		// Move the in-loop incomings of e's phis into phis in the dedicated
		// block (or pass a unique value through directly).
		phis := append([]*ir.Instr(nil), e.Phis()...)
		for i := len(phis) - 1; i >= 0; i-- {
			phi := phis[i]
			var v ir.Value
			if len(inPreds) == 1 {
				v = phi.PhiIncoming(inPreds[0])
			} else {
				nphi := ir.NewInstr(ir.OpPhi, phi.Type())
				if phi.Name() != "" {
					nphi.SetName(phi.Name() + ".de")
				}
				nphi.SetLoc(phi.Loc())
				ded.InsertAtFront(nphi)
				for _, p := range inPreds {
					nphi.PhiAddIncoming(phi.PhiIncoming(p), p)
				}
				v = nphi
			}
			for _, p := range inPreds {
				phi.PhiRemoveIncoming(p)
			}
			phi.PhiAddIncoming(v, ded)
		}
		ir.NewBuilder(ded).Br(e)
		for _, p := range inPreds {
			p.ReplaceSucc(e, ded)
		}
		changed = true
	}
	return changed
}

// EnsureLCSSA puts l into loop-closed SSA form: every value defined inside
// the loop that is used outside it is routed through a phi in the exit block
// that the use reaches. Loop transforms (unrolling, unmerging) rely on this
// so that duplicating the body only requires fixing exit-block phis.
// Exits are first made dedicated (see EnsureDedicatedExits) so that every
// exit-block predecessor lies inside the loop.
func EnsureLCSSA(f *ir.Function, l *analysis.Loop) {
	EnsureDedicatedExits(f, l)
	exitSet := map[*ir.Block]bool{}
	for _, e := range l.ExitBlocks() {
		exitSet[e] = true
	}
	for _, b := range l.Blocks() {
		for _, in := range b.Instrs() {
			if in.Type() == ir.Void {
				continue
			}
			fixLCSSAUses(l, in, exitSet)
		}
	}
}

func fixLCSSAUses(l *analysis.Loop, def *ir.Instr, exitSet map[*ir.Block]bool) {
	// Find uses outside the loop.
	var outside []*ir.Instr
	for _, u := range def.Users() {
		ub := u.Block()
		if u.IsPhi() {
			// A phi use is "outside" per incoming edge; handled below.
			needs := false
			for i := 0; i < u.NumArgs(); i++ {
				if u.Arg(i) == ir.Value(def) && !l.Contains(u.BlockArg(i)) {
					needs = true
				}
			}
			if needs && !(exitSet[ub] && isLCSSAPhi(u, l)) {
				outside = append(outside, u)
			}
			continue
		}
		if !l.Contains(ub) {
			outside = append(outside, u)
		}
	}
	if len(outside) == 0 {
		return
	}
	// Insert one LCSSA phi per exit block in which def is live. For
	// simplicity, insert into every exit block reachable from def's block
	// whose predecessors inside the loop are all dominated by def's block —
	// we conservatively use exit blocks whose in-loop preds see def.
	phiAt := map[*ir.Block]*ir.Instr{}
	getPhi := func(exit *ir.Block) *ir.Instr {
		if p, ok := phiAt[exit]; ok {
			return p
		}
		phi := ir.NewInstr(ir.OpPhi, def.Type())
		phi.SetName(def.Ref()[1:] + ".lcssa")
		phi.SetLoc(def.Loc())
		exit.InsertAtFront(phi)
		for _, p := range exit.Preds() {
			phi.PhiAddIncoming(def, p)
		}
		phiAt[exit] = phi
		return phi
	}
	for _, u := range outside {
		if u.IsPhi() {
			for i := 0; i < u.NumArgs(); i++ {
				if u.Arg(i) != ir.Value(def) || l.Contains(u.BlockArg(i)) {
					continue
				}
				// The incoming edge comes from outside the loop; def must
				// flow through the exit block on that path. Find the exit
				// that dominates the incoming block — with our structured
				// CFGs the incoming block itself is the exit or is reached
				// from a unique exit. Use the nearest exit by walking preds.
				exit := findExitFor(u.BlockArg(i), exitSet)
				if exit == nil || exit == u.Block() {
					// u is itself in an exit block: make it the LCSSA phi.
					continue
				}
				u.SetArg(i, getPhi(exit))
			}
			continue
		}
		if exitSet[u.Block()] && u.IsPhi() {
			continue
		}
		exit := findExitFor(u.Block(), exitSet)
		if exit == nil {
			continue
		}
		phi := getPhi(exit)
		if phi == u {
			continue
		}
		for i := 0; i < u.NumArgs(); i++ {
			if u.Arg(i) == ir.Value(def) {
				u.SetArg(i, phi)
			}
		}
	}
}

func isLCSSAPhi(phi *ir.Instr, l *analysis.Loop) bool {
	for i := 0; i < phi.NumBlocks(); i++ {
		if !l.Contains(phi.BlockArg(i)) {
			return false
		}
	}
	return true
}

// findExitFor walks the CFG backwards from b to the unique exit block in
// exitSet that all paths from the loop to b traverse. It returns b itself if
// b is an exit block.
func findExitFor(b *ir.Block, exitSet map[*ir.Block]bool) *ir.Block {
	seen := map[*ir.Block]bool{}
	var found *ir.Block
	var walk func(x *ir.Block) bool
	walk = func(x *ir.Block) bool {
		if seen[x] {
			return true
		}
		seen[x] = true
		if exitSet[x] {
			if found != nil && found != x {
				return false // multiple exits reach b: ambiguous
			}
			found = x
			return true
		}
		for _, p := range x.Preds() {
			if !walk(p) {
				return false
			}
		}
		return true
	}
	if !walk(b) {
		return nil
	}
	return found
}

// FoldToUncond replaces b's conditional terminator with an unconditional
// branch to keep, updating the other target's phis.
func FoldToUncond(b *ir.Block, keep *ir.Block) {
	t := b.Term()
	if t.Op != ir.OpCondBr {
		panic("transform: FoldToUncond on non-condbr")
	}
	var other *ir.Block
	for i := 0; i < t.NumBlocks(); i++ {
		if t.BlockArg(i) != keep {
			other = t.BlockArg(i)
		}
	}
	b.Erase(t)
	ir.NewBuilder(b).Br(keep)
	if other != nil && other != keep && !other.HasPred(b) {
		for _, phi := range other.Phis() {
			if phi.PhiIncoming(b) != nil {
				phi.PhiRemoveIncoming(b)
			}
		}
	}
}

// RemoveUnreachable deletes blocks not reachable from the entry, fixing phis
// in surviving blocks. Returns true if anything was removed.
func RemoveUnreachable(f *ir.Function) bool {
	reachable := map[*ir.Block]bool{}
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		reachable[b] = true
		for _, s := range b.Succs() {
			if !reachable[s] {
				dfs(s)
			}
		}
	}
	dfs(f.Entry())
	var dead []*ir.Block
	for _, b := range f.Blocks() {
		if !reachable[b] {
			dead = append(dead, b)
		}
	}
	if len(dead) == 0 {
		return false
	}
	// Values defined in dead blocks cannot be used by live blocks (that would
	// violate dominance), so group removal is safe.
	f.RemoveBlocks(dead)
	return true
}

// CollapseSinglePredPhis replaces every phi that has exactly one incoming
// with that incoming value. Returns true on change.
func CollapseSinglePredPhis(f *ir.Function) bool {
	changed := false
	for _, b := range f.Blocks() {
		phis := append([]*ir.Instr(nil), b.Phis()...)
		for _, phi := range phis {
			if phi.NumArgs() == 1 {
				v := phi.Arg(0)
				if v == ir.Value(phi) {
					v = undefFor(phi.Type())
				}
				phi.ReplaceAllUsesWith(v)
				b.Erase(phi)
				changed = true
			}
		}
	}
	return changed
}

// undefFor returns a zero constant standing in for an undefined value.
func undefFor(t *ir.Type) ir.Value {
	if t.IsFloat() {
		return ir.ConstFloat(t, 0)
	}
	if t.IsInt() {
		return ir.ConstInt(t, 0)
	}
	panic("transform: no undef for type " + t.String())
}
