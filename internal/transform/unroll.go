package transform

import (
	"fmt"

	"uu/internal/analysis"
	"uu/internal/ir"
	"uu/internal/remark"
)

// UnrollLoop unrolls l by the given factor (>= 2), keeping every exit test:
// the new loop body is `factor` chained copies of the original body, each
// still able to leave the loop early. This multi-exit ("peeled-iteration")
// unrolling handles non-counted loops such as XSBench's binary search, which
// is exactly the setting of the paper's unroll-and-unmerge.
//
// Requirements: l must have a unique latch. The function is put into
// preheader + LCSSA form first. Returns false (leaving f untouched) when the
// loop shape is unsupported.
func UnrollLoop(f *ir.Function, l *analysis.Loop, factor int) bool {
	return UnrollLoopWithOrigins(f, l, factor, nil)
}

// UnrollLoopWithOrigins is UnrollLoop, additionally recording in origins the
// original instruction each clone stems from (transitively through earlier
// recorded clones). Used for provenance reporting.
func UnrollLoopWithOrigins(f *ir.Function, l *analysis.Loop, factor int, origins map[*ir.Instr]*ir.Instr) bool {
	if factor < 2 {
		return false
	}
	latch := l.Latch()
	if latch == nil {
		return false
	}
	EnsurePreheader(f, l)
	EnsureLCSSA(f, l)
	if !loopIsClosed(l) {
		return false // LCSSA could not be established (ambiguous exits)
	}

	header := l.Header
	loopBlocks := append([]*ir.Block(nil), l.Blocks()...)

	// Snapshot the header phis and their back-edge values.
	type phiInfo struct {
		phi      *ir.Instr
		latchVal ir.Value
	}
	var phis []phiInfo
	for _, phi := range header.Phis() {
		phis = append(phis, phiInfo{phi, phi.PhiIncoming(latch)})
	}

	// Snapshot exit-block phi incomings from inside the loop, so each copy
	// can add matching incomings (LCSSA guarantees all loop values escape
	// through these phis).
	type exitInc struct {
		phi  *ir.Instr
		from *ir.Block
		val  ir.Value
	}
	var exitIncs []exitInc
	for _, e := range l.ExitBlocks() {
		for _, phi := range e.Phis() {
			for i := 0; i < phi.NumArgs(); i++ {
				if l.Contains(phi.BlockArg(i)) {
					exitIncs = append(exitIncs, exitInc{phi, phi.BlockArg(i), phi.Arg(i)})
				}
			}
		}
	}

	// Clone every copy from the pristine original body first, so each clone's
	// back edge is self-contained (cloned latch -> cloned header). Rewiring
	// afterwards chains them: L -> H1, L1 -> H2, ..., L_{u-1} -> H.
	bmaps := make([]map[*ir.Block]*ir.Block, factor)
	vmaps := make([]ir.ValueMap, factor)
	for j := 1; j < factor; j++ {
		bmap, vmap := ir.CloneBlocks(f, loopBlocks, fmt.Sprintf(".u%d", j))
		// Stamp each clone with its iteration tag so the profiler can
		// attribute cycles to individual unrolled copies of a source line.
		for _, clone := range vmap {
			if ci, ok := clone.(*ir.Instr); ok {
				loc := ci.Loc()
				loc.Iter = int32(j)
				ci.SetLoc(loc)
			}
		}
		if origins != nil {
			for orig, clone := range vmap {
				co, ok := clone.(*ir.Instr)
				if !ok {
					continue
				}
				root, _ := orig.(*ir.Instr)
				if root == nil {
					continue
				}
				if r, ok := origins[root]; ok {
					root = r
				}
				origins[co] = root
			}
		}
		for _, ei := range exitIncs {
			ei.phi.PhiAddIncoming(vmap.Lookup(ei.val), bmap[ei.from])
		}
		bmaps[j], vmaps[j] = bmap, vmap
	}
	prevLatch := latch   // latch of the previous copy in the chain
	prevHeader := header // block the previous latch's back edge targets
	prevMap := ir.ValueMap{}
	for j := 1; j < factor; j++ {
		hj := bmaps[j][header]
		// Chain the previous copy's back edge into this copy's header.
		prevLatch.ReplaceSucc(prevHeader, hj)
		// This copy's header has one real predecessor (the previous latch),
		// so each cloned header phi resolves to the previous copy's
		// back-edge value.
		for _, pi := range phis {
			phiJ := vmaps[j][pi.phi].(*ir.Instr)
			val := prevMap.Lookup(pi.latchVal)
			phiJ.ReplaceAllUsesWith(val)
			hj.Erase(phiJ)
			vmaps[j][pi.phi] = val // keep the map usable for the next copy
		}
		prevLatch = bmaps[j][latch]
		prevHeader = hj
		prevMap = vmaps[j]
	}
	// Close the chain: the last copy's latch branches back to the original
	// header, which now carries the last copy's back-edge values.
	prevLatch.ReplaceSucc(prevHeader, header)
	for _, pi := range phis {
		pi.phi.PhiRemoveIncoming(latch)
		pi.phi.PhiAddIncoming(prevMap.Lookup(pi.latchVal), prevLatch)
	}
	return true
}

// AutoUnrollMaxTrip and AutoUnrollMaxSize bound the baseline pipeline's full
// unrolling, mirroring LLVM's -O3 full-unroll thresholds in spirit.
const (
	AutoUnrollMaxTrip = 32
	AutoUnrollMaxSize = 512
)

// AutoUnroll is the baseline pipeline's loop unroller: it fully unrolls
// loops with a small constant trip count (SCCP + SimplifyCFG then evaluate
// away the chained exit tests and the dead back edge). Loops whose header
// blocks are in skip are left alone — the paper's pass excludes loops it
// transformed from LLVM's unroller, which is also how the `coordinates`
// speedup arises.
func AutoUnroll(f *ir.Function, skip map[*ir.Block]bool) bool {
	return autoUnroll(f, analysis.NewAnalysisManager(f), skip)
}

// autoUnroll is AutoUnroll against a caller-provided analysis manager. Each
// round resolves loops through the manager; any unroll attempt invalidates
// it, because UnrollLoop establishes preheader + LCSSA form even when it
// then rejects the loop shape.
func autoUnroll(f *ir.Function, am *analysis.AnalysisManager, skip map[*ir.Block]bool) bool {
	changed := false
	for rounds := 0; rounds < 8; rounds++ {
		li := am.LoopInfo()
		done := true
		// Innermost first (reverse of the outer-first ordering). Snapshot the
		// list: an unroll attempt invalidates the manager.
		loops := append([]*analysis.Loop(nil), li.Loops...)
		for i := len(loops) - 1; i >= 0; i-- {
			l := loops[i]
			if skip != nil && skip[l.Header] {
				continue
			}
			tc, ok := analysis.ConstantTripCount(l)
			if !ok || tc < 2 || tc > AutoUnrollMaxTrip {
				continue
			}
			size := analysis.LoopSize(l)
			if int64(size)*tc > AutoUnrollMaxSize {
				if am.Remarks().Enabled() {
					am.Remarks().Emit(remark.Remark{
						Kind: remark.Missed, Pass: "loop-unroll", Name: "FullUnrollTooLarge",
						Function: f.Name, Block: l.Header.Name,
						Args: []remark.Arg{
							remark.Int("TripCount", tc),
							remark.Int("Size", int64(size)),
							remark.Int("Budget", AutoUnrollMaxSize),
						},
					})
				}
				continue
			}
			header := l.Header
			am.InvalidateAll()
			if UnrollLoop(f, l, int(tc)) {
				changed = true
				done = false
				if am.Remarks().Enabled() {
					am.Remarks().Emit(remark.Remark{
						Kind: remark.Passed, Pass: "loop-unroll", Name: "FullyUnrolled",
						Function: f.Name, Block: header.Name,
						Args: []remark.Arg{
							remark.Int("TripCount", tc),
							remark.Int("Size", int64(size)),
						},
					})
				}
				break // loop structures changed; recompute analyses
			}
		}
		if done {
			break
		}
	}
	return changed
}

// loopIsClosed reports whether every use of a loop-defined value outside the
// loop is a phi in an exit block (loop-closed SSA form).
func loopIsClosed(l *analysis.Loop) bool {
	exitSet := map[*ir.Block]bool{}
	for _, e := range l.ExitBlocks() {
		exitSet[e] = true
	}
	for _, b := range l.Blocks() {
		for _, in := range b.Instrs() {
			for _, u := range in.Users() {
				if u.IsPhi() {
					for i := 0; i < u.NumArgs(); i++ {
						if u.Arg(i) != ir.Value(in) {
							continue
						}
						ib := u.BlockArg(i)
						if l.Contains(ib) {
							continue
						}
						// Incoming from outside the loop must be an exit phi.
						if !exitSet[u.Block()] {
							return false
						}
					}
					continue
				}
				if !l.Contains(u.Block()) {
					return false
				}
			}
		}
	}
	return true
}
