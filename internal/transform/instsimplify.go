package transform

import "uu/internal/ir"

// InstSimplify applies local algebraic rewrites until a fixpoint, in the
// spirit of LLVM's InstCombine/InstSimplify. The rules here are the ones the
// paper's case studies lean on — in particular (a+b)-a => b, which deletes
// the subtraction in XSBench's binary-search loop once unmerging has made
// `upperLimit = mid = lowerLimit + length/2` explicit on the taken path.
func InstSimplify(f *ir.Function) bool {
	changed := false
	for {
		c := false
		for _, b := range f.Blocks() {
			for _, in := range append([]*ir.Instr(nil), b.Instrs()...) {
				if in.Block() == nil {
					continue // erased by an earlier rewrite this sweep
				}
				if v := simplifyInstr(in); v != nil {
					in.ReplaceAllUsesWith(v)
					b.Erase(in)
					c = true
				}
			}
		}
		if !c {
			return changed
		}
		changed = true
	}
}

// simplifyInstr returns a value equivalent to in, or nil when no
// simplification applies. It never creates new instructions.
func simplifyInstr(in *ir.Instr) ir.Value {
	if in.Type() == ir.Void || in.HasSideEffects() {
		return nil
	}

	// Constant folding on all-constant operands.
	if v := foldAllConst(in); v != nil {
		return v
	}

	switch in.Op {
	case ir.OpPhi:
		return simplifyPhi(in)
	case ir.OpAdd:
		return simplifyAdd(in)
	case ir.OpSub:
		return simplifySub(in)
	case ir.OpMul:
		return simplifyMul(in)
	case ir.OpSDiv, ir.OpUDiv:
		if c, ok := in.Arg(1).(*ir.Const); ok && c.IsOne() {
			return in.Arg(0)
		}
	case ir.OpSRem, ir.OpURem:
		if c, ok := in.Arg(1).(*ir.Const); ok && c.IsOne() {
			return ir.ConstInt(in.Type(), 0)
		}
	case ir.OpShl, ir.OpLShr, ir.OpAShr:
		if c, ok := in.Arg(1).(*ir.Const); ok && c.IsZero() {
			return in.Arg(0)
		}
		if c, ok := in.Arg(0).(*ir.Const); ok && c.IsZero() {
			return ir.ConstInt(in.Type(), 0)
		}
	case ir.OpAnd:
		if in.Arg(0) == in.Arg(1) {
			return in.Arg(0)
		}
		if c, ok := constOperand(in); ok {
			if c.IsZero() {
				return ir.ConstInt(in.Type(), 0)
			}
			if c.Int == allOnes(in.Type()) {
				return otherOperand(in, c)
			}
		}
	case ir.OpOr:
		if in.Arg(0) == in.Arg(1) {
			return in.Arg(0)
		}
		if c, ok := constOperand(in); ok {
			if c.IsZero() {
				return otherOperand(in, c)
			}
			if c.Int == allOnes(in.Type()) {
				return ir.ConstInt(in.Type(), c.Int)
			}
		}
	case ir.OpXor:
		if in.Arg(0) == in.Arg(1) {
			return ir.ConstInt(in.Type(), 0)
		}
		if c, ok := constOperand(in); ok && c.IsZero() {
			return otherOperand(in, c)
		}
	case ir.OpICmp:
		return simplifyICmp(in)
	case ir.OpSelect:
		if c, ok := in.Arg(0).(*ir.Const); ok {
			if c.Int != 0 {
				return in.Arg(1)
			}
			return in.Arg(2)
		}
		if in.Arg(1) == in.Arg(2) {
			return in.Arg(1)
		}
	case ir.OpFAdd:
		// Fast-math style identities, as the GPU toolchain applies.
		if c, ok := in.Arg(1).(*ir.Const); ok && c.Float == 0 {
			return in.Arg(0)
		}
		if c, ok := in.Arg(0).(*ir.Const); ok && c.Float == 0 {
			return in.Arg(1)
		}
	case ir.OpFSub:
		if c, ok := in.Arg(1).(*ir.Const); ok && c.Float == 0 {
			return in.Arg(0)
		}
	case ir.OpFMul:
		if c, ok := constOperand(in); ok && c.Float == 1 {
			return otherOperand(in, c)
		}
	case ir.OpFDiv:
		if c, ok := in.Arg(1).(*ir.Const); ok && c.Float == 1 {
			return in.Arg(0)
		}
	case ir.OpGEP:
		if c, ok := in.Arg(1).(*ir.Const); ok && c.IsZero() {
			return in.Arg(0)
		}
	case ir.OpSMin, ir.OpSMax:
		if in.Arg(0) == in.Arg(1) {
			return in.Arg(0)
		}
	}
	return nil
}

func foldAllConst(in *ir.Instr) ir.Value {
	if in.NumArgs() == 0 || in.IsPhi() {
		return nil
	}
	var consts []*ir.Const
	for i := 0; i < in.NumArgs(); i++ {
		c, ok := in.Arg(i).(*ir.Const)
		if !ok {
			return nil
		}
		consts = append(consts, c)
	}
	switch {
	case in.Op == ir.OpICmp || in.Op == ir.OpFCmp:
		if v := ir.FoldCompare(in.Op, in.Pred, consts[0], consts[1]); v != nil {
			return v
		}
	case in.Op == ir.OpSelect:
		if consts[0].Int != 0 {
			return consts[1]
		}
		return consts[2]
	case len(consts) == 1:
		if v := ir.FoldUnary(in.Op, consts[0], in.Type()); v != nil {
			return v
		}
	case len(consts) == 2:
		if v := ir.FoldBinary(in.Op, consts[0], consts[1]); v != nil {
			return v
		}
	}
	return nil
}

func simplifyPhi(in *ir.Instr) ir.Value {
	if in.NumArgs() == 0 {
		return nil
	}
	var same ir.Value
	for i := 0; i < in.NumArgs(); i++ {
		v := in.Arg(i)
		if v == ir.Value(in) {
			continue // self-reference contributes nothing
		}
		if same == nil {
			same = v
		} else if same != v {
			return nil
		}
	}
	return same
}

func simplifyAdd(in *ir.Instr) ir.Value {
	if c, ok := constOperand(in); ok && c.IsZero() {
		return otherOperand(in, c)
	}
	return nil
}

func simplifySub(in *ir.Instr) ir.Value {
	a, b := in.Arg(0), in.Arg(1)
	if a == b {
		return ir.ConstInt(in.Type(), 0)
	}
	if c, ok := b.(*ir.Const); ok && c.IsZero() {
		return a
	}
	// (x + y) - x => y  and  (x + y) - y => x. This is the XSBench rewrite:
	// upperLimit - lowerLimit where upperLimit = lowerLimit + length/2.
	if ai, ok := a.(*ir.Instr); ok && ai.Op == ir.OpAdd {
		if ai.Arg(0) == b {
			return ai.Arg(1)
		}
		if ai.Arg(1) == b {
			return ai.Arg(0)
		}
	}
	// x - (x + y) would be -y; skipped (needs a new instruction).
	return nil
}

func simplifyMul(in *ir.Instr) ir.Value {
	if c, ok := constOperand(in); ok {
		if c.IsZero() {
			return ir.ConstInt(in.Type(), 0)
		}
		if c.IsOne() {
			return otherOperand(in, c)
		}
	}
	return nil
}

func simplifyICmp(in *ir.Instr) ir.Value {
	a, b := in.Arg(0), in.Arg(1)
	if a == b {
		switch in.Pred {
		case ir.EQ, ir.SLE, ir.SGE, ir.ULE, ir.UGE:
			return ir.True
		case ir.NE, ir.SLT, ir.SGT, ir.ULT, ir.UGT:
			return ir.False
		}
	}
	// Unsigned comparisons against zero.
	if c, ok := b.(*ir.Const); ok && c.IsZero() {
		switch in.Pred {
		case ir.ULT:
			return ir.False
		case ir.UGE:
			return ir.True
		}
	}
	return nil
}

func constOperand(in *ir.Instr) (*ir.Const, bool) {
	if c, ok := in.Arg(1).(*ir.Const); ok {
		return c, true
	}
	if in.IsCommutative() {
		if c, ok := in.Arg(0).(*ir.Const); ok {
			return c, true
		}
	}
	return nil, false
}

func otherOperand(in *ir.Instr, c *ir.Const) ir.Value {
	if in.Arg(1) == ir.Value(c) {
		return in.Arg(0)
	}
	return in.Arg(1)
}

func allOnes(t *ir.Type) int64 {
	switch t.Kind {
	case ir.KindI1:
		return 1
	case ir.KindI8:
		return -1 // canonical signed form of 0xff in i8
	default:
		return -1
	}
}
