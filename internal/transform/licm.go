package transform

import (
	"uu/internal/analysis"
	"uu/internal/ir"
)

// LICM hoists loop-invariant speculatable computations (and loads that no
// store in the loop may clobber) into the loop preheader. Innermost loops
// are processed first so invariants bubble outward.
func LICM(f *ir.Function) bool {
	return licm(f, analysis.NewAnalysisManager(f))
}

// licm is LICM against a caller-provided analysis manager. It invalidates
// the manager whenever it inserts a preheader, so every dominance query
// below sees the current CFG — but queries between mutations share one
// cached tree instead of recomputing per query.
func licm(f *ir.Function, am *analysis.AnalysisManager) bool {
	li := am.LoopInfo()
	// Innermost first: LoopInfo orders outer loops before inner, so reverse.
	// Snapshot the loop list: hoistLoop may invalidate the manager.
	loops := append([]*analysis.Loop(nil), li.Loops...)
	changed := false
	for i := len(loops) - 1; i >= 0; i-- {
		if hoistLoop(f, am, loops[i]) {
			changed = true
		}
	}
	return changed
}

func hoistLoop(f *ir.Function, am *analysis.AnalysisManager, l *analysis.Loop) bool {
	changed := false
	if l.Preheader() == nil {
		EnsurePreheader(f, l)
		am.InvalidateAll() // new block and rerouted edges
		changed = true
	}
	ph := l.Preheader()
	invariant := map[ir.Value]bool{}
	isInv := func(v ir.Value) bool {
		if invariant[v] {
			return true
		}
		in, ok := v.(*ir.Instr)
		if !ok {
			return true // constants and parameters
		}
		return !l.Contains(in.Block())
	}

	// Loop stores / barriers for load hoisting decisions.
	var storedPtrs []ir.Value
	hasClobberAll := false
	for _, b := range l.Blocks() {
		for _, in := range b.Instrs() {
			switch in.Op {
			case ir.OpStore:
				storedPtrs = append(storedPtrs, in.Arg(1))
			case ir.OpBarrier:
				hasClobberAll = true
			}
		}
	}
	loadSafe := func(p ir.Value) bool {
		if hasClobberAll {
			return false
		}
		aa := am.Alias()
		for _, sp := range storedPtrs {
			if aa.Alias(p, sp) != analysis.NoAlias {
				return false
			}
		}
		return true
	}

	for again := true; again; {
		again = false
		for _, b := range l.Blocks() {
			for _, in := range append([]*ir.Instr(nil), b.Instrs()...) {
				if in.Block() == nil || in.IsPhi() || in.IsTerminator() {
					continue
				}
				allInv := true
				for i := 0; i < in.NumArgs(); i++ {
					if !isInv(in.Arg(i)) {
						allInv = false
						break
					}
				}
				if !allInv {
					continue
				}
				hoistable := in.IsSpeculatable() ||
					(in.Op == ir.OpLoad && loadSafe(in.Arg(0)) && executesOnEveryIteration(am, l, b))
				if !hoistable {
					continue
				}
				b.Remove(in)
				ph.InsertBefore(in, ph.Term())
				invariant[in] = true
				changed = true
				again = true
			}
		}
	}
	return changed
}

// executesOnEveryIteration approximates "safe to speculate the load before
// the loop": the block must dominate every latch (it executes whenever an
// iteration completes), so the load would have executed anyway provided the
// loop body runs at least once. Hoisting into the preheader of a loop that
// may run zero times would introduce a load that never executed; we accept
// this for kernels (device loads do not fault in our memory model).
func executesOnEveryIteration(am *analysis.AnalysisManager, l *analysis.Loop, b *ir.Block) bool {
	if b == l.Header {
		return true
	}
	dt := am.DomTree()
	for _, latch := range l.Latches() {
		if !dt.Dominates(b, latch) {
			return false
		}
	}
	return true
}
