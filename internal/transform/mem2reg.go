package transform

import (
	"uu/internal/analysis"
	"uu/internal/ir"
)

// Mem2Reg promotes allocas whose only uses are scalar loads and stores into
// SSA registers, inserting phi nodes at iterated dominance frontiers and
// renaming along the dominator tree (the classic Cytron et al. construction).
// The language frontend lowers every local variable through an alloca, so
// this pass is what establishes "real" SSA form; it runs first in every
// pipeline.
func Mem2Reg(f *ir.Function) bool {
	return mem2reg(f, analysis.NewAnalysisManager(f))
}

// mem2reg is Mem2Reg against a caller-provided analysis manager.
func mem2reg(f *ir.Function, am *analysis.AnalysisManager) bool {
	var allocas []*ir.Instr
	for _, in := range f.Entry().Instrs() {
		if in.Op == ir.OpAlloca && promotable(in) {
			allocas = append(allocas, in)
		}
	}
	if len(allocas) == 0 {
		return false
	}
	dt := am.DomTree()
	df := dt.Frontier(f)

	// Phi placement: iterated dominance frontier of the store blocks.
	phiFor := map[*ir.Instr]map[*ir.Block]*ir.Instr{} // alloca -> block -> phi
	for _, a := range allocas {
		phiFor[a] = map[*ir.Block]*ir.Instr{}
		work := []*ir.Block{}
		inWork := map[*ir.Block]bool{}
		for _, u := range a.Users() {
			if u.Op == ir.OpStore {
				if b := u.Block(); !inWork[b] {
					inWork[b] = true
					work = append(work, b)
				}
			}
		}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, fb := range df[b] {
				if phiFor[a][fb] != nil {
					continue
				}
				phi := ir.NewInstr(ir.OpPhi, a.Type().Elem)
				phi.SetName(a.Name() + ".m2r")
				phi.SetLoc(a.Loc())
				fb.InsertAtFront(phi)
				phiFor[a][fb] = phi
				if !inWork[fb] {
					inWork[fb] = true
					work = append(work, fb)
				}
			}
		}
	}

	// Renaming: DFS over the dominator tree carrying the current value of
	// each alloca.
	type frame struct {
		block *ir.Block
		vals  map[*ir.Instr]ir.Value
	}
	isAlloca := map[*ir.Instr]bool{}
	for _, a := range allocas {
		isAlloca[a] = true
	}
	var rename func(b *ir.Block, vals map[*ir.Instr]ir.Value)
	rename = func(b *ir.Block, vals map[*ir.Instr]ir.Value) {
		cur := map[*ir.Instr]ir.Value{}
		for k, v := range vals {
			cur[k] = v
		}
		// Phis we inserted define new values on entry.
		for _, a := range allocas {
			if phi := phiFor[a][b]; phi != nil {
				cur[a] = phi
			}
		}
		var dead []*ir.Instr
		for _, in := range b.Instrs() {
			switch in.Op {
			case ir.OpLoad:
				a, ok := in.Arg(0).(*ir.Instr)
				if !ok || !isAlloca[a] {
					continue
				}
				v := cur[a]
				if v == nil {
					v = undefFor(in.Type())
				}
				in.ReplaceAllUsesWith(v)
				dead = append(dead, in)
			case ir.OpStore:
				a, ok := in.Arg(1).(*ir.Instr)
				if !ok || !isAlloca[a] {
					continue
				}
				cur[a] = in.Arg(0)
				dead = append(dead, in)
			}
		}
		for _, in := range dead {
			b.Erase(in)
		}
		// Fill successor phis.
		for _, s := range b.Succs() {
			for _, a := range allocas {
				if phi := phiFor[a][s]; phi != nil {
					v := cur[a]
					if v == nil {
						v = undefFor(phi.Type())
					}
					// One incoming per edge; multi-edges cannot occur
					// (condbr targets are distinct by the verifier).
					if phi.PhiIncoming(b) == nil {
						phi.PhiAddIncoming(v, b)
					}
				}
			}
		}
		for _, c := range dt.Children(b) {
			rename(c, cur)
		}
	}
	rename(f.Entry(), map[*ir.Instr]ir.Value{})

	// Phis in unreachable blocks never got incomings; those blocks are not
	// visited by the dom DFS. Clean up any unreachable blocks now so the
	// function verifies.
	RemoveUnreachable(f)

	for _, a := range allocas {
		a.Block().Erase(a)
	}
	return true
}

// promotable reports whether the alloca is only loaded and stored (never
// used as a GEP base or stored *as a value*).
func promotable(a *ir.Instr) bool {
	for _, u := range a.Users() {
		switch u.Op {
		case ir.OpLoad:
		case ir.OpStore:
			if u.Arg(0) == ir.Value(a) {
				return false
			}
		default:
			return false
		}
	}
	return true
}
