package transform

import (
	"uu/internal/analysis"
	"uu/internal/ir"
	"uu/internal/remark"
)

// funcPass adapts a pass body to the analysis.Pass interface.
type funcPass struct {
	name string
	run  func(f *ir.Function, am *analysis.AnalysisManager) analysis.PreservedAnalyses
}

func (p funcPass) Name() string { return p.name }
func (p funcPass) Run(f *ir.Function, am *analysis.AnalysisManager) analysis.PreservedAnalyses {
	return p.run(f, am)
}

// NewPass wraps a run function as an analysis.Pass, for passes defined
// outside this package (the pipeline's loop-transform stage).
func NewPass(name string, run func(f *ir.Function, am *analysis.AnalysisManager) analysis.PreservedAnalyses) analysis.Pass {
	return funcPass{name, run}
}

// Mem2RegPass promotes allocas to SSA registers. It may delete unreachable
// blocks, so nothing is preserved.
func Mem2RegPass() analysis.Pass {
	return funcPass{"mem2reg", func(f *ir.Function, am *analysis.AnalysisManager) analysis.PreservedAnalyses {
		return analysis.If(mem2reg(f, am), analysis.PreserveNone())
	}}
}

// SimplifyCFGPass restructures the CFG; nothing is preserved.
func SimplifyCFGPass() analysis.Pass {
	return funcPass{"simplifycfg", func(f *ir.Function, am *analysis.AnalysisManager) analysis.PreservedAnalyses {
		return analysis.If(SimplifyCFG(f), analysis.PreserveNone())
	}}
}

// InstSimplifyPass rewrites instructions in place; the CFG (and thus the
// dominator trees and loop info) is preserved.
func InstSimplifyPass() analysis.Pass {
	return funcPass{"instsimplify", func(f *ir.Function, am *analysis.AnalysisManager) analysis.PreservedAnalyses {
		return analysis.If(InstSimplify(f), analysis.PreserveCFG())
	}}
}

// InstCombinePass rewrites instructions in place; the CFG is preserved.
func InstCombinePass() analysis.Pass {
	return funcPass{"instcombine", func(f *ir.Function, am *analysis.AnalysisManager) analysis.PreservedAnalyses {
		return analysis.If(InstCombine(f), analysis.PreserveCFG())
	}}
}

// DCEPass deletes dead instructions; the CFG is preserved.
func DCEPass() analysis.Pass {
	return funcPass{"dce", func(f *ir.Function, am *analysis.AnalysisManager) analysis.PreservedAnalyses {
		n := dceCount(f)
		if n > 0 && am.Remarks().Enabled() {
			am.Remarks().Emit(remark.Remark{
				Kind: remark.Analysis, Pass: "dce", Name: "DeadInstructions",
				Function: f.Name,
				Args:     []remark.Arg{remark.Int("Deleted", int64(n))},
			})
		}
		return analysis.If(n > 0, analysis.PreserveCFG())
	}}
}

// SCCPPass propagates constants. It preserves the CFG unless it folded a
// one-sided conditional branch.
func SCCPPass() analysis.Pass {
	return funcPass{"sccp", func(f *ir.Function, am *analysis.AnalysisManager) analysis.PreservedAnalyses {
		changed, cfgChanged := sccp(f)
		if cfgChanged {
			return analysis.PreserveNone()
		}
		return analysis.If(changed, analysis.PreserveCFG())
	}}
}

// GVNPass numbers values over the cached dominator tree. It only replaces
// and erases instructions, so the CFG is preserved.
func GVNPass(opts GVNOptions) analysis.Pass {
	return funcPass{"gvn", func(f *ir.Function, am *analysis.AnalysisManager) analysis.PreservedAnalyses {
		return analysis.If(gvn(f, am, opts), analysis.PreserveCFG())
	}}
}

// LICMPass hoists loop invariants. It may insert preheaders (a CFG change),
// but it refreshes the manager itself whenever it does, so the cached trees
// are valid again by the time it returns — the CFG shape it leaves behind is
// exactly what the caches describe.
func LICMPass() analysis.Pass {
	return funcPass{"licm", func(f *ir.Function, am *analysis.AnalysisManager) analysis.PreservedAnalyses {
		return analysis.If(licm(f, am), analysis.PreserveCFG())
	}}
}

// IfConvertPass flattens diamonds into selects; nothing is preserved.
func IfConvertPass() analysis.Pass {
	return funcPass{"ifconvert", func(f *ir.Function, am *analysis.AnalysisManager) analysis.PreservedAnalyses {
		return analysis.If(ifConvert(f, am.Remarks()), analysis.PreserveNone())
	}}
}

// AutoUnrollPass fully unrolls small constant-trip-count loops, skipping the
// headers in skip; nothing is preserved.
func AutoUnrollPass(skip map[*ir.Block]bool) analysis.Pass {
	return funcPass{"loop-unroll(auto)", func(f *ir.Function, am *analysis.AnalysisManager) analysis.PreservedAnalyses {
		return analysis.If(autoUnroll(f, am, skip), analysis.PreserveNone())
	}}
}
