package transform

import (
	"strings"
	"testing"

	"uu/internal/analysis"
	"uu/internal/interp"
	"uu/internal/ir"
	"uu/internal/irparse"
)

func parse(t *testing.T, src string) *ir.Function {
	t.Helper()
	f, err := irparse.ParseFunc(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := ir.Verify(f); err != nil {
		t.Fatalf("verify input: %v", err)
	}
	return f
}

func mustVerify(t *testing.T, f *ir.Function, stage string) {
	t.Helper()
	if err := ir.Verify(f); err != nil {
		t.Fatalf("verify after %s: %v\n%s", stage, err, f.String())
	}
}

func countOp(f *ir.Function, op ir.Op) int {
	n := 0
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			if in.Op == op {
				n++
			}
		}
	}
	return n
}

func findInstr(f *ir.Function, name string) *ir.Instr {
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			if in.Name() == name {
				return in
			}
		}
	}
	return nil
}

func TestMem2RegStraightLine(t *testing.T) {
	src := `
func @f(i64 %x) -> i64 {
entry:
  %a = alloca i64
  store i64 %x, i64* %a
  %v = load i64* %a
  %w = add i64 %v, i64 1
  store i64 %w, i64* %a
  %r = load i64* %a
  ret i64 %r
}
`
	f := parse(t, src)
	if !Mem2Reg(f) {
		t.Fatalf("Mem2Reg reported no change")
	}
	mustVerify(t, f, "mem2reg")
	if countOp(f, ir.OpAlloca)+countOp(f, ir.OpLoad)+countOp(f, ir.OpStore) != 0 {
		t.Fatalf("memory ops remain:\n%s", f.String())
	}
	ret := f.BlockByName("entry").Term()
	add, ok := ret.Arg(0).(*ir.Instr)
	if !ok || add.Op != ir.OpAdd {
		t.Fatalf("ret should return the add:\n%s", f.String())
	}
}

func TestMem2RegDiamondInsertsPhi(t *testing.T) {
	src := `
func @f(i64 %x) -> i64 {
entry:
  %a = alloca i64
  store i64 0, i64* %a
  %c = icmp sgt i64 %x, i64 0
  condbr i1 %c, %then, %else
then:
  store i64 1, i64* %a
  br %merge
else:
  store i64 2, i64* %a
  br %merge
merge:
  %r = load i64* %a
  ret i64 %r
}
`
	f := parse(t, src)
	Mem2Reg(f)
	mustVerify(t, f, "mem2reg")
	if countOp(f, ir.OpPhi) != 1 {
		t.Fatalf("want exactly 1 phi:\n%s", f.String())
	}
	phi := f.BlockByName("merge").Phis()[0]
	vals := map[int64]bool{}
	for i := 0; i < phi.NumArgs(); i++ {
		vals[phi.Arg(i).(*ir.Const).Int] = true
	}
	if !vals[1] || !vals[2] {
		t.Fatalf("phi incomings wrong:\n%s", f.String())
	}
}

func TestMem2RegLoop(t *testing.T) {
	src := `
func @f(i64 %n) -> i64 {
entry:
  %s = alloca i64
  %i = alloca i64
  store i64 0, i64* %s
  store i64 0, i64* %i
  br %head
head:
  %iv = load i64* %i
  %c = icmp slt i64 %iv, i64 %n
  condbr i1 %c, %body, %exit
body:
  %sv = load i64* %s
  %s2 = add i64 %sv, i64 %iv
  store i64 %s2, i64* %s
  %i2 = add i64 %iv, i64 1
  store i64 %i2, i64* %i
  br %head
exit:
  %r = load i64* %s
  ret i64 %r
}
`
	f := parse(t, src)
	Mem2Reg(f)
	mustVerify(t, f, "mem2reg")
	if countOp(f, ir.OpAlloca) != 0 || countOp(f, ir.OpLoad) != 0 {
		t.Fatalf("memory ops remain:\n%s", f.String())
	}
	if got := len(f.BlockByName("head").Phis()); got != 2 {
		t.Fatalf("want 2 loop phis, got %d:\n%s", got, f.String())
	}
}

func TestSCCPFoldsConstants(t *testing.T) {
	src := `
func @f() -> i64 {
entry:
  %a = add i64 2, i64 3
  %b = mul i64 %a, i64 4
  %c = icmp sgt i64 %b, i64 10
  condbr i1 %c, %then, %else
then:
  ret i64 %b
else:
  ret i64 0
}
`
	f := parse(t, src)
	SCCP(f)
	SimplifyCFG(f)
	mustVerify(t, f, "sccp+simplifycfg")
	if f.NumBlocks() != 1 {
		t.Fatalf("dead branch not removed:\n%s", f.String())
	}
	ret := f.Entry().Term()
	if c, ok := ret.Arg(0).(*ir.Const); !ok || c.Int != 20 {
		t.Fatalf("want ret 20:\n%s", f.String())
	}
}

func TestSCCPOneSidedPhi(t *testing.T) {
	// The false edge is infeasible, so the phi sees only 7.
	src := `
func @f(i64 %x) -> i64 {
entry:
  %c = icmp eq i64 1, i64 1
  condbr i1 %c, %then, %else
then:
  br %merge
else:
  br %merge
merge:
  %p = phi i64 [ 7, %then ], [ %x, %else ]
  ret i64 %p
}
`
	f := parse(t, src)
	SCCP(f)
	SimplifyCFG(f)
	mustVerify(t, f, "sccp")
	ret := f.Entry().Term()
	if c, ok := ret.Arg(0).(*ir.Const); !ok || c.Int != 7 {
		t.Fatalf("want ret 7:\n%s", f.String())
	}
}

func TestSCCPEvaluatesConstantLoop(t *testing.T) {
	// sum_{i=0}^{3} i = 6, loop fully evaluated only after unrolling makes
	// the chain acyclic... here SCCP alone cannot fold (backedge feasible),
	// so it must keep the loop. This documents the division of labour.
	src := `
func @f() -> i64 {
entry:
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i2, %head ]
  %s = phi i64 [ 0, %entry ], [ %s2, %head ]
  %s2 = add i64 %s, i64 %i
  %i2 = add i64 %i, i64 1
  %c = icmp slt i64 %i2, i64 4
  condbr i1 %c, %head, %exit
exit:
  %r = phi i64 [ %s2, %head ]
  ret i64 %r
}
`
	f := parse(t, src)
	SCCP(f)
	mustVerify(t, f, "sccp")
	if f.NumBlocks() != 3 {
		t.Fatalf("SCCP should not fold a cyclic loop by itself:\n%s", f.String())
	}
	// But AutoUnroll + SCCP + SimplifyCFG evaluate it completely.
	AutoUnroll(f, nil)
	mustVerify(t, f, "autounroll")
	for i := 0; i < 4; i++ {
		SCCP(f)
		SimplifyCFG(f)
		InstSimplify(f)
	}
	DCE(f)
	SimplifyCFG(f)
	mustVerify(t, f, "pipeline")
	if f.NumBlocks() != 1 {
		t.Fatalf("constant loop not fully evaluated:\n%s", f.String())
	}
	ret := f.Entry().Term()
	if c, ok := ret.Arg(0).(*ir.Const); !ok || c.Int != 6 {
		t.Fatalf("want ret 6:\n%s", f.String())
	}
}

func TestInstSimplifyPatterns(t *testing.T) {
	src := `
func @f(i64 %a, i64 %b) -> i64 {
entry:
  %add = add i64 %a, i64 %b
  %sub = sub i64 %add, i64 %a
  %m1 = mul i64 %sub, i64 1
  %z = sub i64 %m1, i64 0
  %x = xor i64 %z, i64 0
  ret i64 %x
}
`
	f := parse(t, src)
	InstSimplify(f)
	DCE(f)
	mustVerify(t, f, "instsimplify")
	ret := f.Entry().Term()
	if ret.Arg(0) != ir.Value(f.ParamByName("b")) {
		t.Fatalf("(a+b)-a chain should fold to b:\n%s", f.String())
	}
}

func TestInstSimplifySelectAndCmp(t *testing.T) {
	src := `
func @f(i64 %a) -> i64 {
entry:
  %c = icmp slt i64 %a, i64 %a
  %s = select i1 %c, i64 1, i64 %a
  %d = icmp sle i64 %s, i64 %s
  %s2 = select i1 %d, i64 %s, i64 9
  ret i64 %s2
}
`
	f := parse(t, src)
	InstSimplify(f)
	DCE(f)
	mustVerify(t, f, "instsimplify")
	ret := f.Entry().Term()
	if ret.Arg(0) != ir.Value(f.ParamByName("a")) {
		t.Fatalf("want ret a:\n%s", f.String())
	}
	if f.Entry().NumInstrs() != 1 {
		t.Fatalf("instructions remain:\n%s", f.String())
	}
}

func TestDCERemovesPhiCycle(t *testing.T) {
	src := `
func @f(i64 %n) {
entry:
  br %head
head:
  %dead = phi i64 [ 0, %entry ], [ %dead2, %head ]
  %i = phi i64 [ 0, %entry ], [ %i2, %head ]
  %dead2 = add i64 %dead, i64 3
  %i2 = add i64 %i, i64 1
  %c = icmp slt i64 %i2, i64 %n
  condbr i1 %c, %head, %exit
exit:
  ret
}
`
	f := parse(t, src)
	DCE(f)
	mustVerify(t, f, "dce")
	if findInstr(f, "dead") != nil || findInstr(f, "dead2") != nil {
		t.Fatalf("dead phi cycle not removed:\n%s", f.String())
	}
	if findInstr(f, "i") == nil {
		t.Fatalf("live induction removed:\n%s", f.String())
	}
}

func TestGVNBasicCSE(t *testing.T) {
	src := `
func @f(i64 %a, i64 %b) -> i64 {
entry:
  %x = add i64 %a, i64 %b
  %y = add i64 %b, i64 %a
  %z = sub i64 %x, i64 %y
  ret i64 %z
}
`
	f := parse(t, src)
	GVN(f, DefaultGVNOptions())
	InstSimplify(f)
	DCE(f)
	mustVerify(t, f, "gvn")
	ret := f.Entry().Term()
	if c, ok := ret.Arg(0).(*ir.Const); !ok || c.Int != 0 {
		t.Fatalf("commutative CSE failed; want ret 0:\n%s", f.String())
	}
}

func TestGVNLoadElimination(t *testing.T) {
	src := `
func @f(f64* noalias %x, f64* noalias %y, i64 %i) -> f64 {
entry:
  %p = gep f64* %x, i64 %i
  %v1 = load f64* %p
  %q = gep f64* %y, i64 %i
  store f64 %v1, f64* %q
  %p2 = gep f64* %x, i64 %i
  %v2 = load f64* %p2
  %s = fadd f64 %v1, f64 %v2
  ret f64 %s
}
`
	f := parse(t, src)
	GVN(f, DefaultGVNOptions())
	DCE(f)
	mustVerify(t, f, "gvn")
	if got := countOp(f, ir.OpLoad); got != 1 {
		t.Fatalf("redundant load across noalias store not removed (loads=%d):\n%s", got, f.String())
	}
}

func TestGVNLoadClobberedByMayAlias(t *testing.T) {
	src := `
func @f(f64* %x, i64 %i, i64 %j) -> f64 {
entry:
  %p = gep f64* %x, i64 %i
  %v1 = load f64* %p
  %q = gep f64* %x, i64 %j
  store f64 3.0, f64* %q
  %v2 = load f64* %p
  %s = fadd f64 %v1, f64 %v2
  ret f64 %s
}
`
	f := parse(t, src)
	GVN(f, DefaultGVNOptions())
	mustVerify(t, f, "gvn")
	if got := countOp(f, ir.OpLoad); got != 2 {
		t.Fatalf("load wrongly eliminated across may-alias store (loads=%d):\n%s", got, f.String())
	}
}

func TestGVNStoreToLoadForwarding(t *testing.T) {
	src := `
func @f(f64* %x, i64 %i, f64 %v) -> f64 {
entry:
  %p = gep f64* %x, i64 %i
  store f64 %v, f64* %p
  %l = load f64* %p
  ret f64 %l
}
`
	f := parse(t, src)
	GVN(f, DefaultGVNOptions())
	mustVerify(t, f, "gvn")
	if countOp(f, ir.OpLoad) != 0 {
		t.Fatalf("store-to-load forwarding failed:\n%s", f.String())
	}
	ret := f.Entry().Term()
	if ret.Arg(0) != ir.Value(f.ParamByName("v")) {
		t.Fatalf("want ret v:\n%s", f.String())
	}
}

func TestGVNSiblingClobber(t *testing.T) {
	// A store on one side of a diamond must kill the load fact at the merge.
	src := `
func @f(f64* %x, i64 %i, i64 %j, i1 %c) -> f64 {
entry:
  %p = gep f64* %x, i64 %i
  %v1 = load f64* %p
  condbr i1 %c, %then, %else
then:
  %q = gep f64* %x, i64 %j
  store f64 9.0, f64* %q
  br %merge
else:
  br %merge
merge:
  %v2 = load f64* %p
  %s = fadd f64 %v1, f64 %v2
  ret f64 %s
}
`
	f := parse(t, src)
	GVN(f, DefaultGVNOptions())
	mustVerify(t, f, "gvn")
	if got := countOp(f, ir.OpLoad); got != 2 {
		t.Fatalf("merge load wrongly eliminated across sibling clobber (loads=%d):\n%s", got, f.String())
	}
}

func TestGVNLoopClobberKillsPreloopFact(t *testing.T) {
	// A load before the loop must not satisfy loads inside the loop when the
	// loop stores to a may-aliasing location.
	src := `
func @f(f64* %x, i64 %i, i64 %n) {
entry:
  %p = gep f64* %x, i64 %i
  %v1 = load f64* %p
  br %head
head:
  %k = phi i64 [ 0, %entry ], [ %k2, %head ]
  %v2 = load f64* %p
  %q = gep f64* %x, i64 %k
  %w = fadd f64 %v1, f64 %v2
  store f64 %w, f64* %q
  %k2 = add i64 %k, i64 1
  %c = icmp slt i64 %k2, i64 %n
  condbr i1 %c, %head, %exit
exit:
  ret
}
`
	f := parse(t, src)
	GVN(f, DefaultGVNOptions())
	mustVerify(t, f, "gvn")
	if got := countOp(f, ir.OpLoad); got != 2 {
		t.Fatalf("in-loop load wrongly eliminated (loads=%d):\n%s", got, f.String())
	}
}

func TestGVNEqualityPropagation(t *testing.T) {
	// Below the true edge of (a == b), uses of a become b; the re-test of
	// the same condition folds away.
	src := `
func @f(i64 %a, i64 %b) -> i64 {
entry:
  %c = icmp eq i64 %a, i64 %b
  condbr i1 %c, %then, %else
then:
  %c2 = icmp eq i64 %a, i64 %b
  %s = select i1 %c2, i64 1, i64 2
  %d = sub i64 %a, i64 %b
  ret i64 %d
else:
  ret i64 9
}
`
	f := parse(t, src)
	GVN(f, DefaultGVNOptions())
	InstSimplify(f)
	DCE(f)
	mustVerify(t, f, "gvn")
	ret := f.BlockByName("then").Term()
	if c, ok := ret.Arg(0).(*ir.Const); !ok || c.Int != 0 {
		t.Fatalf("a-b below a==b should be 0:\n%s", f.String())
	}
	if findInstr(f, "c2") != nil {
		t.Fatalf("redundant condition not eliminated:\n%s", f.String())
	}
}

func TestGVNConditionRetestFolds(t *testing.T) {
	// bezier-surface pattern: once kn>1 is false it stays false; the re-test
	// in straight-line dominated code folds to false.
	src := `
func @f(i64 %kn) -> i64 {
entry:
  %c1 = icmp sgt i64 %kn, i64 1
  condbr i1 %c1, %t1, %f1
t1:
  ret i64 100
f1:
  %c2 = icmp sgt i64 %kn, i64 1
  condbr i1 %c2, %t2, %f2
t2:
  ret i64 200
f2:
  ret i64 300
}
`
	f := parse(t, src)
	GVN(f, DefaultGVNOptions())
	SimplifyCFG(f)
	mustVerify(t, f, "gvn")
	if f.BlockByName("t2") != nil {
		t.Fatalf("impossible path t2 not removed:\n%s", f.String())
	}
}

func TestGVNInversePredicate(t *testing.T) {
	// On the false edge of sgt, the sle test is true.
	src := `
func @f(i64 %a) -> i64 {
entry:
  %c1 = icmp sgt i64 %a, i64 5
  condbr i1 %c1, %t, %f
t:
  ret i64 1
f:
  %c2 = icmp sle i64 %a, i64 5
  %s = select i1 %c2, i64 10, i64 20
  ret i64 %s
}
`
	f := parse(t, src)
	GVN(f, DefaultGVNOptions())
	InstSimplify(f)
	mustVerify(t, f, "gvn")
	ret := f.BlockByName("f").Term()
	if c, ok := ret.Arg(0).(*ir.Const); !ok || c.Int != 10 {
		t.Fatalf("inverse predicate not derived:\n%s", f.String())
	}
}

func TestSimplifyCFGMergesChain(t *testing.T) {
	src := `
func @f(i64 %x) -> i64 {
entry:
  br %a
a:
  %v = add i64 %x, i64 1
  br %b
b:
  %w = add i64 %v, i64 2
  br %c
c:
  ret i64 %w
}
`
	f := parse(t, src)
	SimplifyCFG(f)
	mustVerify(t, f, "simplifycfg")
	if f.NumBlocks() != 1 {
		t.Fatalf("chain not merged:\n%s", f.String())
	}
}

func TestIfConvertDiamond(t *testing.T) {
	src := `
func @f(i64 %x) -> i64 {
entry:
  %c = icmp sgt i64 %x, i64 0
  condbr i1 %c, %then, %else
then:
  %a = add i64 %x, i64 1
  br %merge
else:
  %b = sub i64 %x, i64 1
  br %merge
merge:
  %m = phi i64 [ %a, %then ], [ %b, %else ]
  ret i64 %m
}
`
	f := parse(t, src)
	if !IfConvert(f) {
		t.Fatalf("IfConvert did nothing")
	}
	SimplifyCFG(f)
	mustVerify(t, f, "ifconvert")
	if countOp(f, ir.OpSelect) != 1 || countOp(f, ir.OpCondBr) != 0 {
		t.Fatalf("diamond not predicated:\n%s", f.String())
	}
}

func TestIfConvertTriangleXSBenchShape(t *testing.T) {
	// if (c) upper=mid else lower=mid — two-phi empty diamond becomes two
	// selects, as the baseline PTX in the paper (Listing 4) shows.
	src := `
func @f(i64 %up, i64 %lo, i64 %mid, i1 %c) -> i64 {
entry:
  condbr i1 %c, %then, %else
then:
  br %merge
else:
  br %merge
merge:
  %u2 = phi i64 [ %mid, %then ], [ %up, %else ]
  %l2 = phi i64 [ %lo, %then ], [ %mid, %else ]
  %len = sub i64 %u2, i64 %l2
  ret i64 %len
}
`
	f := parse(t, src)
	IfConvert(f)
	SimplifyCFG(f)
	mustVerify(t, f, "ifconvert")
	if countOp(f, ir.OpSelect) != 2 || f.NumBlocks() != 1 {
		t.Fatalf("empty diamond not fully predicated:\n%s", f.String())
	}
}

func TestIfConvertRefusesStores(t *testing.T) {
	src := `
func @f(i64* %p, i1 %c) {
entry:
  condbr i1 %c, %then, %merge
then:
  store i64 1, i64* %p
  br %merge
merge:
  ret
}
`
	f := parse(t, src)
	if IfConvert(f) {
		t.Fatalf("IfConvert speculated a store:\n%s", f.String())
	}
}

func TestIfConvertRefusesLargeSides(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("func @f(i64 %x, i1 %c) -> i64 {\nentry:\n  condbr i1 %c, %then, %merge\nthen:\n")
	prev := "%x"
	for i := 0; i < IfConvertThreshold+1; i++ {
		cur := "%v" + string(rune('a'+i))
		sb.WriteString("  " + cur + " = add i64 " + prev + ", i64 1\n")
		prev = cur
	}
	sb.WriteString("  br %merge\nmerge:\n  %m = phi i64 [ " + prev + ", %then ], [ %x, %entry ]\n  ret i64 %m\n}\n")
	f := parse(t, sb.String())
	if IfConvert(f) {
		t.Fatalf("IfConvert exceeded threshold:\n%s", f.String())
	}
}

const countLoopSrc = `
func @count(i64 %n) -> i64 {
entry:
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i2, %body ]
  %s = phi i64 [ 0, %entry ], [ %s2, %body ]
  %c = icmp slt i64 %i, i64 %n
  condbr i1 %c, %body, %exit
body:
  %s2 = add i64 %s, i64 %i
  %i2 = add i64 %i, i64 1
  br %head
exit:
  %r = phi i64 [ %s, %head ]
  ret i64 %r
}
`

func TestUnrollLoopStructure(t *testing.T) {
	f := parse(t, countLoopSrc)
	li := analysis.NewLoopInfo(f, analysis.NewDomTree(f))
	if !UnrollLoop(f, li.Loops[0], 4) {
		t.Fatalf("UnrollLoop failed")
	}
	mustVerify(t, f, "unroll")
	// 4 copies of (head, body) chained: head appears 4 times.
	heads := 0
	for _, b := range f.Blocks() {
		if strings.HasPrefix(b.Name, "head") {
			heads++
		}
	}
	if heads != 4 {
		t.Fatalf("want 4 header copies, got %d:\n%s", heads, f.String())
	}
	// Still exactly one loop (the chain), with 4 exiting blocks.
	li2 := analysis.NewLoopInfo(f, analysis.NewDomTree(f))
	if len(li2.Loops) != 1 {
		t.Fatalf("want 1 loop after unroll, got %d", len(li2.Loops))
	}
	if got := len(li2.Loops[0].ExitingBlocks()); got != 4 {
		t.Fatalf("want 4 exiting blocks, got %d", got)
	}
}

func TestUnrollPreservesSum(t *testing.T) {
	// Semantic check via the reference interpreter on several trip counts,
	// including ones that are not multiples of the unroll factor.
	evaluate := func(unroll int, n int64) int64 {
		f := parse(t, countLoopSrc)
		if unroll > 1 {
			li := analysis.NewLoopInfo(f, analysis.NewDomTree(f))
			if !UnrollLoop(f, li.Loops[0], unroll) {
				t.Fatalf("unroll by %d failed", unroll)
			}
			mustVerify(t, f, "unroll")
		}
		v, err := interp.Run(f, []interp.Value{interp.IntVal(n)}, interp.NewMemory(0), interp.Env{})
		if err != nil {
			t.Fatalf("interp (unroll=%d n=%d): %v", unroll, n, err)
		}
		return v.I
	}
	for _, n := range []int64{0, 1, 2, 3, 7, 10, 16} {
		want := evaluate(1, n)
		if n == 10 && want != 45 {
			t.Fatalf("baseline sum(10) = %d, want 45", want)
		}
		for _, u := range []int{2, 3, 4, 8} {
			if got := evaluate(u, n); got != want {
				t.Fatalf("unroll %d changed semantics for n=%d: got %d want %d", u, n, got, want)
			}
		}
	}
}

func TestUnrollSingleBlockLoop(t *testing.T) {
	src := `
func @f(i64 %n) -> i64 {
entry:
  br %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i2, %loop ]
  %i2 = add i64 %i, i64 1
  %c = icmp slt i64 %i2, i64 %n
  condbr i1 %c, %loop, %exit
exit:
  %r = phi i64 [ %i2, %loop ]
  ret i64 %r
}
`
	f := parse(t, src)
	li := analysis.NewLoopInfo(f, analysis.NewDomTree(f))
	if !UnrollLoop(f, li.Loops[0], 2) {
		t.Fatalf("unroll failed")
	}
	mustVerify(t, f, "unroll self-loop")
}

func TestLICMHoistsInvariant(t *testing.T) {
	src := `
func @f(i64 %a, i64 %b, i64 %n) -> i64 {
entry:
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i2, %head ]
  %s = phi i64 [ 0, %entry ], [ %s2, %head ]
  %inv = mul i64 %a, i64 %b
  %s2 = add i64 %s, i64 %inv
  %i2 = add i64 %i, i64 1
  %c = icmp slt i64 %i2, i64 %n
  condbr i1 %c, %head, %exit
exit:
  %r = phi i64 [ %s2, %head ]
  ret i64 %r
}
`
	f := parse(t, src)
	if !LICM(f) {
		t.Fatalf("LICM did nothing")
	}
	mustVerify(t, f, "licm")
	inv := findInstr(f, "inv")
	li := analysis.NewLoopInfo(f, analysis.NewDomTree(f))
	if li.Loops[0].Contains(inv.Block()) {
		t.Fatalf("invariant not hoisted:\n%s", f.String())
	}
}

func TestEnsurePreheaderAndLCSSA(t *testing.T) {
	// Two outside predecessors of the loop header: EnsurePreheader must fold
	// them through a new preheader and split the header phi's incomings.
	src := `
func @f(i64 %n, i1 %c0) -> i64 {
entry:
  condbr i1 %c0, %a, %b
a:
  br %loop
b:
  br %loop
loop:
  %i = phi i64 [ 1, %a ], [ 2, %b ], [ %i2, %loop ]
  %i2 = add i64 %i, i64 1
  %c = icmp slt i64 %i2, i64 %n
  condbr i1 %c, %loop, %exit
exit:
  ret i64 %i2
}
`
	f := parse(t, src)
	li := analysis.NewLoopInfo(f, analysis.NewDomTree(f))
	l := li.Loops[0]
	ph := EnsurePreheader(f, l)
	mustVerify(t, f, "preheader")
	if got := l.Header.NumPreds(); got != 2 {
		t.Fatalf("header preds = %d, want 2 (preheader + latch):\n%s", got, f.String())
	}
	if len(ph.Phis()) != 1 {
		t.Fatalf("preheader should hold the split phi:\n%s", f.String())
	}
	// Run again: idempotent.
	li = analysis.NewLoopInfo(f, analysis.NewDomTree(f))
	if EnsurePreheader(f, li.Loops[0]) != ph {
		t.Fatalf("EnsurePreheader not idempotent")
	}
	EnsureLCSSA(f, li.Loops[0])
	mustVerify(t, f, "lcssa")
	exit := f.BlockByName("exit")
	ret := exit.Term()
	phi, ok := ret.Arg(0).(*ir.Instr)
	if !ok || !phi.IsPhi() || phi.Block() != exit {
		t.Fatalf("use not routed through LCSSA phi:\n%s", f.String())
	}
}

func TestInstCombineStrengthReduction(t *testing.T) {
	src := `
func @f(i64 %x) -> i64 {
entry:
  %nn = lshr i64 %x, i64 1
  %m = mul i64 %nn, i64 8
  %d = udiv i64 %m, i64 4
  %r = urem i64 %d, i64 16
  %sd = sdiv i64 %r, i64 2
  ret i64 %sd
}
`
	f := parse(t, src)
	if !InstCombine(f) {
		t.Fatalf("InstCombine did nothing")
	}
	mustVerify(t, f, "instcombine")
	if countOp(f, ir.OpMul) != 0 || countOp(f, ir.OpUDiv) != 0 || countOp(f, ir.OpURem) != 0 {
		t.Fatalf("strength reduction incomplete:\n%s", f.String())
	}
	// sdiv of a urem result (non-negative) becomes ashr.
	if countOp(f, ir.OpSDiv) != 0 || countOp(f, ir.OpAShr) != 1 {
		t.Fatalf("sdiv by 2 of non-negative not reduced:\n%s", f.String())
	}
	// Semantics preserved for a sample of values.
	for _, x := range []int64{0, 1, 5, 1023, 1 << 40, -3, -1024} {
		want := ((((x >> 1) * 8) / 4) % 16) / 2
		if x>>1 < 0 {
			continue
		}
		got, err := interp.Run(f, []interp.Value{interp.IntVal(x)}, interp.NewMemory(0), interp.Env{})
		if err != nil {
			t.Fatalf("interp: %v", err)
		}
		_ = want
		// Compare against the unoptimized reference.
		ref := parse(t, src)
		rv, err := interp.Run(ref, []interp.Value{interp.IntVal(x)}, interp.NewMemory(0), interp.Env{})
		if err != nil {
			t.Fatalf("ref interp: %v", err)
		}
		if got.I != rv.I {
			t.Fatalf("x=%d: got %d want %d", x, got.I, rv.I)
		}
	}
}

func TestInstCombineRefusesSignedNegativeDiv(t *testing.T) {
	// sdiv by a power of two must NOT become ashr when the dividend may be
	// negative: -7/2 == -3 but -7>>1 == -4.
	src := `
func @f(i64 %x) -> i64 {
entry:
  %d = sdiv i64 %x, i64 2
  ret i64 %d
}
`
	f := parse(t, src)
	InstCombine(f)
	mustVerify(t, f, "instcombine")
	if countOp(f, ir.OpSDiv) != 1 {
		t.Fatalf("unsound sdiv reduction:\n%s", f.String())
	}
	got, err := interp.Run(f, []interp.Value{interp.IntVal(-7)}, interp.NewMemory(0), interp.Env{})
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	if got.I != -3 {
		t.Fatalf("sdiv(-7,2) = %d, want -3", got.I)
	}
}

func TestInstCombineSelectZext(t *testing.T) {
	src := `
func @f(i64 %a, i64 %b) -> i64 {
entry:
  %c = icmp slt i64 %a, i64 %b
  %s = select i1 %c, i64 1, i64 0
  ret i64 %s
}
`
	f := parse(t, src)
	if !InstCombine(f) {
		t.Fatalf("select 1/0 not combined")
	}
	mustVerify(t, f, "instcombine")
	if countOp(f, ir.OpSelect) != 0 || countOp(f, ir.OpZExt) != 1 {
		t.Fatalf("want zext:\n%s", f.String())
	}
}

func TestSimplifyCFGForwardingBlock(t *testing.T) {
	src := `
func @f(i64 %x) -> i64 {
entry:
  %c = icmp sgt i64 %x, i64 0
  condbr i1 %c, %fwd, %other
fwd:
  br %merge
other:
  br %merge
merge:
  %m = phi i64 [ 1, %fwd ], [ 2, %other ]
  ret i64 %m
}
`
	f := parse(t, src)
	SimplifyCFG(f)
	mustVerify(t, f, "simplifycfg")
	// Forwarding blocks thread through; the phi must keep distinguishing the
	// two edges (now directly from entry — impossible, so at least one
	// forwarding block must survive).
	v1, err := interp.Run(f, []interp.Value{interp.IntVal(5)}, interp.NewMemory(0), interp.Env{})
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	if v1.I != 1 {
		t.Fatalf("f(5) = %d, want 1", v1.I)
	}
	v2, err := interp.Run(f, []interp.Value{interp.IntVal(-5)}, interp.NewMemory(0), interp.Env{})
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	if v2.I != 2 {
		t.Fatalf("f(-5) = %d, want 2", v2.I)
	}
}

func TestFoldToUncondUpdatesPhis(t *testing.T) {
	src := `
func @f() -> i64 {
entry:
  condbr i1 1, %a, %b
a:
  br %m
b:
  br %m
m:
  %p = phi i64 [ 10, %a ], [ 20, %b ]
  ret i64 %p
}
`
	f := parse(t, src)
	FoldToUncond(f.Entry(), f.BlockByName("a"))
	RemoveUnreachable(f)
	CollapseSinglePredPhis(f)
	mustVerify(t, f, "fold")
	v, err := interp.Run(f, nil, interp.NewMemory(0), interp.Env{})
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	if v.I != 10 {
		t.Fatalf("got %d, want 10", v.I)
	}
}

func TestRemoveUnreachableRegion(t *testing.T) {
	// An unreachable two-block cycle referencing a live block's value.
	f := ir.NewFunction("u", ir.Void)
	entry := f.NewBlock("entry")
	d1 := f.NewBlock("d1")
	d2 := f.NewBlock("d2")
	b := ir.NewBuilder(entry)
	b.Ret(nil)
	b.SetBlock(d1)
	x := b.Add(ir.ConstInt(ir.I64, 1), ir.ConstInt(ir.I64, 2))
	b.Br(d2)
	b.SetBlock(d2)
	y := b.Add(x, ir.ConstInt(ir.I64, 3))
	_ = y
	b.Br(d1)
	if !RemoveUnreachable(f) {
		t.Fatalf("nothing removed")
	}
	if f.NumBlocks() != 1 {
		t.Fatalf("blocks = %d, want 1", f.NumBlocks())
	}
	mustVerify(t, f, "remove-unreachable")
}

func TestGVNBarrierClobbersLoads(t *testing.T) {
	src := `
func @f(f64* noalias %x, i64 %i) -> f64 {
entry:
  %p = gep f64* %x, i64 %i
  %v1 = load f64* %p
  barrier
  %v2 = load f64* %p
  %s = fadd f64 %v1, f64 %v2
  ret f64 %s
}
`
	f := parse(t, src)
	GVN(f, DefaultGVNOptions())
	mustVerify(t, f, "gvn")
	if got := countOp(f, ir.OpLoad); got != 2 {
		t.Fatalf("load reused across barrier (loads=%d)", got)
	}
}

func TestAutoUnrollRespectsSkipSet(t *testing.T) {
	src := `
func @f(i64* noalias %out) {
entry:
  br %h
h:
  %i = phi i64 [ 0, %entry ], [ %i2, %h ]
  %p = gep i64* %out, i64 %i
  store i64 %i, i64* %p
  %i2 = add i64 %i, i64 1
  %c = icmp slt i64 %i2, i64 4
  condbr i1 %c, %h, %exit
exit:
  ret
}
`
	f := parse(t, src)
	li := analysis.NewLoopInfo(f, analysis.NewDomTree(f))
	skip := map[*ir.Block]bool{li.Loops[0].Header: true}
	if AutoUnroll(f, skip) {
		t.Fatalf("AutoUnroll ignored the skip set")
	}
	if !AutoUnroll(f, nil) {
		t.Fatalf("AutoUnroll failed on a trip-4 loop")
	}
	mustVerify(t, f, "autounroll")
}

func TestLICMDoesNotHoistClobberedLoad(t *testing.T) {
	src := `
func @f(f64* %x, f64* %y, i64 %n) {
entry:
  br %h
h:
  %i = phi i64 [ 0, %entry ], [ %i2, %h ]
  %v = load f64* %x
  %p = gep f64* %y, i64 %i
  store f64 %v, f64* %p
  %i2 = add i64 %i, i64 1
  %c = icmp slt i64 %i2, i64 %n
  condbr i1 %c, %h, %exit
exit:
  ret
}
`
	// x and y are NOT restrict: the store may alias the load, so LICM must
	// leave the load inside the loop.
	f := parse(t, src)
	LICM(f)
	mustVerify(t, f, "licm")
	li := analysis.NewLoopInfo(f, analysis.NewDomTree(f))
	ld := findLoad(f)
	if ld == nil || !li.Loops[0].Contains(ld.Block()) {
		t.Fatalf("may-aliased load was hoisted:\n%s", f.String())
	}
}

func TestLICMHoistsRestrictLoad(t *testing.T) {
	src := `
func @f(f64* noalias %x, f64* noalias %y, i64 %n) {
entry:
  br %h
h:
  %i = phi i64 [ 0, %entry ], [ %i2, %h ]
  %v = load f64* %x
  %p = gep f64* %y, i64 %i
  store f64 %v, f64* %p
  %i2 = add i64 %i, i64 1
  %c = icmp slt i64 %i2, i64 %n
  condbr i1 %c, %h, %exit
exit:
  ret
}
`
	f := parse(t, src)
	LICM(f)
	mustVerify(t, f, "licm")
	li := analysis.NewLoopInfo(f, analysis.NewDomTree(f))
	ld := findLoad(f)
	if ld == nil {
		t.Fatalf("load vanished")
	}
	if len(li.Loops) > 0 && li.Loops[0].Contains(ld.Block()) {
		t.Fatalf("restrict load not hoisted:\n%s", f.String())
	}
}

func findLoad(f *ir.Function) *ir.Instr {
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			if in.Op == ir.OpLoad {
				return in
			}
		}
	}
	return nil
}

func TestSplitCriticalEdge(t *testing.T) {
	src := `
func @f(i1 %c, i64 %x) -> i64 {
entry:
  condbr i1 %c, %m, %other
other:
  br %m
m:
  %p = phi i64 [ 1, %entry ], [ 2, %other ]
  ret i64 %p
}
`
	f := parse(t, src)
	entry := f.Entry()
	m := f.BlockByName("m")
	mid := SplitCriticalEdge(f, entry, m)
	mustVerify(t, f, "split")
	if !m.HasPred(mid) || m.HasPred(entry) {
		t.Fatalf("edge not rewired")
	}
	phi := m.Phis()[0]
	if phi.PhiIncoming(mid) == nil {
		t.Fatalf("phi incoming not moved to the split block")
	}
}

// sharedExitSrc has two sequential do-while loops where the first loop's
// only exit block is the second loop's header: %h2 is reached both from
// inside loop 1 (via %h1) and from outside it (its own backedge). Before
// exits were made dedicated, EnsureLCSSA placed the %i2 LCSSA phi directly
// in %h2 with a def incoming for the backedge pred, so after unrolling the
// phi re-read a stale pre-unroll value on every loop-2 iteration.
const sharedExitSrc = `
func @shared(i64 %n) -> i64 {
entry:
  br %h1
h1:
  %i = phi i64 [ 0, %entry ], [ %i2, %h1 ]
  %i2 = add i64 %i, i64 1
  %c1 = icmp slt i64 %i2, i64 %n
  condbr i1 %c1, %h1, %h2
h2:
  %j = phi i64 [ 0, %h1 ], [ %j2, %h2 ]
  %j2 = add i64 %j, i64 1
  %c2 = icmp slt i64 %j2, i64 3
  condbr i1 %c2, %h2, %exit
exit:
  %s = add i64 %j2, i64 %i2
  ret i64 %s
}
`

func TestEnsureDedicatedExits(t *testing.T) {
	f := parse(t, sharedExitSrc)
	li := analysis.NewLoopInfo(f, analysis.NewDomTree(f))
	l := li.Loops[0]
	if l.Header.Name != "h1" {
		l = li.Loops[1]
	}
	if !EnsureDedicatedExits(f, l) {
		t.Fatalf("shared exit not split")
	}
	mustVerify(t, f, "dedicated exits")
	for _, e := range l.ExitBlocks() {
		for _, p := range e.Preds() {
			if !l.Contains(p) {
				t.Fatalf("exit %s still has out-of-loop pred %s:\n%s", e.Name, p.Name, f.String())
			}
		}
	}
	if EnsureDedicatedExits(f, l) {
		t.Fatalf("second EnsureDedicatedExits changed the CFG")
	}
}

func TestUnrollLoopSharedExitHeader(t *testing.T) {
	for _, factor := range []int{2, 3, 4} {
		for n := int64(1); n <= 9; n++ {
			ref := parse(t, sharedExitSrc)
			want, err := interp.Run(ref, []interp.Value{interp.IntVal(n)}, interp.NewMemory(0), interp.Env{})
			if err != nil {
				t.Fatalf("ref interp n=%d: %v", n, err)
			}
			f := parse(t, sharedExitSrc)
			li := analysis.NewLoopInfo(f, analysis.NewDomTree(f))
			l := li.Loops[0]
			if l.Header.Name != "h1" {
				l = li.Loops[1]
			}
			if !UnrollLoop(f, l, factor) {
				t.Fatalf("unroll by %d failed", factor)
			}
			mustVerify(t, f, "unroll shared-exit loop")
			got, err := interp.Run(f, []interp.Value{interp.IntVal(n)}, interp.NewMemory(0), interp.Env{})
			if err != nil {
				t.Fatalf("interp factor=%d n=%d: %v\n%s", factor, n, err, f.String())
			}
			if got.I != want.I {
				t.Fatalf("factor=%d n=%d: got %d want %d\n%s", factor, n, got.I, want.I, f.String())
			}
		}
	}
}
