package transform

import "uu/internal/ir"

// latKind is the SCCP lattice: unknown (top) -> constant -> overdefined.
type latKind int

const (
	latUnknown latKind = iota
	latConst
	latOver
)

type latVal struct {
	kind latKind
	c    *ir.Const
}

// SCCP is sparse conditional constant propagation (Wegman-Zadeck): it
// simultaneously tracks constant values and CFG edge feasibility, so
// constants propagate through branches that are provably one-sided — e.g.
// it fully evaluates an unrolled constant-trip-count loop, which is how the
// baseline pipeline's full unrolling collapses (see transform.AutoUnroll).
// Afterwards, constant instructions are replaced and one-sided conditional
// branches folded; SimplifyCFG removes the unreachable remains.
func SCCP(f *ir.Function) bool {
	changed, _ := sccp(f)
	return changed
}

// sccp is SCCP's body; it additionally reports whether the rewrite changed
// the CFG (folded a one-sided conditional branch), which decides whether the
// pass can preserve the cached dominator trees.
func sccp(f *ir.Function) (changed, cfgChanged bool) {
	vals := map[*ir.Instr]latVal{}
	execEdge := map[[2]*ir.Block]bool{}
	execBlock := map[*ir.Block]bool{}

	var instrWork []*ir.Instr
	var blockWork []*ir.Block

	lookup := func(v ir.Value) latVal {
		switch x := v.(type) {
		case *ir.Const:
			return latVal{latConst, x}
		case *ir.Param:
			return latVal{kind: latOver}
		case *ir.Instr:
			return vals[x]
		}
		return latVal{kind: latOver}
	}
	setVal := func(in *ir.Instr, nv latVal) {
		old := vals[in]
		if old.kind == nv.kind && (old.kind != latConst || ir.SameConst(old.c, nv.c)) {
			return
		}
		// Monotonic only downward.
		if old.kind == latOver {
			return
		}
		if old.kind == latConst && nv.kind == latConst && !ir.SameConst(old.c, nv.c) {
			nv = latVal{kind: latOver}
		}
		vals[in] = nv
		for _, u := range in.Users() {
			instrWork = append(instrWork, u)
		}
	}
	markEdge := func(from, to *ir.Block) {
		key := [2]*ir.Block{from, to}
		if execEdge[key] {
			return
		}
		execEdge[key] = true
		if !execBlock[to] {
			execBlock[to] = true
			blockWork = append(blockWork, to)
		} else {
			// New edge into an already-executable block: phis must re-meet.
			for _, phi := range to.Phis() {
				instrWork = append(instrWork, phi)
			}
		}
	}

	visit := func(in *ir.Instr) {
		b := in.Block()
		if !execBlock[b] {
			return
		}
		switch {
		case in.IsPhi():
			nv := latVal{kind: latUnknown}
			for i := 0; i < in.NumArgs(); i++ {
				if !execEdge[[2]*ir.Block{in.BlockArg(i), b}] {
					continue
				}
				iv := lookup(in.Arg(i))
				switch iv.kind {
				case latUnknown:
				case latOver:
					nv = latVal{kind: latOver}
				case latConst:
					if nv.kind == latUnknown {
						nv = iv
					} else if nv.kind == latConst && !ir.SameConst(nv.c, iv.c) {
						nv = latVal{kind: latOver}
					}
				}
			}
			setVal(in, nv)
		case in.Op == ir.OpBr:
			markEdge(b, in.BlockArg(0))
		case in.Op == ir.OpCondBr:
			cv := lookup(in.Arg(0))
			switch cv.kind {
			case latConst:
				if cv.c.Int != 0 {
					markEdge(b, in.BlockArg(0))
				} else {
					markEdge(b, in.BlockArg(1))
				}
			case latOver:
				markEdge(b, in.BlockArg(0))
				markEdge(b, in.BlockArg(1))
			}
		case in.Op == ir.OpRet, in.Op == ir.OpStore, in.Op == ir.OpBarrier:
			// No value.
		case in.Op == ir.OpLoad, in.Op == ir.OpAlloca, in.Op == ir.OpGEP,
			in.Op == ir.OpTID, in.Op == ir.OpNTID, in.Op == ir.OpCTAID, in.Op == ir.OpNCTAID:
			setVal(in, latVal{kind: latOver})
		default:
			// Pure scalar ops: fold when all operands constant.
			anyUnknown := false
			var consts []*ir.Const
			for i := 0; i < in.NumArgs(); i++ {
				av := lookup(in.Arg(i))
				switch av.kind {
				case latUnknown:
					anyUnknown = true
				case latOver:
					setVal(in, latVal{kind: latOver})
					return
				case latConst:
					consts = append(consts, av.c)
				}
			}
			if anyUnknown {
				return
			}
			var r *ir.Const
			switch {
			case in.Op == ir.OpICmp || in.Op == ir.OpFCmp:
				r = ir.FoldCompare(in.Op, in.Pred, consts[0], consts[1])
			case in.Op == ir.OpSelect:
				if consts[0].Int != 0 {
					r = consts[1]
				} else {
					r = consts[2]
				}
			case len(consts) == 1:
				r = ir.FoldUnary(in.Op, consts[0], in.Type())
			case len(consts) == 2:
				r = ir.FoldBinary(in.Op, consts[0], consts[1])
			}
			if r == nil {
				setVal(in, latVal{kind: latOver})
			} else {
				setVal(in, latVal{latConst, r})
			}
		}
	}

	execBlock[f.Entry()] = true
	blockWork = append(blockWork, f.Entry())
	for len(blockWork) > 0 || len(instrWork) > 0 {
		if n := len(blockWork); n > 0 {
			b := blockWork[n-1]
			blockWork = blockWork[:n-1]
			for _, in := range b.Instrs() {
				visit(in)
			}
			continue
		}
		n := len(instrWork)
		in := instrWork[n-1]
		instrWork = instrWork[:n-1]
		visit(in)
	}

	// Rewrite: replace constant instructions, fold one-sided branches.
	for _, b := range f.Blocks() {
		if !execBlock[b] {
			continue // unreachable; SimplifyCFG removes it
		}
		for _, in := range append([]*ir.Instr(nil), b.Instrs()...) {
			if lv := vals[in]; lv.kind == latConst && in.Type() != ir.Void {
				in.ReplaceAllUsesWith(lv.c)
				if !in.HasSideEffects() {
					b.Erase(in)
				}
				changed = true
			}
		}
		t := b.Term()
		if t != nil && t.Op == ir.OpCondBr {
			e0 := execEdge[[2]*ir.Block{b, t.BlockArg(0)}]
			e1 := execEdge[[2]*ir.Block{b, t.BlockArg(1)}]
			if e0 != e1 {
				keep := t.BlockArg(0)
				if e1 {
					keep = t.BlockArg(1)
				}
				FoldToUncond(b, keep)
				changed = true
				cfgChanged = true
			}
		}
	}
	return changed, cfgChanged
}
