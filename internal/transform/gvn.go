package transform

import (
	"fmt"
	"sort"
	"strings"

	"uu/internal/analysis"
	"uu/internal/ir"
	"uu/internal/remark"
)

// GVNOptions controls the optional capabilities of the GVN pass; both are on
// in the standard pipelines and can be disabled for ablation studies.
type GVNOptions struct {
	// PropagateEqualities records branch-condition facts on dominated edges
	// (c is true below the taken edge, a == b below an eq-comparison) and
	// rewrites dominated uses accordingly. This is the mechanism that turns
	// the control-flow provenance exposed by unmerging into deleted
	// condition checks (bezier-surface, rainflow).
	PropagateEqualities bool
	// EliminateLoads forwards stores to loads and unifies redundant loads
	// using the alias analysis. This is the "read elimination" the paper
	// credits for rainflow's and XSBench's data-movement savings.
	EliminateLoads bool
}

// DefaultGVNOptions enables every capability.
func DefaultGVNOptions() GVNOptions {
	return GVNOptions{PropagateEqualities: true, EliminateLoads: true}
}

// GVN performs dominator-scoped global value numbering: a DFS over the
// dominator tree carries a scoped expression table (CSE), a scoped
// replacement map fed by branch-edge equalities, and a scoped list of memory
// facts for load elimination. Memory facts honor the alias analysis and are
// invalidated across loop boundaries using per-loop store summaries, and
// across sibling subtrees by bubbling clobbers up to the parent scope.
func GVN(f *ir.Function, opts GVNOptions) bool {
	return gvn(f, analysis.NewAnalysisManager(f), opts)
}

// gvn is GVN against a caller-provided analysis manager. GVN never changes
// the CFG (it only replaces and erases instructions), so the cached trees
// stay valid throughout.
func gvn(f *ir.Function, am *analysis.AnalysisManager, opts GVNOptions) bool {
	g := &gvnState{
		opts:     opts,
		ids:      map[ir.Value]int{},
		constIDs: map[string]int{},
		leaders:  map[string]ir.Value{},
		repl:     map[ir.Value]ir.Value{},
	}
	dt := am.DomTree()
	li := am.LoopInfo()
	rpo := map[*ir.Block]int{}
	{
		i := 0
		seen := map[*ir.Block]bool{}
		var order []*ir.Block
		var dfs func(b *ir.Block)
		dfs = func(b *ir.Block) {
			seen[b] = true
			for _, s := range b.Succs() {
				if !seen[s] {
					dfs(s)
				}
			}
			order = append(order, b)
		}
		dfs(f.Entry())
		for j := len(order) - 1; j >= 0; j-- {
			rpo[order[j]] = i
			i++
		}
	}
	g.walk(f.Entry(), dt, li, rpo)
	if g.changed && am.Remarks().Enabled() {
		am.Remarks().Emit(remark.Remark{
			Kind: remark.Analysis, Pass: "gvn", Name: "ValueNumbering",
			Function: f.Name,
			Args: []remark.Arg{
				remark.Int("Erased", int64(g.erased)),
				remark.Int("OperandRewrites", int64(g.rewrites)),
			},
		})
	}
	return g.changed
}

type memFact struct {
	ptr        ir.Value // nil for clobber-all
	val        ir.Value // forwarded value; nil for pseudo-clobbers
	isStore    bool
	clobberAll bool
}

type scopeUndo struct {
	leaderKeys []string
	leaderPrev []ir.Value
	replKeys   []ir.Value
	replPrev   []ir.Value
	factMark   int
	clobbers   []memFact // clobbers performed in this scope (bubble to parent)
}

type gvnState struct {
	opts     GVNOptions
	ids      map[ir.Value]int
	constIDs map[string]int
	nextID   int
	leaders  map[string]ir.Value
	repl     map[ir.Value]ir.Value
	facts    []memFact
	scopes   []*scopeUndo
	changed  bool
	// erased counts instructions deleted (CSE hits, forwarded loads,
	// simplifications); rewrites counts operand replacements from propagated
	// equalities. Both feed the pass's ValueNumbering remark.
	erased   int
	rewrites int
}

func (g *gvnState) id(v ir.Value) int {
	if id, ok := g.ids[v]; ok {
		return id
	}
	if c, ok := v.(*ir.Const); ok {
		// Constants get content-based ids so equal constants share a number.
		key := "c:" + c.Typ.String() + ":" + c.Ref()
		if id, ok := g.constIDs[key]; ok {
			g.ids[v] = id
			return id
		}
		g.nextID++
		g.constIDs[key] = g.nextID
		g.ids[v] = g.nextID
		return g.nextID
	}
	g.nextID++
	g.ids[v] = g.nextID
	return g.nextID
}

func (g *gvnState) scope() *scopeUndo { return g.scopes[len(g.scopes)-1] }

func (g *gvnState) pushScope() {
	g.scopes = append(g.scopes, &scopeUndo{factMark: len(g.facts)})
}

func (g *gvnState) popScope() *scopeUndo {
	s := g.scope()
	for i := len(s.leaderKeys) - 1; i >= 0; i-- {
		if s.leaderPrev[i] == nil {
			delete(g.leaders, s.leaderKeys[i])
		} else {
			g.leaders[s.leaderKeys[i]] = s.leaderPrev[i]
		}
	}
	for i := len(s.replKeys) - 1; i >= 0; i-- {
		if s.replPrev[i] == nil {
			delete(g.repl, s.replKeys[i])
		} else {
			g.repl[s.replKeys[i]] = s.replPrev[i]
		}
	}
	g.facts = g.facts[:s.factMark]
	g.scopes = g.scopes[:len(g.scopes)-1]
	return s
}

func (g *gvnState) setLeader(key string, v ir.Value) {
	s := g.scope()
	s.leaderKeys = append(s.leaderKeys, key)
	s.leaderPrev = append(s.leaderPrev, g.leaders[key])
	g.leaders[key] = v
}

func (g *gvnState) setRepl(from, to ir.Value) {
	if from == to {
		return
	}
	s := g.scope()
	s.replKeys = append(s.replKeys, from)
	s.replPrev = append(s.replPrev, g.repl[from])
	g.repl[from] = to
}

// resolve follows the replacement chain for v.
func (g *gvnState) resolve(v ir.Value) ir.Value {
	for i := 0; i < 64; i++ {
		nv, ok := g.repl[v]
		if !ok {
			return v
		}
		v = nv
	}
	return v
}

func (g *gvnState) addClobber(c memFact) {
	g.facts = append(g.facts, c)
	g.scope().clobbers = append(g.scope().clobbers, c)
}

// exprKey builds the hash key of a pure instruction, canonicalizing
// commutative operands and comparison direction.
func (g *gvnState) exprKey(in *ir.Instr) (string, bool) {
	switch in.Op {
	case ir.OpLoad, ir.OpStore, ir.OpAlloca, ir.OpBarrier,
		ir.OpBr, ir.OpCondBr, ir.OpRet,
		ir.OpTID, ir.OpNTID, ir.OpCTAID, ir.OpNCTAID:
		return "", false
	}
	var sb strings.Builder
	a0, a1 := 0, 0
	if in.NumArgs() >= 1 {
		a0 = g.id(in.Arg(0))
	}
	if in.NumArgs() >= 2 {
		a1 = g.id(in.Arg(1))
	}
	pred := in.Pred
	switch {
	case in.IsCommutative() && in.NumArgs() == 2:
		if a0 > a1 {
			a0, a1 = a1, a0
		}
	case in.Op == ir.OpICmp || in.Op == ir.OpFCmp:
		if a0 > a1 {
			a0, a1 = a1, a0
			pred = pred.Swapped()
		}
	case in.IsPhi():
		// Phis are keyed by their block plus sorted (block, value) pairs.
		fmt.Fprintf(&sb, "phi@%p:%s", in.Block(), in.Type())
		type pair struct {
			b string
			v int
		}
		var pairs []pair
		for i := 0; i < in.NumArgs(); i++ {
			pairs = append(pairs, pair{fmt.Sprintf("%p", in.BlockArg(i)), g.id(in.Arg(i))})
		}
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i].b != pairs[j].b {
				return pairs[i].b < pairs[j].b
			}
			return pairs[i].v < pairs[j].v
		})
		for _, p := range pairs {
			fmt.Fprintf(&sb, "|%s:%d", p.b, p.v)
		}
		return sb.String(), true
	}
	fmt.Fprintf(&sb, "%d:%s:%d", int(in.Op), in.Type(), int(pred))
	fmt.Fprintf(&sb, "|%d|%d", a0, a1)
	for i := 2; i < in.NumArgs(); i++ {
		fmt.Fprintf(&sb, "|%d", g.id(in.Arg(i)))
	}
	return sb.String(), true
}

// cmpKeys returns the expression keys for a comparison and its inverse, so
// edge assertions can seed both the taken condition and its negation.
func (g *gvnState) cmpKeys(in *ir.Instr) (key, invKey string, ok bool) {
	if in.Op != ir.OpICmp && in.Op != ir.OpFCmp {
		return "", "", false
	}
	a0, a1 := g.id(in.Arg(0)), g.id(in.Arg(1))
	pred := in.Pred
	if a0 > a1 {
		a0, a1 = a1, a0
		pred = pred.Swapped()
	}
	mk := func(p ir.Pred) string {
		return fmt.Sprintf("%d:%s:%d|%d|%d", int(in.Op), in.Type(), int(p), a0, a1)
	}
	return mk(pred), mk(pred.Inverse()), true
}

// replaceAndErase replaces in with v everywhere, patches memory facts that
// reference in, and erases it.
func (g *gvnState) replaceAndErase(in *ir.Instr, v ir.Value) {
	for i := range g.facts {
		if g.facts[i].ptr == ir.Value(in) {
			g.facts[i].ptr = v
		}
		if g.facts[i].val == ir.Value(in) {
			g.facts[i].val = v
		}
	}
	for si := range g.scopes {
		for ci := range g.scopes[si].clobbers {
			if g.scopes[si].clobbers[ci].ptr == ir.Value(in) {
				g.scopes[si].clobbers[ci].ptr = v
			}
		}
	}
	in.ReplaceAllUsesWith(v)
	in.Block().Erase(in)
	g.changed = true
	g.erased++
}

// setArg rewrites an operand and records the change.
func (g *gvnState) setArg(in *ir.Instr, i int, v ir.Value) {
	in.SetArg(i, v)
	g.changed = true
	g.rewrites++
}

func (g *gvnState) walk(b *ir.Block, dt *analysis.DomTree, li *analysis.LoopInfo, rpo map[*ir.Block]int) {
	g.pushScope()

	// Entering a loop header: every fact established outside the loop that a
	// store anywhere in the loop may clobber must die, because the path from
	// the fact to uses inside the loop can pass through the whole body
	// (previous iterations).
	for _, l := range li.Loops {
		if l.Header != b {
			continue
		}
		for _, lb := range l.Blocks() {
			for _, in := range lb.Instrs() {
				switch in.Op {
				case ir.OpStore:
					g.addClobber(memFact{ptr: in.Arg(1)})
				case ir.OpBarrier:
					g.addClobber(memFact{clobberAll: true})
				}
			}
		}
	}

	for _, in := range append([]*ir.Instr(nil), b.Instrs()...) {
		if in.Block() == nil {
			continue // already erased
		}
		if in.IsTerminator() {
			// Canonicalize branch/return operands (no CSE on terminators);
			// this is what folds a re-tested condition to a constant when a
			// dominating edge already decided it.
			if g.opts.PropagateEqualities {
				for i := 0; i < in.NumArgs(); i++ {
					if nv := g.resolve(in.Arg(i)); nv != in.Arg(i) {
						g.setArg(in, i, nv)
					}
				}
			}
			break
		}
		// Canonicalize operands through the replacement map (not for phis:
		// phi operands are rewritten from the predecessor's scope below).
		if !in.IsPhi() && g.opts.PropagateEqualities {
			for i := 0; i < in.NumArgs(); i++ {
				if nv := g.resolve(in.Arg(i)); nv != in.Arg(i) {
					g.setArg(in, i, nv)
				}
			}
		}
		// Local simplification after canonicalization.
		if v := simplifyInstr(in); v != nil {
			g.replaceAndErase(in, v)
			continue
		}
		switch in.Op {
		case ir.OpLoad:
			if g.handleLoad(in) {
				continue
			}
		case ir.OpStore:
			g.addClobber(memFact{ptr: in.Arg(1), val: in.Arg(0), isStore: true})
			continue
		case ir.OpBarrier:
			g.addClobber(memFact{clobberAll: true})
			continue
		}
		key, ok := g.exprKey(in)
		if !ok {
			continue
		}
		if leader, found := g.leaders[key]; found {
			if leader.Type() == in.Type() {
				g.replaceAndErase(in, g.resolve(leader))
				continue
			}
		}
		g.setLeader(key, in)
	}

	// Rewrite successor-phi incomings through this block's replacement map:
	// the use point of a phi operand is the end of the incoming block.
	if g.opts.PropagateEqualities {
		for _, s := range b.Succs() {
			for _, phi := range s.Phis() {
				for i := 0; i < phi.NumArgs(); i++ {
					if phi.BlockArg(i) != b {
						continue
					}
					if nv := g.resolve(phi.Arg(i)); nv != phi.Arg(i) {
						g.setArg(phi, i, nv)
					}
				}
			}
		}
	}

	// Recurse over dominator-tree children in reverse postorder, so that
	// clobbers from earlier-executing siblings are visible to later ones.
	children := append([]*ir.Block(nil), dt.Children(b)...)
	sort.Slice(children, func(i, j int) bool { return rpo[children[i]] < rpo[children[j]] })
	for _, c := range children {
		g.walkChildWithAssertions(b, c, dt, li, rpo)
	}

	s := g.popScope()
	// Bubble this scope's clobbers into the parent so later siblings see
	// them as pseudo-clobbers.
	if len(g.scopes) > 0 {
		for _, c := range s.clobbers {
			g.addClobber(memFact{ptr: c.ptr, clobberAll: c.clobberAll})
		}
	}
}

// walkChildWithAssertions wraps a child walk in a scope holding the edge
// assertions valid on the b->child edge. The dedicated scope keeps the
// assertions from leaking to later dominator-tree siblings, where the edge
// facts would not hold.
func (g *gvnState) walkChildWithAssertions(b, child *ir.Block, dt *analysis.DomTree, li *analysis.LoopInfo, rpo map[*ir.Block]int) {
	g.pushScope()
	g.installEdgeAssertions(b, child)
	g.walk(child, dt, li, rpo)
	s := g.popScope()
	if len(g.scopes) > 0 {
		for _, c := range s.clobbers {
			g.addClobber(memFact{ptr: c.ptr, clobberAll: c.clobberAll})
		}
	}
}

func (g *gvnState) installEdgeAssertions(b, child *ir.Block) {
	if !g.opts.PropagateEqualities {
		return
	}
	t := b.Term()
	if t == nil || t.Op != ir.OpCondBr {
		return
	}
	if len(child.Preds()) != 1 || child.Preds()[0] != b {
		return
	}
	cond := t.Arg(0)
	var taken bool
	switch child {
	case t.BlockArg(0):
		taken = true
	case t.BlockArg(1):
		taken = false
	default:
		return
	}
	truth := ir.ConstBool(taken)
	g.setRepl(cond, truth)
	if ci, ok := cond.(*ir.Instr); ok {
		if key, invKey, ok := g.cmpKeys(ci); ok {
			g.setLeader(key, truth)
			g.setLeader(invKey, ir.ConstBool(!taken))
			// Value equalities from equality predicates.
			if (ci.Pred == ir.EQ && taken) || (ci.Pred == ir.NE && !taken) ||
				(ci.Pred == ir.OEQ && taken) {
				a, bb := ci.Arg(0), ci.Arg(1)
				if _, isC := a.(*ir.Const); isC {
					g.setRepl(bb, a)
				} else {
					g.setRepl(a, bb)
				}
			}
		}
	}
}

// handleLoad tries to reuse a previous load or forwarded store for in.
// Returns true if the load was replaced.
func (g *gvnState) handleLoad(in *ir.Instr) bool {
	if !g.opts.EliminateLoads {
		return false
	}
	p := in.Arg(0)
	for i := len(g.facts) - 1; i >= 0; i-- {
		f := g.facts[i]
		if f.clobberAll {
			break
		}
		// Deliberately the unmemoized query: GVN's equality canonicalization
		// rewrites GEP operands mid-run, which would force a memo flush per
		// mutation (see AliasInfo.Reset) — and Alias itself is a short
		// pointer chase, cheaper than the map traffic of memoizing it here.
		res := analysis.Alias(p, f.ptr)
		if f.isStore && f.val != nil {
			if res == analysis.MustAlias && f.val.Type() == in.Type() {
				g.replaceAndErase(in, f.val)
				return true
			}
			if res != analysis.NoAlias {
				break // may clobber
			}
			continue
		}
		if f.val == nil && f.ptr != nil {
			// Pseudo-clobber (store summary / sibling bubble-up).
			if res != analysis.NoAlias {
				break
			}
			continue
		}
		// Previous load.
		if res == analysis.MustAlias && f.val.Type() == in.Type() {
			g.replaceAndErase(in, g.resolve(f.val))
			return true
		}
	}
	g.facts = append(g.facts, memFact{ptr: p, val: in})
	return false
}
