package transform

import (
	"uu/internal/analysis"
	"uu/internal/ir"
)

// ChaosMode selects which failure a ChaosPass injects.
type ChaosMode string

// The three injected failure shapes, one per containment layer: a crash
// (recover), structurally invalid IR (verify-each), and a semantics-only
// miscompile that only a differential oracle can see.
const (
	// ChaosPanic panics mid-pass after a partial (still well-formed)
	// mutation, exercising recover + rollback.
	ChaosPanic ChaosMode = "panic"
	// ChaosCorrupt detaches a terminator: the pass returns normally but
	// leaves IR the verifier rejects.
	ChaosCorrupt ChaosMode = "corrupt"
	// ChaosMiscompile flips the predicate of the first branch-feeding
	// comparison: verifier-clean, wrong answers — visible only to the
	// differential oracle.
	ChaosMiscompile ChaosMode = "miscompile"
)

// ChaosPass returns a deliberately-broken pass used by fault-injection
// tests and the fuzzer's self-checks. It is never part of a real pipeline.
func ChaosPass(mode ChaosMode) analysis.Pass {
	return NewPass("chaos-"+string(mode), func(f *ir.Function, am *analysis.AnalysisManager) analysis.PreservedAnalyses {
		switch mode {
		case ChaosPanic:
			if e := f.Entry(); e != nil && e.NumInstrs() > 1 {
				// A partial, well-formed mutation first, so rollback (not
				// just recovery) is what restores the function.
				e.Term().SetName("doomed")
			}
			panic("chaos: injected panic")
		case ChaosCorrupt:
			for _, b := range f.Blocks() {
				if t := b.Term(); t != nil {
					b.Remove(t)
					return analysis.PreserveNone()
				}
			}
		case ChaosMiscompile:
			for _, b := range f.Blocks() {
				for _, in := range b.Instrs() {
					if in.Op != ir.OpICmp && in.Op != ir.OpFCmp {
						continue
					}
					feedsBranch := false
					for _, u := range in.Users() {
						if u.Op == ir.OpCondBr {
							feedsBranch = true
							break
						}
					}
					if !feedsBranch {
						continue
					}
					in.Pred = in.Pred.Inverse()
					return analysis.PreserveCFG()
				}
			}
		}
		return analysis.Unchanged()
	})
}
