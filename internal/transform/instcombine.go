package transform

import (
	"math/bits"

	"uu/internal/ir"
)

// InstCombine applies rewrites that (unlike InstSimplify) may create new
// instructions — chiefly the strength reductions the paper counts among the
// optimizations unmerging re-enables: multiplications, divisions and
// remainders by powers of two become shifts and masks, as the NVPTX backend
// would emit.
//
//   - mul x, 2^k        => shl x, k
//   - udiv x, 2^k       => lshr x, k
//   - urem x, 2^k       => and x, 2^k-1
//   - sdiv x, 2^k       => ashr x, k        (only when x is known non-negative)
//   - select c, x, x    handled by InstSimplify; here select of 1/0 => zext c
//
// Signedness guards: sdiv by a power of two rounds toward zero while ashr
// rounds toward negative infinity, so the sdiv rewrite requires a
// non-negativity proof (a tiny value-range walk over zext/lshr/and/urem and
// non-negative constants).
func InstCombine(f *ir.Function) bool {
	changed := false
	for _, b := range f.Blocks() {
		for _, in := range append([]*ir.Instr(nil), b.Instrs()...) {
			if in.Block() == nil {
				continue
			}
			if combineInstr(b, in) {
				changed = true
			}
		}
	}
	return changed
}

func combineInstr(b *ir.Block, in *ir.Instr) bool {
	t := in.Type()
	replaceWith := func(op ir.Op, x ir.Value, c int64) bool {
		ni := ir.NewInstr(op, t, x, ir.ConstInt(t, c))
		ni.SetLoc(in.Loc())
		b.InsertBefore(ni, in)
		in.ReplaceAllUsesWith(ni)
		b.Erase(in)
		return true
	}
	pow2Const := func(v ir.Value) (int64, bool) {
		c, ok := v.(*ir.Const)
		if !ok || !c.Typ.IsInt() || c.Int <= 0 {
			return 0, false
		}
		u := uint64(c.Int)
		if u&(u-1) != 0 {
			return 0, false
		}
		return int64(bits.TrailingZeros64(u)), true
	}

	switch in.Op {
	case ir.OpMul:
		if k, ok := pow2Const(in.Arg(1)); ok && k > 0 {
			return replaceWith(ir.OpShl, in.Arg(0), k)
		}
		if k, ok := pow2Const(in.Arg(0)); ok && k > 0 {
			return replaceWith(ir.OpShl, in.Arg(1), k)
		}
	case ir.OpUDiv:
		if k, ok := pow2Const(in.Arg(1)); ok {
			return replaceWith(ir.OpLShr, in.Arg(0), k)
		}
	case ir.OpURem:
		if c, ok := in.Arg(1).(*ir.Const); ok {
			if _, isPow2 := pow2Const(c); isPow2 {
				return replaceWith(ir.OpAnd, in.Arg(0), c.Int-1)
			}
		}
	case ir.OpSDiv:
		if k, ok := pow2Const(in.Arg(1)); ok && knownNonNegative(in.Arg(0), 4) {
			return replaceWith(ir.OpAShr, in.Arg(0), k)
		}
	case ir.OpSRem:
		if c, ok := in.Arg(1).(*ir.Const); ok {
			if _, isPow2 := pow2Const(c); isPow2 && knownNonNegative(in.Arg(0), 4) {
				return replaceWith(ir.OpAnd, in.Arg(0), c.Int-1)
			}
		}
	case ir.OpSelect:
		// select c, 1, 0 => zext c ; select c, 0, 1 => zext (xor c, true)
		a, aok := in.Arg(1).(*ir.Const)
		bb, bok := in.Arg(2).(*ir.Const)
		if aok && bok && t.IsInt() && t != ir.I1 {
			if a.Int == 1 && bb.Int == 0 {
				ni := ir.NewInstr(ir.OpZExt, t, in.Arg(0))
				ni.SetLoc(in.Loc())
				b.InsertBefore(ni, in)
				in.ReplaceAllUsesWith(ni)
				b.Erase(in)
				return true
			}
		}
	}
	return false
}

// knownNonNegative proves v >= 0 with a small recursive walk.
func knownNonNegative(v ir.Value, depth int) bool {
	if depth == 0 {
		return false
	}
	switch x := v.(type) {
	case *ir.Const:
		return x.Int >= 0
	case *ir.Instr:
		switch x.Op {
		case ir.OpZExt, ir.OpLShr, ir.OpURem:
			return true
		case ir.OpAnd:
			return knownNonNegative(x.Arg(0), depth-1) || knownNonNegative(x.Arg(1), depth-1)
		case ir.OpUDiv:
			return true
		case ir.OpSMax:
			return knownNonNegative(x.Arg(0), depth-1) || knownNonNegative(x.Arg(1), depth-1)
		case ir.OpSMin:
			return knownNonNegative(x.Arg(0), depth-1) && knownNonNegative(x.Arg(1), depth-1)
		case ir.OpSRem, ir.OpAShr:
			// Result sign follows the dividend/shifted value. (Add/Mul/Shl
			// are deliberately excluded: wrap-around could flip the sign.)
			return knownNonNegative(x.Arg(0), depth-1)
		case ir.OpSDiv:
			return knownNonNegative(x.Arg(0), depth-1) && knownNonNegative(x.Arg(1), depth-1)
		case ir.OpSelect:
			return knownNonNegative(x.Arg(1), depth-1) && knownNonNegative(x.Arg(2), depth-1)
		case ir.OpPhi:
			// Do not recurse through phis (cycles); a loop induction from a
			// non-negative start with non-negative step would qualify, but
			// that needs SCEV-grade reasoning.
			return false
		case ir.OpTID, ir.OpNTID, ir.OpCTAID, ir.OpNCTAID:
			return true
		}
	}
	return false
}
