package lang

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseProgram parses MiniCU source into an AST.
func ParseProgram(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.at(tokEOF, "") {
		k, err := p.parseKernel()
		if err != nil {
			return nil, err
		}
		prog.Kernels = append(prog.Kernels, k)
	}
	return prog, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(k tokKind, text string) bool {
	t := p.cur()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *parser) accept(text string) bool {
	if p.cur().text == text && p.cur().kind != tokEOF {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) (token, error) {
	if p.cur().text == text {
		return p.next(), nil
	}
	t := p.cur()
	return t, &Error{t.line, t.col, fmt.Sprintf("expected %q, found %q", text, t.text)}
}

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return &Error{t.line, t.col, fmt.Sprintf(format, args...)}
}

var typeNames = map[string]bool{
	"bool": true, "int": true, "long": true, "float": true, "double": true,
}

func (p *parser) peekType() bool {
	t := p.cur()
	if t.kind != tokIdent {
		return false
	}
	if typeNames[t.text] {
		return true
	}
	return t.text == "const" || t.text == "global"
}

// parseTypeName parses [const|global]* base [*].
func (p *parser) parseTypeName() (TypeName, error) {
	for p.accept("const") || p.accept("global") {
	}
	t := p.cur()
	if t.kind != tokIdent || !typeNames[t.text] {
		return TypeName{}, p.errf("expected type name, found %q", t.text)
	}
	p.next()
	tn := TypeName{Base: t.text}
	if p.accept("*") {
		tn.Ptr = true
	}
	return tn, nil
}

func (p *parser) parseKernel() (*Kernel, error) {
	if _, err := p.expect("kernel"); err != nil {
		return nil, err
	}
	nameTok := p.next()
	if nameTok.kind != tokIdent {
		return nil, &Error{nameTok.line, nameTok.col, "expected kernel name"}
	}
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	k := &Kernel{Name: nameTok.text}
	for !p.accept(")") {
		if len(k.Params) > 0 {
			if _, err := p.expect(","); err != nil {
				return nil, err
			}
		}
		tn, err := p.parseTypeName()
		if err != nil {
			return nil, err
		}
		restrict := false
		for p.accept("restrict") || p.accept("__restrict__") {
			restrict = true
		}
		pn := p.next()
		if pn.kind != tokIdent {
			return nil, &Error{pn.line, pn.col, "expected parameter name"}
		}
		k.Params = append(k.Params, Param{Type: tn, Name: pn.text, Restrict: restrict})
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	k.Body = body
	return k, nil
}

func (p *parser) parseBlock() (*BlockStmt, error) {
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &BlockStmt{}
	for !p.accept("}") {
		if p.at(tokEOF, "") {
			return nil, p.errf("unexpected end of file in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

// parseStmtOrBlock parses either a braced block or a single statement
// wrapped in a block (C-style bodies).
func (p *parser) parseStmtOrBlock() (*BlockStmt, error) {
	if p.at(tokPunct, "{") {
		return p.parseBlock()
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &BlockStmt{Stmts: []Stmt{s}}, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case t.text == "{":
		return p.parseBlock()
	case t.text == "if":
		return p.parseIf()
	case t.text == "while":
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmtOrBlock()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Line: t.line}, nil
	case t.text == "do":
		p.next()
		body, err := p.parseStmtOrBlock()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("while"); err != nil {
			return nil, err
		}
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &DoWhileStmt{Body: body, Cond: cond, Line: t.line}, nil
	case t.text == "for":
		return p.parseFor()
	case t.text == "break":
		p.next()
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &BreakStmt{Line: t.line}, nil
	case t.text == "continue":
		p.next()
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ContinueStmt{Line: t.line}, nil
	case t.text == "return":
		p.next()
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ReturnStmt{Line: t.line}, nil
	case p.peekType():
		return p.parseDecl(true)
	default:
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return s, nil
	}
}

func (p *parser) parseDecl(wantSemi bool) (Stmt, error) {
	line := p.cur().line
	tn, err := p.parseTypeName()
	if err != nil {
		return nil, err
	}
	nameTok := p.next()
	if nameTok.kind != tokIdent {
		return nil, &Error{nameTok.line, nameTok.col, "expected variable name"}
	}
	var init Expr
	if p.accept("=") {
		init, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if wantSemi {
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	return &DeclStmt{Type: tn, Name: nameTok.text, Init: init, Line: line}, nil
}

// parseSimpleStmt parses an assignment, inc/dec, or expression statement
// (no trailing semicolon).
func (p *parser) parseSimpleStmt() (Stmt, error) {
	line := p.cur().line
	// Prefix ++/--.
	if p.cur().text == "++" || p.cur().text == "--" {
		op := p.next().text
		lhs, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &IncDecStmt{LHS: lhs, Op: op, Line: line}, nil
	}
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	switch tok := p.cur().text; tok {
	case "=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>=", "&=", "|=", "^=":
		p.next()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{LHS: lhs, Op: tok, RHS: rhs, Line: line}, nil
	case "++", "--":
		p.next()
		return &IncDecStmt{LHS: lhs, Op: tok, Line: line}, nil
	}
	return &ExprStmt{X: lhs, Line: line}, nil
}

func (p *parser) parseIf() (Stmt, error) {
	line := p.cur().line
	p.next() // if
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	then, err := p.parseStmtOrBlock()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Then: then, Line: line}
	if p.accept("else") {
		if p.cur().text == "if" {
			st.Else, err = p.parseIf()
		} else {
			st.Else, err = p.parseStmtOrBlock()
		}
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) parseFor() (Stmt, error) {
	line := p.cur().line
	p.next() // for
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	st := &ForStmt{Line: line}
	if !p.accept(";") {
		var err error
		if p.peekType() {
			st.Init, err = p.parseDecl(false)
		} else {
			st.Init, err = p.parseSimpleStmt()
		}
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	if !p.accept(";") {
		var err error
		st.Cond, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	if !p.at(tokPunct, ")") {
		var err error
		st.Post, err = p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmtOrBlock()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

// Expression parsing: precedence climbing.
var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) parseExpr() (Expr, error) {
	return p.parseTernary()
}

func (p *parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if !p.accept("?") {
		return cond, nil
	}
	thenE, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(":"); err != nil {
		return nil, err
	}
	elseE, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return &TernaryExpr{Cond: cond, Then: thenE, Else: elseE}, nil
}

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		prec, ok := binPrec[t.text]
		if t.kind != tokPunct || !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: t.text, L: lhs, R: rhs, Line: t.line}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.kind == tokPunct {
		switch t.text {
		case "-", "!", "~", "+":
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			if t.text == "+" {
				return x, nil
			}
			return &UnaryExpr{Op: t.text, X: x}, nil
		case "(":
			// Cast or parenthesized expression.
			if p.toks[p.pos+1].kind == tokIdent && (typeNames[p.toks[p.pos+1].text] ||
				p.toks[p.pos+1].text == "const") {
				p.next()
				tn, err := p.parseTypeName()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(")"); err != nil {
					return nil, err
				}
				x, err := p.parseUnary()
				if err != nil {
					return nil, err
				}
				return &CastExpr{Type: tn, X: x}, nil
			}
		}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("["):
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			x = &IndexExpr{Base: x, Idx: idx, Line: p.cur().line}
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.next()
		text := t.text
		long := false
		if strings.HasSuffix(text, "L") || strings.HasSuffix(text, "l") {
			long = true
			text = text[:len(text)-1]
		}
		v, err := strconv.ParseInt(text, 0, 64)
		if err != nil {
			uv, uerr := strconv.ParseUint(text, 0, 64)
			if uerr != nil {
				return nil, &Error{t.line, t.col, "bad integer literal " + t.text}
			}
			v = int64(uv)
		}
		return &IntLit{Value: v, Long: long}, nil
	case tokFloat:
		p.next()
		text := t.text
		single := false
		if strings.HasSuffix(text, "f") || strings.HasSuffix(text, "F") {
			single = true
			text = text[:len(text)-1]
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, &Error{t.line, t.col, "bad float literal " + t.text}
		}
		return &FloatLit{Value: v, Single: single}, nil
	case tokIdent:
		switch t.text {
		case "true":
			p.next()
			return &IntLit{Value: 1}, nil
		case "false":
			p.next()
			return &IntLit{Value: 0}, nil
		}
		p.next()
		if p.accept("(") {
			call := &CallExpr{Name: t.text, Line: t.line}
			for !p.accept(")") {
				if len(call.Args) > 0 {
					if _, err := p.expect(","); err != nil {
						return nil, err
					}
				}
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
			}
			return call, nil
		}
		return &IdentExpr{Name: t.text, Line: t.line}, nil
	case tokPunct:
		if t.text == "(" {
			p.next()
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			return x, nil
		}
	}
	return nil, &Error{t.line, t.col, fmt.Sprintf("unexpected token %q", t.text)}
}
