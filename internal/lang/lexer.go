// Package lang implements MiniCU, a small CUDA-like kernel language used to
// author the benchmark kernels: C-style expressions and control flow, typed
// scalars and device pointers, GPU geometry builtins (tid, ntid, ctaid,
// nctaid, global_id), math builtins, __restrict__ pointers, and
// syncthreads(). Kernels lower to the SSA IR via allocas that mem2reg then
// promotes, mirroring how Clang feeds LLVM.
package lang

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokFloat
	tokPunct // operators and punctuation
)

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

type lexer struct {
	src    []rune
	pos    int
	line   int
	col    int
	tokens []token
}

// punctuation, longest-first so maximal munch works.
var puncts = []string{
	"<<=", ">>=",
	"==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
	"+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
	"(", ")", "{", "}", "[", "]", ",", ";", "?", ":",
}

func lex(src string) ([]token, error) {
	l := &lexer{src: []rune(src), line: 1, col: 1}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "")
			return l.tokens, nil
		}
		c := l.src[l.pos]
		switch {
		case unicode.IsLetter(c) || c == '_':
			start := l.pos
			for l.pos < len(l.src) && (unicode.IsLetter(l.src[l.pos]) || unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '_') {
				l.advance()
			}
			l.emitAt(tokIdent, string(l.src[start:l.pos]), start)
		case unicode.IsDigit(c) || (c == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(l.src[l.pos+1])):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		default:
			if !l.lexPunct() {
				return nil, fmt.Errorf("lang: line %d:%d: unexpected character %q", l.line, l.col, string(c))
			}
		}
	}
}

func (l *lexer) advance() {
	if l.src[l.pos] == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	l.pos++
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsSpace(c) {
			l.advance()
			continue
		}
		if c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance()
			}
			continue
		}
		if c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*' {
			l.advance()
			l.advance()
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				l.advance()
			}
			if l.pos+1 < len(l.src) {
				l.advance()
				l.advance()
			}
			continue
		}
		return
	}
}

func (l *lexer) emit(k tokKind, text string) {
	l.tokens = append(l.tokens, token{k, text, l.line, l.col})
}

func (l *lexer) emitAt(k tokKind, text string, _ int) {
	l.tokens = append(l.tokens, token{k, text, l.line, l.col - len(text)})
}

func (l *lexer) lexNumber() error {
	start := l.pos
	isFloat := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsDigit(c) {
			l.advance()
			continue
		}
		if c == '.' {
			isFloat = true
			l.advance()
			continue
		}
		if c == 'e' || c == 'E' {
			isFloat = true
			l.advance()
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.advance()
			}
			continue
		}
		if c == 'x' || c == 'X' {
			l.advance()
			continue
		}
		if c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F' {
			// hex digits (only valid after 0x; the parser validates)
			l.advance()
			continue
		}
		break
	}
	text := string(l.src[start:l.pos])
	// Suffixes f/F (float literal), L/l (long literal).
	if l.pos < len(l.src) && (l.src[l.pos] == 'f' || l.src[l.pos] == 'F' || l.src[l.pos] == 'L' || l.src[l.pos] == 'l') {
		text += string(l.src[l.pos])
		if l.src[l.pos] == 'f' || l.src[l.pos] == 'F' {
			isFloat = true
		}
		l.advance()
	}
	if isFloat || strings.ContainsAny(text, ".eE") && !strings.HasPrefix(text, "0x") && !strings.HasPrefix(text, "0X") {
		l.emitAt(tokFloat, text, start)
	} else {
		l.emitAt(tokInt, text, start)
	}
	return nil
}

func (l *lexer) lexPunct() bool {
	rest := string(l.src[l.pos:min(l.pos+3, len(l.src))])
	for _, p := range puncts {
		if strings.HasPrefix(rest, p) {
			for range p {
				l.advance()
			}
			l.emitAt(tokPunct, p, 0)
			return true
		}
	}
	return false
}
