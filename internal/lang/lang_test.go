package lang

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"uu/internal/analysis"
	"uu/internal/interp"
	"uu/internal/ir"
	"uu/internal/transform"
)

func compile(t *testing.T, src string) *ir.Function {
	t.Helper()
	m, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if len(m.Funcs()) != 1 {
		t.Fatalf("want 1 kernel, got %d", len(m.Funcs()))
	}
	f := m.Funcs()[0]
	if err := ir.Verify(f); err != nil {
		t.Fatalf("verify: %v\n%s", err, f.String())
	}
	return f
}

func TestCompileAxpy(t *testing.T) {
	src := `
kernel axpy(double* restrict x, double* restrict y, double a, long n) {
  long i = (long)global_id();
  if (i < n) {
    y[i] = a * x[i] + y[i];
  }
}
`
	f := compile(t, src)
	if !f.Params[0].Restrict || f.Params[2].Typ != ir.F64 || f.Params[3].Typ != ir.I64 {
		t.Fatalf("params wrong: %s", f.String())
	}
	// Execute: 4 threads over n=3.
	mem := interp.NewMemory(8 * 8)
	for i := int64(0); i < 3; i++ {
		mem.SetF64(0, i, float64(i+1)) // x = 1,2,3
		mem.SetF64(32, i, 10)          // y = 10,10,10
	}
	for tid := int32(0); tid < 4; tid++ {
		env := interp.Env{TID: tid, NTID: 4, CTAID: 0, NCTAID: 1}
		args := []interp.Value{interp.IntVal(0), interp.IntVal(32), interp.FloatVal(2), interp.IntVal(3)}
		if _, err := interp.Run(f, args, mem, env); err != nil {
			t.Fatalf("run tid=%d: %v", tid, err)
		}
	}
	for i := int64(0); i < 3; i++ {
		want := 2*float64(i+1) + 10
		if got := mem.F64(32, i); got != want {
			t.Fatalf("y[%d] = %v, want %v", i, got, want)
		}
	}
}

// XSBench binary search, Listing 1 of the paper.
const xsbenchSrc = `
kernel bsearch(double* restrict A, long* restrict out, long n, double quarry) {
  long lowerLimit = 0;
  long upperLimit = n - 1;
  long length = upperLimit - lowerLimit;
  while (length > 1) {
    long mid = lowerLimit + length / 2;
    if (A[mid] > quarry) {
      upperLimit = mid;
    } else {
      lowerLimit = mid;
    }
    length = upperLimit - lowerLimit;
  }
  out[0] = lowerLimit;
}
`

func refBsearch(a []float64, quarry float64) int64 {
	lower, upper := int64(0), int64(len(a)-1)
	length := upper - lower
	for length > 1 {
		mid := lower + length/2
		if a[mid] > quarry {
			upper = mid
		} else {
			lower = mid
		}
		length = upper - lower
	}
	return lower
}

func TestCompileXSBenchBinarySearch(t *testing.T) {
	f := compile(t, xsbenchSrc)
	transform.Mem2Reg(f)
	if err := ir.Verify(f); err != nil {
		t.Fatalf("verify after mem2reg: %v", err)
	}
	n := int64(128)
	mem := interp.NewMemory(8*n + 8)
	a := make([]float64, n)
	for i := range a {
		a[i] = float64(i) * 1.5
	}
	for i, v := range a {
		mem.SetF64(0, int64(i), v)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		q := rng.Float64() * 200
		args := []interp.Value{interp.IntVal(0), interp.IntVal(8 * n), interp.IntVal(n), interp.FloatVal(q)}
		if _, err := interp.Run(f, args, mem, interp.Env{}); err != nil {
			t.Fatalf("run: %v", err)
		}
		if got, want := mem.I64(8*n, 0), refBsearch(a, q); got != want {
			t.Fatalf("bsearch(%v) = %d, want %d", q, got, want)
		}
	}
}

// The complex kernel loop, Listing 7 of the paper.
const complexSrc = `
kernel cpx(long* restrict out, long a0, long c0) {
  long n = (long)global_id();
  long idx = n;
  long a = a0;
  long c = c0;
  long a_new = 1;
  long c_new = 0;
  while (n > 0) {
    if ((n & 1) != 0) {
      a_new *= a;
      c_new = c_new * a + c;
    }
    c *= (a + 1);
    a *= a;
    n >>= 1;
  }
  out[idx] = a_new + c_new;
}
`

func refComplex(n, a, c int64) int64 {
	aNew, cNew := int64(1), int64(0)
	for n > 0 {
		if n&1 != 0 {
			aNew *= a
			cNew = cNew*a + c
		}
		c *= a + 1
		a *= a
		n >>= 1
	}
	return aNew + cNew
}

func TestCompileComplex(t *testing.T) {
	f := compile(t, complexSrc)
	transform.Mem2Reg(f)
	mem := interp.NewMemory(8 * 64)
	for tid := int32(0); tid < 64; tid++ {
		env := interp.Env{TID: tid % 32, NTID: 32, CTAID: tid / 32, NCTAID: 2}
		args := []interp.Value{interp.IntVal(0), interp.IntVal(3), interp.IntVal(5)}
		if _, err := interp.Run(f, args, mem, env); err != nil {
			t.Fatalf("run: %v", err)
		}
	}
	for i := int64(0); i < 64; i++ {
		if got, want := mem.I64(0, i), refComplex(i, 3, 5); got != want {
			t.Fatalf("complex(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// The && must not evaluate x[i] when i >= n (out-of-bounds guard).
	src := `
kernel guard(double* restrict x, long* restrict out, long n) {
  long i = (long)tid();
  long hits = 0;
  if (i < n && x[i] > 0.5) {
    hits = 1;
  }
  if (i >= n || x[i] > 0.25) {
    hits += 2;
  }
  out[i] = hits;
}
`
	f := compile(t, src)
	mem := interp.NewMemory(8 + 8*8)
	mem.SetF64(0, 0, 0.3)
	// Thread 0: i<n(=1), x[0]=0.3: first false (0.3<0.5), second: i<n so x[0]>0.25 true => 2.
	env := interp.Env{TID: 0, NTID: 8, CTAID: 0, NCTAID: 1}
	args := []interp.Value{interp.IntVal(0), interp.IntVal(8), interp.IntVal(1)}
	if _, err := interp.Run(f, args, mem, env); err != nil {
		t.Fatalf("run tid 0: %v", err)
	}
	if got := mem.I64(8, 0); got != 2 {
		t.Fatalf("hits[0] = %d, want 2", got)
	}
	// Thread 3: i>=n; both memory accesses must be skipped (no OOB trap on
	// the 1-element array) and hits = 2 via the || short-circuit.
	env.TID = 3
	if _, err := interp.Run(f, args, mem, env); err != nil {
		t.Fatalf("run tid 3 (short-circuit failed to guard OOB?): %v", err)
	}
	if got := mem.I64(8, 3); got != 2 {
		t.Fatalf("hits[3] = %d, want 2", got)
	}
}

func TestTernaryAndMath(t *testing.T) {
	src := `
kernel m(double* restrict out, double x) {
  double r = x > 0.0 ? sqrt(x) : fabs(x);
  double s = pow(r, 2.0) + fmax(x, 0.0) + min(3, 5) + exp(0.0);
  out[0] = s + (x < 0.0 ? 1.0 : 0.0);
}
`
	f := compile(t, src)
	mem := interp.NewMemory(8)
	args := []interp.Value{interp.IntVal(0), interp.FloatVal(4)}
	if _, err := interp.Run(f, args, mem, interp.Env{}); err != nil {
		t.Fatalf("run: %v", err)
	}
	want := math.Pow(math.Sqrt(4), 2) + 4 + 3 + 1
	if got := mem.F64(0, 0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v, want %v", got, want)
	}
	args[1] = interp.FloatVal(-2)
	if _, err := interp.Run(f, args, mem, interp.Env{}); err != nil {
		t.Fatalf("run: %v", err)
	}
	want = math.Pow(2, 2) + 0 + 3 + 1 + 1
	if got := mem.F64(0, 0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestForBreakContinue(t *testing.T) {
	src := `
kernel fbc(long* restrict out, long n) {
  long acc = 0;
  for (long i = 0; i < n; i++) {
    if (i % 2 == 0) { continue; }
    if (i > 10) { break; }
    acc += i;
  }
  do {
    acc += 100;
  } while (acc < 0);
  out[0] = acc;
}
`
	f := compile(t, src)
	mem := interp.NewMemory(8)
	args := []interp.Value{interp.IntVal(0), interp.IntVal(100)}
	if _, err := interp.Run(f, args, mem, interp.Env{}); err != nil {
		t.Fatalf("run: %v", err)
	}
	// 1+3+5+7+9 = 25, then +100.
	if got := mem.I64(0, 0); got != 125 {
		t.Fatalf("got %d, want 125", got)
	}
}

func TestFloat32Arithmetic(t *testing.T) {
	src := `
kernel f32(float* restrict out, float a, float b) {
  float c = a / b;
  out[0] = c * c + 1.0f;
}
`
	f := compile(t, src)
	mem := interp.NewMemory(4)
	args := []interp.Value{interp.IntVal(0), interp.FloatVal(1), interp.FloatVal(3)}
	if _, err := interp.Run(f, args, mem, interp.Env{}); err != nil {
		t.Fatalf("run: %v", err)
	}
	c := float32(1) / float32(3)
	want := c*c + 1
	if got := mem.F32(0, 0); got != want {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"undef", "kernel k(long* p) { p[0] = x; }", "undefined variable"},
		{"badbuiltin", "kernel k(long* p) { p[0] = frobnicate(); }", "unknown builtin"},
		{"breakout", "kernel k(long* p) { break; }", "break outside loop"},
		{"ptrlocal", "kernel k(long* p) { long* q = p; }", "pointer-typed locals"},
		{"assignptr", "kernel k(long* p, long n) { p = p; }", "cannot assign to pointer"},
		{"redecl", "kernel k(long* p) { long a = 1; long a = 2; }", "redeclaration"},
		{"parse", "kernel k(long* p) { long a = ; }", "unexpected token"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(tc.src)
			if err == nil {
				t.Fatalf("no error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestNestedLoopsAndCompound(t *testing.T) {
	src := `
kernel nest(long* restrict out, long n, long m) {
  long total = 0;
  for (long i = 0; i < n; i++) {
    long rowsum = 0;
    for (long j = 0; j < m; j++) {
      rowsum += i * j;
    }
    total += rowsum;
  }
  out[0] = total;
}
`
	f := compile(t, src)
	transform.Mem2Reg(f)
	mem := interp.NewMemory(8)
	args := []interp.Value{interp.IntVal(0), interp.IntVal(5), interp.IntVal(4)}
	if _, err := interp.Run(f, args, mem, interp.Env{}); err != nil {
		t.Fatalf("run: %v", err)
	}
	want := int64(0)
	for i := int64(0); i < 5; i++ {
		for j := int64(0); j < 4; j++ {
			want += i * j
		}
	}
	if got := mem.I64(0, 0); got != want {
		t.Fatalf("got %d, want %d", got, want)
	}
}

func TestLoopShapeHasUniqueLatch(t *testing.T) {
	// Even with continue, the lowered loop must have a single latch so the
	// unroller and unmerger accept it.
	src := `
kernel k(long* restrict out, long n) {
  long acc = 0;
  for (long i = 0; i < n; i++) {
    if (i % 3 == 0) { continue; }
    acc += i;
  }
  out[0] = acc;
}
`
	f := compile(t, src)
	transform.Mem2Reg(f)
	transform.SimplifyCFG(f)
	// Find loops; each must have a unique latch.
	lcount := 0
	{
		li := newLoopInfo(f)
		for _, l := range li {
			lcount++
			if l == nil {
				t.Fatalf("loop without unique latch")
			}
		}
	}
	if lcount == 0 {
		t.Fatalf("no loop found")
	}
}

// newLoopInfo returns each loop's unique latch (nil if it has several).
func newLoopInfo(f *ir.Function) []*ir.Block {
	dt := analysis.NewDomTree(f)
	li := analysis.NewLoopInfo(f, dt)
	var out []*ir.Block
	for _, l := range li.Loops {
		out = append(out, l.Latch())
	}
	return out
}

func TestLexerLiteralsAndComments(t *testing.T) {
	src := `
// line comment
kernel k(long* restrict out) {
  /* block
     comment */
  long a = 0x1F;      // hex
  long b = 10L;       // long suffix
  double c = 1.5e-3;  // exponent
  float d = 2.5f;     // float suffix
  out[0] = a + b + (long)(c * 1000.0) + (long)d;
}
`
	f := compile(t, src)
	mem := interp.NewMemory(8)
	if _, err := interp.Run(f, []interp.Value{interp.IntVal(0)}, mem, interp.Env{}); err != nil {
		t.Fatalf("run: %v", err)
	}
	// 31 + 10 + 1 (1.5e-3*1000 = 1.5 -> fptosi 1) + 2 = 44
	if got := mem.I64(0, 0); got != 44 {
		t.Fatalf("got %d, want 44", got)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	src := `
kernel k(long* restrict out) {
  long a = 2 + 3 * 4;           // 14
  long b = (2 + 3) * 4;         // 20
  long c = 1 << 3 + 1;          // 1 << 4 = 16
  long d = 7 & 3 | 4;           // (7&3)|4 = 7
  long e = 10 - 4 - 3;          // left assoc: 3
  bool f = 1 < 2 == true;       // (1<2) == true
  long g = f ? 100 : 200;
  out[0] = a + b + c + d + e + g;
}
`
	f := compile(t, src)
	mem := interp.NewMemory(8)
	if _, err := interp.Run(f, []interp.Value{interp.IntVal(0)}, mem, interp.Env{}); err != nil {
		t.Fatalf("run: %v", err)
	}
	want := int64(14 + 20 + 16 + 7 + 3 + 100)
	if got := mem.I64(0, 0); got != want {
		t.Fatalf("got %d, want %d", got, want)
	}
}

func TestElseIfChainAndScopes(t *testing.T) {
	src := `
kernel k(long* restrict out, long x) {
  long r = 0;
  if (x < 10) {
    long v = 1;
    r = v;
  } else if (x < 20) {
    long v = 2;
    r = v;
  } else {
    long v = 3;
    r = v;
  }
  { long r2 = r * 10; r = r2; }
  out[0] = r;
}
`
	f := compile(t, src)
	for _, tc := range []struct{ x, want int64 }{{5, 10}, {15, 20}, {25, 30}} {
		mem := interp.NewMemory(8)
		if _, err := interp.Run(f, []interp.Value{interp.IntVal(0), interp.IntVal(tc.x)}, mem, interp.Env{}); err != nil {
			t.Fatalf("run: %v", err)
		}
		if got := mem.I64(0, 0); got != tc.want {
			t.Fatalf("x=%d: got %d, want %d", tc.x, got, tc.want)
		}
	}
}

func TestUnbracedBodies(t *testing.T) {
	src := `
kernel k(long* restrict out, long n) {
  long acc = 0;
  for (long i = 0; i < n; i++)
    if (i % 2 == 0)
      acc += i;
    else
      acc -= 1;
  while (acc < 0)
    acc++;
  out[0] = acc;
}
`
	f := compile(t, src)
	mem := interp.NewMemory(8)
	if _, err := interp.Run(f, []interp.Value{interp.IntVal(0), interp.IntVal(10)}, mem, interp.Env{}); err != nil {
		t.Fatalf("run: %v", err)
	}
	// evens 0..8 sum = 20, minus 5 odds = 15
	if got := mem.I64(0, 0); got != 15 {
		t.Fatalf("got %d, want 15", got)
	}
}

func TestPrefixIncDecAndCompoundShift(t *testing.T) {
	src := `
kernel k(long* restrict out) {
  long a = 1;
  ++a;
  a <<= 4;
  a |= 1;
  a ^= 2;
  --a;
  a >>= 1;
  out[0] = a;
}
`
	f := compile(t, src)
	mem := interp.NewMemory(8)
	if _, err := interp.Run(f, []interp.Value{interp.IntVal(0)}, mem, interp.Env{}); err != nil {
		t.Fatalf("run: %v", err)
	}
	// a=2; 32; 33; 35; 34; 17
	if got := mem.I64(0, 0); got != 17 {
		t.Fatalf("got %d, want 17", got)
	}
}

func TestArrayCompoundAssign(t *testing.T) {
	src := `
kernel k(double* restrict x, long n) {
  for (long i = 0; i < n; i++) {
    x[i] += 1.0;
    x[i] *= 2.0;
  }
}
`
	f := compile(t, src)
	mem := interp.NewMemory(8 * 4)
	for i := int64(0); i < 4; i++ {
		mem.SetF64(0, i, float64(i))
	}
	if _, err := interp.Run(f, []interp.Value{interp.IntVal(0), interp.IntVal(4)}, mem, interp.Env{}); err != nil {
		t.Fatalf("run: %v", err)
	}
	for i := int64(0); i < 4; i++ {
		if got, want := mem.F64(0, i), (float64(i)+1)*2; got != want {
			t.Fatalf("x[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestMultipleKernelsInFile(t *testing.T) {
	src := `
kernel a(long* restrict out) { out[0] = 1; }
kernel b(long* restrict out) { out[0] = 2; }
`
	m, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if len(m.Funcs()) != 2 || m.FuncByName("a") == nil || m.FuncByName("b") == nil {
		t.Fatalf("kernels missing")
	}
}

func TestSyncthreadsLowersToBarrier(t *testing.T) {
	src := `
kernel k(long* restrict out) {
  out[(long)tid()] = 1;
  syncthreads();
  out[(long)tid()] += 1;
}
`
	f := compile(t, src)
	found := false
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			if in.Op == ir.OpBarrier {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no barrier emitted:\n%s", f.String())
	}
}

func TestNegativeAndUnaryOps(t *testing.T) {
	src := `
kernel k(long* restrict out, long x, double y) {
  out[0] = -x + ~x + (!(x > 0) ? 10 : 20);
  out[1] = (long)(-y);
}
`
	f := compile(t, src)
	mem := interp.NewMemory(16)
	args := []interp.Value{interp.IntVal(0), interp.IntVal(5), interp.FloatVal(2.5)}
	if _, err := interp.Run(f, args, mem, interp.Env{}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := mem.I64(0, 0); got != -5+(-6)+20 {
		t.Fatalf("out[0] = %d", got)
	}
	if got := mem.I64(0, 1); got != -2 {
		t.Fatalf("out[1] = %d", got)
	}
}
