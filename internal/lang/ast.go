package lang

import "fmt"

// TypeName is a MiniCU scalar or pointer type.
type TypeName struct {
	Base string // "bool", "int", "long", "float", "double"
	Ptr  bool
}

func (t TypeName) String() string {
	if t.Ptr {
		return t.Base + "*"
	}
	return t.Base
}

// Param is a kernel parameter declaration.
type Param struct {
	Type     TypeName
	Name     string
	Restrict bool
}

// Kernel is a top-level kernel definition.
type Kernel struct {
	Name   string
	Params []Param
	Body   *BlockStmt
}

// Program is a parsed MiniCU source file.
type Program struct {
	Kernels []*Kernel
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// Expr is an expression node.
type Expr interface{ exprNode() }

// BlockStmt is a `{ ... }` statement list with its own scope.
type BlockStmt struct{ Stmts []Stmt }

// DeclStmt declares a local variable with an optional initializer.
type DeclStmt struct {
	Type TypeName
	Name string
	Init Expr // may be nil
	Line int
}

// AssignStmt assigns to a variable or array element. Op is "=", "+=", etc.
type AssignStmt struct {
	LHS  Expr // *IdentExpr or *IndexExpr
	Op   string
	RHS  Expr
	Line int
}

// IncDecStmt is `x++;` or `x--;` (also usable in for-posts).
type IncDecStmt struct {
	LHS  Expr
	Op   string // "++" or "--"
	Line int
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then *BlockStmt
	Else Stmt // *BlockStmt, *IfStmt, or nil
	Line int
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body *BlockStmt
	Line int
}

// DoWhileStmt is a do { } while loop.
type DoWhileStmt struct {
	Body *BlockStmt
	Cond Expr
	Line int
}

// ForStmt is a C-style for loop.
type ForStmt struct {
	Init Stmt // DeclStmt, AssignStmt, IncDecStmt, or nil
	Cond Expr // nil means true
	Post Stmt // AssignStmt, IncDecStmt, or nil
	Body *BlockStmt
	Line int
}

// BreakStmt breaks the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Line int }

// ReturnStmt leaves the kernel.
type ReturnStmt struct{ Line int }

// ExprStmt evaluates an expression for effect (builtin calls).
type ExprStmt struct {
	X    Expr
	Line int
}

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*IncDecStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*DoWhileStmt) stmtNode()  {}
func (*ForStmt) stmtNode()      {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ReturnStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}

// IntLit is an integer literal (value fits the chosen type).
type IntLit struct {
	Value int64
	Long  bool // had L suffix
}

// FloatLit is a floating literal.
type FloatLit struct {
	Value  float64
	Single bool // had f suffix
}

// IdentExpr references a variable or parameter.
type IdentExpr struct {
	Name string
	Line int
}

// UnaryExpr is -x, !x, ~x.
type UnaryExpr struct {
	Op string
	X  Expr
}

// BinaryExpr is a binary operation, including && and || (short-circuit).
type BinaryExpr struct {
	Op   string
	L, R Expr
	Line int
}

// TernaryExpr is c ? a : b (lowered with control flow, like Clang).
type TernaryExpr struct {
	Cond, Then, Else Expr
}

// IndexExpr is base[idx].
type IndexExpr struct {
	Base Expr
	Idx  Expr
	Line int
}

// CallExpr calls a builtin.
type CallExpr struct {
	Name string
	Args []Expr
	Line int
}

// CastExpr is (type)x.
type CastExpr struct {
	Type TypeName
	X    Expr
}

func (*IntLit) exprNode()      {}
func (*FloatLit) exprNode()    {}
func (*IdentExpr) exprNode()   {}
func (*UnaryExpr) exprNode()   {}
func (*BinaryExpr) exprNode()  {}
func (*TernaryExpr) exprNode() {}
func (*IndexExpr) exprNode()   {}
func (*CallExpr) exprNode()    {}
func (*CastExpr) exprNode()    {}

// Error is a parse or type error with position information.
type Error struct {
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("lang: line %d:%d: %s", e.Line, e.Col, e.Msg)
}
