package lang

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"uu/internal/interp"
	"uu/internal/pipeline"
)

// randExpr builds a random fully-parenthesized integer expression over the
// variables a, b, c and returns both its MiniCU spelling and a direct Go
// evaluator with identical semantics (wrap-around arithmetic, masked shifts,
// division-by-zero yields zero as the simulator defines).
func randExpr(rng *rand.Rand, depth int) (string, func(a, b, c int64) int64) {
	if depth == 0 || rng.Intn(4) == 0 {
		switch rng.Intn(4) {
		case 0:
			return "a", func(a, b, c int64) int64 { return a }
		case 1:
			return "b", func(a, b, c int64) int64 { return b }
		case 2:
			return "c", func(a, b, c int64) int64 { return c }
		default:
			k := int64(rng.Intn(41) - 20)
			return fmt.Sprintf("(%d)", k), func(a, b, c int64) int64 { return k }
		}
	}
	ls, lf := randExpr(rng, depth-1)
	rs, rf := randExpr(rng, depth-1)
	ops := []struct {
		tok  string
		eval func(x, y int64) int64
	}{
		{"+", func(x, y int64) int64 { return x + y }},
		{"-", func(x, y int64) int64 { return x - y }},
		{"*", func(x, y int64) int64 { return x * y }},
		{"&", func(x, y int64) int64 { return x & y }},
		{"|", func(x, y int64) int64 { return x | y }},
		{"^", func(x, y int64) int64 { return x ^ y }},
		{"<<", func(x, y int64) int64 { return x << (uint64(y) & 63) }},
		{">>", func(x, y int64) int64 { return x >> (uint64(y) & 63) }},
		{"/", func(x, y int64) int64 {
			if y == 0 {
				return 0
			}
			return x / y
		}},
		{"%", func(x, y int64) int64 {
			if y == 0 {
				return 0
			}
			return x % y
		}},
	}
	op := ops[rng.Intn(len(ops))]
	// Ternary and min/max occasionally.
	switch rng.Intn(8) {
	case 0:
		cs, cf := randExpr(rng, depth-1)
		return fmt.Sprintf("((%s) > 0 ? (%s) : (%s))", cs, ls, rs),
			func(a, b, c int64) int64 {
				if cf(a, b, c) > 0 {
					return lf(a, b, c)
				}
				return rf(a, b, c)
			}
	case 1:
		return fmt.Sprintf("min((%s), (%s))", ls, rs),
			func(a, b, c int64) int64 { return min(lf(a, b, c), rf(a, b, c)) }
	}
	return fmt.Sprintf("((%s) %s (%s))", ls, op.tok, rs),
		func(a, b, c int64) int64 { return op.eval(lf(a, b, c), rf(a, b, c)) }
}

// TestRandomExpressionsDifferential compiles random expressions through the
// frontend and runs them in the interpreter, comparing against direct Go
// evaluation — both with and without the baseline optimization pipeline.
func TestRandomExpressionsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		exprSrc, eval := randExpr(rng, 4)
		src := fmt.Sprintf(`
kernel k(long* restrict out, long a, long b, long c) {
  out[0] = %s;
}
`, exprSrc)
		m, err := Compile(src)
		if err != nil {
			t.Fatalf("trial %d: compile: %v\nexpr: %s", trial, err, exprSrc)
		}
		f := m.Funcs()[0]
		optimized := MustCompileKernel(src)
		if _, err := pipeline.Optimize(optimized, pipeline.Options{Config: pipeline.Baseline, VerifyEachPass: true}); err != nil {
			t.Fatalf("trial %d: pipeline: %v", trial, err)
		}
		for probe := 0; probe < 8; probe++ {
			a := rng.Int63n(2001) - 1000
			b := rng.Int63n(2001) - 1000
			c := rng.Int63n(41) - 20
			want := eval(a, b, c)
			args := []interp.Value{interp.IntVal(0), interp.IntVal(a), interp.IntVal(b), interp.IntVal(c)}
			mem := interp.NewMemory(8)
			if _, err := interp.Run(f, args, mem, interp.Env{}); err != nil {
				t.Fatalf("trial %d: interp: %v\nexpr: %s", trial, err, exprSrc)
			}
			if got := mem.I64(0, 0); got != want {
				t.Fatalf("trial %d: frontend mismatch: %s with (a=%d b=%d c=%d): got %d want %d",
					trial, exprSrc, a, b, c, got, want)
			}
			mem2 := interp.NewMemory(8)
			if _, err := interp.Run(optimized, args, mem2, interp.Env{}); err != nil {
				t.Fatalf("trial %d: optimized interp: %v", trial, err)
			}
			if got := mem2.I64(0, 0); got != want {
				t.Fatalf("trial %d: optimizer mismatch: %s with (a=%d b=%d c=%d): got %d want %d\n%s",
					trial, exprSrc, a, b, c, got, want, optimized.String())
			}
		}
	}
}

// TestRandomLoopKernelsDifferential stresses the loop passes: random small
// loop bodies built from the expression generator, run through every
// configuration and compared against the unoptimized frontend output.
func TestRandomLoopKernelsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		bodyA, _ := randExpr(rng, 2)
		bodyB, _ := randExpr(rng, 2)
		cond, _ := randExpr(rng, 1)
		src := fmt.Sprintf(`
kernel k(long* restrict out, long a, long b, long n) {
  long c = 0;
  long acc = 0;
  for (long i = 0; i < n; i++) {
    c = i %% 7 - 3;
    if ((%s) > c) {
      acc += (%s) & 1023;
    } else {
      acc -= (%s) & 511;
    }
  }
  out[0] = acc;
}
`, cond, bodyA, bodyB)
		ref := MustCompileKernel(src)
		refOut := func(a, b, n int64) int64 {
			mem := interp.NewMemory(8)
			args := []interp.Value{interp.IntVal(0), interp.IntVal(a), interp.IntVal(b), interp.IntVal(n)}
			if _, err := interp.Run(ref, args, mem, interp.Env{}); err != nil {
				t.Fatalf("trial %d: ref: %v", trial, err)
			}
			return mem.I64(0, 0)
		}
		for _, cfg := range []pipeline.Options{
			{Config: pipeline.Baseline},
			{Config: pipeline.UU, LoopID: 0, Factor: 3},
			{Config: pipeline.UUHeuristic},
		} {
			f := MustCompileKernel(src)
			cfg.VerifyEachPass = true
			if _, err := pipeline.Optimize(f, cfg); err != nil {
				if cfg.Config == pipeline.UU && strings.Contains(err.Error(), "not unrollable") {
					continue
				}
				t.Fatalf("trial %d: %s: %v", trial, cfg.Config, err)
			}
			for probe := 0; probe < 4; probe++ {
				a := rng.Int63n(101) - 50
				b := rng.Int63n(101) - 50
				n := rng.Int63n(12)
				mem := interp.NewMemory(8)
				args := []interp.Value{interp.IntVal(0), interp.IntVal(a), interp.IntVal(b), interp.IntVal(n)}
				if _, err := interp.Run(f, args, mem, interp.Env{}); err != nil {
					t.Fatalf("trial %d: %s interp: %v", trial, cfg.Config, err)
				}
				if got, want := mem.I64(0, 0), refOut(a, b, n); got != want {
					t.Fatalf("trial %d: %s mismatch (a=%d b=%d n=%d): got %d want %d\nsrc:%s",
						trial, cfg.Config, a, b, n, got, want, src)
				}
			}
		}
	}
}
