package lang

import (
	"fmt"

	"uu/internal/ir"
	"uu/internal/transform"
)

// Compile parses MiniCU source and lowers every kernel to IR. Local
// variables (and scalar parameters, which are assignable in C) go through
// allocas that transform.Mem2Reg later promotes — the same shape Clang
// hands to LLVM.
func Compile(src string) (*ir.Module, error) {
	prog, err := ParseProgram(src)
	if err != nil {
		return nil, err
	}
	m := ir.NewModule("minicu")
	for _, k := range prog.Kernels {
		f, err := LowerKernel(k)
		if err != nil {
			return nil, err
		}
		m.AddFunction(f)
	}
	return m, nil
}

// CompileKernel compiles a single-kernel source, returning an error on a
// parse/lowering failure or when the source does not define exactly one
// kernel. Use this on any input that is not a compile-time constant.
func CompileKernel(src string) (*ir.Function, error) {
	m, err := Compile(src)
	if err != nil {
		return nil, err
	}
	if len(m.Funcs()) != 1 {
		return nil, fmt.Errorf("lang: expected 1 kernel, got %d", len(m.Funcs()))
	}
	return m.Funcs()[0], nil
}

// MustCompileKernel compiles a single-kernel source, panicking on error;
// intended for the benchmark kernel definitions, which are constant.
func MustCompileKernel(src string) *ir.Function {
	f, err := CompileKernel(src)
	if err != nil {
		panic(err)
	}
	return f
}

// LowerKernel lowers one parsed kernel to an IR function.
func LowerKernel(k *Kernel) (*ir.Function, error) {
	f := ir.NewFunction(k.Name, ir.Void)
	lw := &lowerer{f: f}
	entry := f.NewBlock("entry")
	lw.b = ir.NewBuilder(entry)
	lw.entry = entry
	lw.pushScope()

	for _, prm := range k.Params {
		t, err := irType(prm.Type)
		if err != nil {
			return nil, err
		}
		p := f.AddParam(prm.Name, t, prm.Restrict)
		if prm.Type.Ptr {
			lw.define(prm.Name, &local{typ: prm.Type, ptrVal: p})
			continue
		}
		// Scalar parameters are assignable in C; shadow them in an alloca.
		slot := lw.b.Alloca(t, prm.Name+".addr")
		lw.b.Store(p, slot)
		lw.define(prm.Name, &local{typ: prm.Type, slot: slot})
	}

	if err := lw.lowerBlock(k.Body); err != nil {
		return nil, err
	}
	// Implicit return; also terminate any dangling dead blocks.
	for _, b := range f.Blocks() {
		if b.Term() == nil {
			ir.NewBuilder(b).Ret(nil)
		}
	}
	transform.RemoveUnreachable(f)
	if err := ir.Verify(f); err != nil {
		return nil, fmt.Errorf("lang: internal error lowering %s: %w\n%s", k.Name, err, f.String())
	}
	return f, nil
}

type local struct {
	typ    TypeName
	slot   *ir.Instr // alloca for scalars
	ptrVal ir.Value  // pointer parameters are used directly
}

type lowerer struct {
	f     *ir.Function
	b     *ir.Builder
	entry *ir.Block

	scopes  []map[string]*local
	breakTo []*ir.Block
	contTo  []*ir.Block
}

func (l *lowerer) pushScope() { l.scopes = append(l.scopes, map[string]*local{}) }
func (l *lowerer) popScope()  { l.scopes = l.scopes[:len(l.scopes)-1] }

func (l *lowerer) define(name string, lo *local) { l.scopes[len(l.scopes)-1][name] = lo }

func (l *lowerer) lookup(name string) *local {
	for i := len(l.scopes) - 1; i >= 0; i-- {
		if lo, ok := l.scopes[i][name]; ok {
			return lo
		}
	}
	return nil
}

// newAlloca creates an alloca in the entry block (mem2reg scans only there).
func (l *lowerer) newAlloca(t *ir.Type, name string) *ir.Instr {
	in := ir.NewInstr(ir.OpAlloca, ir.PointerTo(t))
	in.SetName(name)
	in.SetLoc(l.b.CurLoc())
	if term := l.entry.Term(); term != nil {
		l.entry.InsertBefore(in, term)
	} else if l.b.Block() == l.entry {
		l.b.Block().Append(in)
		return in
	} else {
		l.entry.Append(in)
	}
	return in
}

func irType(t TypeName) (*ir.Type, error) {
	var base *ir.Type
	switch t.Base {
	case "bool":
		base = ir.I1
	case "int":
		base = ir.I32
	case "long":
		base = ir.I64
	case "float":
		base = ir.F32
	case "double":
		base = ir.F64
	default:
		return nil, fmt.Errorf("lang: unknown type %q", t.Base)
	}
	if t.Ptr {
		return ir.PointerTo(base), nil
	}
	return base, nil
}

func rank(t TypeName) int {
	switch t.Base {
	case "bool":
		return 0
	case "int":
		return 1
	case "long":
		return 2
	case "float":
		return 3
	case "double":
		return 4
	}
	return -1
}

func isFloatT(t TypeName) bool    { return t.Base == "float" || t.Base == "double" }
func isIntT(t TypeName) bool      { return t.Base == "int" || t.Base == "long" || t.Base == "bool" }
func scalar(base string) TypeName { return TypeName{Base: base} }

// convert coerces v from type `from` to type `to`.
func (l *lowerer) convert(v ir.Value, from, to TypeName) (ir.Value, error) {
	if from == to {
		return v, nil
	}
	if from.Ptr || to.Ptr {
		return nil, fmt.Errorf("lang: cannot convert %s to %s", from, to)
	}
	ft, _ := irType(from)
	tt, _ := irType(to)
	switch {
	case isIntT(from) && isIntT(to):
		if to.Base == "bool" {
			return l.b.ICmp(ir.NE, v, ir.ConstInt(ft, 0)), nil
		}
		if ft.Bits() < tt.Bits() {
			if from.Base == "bool" {
				return l.b.Conv(ir.OpZExt, v, tt), nil
			}
			return l.b.Conv(ir.OpSExt, v, tt), nil
		}
		return l.b.Conv(ir.OpTrunc, v, tt), nil
	case isIntT(from) && isFloatT(to):
		if from.Base == "bool" {
			v = l.b.Conv(ir.OpZExt, v, ir.I32)
		}
		return l.b.Conv(ir.OpSIToFP, v, tt), nil
	case isFloatT(from) && isIntT(to):
		if to.Base == "bool" {
			return l.b.FCmp(ir.ONE, v, ir.ConstFloat(ft, 0)), nil
		}
		return l.b.Conv(ir.OpFPToSI, v, tt), nil
	case isFloatT(from) && isFloatT(to):
		if ft.Bits() < tt.Bits() {
			return l.b.Conv(ir.OpFPExt, v, tt), nil
		}
		return l.b.Conv(ir.OpFPTrunc, v, tt), nil
	}
	return nil, fmt.Errorf("lang: cannot convert %s to %s", from, to)
}

// usualConv applies the usual arithmetic conversions to a pair of operands
// and returns the common type.
func (l *lowerer) usualConv(a ir.Value, at TypeName, b ir.Value, bt TypeName) (ir.Value, ir.Value, TypeName, error) {
	common := at
	if rank(bt) > rank(at) {
		common = bt
	}
	if common.Base == "bool" {
		common = scalar("int")
	}
	ca, err := l.convert(a, at, common)
	if err != nil {
		return nil, nil, common, err
	}
	cb, err := l.convert(b, bt, common)
	if err != nil {
		return nil, nil, common, err
	}
	return ca, cb, common, nil
}

// constFor returns a 0/1 constant of a scalar type.
func constFor(t TypeName, v int64) ir.Value {
	it, _ := irType(t)
	if isFloatT(t) {
		return ir.ConstFloat(it, float64(v))
	}
	return ir.ConstInt(it, v)
}

// ---------- statements ----------

func (l *lowerer) lowerBlock(b *BlockStmt) error {
	l.pushScope()
	defer l.popScope()
	for _, s := range b.Stmts {
		if l.b.Block().Term() != nil {
			// Unreachable trailing code; emit into a discard block.
			l.b.SetBlock(l.f.NewBlock("dead"))
		}
		if err := l.lowerStmt(s); err != nil {
			return err
		}
	}
	return nil
}

// stmtLine returns the 1-based source line of a statement, or 0 for block
// statements (which have no line of their own).
func stmtLine(s Stmt) int {
	switch st := s.(type) {
	case *DeclStmt:
		return st.Line
	case *AssignStmt:
		return st.Line
	case *IncDecStmt:
		return st.Line
	case *IfStmt:
		return st.Line
	case *WhileStmt:
		return st.Line
	case *DoWhileStmt:
		return st.Line
	case *ForStmt:
		return st.Line
	case *BreakStmt:
		return st.Line
	case *ContinueStmt:
		return st.Line
	case *ReturnStmt:
		return st.Line
	case *ExprStmt:
		return st.Line
	}
	return 0
}

func (l *lowerer) lowerStmt(s Stmt) error {
	if line := stmtLine(s); line > 0 {
		l.b.SetLoc(ir.Loc{Line: int32(line)})
	}
	switch st := s.(type) {
	case *BlockStmt:
		return l.lowerBlock(st)
	case *DeclStmt:
		return l.lowerDecl(st)
	case *AssignStmt:
		return l.lowerAssign(st)
	case *IncDecStmt:
		op := "+="
		if st.Op == "--" {
			op = "-="
		}
		return l.lowerAssign(&AssignStmt{LHS: st.LHS, Op: op, RHS: &IntLit{Value: 1}, Line: st.Line})
	case *IfStmt:
		return l.lowerIf(st)
	case *WhileStmt:
		return l.lowerWhile(st)
	case *DoWhileStmt:
		return l.lowerDoWhile(st)
	case *ForStmt:
		return l.lowerFor(st)
	case *BreakStmt:
		if len(l.breakTo) == 0 {
			return &Error{st.Line, 0, "break outside loop"}
		}
		l.b.Br(l.breakTo[len(l.breakTo)-1])
		return nil
	case *ContinueStmt:
		if len(l.contTo) == 0 {
			return &Error{st.Line, 0, "continue outside loop"}
		}
		l.b.Br(l.contTo[len(l.contTo)-1])
		return nil
	case *ReturnStmt:
		l.b.Ret(nil)
		return nil
	case *ExprStmt:
		_, _, err := l.lowerExpr(st.X)
		return err
	}
	return fmt.Errorf("lang: unknown statement %T", s)
}

func (l *lowerer) lowerDecl(st *DeclStmt) error {
	if st.Type.Ptr {
		return &Error{st.Line, 0, "pointer-typed locals are not supported"}
	}
	if l.scopes[len(l.scopes)-1][st.Name] != nil {
		return &Error{st.Line, 0, "redeclaration of " + st.Name}
	}
	t, err := irType(st.Type)
	if err != nil {
		return err
	}
	slot := l.newAlloca(t, st.Name)
	l.define(st.Name, &local{typ: st.Type, slot: slot})
	if st.Init != nil {
		v, vt, err := l.lowerExpr(st.Init)
		if err != nil {
			return err
		}
		cv, err := l.convert(v, vt, st.Type)
		if err != nil {
			return &Error{st.Line, 0, err.Error()}
		}
		l.b.Store(cv, slot)
	}
	return nil
}

var compoundOps = map[string]string{
	"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
	"<<=": "<<", ">>=": ">>", "&=": "&", "|=": "|", "^=": "^",
}

func (l *lowerer) lowerAssign(st *AssignStmt) error {
	// Compute the store destination and the current value lazily.
	switch lhs := st.LHS.(type) {
	case *IdentExpr:
		lo := l.lookup(lhs.Name)
		if lo == nil {
			return &Error{lhs.Line, 0, "undefined variable " + lhs.Name}
		}
		if lo.slot == nil {
			return &Error{lhs.Line, 0, "cannot assign to pointer parameter " + lhs.Name}
		}
		rhs := st.RHS
		if op, ok := compoundOps[st.Op]; ok {
			rhs = &BinaryExpr{Op: op, L: &IdentExpr{Name: lhs.Name, Line: lhs.Line}, R: st.RHS, Line: st.Line}
		}
		v, vt, err := l.lowerExpr(rhs)
		if err != nil {
			return err
		}
		cv, err := l.convert(v, vt, lo.typ)
		if err != nil {
			return &Error{st.Line, 0, err.Error()}
		}
		l.b.Store(cv, lo.slot)
		return nil
	case *IndexExpr:
		addr, elemT, err := l.lowerAddr(lhs)
		if err != nil {
			return err
		}
		var v ir.Value
		var vt TypeName
		if op, ok := compoundOps[st.Op]; ok {
			cur := l.b.Load(addr)
			rv, rt, err := l.lowerExpr(st.RHS)
			if err != nil {
				return err
			}
			v, vt, err = l.binOp(op, cur, elemT, rv, rt, st.Line)
			if err != nil {
				return err
			}
		} else {
			v, vt, err = l.lowerExpr(st.RHS)
			if err != nil {
				return err
			}
		}
		cv, err := l.convert(v, vt, elemT)
		if err != nil {
			return &Error{st.Line, 0, err.Error()}
		}
		l.b.Store(cv, addr)
		return nil
	}
	return &Error{st.Line, 0, "invalid assignment target"}
}

func (l *lowerer) lowerIf(st *IfStmt) error {
	cond, ct, err := l.lowerExpr(st.Cond)
	if err != nil {
		return err
	}
	cb, err := l.convert(cond, ct, scalar("bool"))
	if err != nil {
		return &Error{st.Line, 0, err.Error()}
	}
	thenB := l.f.NewBlock("if.then")
	merge := l.f.NewBlock("if.end")
	elseB := merge
	if st.Else != nil {
		elseB = l.f.NewBlock("if.else")
	}
	l.b.CondBr(cb, thenB, elseB)
	l.b.SetBlock(thenB)
	if err := l.lowerBlock(st.Then); err != nil {
		return err
	}
	if l.b.Block().Term() == nil {
		l.b.Br(merge)
	}
	if st.Else != nil {
		l.b.SetBlock(elseB)
		if err := l.lowerStmt(st.Else); err != nil {
			return err
		}
		if l.b.Block().Term() == nil {
			l.b.Br(merge)
		}
	}
	l.b.SetBlock(merge)
	return nil
}

func (l *lowerer) lowerWhile(st *WhileStmt) error {
	header := l.f.NewBlock("while.cond")
	exit := l.f.NewBlock("while.end")
	latch := l.f.NewBlock("while.latch")
	l.b.Br(header)
	l.b.SetBlock(header)
	cond, ct, err := l.lowerExpr(st.Cond)
	if err != nil {
		return err
	}
	cb, err := l.convert(cond, ct, scalar("bool"))
	if err != nil {
		return &Error{st.Line, 0, err.Error()}
	}
	body := l.f.NewBlock("while.body")
	l.b.CondBr(cb, body, exit)
	l.b.SetBlock(body)
	l.breakTo = append(l.breakTo, exit)
	l.contTo = append(l.contTo, latch)
	err = l.lowerBlock(st.Body)
	l.breakTo = l.breakTo[:len(l.breakTo)-1]
	l.contTo = l.contTo[:len(l.contTo)-1]
	if err != nil {
		return err
	}
	// Loop-control branches attribute to the loop statement's own line.
	l.b.SetLoc(ir.Loc{Line: int32(st.Line)})
	if l.b.Block().Term() == nil {
		l.b.Br(latch)
	}
	l.b.SetBlock(latch)
	l.b.Br(header)
	l.b.SetBlock(exit)
	return nil
}

func (l *lowerer) lowerDoWhile(st *DoWhileStmt) error {
	body := l.f.NewBlock("do.body")
	latch := l.f.NewBlock("do.cond")
	exit := l.f.NewBlock("do.end")
	l.b.Br(body)
	l.b.SetBlock(body)
	l.breakTo = append(l.breakTo, exit)
	l.contTo = append(l.contTo, latch)
	err := l.lowerBlock(st.Body)
	l.breakTo = l.breakTo[:len(l.breakTo)-1]
	l.contTo = l.contTo[:len(l.contTo)-1]
	if err != nil {
		return err
	}
	l.b.SetLoc(ir.Loc{Line: int32(st.Line)})
	if l.b.Block().Term() == nil {
		l.b.Br(latch)
	}
	l.b.SetBlock(latch)
	cond, ct, err := l.lowerExpr(st.Cond)
	if err != nil {
		return err
	}
	cb, err := l.convert(cond, ct, scalar("bool"))
	if err != nil {
		return &Error{st.Line, 0, err.Error()}
	}
	l.b.CondBr(cb, body, exit)
	l.b.SetBlock(exit)
	return nil
}

func (l *lowerer) lowerFor(st *ForStmt) error {
	l.pushScope()
	defer l.popScope()
	if st.Init != nil {
		if err := l.lowerStmt(st.Init); err != nil {
			return err
		}
	}
	header := l.f.NewBlock("for.cond")
	exit := l.f.NewBlock("for.end")
	latch := l.f.NewBlock("for.inc")
	l.b.Br(header)
	l.b.SetBlock(header)
	var cb ir.Value = ir.True
	if st.Cond != nil {
		cond, ct, err := l.lowerExpr(st.Cond)
		if err != nil {
			return err
		}
		cb, err = l.convert(cond, ct, scalar("bool"))
		if err != nil {
			return &Error{st.Line, 0, err.Error()}
		}
	}
	body := l.f.NewBlock("for.body")
	l.b.CondBr(cb, body, exit)
	l.b.SetBlock(body)
	l.breakTo = append(l.breakTo, exit)
	l.contTo = append(l.contTo, latch)
	err := l.lowerBlock(st.Body)
	l.breakTo = l.breakTo[:len(l.breakTo)-1]
	l.contTo = l.contTo[:len(l.contTo)-1]
	if err != nil {
		return err
	}
	l.b.SetLoc(ir.Loc{Line: int32(st.Line)})
	if l.b.Block().Term() == nil {
		l.b.Br(latch)
	}
	l.b.SetBlock(latch)
	if st.Post != nil {
		if err := l.lowerStmt(st.Post); err != nil {
			return err
		}
	}
	l.b.Br(header)
	l.b.SetBlock(exit)
	return nil
}

// ---------- expressions ----------

func (l *lowerer) lowerExpr(e Expr) (ir.Value, TypeName, error) {
	switch ex := e.(type) {
	case *IntLit:
		if ex.Long || ex.Value > (1<<31)-1 || ex.Value < -(1<<31) {
			return ir.ConstInt(ir.I64, ex.Value), scalar("long"), nil
		}
		return ir.ConstInt(ir.I32, ex.Value), scalar("int"), nil
	case *FloatLit:
		if ex.Single {
			return ir.ConstFloat(ir.F32, ex.Value), scalar("float"), nil
		}
		return ir.ConstFloat(ir.F64, ex.Value), scalar("double"), nil
	case *IdentExpr:
		lo := l.lookup(ex.Name)
		if lo == nil {
			return nil, TypeName{}, &Error{ex.Line, 0, "undefined variable " + ex.Name}
		}
		if lo.ptrVal != nil {
			return lo.ptrVal, lo.typ, nil
		}
		return l.b.Load(lo.slot), lo.typ, nil
	case *UnaryExpr:
		return l.lowerUnary(ex)
	case *BinaryExpr:
		if ex.Op == "&&" || ex.Op == "||" {
			return l.lowerShortCircuit(ex)
		}
		a, at, err := l.lowerExpr(ex.L)
		if err != nil {
			return nil, TypeName{}, err
		}
		b, bt, err := l.lowerExpr(ex.R)
		if err != nil {
			return nil, TypeName{}, err
		}
		return l.binOp(ex.Op, a, at, b, bt, ex.Line)
	case *TernaryExpr:
		return l.lowerTernary(ex)
	case *IndexExpr:
		addr, elemT, err := l.lowerAddr(ex)
		if err != nil {
			return nil, TypeName{}, err
		}
		return l.b.Load(addr), elemT, nil
	case *CallExpr:
		return l.lowerCall(ex)
	case *CastExpr:
		v, vt, err := l.lowerExpr(ex.X)
		if err != nil {
			return nil, TypeName{}, err
		}
		cv, err := l.convert(v, vt, ex.Type)
		if err != nil {
			return nil, TypeName{}, err
		}
		return cv, ex.Type, nil
	}
	return nil, TypeName{}, fmt.Errorf("lang: unknown expression %T", e)
}

func (l *lowerer) lowerAddr(ex *IndexExpr) (ir.Value, TypeName, error) {
	base, bt, err := l.lowerExpr(ex.Base)
	if err != nil {
		return nil, TypeName{}, err
	}
	if !bt.Ptr {
		return nil, TypeName{}, &Error{ex.Line, 0, "indexed expression is not a pointer"}
	}
	idx, it, err := l.lowerExpr(ex.Idx)
	if err != nil {
		return nil, TypeName{}, err
	}
	if !isIntT(it) {
		return nil, TypeName{}, &Error{ex.Line, 0, "array index must be an integer"}
	}
	if it.Base == "bool" {
		idx, _ = l.convert(idx, it, scalar("int"))
	}
	return l.b.GEP(base, idx), scalar(bt.Base), nil
}

func (l *lowerer) lowerUnary(ex *UnaryExpr) (ir.Value, TypeName, error) {
	v, vt, err := l.lowerExpr(ex.X)
	if err != nil {
		return nil, TypeName{}, err
	}
	switch ex.Op {
	case "-":
		if vt.Base == "bool" {
			v, vt = mustConv(l, v, vt, scalar("int"))
		}
		if isFloatT(vt) {
			t, _ := irType(vt)
			return l.b.FSub(ir.ConstFloat(t, 0), v), vt, nil
		}
		t, _ := irType(vt)
		return l.b.Sub(ir.ConstInt(t, 0), v), vt, nil
	case "!":
		bv, err := l.convert(v, vt, scalar("bool"))
		if err != nil {
			return nil, TypeName{}, err
		}
		return l.b.Xor(bv, ir.True), scalar("bool"), nil
	case "~":
		if !isIntT(vt) || vt.Base == "bool" {
			return nil, TypeName{}, fmt.Errorf("lang: ~ requires an integer operand")
		}
		t, _ := irType(vt)
		return l.b.Xor(v, ir.ConstInt(t, -1)), vt, nil
	}
	return nil, TypeName{}, fmt.Errorf("lang: unknown unary op %q", ex.Op)
}

func mustConv(l *lowerer, v ir.Value, from, to TypeName) (ir.Value, TypeName) {
	cv, err := l.convert(v, from, to)
	if err != nil {
		panic(err)
	}
	return cv, to
}

var cmpPreds = map[string][2]ir.Pred{
	// integer pred, float pred
	"==": {ir.EQ, ir.OEQ},
	"!=": {ir.NE, ir.ONE},
	"<":  {ir.SLT, ir.OLT},
	"<=": {ir.SLE, ir.OLE},
	">":  {ir.SGT, ir.OGT},
	">=": {ir.SGE, ir.OGE},
}

func (l *lowerer) binOp(op string, a ir.Value, at TypeName, b ir.Value, bt TypeName, line int) (ir.Value, TypeName, error) {
	if at.Ptr || bt.Ptr {
		return nil, TypeName{}, &Error{line, 0, "pointer arithmetic outside indexing is not supported"}
	}
	if preds, ok := cmpPreds[op]; ok {
		ca, cb, common, err := l.usualConv(a, at, b, bt)
		if err != nil {
			return nil, TypeName{}, &Error{line, 0, err.Error()}
		}
		if isFloatT(common) {
			return l.b.FCmp(preds[1], ca, cb), scalar("bool"), nil
		}
		return l.b.ICmp(preds[0], ca, cb), scalar("bool"), nil
	}
	ca, cb, common, err := l.usualConv(a, at, b, bt)
	if err != nil {
		return nil, TypeName{}, &Error{line, 0, err.Error()}
	}
	fl := isFloatT(common)
	var opcode ir.Op
	switch op {
	case "+":
		opcode = ir.OpAdd
		if fl {
			opcode = ir.OpFAdd
		}
	case "-":
		opcode = ir.OpSub
		if fl {
			opcode = ir.OpFSub
		}
	case "*":
		opcode = ir.OpMul
		if fl {
			opcode = ir.OpFMul
		}
	case "/":
		opcode = ir.OpSDiv
		if fl {
			opcode = ir.OpFDiv
		}
	case "%":
		if fl {
			return nil, TypeName{}, &Error{line, 0, "%% requires integer operands"}
		}
		opcode = ir.OpSRem
	case "<<", ">>", "&", "|", "^":
		if fl {
			return nil, TypeName{}, &Error{line, 0, "bitwise ops require integer operands"}
		}
		switch op {
		case "<<":
			opcode = ir.OpShl
		case ">>":
			opcode = ir.OpAShr
		case "&":
			opcode = ir.OpAnd
		case "|":
			opcode = ir.OpOr
		case "^":
			opcode = ir.OpXor
		}
	default:
		return nil, TypeName{}, &Error{line, 0, fmt.Sprintf("unknown operator %q", op)}
	}
	return l.b.Bin(opcode, ca, cb), common, nil
}

// lowerShortCircuit lowers && and || with real control flow through a
// temporary, exactly like Clang's scalar expression emitter; mem2reg turns
// the temporary into phis.
func (l *lowerer) lowerShortCircuit(ex *BinaryExpr) (ir.Value, TypeName, error) {
	tmp := l.newAlloca(ir.I1, "sc.tmp")
	a, at, err := l.lowerExpr(ex.L)
	if err != nil {
		return nil, TypeName{}, err
	}
	ab, err := l.convert(a, at, scalar("bool"))
	if err != nil {
		return nil, TypeName{}, &Error{ex.Line, 0, err.Error()}
	}
	l.b.Store(ab, tmp)
	evalR := l.f.NewBlock("sc.rhs")
	merge := l.f.NewBlock("sc.end")
	if ex.Op == "&&" {
		l.b.CondBr(ab, evalR, merge)
	} else {
		l.b.CondBr(ab, merge, evalR)
	}
	l.b.SetBlock(evalR)
	b, bt, err := l.lowerExpr(ex.R)
	if err != nil {
		return nil, TypeName{}, err
	}
	bb, err := l.convert(b, bt, scalar("bool"))
	if err != nil {
		return nil, TypeName{}, &Error{ex.Line, 0, err.Error()}
	}
	l.b.Store(bb, tmp)
	l.b.Br(merge)
	l.b.SetBlock(merge)
	return l.b.Load(tmp), scalar("bool"), nil
}

// lowerTernary lowers c ? a : b with control flow through a temporary.
func (l *lowerer) lowerTernary(ex *TernaryExpr) (ir.Value, TypeName, error) {
	cond, ct, err := l.lowerExpr(ex.Cond)
	if err != nil {
		return nil, TypeName{}, err
	}
	cb, err := l.convert(cond, ct, scalar("bool"))
	if err != nil {
		return nil, TypeName{}, err
	}
	thenB := l.f.NewBlock("sel.then")
	elseB := l.f.NewBlock("sel.else")
	merge := l.f.NewBlock("sel.end")
	l.b.CondBr(cb, thenB, elseB)

	// Evaluate both arms into a temporary of the common type. The common
	// type needs both arm types, so evaluate the then-arm first, then the
	// else-arm, then convert: we stash raw values and convert in each arm.
	l.b.SetBlock(thenB)
	av, at, err := l.lowerExpr(ex.Then)
	if err != nil {
		return nil, TypeName{}, err
	}
	thenEnd := l.b.Block()

	l.b.SetBlock(elseB)
	bv, bt, err := l.lowerExpr(ex.Else)
	if err != nil {
		return nil, TypeName{}, err
	}
	elseEnd := l.b.Block()

	common := at
	if rank(bt) > rank(at) {
		common = bt
	}
	tt, _ := irType(common)
	tmp := l.newAlloca(tt, "sel.tmp")

	l.b.SetBlock(thenEnd)
	cav, err := l.convert(av, at, common)
	if err != nil {
		return nil, TypeName{}, err
	}
	l.b.Store(cav, tmp)
	l.b.Br(merge)

	l.b.SetBlock(elseEnd)
	cbv, err := l.convert(bv, bt, common)
	if err != nil {
		return nil, TypeName{}, err
	}
	l.b.Store(cbv, tmp)
	l.b.Br(merge)

	l.b.SetBlock(merge)
	return l.b.Load(tmp), common, nil
}

func (l *lowerer) lowerCall(ex *CallExpr) (ir.Value, TypeName, error) {
	argc := func(n int) error {
		if len(ex.Args) != n {
			return &Error{ex.Line, 0, fmt.Sprintf("%s expects %d arguments, got %d", ex.Name, n, len(ex.Args))}
		}
		return nil
	}
	switch ex.Name {
	case "tid", "ntid", "ctaid", "nctaid":
		if err := argc(0); err != nil {
			return nil, TypeName{}, err
		}
		var v *ir.Instr
		switch ex.Name {
		case "tid":
			v = l.b.TID()
		case "ntid":
			v = l.b.NTID()
		case "ctaid":
			v = l.b.CTAID()
		case "nctaid":
			v = l.b.NCTAID()
		}
		return v, scalar("int"), nil
	case "global_id":
		if err := argc(0); err != nil {
			return nil, TypeName{}, err
		}
		prod := l.b.Mul(l.b.CTAID(), l.b.NTID())
		return l.b.Add(prod, l.b.TID()), scalar("int"), nil
	case "syncthreads":
		if err := argc(0); err != nil {
			return nil, TypeName{}, err
		}
		l.b.Barrier()
		return ir.ConstInt(ir.I32, 0), scalar("int"), nil
	case "sqrt", "fabs", "exp", "log", "sin", "cos", "floor":
		if err := argc(1); err != nil {
			return nil, TypeName{}, err
		}
		v, vt, err := l.lowerExpr(ex.Args[0])
		if err != nil {
			return nil, TypeName{}, err
		}
		if !isFloatT(vt) {
			v, vt = mustConv(l, v, vt, scalar("double"))
		}
		ops := map[string]ir.Op{
			"sqrt": ir.OpSqrt, "fabs": ir.OpFAbs, "exp": ir.OpExp,
			"log": ir.OpLog, "sin": ir.OpSin, "cos": ir.OpCos, "floor": ir.OpFloor,
		}
		return l.b.MathUnary(ops[ex.Name], v), vt, nil
	case "pow":
		if err := argc(2); err != nil {
			return nil, TypeName{}, err
		}
		a, at, err := l.lowerExpr(ex.Args[0])
		if err != nil {
			return nil, TypeName{}, err
		}
		b, bt, err := l.lowerExpr(ex.Args[1])
		if err != nil {
			return nil, TypeName{}, err
		}
		if !isFloatT(at) {
			a, at = mustConv(l, a, at, scalar("double"))
		}
		if !isFloatT(bt) {
			b, bt = mustConv(l, b, bt, scalar("double"))
		}
		ca, cb, common, err := l.usualConv(a, at, b, bt)
		if err != nil {
			return nil, TypeName{}, err
		}
		return l.b.MathBinary(ir.OpPow, ca, cb), common, nil
	case "min", "max", "fmin", "fmax":
		if err := argc(2); err != nil {
			return nil, TypeName{}, err
		}
		a, at, err := l.lowerExpr(ex.Args[0])
		if err != nil {
			return nil, TypeName{}, err
		}
		b, bt, err := l.lowerExpr(ex.Args[1])
		if err != nil {
			return nil, TypeName{}, err
		}
		ca, cb, common, err := l.usualConv(a, at, b, bt)
		if err != nil {
			return nil, TypeName{}, err
		}
		isMin := ex.Name == "min" || ex.Name == "fmin"
		var op ir.Op
		if isFloatT(common) {
			op = ir.OpFMax
			if isMin {
				op = ir.OpFMin
			}
		} else {
			op = ir.OpSMax
			if isMin {
				op = ir.OpSMin
			}
		}
		return l.b.MathBinary(op, ca, cb), common, nil
	case "abs":
		if err := argc(1); err != nil {
			return nil, TypeName{}, err
		}
		v, vt, err := l.lowerExpr(ex.Args[0])
		if err != nil {
			return nil, TypeName{}, err
		}
		if isFloatT(vt) {
			return l.b.MathUnary(ir.OpFAbs, v), vt, nil
		}
		t, _ := irType(vt)
		neg := l.b.Sub(ir.ConstInt(t, 0), v)
		return l.b.MathBinary(ir.OpSMax, v, neg), vt, nil
	}
	return nil, TypeName{}, &Error{ex.Line, 0, "unknown builtin " + ex.Name}
}
