package profile

import (
	"strings"
	"testing"

	"uu/internal/codegen"
	"uu/internal/core"
	"uu/internal/gpusim"
	"uu/internal/ir"
)

// loopRow builds a synthetic measured loop row for Evaluate tests.
func loopRow(id, line, iter, dup int32, self int64) LoopRow {
	return LoopRow{
		Meta: codegen.LoopMeta{ID: id, Parent: -1, Line: line, Iter: iter, Dup: dup, Depth: 1},
		Self: self, Cum: self,
	}
}

func TestEvaluateVerdicts(t *testing.T) {
	decide := []core.Decision{{LoopID: 0, HeaderLine: 12, Factor: 3, Paths: 4, Size: 10}}

	// Hit: the hottest loop's line carries a decision.
	r := &Report{Kernel: "k", TotalCycles: 100, Loops: []LoopRow{
		loopRow(0, 12, 0, 0, 80), loopRow(1, 20, 0, 0, 20),
	}}
	ev := Evaluate(r, decide, []core.SkipRecord{{LoopID: 1, HeaderLine: 20, Reason: core.SkipSinglePath}})
	if ev.Verdict != VerdictHit {
		t.Fatalf("verdict = %s, want %s", ev.Verdict, VerdictHit)
	}

	// Deliberate skip of the hottest loop: CORRECT-SKIP, not MISPREDICT.
	r = &Report{Kernel: "k", TotalCycles: 100, Loops: []LoopRow{
		loopRow(0, 12, 0, 0, 20), loopRow(1, 20, 0, 0, 80),
	}}
	ev = Evaluate(r, decide, []core.SkipRecord{{LoopID: 1, HeaderLine: 20, Reason: core.SkipConvergentOp}})
	if ev.Verdict != VerdictCorrectSkip || ev.Reason != core.SkipConvergentOp {
		t.Fatalf("verdict = %s (%s), want %s (ConvergentOp)", ev.Verdict, ev.Reason, VerdictCorrectSkip)
	}
	if ev.Mispredicted() {
		t.Fatalf("CORRECT-SKIP counted as a misprediction")
	}

	// Size-budget rejection of the hottest loop: genuine MISPREDICT.
	ev = Evaluate(r, decide, []core.SkipRecord{{LoopID: 1, HeaderLine: 20, Reason: core.SkipSizeOverBudget}})
	if ev.Verdict != VerdictMispredict || ev.Reason != core.SkipSizeOverBudget {
		t.Fatalf("verdict = %s (%s), want %s", ev.Verdict, ev.Reason, VerdictMispredict)
	}

	// Hottest loop the heuristic never saw: MISPREDICT with NotConsidered.
	ev = Evaluate(r, decide, nil)
	if ev.Verdict != VerdictMispredict || ev.Reason != "NotConsidered" {
		t.Fatalf("verdict = %s (%s), want MISPREDICT (NotConsidered)", ev.Verdict, ev.Reason)
	}
}

// TestEvaluateCloneJoin pins the clone-aware join: unroll/unmerge clones of a
// decided line pool into the decision row; clones of other lines keep their
// full origin as distinct rows and cannot mask or double-count each other.
func TestEvaluateCloneJoin(t *testing.T) {
	decide := []core.Decision{{LoopID: 0, HeaderLine: 12, Factor: 2, Paths: 2, Size: 8}}
	r := &Report{Kernel: "k", TotalCycles: 200, Loops: []LoopRow{
		loopRow(0, 12, 0, 0, 30), // decided base loop
		loopRow(1, 12, 2, 0, 25), // its .u2 clone — pools into the decision
		loopRow(2, 12, 2, 1, 15), // its .u2.d1 clone — pools too
		loopRow(3, 20, 0, 0, 60), // undecided base loop
		loopRow(4, 20, 2, 0, 70), // hot .u2 clone of L20: its own row
	}}
	skips := []core.SkipRecord{{LoopID: 3, HeaderLine: 20, Reason: core.SkipSizeOverBudget}}
	ev := Evaluate(r, decide, skips)

	if len(ev.Selected) != 1 || ev.Selected[0].Self != 70 || ev.Selected[0].Clones != 3 {
		t.Fatalf("decision row: self=%d clones=%d, want 70 over 3 clones",
			ev.Selected[0].Self, ev.Selected[0].Clones)
	}
	if len(ev.Unselected) != 2 {
		t.Fatalf("unselected rows = %d, want 2 (clones must stay distinct): %+v",
			len(ev.Unselected), ev.Unselected)
	}
	// Hottest first; the .u2 clone (70) outranks the base (60), and both carry
	// the skip reason recorded for their shared source line.
	if ev.Unselected[0].Origin != (ir.Loc{Line: 20, Iter: 2}) || ev.Unselected[0].Self != 70 {
		t.Fatalf("hottest unselected = %+v, want L20.u2 self=70", ev.Unselected[0])
	}
	for _, row := range ev.Unselected {
		if row.SkipReason != core.SkipSizeOverBudget {
			t.Fatalf("clone row lost the line's skip reason: %+v", row)
		}
	}
	// The hot clone aliases line 20, which was only rejected by the size
	// model — the verdict must surface the MISPREDICT, not average it away.
	if ev.Verdict != VerdictMispredict || ev.HottestLine != 20 {
		t.Fatalf("verdict = %s at L%d, want MISPREDICT at L20", ev.Verdict, ev.HottestLine)
	}
}

func TestExtractFeedbackSignals(t *testing.T) {
	r := &Report{Kernel: "k", TotalCycles: 100}
	a := loopRow(0, 12, 0, 0, 30)
	a.Counters[gpusim.ProfDivergeEvents] = 4
	a.Counters[gpusim.ProfMemTransactions] = 10
	b := loopRow(1, 12, 2, 0, 40) // clone of L12: sums into one signal
	b.Counters[gpusim.ProfDivergeEvents] = 6
	b.Counters[gpusim.ProfMemIdeal] = 5
	c := loopRow(2, 20, 0, 0, 20)
	r.Loops = []LoopRow{a, b, c}

	fb := ExtractFeedback(r, nil, nil, 1.25)
	if fb.Speedup != 1.25 {
		t.Fatalf("speedup = %v", fb.Speedup)
	}
	if len(fb.Signals) != 2 {
		t.Fatalf("signals = %d, want 2 (clones summed per line): %+v", len(fb.Signals), fb.Signals)
	}
	s := fb.Signals[0] // hottest first: L12 with 70 summed self cycles
	if s.Line != 12 || s.SelfCycles != 70 || s.DivergeEvents != 10 ||
		s.MemTransactions != 10 || s.MemIdeal != 5 {
		t.Fatalf("L12 signal = %+v", s)
	}
	if fb.Signals[1].Line != 20 || fb.Signals[1].SelfCycles != 20 {
		t.Fatalf("L20 signal = %+v", fb.Signals[1])
	}
}

func TestWritePredictionRendersSkipsAndForce(t *testing.T) {
	decide := []core.Decision{{LoopID: 0, HeaderLine: 12, Factor: 2, Paths: 2, Size: 8, Forced: true}}
	r := &Report{Kernel: "k", TotalCycles: 100, Loops: []LoopRow{
		loopRow(0, 12, 0, 0, 80), loopRow(1, 20, 0, 0, 20),
	}}
	skips := []core.SkipRecord{{LoopID: 1, HeaderLine: 20, Reason: core.SkipProfileDeny}}
	var sb strings.Builder
	if err := WritePrediction(&sb, r, decide, skips, 1024); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"forced", "skip:ProfileDeny", "selected the hottest loop"} {
		if !strings.Contains(out, want) {
			t.Fatalf("prediction table missing %q:\n%s", want, out)
		}
	}
}
