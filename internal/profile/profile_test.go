package profile

import (
	"bytes"
	"compress/gzip"
	"io"
	"strings"
	"testing"

	"uu/internal/codegen"
	"uu/internal/gpusim"
	"uu/internal/ir"
)

// testReport builds a hand-made two-loop program (an outer loop at L3
// containing an inner loop at L5, plus one top-level PC) with known
// counters, so aggregation is checkable by eye.
func testReport() *Report {
	prog := &codegen.Program{
		Name: "k",
		Lines: []codegen.LineInfo{
			{Loc: ir.Loc{Line: 2}, Loop: -1},                 // pc 0: outside any loop
			{Loc: ir.Loc{Line: 4}, Loop: 0},                  // pc 1: outer body
			{Loc: ir.Loc{Line: 6}, Loop: 1},                  // pc 2: inner body
			{Loc: ir.Loc{Line: 6, Iter: 1}, Loop: 1},         // pc 3: unroll clone
			{Loc: ir.Loc{Line: 6, Iter: 1, Dup: 2}, Loop: 1}, // pc 4: unmerge dup
		},
		Loops: []codegen.LoopMeta{
			{ID: 0, Parent: -1, Line: 3, Depth: 1, Header: "outer"},
			{ID: 1, Parent: 0, Line: 5, Depth: 2, Header: "inner"},
		},
	}
	prof := &gpusim.Profile{Kernel: "k"}
	for c := range prof.Counters {
		prof.Counters[c] = make([]int64, len(prog.Lines))
	}
	issue := prof.Counters[gpusim.ProfIssueCycles]
	// Whole cycles in fixed point: pc0=10, pc1=20, pc2=30, pc3=40, pc4=50.
	for pc, cyc := range []int64{10, 20, 30, 40, 50} {
		issue[pc] = cyc * gpusim.ProfFPScale
	}
	prof.Counters[gpusim.ProfThreadExecs][2] = 96
	return Build(prog, prof)
}

func TestBuildAggregation(t *testing.T) {
	r := testReport()
	if r.TotalCycles != 150 {
		t.Errorf("TotalCycles = %d, want 150", r.TotalCycles)
	}
	if len(r.Lines) != 5 {
		t.Fatalf("got %d line rows, want 5", len(r.Lines))
	}
	// Hottest first: the unmerge dup L6.u1.d2 with 50 cycles.
	if got := r.Lines[0].Label(); got != "L6.u1.d2" {
		t.Errorf("hottest line = %q, want L6.u1.d2", got)
	}
	var outer, inner *LoopRow
	for i := range r.Loops {
		switch r.Loops[i].Meta.ID {
		case 0:
			outer = &r.Loops[i]
		case 1:
			inner = &r.Loops[i]
		}
	}
	if inner.Self != 120 || inner.Cum != 120 {
		t.Errorf("inner self/cum = %d/%d, want 120/120", inner.Self, inner.Cum)
	}
	if outer.Self != 20 || outer.Cum != 140 {
		t.Errorf("outer self/cum = %d/%d, want 20/140", outer.Self, outer.Cum)
	}
	// Self, not cum, picks the hottest loop: the inner body.
	if hot := r.HottestLoop(); hot == nil || hot.Meta.ID != 1 {
		t.Errorf("HottestLoop = %+v, want inner loop (id 1)", hot)
	}
}

func TestRenderersDeterministic(t *testing.T) {
	render := func() string {
		r := testReport()
		var buf bytes.Buffer
		if err := WriteHotspots(&buf, r); err != nil {
			t.Fatal(err)
		}
		if err := WriteFolded(&buf, r); err != nil {
			t.Fatal(err)
		}
		if err := WritePprof(&buf, r); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Error("renderers are not deterministic across identical reports")
	}
	if !strings.Contains(a, "loop@L5") || !strings.Contains(a, "L6.u1.d2") {
		t.Errorf("missing loop/clone labels in output:\n%.600s", a)
	}
}

func TestFoldedStacks(t *testing.T) {
	r := testReport()
	var buf bytes.Buffer
	if err := WriteFolded(&buf, r); err != nil {
		t.Fatal(err)
	}
	want := "k;loop@L3;loop@L5;L6.u1.d2 50\n"
	if !strings.Contains(buf.String(), want) {
		t.Errorf("folded output missing %q:\n%s", want, buf.String())
	}
}

// TestPprofWellFormed checks the hand-encoded protobuf's envelope: valid
// deterministic gzip whose payload carries the frame names in the string
// table. (CI additionally runs `go tool pprof -top` on a real profile.)
func TestPprofWellFormed(t *testing.T) {
	r := testReport()
	var buf bytes.Buffer
	if err := WritePprof(&buf, r); err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatalf("not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("gunzip: %v", err)
	}
	for _, s := range []string{"cycles", "instructions", "k.cu", "loop@L5", "L6.u1.d2"} {
		if !bytes.Contains(raw, []byte(s)) {
			t.Errorf("pprof payload missing string %q", s)
		}
	}
}
