package profile

import (
	"compress/gzip"
	"io"

	"uu/internal/gpusim"
)

// This file serializes a Report as a gzipped pprof profile.proto, encoded
// by hand against the protobuf wire format (no generated code, no
// dependencies). Only the fields `go tool pprof` needs are emitted:
// sample/location/function/string_table plus the sample and period value
// types. Samples carry two values per stack — modelled cycles and
// thread-level executed instructions — with leaf-first location lists
// (source line, enclosing loops innermost-first, kernel root).
//
// Field numbers follow
// https://github.com/google/pprof/blob/main/proto/profile.proto:
//
//	Profile:  1 sample_type, 2 sample, 4 location, 5 function,
//	          6 string_table, 9 time_nanos, 11 period_type, 12 period
//	ValueType: 1 type, 2 unit
//	Sample:    1 location_id (repeated), 2 value (repeated)
//	Location:  1 id, 4 line
//	Line:      1 function_id, 2 line
//	Function:  1 id, 2 name, 3 system_name, 4 filename, 5 start_line
//
// time_nanos is left zero so identical reports serialize identically.

// pbuf is a minimal protobuf message builder.
type pbuf struct {
	b []byte
}

func (p *pbuf) varint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

func (p *pbuf) key(field, wire int) { p.varint(uint64(field<<3 | wire)) }

// intField emits a varint field, skipping proto3 zero defaults.
func (p *pbuf) intField(field int, v int64) {
	if v == 0 {
		return
	}
	p.key(field, 0)
	p.varint(uint64(v))
}

func (p *pbuf) bytesField(field int, data []byte) {
	p.key(field, 2)
	p.varint(uint64(len(data)))
	p.b = append(p.b, data...)
}

func (p *pbuf) strField(field int, s string) {
	p.key(field, 2)
	p.varint(uint64(len(s)))
	p.b = append(p.b, s...)
}

// packed emits a repeated varint field in packed encoding.
func (p *pbuf) packed(field int, vs []int64) {
	if len(vs) == 0 {
		return
	}
	var tmp pbuf
	for _, v := range vs {
		tmp.varint(uint64(v))
	}
	p.bytesField(field, tmp.b)
}

// WritePprof writes the report as a gzipped pprof protobuf that
// `go tool pprof` (and pprof-compatible viewers) can read.
func WritePprof(w io.Writer, r *Report) error {
	var out pbuf

	// String table: index 0 must be the empty string.
	strs := []string{""}
	strIdx := map[string]int64{"": 0}
	str := func(s string) int64 {
		if i, ok := strIdx[s]; ok {
			return i
		}
		i := int64(len(strs))
		strs = append(strs, s)
		strIdx[s] = i
		return i
	}

	// sample_type: cycles/cycles and instructions/count.
	vt := func(typ, unit string) []byte {
		var m pbuf
		m.intField(1, str(typ))
		m.intField(2, str(unit))
		return m.b
	}
	out.bytesField(1, vt("cycles", "cycles"))
	out.bytesField(1, vt("instructions", "count"))

	// One function+location per distinct frame label. IDs are 1-based and
	// assigned in first-use order, which is deterministic (report rows are
	// sorted).
	filename := str(r.Kernel + ".cu")
	type frame struct {
		name int64
		line int64
	}
	var frames []frame
	frameIdx := map[string]uint64{}
	frameID := func(label string, line int64) uint64 {
		if id, ok := frameIdx[label]; ok {
			return id
		}
		frames = append(frames, frame{name: str(label), line: line})
		id := uint64(len(frames))
		frameIdx[label] = id
		return id
	}
	kernelFrame := frameID(r.Kernel, 0)

	// Samples: leaf-first stacks per hot line row.
	for i := range r.Lines {
		row := &r.Lines[i]
		if row.Cycles == 0 && row.Counters[gpusim.ProfThreadExecs] == 0 {
			continue
		}
		locs := []int64{int64(frameID(row.Label(), int64(row.Loc.Line)))}
		chain := r.loopChain(row.Loop)
		for j := len(chain) - 1; j >= 0; j-- { // innermost first
			lr := chain[j]
			locs = append(locs, int64(frameID(lr.Label(), int64(lr.Meta.Line))))
		}
		locs = append(locs, int64(kernelFrame))
		var s pbuf
		s.packed(1, locs)
		s.packed(2, []int64{row.Cycles, row.Counters[gpusim.ProfThreadExecs]})
		out.bytesField(2, s.b)
	}

	// Locations and functions (id == frame id; one Line each).
	for i, f := range frames {
		id := int64(i + 1)
		var line pbuf
		line.intField(1, id)
		line.intField(2, f.line)
		var loc pbuf
		loc.intField(1, id)
		loc.bytesField(4, line.b)
		out.bytesField(4, loc.b)
	}
	for i, f := range frames {
		id := int64(i + 1)
		var fn pbuf
		fn.intField(1, id)
		fn.intField(2, f.name)
		fn.intField(3, f.name)
		fn.intField(4, filename)
		fn.intField(5, f.line)
		out.bytesField(5, fn.b)
	}

	for _, s := range strs {
		// Explicit even when empty: string_table[0] must exist.
		out.strField(6, s)
	}
	out.bytesField(11, vt("cycles", "cycles"))
	out.intField(12, 1)

	gz := gzip.NewWriter(w)
	if _, err := gz.Write(out.b); err != nil {
		return err
	}
	return gz.Close()
}
