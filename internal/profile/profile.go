// Package profile turns the simulator's per-PC hotspot counters into
// reports: it joins a gpusim.Profile with the program's line table
// (codegen.Program.Lines) and loop metadata (Program.Loops) to attribute
// modelled cycles to source lines and loops, and renders the result as
// deterministic text tables, folded stacks for flamegraph tools, and a
// gzipped pprof protobuf readable by `go tool pprof`.
//
// All renderings are pure functions of the profile and program; since
// gpusim produces byte-identical profiles for every worker count, so are
// the artifacts written here.
package profile

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"uu/internal/codegen"
	"uu/internal/gpusim"
	"uu/internal/ir"
)

// LineRow aggregates the counters of every PC sharing one source location
// (line plus clone tags) within one innermost loop.
type LineRow struct {
	Loc  ir.Loc
	Loop int32 // LoopMeta ID of the innermost enclosing loop, -1 when none
	// Counters are the per-PC counters summed over the row's PCs, indexed
	// by gpusim.ProfCounter.
	Counters [gpusim.ProfNumCounters]int64
	// Cycles is the row's modelled cycle total: issue plus exposed
	// dependency stalls (rounded from fixed point) plus fetch stalls.
	Cycles int64
}

// Label renders the row's source location ("L14", "L14.u2.d1", "?").
func (r *LineRow) Label() string { return r.Loc.String() }

// LoopRow aggregates rows per loop of the lowered program.
type LoopRow struct {
	Meta codegen.LoopMeta
	// Self sums cycles of PCs whose innermost loop is this one; Cum also
	// includes every nested loop, so an outer loop's Cum bounds its body.
	Self, Cum int64
	// Counters are the self counters (innermost PCs only).
	Counters [gpusim.ProfNumCounters]int64
}

// Label renders the loop frame name used in stacks ("loop@L12", with clone
// tags when the loop is an unroll/unmerge copy: "loop@L12.u1.d2" — or the
// header block name when the loop has no source anchor).
func (r *LoopRow) Label() string {
	if r.Meta.Line > 0 {
		return "loop@" + r.Meta.Origin().String()
	}
	return "loop@" + r.Meta.Header
}

// Report is the joined, aggregated view of one profiled kernel execution.
type Report struct {
	Kernel string
	// Total sums every counter over all PCs; TotalCycles is the modelled
	// cycle total of the whole kernel.
	Total       [gpusim.ProfNumCounters]int64
	TotalCycles int64
	// Lines is sorted hottest-first (ties broken by source order) and
	// includes every row with any nonzero counter.
	Lines []LineRow
	// Loops is every loop of the program in LoopMeta order (not cycle
	// order: the table renderer sorts a copy), including cold ones.
	Loops []LoopRow

	prog *codegen.Program
}

// Build joins a profile with its program's line table. prof must have been
// collected for prog (same flat PC indexing).
func Build(prog *codegen.Program, prof *gpusim.Profile) *Report {
	r := &Report{Kernel: prog.Name, prog: prog}
	type key struct {
		loc  ir.Loc
		loop int32
	}
	rows := map[key]*LineRow{}
	for pc := 0; pc < prof.NumPCs() && pc < len(prog.Lines); pc++ {
		li := prog.Lines[pc]
		nonzero := false
		for c := 0; c < int(gpusim.ProfNumCounters); c++ {
			if prof.Counters[c][pc] != 0 {
				nonzero = true
				break
			}
		}
		if !nonzero {
			continue
		}
		k := key{li.Loc, li.Loop}
		row := rows[k]
		if row == nil {
			row = &LineRow{Loc: li.Loc, Loop: li.Loop}
			rows[k] = row
		}
		for c := 0; c < int(gpusim.ProfNumCounters); c++ {
			v := prof.Counters[c][pc]
			row.Counters[c] += v
			r.Total[c] += v
		}
		row.Cycles += prof.Cycles(pc)
	}
	for _, row := range rows {
		r.TotalCycles += row.Cycles
		r.Lines = append(r.Lines, *row)
	}
	sort.Slice(r.Lines, func(i, j int) bool {
		a, b := &r.Lines[i], &r.Lines[j]
		if a.Cycles != b.Cycles {
			return a.Cycles > b.Cycles
		}
		if a.Loc != b.Loc {
			if a.Loc.Line != b.Loc.Line {
				return a.Loc.Line < b.Loc.Line
			}
			if a.Loc.Iter != b.Loc.Iter {
				return a.Loc.Iter < b.Loc.Iter
			}
			return a.Loc.Dup < b.Loc.Dup
		}
		return a.Loop < b.Loop
	})

	// Loop aggregation: self from the rows, cum by walking parent links.
	r.Loops = make([]LoopRow, len(prog.Loops))
	byID := map[int32]*LoopRow{}
	for i := range prog.Loops {
		r.Loops[i].Meta = prog.Loops[i]
		byID[prog.Loops[i].ID] = &r.Loops[i]
	}
	for i := range r.Lines {
		row := &r.Lines[i]
		lr := byID[row.Loop]
		if lr == nil {
			continue
		}
		lr.Self += row.Cycles
		for c := range row.Counters {
			lr.Counters[c] += row.Counters[c]
		}
		for lr != nil {
			lr.Cum += row.Cycles
			lr = byID[lr.Meta.Parent]
		}
	}
	return r
}

// HottestLoop returns the loop with the highest self cycles, or nil when
// the program has no loops. Self (not cumulative) cycles are the right
// ranking to compare against the heuristic's selection: an outer loop's
// cumulative time always dominates its inner loops', but the body time
// u&u actually transforms is where the cycles are spent — the innermost
// loop's self time, mirroring the heuristic's innermost-first policy.
func (r *Report) HottestLoop() *LoopRow {
	var best *LoopRow
	for i := range r.Loops {
		l := &r.Loops[i]
		if best == nil || l.Self > best.Self ||
			(l.Self == best.Self && (l.Meta.Depth < best.Meta.Depth ||
				(l.Meta.Depth == best.Meta.Depth && l.Meta.ID < best.Meta.ID))) {
			best = l
		}
	}
	return best
}

// loopChain returns the loop rows from outermost to the given loop.
func (r *Report) loopChain(id int32) []*LoopRow {
	var chain []*LoopRow
	for id >= 0 {
		var lr *LoopRow
		for i := range r.Loops {
			if r.Loops[i].Meta.ID == id {
				lr = &r.Loops[i]
				break
			}
		}
		if lr == nil {
			break
		}
		chain = append(chain, lr)
		id = lr.Meta.Parent
	}
	// Reverse: collected innermost-first.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}

// WriteHotspots renders the per-loop and per-line hotspot tables as text.
// Output is deterministic: identical profiles produce identical bytes.
func WriteHotspots(w io.Writer, r *Report) error {
	bw := &errWriter{w: w}
	fmt.Fprintf(bw, "kernel %s: %d cycles", r.Kernel, r.TotalCycles)
	fmt.Fprintf(bw, " (issue %d, dep_stall %d, fetch_stall %d)\n",
		fpRound(r.Total[gpusim.ProfIssueCycles]),
		fpRound(r.Total[gpusim.ProfDepStall]),
		r.Total[gpusim.ProfFetchStall])

	fmt.Fprintf(bw, "\nloops (hottest bodies first; cum covers the whole nest):\n")
	fmt.Fprintf(bw, "  %-16s %6s %12s %7s %12s %12s %12s\n",
		"loop", "depth", "self_cycles", "self%", "cum_cycles", "divergence", "mem_replay")
	loops := append([]LoopRow(nil), r.Loops...)
	sort.Slice(loops, func(i, j int) bool {
		if loops[i].Self != loops[j].Self {
			return loops[i].Self > loops[j].Self
		}
		return loops[i].Meta.ID < loops[j].Meta.ID
	})
	for i := range loops {
		l := &loops[i]
		replay := l.Counters[gpusim.ProfMemTransactions] - l.Counters[gpusim.ProfMemIdeal]
		if replay < 0 {
			replay = 0
		}
		fmt.Fprintf(bw, "  %-16s %6d %12d %6.1f%% %12d %12d %12d\n",
			l.Label(), l.Meta.Depth, l.Self, pct(l.Self, r.TotalCycles), l.Cum,
			l.Counters[gpusim.ProfDivergeEvents], replay)
	}

	fmt.Fprintf(bw, "\nlines (hottest first):\n")
	fmt.Fprintf(bw, "  %-14s %-16s %10s %6s %12s %12s %12s %10s %10s\n",
		"line", "loop", "cycles", "cyc%", "warp_execs", "thread_execs", "dep_stall", "divergence", "mem_tx")
	for i := range r.Lines {
		row := &r.Lines[i]
		loop := "-"
		if lr := r.loopRowByID(row.Loop); lr != nil {
			loop = lr.Label()
		}
		fmt.Fprintf(bw, "  %-14s %-16s %10d %5.1f%% %12d %12d %12d %10d %10d\n",
			row.Label(), loop, row.Cycles, pct(row.Cycles, r.TotalCycles),
			row.Counters[gpusim.ProfWarpExecs], row.Counters[gpusim.ProfThreadExecs],
			fpRound(row.Counters[gpusim.ProfDepStall]),
			row.Counters[gpusim.ProfDivergeEvents],
			row.Counters[gpusim.ProfMemTransactions])
	}
	return bw.err
}

func (r *Report) loopRowByID(id int32) *LoopRow {
	for i := range r.Loops {
		if r.Loops[i].Meta.ID == id {
			return &r.Loops[i]
		}
	}
	return nil
}

// WriteFolded writes the report as folded stacks — one
// "kernel;loop@L3;loop@L5;L7.u1 cycles" line per hot source line — the
// input format of flamegraph.pl and speedscope. Lines are emitted in
// deterministic (stack-name) order.
func WriteFolded(w io.Writer, r *Report) error {
	type folded struct {
		stack  string
		cycles int64
	}
	var out []folded
	for i := range r.Lines {
		row := &r.Lines[i]
		if row.Cycles == 0 {
			continue
		}
		frames := []string{r.Kernel}
		for _, lr := range r.loopChain(row.Loop) {
			frames = append(frames, lr.Label())
		}
		frames = append(frames, row.Label())
		out = append(out, folded{strings.Join(frames, ";"), row.Cycles})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].stack < out[j].stack })
	bw := &errWriter{w: w}
	for _, f := range out {
		fmt.Fprintf(bw, "%s %d\n", f.stack, f.cycles)
	}
	return bw.err
}

// fpRound converts a fixed-point counter sum to whole cycles.
func fpRound(fp int64) int64 { return (fp + gpusim.ProfFPScale/2) / gpusim.ProfFPScale }

func pct(part, total int64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(part) / float64(total)
}

// errWriter latches the first write error so the renderers can use Fprintf
// freely and report once.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, err
}
