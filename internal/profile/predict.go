package profile

import (
	"fmt"
	"io"
	"sort"

	"uu/internal/core"
	"uu/internal/gpusim"
	"uu/internal/ir"
)

// Verdict values of the predicted-vs-measured comparison.
const (
	// VerdictHit: the heuristic selected the hottest measured loop.
	VerdictHit = "selected-hottest"
	// VerdictCorrectSkip: the hottest loop was not selected, but the
	// heuristic skipped it deliberately (structural bailout, divergence
	// taint, or a profile deny) — not a size-model failure.
	VerdictCorrectSkip = "CORRECT-SKIP"
	// VerdictMispredict: the hottest loop was not selected and the only
	// reason is the static size model (SizeOverBudget) or the heuristic
	// never considered it — a genuine misprediction.
	VerdictMispredict = "MISPREDICT"
	// VerdictNoLoops: the program has no anchored loops to compare.
	VerdictNoLoops = "no-loops"
)

// Evaluation is the structured result of joining the heuristic's decisions
// and skip records with the measured per-loop profile. The PGO driver
// consumes it directly; WritePrediction renders it.
type Evaluation struct {
	// Selected has one row per decision, with the measured self cycles of
	// the decided source loop summed over all its unroll/unmerge clones.
	Selected []SelectedRow
	// Unselected lists measured loops (full clone origin, not just line)
	// with no covering decision, hottest first.
	Unselected []UnselectedRow
	// Hottest describes the hottest measured loop (by self cycles).
	HottestLabel string
	HottestLine  int32
	HottestSelf  int64
	// Verdict is one of the Verdict* constants; Reason carries the skip
	// reason behind a CORRECT-SKIP or MISPREDICT verdict.
	Verdict string
	Reason  string
}

// SelectedRow pairs one heuristic decision with its measured cost.
type SelectedRow struct {
	Decision core.Decision
	Self     int64 // measured self cycles, summed over the loop's clones
	Clones   int   // number of lowered loops that anchor at the decision line
}

// UnselectedRow is one measured loop the heuristic did not select, keyed by
// full origin so clones of one source loop stay distinct.
type UnselectedRow struct {
	Origin ir.Loc
	Self   int64
	// SkipReason is the heuristic's recorded reason for passing on the
	// loop's source line, "" when it never considered the line.
	SkipReason string
}

// Mispredicted reports whether the evaluation flagged a genuine
// size-model misprediction.
func (e *Evaluation) Mispredicted() bool { return e.Verdict == VerdictMispredict }

// Evaluate joins decisions and skip records with the measured per-loop
// profile.
//
// The join is clone-aware: a lowered loop anchors at a full origin
// (line + unroll-iteration + path-duplication tags, codegen.LoopMeta.Origin).
// Clones whose line carries a decision aggregate into that decision's row —
// they are the decided loop's transformed copies, and their summed self
// cycles are the measured cost of the decision. Every other lowered loop
// keeps its full origin as its own row, so a hot `.u2`/`.d1` clone can
// neither pool into an unrelated base row (masking a misprediction) nor be
// double-counted across rows.
//
// The verdict cross-references the heuristic's skip records: a hottest loop
// the heuristic deliberately skipped (see core.DeliberateSkip) is a
// CORRECT-SKIP; only a size-budget rejection — or a loop the heuristic never
// saw — is a MISPREDICT.
func Evaluate(r *Report, decisions []core.Decision, skips []core.SkipRecord) *Evaluation {
	ev := &Evaluation{Verdict: VerdictNoLoops}

	decided := map[int32]int{} // line -> index in Selected
	for _, d := range decisions {
		decided[d.HeaderLine] = len(ev.Selected)
		ev.Selected = append(ev.Selected, SelectedRow{Decision: d})
	}
	skipReason := map[int32]string{}
	for _, s := range skips {
		if _, dup := skipReason[s.HeaderLine]; !dup {
			skipReason[s.HeaderLine] = s.Reason
		}
	}

	other := map[ir.Loc]*UnselectedRow{}
	for i := range r.Loops {
		l := &r.Loops[i]
		if l.Meta.Line == 0 {
			continue
		}
		if di, ok := decided[l.Meta.Line]; ok {
			ev.Selected[di].Self += l.Self
			ev.Selected[di].Clones++
			continue
		}
		origin := l.Meta.Origin()
		row := other[origin]
		if row == nil {
			row = &UnselectedRow{Origin: origin, SkipReason: skipReason[origin.Line]}
			other[origin] = row
		}
		row.Self += l.Self
	}
	for _, row := range other {
		ev.Unselected = append(ev.Unselected, *row)
	}
	sort.Slice(ev.Unselected, func(i, j int) bool {
		a, b := &ev.Unselected[i], &ev.Unselected[j]
		if a.Self != b.Self {
			return a.Self > b.Self
		}
		if a.Origin.Line != b.Origin.Line {
			return a.Origin.Line < b.Origin.Line
		}
		if a.Origin.Iter != b.Origin.Iter {
			return a.Origin.Iter < b.Origin.Iter
		}
		return a.Origin.Dup < b.Origin.Dup
	})

	hot := r.HottestLoop()
	if hot == nil || hot.Meta.Line == 0 {
		return ev
	}
	ev.HottestLabel = hot.Label()
	ev.HottestLine = hot.Meta.Line
	ev.HottestSelf = hot.Self
	reason, skipped := skipReason[hot.Meta.Line]
	switch _, hit := decided[hot.Meta.Line]; {
	case hit:
		ev.Verdict = VerdictHit
	case skipped && core.DeliberateSkip(reason):
		ev.Verdict, ev.Reason = VerdictCorrectSkip, reason
	case skipped:
		ev.Verdict, ev.Reason = VerdictMispredict, reason
	default:
		ev.Verdict, ev.Reason = VerdictMispredict, "NotConsidered"
	}
	return ev
}

// WritePrediction writes the heuristic's selections next to the measured
// per-loop cycle totals. Selected loops aggregate their clones; unselected
// loops are keyed by full clone origin (see Evaluate). The trailing verdict
// line distinguishes a deliberate CORRECT-SKIP of the hottest loop from a
// genuine MISPREDICT by cross-referencing the heuristic's skip records.
func WritePrediction(w io.Writer, r *Report, decisions []core.Decision, skips []core.SkipRecord, paramC int) error {
	ev := Evaluate(r, decisions, skips)
	bw := &errWriter{w: w}
	fmt.Fprintf(bw, "heuristic (C=%d) vs measured — %s (total %d cycles):\n",
		paramC, r.Kernel, r.TotalCycles)
	fmt.Fprintf(bw, "  %-10s %-8s %3s %6s %6s %10s %12s %7s  %s\n",
		"loop", "selected", "u", "paths", "size", "f(p,s,u)", "self_cycles", "self%", "note")

	for _, row := range ev.Selected {
		d := row.Decision
		note := "-"
		if d.Forced {
			note = "forced"
		}
		fmt.Fprintf(bw, "  %-10s %-8s %3d %6d %6d %10d %12d %6.1f%%  %s\n",
			fmt.Sprintf("L%d", d.HeaderLine), "yes",
			d.Factor, d.Paths, d.Size, d.Estimated, row.Self, pct(row.Self, r.TotalCycles), note)
	}
	for _, row := range ev.Unselected {
		note := "-"
		if row.SkipReason != "" {
			note = "skip:" + row.SkipReason
		}
		fmt.Fprintf(bw, "  %-10s %-8s %3s %6s %6s %10s %12d %6.1f%%  %s\n",
			row.Origin.String(), "no", "-", "-", "-", "-",
			row.Self, pct(row.Self, r.TotalCycles), note)
	}

	switch ev.Verdict {
	case VerdictHit:
		fmt.Fprintf(bw, "  -> hottest loop %s: %d self cycles (%.1f%%) — the heuristic selected the hottest loop\n",
			ev.HottestLabel, ev.HottestSelf, pct(ev.HottestSelf, r.TotalCycles))
	case VerdictCorrectSkip:
		fmt.Fprintf(bw, "  -> hottest loop %s: %d self cycles (%.1f%%) — CORRECT-SKIP: deliberately skipped (%s)\n",
			ev.HottestLabel, ev.HottestSelf, pct(ev.HottestSelf, r.TotalCycles), ev.Reason)
	case VerdictMispredict:
		fmt.Fprintf(bw, "  -> hottest loop %s: %d self cycles (%.1f%%) — MISPREDICT: the heuristic did not select the hottest loop (%s)\n",
			ev.HottestLabel, ev.HottestSelf, pct(ev.HottestSelf, r.TotalCycles), ev.Reason)
	}
	return bw.err
}

// ExtractFeedback distills the measured report into the per-loop signals and
// verdict the PGO policy (core.SuggestOverrides) consumes. speedup is the
// app-level baseline/heuristic time ratio for this round (0 = unknown).
func ExtractFeedback(r *Report, decisions []core.Decision, skips []core.SkipRecord, speedup float64) core.Feedback {
	ev := Evaluate(r, decisions, skips)
	fb := core.Feedback{
		Speedup:    speedup,
		Decisions:  decisions,
		Mispredict: ev.Mispredicted(),
	}
	if fb.Mispredict {
		fb.MispredictLine = ev.HottestLine
	}

	// Per-source-line signals, summed over clone loops so the policy sees
	// the total measured cost of each source loop.
	byLine := map[int32]*core.LoopSignal{}
	var order []int32
	for i := range r.Loops {
		l := &r.Loops[i]
		if l.Meta.Line == 0 {
			continue
		}
		sig := byLine[l.Meta.Line]
		if sig == nil {
			sig = &core.LoopSignal{Line: l.Meta.Line}
			byLine[l.Meta.Line] = sig
			order = append(order, l.Meta.Line)
		}
		sig.SelfCycles += l.Self
		sig.DivergeEvents += l.Counters[gpusim.ProfDivergeEvents]
		sig.ReconvEvents += l.Counters[gpusim.ProfReconvEvents]
		sig.FetchStallCycles += l.Counters[gpusim.ProfFetchStall]
		sig.DepStallCycles += fpRound(l.Counters[gpusim.ProfDepStall])
		sig.MemTransactions += l.Counters[gpusim.ProfMemTransactions]
		sig.MemIdeal += l.Counters[gpusim.ProfMemIdeal]
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := byLine[order[i]], byLine[order[j]]
		if a.SelfCycles != b.SelfCycles {
			return a.SelfCycles > b.SelfCycles
		}
		return a.Line < b.Line
	})
	for _, line := range order {
		fb.Signals = append(fb.Signals, *byLine[line])
	}
	return fb
}
