package profile

import (
	"fmt"
	"io"
	"sort"

	"uu/internal/core"
)

// WritePrediction writes the heuristic's selections next to the measured
// per-loop cycle totals, joined on the loop's anchoring source line
// (core.Decision.HeaderLine / codegen.LoopMeta.Line — stable across the
// transformation, unlike block names). A selected loop with a small
// measured share, or a hot loop the heuristic skipped, is a visible
// misprediction of the f(p, s, u) < C size model.
func WritePrediction(w io.Writer, r *Report, decisions []core.Decision, paramC int) error {
	bw := &errWriter{w: w}
	fmt.Fprintf(bw, "heuristic (C=%d) vs measured — %s (total %d cycles):\n",
		paramC, r.Kernel, r.TotalCycles)
	fmt.Fprintf(bw, "  %-8s %-8s %3s %6s %6s %10s %12s %7s\n",
		"loop", "selected", "u", "paths", "size", "f(p,s,u)", "self_cycles", "self%")

	// Measured body (self) cycles per source line: the time spent in PCs
	// whose innermost loop anchors at that line, summed over the loop's
	// clones (an unrolled loop plus its remainder loop share a line). Self,
	// not cumulative, so lines of different nest depths compare fairly.
	lineCycles := map[int32]int64{}
	for i := range r.Loops {
		l := &r.Loops[i]
		if l.Meta.Line == 0 {
			continue
		}
		lineCycles[l.Meta.Line] += l.Self
	}

	selected := map[int32]bool{}
	for _, d := range decisions {
		selected[d.HeaderLine] = true
		cyc := lineCycles[d.HeaderLine]
		fmt.Fprintf(bw, "  %-8s %-8s %3d %6d %6d %10d %12d %6.1f%%\n",
			fmt.Sprintf("L%d", d.HeaderLine), "yes",
			d.Factor, d.Paths, d.Size, d.Estimated, cyc, pct(cyc, r.TotalCycles))
	}
	type rest struct {
		line int32
		cyc  int64
	}
	var others []rest
	for line, cyc := range lineCycles {
		if !selected[line] {
			others = append(others, rest{line, cyc})
		}
	}
	sort.Slice(others, func(i, j int) bool {
		if others[i].cyc != others[j].cyc {
			return others[i].cyc > others[j].cyc
		}
		return others[i].line < others[j].line
	})
	for _, o := range others {
		fmt.Fprintf(bw, "  %-8s %-8s %3s %6s %6s %10s %12d %6.1f%%\n",
			fmt.Sprintf("L%d", o.line), "no", "-", "-", "-", "-",
			o.cyc, pct(o.cyc, r.TotalCycles))
	}

	if hot := r.HottestLoop(); hot != nil && hot.Meta.Line > 0 {
		verdict := "the heuristic selected the hottest loop"
		if len(decisions) > 0 && !selected[hot.Meta.Line] {
			verdict = "MISPREDICT: the heuristic did not select the hottest loop"
		}
		fmt.Fprintf(bw, "  -> hottest loop %s: %d self cycles (%.1f%%) — %s\n",
			hot.Label(), hot.Self, pct(hot.Self, r.TotalCycles), verdict)
	}
	return bw.err
}
